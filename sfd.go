// Package sfd (import path "repro") is the public API of this
// reproduction of "A Self-tuning Failure Detection Scheme for Cloud
// Computing Service" (Xiong et al., IEEE IPDPS 2012).
//
// It provides:
//
//   - The paper's contribution: the SFD self-tuning accrual failure
//     detector (NewSFD) and the general self-tuning wrapper for any
//     timeout-based detector (NewSelfTuner).
//   - The baselines the paper compares against: Chen FD (NewChen),
//     Bertier FD (NewBertier), the φ accrual FD (NewPhi), and a naive
//     fixed-timeout detector (NewFixed).
//   - QoS evaluation by trace replay (Replay, Sweep) with Chen et al.'s
//     metrics: detection time, mistake rate, query accuracy probability.
//   - Synthetic WAN heartbeat traces calibrated to the paper's Table II
//     (TracePreset, NewTraceGenerator), plus binary/CSV codecs.
//   - A live heartbeat stack over UDP or in-memory transports
//     (NewHeartbeatSender, NewHeartbeatReceiver, ListenUDP) and a
//     cloud-monitoring layer (NewMonitor, Quorum) implementing the
//     paper's "one monitors multiple" deployment.
//   - A fleet-scale monitoring registry (NewRegistry): lock-striped
//     shards, a hierarchical timer wheel firing suspect transitions,
//     and a bounded drop-oldest failure-event bus — firehose
//     (Subscribe) or interest-routed over hierarchical stream names
//     with MQTT-style `+`/`#` wildcards (SubscribeTopic, MatchTopic).
//   - A gossip dissemination layer between monitors (NewGossiper):
//     anti-entropy suspicion digests, accuracy-weighted quorum
//     corroboration, and SWIM-style incarnation refutation, publishing
//     GlobalSuspect / GlobalOffline / GlobalTrust verdicts on the bus.
//
// Quick start (see examples/quickstart for the runnable version):
//
//	det := sfd.NewSFD(sfd.Config{
//		Targets: sfd.Targets{MaxTD: 900 * time.Millisecond, MaxMR: 0.35, MinQAP: 0.994},
//	})
//	det.Observe(seq, sendTime, recvTime) // per heartbeat
//	if det.Suspect(now) { ... }
package sfd

import (
	"io"

	"repro/internal/chaos"
	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/fanout"
	"repro/internal/federate"
	"repro/internal/gossip"
	"repro/internal/heartbeat"
	"repro/internal/load"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/persist"
	"repro/internal/qos"
	"repro/internal/registry"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Time is a monotonic instant in nanoseconds (see internal/clock).
type Time = clock.Time

// Duration aliases time.Duration.
type Duration = clock.Duration

// Clock abstracts a monotonic time source (real or simulated).
type Clock = clock.Clock

// NewRealClock returns a wall-clock-backed Clock.
func NewRealClock() Clock { return clock.NewReal() }

// NewSimClock returns a deterministic simulated Clock starting at origin.
func NewSimClock(origin Time) *clock.Sim { return clock.NewSim(origin) }

// Detector is a heartbeat failure detector: it consumes arrivals and
// exposes a freshness point (the instant suspicion begins).
type Detector = detector.Detector

// Accrual is a Detector that also outputs a continuous suspicion level.
type Accrual = detector.Accrual

// DefaultWindowSize is the paper's sliding-window size (WS = 1000).
const DefaultWindowSize = detector.DefaultWindowSize

// Config configures an SFD instance (see core.Config for field docs).
type Config = core.Config

// Targets is an application's QoS requirement: max detection time, max
// mistake rate, min query accuracy probability.
type Targets = core.Targets

// QoS is the (TD, MR, QAP) tuple of the paper's Eq. 1.
type QoS = core.QoS

// SFD is the paper's Self-tuning Failure Detector.
type SFD = core.SFD

// State is the SFD tuning state.
type State = core.State

// Tuning states.
const (
	StateWarmup     = core.StateWarmup
	StateTuning     = core.StateTuning
	StateStable     = core.StateStable
	StateInfeasible = core.StateInfeasible
)

// NewSFD builds the paper's Self-tuning Failure Detector; zero Config
// fields take paper-faithful defaults (WS=1000, α=100ms, β=0.5).
func NewSFD(cfg Config) *SFD { return core.New(cfg) }

// DefaultConfig returns the paper-faithful SFD configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// Tunable is a detector whose margin/timeout the general self-tuning
// method can drive.
type Tunable = core.Tunable

// TunerOptions configures NewSelfTuner.
type TunerOptions = core.TunerOptions

// SelfTuner retrofits the paper's feedback loop onto any Tunable.
type SelfTuner = core.SelfTuner

// NewSelfTuner wraps a Tunable detector with QoS feedback (§IV-A's
// general method).
func NewSelfTuner(d Tunable, opts TunerOptions) *SelfTuner { return core.NewSelfTuner(d, opts) }

// TunableChen adapts a Chen FD for NewSelfTuner (tunes α).
type TunableChen = core.TunableChen

// TunableFixed adapts a Fixed FD for NewSelfTuner (tunes the timeout).
type TunableFixed = core.TunableFixed

// NewChen builds Chen et al.'s adaptive FD: window estimation plus a
// constant safety margin alpha. interval 0 estimates Δt from arrivals.
func NewChen(windowSize int, interval, alpha Duration) *detector.Chen {
	return detector.NewChen(windowSize, interval, alpha)
}

// BertierParams are Bertier's estimator constants (β, φ, γ).
type BertierParams = detector.BertierParams

// NewBertier builds Bertier et al.'s adaptive FD; zero params take the
// published β=1, φ=4, γ=0.1.
func NewBertier(windowSize int, interval Duration, p BertierParams) *detector.Bertier {
	return detector.NewBertier(windowSize, interval, p)
}

// NewPhi builds the φ accrual FD with the given suspicion threshold Φ.
func NewPhi(windowSize int, threshold float64, minSigma Duration) *detector.Phi {
	return detector.NewPhi(windowSize, threshold, minSigma)
}

// NewFixed builds the naive constant-timeout baseline.
func NewFixed(timeout Duration, warmup int) *detector.Fixed {
	return detector.NewFixed(timeout, warmup)
}

// NewRTO builds the TCP-RTO-style detector (Jacobson/Karels smoothing of
// inter-arrival times, timeout = srtt + k·rttvar); k ≤ 0 defaults to 4.
func NewRTO(k float64, warmup int) *detector.RTO {
	return detector.NewRTO(k, warmup)
}

// NewPhiExp builds the exponential-tail accrual detector (the
// Cassandra-style simplification of φ).
func NewPhiExp(windowSize int, threshold float64) *detector.PhiExp {
	return detector.NewPhiExp(windowSize, threshold)
}

// Static configuration procedure (Chen-style provisioning; see
// internal/detector/configure.go for the derivation).
type (
	// NetworkStats is the probabilistic network model Configure consumes.
	NetworkStats = detector.NetworkStats
	// Requirements is the QoS an application demands of a detector.
	Requirements = detector.Requirements
	// Configuration is a computed (interval, margin) operating point.
	Configuration = detector.Configuration
)

// ErrInfeasible reports that no operating point satisfies the
// requirements — the static analogue of SFD's "can not satisfy" response.
var ErrInfeasible = detector.ErrInfeasible

// Configure computes a heartbeat interval and safety margin meeting the
// requirements on a network with the given loss/delay statistics, or
// ErrInfeasible. Use it to provision Δt and SM₁; SFD's feedback then
// keeps them matched to the live network.
func Configure(net NetworkStats, req Requirements) (Configuration, error) {
	return detector.Configure(net, req)
}

// Result is the measured QoS of one replay.
type Result = qos.Result

// CrashOutcome extends Result with actual crash-detection latency.
type CrashOutcome = qos.CrashOutcome

// Curve is a detector's QoS trade-off curve from a parameter sweep.
type Curve = qos.Curve

// Replay feeds a heartbeat trace through a detector and measures its QoS
// exactly as the paper's replay-based evaluation does.
func Replay(s trace.Stream, det Detector) Result { return qos.Replay(s, det) }

// ReplayWithCrash injects a crash at crashSeq and measures the actual
// detection latency alongside the pre-crash QoS.
func ReplayWithCrash(s trace.Stream, det Detector, crashSeq uint64) CrashOutcome {
	return qos.ReplayWithCrash(s, det, crashSeq)
}

// SweepFactory builds a detector per parameter value.
type SweepFactory = qos.Factory

// Sweep traces a detector's QoS curve by replaying the trace once per
// parameter value.
func Sweep(tr *trace.Trace, name string, f SweepFactory, params []float64) Curve {
	return qos.Sweep(tr, name, f, params)
}

// Trace types and generation.
type (
	// Trace is a materialized heartbeat trace.
	Trace = trace.Trace
	// TraceRecord is one heartbeat observation.
	TraceRecord = trace.Record
	// TraceMeta describes a trace's origin and parameters.
	TraceMeta = trace.Meta
	// TraceStream yields records in sequence order.
	TraceStream = trace.Stream
	// TraceGenParams parameterizes the synthetic WAN generator.
	TraceGenParams = trace.GenParams
	// TraceStats is the Table II statistics row for a trace.
	TraceStats = trace.Stats
)

// TracePreset returns the generator parameters of one of the paper's
// seven WAN environments ("WAN-JPCH", "WAN-1".."WAN-6").
func TracePreset(name string) (TraceGenParams, error) { return trace.Preset(name) }

// TracePresetNames lists the available environments in paper order.
func TracePresetNames() []string { return trace.PresetNames() }

// NewTraceGenerator returns a deterministic synthetic heartbeat stream.
func NewTraceGenerator(p TraceGenParams) TraceStream { return trace.NewGenerator(p) }

// CollectTrace materializes a stream.
func CollectTrace(meta TraceMeta, s TraceStream) *Trace { return trace.Collect(meta, s) }

// AnalyzeTrace computes a trace's Table II statistics.
func AnalyzeTrace(name string, s TraceStream) TraceStats { return trace.Analyze(name, s) }

// WriteTrace / ReadTrace encode traces in the compact binary format.
func WriteTrace(w io.Writer, t *Trace) error { return trace.Write(w, t) }

// ReadTrace decodes a binary trace.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// Live heartbeat stack.
type (
	// Endpoint is an unreliable datagram endpoint.
	Endpoint = transport.Endpoint
	// HeartbeatArrival is one decoded heartbeat delivery.
	HeartbeatArrival = heartbeat.Arrival
	// HeartbeatSender emits periodic heartbeats (the paper's process p).
	HeartbeatSender = heartbeat.Sender
	// HeartbeatReceiver decodes and filters heartbeats (process q).
	HeartbeatReceiver = heartbeat.Receiver
	// Prober estimates RTT with ping/pong, like the paper's parallel
	// low-frequency ping process.
	Prober = heartbeat.Prober
)

// ListenUDP opens a UDP endpoint (e.g. "127.0.0.1:0") with default
// receive-path options: batched reads where the platform supports them,
// one ingest queue, a private receive-buffer pool.
func ListenUDP(addr string) (*transport.UDP, error) { return transport.ListenUDP(addr) }

// Million-stream ingest tuning (see internal/transport): the UDP
// receive path batches datagram reads (recvmmsg on Linux), lands
// payloads in pooled buffers, and can shard inbound traffic across
// several ingest queues drained in parallel by HeartbeatReceiver.
type (
	// UDPEndpoint is the concrete UDP endpoint with its receive-path
	// counters and multi-queue surface.
	UDPEndpoint = transport.UDP
	// UDPOptions tunes the batched receive path (queues, batch size,
	// buffer pool).
	UDPOptions = transport.UDPOptions
	// UDPCounters is a UDP endpoint's receive-path counter snapshot,
	// including datagrams dropped at full ingest queues.
	UDPCounters = transport.UDPCounters
	// QueuedEndpoint is the optional multi-queue surface of an endpoint.
	QueuedEndpoint = transport.QueuedEndpoint
	// BufPool is a bounded pool of fixed-size receive buffers.
	BufPool = transport.BufPool
	// BufPoolStats is a BufPool counter snapshot.
	BufPoolStats = transport.BufPoolStats
)

// ListenUDPOpts opens a UDP endpoint with explicit receive-path tuning.
func ListenUDPOpts(addr string, opts UDPOptions) (*transport.UDP, error) {
	return transport.ListenUDPOpts(addr, opts)
}

// NewBufPool builds a receive-buffer pool of up to `buffers` buffers of
// `size` bytes (defaults: 256 × 64 KiB). Share one pool across
// endpoints to share its memory bound.
func NewBufPool(buffers, size int) *BufPool { return transport.NewBufPool(buffers, size) }

// NewHub returns an in-memory datagram switchboard for socket-free use.
func NewHub(lossRate float64, delay Duration, seed int64) *transport.Hub {
	return transport.NewHub(lossRate, delay, seed)
}

// NewHeartbeatSender emits a heartbeat to `to` every interval.
func NewHeartbeatSender(ep Endpoint, to string, interval Duration, clk Clock) *HeartbeatSender {
	return heartbeat.NewSender(ep, to, interval, clk)
}

// NewHeartbeatReceiver drains ep, filters stale heartbeats, answers
// pings, and feeds arrivals to h.
func NewHeartbeatReceiver(ep Endpoint, clk Clock, h func(HeartbeatArrival)) *HeartbeatReceiver {
	return heartbeat.NewReceiver(ep, clk, h)
}

// NewProber measures RTT against `to` through ep.
func NewProber(ep Endpoint, to string, clk Clock) *Prober {
	return heartbeat.NewProber(ep, to, clk)
}

// Cloud-monitoring layer.
type (
	// Monitor watches many peers, one detector each.
	Monitor = cluster.Monitor
	// MonitorOptions tunes status thresholds.
	MonitorOptions = cluster.Options
	// MonitorReport is a point-in-time view of one peer.
	MonitorReport = cluster.Report
	// PeerStatus classifies a monitored server.
	PeerStatus = cluster.Status
	// Quorum aggregates several monitors ("multiple monitor multiple").
	Quorum = cluster.Quorum
	// DetectorFactory builds a detector per watched peer.
	DetectorFactory = cluster.Factory
)

// Peer status values (the paper's active / busy / offline classification).
const (
	PeerUnknown   = cluster.StatusUnknown
	PeerActive    = cluster.StatusActive
	PeerBusy      = cluster.StatusBusy
	PeerSuspected = cluster.StatusSuspected
	PeerOffline   = cluster.StatusOffline
)

// NewMonitor builds a Monitor; a nil factory defaults to SFD instances.
func NewMonitor(clk Clock, f DetectorFactory, opts MonitorOptions) *Monitor {
	return cluster.NewMonitor(clk, f, opts)
}

// SFDFactory returns a DetectorFactory producing SFDs with the given
// targets and otherwise default configuration.
func SFDFactory(targets Targets) DetectorFactory { return cluster.DefaultFactory(targets) }

// Reactor implements the paper's graduated-reaction pattern (§I):
// applications register actions at ascending suspicion thresholds; each
// fires once per suspicion episode.
type Reactor = cluster.Reactor

// ActionFunc reacts to a suspicion threshold crossing.
type ActionFunc = cluster.ActionFunc

// NewReactor returns an empty graduated-reaction registry.
func NewReactor() *Reactor { return cluster.NewReactor() }

// FormatSnapshot renders a Monitor snapshot as an aligned status board.
func FormatSnapshot(reports []MonitorReport) string { return cluster.FormatSnapshot(reports) }

// SummarizeSnapshot counts a snapshot by status and lists the peers
// needing attention.
func SummarizeSnapshot(reports []MonitorReport) (map[PeerStatus]int, []string) {
	return cluster.Summarize(reports)
}

// Elector implements Ω (eventual leader election) over a Monitor: the
// leader is the smallest-ranked candidate not currently suspected.
type Elector = cluster.Elector

// NewElector builds an elector for the candidate set; self is this
// process's own name and mon must watch the other candidates.
func NewElector(self string, mon *Monitor, candidates []string) *Elector {
	return cluster.NewElector(self, mon, candidates)
}

// Fleet-scale monitoring: the sharded registry, its timer wheel, and
// the failure-event bus (see internal/registry).
type (
	// Registry is a sharded, timer-wheel-scheduled monitoring table for
	// tens of thousands of heartbeat streams.
	Registry = registry.Registry
	// RegistryOptions tunes sharding, wheel granularity, thresholds, and
	// eviction policy.
	RegistryOptions = registry.Options
	// RegistryCounters is the registry's aggregate counter snapshot.
	RegistryCounters = registry.Counters
	// StreamStats is the per-stream ingest/mistake accounting.
	StreamStats = registry.StreamStats
	// Event is one failure-detection state transition on the event bus.
	Event = registry.Event
	// EventType classifies an Event.
	EventType = registry.EventType
	// Subscription is one subscriber's bounded, drop-oldest event queue.
	Subscription = registry.Subscription
	// SubscriptionStats is one subscription's delivery accounting
	// (delivered / dropped / queued), as listed on /vars.
	SubscriptionStats = registry.SubscriptionStats
	// FanoutStats is the topic trie's size and routing counters.
	FanoutStats = fanout.Stats
)

// Failure-event kinds published on the registry bus. The Global* kinds
// are corroborated verdicts from the gossip layer (Source names the
// publishing monitor); the rest are this monitor's local transitions.
const (
	EventSuspect       = registry.EventSuspect
	EventTrust         = registry.EventTrust
	EventOffline       = registry.EventOffline
	EventEvicted       = registry.EventEvicted
	EventCannotSatisfy = registry.EventCannotSatisfy
	EventGlobalSuspect = registry.EventGlobalSuspect
	EventGlobalOffline = registry.EventGlobalOffline
	EventGlobalTrust   = registry.EventGlobalTrust
)

// NewRegistry builds a fleet-scale monitoring registry. nil clk means
// the real clock; nil f defaults every stream to an SFD instance. Call
// Start to arm the timer wheel, Observe per heartbeat arrival, and
// Subscribe to consume transition events.
func NewRegistry(clk Clock, f DetectorFactory, opts RegistryOptions) *Registry {
	var rf registry.Factory
	if f != nil {
		rf = registry.Factory(f)
	}
	return registry.New(clk, rf, opts)
}

// Interest-routed subscriptions: stream names are hierarchical
// (`region/cluster/host/service`), and a topic filter selects a subtree
// with MQTT-style wildcards — `+` matches exactly one segment, a final
// `#` matches the rest (including nothing). Registry.SubscribeTopic
// attaches a filtered subscription; the registry's /watch endpoint
// streams one as NDJSON over HTTP.

// MatchTopic reports whether a topic filter matches a stream name, e.g.
// MatchTopic("eu/+/web-1/#", "eu/zrh/web-1/api") == true. It returns
// false for invalid filters or names (see ValidateTopicFilter).
func MatchTopic(filter, name string) bool { return fanout.MatchTopic(filter, name) }

// ValidateStreamName reports whether a stream name is publishable:
// non-empty `/`-separated segments, no `+` or `#`. The registry rejects
// invalid names at registration.
func ValidateStreamName(name string) error { return fanout.ValidateName(name) }

// ValidateTopicFilter reports whether a topic filter is well-formed:
// wildcards only as whole segments, `#` only in the last position.
func ValidateTopicFilter(filter string) error { return fanout.ValidateFilter(filter) }

// Crash-safe state persistence and warm restart (see internal/persist):
// versioned, checksummed snapshots of registry + detector + gossip state
// rotated atomically on disk, restored on restart with a rewarm grace
// window so a short monitor outage produces zero spurious suspicions.
// Set RegistryOptions.StateDir to arm it; Registry.Stop flushes a final
// snapshot.
type (
	// StateSnapshot is one full capture of monitor state.
	StateSnapshot = persist.Snapshot
	// StateStreamRecord is one stream's row in a StateSnapshot.
	StateStreamRecord = persist.StreamRecord
	// StateDelta is one incremental journal entry between snapshots.
	StateDelta = persist.Delta
	// StateStore manages the snapshot/journal files in a state directory.
	StateStore = persist.Store
	// Checkpointer drives periodic snapshots and journal flushes.
	Checkpointer = persist.Checkpointer
	// CheckpointOptions tunes snapshot cadence and journal rotation.
	CheckpointOptions = persist.CheckpointOptions
)

// ErrNoSnapshot reports an empty state directory on restore — the normal
// first-boot condition, distinct from corruption.
var ErrNoSnapshot = persist.ErrNoSnapshot

// OpenStateStore opens (creating if needed) a state directory holding
// retain snapshot epochs (minimum 2).
func OpenStateStore(dir string, retain int) (*StateStore, error) {
	return persist.OpenStore(dir, retain)
}

// SaveSnapshot forces a full state checkpoint of reg now — the graceful-
// shutdown flush. With RegistryOptions.StateDir set this happens
// automatically on Registry.Stop; exported for on-demand use.
func SaveSnapshot(reg *Registry) error { return reg.SaveSnapshot() }

// RestoreSnapshot restores reg from its StateDir, reporting how many
// streams were recovered. downtime is how long the monitor was down;
// pass a negative value to derive it from the snapshot's wall-clock
// anchor. Registry.Start does this automatically; call it explicitly
// (before Start) to control the downtime or inspect the result.
func RestoreSnapshot(reg *Registry, downtime Duration) (int, error) {
	return reg.RestoreFromDisk(downtime)
}

// Gossip dissemination layer: multi-monitor suspicion exchange with
// accuracy-weighted quorum corroboration (see internal/gossip).
type (
	// Gossiper is one monitor's membership in the dissemination fabric.
	Gossiper = gossip.Gossiper
	// GossipOptions tunes round interval, fanout, quorum, weighting, and
	// opinion TTL.
	GossipOptions = gossip.Options
	// GossipEndpoint is the send-only datagram surface a Gossiper needs;
	// transport endpoints and netsim nodes both satisfy it.
	GossipEndpoint = gossip.Endpoint
	// GossipState is a monitor's per-subject opinion (trusted / suspect /
	// offline).
	GossipState = gossip.State
	// GossipOpinion is one monitor's view of one subject incarnation.
	GossipOpinion = gossip.Opinion
	// GossipDigest is the versioned anti-entropy exchange unit.
	GossipDigest = gossip.Digest
	// GossipCounters is the gossiper's counter snapshot.
	GossipCounters = gossip.Counters
)

// Gossip opinion states, ordered by severity.
const (
	GossipTrusted = gossip.StateTrusted
	GossipSuspect = gossip.StateSuspect
	GossipOffline = gossip.StateOffline
)

// NewGossiper attaches a dissemination-layer member to reg, gossiping
// over ep with the given peer monitor addresses. Feed received non-
// heartbeat datagrams to HandleDatagram (HeartbeatReceiver.SetForeign
// does this when the socket is shared) and call Start. Corroborated
// verdicts surface as EventGlobal* events on reg's bus.
func NewGossiper(ep GossipEndpoint, clk Clock, reg *Registry, peers []string, opts GossipOptions) *Gossiper {
	return gossip.New(ep, clk, reg, peers, opts)
}

// Hierarchical federation tier (see internal/federate): leaf monitors
// own cohorts of heartbeat streams (topic-filter prefixes) and roll
// compact per-cohort digests up to a regional aggregator over the same
// unreliable datagram fabric as heartbeats. The aggregator merges
// digests into a fleet view (GET /fleet), monitors leaf liveness with
// the same SFD detector machinery (the digest stream is itself a
// monitored heartbeat stream), and on leaf death re-delegates the dead
// leaf's cohorts to surviving leaves through a versioned assignment
// table. Digest bandwidth is O(cohorts), not O(streams).
type (
	// FederationLeaf is a leaf monitor's roll-up agent: it sweeps the
	// local Registry, folds bus transitions into per-cohort digests, and
	// pushes them to its aggregator every interval.
	FederationLeaf = federate.Leaf
	// FederationLeafOptions tunes identity, cohorts, and roll-up cadence.
	FederationLeafOptions = federate.LeafOptions
	// FederationLeafCounters is the leaf's counter snapshot.
	FederationLeafCounters = federate.LeafCounters
	// FederationAggregator is the regional tier: digest merge, leaf
	// liveness, cohort re-delegation, and the /fleet query surface.
	FederationAggregator = federate.Aggregator
	// FederationAggregatorOptions tunes digest cadence and leaf-liveness
	// thresholds.
	FederationAggregatorOptions = federate.AggregatorOptions
	// FederationAggCounters is the aggregator's counter snapshot.
	FederationAggCounters = federate.AggCounters
	// FederationDigest is one leaf→aggregator roll-up datagram.
	FederationDigest = federate.Digest
	// FederationCohortDigest is one cohort's row inside a digest.
	FederationCohortDigest = federate.CohortDigest
	// FederationAssignment is one aggregator→leaf cohort-ownership table.
	FederationAssignment = federate.Assignment
	// FederationRedelegation records one re-delegation round.
	FederationRedelegation = federate.RedelegationRecord
	// FederationPeerBeat is one aggregator→aggregator HA state heartbeat.
	FederationPeerBeat = federate.PeerBeat
	// FederationMirror is one aggregator→aggregator anti-entropy state
	// mirror chunk.
	FederationMirror = federate.Mirror
	// FederationAck is one aggregator→leaf digest receipt (leaves track
	// per-aggregator reachability from it).
	FederationAck = federate.Ack
	// FederationPeerInfo is one HA peer row as served by /fleet.
	FederationPeerInfo = federate.PeerInfo
)

// NewFederationLeaf attaches a roll-up agent to reg, digesting to the
// aggregator at agg through ep — or to the ordered HA pair in
// opts.Aggs, which supersedes agg. Feed received federation datagrams
// (assignment tables and digest acks) to HandleDatagramFrom and call
// Start.
func NewFederationLeaf(ep GossipEndpoint, clk Clock, reg *Registry, agg string, opts FederationLeafOptions) (*FederationLeaf, error) {
	return federate.NewLeaf(ep, clk, reg, agg, opts)
}

// NewFederationAggregator builds a regional aggregator replying through
// ep. Set opts.Peers to run it as half of an HA pair: the pair exchange
// state heartbeats and anti-entropy mirrors, elect the lowest alive id
// leader, and fail over within a few digest intervals. Feed received
// datagrams to HandleDatagram(from, payload) and call Start; mount
// Handler() for GET /fleet.
func NewFederationAggregator(ep GossipEndpoint, clk Clock, opts FederationAggregatorOptions) *FederationAggregator {
	return federate.NewAggregator(ep, clk, opts)
}

// IsFederationDatagram reports whether a payload carries the federation
// magic — the dispatch test when the socket is shared with heartbeats
// and gossip.
func IsFederationDatagram(payload []byte) bool { return federate.IsFederation(payload) }

// Instrumentation layer: dependency-free atomic counters, gauges, and
// fixed-bucket histograms with Prometheus text exposition (see
// internal/metrics). Registry.Metrics() returns the registry's set;
// HeartbeatReceiver.InstrumentMetrics and Gossiper.InstrumentMetrics
// register their instruments into it so one /metrics page covers the
// whole pipeline.
type (
	// MetricsSet is a named instrument collection exposed together as one
	// Prometheus text page (Handler / WritePrometheus).
	MetricsSet = metrics.Set
	// MetricsCounter is a lock-free monotonic counter.
	MetricsCounter = metrics.Counter
	// MetricsGauge is an atomically settable float64 gauge.
	MetricsGauge = metrics.Gauge
	// MetricsHistogram is a fixed-bucket cumulative histogram whose
	// Observe is lock- and allocation-free.
	MetricsHistogram = metrics.Histogram
	// MetricsEmitter receives scrape-time samples from Sampled callbacks.
	MetricsEmitter = metrics.Emitter
)

// NewMetricsSet returns an empty instrument set for application metrics.
func NewMetricsSet() *MetricsSet { return metrics.NewSet() }

// MetricName composes a series name from a family and label key/value
// pairs, escaping label values per the Prometheus text format.
func MetricName(family string, labels ...string) string { return metrics.Name(family, labels...) }

// Chaos fault-injection layer (see internal/chaos): an Endpoint
// middleware that injects deterministic, seeded impairments — burst
// loss, delay/jitter, reordering, duplication, truncation, directional
// partitions, clock skew — into the live heartbeat stack, steered by a
// runtime Controller and scriptable Scenario timelines.
type (
	// ChaosController arms/disarms impairments, owns the injection
	// randomness and counters, and replays Scenario timelines.
	ChaosController = chaos.Controller
	// ChaosEndpoint wraps any Endpoint with the armed impairments.
	ChaosEndpoint = chaos.Endpoint
	// ChaosImpairment is one parameterized fault.
	ChaosImpairment = chaos.Impairment
	// ChaosScenario is an ordered impairment timeline.
	ChaosScenario = chaos.Scenario
	// ChaosStep is one scenario timeline entry.
	ChaosStep = chaos.Step
	// ChaosKind names an impairment class.
	ChaosKind = chaos.Kind
	// ChaosDirection selects inbound/outbound/both traffic.
	ChaosDirection = chaos.Direction
	// ChaosSpan is a duration that marshals as a human string.
	ChaosSpan = chaos.Span
	// ChaosCounters is the controller's injection-counter snapshot.
	ChaosCounters = chaos.Counters
	// SkewedClock offsets a Clock by a settable step plus drift — the
	// send-side timestamp-skew fault.
	SkewedClock = chaos.SkewedClock
)

// Impairment kinds.
const (
	ChaosLoss      = chaos.KindLoss
	ChaosDelay     = chaos.KindDelay
	ChaosReorder   = chaos.KindReorder
	ChaosDuplicate = chaos.KindDuplicate
	ChaosTruncate  = chaos.KindTruncate
	ChaosPartition = chaos.KindPartition
	ChaosSkew      = chaos.KindSkew
)

// Impairment directions.
const (
	ChaosDirBoth = chaos.DirBoth
	ChaosDirIn   = chaos.DirIn
	ChaosDirOut  = chaos.DirOut
)

// NewChaosController builds an idle impairment controller drawing
// injection randomness from seed. nil clk means the real clock.
func NewChaosController(clk Clock, seed int64) *ChaosController {
	return chaos.NewController(clk, seed)
}

// WrapChaos layers chaos injection over an endpoint, steered by ctl.
func WrapChaos(inner Endpoint, ctl *ChaosController) *ChaosEndpoint {
	return chaos.Wrap(inner, ctl)
}

// ParseChaosScenario decodes and validates a JSON scenario file.
func ParseChaosScenario(b []byte) (ChaosScenario, error) { return chaos.ParseScenario(b) }

// ParseChaosDSL parses the compact flag form of a scenario, e.g.
// "seed=7;2s+10s:loss(rate=0.3,burst=5);15s+5s:partition(dir=in)".
func ParseChaosDSL(s string) (ChaosScenario, error) { return chaos.ParseDSL(s) }

// NewSkewedClock wraps a Clock with zero initial skew; attach it to a
// ChaosController so skew impairments drive it.
func NewSkewedClock(inner Clock) *SkewedClock { return chaos.NewSkewedClock(inner) }

// Inbound is one received datagram (transport layer).
type Inbound = transport.Inbound

// Pump drains an endpoint into a handler until the endpoint closes; run
// it on its own goroutine to feed a Gossiper that owns a whole socket.
func Pump(ep Endpoint, h func(Inbound)) { transport.Pump(ep, h) }

// Simulation layer (deterministic, no sockets).
type (
	// SimCluster is a simulated monitoring deployment.
	SimCluster = cluster.SimCluster
	// Consortium is the Fig. 1 multi-cloud scenario.
	Consortium = cluster.Consortium
	// ConsortiumConfig parameterizes BuildConsortium.
	ConsortiumConfig = cluster.ConsortiumConfig
	// LinkParams describes a simulated network link.
	LinkParams = netsim.LinkParams
)

// NewSimCluster creates a simulated deployment with the given default
// link parameters and seed.
func NewSimCluster(def LinkParams, seed int64) *SimCluster {
	return cluster.NewSimCluster(def, seed)
}

// BuildConsortium constructs the education-cloud consortium of Fig. 1.
func BuildConsortium(cfg ConsortiumConfig) *Consortium { return cluster.BuildConsortium(cfg) }

// Consensus layer: Chandra–Toueg consensus driven by these failure
// detectors (the paper's ◇P_ac ⇒ consensus claim, executable).
type (
	// ConsensusCluster is a simulated set of consensus processes.
	ConsensusCluster = consensus.Cluster
	// ConsensusOptions configures NewConsensus.
	ConsensusOptions = consensus.Options
	// ConsensusProcess is one participant.
	ConsensusProcess = consensus.Process
)

// NewConsensus builds a simulated consensus cluster whose processes
// monitor each other with detectors from Options.Factory (default: Chen).
func NewConsensus(opts ConsensusOptions) *ConsensusCluster { return consensus.New(opts) }

// Load harness (internal/load): real-traffic scenario driver spawning
// tens of thousands of named UDP heartbeat senders over a socket pool,
// injecting kill / restart / NAT-rebind faults on a timeline, and
// scoring ground-truth detection latency against the monitor's /watch
// stream. `cmd/sfdload` is the CLI front end.
type (
	// LoadPacer shapes sender timing: interval, jitter, ramp.
	LoadPacer = load.Pacer
	// LoadSpec is a complete load scenario (cohorts, faults, bounds).
	LoadSpec = load.Spec
	// LoadCohort is one homogeneous slice of a load fleet.
	LoadCohort = load.CohortSpec
	// LoadFault schedules one kill/rebind wave over a cohort.
	LoadFault = load.FaultSpec
	// LoadBounds are the pass/fail gates a run is scored against.
	LoadBounds = load.Bounds
	// LoadReport is a run's JSON artifact.
	LoadReport = load.Report
	// LoadFleet runs N logical senders over a pooled socket set.
	LoadFleet = load.Fleet
	// LoadFleetOptions configures a fleet cohort.
	LoadFleetOptions = load.FleetOptions
	// PacedSender is a single jitter/ramp-paced heartbeat sender.
	PacedSender = load.PacedSender
	// LoadFederationSpec is a federation-HA load scenario: heartbeat
	// fleets → leaf monitors → an HA aggregator pair over real loopback
	// UDP, with a scripted kill (and restart) of the active aggregator.
	LoadFederationSpec = load.FederationSpec
	// LoadFederationBounds are a federation-HA run's pass/fail gates
	// (promotion latency, /fleet availability gap, lost transitions).
	LoadFederationBounds = load.FederationBounds
	// LoadFederationReport is a federation-HA run's JSON artifact.
	LoadFederationReport = load.FederationReport
)

// LoadPresets lists the built-in load scenarios.
func LoadPresets() []string { return load.Presets() }

// LoadPreset returns a built-in load scenario by name (datacenter,
// mobile, mixed-fleet); adjust Total/Duration/Bounds before RunLoad.
func LoadPreset(name string) (LoadSpec, error) { return load.Preset(name) }

// RunLoad executes a load scenario end to end and returns its scored
// report; progress (nil to silence) gets periodic status lines.
func RunLoad(spec LoadSpec, progress io.Writer) (*LoadReport, error) {
	return load.Run(spec, progress)
}

// NewLoadFleet builds (without starting) a fleet of logical senders.
func NewLoadFleet(opts LoadFleetOptions) (*LoadFleet, error) { return load.NewFleet(opts) }

// LoadFederationPreset returns the built-in federation-HA scenario;
// adjust StreamsPerLeaf / Duration / Bounds before RunLoadFederation.
func LoadFederationPreset() LoadFederationSpec { return load.FederationPreset() }

// RunLoadFederation executes a federation-HA scenario end to end —
// leaves and an aggregator pair under live heartbeat load, the active
// aggregator killed (and restarted) on a timeline — and scores the
// failover by polling both /fleet surfaces: promotion latency, longest
// availability gap, and transition totals that must not regress.
func RunLoadFederation(spec LoadFederationSpec, progress io.Writer) (*LoadFederationReport, error) {
	return load.RunFederation(spec, progress)
}

// NewPacedHeartbeatSender builds a single paced sender: heartbeats to
// `to` through ep every pacer interval ± jitter, after a ramp delay. A
// non-empty name sends wire-v3 named heartbeats (the monitor keys the
// stream by name instead of source address, so it survives NAT
// rebinds).
func NewPacedHeartbeatSender(ep Endpoint, to, name string, pacer LoadPacer, seed int64, clk Clock) (*PacedSender, error) {
	return load.NewPacedSender(ep, to, name, pacer, seed, clk)
}
