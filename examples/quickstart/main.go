// Quickstart: create an SFD with a QoS requirement, feed it heartbeats,
// and query it — the minimal integration a downstream service needs.
package main

import (
	"fmt"
	"math/rand"
	"time"

	sfd "repro"
)

func main() {
	// The application's QoS requirement (the paper's Q̄oS): detect
	// crashes within 900 ms, make fewer than 0.35 wrong suspicions per
	// second, answer liveness queries correctly 99.4% of the time.
	det := sfd.NewSFD(sfd.Config{
		Interval: 100 * time.Millisecond, // known heartbeat period Δt
		Targets: sfd.Targets{
			MaxTD:  900 * time.Millisecond,
			MaxMR:  0.35,
			MinQAP: 0.994,
		},
	})

	// Feed it heartbeats. In production these come from a
	// sfd.HeartbeatReceiver; here we synthesize a jittery WAN.
	rng := rand.New(rand.NewSource(1))
	var send, recv sfd.Time
	for seq := uint64(0); seq < 3000; seq++ {
		send = sfd.Time(seq) * sfd.Time(100*time.Millisecond)
		recv = send.Add(50*time.Millisecond + time.Duration(rng.Intn(20))*time.Millisecond)
		det.Observe(seq, send, recv)
	}

	now := recv.Add(10 * time.Millisecond)
	fmt.Printf("state:      %v\n", det.State())
	fmt.Printf("margin SM:  %v (self-tuned from the 100ms default)\n", det.Margin())
	fmt.Printf("suspect?    %v (heartbeats flowing)\n", det.Suspect(now))
	fmt.Printf("suspicion:  %.3f (accrual level: fraction of margin consumed)\n",
		det.SuspicionLevel(now))

	// The process goes silent: the accrual level climbs continuously, so
	// different applications can react at different thresholds (§I).
	for _, silence := range []time.Duration{200 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second} {
		t := recv.Add(silence)
		fmt.Printf("after %-6v silence: suspect=%-5v level=%.2f\n",
			silence, det.Suspect(t), det.SuspicionLevel(t))
	}
	fmt.Printf("response:   %s\n", det.Response())
}
