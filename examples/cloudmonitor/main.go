// Cloudmonitor: the paper's Fig. 1 scenario — the U.S. southern-states
// education cloud consortium — as a deterministic simulation. Five
// education clouds each run a manager that monitors the cloud's servers
// with SFD; managers cross-monitor each other over WAN links; a server
// crash, a heavy-loaded server, and a manager outage are injected and
// detected.
package main

import (
	"fmt"
	"time"

	sfd "repro"
)

func main() {
	targets := sfd.Targets{MaxTD: 900 * time.Millisecond, MaxMR: 0.35, MinQAP: 0.994}
	con := sfd.BuildConsortium(sfd.ConsortiumConfig{
		ServersPerCloud: 3,
		Interval:        100 * time.Millisecond,
		Jitter:          2 * time.Millisecond,
		Factory:         sfd.SFDFactory(targets),
		Seed:            2012, // IPDPS 2012
	})

	fmt.Println("consortium: 5 education clouds × 3 servers, cross-monitored managers")
	fmt.Println("warming up 30 simulated seconds...")
	con.RunFor(30*time.Second, 10*time.Millisecond)
	printCloud(con, "GA", "after warm-up")

	// 1. A server crashes.
	fmt.Println("\n>>> GA/server-1 crashes")
	con.Sender("GA/server-1").Crash()
	if lat, ok := con.DetectCrash("GA/manager", "GA/server-1", 10*time.Second); ok {
		fmt.Printf("GA manager detected the crash in %v\n", lat)
	} else {
		fmt.Println("crash NOT detected (unexpected)")
	}

	// 2. A server becomes heavy-loaded: heartbeats stretch but don't
	// stop. Immediately after the load spike the stretched arrivals blow
	// past the tuned margin and the server is suspected; as the sliding
	// window refills with the slower rhythm, the adaptive estimator
	// re-learns the schedule and trust returns — exactly the busy-vs-dead
	// distinction the paper's intro asks detectors to support.
	fmt.Println("\n>>> SC/server-0 becomes heavy-loaded (+250ms per beat)")
	con.Sender("SC/server-0").SetBusy(250 * time.Millisecond)
	con.RunFor(10*time.Second, 10*time.Millisecond)
	printCloud(con, "SC", "right after the load spike")
	con.RunFor(6*time.Minute, 20*time.Millisecond)
	printCloud(con, "SC", "after the window adapts to the slower rhythm")

	// 3. A whole cloud's beacon goes dark: the other clouds agree via
	// quorum ("multiple monitor multiple", §VII).
	fmt.Println("\n>>> VA/beacon crashes (cloud-level outage)")
	con.Sender("VA/beacon").Crash()
	con.RunFor(3*time.Second, 10*time.Millisecond)
	q := con.CrossCloudQuorum("VA")
	sus, votes := q.Suspected("VA/beacon", con.Clk.Now())
	fmt.Printf("cross-cloud quorum: suspected=%v with %d/%d votes\n", sus, votes, len(q.Monitors))

	// Final consortium-wide view.
	fmt.Println("\nfinal status board:")
	for _, name := range []string{"GA", "SC", "NC", "VA", "MD"} {
		printCloud(con, name, "")
	}
}

func printCloud(con *sfd.Consortium, name, label string) {
	cl := con.Clouds[name]
	now := con.Clk.Now()
	if label != "" {
		fmt.Printf("%s cloud (%s):\n", name, label)
	} else {
		fmt.Printf("%s cloud:\n", name)
	}
	for _, r := range cl.Manager.Mon.Snapshot(now) {
		fmt.Printf("  %-14s %-10s level=%.2f\n", r.Peer, r.Status, r.SuspicionLevel)
	}
}
