// Multimonitor: the paper's Fig. 1 "multiple monitor multiple"
// deployment with the gossip dissemination layer on top, as a
// deterministic netsim run. Three monitors watch the same twelve
// heartbeat streams; monitors exchange suspicion digests and only
// declare a stream offline fleet-wide when a weighted quorum concurs.
//
// The run walks through the three situations quorum corroboration
// exists for:
//
//  1. A partition blinds ONE monitor: it locally declares everything
//     offline, but no global verdict fires — the other monitors still
//     hear the heartbeats, and the partitioned monitor's mistake streak
//     crushes its accuracy weight (the Impact-FD idea).
//  2. A process genuinely crashes: every monitor concurs, and the
//     corroborated GlobalOffline verdict fires on each monitor's bus.
//  3. The process restarts with a bumped incarnation (SWIM-style): its
//     first heartbeat refutes all suspicion of its previous life and
//     every monitor recants to GlobalTrust.
package main

import (
	"fmt"
	"time"

	sfd "repro"
	"repro/internal/clock"
	"repro/internal/heartbeat"
	"repro/internal/netsim"
)

const (
	nSubjects    = 12
	beatInterval = 100 * time.Millisecond
)

// monitor is one monitoring host: a netsim node carrying both heartbeat
// and gossip datagrams, a registry, and a gossiper.
type monitor struct {
	name string
	node *netsim.Node
	reg  *sfd.Registry
	g    *sfd.Gossiper
}

// pump drains the node's inbox every 5 ms, routing by magic bytes: "HB"
// heartbeats feed the registry, "SG" digests feed the gossiper — the
// same shared-socket discrimination sfdmon uses on a real UDP port.
func (m *monitor) pump(sim *clock.Sim) {
	sim.AfterFunc(5*time.Millisecond, func(now clock.Time) {
		for _, in := range m.node.Drain() {
			if msg, err := heartbeat.Unmarshal(in.Payload); err == nil {
				if msg.Kind == heartbeat.KindHeartbeat {
					m.reg.Observe(sfd.HeartbeatArrival{
						From: in.From, Seq: msg.Seq, Send: msg.Time, Recv: in.At, Inc: msg.Inc,
					})
				}
				continue
			}
			m.g.HandleDatagram(in.Payload)
		}
		m.pump(sim)
	})
}

// logGlobalEvents prints the corroborated verdicts as they land on this
// monitor's failure-event bus, drained inside the simulation so the
// output order is deterministic.
func (m *monitor) logGlobalEvents(sim *clock.Sim) {
	sub := m.reg.Subscribe(1024)
	var tick func(clock.Time)
	tick = func(clock.Time) {
		for {
			select {
			case ev := <-sub.C():
				switch ev.Type {
				case sfd.EventGlobalSuspect, sfd.EventGlobalOffline, sfd.EventGlobalTrust:
					fmt.Printf("[%s t=%v] %s %s inc=%d (%s)\n",
						m.name, time.Duration(ev.At), ev.Peer, ev.Type, ev.Incarnation, ev.Detail)
				}
			default:
				sim.AfterFunc(10*time.Millisecond, tick)
				return
			}
		}
	}
	sim.AfterFunc(10*time.Millisecond, tick)
}

// subject is one monitored process: an AfterFunc loop heartbeating to
// every monitor until crashed; a restart bumps its incarnation and
// restarts its sequence numbers.
type subject struct {
	name     string
	node     *netsim.Node
	monitors []string
	alive    bool
	inc      uint64
	seq      uint64
}

func (s *subject) loop(sim *clock.Sim, now clock.Time) {
	if s.alive {
		s.seq++
		b := heartbeat.Message{Kind: heartbeat.KindHeartbeat, Seq: s.seq, Time: now, Inc: s.inc}.Marshal()
		for _, m := range s.monitors {
			_ = s.node.Send(m, b)
		}
	}
	sim.AfterFunc(beatInterval, func(t clock.Time) { s.loop(sim, t) })
}

func main() {
	sim := sfd.NewSimClock(0)
	net := netsim.New(sim, sfd.LinkParams{
		DelayBase:  5 * time.Millisecond,
		JitterMean: time.Millisecond,
		JitterStd:  time.Millisecond,
	}, 2012)

	monNames := []string{"monA", "monB", "monC"}
	monitors := make([]*monitor, 0, len(monNames))
	for i, name := range monNames {
		m := &monitor{name: name, node: net.AddNode(name, 4096)}
		m.reg = sfd.NewRegistry(sim, func(string) sfd.Detector {
			return sfd.NewChen(16, beatInterval, 200*time.Millisecond)
		}, sfd.RegistryOptions{
			WheelTick:    10 * time.Millisecond,
			OfflineAfter: 300 * time.Millisecond,
			MaxSilence:   2 * time.Second,
			EvictAfter:   -1,
		})
		m.reg.Start()
		peers := make([]string, 0, 2)
		for _, p := range monNames {
			if p != name {
				peers = append(peers, p)
			}
		}
		m.g = sfd.NewGossiper(m.node, sim, m.reg, peers, sfd.GossipOptions{
			Interval: 150 * time.Millisecond,
			Quorum:   2,
			Seed:     int64(i + 1),
		})
		m.g.Start()
		m.pump(sim)
		m.logGlobalEvents(sim)
		monitors = append(monitors, m)
	}

	// Twelve monitored processes, each heartbeating to all three monitors.
	subjects := make([]*subject, nSubjects)
	for i := range subjects {
		s := &subject{
			name:     fmt.Sprintf("s%02d", i),
			node:     net.AddNode(fmt.Sprintf("s%02d", i), 16),
			monitors: monNames,
			alive:    true,
		}
		stagger := time.Duration(i) * time.Millisecond // spread first beats
		sim.AfterFunc(beatInterval+stagger, func(t clock.Time) { s.loop(sim, t) })
		subjects[i] = s
	}

	fmt.Println("multimonitor: 3 monitors × 12 streams over netsim, gossip quorum 2")
	sim.Advance(5 * time.Second)
	fmt.Printf("[t=%v] warm-up done; every stream trusted on every monitor\n", time.Duration(sim.Now()))

	// 1. Partition: monC stops hearing any subject.
	fmt.Printf("\n>>> [t=%v] partitioning all subjects away from monC\n", time.Duration(sim.Now()))
	for _, s := range subjects {
		net.Partition(s.name, "monC")
	}
	sim.Advance(5 * time.Second)
	monC := monitors[2]
	fmt.Printf("[t=%v] monC local offlines: %d of %d — yet zero global verdicts fired\n",
		time.Duration(sim.Now()), monC.reg.Counters().Offlines, nSubjects)
	fmt.Println("        (quorum 2 unmet: monA and monB still hear every heartbeat)")

	fmt.Printf("\n>>> [t=%v] healing the partition\n", time.Duration(sim.Now()))
	for _, s := range subjects {
		net.Heal(s.name, "monC")
	}
	sim.Advance(3 * time.Second)
	fmt.Printf("[t=%v] monC recovered all streams; %d mistaken suspicions cost it its reputation:\n",
		time.Duration(sim.Now()), nSubjects)
	for _, m := range monitors {
		fmt.Printf("        %s self-reported weight %.2f (mistake rate %.3f)\n",
			m.name, m.g.Weight(), m.g.MistakeRate())
	}

	// 2. A genuine crash.
	victim := subjects[3]
	fmt.Printf("\n>>> [t=%v] %s crashes for real\n", time.Duration(sim.Now()), victim.name)
	victim.alive = false
	sim.Advance(3 * time.Second)
	for _, m := range monitors {
		fmt.Printf("[%s] verdict for %s: %s\n", m.name, victim.name, m.g.VerdictOf(victim.name))
	}

	// 3. Restart with a bumped incarnation.
	fmt.Printf("\n>>> [t=%v] %s restarts with incarnation 1\n", time.Duration(sim.Now()), victim.name)
	victim.alive, victim.inc, victim.seq = true, 1, 0
	sim.Advance(3 * time.Second)
	for _, m := range monitors {
		inc, _ := m.reg.IncarnationOf(victim.name)
		fmt.Printf("[%s] verdict for %s: %s (incarnation %d)\n",
			m.name, victim.name, m.g.VerdictOf(victim.name), inc)
	}

	delivered, dropped := net.Stats()
	fmt.Printf("\nnetwork: %d datagrams delivered, %d dropped — rerun it: same seed, same story\n",
		delivered, dropped)
}
