// Observability: the /metrics pipeline end to end, in one process. Three
// senders heartbeat over a lossy in-memory hub into a receiver feeding
// the sharded registry; the receiver registers its instruments into the
// registry's metric set, and after a couple of seconds the program
// scrapes the set the way Prometheus would — printing receiver counters,
// registry transition counters, per-shard occupancy, and the per-stream
// detector QoS gauges (margin, tuning state, last slot's TD/MR/QAP: the
// paper's Fig. 3 numbers, live).
//
// It also exercises the ground-truth detection-latency tap: one sender
// is killed and the kill instant handed to Registry.MarkFailure, so the
// registry's next suspect transition for that stream lands a sample in
// the sfd_detection_latency_seconds histogram — the same wiring the
// load harness (cmd/sfdload) uses to measure latency at fleet scale.
package main

import (
	"fmt"
	"os"
	"time"

	sfd "repro"
)

func main() {
	// 5% datagram loss keeps the gap-filling and mistake paths busy.
	hub := sfd.NewHub(0.05, 2*time.Millisecond, 1)
	monEP := hub.Endpoint("monitor")
	defer monEP.Close()

	clk := sfd.NewRealClock()
	// Small slots so the self-tuner closes several feedback slots within
	// the demo window and the per-stream QoS gauges have data.
	factory := func(peer string) sfd.Detector {
		cfg := sfd.DefaultConfig()
		cfg.WindowSize = 64
		cfg.SlotHeartbeats = 50
		cfg.Targets = sfd.Targets{MaxTD: 200 * time.Millisecond, MaxMR: 2, MinQAP: 0.9}
		return sfd.NewSFD(cfg)
	}
	reg := sfd.NewRegistry(clk, factory, sfd.RegistryOptions{Shards: 4})
	reg.Start()
	defer reg.Stop()

	recv := sfd.NewHeartbeatReceiver(monEP, clk, reg.Observe)
	recv.InstrumentMetrics(reg.Metrics())
	recv.Start()

	// An application-level instrument rides on the same page.
	demoUptime := reg.Metrics().Gauge("demo_uptime_seconds", "Seconds this demo has been running.")

	var senders []*sfd.HeartbeatSender
	for _, name := range []string{"web-1", "web-2", "db-1"} {
		ep := hub.Endpoint(name)
		defer ep.Close()
		snd := sfd.NewHeartbeatSender(ep, "monitor", 10*time.Millisecond, clk)
		snd.Start()
		senders = append(senders, snd)
	}

	start := time.Now()
	fmt.Println("observability: 3 senders → lossy hub → receiver → registry; scraping in 2s...")
	time.Sleep(1 * time.Second)

	// Kill web-2 and hand the registry the ground-truth instant: when the
	// detector next suspects that stream, the injection→suspect latency is
	// observed into sfd_detection_latency_seconds.
	senders[1].Stop()
	reg.MarkFailure("web-2", clk.Now())
	fmt.Println("observability: killed web-2; waiting for the suspect transition...")
	deadline := time.Now().Add(3 * time.Second)
	for reg.DetectionLatency().Samples == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if dl := reg.DetectionLatency(); dl.Samples > 0 {
		fmt.Printf("observability: web-2 detected %.0fms after the kill\n", dl.Mean*1000)
	}

	time.Sleep(1 * time.Second)
	demoUptime.Set(time.Since(start).Seconds())
	for _, snd := range senders {
		snd.Stop()
	}

	fmt.Println("--- GET /metrics ---")
	if err := reg.Metrics().WritePrometheus(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scrape failed:", err)
		os.Exit(1)
	}
}
