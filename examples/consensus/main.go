// Consensus: the paper claims SFD "belongs to the class ♦P_ac ... which
// is sufficient to solve the consensus problem" (§IV-B). This example
// makes the claim concrete: five simulated replicas run Chandra–Toueg
// rotating-coordinator consensus, each monitoring its peers with an SFD;
// the round-0 coordinator is crashed mid-protocol and the survivors
// still agree on a single proposed value.
package main

import (
	"fmt"
	"time"

	sfd "repro"
)

func main() {
	c := sfd.NewConsensus(sfd.ConsensusOptions{
		N:          5,
		HBInterval: 50 * time.Millisecond,
		StartDelay: 3 * time.Second, // let detectors build arrival history
		Factory: func(string) sfd.Detector {
			return sfd.NewSFD(sfd.Config{
				WindowSize:    20,
				Interval:      50 * time.Millisecond,
				InitialMargin: 200 * time.Millisecond,
			})
		},
		Seed: 2012,
	})

	proposals := []string{"commit-tx-17", "abort", "commit-tx-17", "abort", "commit-tx-17"}
	for i, v := range proposals {
		c.Propose(i, v)
		fmt.Printf("p%d proposes %q\n", i, v)
	}

	// Kill the round-0 coordinator one second in — after it has
	// heartbeated (so SFDs have history) but before the protocol starts.
	c.CrashAt(0, time.Second)
	fmt.Println("p0 (round-0 coordinator) will crash at t=1s; protocol starts at t=3s")

	if !c.Run(60 * time.Second) {
		fmt.Println("consensus did not terminate (unexpected)")
		return
	}
	decision, err := c.Agreement()
	if err != nil {
		fmt.Println("AGREEMENT VIOLATED:", err)
		return
	}
	fmt.Printf("\nall correct processes decided %q\n", decision)
	for i, p := range c.Procs {
		if d, ok := p.Decided(); ok {
			fmt.Printf("  p%d: decided %q (round %d)\n", i, d, p.Round())
		} else {
			fmt.Printf("  p%d: crashed, no decision\n", i)
		}
	}
}
