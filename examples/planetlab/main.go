// Planetlab: the paper's motivating scenario at scale — "PlanetLab ...
// currently consists of 1076 nodes at 494 sites. While lots of nodes are
// inactive at any time, yet we do not know the exact status (active,
// slow, offline, or dead). Therefore, it is impractical to login one by
// one without any guidance." (§I)
//
// One monitor watches 200 simulated nodes in mixed condition — healthy,
// heavily loaded, behind lossy links, crashed — and prints the guidance
// board the paper asks for: a status summary computed from SFD suspicion
// levels, without logging into anything.
package main

import (
	"fmt"
	"time"

	sfd "repro"
)

func main() {
	const (
		nNodes   = 200
		nCrashed = 18 // dead
		nBusy    = 12 // heavily loaded (stretched heartbeats)
		nLossy   = 25 // behind bursty-loss links
	)

	targets := sfd.Targets{MaxTD: 2 * time.Second, MaxMR: 0.5, MinQAP: 0.99}
	sc := sfd.NewSimCluster(sfd.LinkParams{
		DelayBase:  20 * time.Millisecond,
		JitterMean: 4 * time.Millisecond,
		JitterStd:  6 * time.Millisecond,
	}, 494)

	mon := sc.AddMonitor("observatory", sfd.SFDFactory(targets), sfd.MonitorOptions{
		OfflineAfter: 8 * time.Second,
	})

	names := make([]string, nNodes)
	for i := range names {
		names[i] = fmt.Sprintf("node-%03d", i)
		s := sc.AddSender(names[i], 200*time.Millisecond, 10*time.Millisecond, "observatory")
		mon.Mon.Watch(names[i])
		switch {
		case i < nBusy:
			s.SetBusy(300 * time.Millisecond) // heavy loaded → slow
		case i < nBusy+nLossy:
			sc.Net.SetLink(names[i], "observatory", sfd.LinkParams{
				DelayBase: 20 * time.Millisecond, JitterMean: 10 * time.Millisecond,
				JitterStd: 15 * time.Millisecond, LossRate: 0.08, MeanBurst: 5,
			})
		}
	}

	fmt.Printf("monitoring %d nodes from one observatory (SFD per node)...\n", nNodes)
	sc.RunFor(30*time.Second, 20*time.Millisecond)

	// Crash a block of nodes mid-run.
	for i := nNodes - nCrashed; i < nNodes; i++ {
		sc.Sender(names[i]).Crash()
	}
	fmt.Printf("crashed %d nodes; letting detection settle...\n", nCrashed)
	sc.RunFor(20*time.Second, 20*time.Millisecond)

	// The guidance board.
	now := sc.Clk.Now()
	counts := map[sfd.PeerStatus]int{}
	var suspects []string
	for _, r := range mon.Mon.Snapshot(now) {
		counts[r.Status]++
		if r.Status >= sfd.PeerSuspected {
			suspects = append(suspects, r.Peer)
		}
	}
	fmt.Println("\nstatus summary (the 'guidance' the paper asks for):")
	for _, st := range []sfd.PeerStatus{sfd.PeerActive, sfd.PeerBusy, sfd.PeerSuspected, sfd.PeerOffline, sfd.PeerUnknown} {
		if counts[st] > 0 {
			fmt.Printf("  %-10s %4d nodes\n", st, counts[st])
		}
	}
	fmt.Printf("\nnodes to investigate (%d):\n", len(suspects))
	for i, s := range suspects {
		sep := "  "
		if (i+1)%6 == 0 {
			sep = "\n"
		}
		fmt.Printf("%s%s", s, sep)
	}
	fmt.Println()

	dead := 0
	for i := nNodes - nCrashed; i < nNodes; i++ {
		if st, _ := mon.Mon.StatusOf(names[i], now); st >= sfd.PeerSuspected {
			dead++
		}
	}
	fmt.Printf("\ndetection check: %d/%d crashed nodes flagged\n", dead, nCrashed)
}
