// Chaosdrill: a loopback fleet run through a scripted
// partition-and-heal drill by the chaos injection layer
// (internal/chaos). One monitor watches four heartbeat streams over the
// in-memory hub; a Scenario written in the same flag DSL that
// `sfdmon -chaos` accepts blinds the monitor to two of them for four
// seconds, then heals. The drill shows the failure-detection story the
// acceptance tests assert: the partitioned streams walk
// suspect → offline while the untouched streams never flicker, and the
// first post-heal heartbeat re-trusts every victim.
//
// Everything runs on the simulated clock with seeded injection
// randomness, so the output — including the chaos layer's own injection
// log — is identical on every run.
package main

import (
	"fmt"
	"strings"
	"time"

	sfd "repro"
	"repro/internal/clock"
	"repro/internal/heartbeat"
	"repro/internal/transport"
)

const (
	nSubjects    = 4
	beatInterval = 100 * time.Millisecond
)

// The drill script, in the DSL sfdmon's -chaos flag takes: at t=3s,
// drop every inbound datagram from s0 and s1 for 4 seconds.
const drill = "name=partition-drill;seed=42;3s+4s:partition(dir=in,peers=s0|s1)"

func main() {
	sim := sfd.NewSimClock(0)
	hub := transport.NewHub(0, 0, 1)

	// The monitor's endpoint, wrapped: datagrams pulled off the raw hub
	// endpoint pass through the controller's armed impairments before
	// the receiver sees them.
	ctl := sfd.NewChaosController(sim, 0)
	monRaw := hub.Endpoint("monitor")
	monEp := sfd.WrapChaos(monRaw, ctl)

	reg := sfd.NewRegistry(sim, sfd.SFDFactory(sfd.Targets{
		MaxTD: 500 * time.Millisecond, MaxMR: 0.5, MinQAP: 0.9,
	}), sfd.RegistryOptions{
		WheelTick:    10 * time.Millisecond,
		OfflineAfter: 500 * time.Millisecond,
		EvictAfter:   -1,
	})
	reg.Start()
	sub := reg.Subscribe(1024)

	// Pump loop: every 5 ms push raw arrivals through the chaos layer,
	// then feed whatever survives to the registry — the same two-stage
	// path sfdmon runs, driven synchronously under the sim clock.
	var pump func(clock.Time)
	pump = func(now clock.Time) {
		for {
			select {
			case in := <-monRaw.Recv():
				monEp.Process(in)
			default:
				goto drainImpaired
			}
		}
	drainImpaired:
		for {
			select {
			case in := <-monEp.Recv():
				if msg, err := heartbeat.Unmarshal(in.Payload); err == nil && msg.Kind == heartbeat.KindHeartbeat {
					reg.Observe(sfd.HeartbeatArrival{
						From: in.From, Seq: msg.Seq, Send: msg.Time, Recv: sim.Now(), Inc: msg.Inc,
					})
				}
			default:
				sim.AfterFunc(5*clock.Millisecond, pump)
				return
			}
		}
	}
	sim.AfterFunc(5*clock.Millisecond, pump)

	// Four subjects heartbeating to the monitor, starts staggered so
	// their streams interleave.
	for i := 0; i < nSubjects; i++ {
		name := fmt.Sprintf("s%d", i)
		ep := hub.Endpoint(name)
		seq := uint64(0)
		var beat func(clock.Time)
		beat = func(now clock.Time) {
			seq++
			b := heartbeat.Message{Kind: heartbeat.KindHeartbeat, Seq: seq, Time: now, Inc: 1}.Marshal()
			_ = ep.Send("monitor", b)
			sim.AfterFunc(clock.Duration(beatInterval), beat)
		}
		sim.AfterFunc(clock.Duration(beatInterval+time.Duration(i)*time.Millisecond), beat)
	}

	// Arm the scenario. Play schedules each step on the sim clock; the
	// partition arms itself at 3s and clears at 7s with no further help.
	sc, err := sfd.ParseChaosDSL(drill)
	if err != nil {
		panic(err)
	}
	if err := ctl.Play(sc); err != nil {
		panic(err)
	}
	fmt.Printf("chaosdrill: scenario %q (seed %d): %s\n", sc.Name, ctl.Seed(), sc.Steps[0].Impairment)

	// drainEvents prints the failure-bus transitions accumulated since
	// the last call; inside the deterministic run the order is stable.
	drainEvents := func() {
		for {
			select {
			case ev := <-sub.C():
				switch ev.Type {
				case sfd.EventSuspect, sfd.EventOffline, sfd.EventTrust:
					fmt.Printf("  [t=%v] %s %s\n", time.Duration(ev.At), ev.Peer, ev.Type)
				}
			default:
				return
			}
		}
	}

	fmt.Println("\n>>> warm-up: all four streams trusted")
	sim.Advance(3 * clock.Second)
	drainEvents()

	fmt.Println("\n>>> t=3s: inbound partition drops s0 and s1 (s2, s3 untouched)")
	// Stop one tick short of 7s: the heal and the first surviving
	// heartbeat coalesce at exactly t=7s and belong to the next section.
	sim.Advance(4*clock.Second - clock.Millisecond)
	drainEvents()
	c := ctl.Counters()
	fmt.Printf("  partition dropped %d datagrams; monitor saw %d\n", c.PartDrops, c.RecvSeen)

	fmt.Println("\n>>> t=7s: partition healed; first surviving heartbeat recants each suspicion")
	sim.Advance(3*clock.Second + clock.Millisecond)
	drainEvents()

	rc := reg.Counters()
	fmt.Printf("\nregistry: heartbeats=%d suspects=%d offline=%d trusts=%d (streams=%d)\n",
		rc.Heartbeats, rc.Suspects, rc.Offlines, rc.Trusts, rc.Streams)
	fmt.Printf("chaos:    armed=%d cleared=%d active now=%d\n",
		c.StepsArmed, ctl.Counters().StepsCleared, len(ctl.Active()))

	log := ctl.LogBytes()
	lines := strings.Split(strings.TrimRight(string(log), "\n"), "\n")
	fmt.Printf("\ninjection log: %d bytes, %d entries — first drops (seed-deterministic, byte-identical per run):\n",
		len(log), len(lines))
	shown := 0
	for _, l := range lines {
		if strings.Contains(l, "drop:partition") {
			fmt.Printf("  %s\n", l)
			if shown++; shown == 3 {
				break
			}
		}
	}
	reg.Stop()
	fmt.Println("\nrerun it: same seed, same story — byte for byte.")
}
