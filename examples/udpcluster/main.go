// Udpcluster: a live, real-socket deployment on localhost — several
// server processes heartbeat over UDP to one monitor running an SFD per
// peer, with an RTT probe alongside (the paper's experimental setup,
// §II-B and §V, at laptop scale). Two servers are crashed mid-run and
// the monitor's status board shows detection and the survivors.
package main

import (
	"fmt"
	"time"

	sfd "repro"
)

func main() {
	clk := sfd.NewRealClock()

	// Monitor endpoint (process q).
	monEP, err := sfd.ListenUDP("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer monEP.Close()

	targets := sfd.Targets{MaxTD: time.Second, MaxMR: 1, MinQAP: 0.99}
	mon := sfd.NewMonitor(clk, sfd.SFDFactory(targets), sfd.MonitorOptions{
		OfflineAfter: 5 * time.Second,
	})
	recv := sfd.NewHeartbeatReceiver(monEP, clk, mon.Observe)
	recv.Start()
	fmt.Printf("monitor listening on %s\n", monEP.Addr())

	// Five server processes (process p × 5), each with its own socket.
	const nServers = 5
	senders := make([]*sfd.HeartbeatSender, nServers)
	for i := range senders {
		ep, err := sfd.ListenUDP("127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		defer ep.Close()
		senders[i] = sfd.NewHeartbeatSender(ep, monEP.Addr(), 20*time.Millisecond, clk)
		senders[i].Start()
		fmt.Printf("server %d heartbeating from %s\n", i, ep.Addr())
	}

	// RTT probe against the monitor (the paper's parallel ping process).
	probeEP, err := sfd.ListenUDP("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer probeEP.Close()
	prb := sfd.NewProber(probeEP, monEP.Addr(), clk)
	prb.Start(200 * time.Millisecond)

	time.Sleep(2 * time.Second)
	board(mon, clk, "all servers alive")
	if rtt, ok := prb.RTT(); ok {
		fmt.Printf("rtt probe: %v over %d samples (network connected)\n", rtt, prb.Samples())
	}

	fmt.Println("\n>>> crashing servers 1 and 3")
	senders[1].Crash()
	senders[3].Crash()
	time.Sleep(1500 * time.Millisecond)
	board(mon, clk, "after crashes")

	fmt.Println("\n>>> waiting for the offline grace period")
	time.Sleep(5 * time.Second)
	board(mon, clk, "crashed servers now offline")

	for _, s := range senders {
		if !s.Crashed() {
			s.Stop()
		}
	}
	prb.Stop()
}

func board(mon *sfd.Monitor, clk sfd.Clock, label string) {
	fmt.Printf("--- status board (%s) ---\n", label)
	for _, r := range mon.Snapshot(clk.Now()) {
		fmt.Printf("  %-22s %-10s level=%-8.2f lastSeq=%d\n",
			r.Peer, r.Status, r.SuspicionLevel, r.LastSeq)
	}
}
