// Selftuning: watch the feedback loop of §IV work. An SFD starts with a
// hopelessly conservative 3-second safety margin on a WAN-1-like trace;
// slot by slot, the Algorithm-1 feedback shrinks SM until the measured
// QoS enters the target box, then holds it there. A second run asks for
// the impossible and receives the paper's "can not satisfy" response.
// A third run shows the *general* method retrofitting Chen FD.
package main

import (
	"fmt"
	"time"

	sfd "repro"
)

func main() {
	gp, err := sfd.TracePreset("WAN-1")
	if err != nil {
		panic(err)
	}
	gp.Count = 150_000
	tr := sfd.CollectTrace(gp.Meta, sfd.NewTraceGenerator(gp))

	targets := sfd.Targets{MaxTD: 900 * time.Millisecond, MaxMR: 0.35, MinQAP: 0.994}

	// --- Run 1: feasible targets, bad initial parameter -------------
	det := sfd.NewSFD(sfd.Config{
		InitialMargin:  3 * time.Second, // absurdly conservative SM₁
		SlotHeartbeats: 500,
		Targets:        targets,
	})
	res := sfd.Replay(tr.Stream(), det)

	fmt.Printf("run 1: SM₁ = 3s, targets %v\n", targets)
	fmt.Printf("  final state:  %v\n", det.State())
	fmt.Printf("  final margin: %v\n", det.Margin())
	fmt.Printf("  measured:     %s\n", res)
	fmt.Println("  margin trajectory (every ~20th adjustment slot):")
	hist := det.History()
	step := len(hist)/15 + 1
	for i := 0; i < len(hist); i += step {
		a := hist[i]
		bar := int(a.Margin / (50 * time.Millisecond))
		if bar > 60 {
			bar = 60
		}
		fmt.Printf("    slot %4d %v %-9s %s\n", a.Slot, a.Margin, a.Verdict, bars(bar))
	}

	// --- Run 2: infeasible targets ----------------------------------
	impossible := sfd.Targets{MaxTD: time.Millisecond, MaxMR: 1e-9, MinQAP: 0.9999999}
	bad := sfd.NewSFD(sfd.Config{
		SlotHeartbeats:   500,
		Targets:          impossible,
		HaltOnInfeasible: true,
	})
	sfd.Replay(tr.Stream(), bad)
	fmt.Printf("\nrun 2: impossible targets %v\n", impossible)
	fmt.Printf("  state:    %v\n", bad.State())
	fmt.Printf("  response: %s\n", bad.Response())

	// --- Run 3: the general method driving Chen FD ------------------
	chen := sfd.NewChen(1000, 0, 2*time.Second)
	tuner := sfd.NewSelfTuner(sfd.TunableChen{Chen: chen}, sfd.TunerOptions{
		SlotHeartbeats: 500,
		Targets:        targets,
	})
	sfd.Replay(tr.Stream(), tuner)
	fmt.Printf("\nrun 3: general method wrapping Chen FD (α₁ = 2s)\n")
	fmt.Printf("  tuned α:  %v\n", chen.Alpha())
	fmt.Printf("  state:    %v\n", tuner.State())
}

func bars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
