package sfd_test

import (
	"bytes"
	"testing"
	"time"

	sfd "repro"
)

// These tests exercise the repository through its public API only — the
// way a downstream user would.

const msA = sfd.Duration(time.Millisecond)

func TestPublicSFDLifecycle(t *testing.T) {
	det := sfd.NewSFD(sfd.Config{
		WindowSize: 50,
		Interval:   100 * msA,
		Targets:    sfd.Targets{MaxTD: time.Second, MaxMR: 1, MinQAP: 0.99},
	})
	var last sfd.Time
	for i := 0; i < 200; i++ {
		send := sfd.Time(i) * sfd.Time(100*msA)
		recv := send.Add(3 * msA)
		det.Observe(uint64(i), send, recv)
		last = recv
	}
	if !det.Ready() {
		t.Fatal("not ready")
	}
	if det.Suspect(last.Add(10 * msA)) {
		t.Fatal("suspecting a live process")
	}
	if !det.Suspect(last.Add(10 * time.Second)) {
		t.Fatal("not suspecting after long silence")
	}
	if det.State() == sfd.StateWarmup {
		t.Fatal("still in warmup")
	}
	if det.Response() == "" {
		t.Fatal("no response text")
	}
}

func TestPublicBaselinesImplementDetector(t *testing.T) {
	dets := []sfd.Detector{
		sfd.NewChen(100, 100*msA, 50*msA),
		sfd.NewBertier(100, 100*msA, sfd.BertierParams{}),
		sfd.NewPhi(100, 8, 0),
		sfd.NewFixed(500*msA, 5),
		sfd.NewSFD(sfd.Config{Interval: 100 * msA}),
	}
	for _, d := range dets {
		var last sfd.Time
		for i := 0; i < 150; i++ {
			send := sfd.Time(i) * sfd.Time(100*msA)
			last = send.Add(2 * msA)
			d.Observe(uint64(i), send, last)
		}
		if d.FreshnessPoint() == 0 {
			t.Errorf("%s: no freshness point", d.Name())
		}
		if !d.Suspect(last.Add(time.Minute)) {
			t.Errorf("%s: not suspecting after a minute of silence", d.Name())
		}
		d.Reset()
		if d.FreshnessPoint() != 0 {
			t.Errorf("%s: Reset incomplete", d.Name())
		}
	}
}

func TestPublicAccrualDetectors(t *testing.T) {
	accruals := []sfd.Accrual{
		sfd.NewPhi(100, 4, 0),
		sfd.NewSFD(sfd.Config{Interval: 100 * msA, InitialMargin: 100 * msA}),
	}
	for _, a := range accruals {
		var last sfd.Time
		for i := 0; i < 120; i++ {
			send := sfd.Time(i) * sfd.Time(100*msA)
			last = send.Add(2 * msA)
			a.Observe(uint64(i), send, last)
		}
		lvlNow := a.SuspicionLevel(last.Add(10 * msA))
		lvlLate := a.SuspicionLevel(last.Add(5 * time.Second))
		if lvlLate <= lvlNow {
			t.Errorf("%s: suspicion not increasing (%v → %v)", a.Name(), lvlNow, lvlLate)
		}
	}
}

func TestPublicTracePipeline(t *testing.T) {
	gp, err := sfd.TracePreset("WAN-1")
	if err != nil {
		t.Fatal(err)
	}
	gp.Count = 5000
	tr := sfd.CollectTrace(gp.Meta, sfd.NewTraceGenerator(gp))
	if tr.Len() != 5000 {
		t.Fatalf("trace len %d", tr.Len())
	}

	st := sfd.AnalyzeTrace("WAN-1", tr.Stream())
	if st.Total != 5000 {
		t.Fatalf("analyze total %d", st.Total)
	}

	var buf bytes.Buffer
	if err := sfd.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := sfd.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatal("codec round trip lost records")
	}

	res := sfd.Replay(tr.Stream(), sfd.NewChen(200, 0, 100*msA))
	if res.Arrivals == 0 || res.TDAvg <= 0 {
		t.Fatalf("replay result empty: %+v", res)
	}

	out := sfd.ReplayWithCrash(tr.Stream(), sfd.NewChen(200, 0, 100*msA), 2500)
	if out.Latency <= 0 {
		t.Fatal("crash replay found no latency")
	}

	curve := sfd.Sweep(tr, "chen", func(a float64) sfd.Detector {
		return sfd.NewChen(200, 0, sfd.Duration(a)*msA)
	}, []float64{0, 100, 400})
	if len(curve.Points) != 3 {
		t.Fatal("sweep points missing")
	}
}

func TestPublicPresetNames(t *testing.T) {
	names := sfd.TracePresetNames()
	if len(names) != 7 || names[0] != "WAN-JPCH" {
		t.Fatalf("preset names = %v", names)
	}
}

func TestPublicLiveStackOverHub(t *testing.T) {
	hub := sfd.NewHub(0, 0, 1)
	pEP := hub.Endpoint("p")
	qEP := hub.Endpoint("q")
	defer pEP.Close()

	clk := sfd.NewRealClock()
	mon := sfd.NewMonitor(clk, sfd.SFDFactory(sfd.Targets{}), sfd.MonitorOptions{})
	recv := sfd.NewHeartbeatReceiver(qEP, clk, mon.Observe)
	recv.Start()

	snd := sfd.NewHeartbeatSender(pEP, "q", 5*time.Millisecond, clk)
	snd.Start()
	// Let the detector accumulate real history before judging or
	// crashing — a single-arrival detector has no freshness point yet.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if received, _ := recv.Counters(); received >= 50 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, ok := mon.StatusOf("p", clk.Now())
	if !ok || st != sfd.PeerActive {
		t.Fatalf("live peer status = %v (ok=%v)", st, ok)
	}

	snd.Crash()
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st, _ := mon.StatusOf("p", clk.Now()); st >= sfd.PeerSuspected {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st, _ := mon.StatusOf("p", clk.Now()); st < sfd.PeerSuspected {
		t.Fatalf("crashed peer still %v", st)
	}
	qEP.Close()
	recv.Wait()
}

func TestPublicSimClusterAndConsortium(t *testing.T) {
	con := sfd.BuildConsortium(sfd.ConsortiumConfig{
		ServersPerCloud: 1,
		Interval:        100 * msA,
		Factory: func(string) sfd.Detector {
			return sfd.NewChen(30, 100*msA, 300*msA)
		},
		Seed: 3,
	})
	con.RunFor(10*time.Second, 10*time.Millisecond)
	cl := con.Clouds["GA"]
	if cl == nil {
		t.Fatal("GA cloud missing")
	}
	now := con.Clk.Now()
	snap := cl.Manager.Mon.Snapshot(now)
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	for _, r := range snap {
		if r.Status != sfd.PeerActive {
			t.Fatalf("%s not active: %v", r.Peer, r.Status)
		}
	}
}

func TestPublicSelfTunerGeneralMethod(t *testing.T) {
	ch := sfd.NewChen(50, 100*msA, 2*time.Second)
	tuner := sfd.NewSelfTuner(sfd.TunableChen{Chen: ch}, sfd.TunerOptions{
		SlotHeartbeats: 100,
		Targets:        sfd.Targets{MaxTD: 400 * msA, MaxMR: 10, MinQAP: 0.5},
	})
	for i := 0; i < 2000; i++ {
		send := sfd.Time(i) * sfd.Time(100*msA)
		tuner.Observe(uint64(i), send, send.Add(3*msA))
	}
	if ch.Alpha() >= 2*time.Second {
		t.Fatalf("general method failed to tune Chen: α=%v", ch.Alpha())
	}
}

func TestPublicConfigure(t *testing.T) {
	net := sfd.NetworkStats{
		LossRate:  0.004,
		DelayMean: 140 * time.Millisecond,
		DelayStd:  15 * time.Millisecond,
	}
	cfg, err := sfd.Configure(net, sfd.Requirements{
		MaxTD: time.Second, MaxMR: 0.5, MinQAP: 0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Interval <= 0 || cfg.PredictedTD > time.Second {
		t.Fatalf("bad configuration: %+v", cfg)
	}
	// Infeasible request surfaces ErrInfeasible.
	_, err = sfd.Configure(net, sfd.Requirements{MaxTD: time.Millisecond, MaxMR: 1e-9, MinQAP: 0.99999})
	if err != sfd.ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestPublicReactorEscalation(t *testing.T) {
	r := sfd.NewReactor()
	var fired []string
	r.On(0.5, "warn", func(peer string, lvl float64, at sfd.Time) { fired = append(fired, "warn") })
	r.On(2.0, "failover", func(peer string, lvl float64, at sfd.Time) { fired = append(fired, "failover") })
	r.Evaluate("db-1", 0.7, 0)
	r.Evaluate("db-1", 3.0, 0)
	if len(fired) != 2 || fired[0] != "warn" || fired[1] != "failover" {
		t.Fatalf("escalation = %v", fired)
	}
}

func TestPublicConsensus(t *testing.T) {
	c := sfd.NewConsensus(sfd.ConsensusOptions{N: 3, Seed: 1})
	c.Propose(0, "x")
	c.Propose(1, "y")
	c.Propose(2, "z")
	if !c.Run(30 * time.Second) {
		t.Fatal("consensus did not terminate")
	}
	v, err := c.Agreement()
	if err != nil || v == "" {
		t.Fatalf("agreement: %q, %v", v, err)
	}
}

func TestPublicVariantDetectorsAndElector(t *testing.T) {
	rto := sfd.NewRTO(0, 0)
	pe := sfd.NewPhiExp(50, 4)
	var last sfd.Time
	for i := 0; i < 100; i++ {
		send := sfd.Time(i) * sfd.Time(100*msA)
		last = send.Add(2 * msA)
		rto.Observe(uint64(i), send, last)
		pe.Observe(uint64(i), send, last)
	}
	if !rto.Suspect(last.Add(time.Minute)) || !pe.Suspect(last.Add(time.Minute)) {
		t.Fatal("variant detectors never suspect")
	}

	mon := sfd.NewMonitor(sfd.NewSimClock(0), func(string) sfd.Detector {
		return sfd.NewChen(20, 100*msA, 100*msA)
	}, sfd.MonitorOptions{})
	for i := 0; i < 30; i++ {
		send := sfd.Time(i) * sfd.Time(100*msA)
		mon.Observe(sfd.HeartbeatArrival{From: "a", Seq: uint64(i), Send: send, Recv: send.Add(msA)})
	}
	el := sfd.NewElector("self", mon, []string{"a", "self"})
	if l := el.Leader(sfd.Time(29 * 100 * int64(msA)).Add(5 * msA)); l != "a" {
		t.Fatalf("leader = %q, want a", l)
	}
	board := sfd.FormatSnapshot(mon.Snapshot(sfd.Time(3 * int64(time.Second))))
	if board == "" {
		t.Fatal("empty board")
	}
	counts, _ := sfd.SummarizeSnapshot(mon.Snapshot(sfd.Time(2900 * int64(msA))))
	if len(counts) == 0 {
		t.Fatal("empty summary")
	}
}

func TestPublicSimClusterDirect(t *testing.T) {
	sc := sfd.NewSimCluster(sfd.LinkParams{DelayBase: 2 * msA}, 9)
	mon := sc.AddMonitor("q", sfd.SFDFactory(sfd.Targets{}), sfd.MonitorOptions{})
	sc.AddSender("p", 100*msA, msA, "q")
	mon.Mon.Watch("p")
	sc.RunFor(10*time.Second, 10*time.Millisecond)
	if st, ok := mon.Mon.StatusOf("p", sc.Clk.Now()); !ok || st != sfd.PeerActive {
		t.Fatalf("sim cluster peer status %v,%v", st, ok)
	}
	sc.Sender("p").Crash()
	if lat, ok := sc.DetectCrash("q", "p", 10*time.Second); !ok || lat <= 0 {
		t.Fatalf("crash detection failed: %v,%v", lat, ok)
	}
}

func TestPublicRegistryLifecycle(t *testing.T) {
	sim := sfd.NewSimClock(0)
	reg := sfd.NewRegistry(sim, func(string) sfd.Detector {
		return sfd.NewFixed(300*msA, 1)
	}, sfd.RegistryOptions{
		WheelTick:    10 * msA,
		OfflineAfter: 500 * msA,
		EvictAfter:   500 * msA,
	})
	reg.Start()
	defer reg.Stop()
	sub := reg.Subscribe(16)
	defer sub.Close()

	// Heartbeat every 100 ms for 2 s, then crash.
	var seq uint64
	for now := sfd.Time(0); now < sfd.Time(2*time.Second); now = now.Add(100 * msA) {
		sim.Advance(100 * msA)
		reg.Observe(sfd.HeartbeatArrival{From: "p", Seq: seq, Send: now, Recv: sim.Now()})
		seq++
	}
	if st, ok := reg.StatusOf("p", sim.Now()); !ok || st != sfd.PeerActive {
		t.Fatalf("live status = %v (ok=%v)", st, ok)
	}
	sim.Advance(3 * time.Second) // silence: suspect → offline → evicted
	want := []sfd.EventType{sfd.EventSuspect, sfd.EventOffline, sfd.EventEvicted}
	for _, w := range want {
		select {
		case ev := <-sub.C():
			if ev.Type != w || ev.Peer != "p" {
				t.Fatalf("event %v, want %v for p", ev, w)
			}
		default:
			t.Fatalf("missing %v event", w)
		}
	}
	if reg.Len() != 0 {
		t.Fatalf("registry holds %d streams after eviction", reg.Len())
	}
	c := reg.Counters()
	if c.Heartbeats != uint64(seq) || c.Evictions != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestPublicDefaultConfigAndWindowSize(t *testing.T) {
	cfg := sfd.DefaultConfig()
	if cfg.WindowSize != sfd.DefaultWindowSize || sfd.DefaultWindowSize != 1000 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}

func TestPublicSimClockDeterminism(t *testing.T) {
	clk := sfd.NewSimClock(0)
	fired := false
	clk.AfterFunc(time.Second, func(sfd.Time) { fired = true })
	clk.Advance(999 * time.Millisecond)
	if fired {
		t.Fatal("fired early")
	}
	clk.Advance(time.Millisecond)
	if !fired {
		t.Fatal("did not fire")
	}
}

func TestPublicTopicSubscriptions(t *testing.T) {
	if !sfd.MatchTopic("eu/+/web-1/#", "eu/zrh/web-1/api") {
		t.Fatal("MatchTopic missed an in-subtree name")
	}
	if sfd.MatchTopic("eu/+/web-1/#", "us/iad/web-1/api") {
		t.Fatal("MatchTopic crossed subtrees")
	}
	if err := sfd.ValidateStreamName("a//b"); err == nil {
		t.Fatal("ValidateStreamName accepted an empty segment")
	}
	if err := sfd.ValidateTopicFilter("a/#/b"); err == nil {
		t.Fatal("ValidateTopicFilter accepted a non-final #")
	}

	sim := sfd.NewSimClock(0)
	reg := sfd.NewRegistry(sim, func(string) sfd.Detector {
		return sfd.NewFixed(300*msA, 1)
	}, sfd.RegistryOptions{WheelTick: 10 * msA, OfflineAfter: -1, EvictAfter: -1})
	reg.Start()
	defer reg.Stop()

	sub, err := reg.SubscribeTopic("eu/#", 16)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if _, err := reg.SubscribeTopic("eu//bad", 16); err == nil {
		t.Fatal("SubscribeTopic accepted an invalid filter")
	}

	// Two peers heartbeat, then go silent: only the eu one is routed.
	for i := 0; i < 3; i++ {
		for _, p := range []string{"eu/zrh/web-1", "us/iad/web-9"} {
			reg.Observe(sfd.HeartbeatArrival{From: p, Seq: uint64(i), Send: sim.Now(), Recv: sim.Now()})
		}
		sim.Advance(100 * msA)
	}
	sim.Advance(time.Second)

	select {
	case ev := <-sub.C():
		if ev.Type != sfd.EventSuspect || ev.Peer != "eu/zrh/web-1" {
			t.Fatalf("routed event = %v", ev)
		}
	default:
		t.Fatal("topic subscription missed its suspect event")
	}
	select {
	case ev := <-sub.C():
		t.Fatalf("out-of-subtree event leaked: %v", ev)
	default:
	}

	var st sfd.FanoutStats = reg.Bus().FanoutStats()
	if st.Subscriptions != 1 || st.Matches != 1 {
		t.Fatalf("fanout stats = %+v", st)
	}
	var ss []sfd.SubscriptionStats = reg.Bus().SubscriptionStats()
	if len(ss) != 1 || ss[0].Filter != "eu/#" || ss[0].Delivered != 1 {
		t.Fatalf("subscription stats = %+v", ss)
	}
}
