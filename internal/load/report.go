package load

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/registry"
)

// CohortReport summarizes one cohort's send side.
type CohortReport struct {
	Name       string            `json:"name"`
	Count      int               `json:"count"`
	IntervalMS float64           `json:"interval_ms"`
	Sent       uint64            `json:"sent"`
	SendErrors uint64            `json:"send_errors"`
	Chaos      *chaos.Counters   `json:"chaos,omitempty"`
}

// QoSAggregate rolls the paper's per-stream QoS metrics up over one
// monitor's registry: how many streams each lifecycle phase holds, how
// many detectors are self-tuning, and the mean of the last measured
// slot's TD / MR / QAP across tuned streams.
type QoSAggregate struct {
	Streams   int            `json:"streams"`
	Phases    map[string]int `json:"phases"`
	Tuned     int            `json:"tuned"`
	Measured  int            `json:"measured"`
	MeanTDS   float64        `json:"mean_td_s"`
	MeanMR    float64        `json:"mean_mr_per_s"`
	MeanQAP   float64        `json:"mean_qap"`
}

// MonitorReport is one monitor node's receive-side view.
type MonitorReport struct {
	Addr          string                     `json:"addr"`
	Heartbeats    uint64                     `json:"heartbeats"`
	UDPReceived   uint64                     `json:"udp_received"`
	UDPDropped    uint64                     `json:"udp_dropped"`
	Stale         uint64                     `json:"stale"`
	Suspects      uint64                     `json:"suspects"`
	Trusts        uint64                     `json:"trusts"`
	Offlines      uint64                     `json:"offlines"`
	QoS           QoSAggregate               `json:"qos"`
	Detection     registry.DetectionLatency  `json:"registry_detection_latency"`
	WatchEvents   uint64                     `json:"watch_events"`
	WatchDropped  uint64                     `json:"watch_dropped"`
	WatchReconns  uint64                     `json:"watch_reconnects"`
}

// Report is the run's JSON artifact.
type Report struct {
	Scenario   string          `json:"scenario"`
	StartedAt  time.Time       `json:"started_at"`
	WallTime   float64         `json:"wall_time_s"`
	Total      int             `json:"total_senders"`
	DurationS  float64         `json:"duration_s"`
	Seed       int64           `json:"seed"`
	Monitors   []MonitorReport `json:"monitors"`
	Cohorts    []CohortReport  `json:"cohorts"`
	Tracker    TrackerStats    `json:"ground_truth"`
	Bounds     Bounds          `json:"bounds"`
	Violations []string        `json:"violations,omitempty"`
	Pass       bool            `json:"pass"`
}

// evaluate scores the report against the bounds, filling Violations and
// Pass.
func (r *Report) evaluate() {
	b := r.Bounds
	add := func(format string, a ...any) {
		r.Violations = append(r.Violations, fmt.Sprintf(format, a...))
	}
	if b.MaxSpurious >= 0 && r.Tracker.Spurious > b.MaxSpurious {
		add("spurious transitions %d > max %d", r.Tracker.Spurious, b.MaxSpurious)
	}
	if b.MaxMissed >= 0 && r.Tracker.Missed > b.MaxMissed {
		add("missed detections %d > max %d", r.Tracker.Missed, b.MaxMissed)
	}
	if b.MaxP99 > 0 && r.Tracker.Local.Samples > 0 &&
		r.Tracker.Local.P99 > b.MaxP99.Seconds() {
		add("detection latency p99 %.2fs > max %v", r.Tracker.Local.P99, b.MaxP99)
	}
	if b.MinDetected > 0 && r.Tracker.Local.Samples < b.MinDetected {
		add("only %d latency samples (need >= %d)", r.Tracker.Local.Samples, b.MinDetected)
	}
	// A tap that shed events can hide spurious transitions; surface it
	// as a violation only when the spurious bound is strict.
	if b.MaxSpurious == 0 {
		for _, m := range r.Monitors {
			if m.WatchDropped > 0 {
				add("watch tap on %s shed %d events (spurious count unreliable)",
					m.Addr, m.WatchDropped)
				break
			}
		}
	}
	r.Pass = len(r.Violations) == 0
}

func phaseName(p registry.StreamPhase) string {
	switch p {
	case registry.StreamTrusted:
		return "trusted"
	case registry.StreamSuspected:
		return "suspected"
	case registry.StreamOffline:
		return "offline"
	default:
		return fmt.Sprintf("phase-%d", p)
	}
}

// qosAggregate sweeps one registry.
func qosAggregate(reg *registry.Registry) QoSAggregate {
	agg := QoSAggregate{Phases: make(map[string]int)}
	reg.ForEachStream(func(v registry.StreamView) {
		agg.Streams++
		agg.Phases[phaseName(v.Phase)]++
		if v.Tuned {
			agg.Tuned++
			if v.TD > 0 || v.MR > 0 || v.QAP > 0 {
				agg.Measured++
				agg.MeanTDS += v.TD.Seconds()
				agg.MeanMR += v.MR
				agg.MeanQAP += v.QAP
			}
		}
	})
	if agg.Measured > 0 {
		agg.MeanTDS /= float64(agg.Measured)
		agg.MeanMR /= float64(agg.Measured)
		agg.MeanQAP /= float64(agg.Measured)
	}
	return agg
}
