package load

import (
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/detector"
	"repro/internal/heartbeat"
	"repro/internal/registry"
	"repro/internal/transport"
)

// startTestMonitor boots a receiver+registry pair on a real loopback
// socket with a wide-margin Chen detector (no false suspicion during
// short tests) and returns the UDP address plus an event drain.
func startTestMonitor(t *testing.T, clk clock.Clock) (*registry.Registry, string, func() []registry.Event, func()) {
	t.Helper()
	udp, err := transport.ListenUDPOpts("127.0.0.1:0", transport.UDPOptions{Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New(clk, func(string) detector.Detector {
		return detector.NewChen(16, 50*clock.Millisecond, 300*clock.Millisecond)
	}, registry.Options{
		WheelTick:    10 * clock.Millisecond,
		OfflineAfter: 2 * clock.Second,
		EvictAfter:   -1,
		MaxSilence:   5 * clock.Second,
	})
	reg.Start()
	recv := heartbeat.NewReceiver(udp, clk, reg.Observe)
	recv.Start()
	sub := reg.Subscribe(1024)
	var mu sync.Mutex
	var events []registry.Event
	go func() {
		for ev := range sub.C() {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}
	}()
	drain := func() []registry.Event {
		mu.Lock()
		defer mu.Unlock()
		return append([]registry.Event(nil), events...)
	}
	stop := func() {
		udp.Close()
		recv.Wait()
		sub.Close()
		reg.Stop()
	}
	return reg, udp.Addr(), drain, stop
}

func waitCond(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFleetHeartbeatsOverUDP: a small fleet's named streams all register
// on a real monitor, and Kill stops exactly the victim.
func TestFleetHeartbeatsOverUDP(t *testing.T) {
	clk := clock.NewReal()
	reg, addr, _, stop := startTestMonitor(t, clk)
	defer stop()

	f, err := NewFleet(FleetOptions{
		Prefix:  "t",
		Count:   20,
		Targets: []string{addr},
		Pacer:   Pacer{Interval: 50 * time.Millisecond},
		Sockets: 4,
		Clock:   clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()

	waitCond(t, "20 streams", 3*time.Second, func() bool { return reg.Len() == 20 })
	if f.Alive() != 20 {
		t.Fatalf("alive = %d", f.Alive())
	}
	killAt := f.Kill(3)
	if killAt == 0 {
		t.Fatal("kill returned zero instant")
	}
	if f.Alive() != 19 {
		t.Fatalf("alive after kill = %d", f.Alive())
	}
	name := f.Name(3)
	reg.MarkFailure(name, killAt)
	waitCond(t, "victim detected", 3*time.Second, func() bool {
		return reg.DetectionLatency().Samples == 1
	})
	d := reg.DetectionLatency()
	// Chen margin 300 ms on a 50 ms cadence: detection lands well under
	// a second but can't beat the margin.
	if d.Mean <= 0.05 || d.Mean > 1.5 {
		t.Fatalf("detection latency %.3fs out of plausible range", d.Mean)
	}

	// Restart: the victim resumes under a bumped incarnation.
	f.Restart(3)
	waitCond(t, "victim trusted again", 3*time.Second, func() bool {
		st, ok := reg.StatusOf(name, clk.Now())
		return ok && st == cluster.StatusActive
	})
}

// TestFleetRebindKeepsTrust is the NAT-rebind regression (the wire-v3
// point): a mid-run rebind — new source socket, bumped incarnation,
// sequence reset — must NOT produce any suspect/offline transition for
// the stream, because the monitor keys it by logical name and the
// incarnation bump supersedes the old sequence numbering.
func TestFleetRebindKeepsTrust(t *testing.T) {
	clk := clock.NewReal()
	_, addr, drain, stop := startTestMonitor(t, clk)
	defer stop()

	f, err := NewFleet(FleetOptions{
		Prefix:  "nat",
		Count:   8,
		Targets: []string{addr},
		Pacer:   Pacer{Interval: 40 * time.Millisecond},
		Sockets: 4,
		Clock:   clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()

	// Settle, then rebind every sender twice while heartbeats flow.
	time.Sleep(400 * time.Millisecond)
	for round := 0; round < 2; round++ {
		for i := 0; i < f.Count(); i++ {
			if at := f.Rebind(i); at == 0 {
				t.Fatalf("rebind %d/%d returned zero instant", round, i)
			}
		}
		time.Sleep(300 * time.Millisecond)
	}

	for _, ev := range drain() {
		if ev.Type == registry.EventSuspect || ev.Type == registry.EventOffline {
			t.Fatalf("rebind caused spurious transition: %v", ev)
		}
	}
}

// TestFleetSeqResetWithoutIncBumpIsStale is the control for the rebind
// test: a sequence reset WITHOUT an incarnation bump is exactly what the
// stale filter must reject, proving the rebind path works because of
// the inc bump and not because the filter is lax.
func TestFleetSeqResetWithoutIncBumpIsStale(t *testing.T) {
	clk := clock.NewReal()
	reg, addr, _, stop := startTestMonitor(t, clk)
	defer stop()

	udp, err := transport.ListenUDPOpts("127.0.0.1:0", transport.UDPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	emit := func(seq, inc uint64) {
		m := heartbeat.Message{Kind: heartbeat.KindHeartbeat, Seq: seq, Time: clk.Now(), Inc: inc, Name: "ctrl/a"}
		if err := udp.Send(addr, m.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 5; i++ {
		emit(i+10, 1)
		time.Sleep(10 * time.Millisecond)
	}
	waitCond(t, "stream registered", 2*time.Second, func() bool { return reg.Len() == 1 })
	before := reg.Counters().Heartbeats
	emit(0, 1) // seq reset, same incarnation: must be dropped as stale
	time.Sleep(100 * time.Millisecond)
	if got := reg.Counters().Heartbeats; got != before {
		t.Fatalf("stale seq-reset accepted: heartbeats %d → %d", before, got)
	}
	emit(0, 2) // same reset WITH the inc bump: accepted
	waitCond(t, "inc-bumped reset accepted", 2*time.Second, func() bool {
		return reg.Counters().Heartbeats == before+1
	})
}
