package load

import (
	"math/rand"
	"sort"
	"time"
)

// faultOp is one scheduled fault against one sender, resolved to an
// absolute offset from run start.
type faultOp struct {
	at     time.Duration
	cohort int
	idx    int // sender index within the cohort's fleet
	kind   FaultKind
	// restart marks a revival of an earlier kill rather than a fresh
	// fault.
	restart bool
}

// buildTimeline expands every cohort's fault waves into a sorted op
// list. Victim selection is seeded: the same spec and seed reproduce
// the same timeline. Kill waves never pick a sender already scheduled
// to die (so injected-kill counts stay exact); rebinds draw freely.
func buildTimeline(spec *Spec, rng *rand.Rand) []faultOp {
	var ops []faultOp
	dur := spec.Duration
	for ci := range spec.Cohorts {
		c := &spec.Cohorts[ci]
		killed := make(map[int]bool)
		for _, f := range c.Faults {
			n := int(float64(c.Count)*f.Frac + 0.5)
			if n <= 0 {
				continue
			}
			if n > c.Count {
				n = c.Count
			}
			perm := rng.Perm(c.Count)
			victims := make([]int, 0, n)
			for _, v := range perm {
				if len(victims) == n {
					break
				}
				if f.Kind == FaultKill && killed[v] {
					continue
				}
				victims = append(victims, v)
			}
			base := time.Duration(float64(dur) * f.At)
			spread := time.Duration(float64(dur) * f.Spread)
			for i, v := range victims {
				at := base
				if spread > 0 && len(victims) > 1 {
					at += spread * time.Duration(i) / time.Duration(len(victims))
				}
				ops = append(ops, faultOp{at: at, cohort: ci, idx: v, kind: f.Kind})
				if f.Kind == FaultKill {
					killed[v] = true
					if f.RestartAfter > 0 {
						ops = append(ops, faultOp{
							at: at + f.RestartAfter, cohort: ci, idx: v,
							kind: FaultKill, restart: true,
						})
						killed[v] = false // restarted: a later wave may re-kill
					}
				}
			}
		}
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].at < ops[j].at })
	return ops
}
