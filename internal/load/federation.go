package load

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/federate"
	"repro/internal/heartbeat"
	"repro/internal/registry"
	"repro/internal/transport"
)

// Federation-tier load scenario: a real-UDP deployment of the full
// hierarchy — heartbeat fleets → leaf monitors → an HA aggregator pair —
// with a scripted kill of the active aggregator mid-run. The run is
// scored the way an operator would experience the failover: by polling
// both aggregators' /fleet endpoints over HTTP and measuring how long
// the fleet view was unavailable (no aggregator serving as leader), how
// fast the standby promoted, and whether any cohort transition totals
// regressed across the failover (the zero-lost-transitions invariant,
// checked over live traffic instead of netsim).

// FederationBounds are the pass/fail gates of a federation-HA run.
type FederationBounds struct {
	// MaxPromotion bounds kill→standby-serving-as-leader latency.
	MaxPromotion time.Duration `json:"max_promotion"`
	// MaxFleetGap bounds the longest span between two successive polls
	// that found some aggregator serving /fleet as leader.
	MaxFleetGap time.Duration `json:"max_fleet_gap"`
	// MaxLostTransitions bounds the regression of cumulative cohort
	// offline totals across the failover (0 = none tolerated).
	MaxLostTransitions int `json:"max_lost_transitions"`
	// MinOfflines requires the final fleet view to carry at least this
	// many offline transitions — the injected stream kills must have
	// been detected AND survived the failover (0 = the injected count).
	MinOfflines int `json:"min_offlines"`
}

// FederationSpec is a complete federation-HA load scenario.
type FederationSpec struct {
	Name string `json:"name"`
	// Topology: Regions × LeavesPerRegion leaf monitors, each owning one
	// cohort of StreamsPerLeaf heartbeat senders.
	Regions         int `json:"regions"`
	LeavesPerRegion int `json:"leaves_per_region"`
	StreamsPerLeaf  int `json:"streams_per_leaf"`
	// Interval is the senders' heartbeat period; DigestInterval is the
	// leaves' roll-up period and the aggregator pair's HA round.
	Interval       time.Duration `json:"interval"`
	DigestInterval time.Duration `json:"digest_interval"`
	Duration       time.Duration `json:"duration"`
	Seed           int64         `json:"seed,omitempty"`
	// KillAt is when the active aggregator is killed, as a fraction of
	// the run; KillStreams senders in the first leaf's cohort are killed
	// halfway to that point, so their offline transitions are in flight
	// or freshly merged when the aggregator dies.
	KillAt      float64 `json:"kill_at"`
	KillStreams int     `json:"kill_streams"`
	// RestartAfter revives the killed aggregator (incarnation bumped)
	// this long after its kill; it must rejoin as standby, catch up by
	// anti-entropy, and take leadership back (lowest id wins). Negative
	// leaves it dead.
	RestartAfter time.Duration `json:"restart_after"`
	// PollEvery is the /fleet availability-probe cadence (default:
	// DigestInterval / 5).
	PollEvery time.Duration    `json:"poll_every,omitempty"`
	Bounds    FederationBounds `json:"bounds"`
}

func (s *FederationSpec) normalize() error {
	if s.Name == "" {
		s.Name = "federation-ha"
	}
	if s.Regions <= 0 {
		s.Regions = 2
	}
	if s.LeavesPerRegion <= 0 {
		s.LeavesPerRegion = 2
	}
	if s.StreamsPerLeaf <= 0 {
		return fmt.Errorf("load: federation streams-per-leaf must be positive (got %d)", s.StreamsPerLeaf)
	}
	if s.Interval <= 0 {
		s.Interval = 250 * time.Millisecond
	}
	if s.DigestInterval <= 0 {
		s.DigestInterval = 2 * s.Interval
	}
	if s.Duration <= 0 {
		return fmt.Errorf("load: federation duration must be positive (got %v)", s.Duration)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.KillAt <= 0 || s.KillAt >= 1 {
		s.KillAt = 0.45
	}
	if s.KillStreams <= 0 {
		s.KillStreams = 25
	}
	if s.KillStreams > s.StreamsPerLeaf {
		s.KillStreams = s.StreamsPerLeaf
	}
	if s.RestartAfter == 0 {
		s.RestartAfter = 4 * s.DigestInterval
	}
	if s.PollEvery <= 0 {
		s.PollEvery = s.DigestInterval / 5
	}
	if s.Bounds.MaxPromotion <= 0 {
		s.Bounds.MaxPromotion = 4 * s.DigestInterval
	}
	if s.Bounds.MaxFleetGap <= 0 {
		s.Bounds.MaxFleetGap = 6 * s.DigestInterval
	}
	if s.Bounds.MinOfflines <= 0 {
		s.Bounds.MinOfflines = s.KillStreams
	}
	return nil
}

// FederationPreset returns the built-in federation-HA scenario; adjust
// StreamsPerLeaf / Duration / Bounds before RunFederation.
func FederationPreset() FederationSpec {
	return FederationSpec{
		Name:            "federation-ha",
		Regions:         2,
		LeavesPerRegion: 2,
		StreamsPerLeaf:  150,
		Duration:        30 * time.Second,
	}
}

// FederationReport is a federation-HA run's JSON artifact.
type FederationReport struct {
	Scenario  string    `json:"scenario"`
	StartedAt time.Time `json:"started_at"`
	WallTime  float64   `json:"wall_time_s"`

	Regions         int   `json:"regions"`
	LeavesPerRegion int   `json:"leaves_per_region"`
	StreamsPerLeaf  int   `json:"streams_per_leaf"`
	TotalStreams    int   `json:"total_streams"`
	Seed            int64 `json:"seed"`

	// Availability, as the /fleet pollers saw it.
	Polls       int     `json:"fleet_polls"`
	Served      int     `json:"fleet_polls_served"`
	FleetGapS   float64 `json:"fleet_gap_s"`   // longest no-leader span
	PromotionS  float64 `json:"promotion_s"`   // agg kill → standby serving as leader
	FailbackS   float64 `json:"failback_s"`    // agg restart → old active leading again
	KilledAgg     string  `json:"killed_agg"`      // which aggregator the script killed
	RestartAfterS float64 `json:"restart_after_s"` // kill → scripted restart delay (<0: stayed dead)
	FinalLeader   string  `json:"final_leader"`    // leader at run end

	// Transition accounting across the failover.
	InjectedStreamKills int    `json:"injected_stream_kills"`
	OfflinesPreKill     uint64 `json:"offlines_pre_kill"`     // leader totals just before the agg kill
	OfflinesAtPromotion uint64 `json:"offlines_at_promotion"` // promoted standby's totals
	OfflinesFinal       uint64 `json:"offlines_final"`
	LostTransitions     int    `json:"lost_transitions"`

	// Final fleet-view shape at the run-end leader.
	FinalStreams       uint64 `json:"final_streams"`
	FinalLiveLeaves    int    `json:"final_live_leaves"`
	Leaves             int    `json:"leaves"`
	FinalAssignVersion uint64 `json:"final_assign_version"`
	Redelegations      int    `json:"redelegations"`

	// Ground-truth stream-kill detection latency at the marked leaf.
	Detection registry.DetectionLatency `json:"leaf_detection_latency"`

	Bounds     FederationBounds `json:"bounds"`
	Violations []string         `json:"violations,omitempty"`
	Pass       bool             `json:"pass"`
}

func (r *FederationReport) evaluate(restarted bool) {
	b := r.Bounds
	add := func(format string, a ...any) {
		r.Violations = append(r.Violations, fmt.Sprintf(format, a...))
	}
	if r.PromotionS <= 0 {
		add("standby never promoted after the aggregator kill")
	} else if d := time.Duration(r.PromotionS * float64(time.Second)); d > b.MaxPromotion {
		add("promotion latency %.2fs > max %v", r.PromotionS, b.MaxPromotion)
	}
	if d := time.Duration(r.FleetGapS * float64(time.Second)); d > b.MaxFleetGap {
		add("/fleet availability gap %.2fs > max %v", r.FleetGapS, b.MaxFleetGap)
	}
	if r.LostTransitions > b.MaxLostTransitions {
		add("lost transitions %d > max %d across failover", r.LostTransitions, b.MaxLostTransitions)
	}
	if r.OfflinesFinal < uint64(b.MinOfflines) {
		add("final offline total %d < injected %d (kills lost across failover)",
			r.OfflinesFinal, b.MinOfflines)
	}
	// No leaf died, so a correct failover issues no assignment tables:
	// any re-delegation here is a duplicate / spurious one.
	if r.Redelegations != 0 || r.FinalAssignVersion != 0 {
		add("spurious re-delegation during aggregator failover (version %d, %d records)",
			r.FinalAssignVersion, r.Redelegations)
	}
	if r.FinalLiveLeaves != r.Leaves {
		add("final fleet view has %d/%d leaves alive", r.FinalLiveLeaves, r.Leaves)
	}
	if restarted {
		if r.FailbackS <= 0 {
			add("restarted aggregator %s never took leadership back", r.KilledAgg)
		} else if r.FinalLeader != r.KilledAgg {
			add("final leader %q, want restarted %q", r.FinalLeader, r.KilledAgg)
		}
	}
	r.Pass = len(r.Violations) == 0
}

// fedAggNode is one aggregator of the HA pair: a UDP socket that
// outlives the aggregator instance (a restart keeps the address, like a
// respawned process on the same host), a swap-able Aggregator, and an
// HTTP /fleet surface that serves 503 while the "process" is down.
type fedAggNode struct {
	id   string
	udp  *transport.UDP
	clk  clock.Clock
	opts federate.AggregatorOptions

	agg      atomic.Pointer[federate.Aggregator]
	up       atomic.Bool
	srv      *http.Server
	ln       net.Listener
	httpDone chan struct{}
}

func (n *fedAggNode) boot(inc uint64) {
	o := n.opts
	o.Incarnation = inc
	a := federate.NewAggregator(n.udp, n.clk, o)
	n.agg.Store(a)
	n.up.Store(true)
	a.Start()
}

// kill simulates a process crash: the aggregator stops, inbound
// datagrams fall on the floor (the socket stays bound so the address
// survives for the restart), and /fleet answers 503.
func (n *fedAggNode) kill() {
	n.up.Store(false)
	n.agg.Load().Stop()
}

func (n *fedAggNode) baseURL() string { return "http://" + n.ln.Addr().String() }

func (n *fedAggNode) stop() {
	if n.up.Load() {
		n.kill()
	}
	_ = n.srv.Close()
	<-n.httpDone
	_ = n.udp.Close()
}

func startFedAggNode(id, region string, udp *transport.UDP, peer string, clk clock.Clock, digest time.Duration) (*fedAggNode, error) {
	n := &fedAggNode{
		id: id, udp: udp, clk: clk,
		opts: federate.AggregatorOptions{
			ID:             id,
			Region:         region,
			Peers:          []string{peer},
			DigestInterval: clock.Duration(digest),
		},
		httpDone: make(chan struct{}),
	}
	n.boot(1)
	go transport.Pump(udp, func(in transport.Inbound) {
		if !n.up.Load() {
			return // dead process: clean inbox, nothing handled
		}
		n.agg.Load().HandleDatagram(in.From, in.Payload)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		n.kill()
		_ = udp.Close()
		return nil, fmt.Errorf("load: aggregator %s http: %w", id, err)
	}
	n.ln = ln
	n.srv = &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !n.up.Load() {
			http.Error(w, "aggregator down", http.StatusServiceUnavailable)
			return
		}
		n.agg.Load().Handler().ServeHTTP(w, r)
	})}
	go func() {
		defer close(n.httpDone)
		_ = n.srv.Serve(ln)
	}()
	return n, nil
}

// fedLeafNode is one leaf monitor: UDP ingest shared between heartbeats
// and federation datagrams (acks, assignment tables), a registry, the
// roll-up agent, and the heartbeat fleet aimed at it.
type fedLeafNode struct {
	id    string
	udp   *transport.UDP
	reg   *registry.Registry
	recv  *heartbeat.Receiver
	leaf  *federate.Leaf
	fleet *Fleet
}

func (n *fedLeafNode) stop() {
	if n.fleet != nil {
		n.fleet.Stop()
	}
	n.leaf.Stop()
	_ = n.udp.Close()
	n.recv.Wait()
	n.reg.Stop()
}

func startFedLeafNode(id, region string, aggAddrs []string, spec *FederationSpec, clk clock.Clock) (*fedLeafNode, error) {
	udp, err := transport.ListenUDPOpts("127.0.0.1:0", transport.UDPOptions{
		Batch: 32, QueueLen: monitorQueueLen, PoolBuffers: monitorPoolBuffers,
	})
	if err != nil {
		return nil, fmt.Errorf("load: leaf %s udp: %w", id, err)
	}
	cfg := core.DefaultConfig()
	cfg.Interval = clock.Duration(spec.Interval)
	cfg.InitialMargin = clock.Duration(spec.Interval) * 5 / 2
	cfg.WindowSize = 64
	cfg.SlotHeartbeats = 20
	cfg.Targets = core.Targets{MaxTD: 4 * clock.Duration(spec.Interval), MaxMR: 2, MinQAP: 0.9}
	reg := registry.New(clk, func(string) detector.Detector { return core.New(cfg) }, registry.Options{
		OfflineAfter:      2 * clock.Duration(spec.Interval),
		MaxSilence:        8 * clock.Duration(spec.Interval),
		EvictAfter:        -1, // keep offline streams: their counts must survive the failover
		MetricsMaxStreams: -1,
	})
	reg.Start()
	n := &fedLeafNode{id: id, udp: udp, reg: reg}
	leaf, err := federate.NewLeaf(udp, clk, reg, "", federate.LeafOptions{
		ID:       id,
		Region:   region,
		Cohorts:  []string{id + "/#"},
		Interval: clock.Duration(spec.DigestInterval),
		Aggs:     aggAddrs,
	})
	if err != nil {
		_ = udp.Close()
		reg.Stop()
		return nil, fmt.Errorf("load: leaf %s: %w", id, err)
	}
	n.leaf = leaf
	n.recv = heartbeat.NewReceiver(udp, clk, reg.Observe)
	n.recv.SetForeign(func(in transport.Inbound) {
		if federate.IsFederation(in.Payload) {
			leaf.HandleDatagramFrom(in.From, in.Payload)
		}
	})
	n.recv.Start()
	leaf.Start()
	return n, nil
}

// fleetProbe is the slice of the /fleet document the scorer reads.
type fleetProbe struct {
	Aggregator    string `json:"aggregator"`
	Role          string `json:"role"`
	LeaderID      string `json:"leader_id"`
	AssignVersion uint64 `json:"assign_version"`
	Leaves        []struct {
		State string `json:"state"`
	} `json:"leaves"`
	Cohorts []struct {
		Streams  uint32 `json:"streams"`
		Offlines uint64 `json:"offlines_total"`
	} `json:"cohorts"`
	Redelegations []json.RawMessage `json:"redelegations"`
}

func (p *fleetProbe) offlines() uint64 {
	var n uint64
	for _, c := range p.Cohorts {
		n += c.Offlines
	}
	return n
}

func (p *fleetProbe) streams() uint64 {
	var n uint64
	for _, c := range p.Cohorts {
		n += uint64(c.Streams)
	}
	return n
}

func (p *fleetProbe) liveLeaves() int {
	n := 0
	for _, l := range p.Leaves {
		if l.State == "alive" {
			n++
		}
	}
	return n
}

func probeFleet(client *http.Client, base string) (*fleetProbe, error) {
	resp, err := client.Get(base + "/fleet")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var p fleetProbe
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		return nil, err
	}
	return &p, nil
}

// RunFederation executes a federation-HA scenario end to end over real
// loopback UDP and HTTP, and scores the aggregator failover.
func RunFederation(spec FederationSpec, progress io.Writer) (*FederationReport, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	say := func(format string, a ...any) {
		if progress != nil {
			fmt.Fprintf(progress, format+"\n", a...)
		}
	}
	started := time.Now()
	clk := clock.NewReal()

	// --- aggregator pair (sockets bind first so each peer address is
	// known before either aggregator is built) ---------------------------
	udpA, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("load: agg-a udp: %w", err)
	}
	udpB, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		_ = udpA.Close()
		return nil, fmt.Errorf("load: agg-b udp: %w", err)
	}
	aggA, err := startFedAggNode("agg-a", "global", udpA, udpB.Addr(), clk, spec.DigestInterval)
	if err != nil {
		_ = udpB.Close()
		return nil, err
	}
	aggB, err := startFedAggNode("agg-b", "global", udpB, udpA.Addr(), clk, spec.DigestInterval)
	if err != nil {
		aggA.stop()
		return nil, err
	}
	nodes := []*fedAggNode{aggA, aggB}
	aggAddrs := []string{udpA.Addr(), udpB.Addr()}
	say("sfdload: aggregator pair up: agg-a=%s agg-b=%s", udpA.Addr(), udpB.Addr())

	// --- leaves + fleets -------------------------------------------------
	var leaves []*fedLeafNode
	stopAll := func() {
		for _, l := range leaves {
			l.stop()
		}
		aggA.stop()
		aggB.stop()
	}
	for r := 0; r < spec.Regions; r++ {
		region := fmt.Sprintf("r%d", r)
		for l := 0; l < spec.LeavesPerRegion; l++ {
			id := fmt.Sprintf("%s/leaf-%d", region, l)
			ln, err := startFedLeafNode(id, region, aggAddrs, &spec, clk)
			if err != nil {
				stopAll()
				return nil, err
			}
			f, err := NewFleet(FleetOptions{
				Prefix:  id,
				Count:   spec.StreamsPerLeaf,
				Targets: []string{ln.udp.Addr()},
				Pacer: Pacer{
					Interval: spec.Interval,
					Jitter:   0.05,
					Ramp:     2 * spec.DigestInterval,
				},
				Sockets: 16,
				Seed:    spec.Seed + int64(len(leaves)+1)*101,
				Clock:   clk,
			})
			if err != nil {
				ln.stop()
				stopAll()
				return nil, err
			}
			ln.fleet = f
			leaves = append(leaves, ln)
			f.Start()
		}
	}
	total := spec.Regions * spec.LeavesPerRegion * spec.StreamsPerLeaf
	say("sfdload: %d leaves up, %d senders heartbeating every %v (digests every %v)",
		len(leaves), total, spec.Interval, spec.DigestInterval)

	rep := &FederationReport{
		Scenario:            spec.Name,
		StartedAt:           started,
		Regions:             spec.Regions,
		LeavesPerRegion:     spec.LeavesPerRegion,
		StreamsPerLeaf:      spec.StreamsPerLeaf,
		TotalStreams:        total,
		Seed:                spec.Seed,
		InjectedStreamKills: spec.KillStreams,
		RestartAfterS:       spec.RestartAfter.Seconds(),
		Bounds:              spec.Bounds,
	}

	// --- scripted timeline + availability polling ------------------------
	client := &http.Client{Timeout: max(2*spec.PollEvery, 500*time.Millisecond)}
	killStreamsAt := time.Duration(float64(spec.Duration) * spec.KillAt / 2)
	killAggAt := time.Duration(float64(spec.Duration) * spec.KillAt)
	restartAt := time.Duration(-1)
	if spec.RestartAfter >= 0 {
		restartAt = killAggAt + spec.RestartAfter
	}

	var (
		killedIdx      = -1
		streamsKilled  bool
		killInstant    time.Time
		restartInstant time.Time
		restarted      bool
		leaderSeenAt   time.Time // last poll that found a serving leader
		maxGap         time.Duration
		lastLeaderIdx  = -1
		lastSay        time.Time
	)
	ticker := time.NewTicker(spec.PollEvery)
	defer ticker.Stop()
	for elapsed := time.Duration(0); elapsed < spec.Duration; {
		<-ticker.C
		elapsed = time.Since(started)
		now := time.Now()

		// Scripted faults, in timeline order.
		if spec.KillStreams > 0 && !streamsKilled && elapsed >= killStreamsAt {
			streamsKilled = true
			victim := leaves[0]
			for i := 0; i < spec.KillStreams; i++ {
				at := victim.fleet.Kill(i)
				victim.reg.MarkFailure(victim.fleet.Name(i), at)
			}
			say("sfdload: t=%v killed %d senders in %s", elapsed.Round(time.Millisecond),
				spec.KillStreams, victim.id)
		}
		if killedIdx < 0 && elapsed >= killAggAt {
			idx := lastLeaderIdx
			if idx < 0 {
				idx = 0
			}
			// Snapshot the active leader's transition totals the instant
			// before the kill — the baseline the promoted standby's view
			// must not regress from.
			if p, err := probeFleet(client, nodes[idx].baseURL()); err == nil {
				rep.OfflinesPreKill = p.offlines()
			}
			nodes[idx].kill()
			killedIdx = idx
			killInstant = now
			rep.KilledAgg = nodes[idx].id
			say("sfdload: t=%v killed active aggregator %s (pre-kill offline total %d)",
				elapsed.Round(time.Millisecond), nodes[idx].id, rep.OfflinesPreKill)
		}
		if restartAt >= 0 && !restarted && elapsed >= restartAt && killedIdx >= 0 {
			nodes[killedIdx].boot(2)
			restarted = true
			restartInstant = now
			say("sfdload: t=%v restarted %s (incarnation 2)", elapsed.Round(time.Millisecond),
				nodes[killedIdx].id)
		}

		// Availability probe: is any aggregator serving /fleet as leader?
		servedIdx := -1
		var servedProbe *fleetProbe
		for i, n := range nodes {
			p, err := probeFleet(client, n.baseURL())
			if err != nil {
				continue
			}
			if p.Role == "leader" {
				servedIdx, servedProbe = i, p
			}
		}
		if servedIdx >= 0 {
			if !leaderSeenAt.IsZero() {
				if gap := now.Sub(leaderSeenAt); gap > maxGap {
					maxGap = gap
				}
			}
			leaderSeenAt = now
			lastLeaderIdx = servedIdx
			rep.Served++
			if killedIdx >= 0 && rep.PromotionS == 0 && servedIdx != killedIdx {
				rep.PromotionS = now.Sub(killInstant).Seconds()
				rep.OfflinesAtPromotion = servedProbe.offlines()
				say("sfdload: t=%v standby %s promoted %.2fs after the kill (offline total %d)",
					elapsed.Round(time.Millisecond), nodes[servedIdx].id,
					rep.PromotionS, rep.OfflinesAtPromotion)
			}
			if restarted && rep.FailbackS == 0 && servedIdx == killedIdx {
				rep.FailbackS = now.Sub(restartInstant).Seconds()
				say("sfdload: t=%v restarted %s leads again %.2fs after its restart",
					elapsed.Round(time.Millisecond), nodes[servedIdx].id, rep.FailbackS)
			}
		}
		rep.Polls++

		if progress != nil && now.Sub(lastSay) >= 5*time.Second {
			lastSay = now
			if servedProbe != nil {
				say("sfdload: t=%v leader=%s streams=%d offline-total=%d leaves=%d/%d",
					elapsed.Round(time.Second), servedProbe.Aggregator, servedProbe.streams(),
					servedProbe.offlines(), servedProbe.liveLeaves(), len(servedProbe.Leaves))
			} else {
				say("sfdload: t=%v no aggregator serving /fleet as leader", elapsed.Round(time.Second))
			}
		}
	}
	// Count the tail: a run that ends leaderless hides its last gap.
	if !leaderSeenAt.IsZero() {
		if gap := time.Since(leaderSeenAt); gap > maxGap {
			maxGap = gap
		}
	}
	rep.FleetGapS = maxGap.Seconds()

	// --- final fleet view ------------------------------------------------
	if lastLeaderIdx >= 0 {
		if p, err := probeFleet(client, nodes[lastLeaderIdx].baseURL()); err == nil {
			rep.FinalLeader = p.Aggregator
			rep.OfflinesFinal = p.offlines()
			rep.FinalStreams = p.streams()
			rep.FinalLiveLeaves = p.liveLeaves()
			rep.Leaves = len(p.Leaves)
			rep.FinalAssignVersion = p.AssignVersion
			rep.Redelegations = len(p.Redelegations)
		}
	}
	if rep.OfflinesAtPromotion < rep.OfflinesPreKill {
		rep.LostTransitions = int(rep.OfflinesPreKill - rep.OfflinesAtPromotion)
	}
	rep.Detection = leaves[0].reg.DetectionLatency()

	stopAll()
	rep.WallTime = time.Since(started).Seconds()
	rep.evaluate(restarted)
	return rep, nil
}
