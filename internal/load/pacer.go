// Package load is the real-traffic harness: it spawns fleets of logical
// UDP heartbeat senders (wire-v3 named streams multiplexed over a socket
// pool, so fifty thousand senders fit under the file-descriptor limit),
// injects scripted kill / restart / NAT-rebind faults on a timeline,
// attaches per-cohort chaos impairments, and measures ground-truth
// detection latency by marking each injected failure and tapping the
// monitor's /watch NDJSON stream for the matching transition. Scenario
// presets (datacenter, mobile, mixed-fleet) turn the paper's QoS
// evaluation into a repeatable end-to-end drill over real datagrams.
package load

import (
	"fmt"
	"math/rand"
	"time"
)

// Pacer shapes one sender's heartbeat timing: a base interval, a
// proportional per-beat jitter, and a ramp window over which a fleet
// staggers its first beats so N senders do not fire in phase.
type Pacer struct {
	// Interval is the base heartbeat period Δt.
	Interval time.Duration
	// Jitter is the half-width of the per-beat uniform jitter as a
	// fraction of Interval: each gap is drawn from
	// Interval·[1−Jitter, 1+Jitter]. 0 disables; must be < 1.
	Jitter float64
	// Ramp is the window over which a fleet spreads first beats
	// (StartOffset). 0 starts everyone immediately.
	Ramp time.Duration
}

// Validate rejects non-positive intervals, out-of-range jitter, and
// negative ramps.
func (p Pacer) Validate() error {
	if p.Interval <= 0 {
		return fmt.Errorf("load: pacer interval must be positive (got %v)", p.Interval)
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		return fmt.Errorf("load: pacer jitter must be in [0,1) (got %g)", p.Jitter)
	}
	if p.Ramp < 0 {
		return fmt.Errorf("load: pacer ramp must be non-negative (got %v)", p.Ramp)
	}
	return nil
}

// StartOffset deterministically spreads sender i of n across the ramp
// window: sender i first beats at i·Ramp/n after fleet start.
func (p Pacer) StartOffset(i, n int) time.Duration {
	if p.Ramp <= 0 || n <= 1 || i <= 0 {
		return 0
	}
	return time.Duration(int64(p.Ramp) / int64(n) * int64(i))
}

// Next draws the gap to the following heartbeat: Interval, jittered
// uniformly by ±Jitter·Interval when jitter is enabled and rng non-nil.
func (p Pacer) Next(rng *rand.Rand) time.Duration {
	if p.Jitter <= 0 || rng == nil {
		return p.Interval
	}
	f := 1 + p.Jitter*(2*rng.Float64()-1)
	d := time.Duration(f * float64(p.Interval))
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}
