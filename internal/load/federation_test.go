package load

import (
	"testing"
	"time"
)

// TestRunFederationEndToEnd drives a miniature federation-HA scenario
// through the real stack — UDP heartbeat fleets, leaf registries with
// roll-up agents, an HA aggregator pair, HTTP /fleet polling — with the
// scripted active-aggregator kill and restart. Short intervals keep it
// CI-sized while still covering promotion, failback, and the
// zero-lost-transitions invariant over live traffic.
func TestRunFederationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second end-to-end run")
	}
	spec := FederationSpec{
		Name:            "fed-e2e",
		Regions:         2,
		LeavesPerRegion: 2,
		StreamsPerLeaf:  40,
		Interval:        200 * time.Millisecond,
		DigestInterval:  400 * time.Millisecond,
		Duration:        18 * time.Second,
		KillStreams:     10,
	}
	rep, err := RunFederation(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("federation run failed its bounds: %v\n%+v", rep.Violations, rep)
	}
	if rep.KilledAgg != "agg-a" {
		t.Fatalf("killed %q, want the stable active agg-a", rep.KilledAgg)
	}
	if rep.PromotionS <= 0 || rep.FailbackS <= 0 {
		t.Fatalf("promotion %.2fs / failback %.2fs, want both observed", rep.PromotionS, rep.FailbackS)
	}
	if rep.LostTransitions != 0 {
		t.Fatalf("lost %d transitions across failover", rep.LostTransitions)
	}
	if rep.OfflinesFinal < uint64(spec.KillStreams) {
		t.Fatalf("final offline total %d < injected %d", rep.OfflinesFinal, spec.KillStreams)
	}
	if rep.FinalStreams != uint64(rep.TotalStreams) {
		t.Fatalf("final fleet view carries %d streams, want %d", rep.FinalStreams, rep.TotalStreams)
	}
	if rep.Detection.Samples != int64(spec.KillStreams) {
		t.Fatalf("leaf measured %d detections, want %d", rep.Detection.Samples, spec.KillStreams)
	}
}
