package load

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// WatchEvent is one failure transition from a monitor's /watch NDJSON
// stream (the event-line subset the tracker scores).
type WatchEvent struct {
	Event       string  `json:"event"`
	Peer        string  `json:"peer"`
	At          int64   `json:"at_ns"`
	Suspicion   float64 `json:"suspicion"`
	Incarnation uint64  `json:"incarnation"`
	Source      string  `json:"source"`
}

// watchLine is the superset of every NDJSON line shape /watch emits:
// hello, event, heartbeat, done.
type watchLine struct {
	// hello
	Watching string `json:"watching"`
	// event
	Event       string  `json:"event"`
	Peer        string  `json:"peer"`
	At          int64   `json:"at_ns"`
	Suspicion   float64 `json:"suspicion"`
	Incarnation uint64  `json:"incarnation"`
	Source      string  `json:"source"`
	// heartbeat / done
	Heartbeat bool   `json:"heartbeat"`
	Done      bool   `json:"done"`
	Dropped   uint64 `json:"dropped"`
}

// WatchTap is the harness-side /watch client: it holds one streaming
// NDJSON connection to a monitor, parses event lines, and hands them to
// a callback. Connection loss (monitor restart, buffer shed) retries
// with capped backoff until Stop. The server reports its own drop-oldest
// sheds on heartbeat/done lines; the tap surfaces the latest figure so a
// run can tell "no spurious transitions" from "events were shed".
type WatchTap struct {
	base    string
	filter  string
	buf     int
	onEvent func(WatchEvent)

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	once   sync.Once

	events   atomic.Uint64
	reconns  atomic.Uint64
	dropped  atomic.Uint64
	lastErr  atomic.Pointer[string]
	client   *http.Client
}

// NewWatchTap builds a tap on base (e.g. "http://127.0.0.1:8080")
// filtered to the topic filter, with a server-side buffer of buf events.
func NewWatchTap(base, filter string, buf int, fn func(WatchEvent)) *WatchTap {
	ctx, cancel := context.WithCancel(context.Background())
	return &WatchTap{
		base: base, filter: filter, buf: buf, onEvent: fn,
		ctx: ctx, cancel: cancel,
		done:   make(chan struct{}),
		client: &http.Client{}, // no timeout: the stream is long-lived
	}
}

// Start launches the streaming loop.
func (w *WatchTap) Start() {
	go w.run()
}

// Stop severs the connection and waits for the loop to exit.
func (w *WatchTap) Stop() {
	w.once.Do(w.cancel)
	<-w.done
}

// Events returns parsed event lines so far.
func (w *WatchTap) Events() uint64 { return w.events.Load() }

// Reconnects returns how many times the stream had to be re-established.
func (w *WatchTap) Reconnects() uint64 { return w.reconns.Load() }

// Dropped returns the server's latest drop-oldest shed count for this
// subscription.
func (w *WatchTap) Dropped() uint64 { return w.dropped.Load() }

// Err returns the last connection error ("" when healthy).
func (w *WatchTap) Err() string {
	if p := w.lastErr.Load(); p != nil {
		return *p
	}
	return ""
}

func (w *WatchTap) setErr(err error) {
	s := err.Error()
	w.lastErr.Store(&s)
}

func (w *WatchTap) url() string {
	q := url.Values{}
	if w.filter != "" {
		q.Set("filter", w.filter)
	}
	if w.buf > 0 {
		q.Set("buf", fmt.Sprint(w.buf))
	}
	return w.base + "/watch?" + q.Encode()
}

func (w *WatchTap) run() {
	defer close(w.done)
	backoff := 100 * time.Millisecond
	for w.ctx.Err() == nil {
		if err := w.stream(); err != nil && w.ctx.Err() == nil {
			w.setErr(err)
		}
		if w.ctx.Err() != nil {
			return
		}
		w.reconns.Add(1)
		select {
		case <-w.ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

func (w *WatchTap) stream() error {
	req, err := http.NewRequestWithContext(w.ctx, http.MethodGet, w.url(), nil)
	if err != nil {
		return err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("watch: %s", resp.Status)
	}
	w.lastErr.Store(nil)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var l watchLine
		if err := json.Unmarshal(line, &l); err != nil {
			continue // tolerate foreign lines, never kill the stream
		}
		switch {
		case l.Event != "":
			w.events.Add(1)
			w.onEvent(WatchEvent{
				Event: l.Event, Peer: l.Peer, At: l.At,
				Suspicion: l.Suspicion, Incarnation: l.Incarnation,
				Source: l.Source,
			})
		case l.Heartbeat, l.Done:
			w.dropped.Store(l.Dropped)
		}
	}
	return sc.Err()
}
