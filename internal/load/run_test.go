package load

import (
	"os"
	"testing"
	"time"

	"repro/internal/core"
)

// TestRunEndToEnd drives a miniature scenario through the full harness:
// real UDP, a kill wave with restarts, a rebind wave, the /watch taps,
// and bounds evaluation. Short intervals keep it CI-sized.
func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second end-to-end run")
	}
	spec := Spec{
		Name:         "e2e",
		Total:        60,
		Duration:     12 * time.Second,
		Monitors:     1,
		OfflineAfter: 2 * time.Second,
		MaxSilence:   6 * time.Second,
		Cohorts: []CohortSpec{{
			Name:  "mini",
			Frac:  1,
			Pacer: Pacer{Interval: 200 * time.Millisecond, Jitter: 0.05, Ramp: time.Second},
			Targets: core.Targets{
				MaxTD: 2 * time.Second, MaxMR: 1, MinQAP: 0.9,
			},
			Margin:         600 * time.Millisecond,
			WindowSize:     16,
			SlotHeartbeats: 10,
			Faults: []FaultSpec{
				{Kind: FaultKill, Frac: 0.2, At: 0.4, Spread: 0.1, RestartAfter: 4 * time.Second},
				{Kind: FaultRebind, Frac: 0.3, At: 0.3},
			},
		}},
		Bounds: Bounds{MaxSpurious: 0, MaxMissed: 0, MaxP99: 4 * time.Second, MinDetected: 5},
	}
	rep, err := Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	gt := rep.Tracker
	if gt.Injected < 10 {
		t.Fatalf("injected %d kills, want ≥10", gt.Injected)
	}
	if gt.Detected != gt.Injected {
		t.Fatalf("detected %d of %d kills (missed %d)", gt.Detected, gt.Injected, gt.Missed)
	}
	if gt.Rebinds < 15 {
		t.Fatalf("rebinds = %d", gt.Rebinds)
	}
	if gt.Spurious != 0 {
		t.Fatalf("spurious transitions: %d (%v)", gt.Spurious, gt.SpuriousPeers)
	}
	if gt.Local.P50 <= 0 || gt.Local.P99 > 4 {
		t.Fatalf("latency quantiles out of range: %+v", gt.Local)
	}
	if !rep.Pass {
		t.Fatalf("bounds failed: %v", rep.Violations)
	}
	if len(rep.Monitors) != 1 || rep.Monitors[0].Heartbeats == 0 {
		t.Fatalf("monitor report empty: %+v", rep.Monitors)
	}
	if rep.Monitors[0].WatchEvents == 0 {
		t.Fatal("watch tap saw no events")
	}
	// The registry-side histogram and the tracker must agree on sample
	// count (both fed by the same ground truth marks).
	if reg := rep.Monitors[0].Detection; int(reg.Samples) != gt.Detected {
		t.Fatalf("registry histogram has %d samples, tracker %d", reg.Samples, gt.Detected)
	}
}

// TestRunMixedFleetSoak is the CI soak: the mixed-fleet preset scaled to
// ~2k senders for about a minute under -race, asserting the preset's own
// bounds (zero missed kills, bounded spurious, p99 in bound). Gated
// behind SFD_LOAD_SOAK=1 because it holds a minute of wall clock.
func TestRunMixedFleetSoak(t *testing.T) {
	if os.Getenv("SFD_LOAD_SOAK") == "" {
		t.Skip("set SFD_LOAD_SOAK=1 to run the load soak")
	}
	spec, err := Preset("mixed-fleet")
	if err != nil {
		t.Fatal(err)
	}
	spec.Total = 2000
	spec.Duration = 90 * time.Second
	rep, err := Run(spec, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("soak bounds failed: %v", rep.Violations)
	}
	if rep.Tracker.Detected == 0 || rep.Tracker.Global.Samples == 0 {
		t.Fatalf("soak measured nothing: %+v", rep.Tracker)
	}
}

func TestPresetsResolve(t *testing.T) {
	for _, name := range Presets() {
		spec, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := spec.normalize(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sum := 0
		for _, c := range spec.Cohorts {
			sum += c.Count
		}
		if sum != spec.Total {
			t.Fatalf("%s: cohort counts sum to %d, total %d", name, sum, spec.Total)
		}
	}
	if _, err := Preset("nope"); err == nil {
		t.Fatal("unknown preset resolved")
	}
}

func TestSpecNormalizeRejects(t *testing.T) {
	base := func() Spec {
		return Spec{
			Total: 10, Duration: time.Second,
			Cohorts: []CohortSpec{{Frac: 1, Pacer: Pacer{Interval: time.Second}}},
		}
	}
	cases := map[string]func(*Spec){
		"zero total":     func(s *Spec) { s.Total = 0 },
		"zero duration":  func(s *Spec) { s.Duration = 0 },
		"no cohorts":     func(s *Spec) { s.Cohorts = nil },
		"bad pacer":      func(s *Spec) { s.Cohorts[0].Pacer.Interval = 0 },
		"slash in name":  func(s *Spec) { s.Cohorts[0].Name = "a/b" },
		"bad fault kind": func(s *Spec) { s.Cohorts[0].Faults = []FaultSpec{{Kind: "explode"}} },
		"fault overflow": func(s *Spec) { s.Cohorts[0].Faults = []FaultSpec{{Kind: FaultKill, At: 0.9, Spread: 0.2}} },
	}
	for name, mut := range cases {
		s := base()
		mut(&s)
		if err := s.normalize(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	s := base()
	if err := s.normalize(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}
