package load

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/heartbeat"
	"repro/internal/transport"
)

// PacedSender is a single heartbeat sender driven by a Pacer: jittered
// inter-beat gaps and an initial ramp delay drawn uniformly from
// [0, Ramp). It is the one-process form of the fleet scheduler —
// `sfdmon -mode send -jitter -ramp` and the harness share the same
// timing model, so a hand-run sender paces exactly like a harness one.
type PacedSender struct {
	ep    transport.Endpoint
	to    string
	name  string
	pacer Pacer
	clk   clock.Clock
	rng   *rand.Rand

	seq  atomic.Uint64
	inc  atomic.Uint64
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewPacedSender builds a paced sender emitting to `to` through ep. A
// non-empty name sends wire-v3 named heartbeats. The pacer must
// validate; seed drives the jitter stream (0 means 1). A nil clock
// defaults to the real clock.
func NewPacedSender(ep transport.Endpoint, to, name string, pacer Pacer, seed int64, clk clock.Clock) (*PacedSender, error) {
	if err := pacer.Validate(); err != nil {
		return nil, err
	}
	if len(name) > heartbeat.MaxNameLen {
		return nil, errNameTooLong(name)
	}
	if clk == nil {
		clk = clock.NewReal()
	}
	if seed == 0 {
		seed = 1
	}
	return &PacedSender{
		ep: ep, to: to, name: name, pacer: pacer, clk: clk,
		rng:  rand.New(rand.NewSource(seed)),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}, nil
}

// SetIncarnation sets the incarnation carried in subsequent heartbeats.
func (s *PacedSender) SetIncarnation(inc uint64) { s.inc.Store(inc) }

// Sent returns how many heartbeats have been emitted.
func (s *PacedSender) Sent() uint64 { return s.seq.Load() }

// Start launches the send loop: an initial ramp delay, then one
// heartbeat per jittered gap until Stop.
func (s *PacedSender) Start() {
	go func() {
		defer close(s.done)
		if s.pacer.Ramp > 0 {
			delay := time.Duration(s.rng.Int63n(int64(s.pacer.Ramp)))
			if !s.sleep(delay) {
				return
			}
		}
		for {
			s.emit()
			if !s.sleep(s.pacer.Next(s.rng)) {
				return
			}
		}
	}()
}

func (s *PacedSender) emit() {
	seq := s.seq.Add(1) - 1
	msg := heartbeat.Message{
		Kind: heartbeat.KindHeartbeat,
		Seq:  seq,
		Time: s.clk.Now(),
		Inc:  s.inc.Load(),
		Name: s.name,
	}
	_ = s.ep.Send(s.to, msg.Marshal()) // unreliable channel: best effort
}

// sleep waits d or until Stop; it reports whether the loop should keep
// running.
func (s *PacedSender) sleep(d time.Duration) bool {
	if d <= 0 {
		select {
		case <-s.stop:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-s.stop:
		return false
	case <-t.C:
		return true
	}
}

// Stop terminates the loop and waits for it to exit.
func (s *PacedSender) Stop() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}
