package load

import (
	"container/heap"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/clock"
	"repro/internal/fanout"
	"repro/internal/heartbeat"
	"repro/internal/transport"
)

func errNameTooLong(name string) error {
	return fmt.Errorf("load: stream name %q exceeds %d bytes", name, heartbeat.MaxNameLen)
}

// FleetOptions configures one cohort of logical senders.
type FleetOptions struct {
	// Prefix is the hierarchical stream-name prefix; sender i is named
	// "<Prefix>/s-<i>". It must satisfy the registry's topic-name rules.
	Prefix string
	// Count is how many logical senders to run.
	Count int
	// Targets are the monitor addresses every heartbeat is sent to
	// (more than one → dual-send, so gossiping monitors observe the
	// same streams and can corroborate).
	Targets []string
	// Pacer shapes per-sender timing (interval, jitter, ramp).
	Pacer Pacer
	// Sockets is the UDP socket-pool size logical senders multiplex
	// over — the trick that fits 50k senders under the fd limit.
	// Default min(64, Count), at least 2 when Count > 1 so Rebind has
	// somewhere to move.
	Sockets int
	// Seed drives jitter and victim/rebind randomness (0 means 1).
	Seed int64
	// Clock supplies heartbeat timestamps; share one clock.Real with the
	// monitor so ground-truth latency subtracts on a single timebase.
	// nil defaults to a fresh real clock.
	Clock clock.Clock
	// Chaos, when non-nil, wraps every pool socket so the controller's
	// armed impairments shape this cohort's outbound heartbeats.
	Chaos *chaos.Controller
	// Incarnation is the starting incarnation number (default 1, so a
	// restart's bump is visible against the zero value).
	Incarnation uint64
}

func (o *FleetOptions) normalize() error {
	if o.Count <= 0 {
		return fmt.Errorf("load: fleet count must be positive (got %d)", o.Count)
	}
	if len(o.Targets) == 0 {
		return fmt.Errorf("load: fleet needs at least one target")
	}
	if err := o.Pacer.Validate(); err != nil {
		return err
	}
	if o.Prefix == "" {
		o.Prefix = "load"
	}
	if err := fanout.ValidateName(o.Prefix); err != nil {
		return fmt.Errorf("load: bad name prefix: %w", err)
	}
	if len(o.Prefix) > heartbeat.MaxNameLen-16 {
		return errNameTooLong(o.Prefix)
	}
	if o.Sockets <= 0 {
		o.Sockets = 64
		if o.Sockets > o.Count {
			o.Sockets = o.Count
		}
		if o.Count > 1 && o.Sockets < 2 {
			o.Sockets = 2
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Clock == nil {
		o.Clock = clock.NewReal()
	}
	if o.Incarnation == 0 {
		o.Incarnation = 1
	}
	return nil
}

// poolSock is one pooled UDP socket exposed as a transport.Endpoint so
// the chaos wrapper layers over it unchanged. It only transmits; Recv
// returns nil (nothing ever pumps it). Target addresses are resolved
// once at fleet build, so concurrent Sends (the scheduler plus delayed
// chaos re-sends) read an immutable map.
type poolSock struct {
	conn  *net.UDPConn
	addr  string
	addrs map[string]*net.UDPAddr
}

func (s *poolSock) Send(to string, p []byte) error {
	a := s.addrs[to]
	if a == nil {
		var err error
		if a, err = net.ResolveUDPAddr("udp", to); err != nil {
			return err
		}
	}
	_, err := s.conn.WriteToUDP(p, a)
	return err
}

func (s *poolSock) Recv() <-chan transport.Inbound { return nil }
func (s *poolSock) Addr() string                   { return s.addr }
func (s *poolSock) Close() error                   { return s.conn.Close() }

// vsender is one logical sender's scheduler state, owned by the
// scheduler goroutine (no locks).
type vsender struct {
	name  string
	seq   uint64
	inc   uint64
	sock  int
	alive bool
	next  clock.Time
	hidx  int // index in the heap, -1 when not queued
}

// senderHeap orders live senders by next beat instant.
type senderHeap []*vsender

func (h senderHeap) Len() int            { return len(h) }
func (h senderHeap) Less(i, j int) bool  { return h[i].next < h[j].next }
func (h senderHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].hidx, h[j].hidx = i, j }
func (h *senderHeap) Push(x any)         { s := x.(*vsender); s.hidx = len(*h); *h = append(*h, s) }
func (h *senderHeap) Pop() any           { old := *h; n := len(old); s := old[n-1]; old[n-1] = nil; s.hidx = -1; *h = old[:n-1]; return s }
func (h senderHeap) peek() *vsender      { return h[0] }

// opKind is a scheduler command.
type opKind int

const (
	opKill opKind = iota
	opRestart
	opRebind
)

type fleetCmd struct {
	op    opKind
	idx   int
	reply chan clock.Time
}

// Fleet runs Count logical heartbeat senders over a pooled socket set
// from a single timer-heap scheduler goroutine: 50k senders at 1 s
// intervals is 50k sends/s through one goroutine — a marshal and a
// sendto each — with no per-sender goroutine or timer. Faults (Kill,
// Restart, Rebind) are applied between beats by the same goroutine, so
// the returned instants are exact ground truth: no heartbeat for a
// killed sender is emitted after Kill returns.
type Fleet struct {
	opts  FleetOptions
	clk   clock.Clock
	socks []transport.Endpoint // chaos-wrapped when opts.Chaos != nil
	raw   []*poolSock
	all   []*vsender
	rng   *rand.Rand

	cmds  chan fleetCmd
	stopc chan struct{}
	done  chan struct{}
	once  sync.Once

	sent  atomic.Uint64
	errs  atomic.Uint64
	alive atomic.Int64

	buf []byte // scheduler-owned marshal buffer
}

// NewFleet opens the socket pool and builds the sender set; call Start
// to begin heartbeating.
func NewFleet(o FleetOptions) (*Fleet, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	addrs := make(map[string]*net.UDPAddr, len(o.Targets))
	for _, t := range o.Targets {
		a, err := net.ResolveUDPAddr("udp", t)
		if err != nil {
			return nil, fmt.Errorf("load: target %q: %w", t, err)
		}
		addrs[t] = a
	}
	f := &Fleet{
		opts:  o,
		clk:   o.Clock,
		rng:   rand.New(rand.NewSource(o.Seed)),
		cmds:  make(chan fleetCmd, 256),
		stopc: make(chan struct{}),
		done:  make(chan struct{}),
		buf:   make([]byte, 0, 64),
	}
	for i := 0; i < o.Sockets; i++ {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			f.closeSocks()
			return nil, fmt.Errorf("load: socket %d/%d: %w", i, o.Sockets, err)
		}
		ps := &poolSock{conn: conn, addr: conn.LocalAddr().String(), addrs: addrs}
		f.raw = append(f.raw, ps)
		if o.Chaos != nil {
			f.socks = append(f.socks, chaos.Wrap(ps, o.Chaos))
		} else {
			f.socks = append(f.socks, ps)
		}
	}
	f.all = make([]*vsender, o.Count)
	for i := range f.all {
		f.all[i] = &vsender{
			name:  fmt.Sprintf("%s/s-%05d", o.Prefix, i),
			inc:   o.Incarnation,
			sock:  i % o.Sockets,
			alive: true,
			hidx:  -1,
		}
	}
	f.alive.Store(int64(o.Count))
	return f, nil
}

func (f *Fleet) closeSocks() {
	for _, s := range f.raw {
		_ = s.conn.Close()
	}
}

// Name returns sender i's stream name.
func (f *Fleet) Name(i int) string { return f.all[i].name }

// Count returns the fleet size.
func (f *Fleet) Count() int { return len(f.all) }

// Sent returns heartbeats handed to the sockets (per target — a
// dual-send counts twice).
func (f *Fleet) Sent() uint64 { return f.sent.Load() }

// SendErrors returns socket send failures.
func (f *Fleet) SendErrors() uint64 { return f.errs.Load() }

// Alive returns how many senders are currently heartbeating.
func (f *Fleet) Alive() int { return int(f.alive.Load()) }

// Start launches the scheduler; sender i's first beat lands at its
// pacer StartOffset into the ramp window.
func (f *Fleet) Start() {
	go f.run()
}

// Stop halts the scheduler and closes the socket pool.
func (f *Fleet) Stop() {
	f.once.Do(func() { close(f.stopc) })
	<-f.done
	if f.opts.Chaos != nil {
		for _, s := range f.socks {
			_ = s.Close() // closes the wrapped poolSock too
		}
	} else {
		f.closeSocks()
	}
}

// Kill stops sender i's heartbeats abruptly (no farewell) and returns
// the exact instant after which nothing more was emitted.
func (f *Fleet) Kill(i int) clock.Time { return f.do(opKill, i) }

// Restart revives a killed sender: incarnation bumped, sequence reset,
// first heartbeat emitted immediately. Returns the restart instant.
func (f *Fleet) Restart(i int) clock.Time { return f.do(opRestart, i) }

// Rebind simulates a NAT rebind: sender i moves to a different pool
// socket (new source address) and bumps its incarnation, keeping its
// stream name and cadence — the mobile preset's key path. Returns the
// rebind instant.
func (f *Fleet) Rebind(i int) clock.Time { return f.do(opRebind, i) }

func (f *Fleet) do(op opKind, idx int) clock.Time {
	if idx < 0 || idx >= len(f.all) {
		return 0
	}
	reply := make(chan clock.Time, 1)
	select {
	case f.cmds <- fleetCmd{op: op, idx: idx, reply: reply}:
		select {
		case t := <-reply:
			return t
		case <-f.done:
			return 0
		}
	case <-f.done:
		return 0
	}
}

// run is the scheduler: a binary heap of senders keyed by next-beat
// instant, popped in due order, re-pushed one jittered interval later.
func (f *Fleet) run() {
	defer close(f.done)
	h := make(senderHeap, 0, len(f.all))
	start := f.clk.Now()
	for i, s := range f.all {
		s.next = start.Add(clock.Duration(f.opts.Pacer.StartOffset(i, len(f.all))))
		heap.Push(&h, s)
	}
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	const idleWait = 250 * time.Millisecond
	for {
		now := f.clk.Now()
		for len(h) > 0 && h.peek().next <= now {
			s := heap.Pop(&h).(*vsender)
			if !s.alive {
				continue // killed while queued: drop from the schedule
			}
			f.emit(s, now)
			s.seq++
			// Keep cadence relative to the planned beat, not the (possibly
			// late) emit, so load does not drift under scheduling delay —
			// unless we fell more than an interval behind.
			s.next = s.next.Add(clock.Duration(f.opts.Pacer.Next(f.rng)))
			if s.next <= now {
				s.next = now.Add(clock.Duration(f.opts.Pacer.Next(f.rng)))
			}
			heap.Push(&h, s)
		}
		wait := idleWait
		if len(h) > 0 {
			if d := time.Duration(h.peek().next.Sub(now)); d < wait {
				wait = d
			}
		}
		if wait < 0 {
			wait = 0
		}
		timer.Reset(wait)
		select {
		case <-f.stopc:
			return
		case cmd := <-f.cmds:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			f.apply(&h, cmd)
			// Drain any further queued commands before sleeping again.
			for {
				select {
				case more := <-f.cmds:
					f.apply(&h, more)
					continue
				default:
				}
				break
			}
		case <-timer.C:
		}
	}
}

func (f *Fleet) apply(h *senderHeap, cmd fleetCmd) {
	s := f.all[cmd.idx]
	now := f.clk.Now()
	switch cmd.op {
	case opKill:
		if s.alive {
			s.alive = false
			f.alive.Add(-1)
			// Left in the heap; dropped when popped.
		}
	case opRestart:
		if !s.alive {
			s.alive = true
			f.alive.Add(1)
			s.inc++
			s.seq = 0
			s.next = now
			if s.hidx >= 0 {
				heap.Fix(h, s.hidx)
			} else {
				heap.Push(h, s)
			}
		}
	case opRebind:
		if len(f.socks) > 1 {
			s.sock = (s.sock + 1 + f.rng.Intn(len(f.socks)-1)) % len(f.socks)
		}
		// Incarnation churn: the rebinding client cannot carry its
		// sequence progression across the new path, so it bumps its
		// incarnation and restarts numbering — the receiver's filter and
		// the registry supersede on the higher incarnation without a
		// transition as long as heartbeats keep flowing.
		s.inc++
		s.seq = 0
	}
	cmd.reply <- now
}

func (f *Fleet) emit(s *vsender, now clock.Time) {
	msg := heartbeat.Message{
		Kind: heartbeat.KindHeartbeat,
		Seq:  s.seq,
		Time: now,
		Inc:  s.inc,
		Name: s.name,
	}
	f.buf = msg.AppendTo(f.buf[:0])
	ep := f.socks[s.sock]
	for _, t := range f.opts.Targets {
		if err := ep.Send(t, f.buf); err != nil {
			f.errs.Add(1)
		} else {
			f.sent.Add(1)
		}
	}
}
