package load

import (
	"math/rand"
	"testing"
	"time"
)

func TestPacerValidate(t *testing.T) {
	bad := []Pacer{
		{},
		{Interval: -time.Second},
		{Interval: time.Second, Jitter: 1},
		{Interval: time.Second, Jitter: -0.1},
		{Interval: time.Second, Ramp: -time.Second},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v validated", p)
		}
	}
	if err := (Pacer{Interval: time.Second, Jitter: 0.99, Ramp: time.Minute}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPacerNextStaysInJitterBand(t *testing.T) {
	p := Pacer{Interval: time.Second, Jitter: 0.2}
	rng := rand.New(rand.NewSource(1))
	lo, hi := p.Interval, p.Interval
	for i := 0; i < 1000; i++ {
		d := p.Next(rng)
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if lo < 800*time.Millisecond || hi > 1200*time.Millisecond {
		t.Fatalf("gaps [%v, %v] escape ±20%% band", lo, hi)
	}
	if hi-lo < 100*time.Millisecond {
		t.Fatalf("gaps [%v, %v] barely vary; jitter not applied", lo, hi)
	}
	// Jitter off: fixed cadence.
	fixed := Pacer{Interval: time.Second}
	if d := fixed.Next(rng); d != time.Second {
		t.Fatalf("jitterless gap = %v", d)
	}
}

func TestPacerStartOffsetSpreadsRamp(t *testing.T) {
	p := Pacer{Interval: time.Second, Ramp: 10 * time.Second}
	if off := p.StartOffset(0, 100); off != 0 {
		t.Fatalf("first sender offset = %v", off)
	}
	mid := p.StartOffset(50, 100)
	if mid < 4*time.Second || mid > 6*time.Second {
		t.Fatalf("middle sender offset = %v, want ≈5s", mid)
	}
	last := p.StartOffset(99, 100)
	if last >= p.Ramp || last <= mid {
		t.Fatalf("last sender offset = %v", last)
	}
	if off := (Pacer{Interval: time.Second}).StartOffset(5, 10); off != 0 {
		t.Fatalf("no-ramp offset = %v", off)
	}
}
