package load

import (
	"fmt"
	"net"
	"net/http"
	"strings"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/gossip"
	"repro/internal/heartbeat"
	"repro/internal/registry"
	"repro/internal/transport"
)

// MonitorOptions configures one embedded monitor node.
type MonitorOptions struct {
	// Clock must be shared with the fleets and tracker so event
	// timestamps subtract from fault instants on one timebase.
	Clock clock.Clock
	// Factory builds each stream's detector (the run derives it from the
	// cohort specs).
	Factory registry.Factory
	// Registry knobs.
	OfflineAfter clock.Duration
	MaxSilence   clock.Duration
	EvictAfter   clock.Duration
	// StateDir enables persistence when non-empty.
	StateDir string
	// GossipPeers are the other monitors' UDP addresses; non-empty
	// starts a gossiper on the shared socket.
	GossipPeers []string
	// GossipQuorum for Global* verdicts (default 2).
	GossipQuorum int
	// ID names the monitor in gossip digests.
	ID string
	// RxQueues / RxBatch tune the ingest transport (defaults 1 / 32).
	RxQueues, RxBatch int
	// Transport adopts a pre-bound ingest socket (multi-monitor runs
	// bind all sockets first so each gossiper knows its peers' real
	// addresses); nil binds a fresh loopback socket.
	Transport *transport.UDP
}

// MonitorNode is a full in-process monitor: UDP ingest, sharded
// registry, optional gossiper, and an HTTP surface on a loopback
// ephemeral port (the /watch endpoint the taps consume — the harness
// observes the monitor exactly the way an operator's tooling would,
// over the wire, not through test hooks).
type MonitorNode struct {
	UDP *transport.UDP
	Reg *registry.Registry

	recv *heartbeat.Receiver
	gsp  *gossip.Gossiper
	srv  *http.Server
	ln   net.Listener
	sub  *registry.Subscription

	httpDone chan struct{}
	evtDone  chan struct{}
}

// Monitor ingest sockets ask for a deep kernel receive buffer (at 50k
// heartbeats/s the ~208 KiB SO_RCVBUF default holds under 5 ms of
// traffic, so one GC pause sheds a burst of datagrams — which the
// detector reads as correlated heartbeat loss across thousands of
// streams) and a receive-buffer pool sized to cover the whole ingest
// queue. The pool cap matters more than the queue depth: once in-flight
// buffers exceed the pool, every further datagram allocates a fresh
// 64 KiB buffer, and at fleet scale that GC pressure slows the consumer
// further — a feedback loop that turns a 10 ms lag into seconds of
// queue delay. The queue itself stays at its default depth on purpose:
// past ~100 ms of backlog a heartbeat is as good as lost, so shedding
// (counted in udp_dropped) beats delaying.
const (
	monitorReadBuffer  = 8 << 20 // kernel caps at net.core.rmem_max
	monitorQueueLen    = 4096
	monitorPoolBuffers = monitorQueueLen + 128
)

// StartMonitor boots a monitor node bound to loopback ephemeral ports.
func StartMonitor(o MonitorOptions) (*MonitorNode, error) {
	if o.Clock == nil {
		o.Clock = clock.NewReal()
	}
	if o.Factory == nil {
		return nil, fmt.Errorf("load: monitor needs a detector factory")
	}
	if o.RxBatch <= 0 {
		o.RxBatch = 32
	}
	if o.RxQueues <= 0 {
		o.RxQueues = 1
	}
	udp := o.Transport
	if udp == nil {
		var err error
		udp, err = transport.ListenUDPOpts("127.0.0.1:0", transport.UDPOptions{
			Queues: o.RxQueues, Batch: o.RxBatch,
			QueueLen: monitorQueueLen, PoolBuffers: monitorPoolBuffers,
			ReadBuffer: monitorReadBuffer,
		})
		if err != nil {
			return nil, fmt.Errorf("load: monitor udp: %w", err)
		}
	}
	m := &MonitorNode{UDP: udp, httpDone: make(chan struct{}), evtDone: make(chan struct{})}

	m.Reg = registry.New(o.Clock, o.Factory, registry.Options{
		OfflineAfter: o.OfflineAfter,
		MaxSilence:   o.MaxSilence,
		EvictAfter:   o.EvictAfter,
		StateDir:     o.StateDir,
		// Per-stream metrics sampling over tens of thousands of streams
		// would make each scrape a fleet walk; aggregates only.
		MetricsMaxStreams: -1,
	})
	m.Reg.Start()

	m.recv = heartbeat.NewReceiver(udp, o.Clock, m.Reg.Observe)
	if len(o.GossipPeers) > 0 {
		m.gsp = gossip.New(udp, o.Clock, m.Reg, o.GossipPeers, gossip.Options{
			ID:     o.ID,
			Quorum: o.GossipQuorum,
		})
		m.recv.SetForeign(func(in transport.Inbound) { m.gsp.HandleDatagram(in.Payload) })
		m.gsp.Start()
	}
	m.recv.Start()

	udp.InstrumentMetrics(m.Reg.Metrics())
	m.recv.InstrumentMetrics(m.Reg.Metrics())
	if m.gsp != nil {
		m.gsp.InstrumentMetrics(m.Reg.Metrics())
	}

	// Evictions clear the receiver's stale filter, same as sfdmon.
	m.sub = m.Reg.Subscribe(1024)
	go func() {
		defer close(m.evtDone)
		for ev := range m.sub.C() {
			if ev.Type == registry.EventEvicted {
				m.recv.Forget(ev.Peer)
			}
		}
	}()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		m.teardown()
		return nil, fmt.Errorf("load: monitor http: %w", err)
	}
	m.ln = ln
	mux := http.NewServeMux()
	mux.Handle("/", m.Reg.Handler())
	m.srv = &http.Server{Handler: mux}
	go func() {
		defer close(m.httpDone)
		_ = m.srv.Serve(ln)
	}()
	return m, nil
}

// UDPAddr is the heartbeat target address.
func (m *MonitorNode) UDPAddr() string { return m.UDP.Addr() }

// BaseURL is the HTTP surface root, e.g. "http://127.0.0.1:41234".
func (m *MonitorNode) BaseURL() string {
	return "http://" + strings.Replace(m.ln.Addr().String(), "0.0.0.0", "127.0.0.1", 1)
}

// Stop tears the node down: HTTP first (severs watch streams), then
// gossip, receiver, registry, socket.
func (m *MonitorNode) Stop() {
	if m.srv != nil {
		_ = m.srv.Close()
		<-m.httpDone
	}
	m.teardown()
}

func (m *MonitorNode) teardown() {
	if m.gsp != nil {
		m.gsp.Stop()
	}
	// The receiver exits when its endpoint closes.
	_ = m.UDP.Close()
	if m.recv != nil {
		m.recv.Wait()
	}
	if m.sub != nil {
		m.sub.Close()
		<-m.evtDone
	}
	if m.Reg != nil {
		m.Reg.Stop()
	}
}

// cohortFactory builds the per-stream detector factory: stream names are
// "<cohort>/s-<i>", so the cohort prefix picks that cohort's detector
// configuration; unknown prefixes get the first cohort's.
func cohortFactory(cohorts []CohortSpec) registry.Factory {
	type cfgEntry struct {
		prefix string
		cfg    core.Config
	}
	entries := make([]cfgEntry, 0, len(cohorts))
	for _, c := range cohorts {
		cfg := core.DefaultConfig()
		cfg.Targets = c.Targets
		cfg.Interval = c.Pacer.Interval
		cfg.InitialMargin = c.Margin
		cfg.WindowSize = c.WindowSize
		cfg.SlotHeartbeats = c.SlotHeartbeats
		entries = append(entries, cfgEntry{prefix: c.Name + "/", cfg: cfg})
	}
	return func(peer string) detector.Detector {
		for _, e := range entries {
			if strings.HasPrefix(peer, e.prefix) {
				return core.New(e.cfg)
			}
		}
		return core.New(entries[0].cfg)
	}
}
