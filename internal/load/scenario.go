package load

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
)

// FaultKind names a scripted fault.
type FaultKind string

const (
	// FaultKill stops victims' heartbeats abruptly (process crash).
	FaultKill FaultKind = "kill"
	// FaultRebind moves victims to a new source address with an
	// incarnation bump (NAT rebind / DHCP lease churn).
	FaultRebind FaultKind = "rebind"
)

// FaultSpec schedules one fault wave over a cohort. Instants are
// fractions of the run duration so a preset scales when -duration is
// overridden.
type FaultSpec struct {
	Kind FaultKind `json:"kind"`
	// Frac is the fraction of the cohort hit (victims are drawn by the
	// run seed, deterministic per seed).
	Frac float64 `json:"frac"`
	// At is when the first victim is hit, as a fraction of the run.
	At float64 `json:"at"`
	// Spread staggers victims uniformly over this fraction of the run
	// after At (0 = all at once).
	Spread float64 `json:"spread,omitempty"`
	// RestartAfter revives killed victims this long after their kill
	// (incarnation bump, sequence reset). 0 = stay dead. Ignored for
	// rebind.
	RestartAfter time.Duration `json:"restart_after,omitempty"`
}

// CohortSpec is one homogeneous slice of the fleet: a name, a share of
// the total sender count, a pacing model, optional chaos impairments on
// its outbound path, per-cohort detector QoS targets, and fault waves.
type CohortSpec struct {
	Name string `json:"name"`
	// Frac is this cohort's share of Spec.Total (shares are normalized;
	// the last cohort absorbs rounding remainder).
	Frac float64 `json:"frac"`
	// Count is the resolved sender count (set by normalize).
	Count int   `json:"count"`
	Pacer Pacer `json:"pacer"`
	// Chaos is an internal/chaos DSL scenario armed on this cohort's
	// outbound sockets (empty = clean path).
	Chaos string `json:"chaos,omitempty"`
	// Targets are the QoS targets for this cohort's detectors.
	Targets core.Targets `json:"targets"`
	// Margin is the detectors' initial safety margin. While the slot
	// verdict stays Stable the tuner leaves it alone, so sizing it at
	// k·Interval buys tolerance of k consecutive lost heartbeats
	// without spurious suspicion. Default 2.5×Interval.
	Margin time.Duration `json:"margin,omitempty"`
	// WindowSize / SlotHeartbeats shrink the detector's sampling window
	// and tuning slot so self-tuning engages within a short run
	// (defaults 64 and 20; the paper's 1000/500 need hours at mobile
	// intervals).
	WindowSize     int `json:"window_size,omitempty"`
	SlotHeartbeats int `json:"slot_heartbeats,omitempty"`
	// Sockets sizes this cohort's UDP pool (default: fleet default).
	Sockets int         `json:"sockets,omitempty"`
	Faults  []FaultSpec `json:"faults,omitempty"`
}

// Bounds are the pass/fail gates evaluated over the report — what the
// CI soak asserts.
type Bounds struct {
	// MaxSpurious is the most suspect/offline transitions tolerated for
	// peers that were alive and heartbeating (<0 = unchecked).
	MaxSpurious int `json:"max_spurious"`
	// MaxMissed is the most injected kills tolerated undetected by
	// restart time or run end (<0 = unchecked).
	MaxMissed int `json:"max_missed"`
	// MaxP99 bounds the ground-truth detection-latency p99
	// (0 = unchecked).
	MaxP99 time.Duration `json:"max_p99,omitempty"`
	// MinDetected requires at least this many latency samples — guards
	// against a run that vacuously passes because nothing was measured.
	MinDetected int `json:"min_detected,omitempty"`
}

// Spec is a complete load-harness scenario.
type Spec struct {
	Name string `json:"name"`
	// Total is the fleet size across cohorts.
	Total int `json:"total"`
	// Duration is how long senders run before teardown.
	Duration time.Duration `json:"duration"`
	// Seed drives victim selection, jitter, and chaos (0 means 1).
	Seed int64 `json:"seed,omitempty"`
	// Monitors is how many monitor nodes observe the fleet; >1 forms a
	// gossip mesh and every sender dual-sends to all of them.
	Monitors int `json:"monitors"`
	// GossipQuorum is the concurring-monitor count for Global* verdicts
	// (default 2, only meaningful with Monitors > 1).
	GossipQuorum int `json:"gossip_quorum,omitempty"`
	// Persist checkpoints monitor state to a temp dir (exercises the
	// persistence write path under load).
	Persist bool `json:"persist,omitempty"`
	// OfflineAfter / MaxSilence are registry-level knobs shared by all
	// cohorts (zero = scenario defaults).
	OfflineAfter time.Duration `json:"offline_after,omitempty"`
	MaxSilence   time.Duration `json:"max_silence,omitempty"`
	Cohorts      []CohortSpec  `json:"cohorts"`
	Bounds       Bounds        `json:"bounds"`
}

func (s *Spec) normalize() error {
	if s.Name == "" {
		s.Name = "custom"
	}
	if s.Total <= 0 {
		return fmt.Errorf("load: spec total must be positive (got %d)", s.Total)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("load: spec duration must be positive (got %v)", s.Duration)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Monitors <= 0 {
		s.Monitors = 1
	}
	if s.GossipQuorum <= 0 {
		s.GossipQuorum = 2
	}
	if s.OfflineAfter <= 0 {
		s.OfflineAfter = 10 * time.Second
	}
	if s.MaxSilence == 0 {
		s.MaxSilence = 30 * time.Second
	}
	if len(s.Cohorts) == 0 {
		return fmt.Errorf("load: spec needs at least one cohort")
	}
	var fracSum float64
	for i := range s.Cohorts {
		c := &s.Cohorts[i]
		if c.Name == "" {
			c.Name = fmt.Sprintf("c%d", i)
		}
		if strings.ContainsAny(c.Name, "/+#") {
			return fmt.Errorf("load: cohort name %q may not contain '/', '+', or '#'", c.Name)
		}
		if c.Frac < 0 {
			return fmt.Errorf("load: cohort %s frac must be non-negative", c.Name)
		}
		if err := c.Pacer.Validate(); err != nil {
			return fmt.Errorf("load: cohort %s: %w", c.Name, err)
		}
		if c.Margin <= 0 {
			c.Margin = c.Pacer.Interval * 5 / 2
		}
		if c.WindowSize <= 0 {
			c.WindowSize = 64
		}
		if c.SlotHeartbeats <= 0 {
			c.SlotHeartbeats = 20
		}
		for j, f := range c.Faults {
			switch f.Kind {
			case FaultKill, FaultRebind:
			default:
				return fmt.Errorf("load: cohort %s fault %d: unknown kind %q", c.Name, j, f.Kind)
			}
			if f.Frac < 0 || f.Frac > 1 {
				return fmt.Errorf("load: cohort %s fault %d: frac must be in [0,1]", c.Name, j)
			}
			if f.At < 0 || f.At > 1 || f.Spread < 0 || f.At+f.Spread > 1 {
				return fmt.Errorf("load: cohort %s fault %d: at/spread must fit in [0,1]", c.Name, j)
			}
		}
		fracSum += c.Frac
	}
	if fracSum <= 0 {
		return fmt.Errorf("load: cohort fracs sum to zero")
	}
	// Largest-share-last remainder absorption keeps counts summing to
	// Total exactly.
	assigned := 0
	for i := range s.Cohorts {
		c := &s.Cohorts[i]
		if i == len(s.Cohorts)-1 {
			c.Count = s.Total - assigned
		} else {
			c.Count = int(float64(s.Total) * (c.Frac / fracSum))
			assigned += c.Count
		}
		if c.Count <= 0 {
			return fmt.Errorf("load: cohort %s resolves to zero senders (total %d too small)", c.Name, s.Total)
		}
	}
	return nil
}

// presetNames in listing order.
var presetNames = []string{"datacenter", "mobile", "mixed-fleet"}

// Presets lists the built-in scenario names.
func Presets() []string {
	out := make([]string, len(presetNames))
	copy(out, presetNames)
	sort.Strings(out)
	return out
}

// Preset returns a built-in scenario. Total and Duration carry defaults
// the caller may override before Run.
func Preset(name string) (Spec, error) {
	switch name {
	case "datacenter":
		// LAN fleet: short intervals, tiny jitter, rare random loss.
		// One kill wave mid-run measures detection latency at scale; the
		// second half of the wave restarts to exercise recovery.
		return Spec{
			Name:     "datacenter",
			Total:    10000,
			Duration: 2 * time.Minute,
			Monitors: 1,
			Cohorts: []CohortSpec{{
				Name:  "dc",
				Frac:  1,
				Pacer: Pacer{Interval: time.Second, Jitter: 0.02, Ramp: 10 * time.Second},
				Chaos: "0s+24h:loss(rate=0.001)",
				Targets: core.Targets{
					MaxTD: 4 * time.Second, MaxMR: 0.5, MinQAP: 0.98,
				},
				Faults: []FaultSpec{
					{Kind: FaultKill, Frac: 0.01, At: 0.55, Spread: 0.1},
					{Kind: FaultKill, Frac: 0.01, At: 0.55, Spread: 0.1,
						RestartAfter: 20 * time.Second},
				},
			}},
			Bounds: Bounds{MaxSpurious: 0, MaxMissed: 0, MaxP99: 8 * time.Second, MinDetected: 5},
		}, nil
	case "mobile":
		// Cellular-ish fleet: long jittered intervals, Gilbert–Elliott
		// deep loss bursts plus variable delay, NAT rebinds mid-run
		// (incarnation churn must not read as crashes), then a kill wave.
		return Spec{
			Name:         "mobile",
			Total:        2000,
			Duration:     3 * time.Minute,
			Monitors:     1,
			OfflineAfter: 15 * time.Second,
			Cohorts: []CohortSpec{{
				Name:  "mob",
				Frac:  1,
				Pacer: Pacer{Interval: 2 * time.Second, Jitter: 0.25, Ramp: 15 * time.Second},
				Chaos: "0s+24h:loss(rate=0.06,burst=6);0s+24h:delay(delay=60ms,jitter=50ms)",
				Targets: core.Targets{
					MaxTD: 12 * time.Second, MaxMR: 2, MinQAP: 0.9,
				},
				Margin:         6 * time.Second,
				WindowSize:     48,
				SlotHeartbeats: 16,
				Faults: []FaultSpec{
					{Kind: FaultRebind, Frac: 0.15, At: 0.35, Spread: 0.1},
					{Kind: FaultKill, Frac: 0.03, At: 0.6, Spread: 0.1},
				},
			}},
			// Deep loss bursts make some false suspicion unavoidable at
			// mobile QoS; the bound asserts it stays rare, not zero.
			Bounds: Bounds{MaxSpurious: 40, MaxMissed: 0, MaxP99: 30 * time.Second, MinDetected: 5},
		}, nil
	case "mixed-fleet":
		// Everything at once: a clean datacenter cohort and an impaired
		// edge cohort, observed by two gossiping monitors (dual-send)
		// with persistence on — the closest drill to production shape.
		return Spec{
			Name:     "mixed-fleet",
			Total:    5000,
			Duration: 3 * time.Minute,
			Monitors: 2,
			Persist:  true,
			Cohorts: []CohortSpec{
				{
					Name:  "dc",
					Frac:  0.7,
					Pacer: Pacer{Interval: time.Second, Jitter: 0.02, Ramp: 10 * time.Second},
					Chaos: "0s+24h:loss(rate=0.001)",
					Targets: core.Targets{
						MaxTD: 4 * time.Second, MaxMR: 0.5, MinQAP: 0.98,
					},
					Faults: []FaultSpec{
						{Kind: FaultKill, Frac: 0.02, At: 0.55, Spread: 0.1,
							RestartAfter: 25 * time.Second},
					},
				},
				{
					Name:  "edge",
					Frac:  0.3,
					Pacer: Pacer{Interval: 2 * time.Second, Jitter: 0.2, Ramp: 15 * time.Second},
					Chaos: "0s+24h:loss(rate=0.04,burst=5);0s+24h:delay(delay=40ms,jitter=40ms)",
					Targets: core.Targets{
						MaxTD: 12 * time.Second, MaxMR: 2, MinQAP: 0.9,
					},
					Margin:         6 * time.Second,
					WindowSize:     48,
					SlotHeartbeats: 16,
					Faults: []FaultSpec{
						{Kind: FaultRebind, Frac: 0.1, At: 0.4, Spread: 0.05},
						{Kind: FaultKill, Frac: 0.03, At: 0.65, Spread: 0.1},
					},
				},
			},
			Bounds: Bounds{MaxSpurious: 30, MaxMissed: 0, MaxP99: 25 * time.Second, MinDetected: 10},
		}, nil
	default:
		return Spec{}, fmt.Errorf("load: unknown preset %q (have %s)",
			name, strings.Join(Presets(), ", "))
	}
}
