package load

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/clock"
	"repro/internal/transport"
)

// Run executes a scenario end to end: boot the monitors, aim the
// fleets at them over real loopback UDP, tap every monitor's /watch
// stream into the ground-truth tracker, play the fault timeline, and
// score the result against the spec's bounds. progress (nil to silence)
// gets one status line every ~10 s.
//
// Teardown ordering is load-bearing: aggregates are collected and the
// tracker frozen while everything still runs, THEN taps, fleets, and
// monitors stop — so the silence of shutdown is never scored as
// failure.
func Run(spec Spec, progress io.Writer) (*Report, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	say := func(format string, a ...any) {
		if progress != nil {
			fmt.Fprintf(progress, format+"\n", a...)
		}
	}
	started := time.Now()
	clk := clock.NewReal()
	rng := rand.New(rand.NewSource(spec.Seed))

	// --- monitors -------------------------------------------------------
	// Multi-monitor runs gossip over the heartbeat sockets; every
	// monitor needs the others' addresses, so sockets bind in a first
	// pass and gossip wiring happens in StartMonitor.
	var monitors []*MonitorNode
	var stateDirs []string
	stopAll := func() {
		for _, m := range monitors {
			m.Stop()
		}
		for _, d := range stateDirs {
			os.RemoveAll(d)
		}
	}
	factory := cohortFactory(spec.Cohorts)
	udpAddrs := make([]string, 0, spec.Monitors)
	if spec.Monitors > 1 {
		// Every gossiper needs the other monitors' addresses before it
		// is built, so the ingest sockets bind in a first pass and each
		// StartMonitor adopts its pre-bound one.
		addrs, err := preBindAddrs(spec.Monitors)
		if err != nil {
			return nil, err
		}
		udpAddrs = addrs.addrs
		for i := 0; i < spec.Monitors; i++ {
			peers := make([]string, 0, spec.Monitors-1)
			for j, a := range udpAddrs {
				if j != i {
					peers = append(peers, a)
				}
			}
			dir := ""
			if spec.Persist {
				d, err := os.MkdirTemp("", "sfdload-state-*")
				if err != nil {
					stopAll()
					return nil, err
				}
				stateDirs = append(stateDirs, d)
				dir = d
			}
			m, err := StartMonitor(MonitorOptions{
				Clock:        clk,
				Factory:      factory,
				OfflineAfter: spec.OfflineAfter,
				MaxSilence:   spec.MaxSilence,
				EvictAfter:   -1, // keep offline streams for scoring
				StateDir:     dir,
				GossipPeers:  peers,
				GossipQuorum: spec.GossipQuorum,
				ID:           fmt.Sprintf("mon-%d", i),
				Transport:    addrs.udps[i],
			})
			if err != nil {
				addrs.closeFrom(i)
				stopAll()
				return nil, err
			}
			monitors = append(monitors, m)
		}
	} else {
		dir := ""
		if spec.Persist {
			d, err := os.MkdirTemp("", "sfdload-state-*")
			if err != nil {
				return nil, err
			}
			stateDirs = append(stateDirs, d)
			dir = d
		}
		m, err := StartMonitor(MonitorOptions{
			Clock:        clk,
			Factory:      factory,
			OfflineAfter: spec.OfflineAfter,
			MaxSilence:   spec.MaxSilence,
			EvictAfter:   -1,
			StateDir:     dir,
			ID:           "mon-0",
		})
		if err != nil {
			stopAll()
			return nil, err
		}
		monitors = append(monitors, m)
		udpAddrs = append(udpAddrs, m.UDPAddr())
	}
	say("sfdload: %d monitor(s) up: %v", len(monitors), udpAddrs)

	// --- tracker + taps -------------------------------------------------
	tracker := NewTracker()
	taps := make([]*WatchTap, 0, len(monitors))
	for _, m := range monitors {
		tap := NewWatchTap(m.BaseURL(), "#", 8192, tracker.OnEvent)
		tap.Start()
		taps = append(taps, tap)
	}

	// --- fleets ---------------------------------------------------------
	var fleets []*Fleet
	var ctls []*chaos.Controller
	failAll := func(err error) (*Report, error) {
		for _, tap := range taps {
			tap.Stop()
		}
		for _, f := range fleets {
			f.Stop()
		}
		stopAll()
		return nil, err
	}
	for ci := range spec.Cohorts {
		c := &spec.Cohorts[ci]
		var ctl *chaos.Controller
		if c.Chaos != "" {
			sc, err := chaos.ParseDSL(c.Chaos)
			if err != nil {
				return failAll(fmt.Errorf("load: cohort %s chaos: %w", c.Name, err))
			}
			sc.Name = spec.Name + "/" + c.Name
			ctl = chaos.NewController(clk, spec.Seed+int64(ci))
			if err := ctl.Play(sc); err != nil {
				return failAll(fmt.Errorf("load: cohort %s chaos: %w", c.Name, err))
			}
		}
		ctls = append(ctls, ctl)
		f, err := NewFleet(FleetOptions{
			Prefix:  c.Name,
			Count:   c.Count,
			Targets: udpAddrs,
			Pacer:   c.Pacer,
			Sockets: c.Sockets,
			Seed:    spec.Seed + 101*int64(ci+1),
			Clock:   clk,
			Chaos:   ctl,
		})
		if err != nil {
			return failAll(err)
		}
		fleets = append(fleets, f)
		for i := 0; i < f.Count(); i++ {
			tracker.Register(f.Name(i))
		}
	}
	for _, f := range fleets {
		f.Start()
	}
	say("sfdload: %d senders heartbeating across %d cohort(s)", spec.Total, len(fleets))

	// --- fault timeline -------------------------------------------------
	ops := buildTimeline(&spec, rng)
	opDone := make(chan struct{})
	go func() {
		defer close(opDone)
		t0 := time.Now()
		for _, op := range ops {
			if d := op.at - time.Since(t0); d > 0 {
				time.Sleep(d)
			}
			f := fleets[op.cohort]
			name := f.Name(op.idx)
			switch {
			case op.kind == FaultKill && op.restart:
				for _, m := range monitors {
					m.Reg.UnmarkFailure(name)
				}
				tracker.MarkRestarted(name)
				f.Restart(op.idx)
			case op.kind == FaultKill:
				at := f.Kill(op.idx)
				tracker.MarkKilled(name, at)
				for _, m := range monitors {
					m.Reg.MarkFailure(name, at)
				}
			case op.kind == FaultRebind:
				f.Rebind(op.idx)
				tracker.NoteRebind(name)
			}
		}
	}()

	// --- run ------------------------------------------------------------
	deadline := time.NewTimer(spec.Duration)
	defer deadline.Stop()
	tick := time.NewTicker(10 * time.Second)
	defer tick.Stop()
	for running := true; running; {
		select {
		case <-deadline.C:
			running = false
		case <-tick.C:
			var sent uint64
			alive := 0
			for _, f := range fleets {
				sent += f.Sent()
				alive += f.Alive()
			}
			ts := tracker.Snapshot()
			say("sfdload: t=%v alive=%d sent=%d hb=%d detected=%d/%d spurious=%d",
				time.Since(started).Round(time.Second), alive, sent,
				monitors[0].Reg.Counters().Heartbeats, ts.Detected, ts.Injected, ts.Spurious)
		}
	}
	<-opDone

	// --- collect, then tear down ---------------------------------------
	// Give in-flight transitions a beat to cross the watch streams.
	time.Sleep(500 * time.Millisecond)
	tracker.Freeze()
	tracker.FinishMissed()

	rep := &Report{
		Scenario:  spec.Name,
		StartedAt: started,
		Total:     spec.Total,
		DurationS: spec.Duration.Seconds(),
		Seed:      spec.Seed,
		Bounds:    spec.Bounds,
	}
	for i, m := range monitors {
		c := m.Reg.Counters()
		uc := m.UDP.Counters()
		rep.Monitors = append(rep.Monitors, MonitorReport{
			Addr:         m.UDPAddr(),
			Heartbeats:   c.Heartbeats,
			UDPReceived:  uc.Received,
			UDPDropped:   uc.Dropped,
			Stale:        c.Stale,
			Suspects:     c.Suspects,
			Trusts:       c.Trusts,
			Offlines:     c.Offlines,
			QoS:          qosAggregate(m.Reg),
			Detection:    m.Reg.DetectionLatency(),
			WatchEvents:  taps[i].Events(),
			WatchDropped: taps[i].Dropped(),
			WatchReconns: taps[i].Reconnects(),
		})
	}
	for ci, f := range fleets {
		cr := CohortReport{
			Name:       spec.Cohorts[ci].Name,
			Count:      f.Count(),
			IntervalMS: float64(spec.Cohorts[ci].Pacer.Interval) / float64(time.Millisecond),
			Sent:       f.Sent(),
			SendErrors: f.SendErrors(),
		}
		if ctls[ci] != nil {
			cc := ctls[ci].Counters()
			cr.Chaos = &cc
		}
		rep.Cohorts = append(rep.Cohorts, cr)
	}
	rep.Tracker = tracker.Snapshot()

	for _, tap := range taps {
		tap.Stop()
	}
	for _, f := range fleets {
		f.Stop()
	}
	stopAll()
	rep.WallTime = time.Since(started).Seconds()
	rep.evaluate()
	return rep, nil
}

// boundUDP pre-binds the monitor sockets so each gossiper can be built
// knowing every peer's address.
type boundUDP struct {
	udps  []*transport.UDP
	addrs []string
}

func (b *boundUDP) closeFrom(i int) {
	for ; i < len(b.udps); i++ {
		_ = b.udps[i].Close()
	}
}

// preBindAddrs binds n monitor ingest sockets up front.
func preBindAddrs(n int) (*boundUDP, error) {
	out := &boundUDP{}
	for i := 0; i < n; i++ {
		u, err := transport.ListenUDPOpts("127.0.0.1:0", transport.UDPOptions{
			Batch: 32, QueueLen: monitorQueueLen, PoolBuffers: monitorPoolBuffers,
			ReadBuffer: monitorReadBuffer,
		})
		if err != nil {
			out.closeFrom(0)
			return nil, err
		}
		out.udps = append(out.udps, u)
		out.addrs = append(out.addrs, u.Addr())
	}
	return out, nil
}
