package load

import (
	"math"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/stats"
)

// quantSet accumulates one latency population: streaming P² quantiles
// plus Welford mean/variance and the max.
type quantSet struct {
	p50, p95, p99 *stats.P2Quantile
	n             int
	mean, m2      float64
	max           float64
}

func newQuantSet() *quantSet {
	return &quantSet{
		p50: stats.NewP2Quantile(0.50),
		p95: stats.NewP2Quantile(0.95),
		p99: stats.NewP2Quantile(0.99),
	}
}

func (q *quantSet) add(sec float64) {
	q.p50.Add(sec)
	q.p95.Add(sec)
	q.p99.Add(sec)
	q.n++
	d := sec - q.mean
	q.mean += d / float64(q.n)
	q.m2 += d * (sec - q.mean)
	if sec > q.max {
		q.max = sec
	}
}

// LatencySummary is one population's JSON view (seconds).
type LatencySummary struct {
	Samples int     `json:"samples"`
	Mean    float64 `json:"mean_s"`
	StdDev  float64 `json:"stddev_s"`
	P50     float64 `json:"p50_s"`
	P95     float64 `json:"p95_s"`
	P99     float64 `json:"p99_s"`
	Max     float64 `json:"max_s"`
}

func (q *quantSet) summary() LatencySummary {
	s := LatencySummary{Samples: q.n}
	if q.n == 0 {
		return s
	}
	s.Mean = q.mean
	if q.n > 1 {
		s.StdDev = math.Sqrt(q.m2 / float64(q.n-1))
	}
	s.P50, s.P95, s.P99, s.Max = q.p50.Value(), q.p95.Value(), q.p99.Value(), q.max
	return s
}

type peerPhase uint8

const (
	peerAlive peerPhase = iota
	peerKilled
	peerDetected // killed and locally suspected
)

type peerTrack struct {
	phase      peerPhase
	killedAt   clock.Time
	globalDone bool
	// suspectedWhileAlive marks a live peer currently under (spurious)
	// suspicion, so a follow-up offline for the same mistake is not
	// double-counted as a second spurious transition.
	suspectedWhileAlive bool
}

// TrackerStats is the tracker's aggregate JSON view.
type TrackerStats struct {
	Injected  int `json:"injected_kills"`
	Detected  int `json:"detected"`
	Missed    int `json:"missed"`
	Rebinds   int `json:"rebinds"`
	Restarts  int `json:"restarts"`
	Spurious  int `json:"spurious_transitions"`
	Recovered int `json:"spurious_recovered"`
	// SpuriousPeers samples up to 16 offenders for the report.
	SpuriousPeers []string       `json:"spurious_peers,omitempty"`
	Local         LatencySummary `json:"detection_latency"`
	// Global summarizes gossip-corroborated (Global*) verdict latency —
	// zero-sample unless the spec runs multiple monitors.
	Global LatencySummary `json:"global_detection_latency"`
}

// Tracker is the ground-truth scorer: the run reports every injected
// fault to it (MarkKilled / MarkRestarted / NoteRebind), every watch tap
// feeds it events (OnEvent), and it classifies each transition as a true
// detection (latency sample against the kill instant), a miss, or a
// spurious suspicion of a live sender. All monitors share the harness
// clock, so event timestamps subtract cleanly from fault instants.
type Tracker struct {
	mu       sync.Mutex
	peers    map[string]*peerTrack
	local    *quantSet
	global   *quantSet
	missed   int
	injected int
	rebinds  int
	restarts int
	spurious int
	recover_ int
	offender []string
	// frozen stops classification (set before teardown so end-of-run
	// silence never counts).
	frozen bool
}

// NewTracker builds an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		peers:  make(map[string]*peerTrack),
		local:  newQuantSet(),
		global: newQuantSet(),
	}
}

// Register adds a live peer; events for unregistered peers (gossip ids,
// other tenants) are ignored.
func (t *Tracker) Register(name string) {
	t.mu.Lock()
	t.peers[name] = &peerTrack{}
	t.mu.Unlock()
}

// MarkKilled records the exact instant after which peer emitted nothing.
func (t *Tracker) MarkKilled(peer string, at clock.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.peers[peer]
	if p == nil || p.phase != peerAlive {
		return
	}
	p.phase = peerKilled
	p.killedAt = at
	p.globalDone = false
	p.suspectedWhileAlive = false
	t.injected++
}

// MarkRestarted returns peer to the alive population; a kill still
// undetected at restart counts as missed.
func (t *Tracker) MarkRestarted(peer string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.peers[peer]
	if p == nil || p.phase == peerAlive {
		return
	}
	if p.phase == peerKilled {
		t.missed++
	}
	p.phase = peerAlive
	p.suspectedWhileAlive = false
	t.restarts++
}

// NoteRebind counts an injected rebind (classification is unchanged —
// a rebind must NOT produce transitions; if it does, they land in the
// spurious bucket like any other false suspicion).
func (t *Tracker) NoteRebind(string) {
	t.mu.Lock()
	t.rebinds++
	t.mu.Unlock()
}

// Freeze stops classification; call before tearing fleets down so the
// trailing silence is not scored.
func (t *Tracker) Freeze() {
	t.mu.Lock()
	t.frozen = true
	t.mu.Unlock()
}

// FinishMissed counts still-undetected kills as missed at run end and
// returns the tally. Call after taps have drained.
func (t *Tracker) FinishMissed() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, p := range t.peers {
		if p.phase == peerKilled {
			p.phase = peerDetected
			t.missed++
		}
	}
	return t.missed
}

// OnEvent classifies one watch event. Safe for concurrent taps.
func (t *Tracker) OnEvent(ev WatchEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.frozen {
		return
	}
	p := t.peers[ev.Peer]
	if p == nil {
		return
	}
	switch ev.Event {
	case "suspect", "offline":
		switch p.phase {
		case peerKilled:
			// True detection: ground-truth latency from the injection
			// instant to the monitor's transition timestamp.
			lat := time.Duration(clock.Time(ev.At).Sub(p.killedAt)).Seconds()
			if lat < 0 {
				lat = 0
			}
			t.local.add(lat)
			p.phase = peerDetected
		case peerAlive:
			// False suspicion of a live, heartbeating sender. The
			// suspect→offline escalation of one mistake counts once.
			if ev.Event == "suspect" || !p.suspectedWhileAlive {
				t.spurious++
				p.suspectedWhileAlive = true
				if len(t.offender) < 16 {
					t.offender = append(t.offender, ev.Peer+":"+ev.Event)
				}
			}
		}
	case "trust":
		if p.phase == peerAlive && p.suspectedWhileAlive {
			p.suspectedWhileAlive = false
			t.recover_++
		}
	case "global-suspect", "global-offline":
		if (p.phase == peerKilled || p.phase == peerDetected) && !p.globalDone {
			lat := time.Duration(clock.Time(ev.At).Sub(p.killedAt)).Seconds()
			if lat < 0 {
				lat = 0
			}
			t.global.add(lat)
			p.globalDone = true
		}
	}
}

// Snapshot returns the current aggregates.
func (t *Tracker) Snapshot() TrackerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TrackerStats{
		Injected:      t.injected,
		Detected:      t.local.n,
		Missed:        t.missed,
		Rebinds:       t.rebinds,
		Restarts:      t.restarts,
		Spurious:      t.spurious,
		Recovered:     t.recover_,
		SpuriousPeers: append([]string(nil), t.offender...),
		Local:         t.local.summary(),
		Global:        t.global.summary(),
	}
}
