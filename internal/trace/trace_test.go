package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/clock"
)

func genTrace(t *testing.T, name string, count int) *Trace {
	t.Helper()
	gp, err := Preset(name)
	if err != nil {
		t.Fatal(err)
	}
	gp.Count = count
	tr := Collect(gp.Meta, NewGenerator(gp))
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	return tr
}

func TestRecordDelay(t *testing.T) {
	r := Record{SendTime: 100, RecvTime: 350}
	if r.Delay() != 250 {
		t.Fatalf("Delay = %v", r.Delay())
	}
}

func TestPresetNamesOrderAndCompleteness(t *testing.T) {
	names := PresetNames()
	if len(names) != 7 {
		t.Fatalf("want 7 presets, got %d: %v", len(names), names)
	}
	if names[0] != "WAN-JPCH" {
		t.Fatalf("first preset = %q, want WAN-JPCH", names[0])
	}
	for i := 1; i <= 6; i++ {
		want := "WAN-" + string(rune('0'+i))
		if names[i] != want {
			t.Fatalf("names[%d] = %q, want %q", i, names[i], want)
		}
	}
}

func TestPresetUnknown(t *testing.T) {
	if _, err := Preset("WAN-99"); err == nil {
		t.Fatal("unknown preset should error")
	}
}

func TestPaperCountsCoverAllPresets(t *testing.T) {
	for _, n := range PresetNames() {
		if PaperCounts[n] < 5_000_000 {
			t.Errorf("PaperCounts[%s] = %d, implausible", n, PaperCounts[n])
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	gp, _ := Preset("WAN-1")
	gp.Count = 5000
	a := Collect(gp.Meta, NewGenerator(gp))
	b := Collect(gp.Meta, NewGenerator(gp))
	if len(a.Records) != len(b.Records) {
		t.Fatal("lengths differ")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
}

func TestGeneratorSeedChangesTrace(t *testing.T) {
	gp, _ := Preset("WAN-1")
	gp.Count = 1000
	a := Collect(gp.Meta, NewGenerator(gp))
	gp.Seed++
	b := Collect(gp.Meta, NewGenerator(gp))
	same := true
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGeneratorCount(t *testing.T) {
	for _, n := range []int{0, 1, 17, 1000} {
		gp, _ := Preset("WAN-2")
		gp.Count = n
		tr := Collect(gp.Meta, NewGenerator(gp))
		if tr.Len() != n {
			t.Fatalf("Count=%d produced %d records", n, tr.Len())
		}
	}
}

func TestGeneratorFIFOAndValidity(t *testing.T) {
	for _, name := range PresetNames() {
		tr := genTrace(t, name, 20000)
		var prevRecv clock.Time = -1
		for i, r := range tr.Records {
			if r.Lost {
				continue
			}
			if r.RecvTime <= prevRecv {
				t.Fatalf("%s: record %d delivered out of order", name, i)
			}
			if r.RecvTime < r.SendTime {
				t.Fatalf("%s: record %d received before sent", name, i)
			}
			prevRecv = r.RecvTime
		}
	}
}

func TestGeneratorMatchesTableII(t *testing.T) {
	// Statistical reproduction of Table II: generated traces must land
	// near the paper's reported numbers. Tolerances are loose enough for
	// 100k-heartbeat samples yet tight enough to catch calibration bugs.
	cases := []struct {
		name              string
		lossRate          float64 // paper value
		sendMeanMS, rttMS float64
	}{
		{"WAN-1", 0.00, 12.825, 193.909},
		{"WAN-2", 0.05, 12.176, 194.959},
		{"WAN-3", 0.02, 12.21, 189.44},
		{"WAN-4", 0.00, 12.337, 172.863},
		{"WAN-5", 0.04, 12.367, 362.423},
		{"WAN-6", 0.00, 12.33, 78.52},
	}
	for _, c := range cases {
		gp, _ := Preset(c.name)
		gp.Count = 100_000
		st := Analyze(c.name, NewGenerator(gp))
		if math.Abs(st.LossRate-c.lossRate) > 0.01+0.3*c.lossRate {
			t.Errorf("%s: loss = %.4f, paper %.4f", c.name, st.LossRate, c.lossRate)
		}
		if math.Abs(st.SendMeanMS-c.sendMeanMS) > 0.15*c.sendMeanMS {
			t.Errorf("%s: send mean = %.3f ms, paper %.3f ms", c.name, st.SendMeanMS, c.sendMeanMS)
		}
		if math.Abs(st.RTTMeanMS-c.rttMS) > 0.15*c.rttMS {
			t.Errorf("%s: RTT = %.3f ms, paper %.3f ms", c.name, st.RTTMeanMS, c.rttMS)
		}
	}
}

func TestGeneratorJPCHCharacteristics(t *testing.T) {
	gp, _ := Preset("WAN-JPCH")
	gp.Count = 150_000
	st := Analyze("WAN-JPCH", NewGenerator(gp))
	if math.Abs(st.SendMeanMS-103.501) > 2 {
		t.Errorf("send mean = %.3f, want ≈103.5", st.SendMeanMS)
	}
	if st.LossRate < 0.001 || st.LossRate > 0.012 {
		t.Errorf("loss = %.4f, want ≈0.004", st.LossRate)
	}
	if st.LossBursts == 0 {
		t.Error("expected bursty losses")
	}
	if st.MeanBurstLen < 2 {
		t.Errorf("mean burst = %.1f, want bursty (>2)", st.MeanBurstLen)
	}
	if math.Abs(st.RTTMeanMS-283.338) > 30 {
		t.Errorf("RTT = %.3f, want ≈283", st.RTTMeanMS)
	}
	if st.RTTMinMS < 250 {
		t.Errorf("RTT min = %.3f, want ≥ ~270 (base delay floor)", st.RTTMinMS)
	}
}

func TestGeneratorBurstiness(t *testing.T) {
	// With MeanBurst ≫ 1 the mean observed burst length must exceed the
	// Bernoulli expectation (≈ 1/(1−p)).
	gp, _ := Preset("WAN-2") // 5% loss, mean burst 6
	gp.Count = 200_000
	st := Analyze("WAN-2", NewGenerator(gp))
	if st.MeanBurstLen < 2 {
		t.Fatalf("mean burst = %.2f, want > 2 for Gilbert–Elliott", st.MeanBurstLen)
	}
}

func TestGeneratorOutage(t *testing.T) {
	gp := GenParams{
		Meta:         Meta{Name: "outage"},
		Count:        10_000,
		Seed:         7,
		IntervalMean: 10 * clock.Millisecond,
		DelayBase:    clock.Millisecond,
		OutageProb:   0.001,
		OutageMaxLen: 200,
	}
	st := Analyze("outage", NewGenerator(gp))
	if st.LossBursts == 0 {
		t.Fatal("outage injection produced no loss bursts")
	}
	if st.MaxBurstLen < 5 {
		t.Fatalf("max burst = %d, expected long outages", st.MaxBurstLen)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := genTrace(t, "WAN-1", 100)
	cases := map[string]func(*Trace){
		"dup seq":       func(tr *Trace) { tr.Records[5].Seq = tr.Records[4].Seq },
		"send backward": func(tr *Trace) { tr.Records[5].SendTime = tr.Records[4].SendTime - 10 },
		"recv < send":   func(tr *Trace) { tr.Records[5].RecvTime = tr.Records[5].SendTime - 1; tr.Records[5].Lost = false },
	}
	for name, corrupt := range cases {
		tr := &Trace{Meta: good.Meta, Records: append([]Record(nil), good.Records...)}
		corrupt(tr)
		if tr.Validate() == nil {
			t.Errorf("%s: Validate accepted corrupted trace", name)
		}
	}
}

func TestLimitStream(t *testing.T) {
	tr := genTrace(t, "WAN-1", 100)
	lim := &Limit{S: tr.Stream(), N: 30}
	n := 0
	for {
		if _, ok := lim.Next(); !ok {
			break
		}
		n++
	}
	if n != 30 {
		t.Fatalf("Limit yielded %d, want 30", n)
	}
	// Limit longer than stream just drains it.
	lim = &Limit{S: tr.Stream(), N: 500}
	n = 0
	for {
		if _, ok := lim.Next(); !ok {
			break
		}
		n++
	}
	if n != 100 {
		t.Fatalf("Limit yielded %d, want 100", n)
	}
}

func TestCursorReset(t *testing.T) {
	tr := genTrace(t, "WAN-1", 10)
	c := NewCursor(tr)
	first, _ := c.Next()
	for {
		if _, ok := c.Next(); !ok {
			break
		}
	}
	c.Reset()
	again, ok := c.Next()
	if !ok || again != first {
		t.Fatal("Reset did not rewind")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := genTrace(t, "WAN-JPCH", 5000)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != tr.Meta {
		t.Fatalf("meta mismatch: %+v vs %+v", got.Meta, tr.Meta)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatal("record count mismatch")
	}
	for i := range tr.Records {
		a, b := tr.Records[i], got.Records[i]
		if a.Seq != b.Seq || a.SendTime != b.SendTime || a.Lost != b.Lost {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, a, b)
		}
		if !a.Lost && a.RecvTime != b.RecvTime {
			t.Fatalf("record %d recv mismatch", i)
		}
	}
}

func TestBinaryCompactness(t *testing.T) {
	tr := genTrace(t, "WAN-1", 10000)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()) / float64(tr.Len())
	if perRecord > 12 {
		t.Fatalf("binary encoding uses %.1f bytes/record, want ≤ 12", perRecord)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(bytes.NewReader([]byte{'H', 'B'})); err == nil {
		t.Fatal("truncated magic accepted")
	}
	// Valid magic, bad version.
	var buf bytes.Buffer
	buf.Write(traceMagic[:])
	buf.WriteByte(99)
	if _, err := Read(&buf); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestBinaryTruncatedBody(t *testing.T) {
	tr := genTrace(t, "WAN-1", 100)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestWriteStreamRoundTrip(t *testing.T) {
	gp, _ := Preset("WAN-2")
	gp.Count = 3000
	var buf bytes.Buffer
	n, err := WriteStream(&buf, gp.Meta, NewGenerator(gp))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3000 {
		t.Fatalf("wrote %d records", n)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != gp.Meta || len(got.Records) != 3000 {
		t.Fatalf("stream round trip: meta=%+v len=%d", got.Meta, len(got.Records))
	}
	// Byte-identical records vs the materialized path.
	want := Collect(gp.Meta, NewGenerator(gp))
	for i := range want.Records {
		if got.Records[i] != want.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestWriteStreamEmpty(t *testing.T) {
	var buf bytes.Buffer
	n, err := WriteStream(&buf, Meta{Name: "empty"}, NewCursor(&Trace{}))
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	got, err := Read(&buf)
	if err != nil || len(got.Records) != 0 || got.Meta.Name != "empty" {
		t.Fatalf("empty stream round trip failed: %v", err)
	}
}

func TestWriteStreamTruncatedRejected(t *testing.T) {
	gp, _ := Preset("WAN-1")
	gp.Count = 100
	var buf bytes.Buffer
	if _, err := WriteStream(&buf, gp.Meta, NewGenerator(gp)); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3] // drop the end marker + tail
	if _, err := Read(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := genTrace(t, "WAN-3", 500)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != tr.Meta {
		t.Fatalf("meta mismatch: %+v vs %+v", got.Meta, tr.Meta)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatal("record count mismatch")
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] && !(tr.Records[i].Lost && got.Records[i].Lost &&
			got.Records[i].Seq == tr.Records[i].Seq && got.Records[i].SendTime == tr.Records[i].SendTime) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(bytes.NewReader([]byte("a,b\n1,2\n"))); err == nil {
		t.Fatal("garbage CSV accepted")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	// Property: any structurally valid record sequence survives the
	// binary codec bit-exactly.
	f := func(deltas []uint16, lostBits []bool) bool {
		tr := &Trace{Meta: Meta{Name: "prop"}}
		var send clock.Time
		for i, d := range deltas {
			send += clock.Time(d) + 1
			rec := Record{Seq: uint64(i), SendTime: send}
			if i < len(lostBits) && lostBits[i] {
				rec.Lost = true
			} else {
				rec.RecvTime = send + clock.Time(d%97)
			}
			tr.Records = append(tr.Records, rec)
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got.Records) != len(tr.Records) {
			return false
		}
		for i := range tr.Records {
			if got.Records[i] != tr.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeEmptyAndTiny(t *testing.T) {
	st := Analyze("empty", NewCursor(&Trace{}))
	if st.Total != 0 || st.LossRate != 0 {
		t.Fatal("empty trace stats nonzero")
	}
	one := &Trace{Records: []Record{{Seq: 0, SendTime: 0, RecvTime: 10}}}
	st = Analyze("one", NewCursor(one))
	if st.Total != 1 || st.Received != 1 {
		t.Fatal("single-record stats wrong")
	}
}

func TestAnalyzeTrailingBurstCounted(t *testing.T) {
	tr := &Trace{Records: []Record{
		{Seq: 0, SendTime: 0, RecvTime: 5},
		{Seq: 1, SendTime: 10, Lost: true},
		{Seq: 2, SendTime: 20, Lost: true},
	}}
	st := Analyze("tail", NewCursor(tr))
	if st.LossBursts != 1 || st.MaxBurstLen != 2 {
		t.Fatalf("trailing burst not counted: %+v", st)
	}
}

func TestTableRowFormatting(t *testing.T) {
	st := Stats{Name: "WAN-1", Total: 100, LossRate: 0.05, SendMeanMS: 12.8}
	row := st.TableRow()
	if len(row) == 0 || len(TableHeader()) == 0 {
		t.Fatal("empty table output")
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	gp, _ := Preset("WAN-1")
	gp.Count = b.N
	g := NewGenerator(gp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
