package trace

import (
	"math/rand"

	"repro/internal/clock"
	"repro/internal/stats"
)

// GenParams parameterizes the synthetic heartbeat trace generator. The
// generator substitutes for the paper's real WAN trace files (which are
// no longer retrievable): it produces (seq, send, recv, lost) tuples whose
// first- and second-order statistics match every number the paper reports
// in Table II — heartbeat count, loss rate, send/receive interval mean and
// standard deviation, and round-trip time — plus the burst-loss structure
// described for the JP↔CH run.
type GenParams struct {
	Meta  Meta
	Count int   // number of heartbeats to send
	Seed  int64 // PRNG seed; same seed ⇒ identical trace

	// Send process: inter-send intervals are Gamma-distributed with the
	// given mean and standard deviation (shape (m/s)², scale s²/m), which
	// covers both metronome-like senders (JP↔CH: σ=0.189 ms) and
	// OS-jittered ones (WAN-1: σ=13.069 ms on a 12.8 ms mean) with one
	// model. Intervals are floored at IntervalMin.
	IntervalMean clock.Duration
	IntervalStd  clock.Duration
	IntervalMin  clock.Duration
	// Rare scheduling spikes: with probability SpikeProb an extra delay
	// uniform in (0, SpikeMax] is added to the interval (the JP↔CH trace
	// shows a 234 ms max on a 103.5 ms mean).
	SpikeProb float64
	SpikeMax  clock.Duration

	// One-way delay process: DelayBase plus Gamma jitter with the given
	// mean/std, plus (with probability DelayTailProb) an exponential
	// heavy-tail excursion with mean DelayTailScale — WAN RTT maxima sit
	// far above the mean (717 ms vs 283 ms for JP↔CH).
	DelayBase       clock.Duration
	DelayJitterMean clock.Duration
	DelayJitterStd  clock.Duration
	DelayTailProb   float64
	DelayTailScale  clock.Duration

	// Loss process: Gilbert–Elliott. LossRate is the long-run fraction of
	// heartbeats lost; MeanBurst is the mean length of a loss burst in
	// heartbeats (1 ⇒ memoryless/Bernoulli). Additionally, with per-
	// heartbeat probability OutageProb an outage of uniform length in
	// [1, OutageMaxLen] begins, modelling the rare long partitions the
	// JP↔CH trace exhibits (one 1093-heartbeat burst ≈ 2 minutes).
	LossRate     float64
	MeanBurst    float64
	OutageProb   float64
	OutageMaxLen int
}

// Generator produces a synthetic heartbeat stream. It implements Stream.
type Generator struct {
	p   GenParams
	rng *rand.Rand

	seq        uint64
	sendTime   clock.Time
	lastRecv   clock.Time
	ge         *stats.GilbertElliott
	outageLeft int
}

// NewGenerator returns a deterministic generator for the given parameters.
func NewGenerator(p GenParams) *Generator {
	return &Generator{
		p:   p,
		rng: rand.New(rand.NewSource(p.Seed)),
		ge:  stats.NewGilbertElliott(p.LossRate, p.MeanBurst),
	}
}

// Next implements Stream.
func (g *Generator) Next() (Record, bool) {
	if int(g.seq) >= g.p.Count {
		return Record{}, false
	}
	rec := Record{Seq: g.seq, SendTime: g.sendTime}

	// Loss decision first (it does not depend on delay).
	rec.Lost = g.nextLost()
	if !rec.Lost {
		d := g.nextDelay()
		recv := g.sendTime.Add(d)
		// The paper's channel model (§II-B) has loss but no reordering;
		// enforce FIFO delivery like a real single-path UDP flow almost
		// always provides.
		if recv <= g.lastRecv {
			recv = g.lastRecv + 1
		}
		g.lastRecv = recv
		rec.RecvTime = recv
	}

	g.seq++
	g.sendTime = g.sendTime.Add(g.nextInterval())
	return rec, true
}

func (g *Generator) nextInterval() clock.Duration {
	m := float64(g.p.IntervalMean)
	s := float64(g.p.IntervalStd)
	iv := clock.Duration(stats.SampleGamma(g.rng, m, s))
	if g.p.SpikeProb > 0 && g.rng.Float64() < g.p.SpikeProb {
		iv += clock.Duration(g.rng.Float64() * float64(g.p.SpikeMax))
	}
	if iv < g.p.IntervalMin {
		iv = g.p.IntervalMin
	}
	return iv
}

func (g *Generator) nextDelay() clock.Duration {
	d := float64(g.p.DelayBase)
	if g.p.DelayJitterMean > 0 {
		d += stats.SampleGamma(g.rng, float64(g.p.DelayJitterMean), float64(g.p.DelayJitterStd))
	}
	if g.p.DelayTailProb > 0 && g.rng.Float64() < g.p.DelayTailProb {
		d += g.rng.ExpFloat64() * float64(g.p.DelayTailScale)
	}
	if d < 0 {
		d = 0
	}
	return clock.Duration(d)
}

func (g *Generator) nextLost() bool {
	// Ongoing forced outage dominates everything.
	if g.outageLeft > 0 {
		g.outageLeft--
		return true
	}
	if g.p.OutageProb > 0 && g.rng.Float64() < g.p.OutageProb {
		g.outageLeft = 1 + g.rng.Intn(g.p.OutageMaxLen)
		g.outageLeft--
		return true
	}
	return g.ge.Drop(g.rng)
}
