// Package trace defines the heartbeat trace model the whole evaluation
// pipeline runs on: a Record per heartbeat (sequence number, send time,
// receive time or loss flag), an in-memory Trace, a streaming interface
// so multi-million-heartbeat runs need not be materialized, synthetic
// generators that substitute for the paper's real WAN trace files (see
// DESIGN.md §2), a statistics analyzer that regenerates Table II, and
// binary/CSV codecs.
//
// The paper's own evaluation is replay-based: "the logged arrival time is
// used to replay the execution for each FD scheme ... all the FDs are
// compared in the same experimental condition" (§V). This package is that
// common experimental condition.
package trace

import (
	"errors"
	"fmt"

	"repro/internal/clock"
)

// Record is a single heartbeat observation as logged by the monitor.
// SendTime is the sender's timestamp carried inside the heartbeat;
// RecvTime is the receiver's local arrival time. Per the paper (and Chen
// §V), clock drift between the two is assumed negligible over the run.
type Record struct {
	Seq      uint64     // sequence number, starting at 0, no gaps on the send side
	SendTime clock.Time // sender clock
	RecvTime clock.Time // receiver clock; meaningless when Lost
	Lost     bool       // heartbeat never arrived
}

// Delay returns the one-way transmission delay d_i of the heartbeat.
// It is only meaningful when the record is not Lost.
func (r Record) Delay() clock.Duration { return r.RecvTime.Sub(r.SendTime) }

// Meta describes a trace: where it came from and its target parameters.
// Table I of the paper is a listing of exactly this metadata for the six
// PlanetLab runs.
type Meta struct {
	Name         string
	Sender       string // location, e.g. "USA"
	SenderHost   string // hostname, e.g. "planet1.scs.stanford.edu"
	Receiver     string
	ReceiverHost string
	Interval     clock.Duration // target heartbeat interval Δt
	RTT          clock.Duration // average round-trip time from the ping probe
}

// Trace is a fully materialized heartbeat trace.
type Trace struct {
	Meta    Meta
	Records []Record
}

// Stream yields trace records in sequence order. Generators implement it
// directly so full-paper-scale runs (≈7M heartbeats) can be replayed
// without holding the trace in memory.
type Stream interface {
	// Next returns the next record; ok is false at end of stream.
	Next() (rec Record, ok bool)
}

// ErrShortTrace is returned by consumers that need more records than the
// stream holds (e.g. filling a detection window before measuring).
var ErrShortTrace = errors.New("trace: not enough records")

// Cursor adapts a materialized Trace to the Stream interface.
type Cursor struct {
	t   *Trace
	pos int
}

// NewCursor returns a Stream over the trace.
func NewCursor(t *Trace) *Cursor { return &Cursor{t: t} }

// Next implements Stream.
func (c *Cursor) Next() (Record, bool) {
	if c.pos >= len(c.t.Records) {
		return Record{}, false
	}
	r := c.t.Records[c.pos]
	c.pos++
	return r, true
}

// Reset rewinds the cursor to the beginning.
func (c *Cursor) Reset() { c.pos = 0 }

// Stream returns a fresh Stream over the trace.
func (t *Trace) Stream() Stream { return NewCursor(t) }

// Len returns the number of records (sent heartbeats).
func (t *Trace) Len() int { return len(t.Records) }

// Collect materializes a stream into a Trace with the given metadata.
func Collect(meta Meta, s Stream) *Trace {
	t := &Trace{Meta: meta}
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		t.Records = append(t.Records, r)
	}
	return t
}

// Validate checks the structural invariants every well-formed trace must
// satisfy: sequence numbers strictly increasing, send times nondecreasing,
// and every received heartbeat arriving no earlier than it was sent.
func (t *Trace) Validate() error {
	var prev Record
	for i, r := range t.Records {
		if i > 0 {
			if r.Seq <= prev.Seq {
				return fmt.Errorf("trace: record %d: seq %d not increasing (prev %d)", i, r.Seq, prev.Seq)
			}
			if r.SendTime < prev.SendTime {
				return fmt.Errorf("trace: record %d: send time moved backwards", i)
			}
		}
		if !r.Lost && r.RecvTime < r.SendTime {
			return fmt.Errorf("trace: record %d: received before sent", i)
		}
		prev = r
	}
	return nil
}

// Limit wraps a stream, truncating it after n records. It is how the
// bench harness scales paper-sized workloads down for -short runs.
type Limit struct {
	S Stream
	N int

	emitted int
}

// Next implements Stream.
func (l *Limit) Next() (Record, bool) {
	if l.emitted >= l.N {
		return Record{}, false
	}
	r, ok := l.S.Next()
	if !ok {
		return Record{}, false
	}
	l.emitted++
	return r, true
}
