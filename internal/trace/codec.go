package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/clock"
)

// Binary trace format
//
//	magic   [4]byte "HBTR"
//	version uint16 (=1)
//	meta    length-prefixed UTF-8 fields: name, sender, senderHost,
//	        receiver, receiverHost
//	interval, rtt int64 (ns)
//	count  uint64
//	records: delta-encoded varints — seq is implicit (dense, ascending);
//	        per record: flags byte (bit0 = lost), uvarint send-time delta,
//	        and for received records a varint recv−send delay.
//
// Delta+varint encoding keeps a 7M-heartbeat trace around 4 bytes per
// record instead of 25.

var (
	traceMagic = [4]byte{'H', 'B', 'T', 'R'}

	// ErrBadFormat reports a corrupted or foreign trace file.
	ErrBadFormat = errors.New("trace: bad file format")
)

const (
	traceVersion = 1
	// streamCount marks a stream-written file whose record count was
	// unknown up front; records run until the endMarker flags byte.
	streamCount = ^uint64(0)
	endMarker   = 0xFF
)

// Write encodes the trace to w in the binary format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	writeU := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	writeS := func(s string) error {
		if err := writeU(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := writeU(traceVersion); err != nil {
		return err
	}
	for _, s := range []string{t.Meta.Name, t.Meta.Sender, t.Meta.SenderHost, t.Meta.Receiver, t.Meta.ReceiverHost} {
		if err := writeS(s); err != nil {
			return err
		}
	}
	if err := writeU(uint64(t.Meta.Interval)); err != nil {
		return err
	}
	if err := writeU(uint64(t.Meta.RTT)); err != nil {
		return err
	}
	if err := writeU(uint64(len(t.Records))); err != nil {
		return err
	}
	var prevSend clock.Time
	var prevSeq uint64
	for i, r := range t.Records {
		if i > 0 && r.Seq <= prevSeq {
			return fmt.Errorf("trace: non-increasing seq at record %d", i)
		}
		var flags byte
		if r.Lost {
			flags |= 1
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		if err := writeU(r.Seq - prevSeq); err != nil { // first record: seq itself
			return err
		}
		if err := writeU(uint64(r.SendTime - prevSend)); err != nil {
			return err
		}
		if !r.Lost {
			if err := writeU(uint64(r.RecvTime - r.SendTime)); err != nil {
				return err
			}
		}
		prevSend, prevSeq = r.SendTime, r.Seq
	}
	return bw.Flush()
}

// WriteStream encodes a heartbeat stream to w without materializing it:
// the header carries a sentinel count and the record list is terminated
// by an end marker. Read understands both layouts. It returns the number
// of records written. Full-paper-scale trace files (≈7M heartbeats) are
// produced this way in constant memory.
func WriteStream(w io.Writer, meta Meta, s Stream) (int, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return 0, err
	}
	var scratch [binary.MaxVarintLen64]byte
	writeU := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	writeS := func(str string) error {
		if err := writeU(uint64(len(str))); err != nil {
			return err
		}
		_, err := bw.WriteString(str)
		return err
	}
	if err := writeU(traceVersion); err != nil {
		return 0, err
	}
	for _, f := range []string{meta.Name, meta.Sender, meta.SenderHost, meta.Receiver, meta.ReceiverHost} {
		if err := writeS(f); err != nil {
			return 0, err
		}
	}
	if err := writeU(uint64(meta.Interval)); err != nil {
		return 0, err
	}
	if err := writeU(uint64(meta.RTT)); err != nil {
		return 0, err
	}
	if err := writeU(streamCount); err != nil {
		return 0, err
	}
	var prevSend clock.Time
	var prevSeq uint64
	count := 0
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		if count > 0 && r.Seq <= prevSeq {
			return count, fmt.Errorf("trace: non-increasing seq at record %d", count)
		}
		var flags byte
		if r.Lost {
			flags |= 1
		}
		if err := bw.WriteByte(flags); err != nil {
			return count, err
		}
		if err := writeU(r.Seq - prevSeq); err != nil {
			return count, err
		}
		if err := writeU(uint64(r.SendTime - prevSend)); err != nil {
			return count, err
		}
		if !r.Lost {
			if err := writeU(uint64(r.RecvTime - r.SendTime)); err != nil {
				return count, err
			}
		}
		prevSend, prevSeq = r.SendTime, r.Seq
		count++
	}
	if err := bw.WriteByte(endMarker); err != nil {
		return count, err
	}
	return count, bw.Flush()
}

// Read decodes a binary trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != traceMagic {
		return nil, ErrBadFormat
	}
	readU := func() (uint64, error) { return binary.ReadUvarint(br) }
	readS := func() (string, error) {
		n, err := readU()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", ErrBadFormat
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	ver, err := readU()
	if err != nil {
		return nil, err
	}
	if ver != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, ver)
	}
	t := &Trace{}
	fields := []*string{&t.Meta.Name, &t.Meta.Sender, &t.Meta.SenderHost, &t.Meta.Receiver, &t.Meta.ReceiverHost}
	for _, f := range fields {
		if *f, err = readS(); err != nil {
			return nil, err
		}
	}
	iv, err := readU()
	if err != nil {
		return nil, err
	}
	t.Meta.Interval = clock.Duration(iv)
	rtt, err := readU()
	if err != nil {
		return nil, err
	}
	t.Meta.RTT = clock.Duration(rtt)
	count, err := readU()
	if err != nil {
		return nil, err
	}
	streaming := count == streamCount
	if !streaming && count > 1<<31 {
		return nil, fmt.Errorf("%w: implausible record count %d", ErrBadFormat, count)
	}
	if !streaming {
		t.Records = make([]Record, 0, count)
	}
	var prevSend clock.Time
	var prevSeq uint64
	for i := uint64(0); streaming || i < count; i++ {
		flags, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if streaming && flags == endMarker {
			break
		}
		dSeq, err := readU()
		if err != nil {
			return nil, err
		}
		dSend, err := readU()
		if err != nil {
			return nil, err
		}
		rec := Record{Seq: prevSeq + dSeq, SendTime: prevSend + clock.Time(dSend), Lost: flags&1 != 0}
		if !rec.Lost {
			delay, err := readU()
			if err != nil {
				return nil, err
			}
			rec.RecvTime = rec.SendTime + clock.Time(delay)
		}
		t.Records = append(t.Records, rec)
		prevSend, prevSeq = rec.SendTime, rec.Seq
	}
	return t, nil
}

// WriteCSV encodes the trace as CSV with a header row:
// seq,send_ns,recv_ns,lost — the interchange format for plotting outside
// this repository. Metadata is emitted as leading comment-style rows
// ("#key,value") which ReadCSV understands.
func WriteCSV(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	metaRows := [][]string{
		{"#name", t.Meta.Name},
		{"#sender", t.Meta.Sender, t.Meta.SenderHost},
		{"#receiver", t.Meta.Receiver, t.Meta.ReceiverHost},
		{"#interval_ns", strconv.FormatInt(int64(t.Meta.Interval), 10)},
		{"#rtt_ns", strconv.FormatInt(int64(t.Meta.RTT), 10)},
		{"seq", "send_ns", "recv_ns", "lost"},
	}
	for _, row := range metaRows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	for _, r := range t.Records {
		lost := "0"
		recv := int64(r.RecvTime)
		if r.Lost {
			lost = "1"
			recv = 0
		}
		if err := cw.Write([]string{
			strconv.FormatUint(r.Seq, 10),
			strconv.FormatInt(int64(r.SendTime), 10),
			strconv.FormatInt(recv, 10),
			lost,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	t := &Trace{}
	headerSeen := false
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(row) == 0 {
			continue
		}
		if len(row[0]) > 0 && row[0][0] == '#' {
			switch row[0] {
			case "#name":
				if len(row) > 1 {
					t.Meta.Name = row[1]
				}
			case "#sender":
				if len(row) > 2 {
					t.Meta.Sender, t.Meta.SenderHost = row[1], row[2]
				}
			case "#receiver":
				if len(row) > 2 {
					t.Meta.Receiver, t.Meta.ReceiverHost = row[1], row[2]
				}
			case "#interval_ns":
				if len(row) > 1 {
					v, err := strconv.ParseInt(row[1], 10, 64)
					if err != nil {
						return nil, fmt.Errorf("%w: interval_ns: %v", ErrBadFormat, err)
					}
					t.Meta.Interval = clock.Duration(v)
				}
			case "#rtt_ns":
				if len(row) > 1 {
					v, err := strconv.ParseInt(row[1], 10, 64)
					if err != nil {
						return nil, fmt.Errorf("%w: rtt_ns: %v", ErrBadFormat, err)
					}
					t.Meta.RTT = clock.Duration(v)
				}
			}
			continue
		}
		if row[0] == "seq" {
			headerSeen = true
			continue
		}
		if len(row) != 4 {
			return nil, fmt.Errorf("%w: expected 4 fields, got %d", ErrBadFormat, len(row))
		}
		seq, err1 := strconv.ParseUint(row[0], 10, 64)
		send, err2 := strconv.ParseInt(row[1], 10, 64)
		recv, err3 := strconv.ParseInt(row[2], 10, 64)
		lost := row[3] == "1"
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%w: numeric parse failure in row %v", ErrBadFormat, row)
		}
		rec := Record{Seq: seq, SendTime: clock.Time(send), Lost: lost}
		if !lost {
			rec.RecvTime = clock.Time(recv)
		}
		t.Records = append(t.Records, rec)
	}
	if !headerSeen && len(t.Records) == 0 {
		return nil, ErrBadFormat
	}
	return t, nil
}
