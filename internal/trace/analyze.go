package trace

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/stats"
)

// Stats summarizes a heartbeat trace with exactly the columns of the
// paper's Table II plus the burst-loss detail reported in §V-A for the
// JP↔CH run. All durations are reported as float64 milliseconds to match
// the paper's units.
type Stats struct {
	Name string

	Total    int64   // heartbeats sent
	Received int64   // heartbeats received
	LossRate float64 // fraction lost

	SendMeanMS float64 // mean inter-send interval
	SendStdMS  float64
	SendMinMS  float64
	SendMaxMS  float64

	RecvMeanMS float64 // mean inter-arrival interval
	RecvStdMS  float64

	DelayMeanMS float64 // mean one-way delay
	DelayStdMS  float64
	DelayMinMS  float64
	DelayMaxMS  float64

	RTTMeanMS float64 // 2× one-way mean, the ping-probe proxy
	RTTStdMS  float64
	RTTMinMS  float64
	RTTMaxMS  float64

	LossBursts   int64 // number of maximal runs of consecutive losses
	MaxBurstLen  int64
	MeanBurstLen float64

	DriftSlope float64 // receive-interval trend per heartbeat (clock drift proxy)
}

// Analyze streams a trace and computes its Stats. It mirrors the
// measurements the authors report: send intervals from the sender
// timestamps, arrival intervals from the receiver timestamps of
// *received* heartbeats only, one-way delay per received heartbeat, and
// RTT as twice the one-way delay (the paper's ping probe measured RTT of
// the same path; doubling the one-way delay is the equivalent proxy for a
// symmetric synthetic path).
func Analyze(name string, s Stream) Stats {
	var (
		sendIv, recvIv, delay, rtt stats.Welford
		prevSend                   clock.Time
		prevRecv                   clock.Time
		havePrevSend, havePrevRecv bool

		total, received int64
		bursts          int64
		burstLen        int64
		maxBurst        int64
		totalBurstLen   int64

		// drift fit: receive interval vs index, sampled every k records
		xs, ys []float64
	)

	idx := 0
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		total++
		if havePrevSend {
			sendIv.Add(float64(r.SendTime.Sub(prevSend)) / float64(ms))
		}
		prevSend, havePrevSend = r.SendTime, true

		if r.Lost {
			burstLen++
			continue
		}
		if burstLen > 0 {
			bursts++
			totalBurstLen += burstLen
			if burstLen > maxBurst {
				maxBurst = burstLen
			}
			burstLen = 0
		}
		received++
		d := float64(r.Delay()) / float64(ms)
		delay.Add(d)
		rtt.Add(2 * d)
		if havePrevRecv {
			iv := float64(r.RecvTime.Sub(prevRecv)) / float64(ms)
			recvIv.Add(iv)
			if idx%64 == 0 {
				xs = append(xs, float64(idx))
				ys = append(ys, iv)
			}
		}
		prevRecv, havePrevRecv = r.RecvTime, true
		idx++
	}
	if burstLen > 0 {
		bursts++
		totalBurstLen += burstLen
		if burstLen > maxBurst {
			maxBurst = burstLen
		}
	}

	st := Stats{
		Name:        name,
		Total:       total,
		Received:    received,
		SendMeanMS:  sendIv.Mean(),
		SendStdMS:   sendIv.StdDev(),
		SendMinMS:   sendIv.Min(),
		SendMaxMS:   sendIv.Max(),
		RecvMeanMS:  recvIv.Mean(),
		RecvStdMS:   recvIv.StdDev(),
		DelayMeanMS: delay.Mean(),
		DelayStdMS:  delay.StdDev(),
		DelayMinMS:  delay.Min(),
		DelayMaxMS:  delay.Max(),
		RTTMeanMS:   rtt.Mean(),
		RTTStdMS:    rtt.StdDev(),
		RTTMinMS:    rtt.Min(),
		RTTMaxMS:    rtt.Max(),
		LossBursts:  bursts,
		MaxBurstLen: maxBurst,
	}
	if total > 0 {
		st.LossRate = float64(total-received) / float64(total)
	}
	if bursts > 0 {
		st.MeanBurstLen = float64(totalBurstLen) / float64(bursts)
	}
	if fit, err := stats.FitLine(xs, ys); err == nil {
		st.DriftSlope = fit.Slope
	}
	return st
}

// TableRow renders the Stats in the layout of the paper's Table II:
// total, loss rate, send avg/stddev, receive avg/stddev, RTT avg.
func (st Stats) TableRow() string {
	return fmt.Sprintf("%-9s %10d  %5.2f%%  %8.3f ms %8.3f ms  %8.3f ms %8.3f ms  %8.3f ms",
		st.Name, st.Total, st.LossRate*100,
		st.SendMeanMS, st.SendStdMS, st.RecvMeanMS, st.RecvStdMS, st.RTTMeanMS)
}

// TableHeader returns the column header matching TableRow.
func TableHeader() string {
	return fmt.Sprintf("%-9s %10s  %6s  %11s %11s  %11s %11s  %11s",
		"case", "total", "loss", "send(avg)", "send(std)", "recv(avg)", "recv(std)", "RTT(avg)")
}
