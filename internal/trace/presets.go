package trace

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/clock"
)

// The presets below encode the seven WAN environments of the paper's
// evaluation (§V): one intercontinental Japan↔Switzerland run (the φ-FD
// paper's trace, Fig. 6–7) and six PlanetLab pairs (Tables I–II,
// Fig. 9–10). Every target number is taken from Table II / §V-A; delay
// jitter is derived from the reported send/receive interval standard
// deviations (Var[recv interarrival] ≈ Var[send interarrival] +
// 2·Var[delay] for independent jitter).

const ms = clock.Millisecond

// PaperCounts maps environment name to the heartbeat count of the real
// experiment, so full-scale regeneration can match the paper exactly.
var PaperCounts = map[string]int{
	"WAN-JPCH": 5845713,
	"WAN-1":    6737054,
	"WAN-2":    7477304,
	"WAN-3":    7104446,
	"WAN-4":    7028178,
	"WAN-5":    7008170,
	"WAN-6":    7040560,
}

// DefaultCount is the scaled-down trace length used when the caller does
// not ask for full paper scale: large enough for windows of 1000 samples
// to wash out warm-up effects, small enough to replay in seconds.
const DefaultCount = 200_000

// Presets returns the generator parameters for every WAN environment,
// keyed by name. Count is set to DefaultCount; callers wanting the paper
// scale overwrite it from PaperCounts.
func Presets() map[string]GenParams {
	p := map[string]GenParams{
		// Japan (JAIST) ↔ Switzerland (EPFL), one week, Δt ≈ 103.5 ms,
		// loss 0.399% in 814 bursts (max 1093 heartbeats ≈ 2 min),
		// RTT avg 283.338 ms / min 270.201 / max 717.832.
		"WAN-JPCH": {
			Meta: Meta{
				Name: "WAN-JPCH", Sender: "Japan", SenderHost: "jaist.ac.jp",
				Receiver: "Switzerland", ReceiverHost: "epfl.ch",
				Interval: clock.Duration(103.501 * float64(ms)), RTT: clock.Duration(283.338 * float64(ms)),
			},
			IntervalMean:    clock.Duration(103.501 * float64(ms)),
			IntervalStd:     clock.Duration(0.189 * float64(ms)),
			IntervalMin:     clock.Duration(101.674 * float64(ms)),
			SpikeProb:       2e-5,
			SpikeMax:        130 * ms,
			DelayBase:       clock.Duration(135.1 * float64(ms)),
			DelayJitterMean: clock.Duration(6.6 * float64(ms)),
			DelayJitterStd:  clock.Duration(9 * float64(ms)),
			DelayTailProb:   0.004,
			DelayTailScale:  90 * ms,
			LossRate:        0.00399,
			MeanBurst:       28.5, // 23192 losses in 814 bursts
			OutageProb:      2e-7,
			OutageMaxLen:    1093,
		},
		// WAN-1: Stanford (USA) → NAIST (Japan). Send 12.825±13.069 ms,
		// recv 12.83±14.892 ms, loss 0%, RTT 193.909 ms.
		"WAN-1": planetLab("WAN-1",
			"USA", "planet1.scs.stanford.edu", "Japan", "planetlab-03.naist.ac.jp",
			12.825, 13.069, 14.892, 0, 1, 193.909),
		// WAN-2: Fraunhofer (Germany) → Stanford (USA). 5% loss.
		"WAN-2": planetLab("WAN-2",
			"Germany", "planetlab-2.fokus.fraunhofer.de", "USA", "planet1.scs.stanford.edu",
			12.176, 1.219, 19.547, 0.05, 6, 194.959),
		// WAN-3: NAIST (Japan) → Fraunhofer (Germany). 2% loss.
		"WAN-3": planetLab("WAN-3",
			"Japan", "planetlab-03.naist.ac.jp", "Germany", "planetlab-2.fokus.fraunhofer.de",
			12.21, 1.243, 4.768, 0.02, 4, 189.44),
		// WAN-4: CUHK (China) → Stanford (USA). 0% loss.
		"WAN-4": planetLab("WAN-4",
			"China", "planetlab2.ie.cuhk.edu.hk", "USA", "planet1.scs.stanford.edu",
			12.337, 9.953, 22.918, 0, 1, 172.863),
		// WAN-5: CUHK (China) → Fraunhofer (Germany). 4% loss.
		"WAN-5": planetLab("WAN-5",
			"China", "planetlab2.ie.cuhk.edu.hk", "Germany", "planetlab-2.fokus.fraunhofer.de",
			12.367, 15.599, 16.557, 0.04, 5, 362.423),
		// WAN-6: HKUST (China) → Keio SFC (Japan). 0% loss.
		"WAN-6": planetLab("WAN-6",
			"China", "plab1.cs.ust.hk", "Japan", "planetlab1.sfc.wide.ad.jp",
			12.33, 10.185, 17.56, 0, 1, 78.52),
	}
	for name, gp := range p {
		gp.Count = DefaultCount
		gp.Seed = seedFor(name)
		p[name] = gp
	}
	return p
}

// Preset returns one environment's parameters; it reports an error for an
// unknown name (valid names are listed by PresetNames).
func Preset(name string) (GenParams, error) {
	gp, ok := Presets()[name]
	if !ok {
		return GenParams{}, fmt.Errorf("trace: unknown preset %q (have %v)", name, PresetNames())
	}
	return gp, nil
}

// PresetNames returns the environment names in stable order: the JP↔CH
// run first (Fig. 6–7), then WAN-1..6 (Fig. 9–10, Tables I–II).
func PresetNames() []string {
	names := make([]string, 0, len(Presets()))
	for n := range Presets() {
		names = append(names, n)
	}
	sort.Strings(names) // WAN-1..WAN-6, WAN-JPCH
	// Move WAN-JPCH to the front to match paper presentation order.
	for i, n := range names {
		if n == "WAN-JPCH" {
			copy(names[1:i+1], names[:i])
			names[0] = n
			break
		}
	}
	return names
}

// planetLab builds a PlanetLab-style preset from the Table II numbers:
// send mean/std (ms), receive interarrival std (ms), loss rate, mean loss
// burst, RTT (ms). PlanetLab one-way delay is apportioned ~55% of RTT on
// the forward path with jitter solved from the interarrival variances.
func planetLab(name, sLoc, sHost, rLoc, rHost string,
	sendMeanMS, sendStdMS, recvStdMS, loss, meanBurst, rttMS float64) GenParams {

	// Var[recv ia] = Var[send ia] + 2·Var[delay]  ⇒  delayStd.
	dvar := (recvStdMS*recvStdMS - sendStdMS*sendStdMS) / 2
	if dvar < 0.01 {
		dvar = 0.01
	}
	delayStd := sqrtMS(dvar)
	delayJitterMean := delayStd * 1.2 // mild right skew, keeps base below RTT/2
	base := rttMS/2 - delayJitterMean
	if base < 1 {
		base = 1
	}
	return GenParams{
		Meta: Meta{
			Name: name, Sender: sLoc, SenderHost: sHost,
			Receiver: rLoc, ReceiverHost: rHost,
			Interval: clock.Duration(sendMeanMS * float64(ms)),
			RTT:      clock.Duration(rttMS * float64(ms)),
		},
		IntervalMean:    clock.Duration(sendMeanMS * float64(ms)),
		IntervalStd:     clock.Duration(sendStdMS * float64(ms)),
		IntervalMin:     clock.Duration(0.5 * float64(ms)),
		SpikeProb:       1e-4,
		SpikeMax:        100 * ms,
		DelayBase:       clock.Duration(base * float64(ms)),
		DelayJitterMean: clock.Duration(delayJitterMean * float64(ms)),
		DelayJitterStd:  clock.Duration(delayStd * float64(ms)),
		DelayTailProb:   0.002,
		DelayTailScale:  60 * ms,
		LossRate:        loss,
		MeanBurst:       meanBurst,
	}
}

func sqrtMS(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// seedFor derives a stable per-environment seed so every run of the
// harness replays byte-identical traces.
func seedFor(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h
}
