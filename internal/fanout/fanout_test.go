package fanout

import (
	"errors"
	"sort"
	"testing"
)

// matchAll is the test harness's view of a trie: collect every match.
func matchAll(t *Trie[int], name string) []int {
	out := t.MatchAppend(name, nil)
	sort.Ints(out)
	return out
}

func eq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTrieMatchSemantics nails the MQTT-style wildcard contract on a
// small hand-built trie.
func TestTrieMatchSemantics(t *testing.T) {
	tr := New[int]()
	filters := []string{
		"eu/zurich/web-1/nginx", // 0: exact
		"eu/zurich/web-1/+",     // 1: any service on one host
		"eu/+/+/nginx",          // 2: nginx anywhere in eu
		"eu/#",                  // 3: the whole region
		"#",                     // 4: everything
		"eu/zurich/#",           // 5: one cluster subtree
		"+/zurich/web-1/nginx",  // 6: one stream across regions
		"us/+/web-1/nginx",      // 7: other region — must not fire for eu
	}
	for i, f := range filters {
		if _, err := tr.Subscribe(f, i); err != nil {
			t.Fatalf("Subscribe(%q): %v", f, err)
		}
	}

	cases := []struct {
		name string
		want []int
	}{
		{"eu/zurich/web-1/nginx", []int{0, 1, 2, 3, 4, 5, 6}},
		{"eu/zurich/web-1/redis", []int{1, 3, 4, 5}},
		{"eu/zurich/web-2/nginx", []int{2, 3, 4, 5}},
		{"eu/paris/web-1/nginx", []int{2, 3, 4}},
		{"us/zurich/web-1/nginx", []int{4, 6, 7}},
		{"eu/zurich", []int{3, 4, 5}}, // '#' matches zero remaining levels
		{"eu", []int{3, 4}},
		{"ap/tokyo/web-1/nginx", []int{4}},
		{"eu/zurich/web-1/nginx/extra", []int{3, 4, 5}}, // deeper than the exact filters
	}
	for _, c := range cases {
		if got := matchAll(tr, c.name); !eq(got, c.want) {
			t.Errorf("match(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestTrieUnsubscribePrunes verifies detach removes delivery and that
// empty nodes are pruned so churn cannot leak trie memory.
func TestTrieUnsubscribePrunes(t *testing.T) {
	tr := New[int]()
	s1, _ := tr.Subscribe("a/b/c", 1)
	s2, _ := tr.Subscribe("a/b/+", 2)
	s3, _ := tr.Subscribe("a/#", 3)

	if st := tr.Stats(); st.Subscriptions != 3 {
		t.Fatalf("Subscriptions = %d, want 3", st.Subscriptions)
	}
	if got := matchAll(tr, "a/b/c"); !eq(got, []int{1, 2, 3}) {
		t.Fatalf("pre-detach match = %v", got)
	}

	tr.Unsubscribe(s1)
	tr.Unsubscribe(s1) // idempotent
	if got := matchAll(tr, "a/b/c"); !eq(got, []int{2, 3}) {
		t.Fatalf("post-detach match = %v", got)
	}

	tr.Unsubscribe(s2)
	tr.Unsubscribe(s3)
	st := tr.Stats()
	if st.Subscriptions != 0 {
		t.Fatalf("Subscriptions = %d, want 0", st.Subscriptions)
	}
	if st.Nodes != 0 {
		t.Fatalf("Nodes = %d after full detach, want 0 (prune leak)", st.Nodes)
	}
	if got := matchAll(tr, "a/b/c"); len(got) != 0 {
		t.Fatalf("empty trie matched %v", got)
	}
}

// TestTrieSharedPrefixPruneKeepsSiblings: pruning one branch must not
// disturb a live sibling sharing the prefix.
func TestTrieSharedPrefixPruneKeepsSiblings(t *testing.T) {
	tr := New[int]()
	s1, _ := tr.Subscribe("a/b/c", 1)
	_, _ = tr.Subscribe("a/b/d", 2)
	tr.Unsubscribe(s1)
	if got := matchAll(tr, "a/b/d"); !eq(got, []int{2}) {
		t.Fatalf("sibling lost after prune: %v", got)
	}
	if got := matchAll(tr, "a/b/c"); len(got) != 0 {
		t.Fatalf("pruned branch still matches: %v", got)
	}
}

func TestValidateName(t *testing.T) {
	good := []string{"a", "a/b", "region/cluster/host/service", "10.0.0.1:7946", "a-b_c.d"}
	for _, n := range good {
		if err := ValidateName(n); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", n, err)
		}
	}
	bad := []struct {
		name string
		err  error
	}{
		{"", ErrEmptyName},
		{"a//b", ErrEmptyName}, // the ISSUE's regression case
		{"/a", ErrEmptyName},
		{"a/", ErrEmptyName},
		{"a/b/", ErrEmptyName},
		{"a/+/b", ErrWildcardInName},
		{"a/#", ErrWildcardInName},
		{"a#b", ErrWildcardInName},
		{"svc+1", ErrWildcardInName},
	}
	for _, c := range bad {
		if err := ValidateName(c.name); !errors.Is(err, c.err) {
			t.Errorf("ValidateName(%q) = %v, want %v", c.name, err, c.err)
		}
	}
}

func TestValidateFilter(t *testing.T) {
	good := []string{"a", "a/b", "+", "#", "a/+", "a/#", "+/+/#", "a/+/c"}
	for _, f := range good {
		if err := ValidateFilter(f); err != nil {
			t.Errorf("ValidateFilter(%q) = %v, want nil", f, err)
		}
	}
	bad := []struct {
		filter string
		err    error
	}{
		{"", ErrEmptyName},
		{"a//b", ErrEmptyName},
		{"/a", ErrEmptyName},
		{"a/", ErrEmptyName},
		{"#/a", ErrBadWildcard},
		{"a/#/b", ErrBadWildcard},
		{"a+/b", ErrBadWildcard},
		{"a/b#", ErrBadWildcard},
	}
	for _, c := range bad {
		if err := ValidateFilter(c.filter); !errors.Is(err, c.err) {
			t.Errorf("ValidateFilter(%q) = %v, want %v", c.filter, err, c.err)
		}
	}
	// An invalid filter must not change the trie.
	tr := New[int]()
	if _, err := tr.Subscribe("a//b", 9); err == nil {
		t.Fatal("Subscribe accepted an invalid filter")
	}
	if st := tr.Stats(); st.Subscriptions != 0 || st.Nodes != 0 {
		t.Fatalf("invalid Subscribe mutated the trie: %+v", st)
	}
}

func TestMatchTopicStandalone(t *testing.T) {
	cases := []struct {
		filter, name string
		want         bool
	}{
		{"a/b", "a/b", true},
		{"a/+", "a/b", true},
		{"a/+", "a", false},
		{"a/#", "a", true},
		{"a/#", "a/b/c", true},
		{"#", "anything/at/all", true},
		{"+/b", "a/b", true},
		{"+", "a/b", false},
		{"a/b", "a/b/c", false},
		{"a/b/c", "a/b", false},
		{"a//b", "a/b", false}, // invalid filter never matches
		{"a/+", "a/+", false},  // invalid name never matches
	}
	for _, c := range cases {
		if got := MatchTopic(c.filter, c.name); got != c.want {
			t.Errorf("MatchTopic(%q, %q) = %v, want %v", c.filter, c.name, got, c.want)
		}
	}
}

// TestTrieMatchCounting: Stats.Matches accumulates routed deliveries.
func TestTrieMatchCounting(t *testing.T) {
	tr := New[int]()
	_, _ = tr.Subscribe("a/#", 1)
	_, _ = tr.Subscribe("a/b", 2)
	tr.MatchAppend("a/b", nil) // 2 matches
	tr.MatchAppend("a/c", nil) // 1 match
	tr.MatchAppend("x", nil)   // 0 matches
	if st := tr.Stats(); st.Matches != 3 {
		t.Fatalf("Matches = %d, want 3", st.Matches)
	}
	got := 0
	tr.Match("a/b", func(int) { got++ })
	if got != 2 {
		t.Fatalf("Match callback fired %d times, want 2", got)
	}
}
