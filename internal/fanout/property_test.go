package fanout

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// naiveRouter is the obviously-correct reference: a flat list of
// (filter, id) pairs matched one by one with MatchTopic.
type naiveRouter struct {
	filters map[int]string // id → filter
}

func (n *naiveRouter) match(name string) []int {
	var out []int
	for id, f := range n.filters {
		if MatchTopic(f, name) {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// randFilter draws a plausible filter over a small segment alphabet,
// with wildcards mixed in. Roughly 1-in-8 drawn filters are made
// deliberately invalid to exercise rejection parity.
func randFilter(rng *rand.Rand) string {
	if rng.Intn(8) == 0 {
		bad := []string{"", "a//b", "/a", "a/", "#/a", "a/#/b", "x+/y", "a#"}
		return bad[rng.Intn(len(bad))]
	}
	depth := 1 + rng.Intn(4)
	out := ""
	for i := 0; i < depth; i++ {
		if i > 0 {
			out += "/"
		}
		switch r := rng.Intn(10); {
		case r == 0:
			return out + "#" // '#' terminates the filter
		case r <= 2:
			out += "+"
		default:
			out += fmt.Sprintf("s%d", rng.Intn(4))
		}
	}
	return out
}

func randName(rng *rand.Rand) string {
	depth := 1 + rng.Intn(4)
	out := ""
	for i := 0; i < depth; i++ {
		if i > 0 {
			out += "/"
		}
		out += fmt.Sprintf("s%d", rng.Intn(4))
	}
	return out
}

// TestTriePropertyVsNaive runs long random interleavings of subscribe /
// unsubscribe / match against the naive reference matcher: after every
// operation the trie must route exactly the set the flat scan routes,
// and the subscription count must agree. The narrow segment alphabet
// (4 symbols, depth ≤ 4) forces heavy path sharing, wildcard overlap,
// and prune/re-create cycles.
func TestTriePropertyVsNaive(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tr := New[int]()
			ref := &naiveRouter{filters: map[int]string{}}
			handles := map[int]*Sub[int]{}
			nextID := 0

			for op := 0; op < 4000; op++ {
				switch r := rng.Intn(10); {
				case r < 4: // subscribe
					f := randFilter(rng)
					id := nextID
					h, err := tr.Subscribe(f, id)
					if (err == nil) != (ValidateFilter(f) == nil) {
						t.Fatalf("op %d: Subscribe(%q) err=%v disagrees with ValidateFilter", op, f, err)
					}
					if err == nil {
						nextID++
						ref.filters[id] = f
						handles[id] = h
					}
				case r < 6: // unsubscribe a random live subscription
					for id, h := range handles { // map order is as random as we need
						tr.Unsubscribe(h)
						delete(handles, id)
						delete(ref.filters, id)
						break
					}
				default: // match
					name := randName(rng)
					got := tr.MatchAppend(name, nil)
					sort.Ints(got)
					want := ref.match(name)
					if !eq(got, want) {
						t.Fatalf("op %d: match(%q) = %v, want %v (filters %v)",
							op, name, got, want, ref.filters)
					}
				}
				if live := tr.Stats().Subscriptions; live != len(ref.filters) {
					t.Fatalf("op %d: Subscriptions = %d, reference holds %d", op, live, len(ref.filters))
				}
			}

			// Drain everything; the trie must return to empty.
			for _, h := range handles {
				tr.Unsubscribe(h)
			}
			if st := tr.Stats(); st.Subscriptions != 0 || st.Nodes != 0 {
				t.Fatalf("after full drain: %+v, want empty trie", st)
			}
		})
	}
}

// FuzzMatchTopicVsTrie cross-checks the standalone matcher against the
// trie on arbitrary (filter, name) inputs: subscribing the filter and
// matching the name must agree with MatchTopic, and nothing may panic.
func FuzzMatchTopicVsTrie(f *testing.F) {
	f.Add("a/+/c", "a/b/c")
	f.Add("a/#", "a")
	f.Add("#", "x/y")
	f.Add("a//b", "a/b")
	f.Add("+", "")
	f.Fuzz(func(t *testing.T, filter, name string) {
		tr := New[int]()
		_, err := tr.Subscribe(filter, 1)
		got := len(tr.MatchAppend(name, nil)) > 0
		want := MatchTopic(filter, name)
		if err != nil && want {
			t.Fatalf("invalid filter %q matched %q", filter, name)
		}
		// The trie does not validate names on the match side (the
		// registry validates at registration); only compare on valid
		// names, where the two matchers must agree exactly.
		if err == nil && ValidateName(name) == nil && got != want {
			t.Fatalf("trie match(%q, %q) = %v, MatchTopic = %v", filter, name, got, want)
		}
	})
}
