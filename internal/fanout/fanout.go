// Package fanout is the interest-routed event dissemination layer: a
// concurrent topic trie over hierarchical stream names that routes each
// published event to exactly the subscribers whose filters match it,
// instead of flooding every subscriber with every event.
//
// Dobre et al. ("Robust Failure Detection Architecture for Large Scale
// Distributed Systems") argue that detection at fleet scale only works
// when status dissemination is filtered and aggregated rather than
// broadcast; Rossetto et al.'s Impact FD shows consumers care about
// named *groups* of processes, not the whole fleet. The trie encodes
// both: stream names are hierarchical (`region/cluster/host/service`),
// and a filter selects a subtree (`region/cluster/#`), a slice across
// one level (`region/+/host/service`), or a single stream.
//
// Filter grammar (the MQTT topic-filter idiom):
//
//   - Segments are separated by '/'. Empty segments are invalid in both
//     names and filters, so `a//b` can never alias `a/b`.
//   - `+` matches exactly one segment and must occupy a whole segment.
//   - `#` matches the remainder of the name, including zero segments
//     (`a/#` matches `a`, `a/b`, and `a/b/c`), and must be the final
//     segment of the filter.
//   - Stream names themselves must not contain `+` or `#`; Validate-
//     Name enforces this at registration time so publish-side matching
//     is unambiguous.
//
// Concurrency model — copy-on-write, read-mostly:
//
// Every trie node holds its children, its terminal subscribers, and its
// `#` subscribers in one immutable branches struct behind an atomic
// pointer. Matching (the publish hot path) walks the trie with one
// atomic load per visited node and no locks, no allocation, and no
// retries; its cost is O(name depth × wildcard branching + matching
// subscribers), independent of the total subscriber count. Writers
// (Subscribe / Unsubscribe) serialize on one mutex and republish only
// the nodes they change: an in-place branch swap for subscriber-list
// edits, a map clone only when a node gains or loses a child. Readers
// that raced a swap see the immediately-previous version of that one
// node — the same momentary staleness any subscription system has
// between "unsubscribe returned" and "the last in-flight event".
package fanout

import (
	"sync"
	"sync/atomic"
)

// Sub is the handle returned by Subscribe; pass it to Unsubscribe to
// detach. It pins the subscribed value and the exact filter used.
type Sub[T any] struct {
	filter string
	val    T
	gone   bool // guarded by the trie's writer mutex (double-unsubscribe)
}

// Filter returns the filter this subscription was registered under.
func (s *Sub[T]) Filter() string { return s.filter }

// Value returns the subscribed value.
func (s *Sub[T]) Value() T { return s.val }

// branches is the immutable payload of one trie node. A node's current
// branches is replaced wholesale on every mutation; the maps and slices
// inside are never written after publication.
type branches[T any] struct {
	children map[string]*node[T] // literal next segments
	plus     *node[T]            // the `+` child (matches any one segment)
	subs     []*Sub[T]           // filters terminating exactly at this node
	hash     []*Sub[T]           // filters ending in `#` rooted at this node
}

func (b *branches[T]) empty() bool {
	return len(b.children) == 0 && b.plus == nil && len(b.subs) == 0 && len(b.hash) == 0
}

// node is one trie level; it carries nothing but the atomic branch
// pointer so readers pay exactly one load per level.
type node[T any] struct {
	br atomic.Pointer[branches[T]]
}

func newNode[T any]() *node[T] {
	n := &node[T]{}
	n.br.Store(&branches[T]{})
	return n
}

// Stats is a point-in-time view of the trie's size and traffic.
type Stats struct {
	// Subscriptions is the number of live subscriptions.
	Subscriptions int `json:"subscriptions"`
	// Nodes is the number of live trie nodes (excluding the root).
	Nodes int `json:"nodes"`
	// Matches counts subscriber deliveries routed by Match since the
	// trie was created (cumulative).
	Matches uint64 `json:"matches"`
}

// Trie is a concurrent topic-subscription router. The zero value is not
// ready; use New.
type Trie[T any] struct {
	mu   sync.Mutex // serializes writers; readers never take it
	root *node[T]

	subCount  atomic.Int64
	nodeCount atomic.Int64
	matches   atomic.Uint64
}

// New returns an empty trie.
func New[T any]() *Trie[T] {
	return &Trie[T]{root: newNode[T]()}
}

// Stats returns current sizes and the cumulative match count.
func (t *Trie[T]) Stats() Stats {
	return Stats{
		Subscriptions: int(t.subCount.Load()),
		Nodes:         int(t.nodeCount.Load()),
		Matches:       t.matches.Load(),
	}
}

// Empty reports whether the trie has no subscriptions — the publish
// path's cheap pre-check before walking.
func (t *Trie[T]) Empty() bool { return t.subCount.Load() == 0 }

// Subscribe registers val under filter and returns the detach handle.
// The filter is validated first; an invalid filter changes nothing.
func (t *Trie[T]) Subscribe(filter string, val T) (*Sub[T], error) {
	if err := ValidateFilter(filter); err != nil {
		return nil, err
	}
	s := &Sub[T]{filter: filter, val: val}
	t.mu.Lock()
	defer t.mu.Unlock()

	n := t.root
	rest := filter
	for {
		seg, tail := splitSegment(rest)
		if seg == "#" { // ValidateFilter guarantees this is the last segment
			br := n.br.Load()
			nb := *br
			nb.hash = append(append([]*Sub[T]{}, br.hash...), s)
			n.br.Store(&nb)
			break
		}
		br := n.br.Load()
		var next *node[T]
		if seg == "+" {
			next = br.plus
		} else {
			next = br.children[seg]
		}
		if next == nil {
			next = t.attachChildLocked(n, br, seg)
		}
		if tail == "" {
			cb := next.br.Load()
			nb := *cb
			nb.subs = append(append([]*Sub[T]{}, cb.subs...), s)
			next.br.Store(&nb)
			break
		}
		n, rest = next, tail
	}
	t.subCount.Add(1)
	return s, nil
}

// attachChildLocked publishes a fresh child of n under seg ("+" selects
// the plus slot). The writer mutex must be held; br must be n's current
// branches.
func (t *Trie[T]) attachChildLocked(n *node[T], br *branches[T], seg string) *node[T] {
	child := newNode[T]()
	nb := *br
	if seg == "+" {
		nb.plus = child
	} else {
		m := make(map[string]*node[T], len(br.children)+1)
		for k, v := range br.children {
			m[k] = v
		}
		m[seg] = child
		nb.children = m
	}
	n.br.Store(&nb)
	t.nodeCount.Add(1)
	return child
}

// Unsubscribe detaches s, pruning any trie nodes it leaves empty. It is
// idempotent; a nil or already-detached handle is a no-op.
func (t *Trie[T]) Unsubscribe(s *Sub[T]) {
	if s == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.gone {
		return
	}
	s.gone = true

	// Walk to the node holding s, remembering the path for pruning.
	type hop struct {
		n   *node[T]
		seg string // segment taken FROM n to reach the next hop
	}
	var path []hop
	n := t.root
	rest := s.filter
	terminalHash := false
	for {
		seg, tail := splitSegment(rest)
		if seg == "#" {
			terminalHash = true
			break
		}
		path = append(path, hop{n, seg})
		br := n.br.Load()
		if seg == "+" {
			n = br.plus
		} else {
			n = br.children[seg]
		}
		if n == nil || tail == "" {
			break
		}
		rest = tail
	}
	if n == nil {
		return // filter was never filed (corrupt handle); nothing to do
	}

	// Remove s from the terminal node's list.
	br := n.br.Load()
	nb := *br
	if terminalHash {
		nb.hash = removeSub(br.hash, s)
	} else {
		nb.subs = removeSub(br.subs, s)
	}
	n.br.Store(&nb)
	t.subCount.Add(-1)

	// Prune: walk the recorded path bottom-up, detaching children that
	// became completely empty. The root is never detached.
	for i := len(path) - 1; i >= 0; i-- {
		parent, seg := path[i].n, path[i].seg
		pb := parent.br.Load()
		var child *node[T]
		if seg == "+" {
			child = pb.plus
		} else {
			child = pb.children[seg]
		}
		if child == nil || !child.br.Load().empty() {
			break
		}
		npb := *pb
		if seg == "+" {
			npb.plus = nil
		} else {
			m := make(map[string]*node[T], len(pb.children)-1)
			for k, v := range pb.children {
				if k != seg {
					m[k] = v
				}
			}
			npb.children = m
		}
		parent.br.Store(&npb)
		t.nodeCount.Add(-1)
	}
}

func removeSub[T any](list []*Sub[T], s *Sub[T]) []*Sub[T] {
	out := make([]*Sub[T], 0, len(list))
	for _, x := range list {
		if x != s {
			out = append(out, x)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// MatchAppend appends to buf the value of every subscription whose
// filter matches name, and returns the extended slice. Passing a
// caller-reused buf keeps the publish path allocation-free. A given
// subscription is appended at most once per call (wildcard paths never
// reconverge). Safe for any number of concurrent callers, including
// concurrent writers.
func (t *Trie[T]) MatchAppend(name string, buf []T) []T {
	if t.Empty() {
		return buf
	}
	before := len(buf)
	buf = matchNode(t.root, name, buf)
	if n := len(buf) - before; n > 0 {
		t.matches.Add(uint64(n))
	}
	return buf
}

// Match invokes fn for every subscription value whose filter matches
// name. Prefer MatchAppend on hot paths; Match is the convenience form.
func (t *Trie[T]) Match(name string, fn func(T)) {
	if t.Empty() {
		return
	}
	n := uint64(0)
	matchFunc(t.root, name, fn, &n)
	if n > 0 {
		t.matches.Add(n)
	}
}

func matchNode[T any](n *node[T], rest string, buf []T) []T {
	br := n.br.Load()
	// `#` rooted here matches whatever remains, including nothing.
	for _, s := range br.hash {
		buf = append(buf, s.val)
	}
	if rest == "" {
		for _, s := range br.subs {
			buf = append(buf, s.val)
		}
		return buf
	}
	seg, tail := splitSegment(rest)
	if c := br.children[seg]; c != nil {
		buf = matchNode(c, tail, buf)
	}
	if br.plus != nil {
		buf = matchNode(br.plus, tail, buf)
	}
	return buf
}

func matchFunc[T any](n *node[T], rest string, fn func(T), count *uint64) {
	br := n.br.Load()
	for _, s := range br.hash {
		fn(s.val)
		*count++
	}
	if rest == "" {
		for _, s := range br.subs {
			fn(s.val)
			*count++
		}
		return
	}
	seg, tail := splitSegment(rest)
	if c := br.children[seg]; c != nil {
		matchFunc(c, tail, fn, count)
	}
	if br.plus != nil {
		matchFunc(br.plus, tail, fn, count)
	}
}

// splitSegment cuts the first '/'-separated segment off s. tail is ""
// when seg was the last segment (names and filters never contain empty
// segments, so "" is unambiguous).
func splitSegment(s string) (seg, tail string) {
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			return s[:i], s[i+1:]
		}
	}
	return s, ""
}
