package fanout

import (
	"errors"
	"fmt"
	"strings"
)

// Validation errors. Callers branch on these with errors.Is; the
// wrapped messages carry the offending input.
var (
	// ErrEmptyName rejects "" and names/filters with empty segments
	// ("a//b", "/a", "a/") — they would alias distinct trie paths.
	ErrEmptyName = errors.New("empty name or segment")
	// ErrWildcardInName rejects stream names containing '+' or '#':
	// wildcards belong to filters only, so publish-side matching stays
	// unambiguous.
	ErrWildcardInName = errors.New("stream name contains a wildcard character")
	// ErrBadWildcard rejects malformed filter wildcards: '+'/'#' mixed
	// into a longer segment, or '#' before the final segment.
	ErrBadWildcard = errors.New("malformed wildcard")
)

// ValidateName checks a stream name (a publish-side topic): non-empty,
// no empty segments, no wildcard characters anywhere. The registry
// enforces this at stream registration so every tracked stream is
// addressable by filters.
func ValidateName(name string) error {
	if name == "" {
		return fmt.Errorf("%w: %q", ErrEmptyName, name)
	}
	rest := name
	for {
		seg, tail := splitSegment(rest)
		if seg == "" {
			return fmt.Errorf("%w: %q", ErrEmptyName, name)
		}
		if strings.ContainsAny(seg, "+#") {
			return fmt.Errorf("%w: %q", ErrWildcardInName, name)
		}
		if tail == "" {
			// "a/" splits to ("a", "") then ends — but a trailing slash
			// yields a final empty segment via the check below.
			if strings.HasSuffix(rest, "/") {
				return fmt.Errorf("%w: %q", ErrEmptyName, name)
			}
			return nil
		}
		rest = tail
	}
}

// ValidateFilter checks a subscription filter: non-empty, no empty
// segments, '+' and '#' only as whole segments, '#' only last.
func ValidateFilter(filter string) error {
	if filter == "" {
		return fmt.Errorf("%w: %q", ErrEmptyName, filter)
	}
	rest := filter
	for {
		seg, tail := splitSegment(rest)
		if seg == "" {
			return fmt.Errorf("%w: %q", ErrEmptyName, filter)
		}
		switch {
		case seg == "#":
			if tail != "" {
				return fmt.Errorf("%w: '#' must be the final segment: %q", ErrBadWildcard, filter)
			}
		case seg == "+":
			// a whole-segment '+': fine anywhere
		case strings.ContainsAny(seg, "+#"):
			return fmt.Errorf("%w: wildcard inside segment: %q", ErrBadWildcard, filter)
		}
		if tail == "" {
			if strings.HasSuffix(rest, "/") {
				return fmt.Errorf("%w: %q", ErrEmptyName, filter)
			}
			return nil
		}
		rest = tail
	}
}

// MatchTopic reports whether filter matches the stream name, using the
// same semantics as the trie (a one-shot matcher for tests, tooling,
// and the facade). Invalid filters or names never match.
func MatchTopic(filter, name string) bool {
	if ValidateFilter(filter) != nil || ValidateName(name) != nil {
		return false
	}
	return matchSegs(filter, name)
}

func matchSegs(filter, name string) bool {
	fseg, ftail := splitSegment(filter)
	if fseg == "#" {
		return true // matches the rest, including nothing more
	}
	nseg, ntail := splitSegment(name)
	if fseg != "+" && fseg != nseg {
		return false
	}
	switch {
	case ftail == "" && ntail == "":
		return true
	case ftail == "":
		return false // name has more levels than the filter
	case ntail == "":
		return ftail == "#" // "a/#" matches "a": zero remaining levels
	}
	return matchSegs(ftail, ntail)
}
