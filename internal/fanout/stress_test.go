package fanout

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestTrieConcurrentMatchVsChurn runs matchers at full speed against
// writers churning subscriptions on overlapping paths. Run with -race:
// the copy-on-write contract says readers never observe a torn node,
// and matchers must keep seeing a subscription that is never
// unsubscribed, no matter how much churn shares its path.
func TestTrieConcurrentMatchVsChurn(t *testing.T) {
	tr := New[string]()

	// A pinned subscription that must match every probe, forever.
	if _, err := tr.Subscribe("eu/+/stable/#", "pinned"); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Writers: subscribe/unsubscribe short-lived filters that share the
	// "eu" prefix (and often the "+" child) with the pinned one.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var live []*Sub[string]
			for i := 0; !stop.Load(); i++ {
				if len(live) > 64 || (len(live) > 0 && rng.Intn(2) == 0) {
					k := rng.Intn(len(live))
					tr.Unsubscribe(live[k])
					live = append(live[:k], live[k+1:]...)
					continue
				}
				f := fmt.Sprintf("eu/c%d/stable/s%d", rng.Intn(8), rng.Intn(8))
				if rng.Intn(4) == 0 {
					f = fmt.Sprintf("eu/+/stable/s%d", rng.Intn(8))
				}
				h, err := tr.Subscribe(f, "churn")
				if err != nil {
					t.Error(err)
					return
				}
				live = append(live, h)
			}
			for _, h := range live {
				tr.Unsubscribe(h)
			}
		}(w)
	}

	// Readers: every probe must at least see the pinned subscription.
	var probes atomic.Uint64
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			buf := make([]string, 0, 128)
			for !stop.Load() {
				name := fmt.Sprintf("eu/c%d/stable/s%d", rng.Intn(8), rng.Intn(8))
				buf = tr.MatchAppend(name, buf[:0])
				found := false
				for _, v := range buf {
					if v == "pinned" {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("probe %q lost the pinned subscription (got %v)", name, buf)
					return
				}
				probes.Add(1)
			}
		}(r)
	}

	// Let the storm run a fixed amount of work rather than wall time.
	for probes.Load() < 200_000 && !t.Failed() {
	}
	stop.Store(true)
	wg.Wait()

	if st := tr.Stats(); st.Subscriptions != 1 {
		t.Fatalf("Subscriptions = %d after churn drained, want 1 (pinned)", st.Subscriptions)
	}
}
