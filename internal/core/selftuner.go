package core

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/detector"
)

// Tunable is a failure detector whose effective safety margin can be
// adjusted externally. It is the hook through which the *general*
// self-tuning method of §IV-A ("This method is general, and can be
// applied to the other adaptive timeout-based FD schemes") retrofits
// feedback onto detectors that were designed with hand-picked parameters.
type Tunable interface {
	detector.Detector
	// TuningParam returns the current value of the tuned parameter.
	TuningParam() clock.Duration
	// SetTuningParam overrides the tuned parameter.
	SetTuningParam(clock.Duration)
}

// TunableChen adapts detector.Chen: the tuned parameter is its safety
// margin α.
type TunableChen struct{ *detector.Chen }

// TuningParam implements Tunable.
func (t TunableChen) TuningParam() clock.Duration { return t.Alpha() }

// SetTuningParam implements Tunable.
func (t TunableChen) SetTuningParam(d clock.Duration) { t.SetAlpha(d) }

// TunableFixed adapts detector.Fixed: the tuned parameter is the timeout.
type TunableFixed struct{ *detector.Fixed }

// TuningParam implements Tunable.
func (t TunableFixed) TuningParam() clock.Duration { return t.Timeout() }

// SetTuningParam implements Tunable.
func (t TunableFixed) SetTuningParam(d clock.Duration) { t.SetTimeout(d) }

// SelfTuner wraps any Tunable detector with the feedback architecture of
// Fig. 4: it measures the wrapped detector's output QoS per slot and
// moves its tuning parameter by ±β·α per Algorithm 1. SFD hard-wires the
// same loop around Chen's estimator; SelfTuner demonstrates the method's
// generality.
type SelfTuner struct {
	inner detector.Detector
	tun   Tunable

	alpha   clock.Duration
	beta    float64
	targets Targets
	slotHB  int
	minP    clock.Duration
	maxP    clock.Duration
	halt    bool

	slot      slotEvaluator
	slotIndex int
	slotCount int
	state     State
	history   []Adjustment
}

// TunerOptions configures a SelfTuner.
type TunerOptions struct {
	Alpha            clock.Duration // adjustment scale α (default 100 ms)
	Beta             float64        // adjusting rate β ∈ (0,1) (default 0.5)
	Targets          Targets
	SlotHeartbeats   int            // default 500
	MinParam         clock.Duration // clamp (default 0)
	MaxParam         clock.Duration // clamp (default 10 s)
	HaltOnInfeasible bool
}

// NewSelfTuner wraps d with a feedback loop driving its tuning parameter
// toward the targets.
func NewSelfTuner(d Tunable, opts TunerOptions) *SelfTuner {
	if opts.Alpha <= 0 {
		opts.Alpha = 100 * clock.Millisecond
	}
	if opts.Beta <= 0 || opts.Beta >= 1 {
		opts.Beta = 0.5
	}
	if opts.SlotHeartbeats <= 0 {
		opts.SlotHeartbeats = 500
	}
	if opts.MaxParam <= 0 {
		opts.MaxParam = 10 * clock.Second
	}
	return &SelfTuner{
		inner: d, tun: d,
		alpha: opts.Alpha, beta: opts.Beta, targets: opts.Targets,
		slotHB: opts.SlotHeartbeats, minP: opts.MinParam, maxP: opts.MaxParam,
		halt: opts.HaltOnInfeasible,
	}
}

// Observe implements detector.Detector.
func (st *SelfTuner) Observe(seq uint64, send, recv clock.Time) {
	if fp := st.inner.FreshnessPoint(); fp != 0 && recv.After(fp) {
		st.slot.addMistake(fp, recv)
	}
	st.inner.Observe(seq, send, recv)
	if !st.slot.started {
		st.slot.begin(recv)
	}
	if fp := st.inner.FreshnessPoint(); fp != 0 {
		st.slot.addTD(fp.Sub(send))
	}
	if st.state == StateWarmup && st.inner.Ready() {
		st.state = StateTuning
	}
	st.slotCount++
	if st.slotCount >= st.slotHB {
		st.closeSlot(recv)
	}
}

func (st *SelfTuner) closeSlot(now clock.Time) {
	measured, ok := st.slot.measure(now)
	st.slotCount = 0
	st.slotIndex++
	defer st.slot.begin(now)
	if !ok || st.state == StateWarmup || !st.targets.Valid() {
		return
	}
	if st.state == StateInfeasible && st.halt {
		return
	}
	v := Decide(measured, st.targets)
	p := st.tun.TuningParam() + clock.Duration(Sat(v, st.beta)*float64(st.alpha))
	if p < st.minP {
		p = st.minP
	}
	if p > st.maxP {
		p = st.maxP
	}
	st.tun.SetTuningParam(p)

	switch v {
	case VerdictStable:
		st.state = StateStable
	case VerdictInfeasible:
		st.state = StateInfeasible
	default:
		st.state = StateTuning
	}
	if len(st.history) < 4096 {
		st.history = append(st.history, Adjustment{
			Slot: st.slotIndex, At: now, Measured: measured, Verdict: v, Margin: p,
		})
	}
}

// FreshnessPoint implements detector.Detector.
func (st *SelfTuner) FreshnessPoint() clock.Time { return st.inner.FreshnessPoint() }

// Suspect implements detector.Detector.
func (st *SelfTuner) Suspect(now clock.Time) bool { return st.inner.Suspect(now) }

// Ready implements detector.Detector.
func (st *SelfTuner) Ready() bool { return st.inner.Ready() }

// Name implements detector.Detector.
func (st *SelfTuner) Name() string {
	return fmt.Sprintf("SelfTuned[%s]", st.inner.Name())
}

// Reset implements detector.Detector.
func (st *SelfTuner) Reset() {
	st.inner.Reset()
	st.slot = slotEvaluator{}
	st.slotIndex, st.slotCount = 0, 0
	st.state = StateWarmup
	st.history = nil
}

// State returns the tuning state.
func (st *SelfTuner) State() State { return st.state }

// History returns the adjustment log.
func (st *SelfTuner) History() []Adjustment { return st.history }
