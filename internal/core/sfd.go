package core

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/detector"
	"repro/internal/stats"
)

// State is the externally visible phase of the self-tuning loop.
type State int

const (
	// StateWarmup: the sampling window is still filling.
	StateWarmup State = iota
	// StateTuning: SM is being adjusted toward the target QoS.
	StateTuning
	// StateStable: the output QoS satisfied the targets in the most
	// recent slot ("the SFD stabilizes the parameters", §IV-A).
	StateStable
	// StateInfeasible: both speed and accuracy targets were violated —
	// "This SFD can not satisfy the QoS for the application".
	StateInfeasible
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateWarmup:
		return "warmup"
	case StateTuning:
		return "tuning"
	case StateStable:
		return "stable"
	case StateInfeasible:
		return "infeasible"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config parameterizes an SFD instance.
type Config struct {
	// WindowSize is the sliding-window size WS (default 1000, the
	// paper's experimental setting).
	WindowSize int
	// Interval is the known heartbeat sending interval Δt; 0 estimates
	// it from the sampling window (§IV-C: "get the average inter-arrival
	// time Δt in this sliding window").
	Interval clock.Duration
	// InitialMargin is SM₁, the starting safety margin. The paper's
	// sweeps list SM₁ values; "In order to find the best QoS ... we set
	// SM₁ = α".
	InitialMargin clock.Duration
	// Alpha is the base adjustment scale α of Eq. 12 — the margin moves
	// by Sat·α = ±β·α per slot.
	Alpha clock.Duration
	// Beta is the adjusting-rate constant β ∈ (0,1) of Eq. 13.
	Beta float64
	// Targets is the application's required QoS (Q̄oS).
	Targets Targets
	// SlotHeartbeats is the number of arrivals per feedback slot
	// (parameters are adjusted at most once per slot). Default 500.
	SlotHeartbeats int
	// MinMargin/MaxMargin clamp SM. Defaults: 0 and 10 s (matching
	// Chen's α ∈ [0, 10000] ms sweep range).
	MinMargin clock.Duration
	MaxMargin clock.Duration
	// FillGaps enables the §IV-C time-series gap filling for lost
	// heartbeats: d_i = Δt·n_ag + d_{i−1}.
	FillGaps bool
	// MaxGapFill caps how many synthetic samples a single loss burst may
	// inject (long outages would otherwise flood the window). Default 8.
	MaxGapFill int
	// HaltOnInfeasible, when true, stops further margin adjustment after
	// an infeasible verdict (Algorithm 1 "stop SFD"); detection itself
	// continues. When false SFD keeps trying (the network may improve).
	HaltOnInfeasible bool
	// InvertFeedback is an ABLATION HOOK: it applies Algorithm 1's
	// printed signs literally (+β when TD is too slow, −β when accuracy
	// is violated) instead of the semantically consistent rule DESIGN.md
	// §4 argues for. With it on, feedback pushes the margin away from
	// the target box — the ablation benchmark uses it to show the signs
	// in the paper's listing must be typos.
	InvertFeedback bool
	// AdaptiveStep enables the extension the paper leaves to users ("the
	// value β is for the adjusting rate, and it could be dynamically
	// chosen by users", §IV-B): the effective step halves every time the
	// feedback direction flips and recovers by 25% on every repeat of
	// the same direction, bounded to [β·α/16, β·α]. Large steps cross
	// the gap quickly; shrinking on overshoot kills the oscillation the
	// step-size ablation exhibits.
	AdaptiveStep bool
	// HistoryCap bounds the retained adjustment history (0 = 4096).
	HistoryCap int
}

// DefaultConfig returns the paper-faithful configuration: WS=1000,
// α=100 ms, β=0.5, SM₁=α, slot=500 heartbeats, gap filling on.
func DefaultConfig() Config {
	return Config{
		WindowSize:     detector.DefaultWindowSize,
		InitialMargin:  100 * clock.Millisecond,
		Alpha:          100 * clock.Millisecond,
		Beta:           0.5,
		SlotHeartbeats: 500,
		MaxMargin:      10 * clock.Second,
		FillGaps:       true,
		MaxGapFill:     8,
	}
}

// Adjustment is one entry of the self-tuning history: the slot's measured
// QoS, the verdict, and the margin after applying it.
type Adjustment struct {
	Slot     int
	At       clock.Time
	Measured QoS
	Verdict  Verdict
	Margin   clock.Duration
}

// SFD is the Self-tuning Failure Detector (§IV-B). It implements
// detector.Detector and detector.Accrual.
type SFD struct {
	cfg Config
	est *detector.ArrivalEstimator

	margin clock.Duration
	fp     clock.Time
	state  State

	slot      slotEvaluator
	slotIndex int
	slotCount int

	// Gap filling state.
	lastSeq   uint64
	lastSend  clock.Time
	lastDelay clock.Duration
	haveSeq   bool
	gapAvg    *stats.EWMA // n_ag: average observed adjacent-gap length

	// Adaptive-step state (Config.AdaptiveStep).
	stepScale float64 // multiplier on β·α, in [1/16, 1]
	lastDir   int     // sign of the previous nonzero adjustment

	// Rewarm state (warm restart; see Rewarm). While rewarmLeft > 0 the
	// margin is frozen: the post-restore slots measure QoS over a window
	// that straddles the outage and would otherwise jerk SM around.
	rewarmLeft int
	// rewarmGapSkip suppresses the first gap's n_ag sample after a
	// restore: the downtime gap is the monitor's fault, not the
	// network's, and folding it into the loss-burst average would
	// inflate every subsequent gap fill.
	rewarmGapSkip bool

	history []Adjustment
}

// New returns an SFD with the given configuration; zero fields take the
// defaults of DefaultConfig.
func New(cfg Config) *SFD {
	def := DefaultConfig()
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = def.WindowSize
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = def.Alpha
	}
	if cfg.Beta <= 0 || cfg.Beta >= 1 {
		cfg.Beta = def.Beta
	}
	if cfg.SlotHeartbeats <= 0 {
		cfg.SlotHeartbeats = def.SlotHeartbeats
	}
	if cfg.MaxMargin <= 0 {
		cfg.MaxMargin = def.MaxMargin
	}
	if cfg.MaxGapFill <= 0 {
		cfg.MaxGapFill = def.MaxGapFill
	}
	if cfg.HistoryCap <= 0 {
		cfg.HistoryCap = 4096
	}
	if cfg.InitialMargin < cfg.MinMargin {
		cfg.InitialMargin = cfg.MinMargin
	}
	if cfg.InitialMargin > cfg.MaxMargin {
		cfg.InitialMargin = cfg.MaxMargin
	}
	return &SFD{
		cfg:       cfg,
		est:       detector.NewArrivalEstimator(cfg.WindowSize, cfg.Interval),
		margin:    cfg.InitialMargin,
		gapAvg:    stats.NewEWMA(0.1),
		stepScale: 1,
	}
}

// Observe implements detector.Detector. send is the sender's timestamp
// carried in the heartbeat; recv the monitor's arrival time.
func (s *SFD) Observe(seq uint64, send, recv clock.Time) {
	// A heartbeat arriving after the freshness point expired proves the
	// suspicion that began at fp was a mistake. If no slot is open yet
	// (first arrival after an ImportState), it opens at fp so the wrong
	// suspicion's duration is charged instead of wiped by begin() below.
	if s.fp != 0 && recv.After(s.fp) {
		if !s.slot.started {
			s.slot.begin(s.fp)
		}
		s.slot.addMistake(s.fp, recv)
	}

	// §IV-C gap filling: lost heartbeats leave no delay sample; fill the
	// gap with d_j = Δt·n_ag + d_{j−1} so the estimator keeps tracking
	// through loss bursts.
	if s.haveSeq && seq > s.lastSeq+1 {
		gap := int(seq - s.lastSeq - 1)
		if !s.rewarmGapSkip {
			s.gapAvg.Add(float64(gap))
		}
		if s.cfg.FillGaps {
			s.fillGap(seq, gap, recv)
		}
	} else if s.haveSeq && !s.rewarmGapSkip {
		s.gapAvg.Add(0)
	}
	s.rewarmGapSkip = false

	s.est.Observe(seq, recv)

	if !s.slot.started {
		s.slot.begin(recv)
	}

	if ea, ok := s.est.Expected(); ok {
		s.fp = ea.Add(s.margin)
		// Worst-case detection time with current parameters: crash right
		// after this heartbeat was sent ⇒ suspected at the new fp.
		s.slot.addTD(s.fp.Sub(send))
	}

	s.lastSeq, s.lastSend, s.haveSeq = seq, send, true
	s.lastDelay = recv.Sub(send)
	if s.state == StateWarmup && s.est.Full() {
		s.state = StateTuning
	}

	s.slotCount++
	if s.slotCount >= s.cfg.SlotHeartbeats {
		// Close before spending this arrival's rewarm credit: a slot
		// whose last arrival is still inside the grace window straddles
		// restored history and must not tune the margin.
		s.closeSlot(recv)
	}
	if s.rewarmLeft > 0 {
		s.rewarmLeft--
	}
}

// fillGap injects synthetic arrivals for up to MaxGapFill lost heartbeats
// preceding the arrival of seq at recv. Synthetic arrivals are clamped to
// recv: the compounded delay d_j = Δt·n_ag + d_{j−1} plus the per-position
// send offset can exceed the real arrival after a long burst, and the
// estimator must never see a sample later than an event that has already
// happened (it would inflate EA for a full window length).
func (s *SFD) fillGap(seq uint64, gap int, recv clock.Time) {
	dt := s.est.Interval()
	if dt <= 0 {
		dt = s.cfg.Interval
	}
	if dt <= 0 {
		return
	}
	nag := s.gapAvg.Value()
	if nag < 1 {
		nag = 1
	}
	fill := gap
	if fill > s.cfg.MaxGapFill {
		fill = s.cfg.MaxGapFill
	}
	// Fill the most recent `fill` positions of the gap.
	firstFilled := int(seq-s.lastSeq) - fill // offset from lastSeq
	d := s.lastDelay
	for off := firstFilled; off < int(seq-s.lastSeq); off++ {
		j := s.lastSeq + uint64(off)
		d = d + clock.Duration(float64(dt)*nag)
		synthSend := s.lastSend.Add(clock.Duration(off) * dt)
		arr := synthSend.Add(d)
		if arr.After(recv) {
			arr = recv
		}
		s.est.Observe(j, arr)
	}
}

// closeSlot evaluates the slot QoS and applies Algorithm 1.
func (s *SFD) closeSlot(now clock.Time) {
	measured, ok := s.slot.measure(now)
	s.slotCount = 0
	s.slotIndex++
	defer s.slot.begin(now)
	if !ok || s.state == StateWarmup {
		return
	}
	if s.rewarmLeft > 0 {
		// Warm-restart grace: the slot straddles restored history and the
		// outage, so its QoS is not evidence about the live network; keep
		// SM exactly where the previous life tuned it.
		return
	}
	if s.state == StateInfeasible && s.cfg.HaltOnInfeasible {
		return
	}
	if !s.cfg.Targets.Valid() {
		// No (valid) requirement: run as a plain adaptive FD.
		return
	}

	v := Decide(measured, s.cfg.Targets)
	sat := Sat(v, s.cfg.Beta)
	if s.cfg.AdaptiveStep && sat != 0 {
		dir := 1
		if sat < 0 {
			dir = -1
		}
		switch {
		case s.lastDir != 0 && dir != s.lastDir:
			s.stepScale /= 2 // overshoot: damp
			if s.stepScale < 1.0/16 {
				s.stepScale = 1.0 / 16
			}
		case dir == s.lastDir:
			s.stepScale *= 1.25 // persistent gap: accelerate
			if s.stepScale > 1 {
				s.stepScale = 1
			}
		}
		s.lastDir = dir
		sat *= s.stepScale
	}
	delta := clock.Duration(sat * float64(s.cfg.Alpha))
	if s.cfg.InvertFeedback {
		delta = -delta
	}
	s.margin += delta
	if s.margin < s.cfg.MinMargin {
		s.margin = s.cfg.MinMargin
	}
	if s.margin > s.cfg.MaxMargin {
		s.margin = s.cfg.MaxMargin
	}

	switch v {
	case VerdictStable:
		s.state = StateStable
	case VerdictInfeasible:
		s.state = StateInfeasible
	default:
		s.state = StateTuning
	}

	if len(s.history) < s.cfg.HistoryCap {
		s.history = append(s.history, Adjustment{
			Slot: s.slotIndex, At: now, Measured: measured, Verdict: v, Margin: s.margin,
		})
	}
}

// FreshnessPoint implements detector.Detector.
func (s *SFD) FreshnessPoint() clock.Time { return s.fp }

// Suspect implements detector.Detector.
func (s *SFD) Suspect(now clock.Time) bool {
	return s.fp != 0 && now.After(s.fp)
}

// SuspicionLevel implements detector.Accrual: the fraction of the safety
// margin consumed past the expected arrival time. It is 0 while the next
// heartbeat is not yet due, reaches 1 exactly at the freshness point, and
// grows without bound afterwards — applications trigger graduated
// reactions at their own thresholds (§I: "an application may take
// precautionary measures when the confidence reaches a given low level
// ... more drastic actions once the doubt progresses").
func (s *SFD) SuspicionLevel(now clock.Time) float64 {
	if s.fp == 0 {
		return 0
	}
	ea := s.fp.Add(-s.margin)
	if !now.After(ea) {
		return 0
	}
	m := float64(s.margin)
	if m <= 0 {
		m = 1 // degenerate zero margin: any overshoot is full suspicion
	}
	return float64(now.Sub(ea)) / m
}

// Ready implements detector.Detector.
func (s *SFD) Ready() bool { return s.est.Full() }

// Name implements detector.Detector.
func (s *SFD) Name() string {
	return fmt.Sprintf("SFD(SM₁=%v,α=%v,β=%g)", s.cfg.InitialMargin, s.cfg.Alpha, s.cfg.Beta)
}

// Reset implements detector.Detector.
func (s *SFD) Reset() {
	s.est.Reset()
	s.margin = s.cfg.InitialMargin
	s.fp = 0
	s.state = StateWarmup
	s.slot = slotEvaluator{}
	s.slotIndex, s.slotCount = 0, 0
	s.lastSeq, s.lastSend, s.lastDelay, s.haveSeq = 0, 0, 0, false
	s.gapAvg = stats.NewEWMA(0.1)
	s.stepScale, s.lastDir = 1, 0
	s.rewarmLeft, s.rewarmGapSkip = 0, false
	s.history = nil
}

// Margin returns the current dynamic safety margin SM.
func (s *SFD) Margin() clock.Duration { return s.margin }

// SetMargin overrides SM (used by the generic SelfTuner and by tests).
func (s *SFD) SetMargin(m clock.Duration) {
	if m < s.cfg.MinMargin {
		m = s.cfg.MinMargin
	}
	if m > s.cfg.MaxMargin {
		m = s.cfg.MaxMargin
	}
	s.margin = m
}

// State returns the current tuning state.
func (s *SFD) State() State { return s.state }

// Response returns the human-readable status the paper's Algorithm 1
// emits, e.g. the infeasibility response of line 14.
func (s *SFD) Response() string {
	switch s.state {
	case StateInfeasible:
		return fmt.Sprintf("this SFD can not satisfy the QoS requirement %v for the application", s.cfg.Targets)
	case StateStable:
		return fmt.Sprintf("output QoS satisfies %v; parameters stable at SM=%v", s.cfg.Targets, s.margin)
	case StateTuning:
		return fmt.Sprintf("adjusting SM (currently %v) toward %v", s.margin, s.cfg.Targets)
	default:
		return "warming up: sampling window not yet full"
	}
}

// History returns the adjustment log (one entry per evaluated slot).
func (s *SFD) History() []Adjustment { return s.history }

// LastAdjustment returns the most recent slot evaluation, if any — the
// measured QoS and verdict the metrics layer exposes per stream.
func (s *SFD) LastAdjustment() (Adjustment, bool) {
	if len(s.history) == 0 {
		return Adjustment{}, false
	}
	return s.history[len(s.history)-1], true
}

// Config returns the effective configuration after defaulting.
func (s *SFD) Config() Config { return s.cfg }
