// Package core implements the paper's primary contribution: the general
// self-tuning failure detection method (§IV-A, Fig. 4–5, Algorithm 1) and
// the concrete Self-tuning Failure Detector SFD (§IV-B/C, Eq. 11–13).
//
// SFD predicts the next freshness point as τ_{k+1} = EA_{k+1} + SM_{k+1}
// (Chen's expected arrival time plus a *dynamic* safety margin) and
// adjusts SM between time slots using feedback that compares the
// measured output QoS (detection time, mistake rate, query accuracy
// probability) against the application's target QoS.
package core

import (
	"fmt"

	"repro/internal/clock"
)

// QoS is the failure-detection quality-of-service tuple of Eq. 1,
// QoS = (TD, MR, QAP), following Chen et al.'s metrics (§II-C):
//
//   - TD: detection time — how long a crash goes undetected.
//   - MR: mistake rate — wrong suspicions per second.
//   - QAP: query accuracy probability — the probability that a random
//     query sees a correct "up" indication; in [0,1].
type QoS struct {
	TD  clock.Duration
	MR  float64
	QAP float64
}

// String renders the tuple in paper units (seconds, 1/s, percent).
func (q QoS) String() string {
	return fmt.Sprintf("QoS{TD=%.3fs MR=%.3g/s QAP=%.4f%%}",
		q.TD.Seconds(), q.MR, q.QAP*100)
}

// Targets is the application's QoS requirement (the paper's overlined
// Q̄oS): TD and MR are upper bounds, QAP a lower bound (Fig. 5: "the
// target MR and TD should be smaller than the required values ... the
// QAP should be larger").
type Targets struct {
	MaxTD  clock.Duration
	MaxMR  float64
	MinQAP float64
}

// String renders the requirement.
func (t Targets) String() string {
	return fmt.Sprintf("Targets{TD≤%.3fs MR≤%.3g/s QAP≥%.4f%%}",
		t.MaxTD.Seconds(), t.MaxMR, t.MinQAP*100)
}

// Valid reports whether the targets are well-formed.
func (t Targets) Valid() bool {
	return t.MaxTD > 0 && t.MaxMR >= 0 && t.MinQAP >= 0 && t.MinQAP <= 1
}

// Verdict is the outcome of one feedback evaluation (Algorithm 1 step 2).
type Verdict int

const (
	// VerdictStable: all three requirements met; Sat = 0, keep SM.
	VerdictStable Verdict = iota
	// VerdictIncrease: detection is fast enough but accuracy is violated
	// (MR too high and/or QAP too low); Sat = +β, grow the margin.
	VerdictIncrease
	// VerdictDecrease: accuracy is fine but detection is too slow
	// (TD above target); Sat = −β, shrink the margin.
	VerdictDecrease
	// VerdictInfeasible: both speed and accuracy are violated — no margin
	// value can satisfy the request on this network; SFD must "give a
	// response" (Algorithm 1 line 14).
	VerdictInfeasible
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictStable:
		return "stable"
	case VerdictIncrease:
		return "increase"
	case VerdictDecrease:
		return "decrease"
	case VerdictInfeasible:
		return "infeasible"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Decide implements the feedback rule of Algorithm 1. The printed
// algorithm's signs are typos relative to Eq. 12 and the paper's own
// WAN-1 walkthrough ("SFD finds this output TD is larger than the
// requirement, it automatically adjusts ... by setting Sat = −β to reduce
// SM) to reduce the TD"); Decide follows the semantics, see DESIGN.md §4.
func Decide(measured QoS, target Targets) Verdict {
	tdOK := measured.TD <= target.MaxTD
	accOK := measured.MR <= target.MaxMR && measured.QAP >= target.MinQAP
	switch {
	case tdOK && accOK:
		return VerdictStable
	case !tdOK && accOK:
		return VerdictDecrease
	case tdOK && !accOK:
		return VerdictIncrease
	default:
		return VerdictInfeasible
	}
}

// Sat converts a verdict into the Sat_k{QoS, Q̄oS} coefficient of Eq. 13:
// +β, −β, or 0. Infeasible yields 0 (the adjustment loop halts and the
// detector reports the failure instead).
func Sat(v Verdict, beta float64) float64 {
	switch v {
	case VerdictIncrease:
		return beta
	case VerdictDecrease:
		return -beta
	default:
		return 0
	}
}
