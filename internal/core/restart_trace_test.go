package core

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/trace"
)

// restartTrace materializes a deterministic jittery heartbeat trace so
// every detector variant in the regression sees identical arrivals.
func restartTrace(t *testing.T) []trace.Record {
	t.Helper()
	gen := trace.NewGenerator(trace.GenParams{
		Count:           2000,
		Seed:            7,
		IntervalMean:    100 * clock.Millisecond,
		IntervalStd:     5 * clock.Millisecond,
		IntervalMin:     50 * clock.Millisecond,
		DelayBase:       20 * clock.Millisecond,
		DelayJitterMean: 5 * clock.Millisecond,
		DelayJitterStd:  2 * clock.Millisecond,
		LossRate:        0.01,
		MeanBurst:       1.5,
	})
	var recs []trace.Record
	for {
		rec, ok := gen.Next()
		if !ok {
			return recs
		}
		recs = append(recs, rec)
	}
}

func restartTraceConfig() Config {
	return Config{
		WindowSize:     64,
		Interval:       100 * clock.Millisecond,
		InitialMargin:  150 * clock.Millisecond,
		Alpha:          20 * clock.Millisecond,
		Beta:           0.5,
		SlotHeartbeats: 50,
		Targets:        Targets{MaxTD: 500 * clock.Millisecond, MaxMR: 0.5, MinQAP: 0.9},
		FillGaps:       true,
		MaxGapFill:     8,
	}
}

func observeRecord(s *SFD, rec trace.Record) {
	if !rec.Lost {
		s.Observe(rec.Seq, rec.SendTime, rec.RecvTime)
	}
}

// TestRestoreOnTraceMatchesUninterrupted is the warm-restart regression:
// a detector restored from a snapshot and rewarmed must track the QoS of
// an uninterrupted detector on the same trace — no post-restart mistake
// spike — while the pre-fix behavior (restoring the state but keeping the
// stale freshness point, i.e. no Rewarm) demonstrably does spike MR and
// crater QAP in its first slot.
func TestRestoreOnTraceMatchesUninterrupted(t *testing.T) {
	recs := restartTrace(t)
	cfg := restartTraceConfig()
	const cut = 1000
	const downtime = 2 * clock.Second

	// Uninterrupted reference run over the whole trace.
	a := New(cfg)
	for _, rec := range recs {
		observeRecord(a, rec)
	}
	if a.State() != StateStable {
		t.Fatalf("reference run ended in %v, want stable", a.State())
	}

	// First life observes the first half, then "crashes".
	b := New(cfg)
	var cutRecv clock.Time
	for _, rec := range recs[:cut] {
		observeRecord(b, rec)
		if !rec.Lost {
			cutRecv = rec.RecvTime
		}
	}
	st := b.ExportState()
	resumeAt := cutRecv.Add(downtime)

	// tail = arrivals after the monitor comes back. Heartbeats sent while
	// it was down are simply never observed (the sender kept running).
	var tail []trace.Record
	for _, rec := range recs[cut:] {
		if !rec.Lost && rec.RecvTime >= resumeAt {
			tail = append(tail, rec)
		}
	}
	if len(tail) < 5*cfg.SlotHeartbeats {
		t.Fatalf("tail too short (%d arrivals) — trace/downtime mismatch", len(tail))
	}

	// Warm restart: import + rewarm (what the registry does).
	warm := New(cfg)
	if err := warm.ImportState(st); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	warm.Rewarm(0)

	// Pre-fix restart: state restored but the stale freshness point kept.
	// The first post-downtime arrival lands long after it and is booked as
	// a detector mistake.
	prefix := New(cfg)
	if err := prefix.ImportState(st); err != nil {
		t.Fatalf("ImportState: %v", err)
	}

	for _, rec := range tail {
		observeRecord(warm, rec)
		observeRecord(prefix, rec)
	}

	// Reference tail QoS: the slots the uninterrupted run evaluated over
	// the same wall-clock region.
	var refMaxMR, refMinQAP float64 = 0, 1
	refSlots := 0
	for _, adj := range a.History() {
		if adj.At < resumeAt {
			continue
		}
		refSlots++
		if adj.Measured.MR > refMaxMR {
			refMaxMR = adj.Measured.MR
		}
		if adj.Measured.QAP < refMinQAP {
			refMinQAP = adj.Measured.QAP
		}
	}
	if refSlots == 0 {
		t.Fatal("reference run has no tail slots")
	}

	// The warm restart's slots (all post-restart: import clears history)
	// must match the reference within ε — no mistake spike, no QAP dip.
	const epsMR, epsQAP = 0.05, 0.02
	warmSlots := warm.History()
	if len(warmSlots) == 0 {
		t.Fatal("warm restart evaluated no slots")
	}
	for i, adj := range warmSlots {
		if adj.Measured.MR > refMaxMR+epsMR {
			t.Errorf("warm slot %d: MR %.3g/s, reference max %.3g/s — post-restart mistake spike", i, adj.Measured.MR, refMaxMR)
		}
		if adj.Measured.QAP < refMinQAP-epsQAP {
			t.Errorf("warm slot %d: QAP %.4f, reference min %.4f", i, adj.Measured.QAP, refMinQAP)
		}
	}

	// Margin re-converges to the uninterrupted run's within 10 slots.
	if len(warmSlots) > 10 {
		warmSlots = warmSlots[:10]
	}
	end := warmSlots[len(warmSlots)-1].Margin
	if d := end - a.Margin(); d > 2*cfg.Alpha || d < -2*cfg.Alpha {
		t.Errorf("warm margin %v vs uninterrupted %v: did not re-converge within 10 slots", end, a.Margin())
	}

	// The pre-fix variant books the entire downtime as a wrong suspicion:
	// its first slot records the mistake and the QAP crater — nearly two
	// seconds of false suspicion against a ~five-second slot — that the
	// warm path avoids. (Plain MR is dominated by ordinary loss-induced
	// mistakes either way; the duration-weighted QAP is the clean signal.)
	preSlots := prefix.History()
	if len(preSlots) == 0 {
		t.Fatal("pre-fix variant evaluated no slots")
	}
	first := preSlots[0].Measured
	if first.MR == 0 {
		t.Error("pre-fix first slot has no mistake — the rewarm grace is no longer load-bearing")
	}
	if first.QAP >= refMinQAP-0.1 {
		t.Errorf("pre-fix first slot QAP %.4f shows no crater (reference min %.4f) — the rewarm grace is no longer load-bearing", first.QAP, refMinQAP)
	}
	if warmFirst := warm.History()[0].Measured; warmFirst.QAP <= first.QAP {
		t.Errorf("warm restart (QAP %.4f) not better than pre-fix (QAP %.4f)", warmFirst.QAP, first.QAP)
	}
	// And the suspicion hazard itself: at the moment the monitor returns,
	// the stale freshness point makes the pre-fix detector suspect a
	// perfectly healthy sender; the rewarmed one does not.
	pre2 := New(cfg)
	if err := pre2.ImportState(st); err != nil {
		t.Fatal(err)
	}
	if !pre2.Suspect(resumeAt) {
		t.Error("pre-fix detector does not suspect at restart — stale fp hazard gone?")
	}
	warm2 := New(cfg)
	if err := warm2.ImportState(st); err != nil {
		t.Fatal(err)
	}
	warm2.Rewarm(0)
	if warm2.Suspect(resumeAt) {
		t.Error("rewarmed detector suspects at restart — spurious suspicion")
	}
}
