package core

import "repro/internal/clock"

// slotEvaluator measures the output QoS of a running detector over one
// feedback time slot ("in a specific time slot, we adjust the parameters
// of SFD only one time, based on feedback information", §IV-A).
//
// Because no real crash happens while the monitored process is alive, TD
// is measured as the worst-case detection latency the current parameters
// imply: if the sender crashed immediately after sending heartbeat k, the
// monitor would suspect at the freshness point computed for k+1, so
// TD_k = FP_{k+1} − σ_k (σ_k = the send timestamp carried in heartbeat
// k). Mistakes are observed directly: a heartbeat arriving after the
// freshness point expired means the suspicion that started at FP was
// wrong, with duration (arrival − FP).
type slotEvaluator struct {
	tdSum      float64 // ns
	tdCount    int64
	mistakes   int64
	mistakeDur clock.Duration
	start      clock.Time
	started    bool
	arrivals   int
}

// begin opens a new slot at instant t.
func (s *slotEvaluator) begin(t clock.Time) {
	*s = slotEvaluator{start: t, started: true}
}

// addTD records one worst-case detection-time sample.
func (s *slotEvaluator) addTD(td clock.Duration) {
	if td < 0 {
		td = 0
	}
	s.tdSum += float64(td)
	s.tdCount++
}

// addMistake records one wrong suspicion lasting [from, to). Only the
// portion inside the current slot is charged: a suspicion that began
// before the slot opened was already the previous slot's mistake up to
// the boundary, and charging its full duration here could exceed the
// slot span and floor QAP at 0.
func (s *slotEvaluator) addMistake(from, to clock.Time) {
	if s.started && from.Before(s.start) {
		from = s.start
	}
	dur := to.Sub(from)
	if dur < 0 {
		dur = 0
	}
	s.mistakes++
	s.mistakeDur += dur
}

// measure closes the slot at instant end and returns the slot QoS.
// ok is false when the slot carries no information (no TD samples or a
// zero-length span).
func (s *slotEvaluator) measure(end clock.Time) (QoS, bool) {
	span := end.Sub(s.start)
	if !s.started || s.tdCount == 0 || span <= 0 {
		return QoS{}, false
	}
	q := QoS{
		TD: clock.Duration(s.tdSum / float64(s.tdCount)),
		MR: float64(s.mistakes) / span.Seconds(),
	}
	// Overlapping mistakes can still overrun the span; clamp so QAP
	// stays in [0, 1] instead of going negative.
	md := s.mistakeDur
	if md > span {
		md = span
	}
	q.QAP = 1 - float64(md)/float64(span)
	return q, true
}
