package core

import (
	"errors"
	"testing"

	"repro/internal/clock"
)

// stateTestConfig is small enough to exercise slot closes quickly and
// uses a known interval so gap filling is deterministic.
func stateTestConfig() Config {
	return Config{
		WindowSize:     16,
		Interval:       clock.Second,
		InitialMargin:  200 * clock.Millisecond,
		Alpha:          100 * clock.Millisecond,
		Beta:           0.5,
		SlotHeartbeats: 8,
		MaxMargin:      10 * clock.Second,
		FillGaps:       true,
		MaxGapFill:     8,
	}
}

// feed drives seqs [from, to] with a fixed 10 ms delay on a 1 s cadence.
func feed(s *SFD, from, to uint64) clock.Time {
	var recv clock.Time
	for seq := from; seq <= to; seq++ {
		send := clock.Time(int64(seq)) * clock.Time(clock.Second)
		recv = send.Add(10 * clock.Millisecond)
		s.Observe(seq, send, recv)
	}
	return recv
}

func TestStateRoundTripEquivalence(t *testing.T) {
	// With tuning disabled (no targets) the freshness point depends only
	// on the estimation window and the margin, both of which the snapshot
	// carries. A restored detector must track the uninterrupted one
	// exactly on identical subsequent arrivals.
	a := New(stateTestConfig())
	feed(a, 1, 40)

	b := New(stateTestConfig())
	if err := b.ImportState(a.ExportState()); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	if b.State() != a.State() || b.Margin() != a.Margin() {
		t.Fatalf("restored state/margin %v/%v, want %v/%v",
			b.State(), b.Margin(), a.State(), a.Margin())
	}

	for seq := uint64(41); seq <= 80; seq++ {
		send := clock.Time(int64(seq)) * clock.Time(clock.Second)
		recv := send.Add(10 * clock.Millisecond)
		a.Observe(seq, send, recv)
		b.Observe(seq, send, recv)
		if a.FreshnessPoint() != b.FreshnessPoint() {
			t.Fatalf("seq %d: fp diverged: %v vs %v", seq, a.FreshnessPoint(), b.FreshnessPoint())
		}
	}
}

func TestImportStateRejectsInvalid(t *testing.T) {
	base := func() SFDState {
		s := New(stateTestConfig())
		feed(s, 1, 20)
		return s.ExportState()
	}

	cases := []struct {
		name string
		mut  func(*SFDState)
	}{
		{"state out of range", func(st *SFDState) { st.State = State(99) }},
		{"negative state", func(st *SFDState) { st.State = State(-1) }},
		{"step scale too small", func(st *SFDState) { st.StepScale = 0.01 }},
		{"step scale too large", func(st *SFDState) { st.StepScale = 1.5 }},
		{"window seq not increasing", func(st *SFDState) {
			st.Window[2].Seq = st.Window[1].Seq
		}},
		{"last seq behind window head", func(st *SFDState) {
			st.LastSeq = st.Window[len(st.Window)-1].Seq - 1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := base()
			tc.mut(&st)
			d := New(stateTestConfig())
			feed(d, 1, 3) // pre-existing live state must survive a rejected import
			margin, fp := d.Margin(), d.FreshnessPoint()
			if err := d.ImportState(st); !errors.Is(err, ErrBadState) {
				t.Fatalf("got %v, want ErrBadState", err)
			}
			if d.Margin() != margin || d.FreshnessPoint() != fp {
				t.Error("rejected import mutated the detector")
			}
		})
	}
}

func TestImportStateWarmupDowngrade(t *testing.T) {
	s := New(stateTestConfig())
	feed(s, 1, 40)
	st := s.ExportState()
	if st.State != StateTuning && st.State != StateStable {
		t.Fatalf("exporter state = %v, want past warmup", st.State)
	}
	st.Window = st.Window[len(st.Window)-3:] // fewer samples than WindowSize

	d := New(stateTestConfig())
	if err := d.ImportState(st); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	if d.State() != StateWarmup {
		t.Fatalf("state after partial-window import = %v, want warmup", d.State())
	}
	// It leaves warmup honestly once the window refills.
	feed(d, 41, 60)
	if d.State() == StateWarmup {
		t.Fatal("detector stuck in warmup after window refilled")
	}
}

func TestImportStateClampsMargin(t *testing.T) {
	s := New(stateTestConfig())
	feed(s, 1, 20)
	st := s.ExportState()
	st.Margin = clock.Duration(1 << 60) // beyond MaxMargin

	d := New(stateTestConfig())
	if err := d.ImportState(st); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	if d.Margin() != d.Config().MaxMargin {
		t.Fatalf("margin = %v, want clamped to %v", d.Margin(), d.Config().MaxMargin)
	}
}

func TestRewarmFreezesMargin(t *testing.T) {
	// An impossible TD target (while accuracy holds) forces a -β·α margin
	// step every slot, making tuning observable.
	cfg := stateTestConfig()
	cfg.Targets = Targets{MaxTD: clock.Millisecond, MaxMR: 1000, MinQAP: 0}
	cfg.MinMargin = 0

	// Stop after two adjustments (16, 24) so the margin is still well
	// above the floor — a later clamp must not mask a real adjustment.
	a := New(cfg)
	feed(a, 1, 24)
	st := a.ExportState()
	if st.Margin <= cfg.MinMargin {
		t.Fatalf("exporter margin already at floor (%v)", st.Margin)
	}

	b := New(cfg)
	if err := b.ImportState(st); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	b.Rewarm(20)
	if b.Rewarming() != 20 {
		t.Fatalf("Rewarming() = %d, want 20", b.Rewarming())
	}
	frozen := b.Margin()

	// Two slot closes happen inside the grace window (slots of 8 at
	// arrivals 8 and 16 of the 20): margin must not move.
	feed(b, 41, 56)
	if b.Margin() != frozen {
		t.Fatalf("margin moved during rewarm: %v -> %v", frozen, b.Margin())
	}
	if b.Rewarming() != 4 {
		t.Fatalf("Rewarming() = %d, want 4", b.Rewarming())
	}

	// Once the grace window is spent, the feedback loop resumes.
	feed(b, 57, 72)
	if b.Rewarming() != 0 {
		t.Fatalf("Rewarming() = %d, want 0", b.Rewarming())
	}
	if b.Margin() == frozen {
		t.Fatal("margin never resumed tuning after rewarm")
	}
}

func TestRewarmClearsFreshnessPoint(t *testing.T) {
	s := New(stateTestConfig())
	feed(s, 1, 40)
	st := s.ExportState()
	if st.FP == 0 {
		t.Fatal("exporter has no freshness point")
	}

	d := New(stateTestConfig())
	if err := d.ImportState(st); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	if d.FreshnessPoint() == 0 {
		t.Fatal("import alone should keep the snapshot's fp")
	}
	d.Rewarm(8)
	if d.FreshnessPoint() != 0 {
		t.Fatalf("fp after Rewarm = %v, want 0", d.FreshnessPoint())
	}
	if d.Suspect(clock.Time(1 << 60)) {
		t.Fatal("rewarming detector with cleared fp must not suspect")
	}
}

func TestRewarmSkipsDowntimeGap(t *testing.T) {
	// Establish a known n_ag by feeding occasional 1-heartbeat losses.
	s := New(stateTestConfig())
	feed(s, 1, 30)
	st := s.ExportState()

	d := New(stateTestConfig())
	if err := d.ImportState(st); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	d.Rewarm(8)

	// First post-restore arrival jumps 100 seqs (the outage). The gap is
	// filled for the estimator but must NOT enter the n_ag average.
	send := clock.Time(131) * clock.Time(clock.Second)
	d.Observe(131, send, send.Add(10*clock.Millisecond))
	if got := d.ExportState().GapAvg; got != st.GapAvg {
		t.Fatalf("downtime gap entered n_ag: %g -> %g", st.GapAvg, got)
	}

	// The next genuine gap is network loss again and does count.
	send = clock.Time(135) * clock.Time(clock.Second)
	d.Observe(135, send, send.Add(10*clock.Millisecond))
	if got := d.ExportState().GapAvg; got == st.GapAvg {
		t.Fatal("post-rewarm network gap did not update n_ag")
	}
}

func TestRewarmDefaultsToSlot(t *testing.T) {
	s := New(stateTestConfig())
	s.Rewarm(0)
	if s.Rewarming() != s.Config().SlotHeartbeats {
		t.Fatalf("Rewarm(0) = %d arrivals, want one slot (%d)",
			s.Rewarming(), s.Config().SlotHeartbeats)
	}
}
