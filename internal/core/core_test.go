package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/clock"
	"repro/internal/detector"
)

const msC = clock.Millisecond

func TestQoSString(t *testing.T) {
	q := QoS{TD: 300 * msC, MR: 0.01, QAP: 0.995}
	if q.String() == "" {
		t.Fatal("empty QoS string")
	}
	tg := Targets{MaxTD: time500(), MaxMR: 1, MinQAP: 0.9}
	if tg.String() == "" {
		t.Fatal("empty Targets string")
	}
}

func time500() clock.Duration { return 500 * msC }

func TestTargetsValid(t *testing.T) {
	cases := []struct {
		tg   Targets
		want bool
	}{
		{Targets{MaxTD: time500(), MaxMR: 1, MinQAP: 0.9}, true},
		{Targets{}, false},
		{Targets{MaxTD: -1, MaxMR: 1, MinQAP: 0.5}, false},
		{Targets{MaxTD: time500(), MaxMR: -1, MinQAP: 0.5}, false},
		{Targets{MaxTD: time500(), MaxMR: 1, MinQAP: 1.5}, false},
	}
	for i, c := range cases {
		if c.tg.Valid() != c.want {
			t.Errorf("case %d: Valid() = %v, want %v", i, c.tg.Valid(), c.want)
		}
	}
}

func TestDecideAllQuadrants(t *testing.T) {
	tg := Targets{MaxTD: 500 * msC, MaxMR: 0.1, MinQAP: 0.99}
	cases := []struct {
		q    QoS
		want Verdict
	}{
		// All satisfied → stable.
		{QoS{TD: 400 * msC, MR: 0.05, QAP: 0.995}, VerdictStable},
		// TD too slow, accuracy fine → decrease margin.
		{QoS{TD: 700 * msC, MR: 0.05, QAP: 0.995}, VerdictDecrease},
		// TD fine, MR too high → increase margin.
		{QoS{TD: 400 * msC, MR: 0.5, QAP: 0.995}, VerdictIncrease},
		// TD fine, QAP too low → increase margin.
		{QoS{TD: 400 * msC, MR: 0.05, QAP: 0.9}, VerdictIncrease},
		// Both violated → infeasible.
		{QoS{TD: 700 * msC, MR: 0.5, QAP: 0.9}, VerdictInfeasible},
		// Boundary: exactly at target is satisfied.
		{QoS{TD: 500 * msC, MR: 0.1, QAP: 0.99}, VerdictStable},
	}
	for i, c := range cases {
		if got := Decide(c.q, tg); got != c.want {
			t.Errorf("case %d: Decide = %v, want %v", i, got, c.want)
		}
	}
}

func TestSatSigns(t *testing.T) {
	if Sat(VerdictIncrease, 0.3) != 0.3 {
		t.Fatal("increase sign wrong")
	}
	if Sat(VerdictDecrease, 0.3) != -0.3 {
		t.Fatal("decrease sign wrong")
	}
	if Sat(VerdictStable, 0.3) != 0 || Sat(VerdictInfeasible, 0.3) != 0 {
		t.Fatal("neutral verdicts must not move the margin")
	}
}

func TestVerdictAndStateStrings(t *testing.T) {
	for _, v := range []Verdict{VerdictStable, VerdictIncrease, VerdictDecrease, VerdictInfeasible, Verdict(99)} {
		if v.String() == "" {
			t.Fatal("empty verdict string")
		}
	}
	for _, s := range []State{StateWarmup, StateTuning, StateStable, StateInfeasible, State(99)} {
		if s.String() == "" {
			t.Fatal("empty state string")
		}
	}
}

func TestSlotEvaluator(t *testing.T) {
	var s slotEvaluator
	if _, ok := s.measure(clock.Time(clock.Second)); ok {
		t.Fatal("unstarted slot measured ok")
	}
	s.begin(0)
	s.addTD(200 * msC)
	s.addTD(400 * msC)
	s.addMistake(0, clock.Time(100*msC))
	q, ok := s.measure(clock.Time(10 * clock.Second))
	if !ok {
		t.Fatal("slot with samples not ok")
	}
	if q.TD != 300*msC {
		t.Fatalf("TD = %v, want 300ms", q.TD)
	}
	if q.MR != 0.1 {
		t.Fatalf("MR = %v, want 0.1/s", q.MR)
	}
	if q.QAP != 0.99 {
		t.Fatalf("QAP = %v, want 0.99", q.QAP)
	}
}

func TestSlotEvaluatorClamps(t *testing.T) {
	var s slotEvaluator
	s.begin(0)
	s.addTD(-5 * msC)                // clamped to 0
	s.addMistake(clock.Time(msC), 0) // to before from: clamped to 0
	q, ok := s.measure(clock.Time(clock.Second))
	if !ok || q.TD != 0 || q.MR != 1 || q.QAP != 1 {
		t.Fatalf("clamped slot = %+v ok=%v", q, ok)
	}
}

// feedSFD drives an SFD with synthetic periodic heartbeats with the given
// jitter and per-heartbeat loss probability; returns the last recv time.
func feedSFD(s *SFD, n int, iv clock.Duration, jitter clock.Duration, loss float64, seed int64) clock.Time {
	rng := rand.New(rand.NewSource(seed))
	var send, last clock.Time
	for i := 0; i < n; i++ {
		if loss == 0 || rng.Float64() >= loss {
			d := clock.Duration(0)
			if jitter > 0 {
				d = clock.Duration(rng.Intn(int(jitter)))
			}
			recv := send.Add(5 * msC).Add(d)
			if recv <= last {
				recv = last + 1
			}
			s.Observe(uint64(i), send, recv)
			last = recv
		}
		send = send.Add(iv)
	}
	return last
}

func TestSFDDefaults(t *testing.T) {
	s := New(Config{})
	cfg := s.Config()
	def := DefaultConfig()
	if cfg.WindowSize != def.WindowSize || cfg.Alpha != def.Alpha ||
		cfg.Beta != def.Beta || cfg.SlotHeartbeats != def.SlotHeartbeats {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if s.State() != StateWarmup {
		t.Fatal("fresh SFD not in warmup")
	}
	if s.Response() == "" {
		t.Fatal("empty response")
	}
}

func TestSFDInitialMarginClamped(t *testing.T) {
	s := New(Config{InitialMargin: 3600 * clock.Second, MaxMargin: clock.Second})
	if s.Margin() != clock.Second {
		t.Fatalf("SM1 not clamped: %v", s.Margin())
	}
	s2 := New(Config{InitialMargin: -clock.Second})
	if s2.Margin() != 0 {
		t.Fatalf("negative SM1 not clamped: %v", s2.Margin())
	}
}

func TestSFDBasicDetection(t *testing.T) {
	s := New(Config{WindowSize: 50, Interval: 100 * msC, InitialMargin: 50 * msC})
	last := feedSFD(s, 100, 100*msC, 0, 0, 1)
	if !s.Ready() {
		t.Fatal("not ready after 100 heartbeats with WS=50")
	}
	fp := s.FreshnessPoint()
	if !fp.After(last) {
		t.Fatalf("FP %v not after last arrival %v", fp, last)
	}
	if s.Suspect(fp - 1) {
		t.Fatal("suspected before FP")
	}
	if !s.Suspect(fp + 1) {
		t.Fatal("not suspected after FP")
	}
}

func TestSFDSuspicionLevelAccrual(t *testing.T) {
	s := New(Config{WindowSize: 20, Interval: 100 * msC, InitialMargin: 100 * msC})
	feedSFD(s, 40, 100*msC, 0, 0, 1)
	fp := s.FreshnessPoint()
	ea := fp.Add(-s.Margin())
	if lvl := s.SuspicionLevel(ea - 1); lvl != 0 {
		t.Fatalf("level before EA = %v, want 0", lvl)
	}
	mid := s.SuspicionLevel(ea.Add(s.Margin() / 2))
	if mid <= 0.4 || mid >= 0.6 {
		t.Fatalf("level at half margin = %v, want ≈0.5", mid)
	}
	atFP := s.SuspicionLevel(fp)
	if atFP < 0.99 || atFP > 1.01 {
		t.Fatalf("level at FP = %v, want ≈1", atFP)
	}
	if s.SuspicionLevel(fp.Add(s.Margin())) <= atFP {
		t.Fatal("level not growing past FP")
	}
	// Monotone overall.
	prev := -1.0
	for dt := clock.Duration(0); dt < clock.Second; dt += 10 * msC {
		lvl := s.SuspicionLevel(ea.Add(dt))
		if lvl < prev {
			t.Fatalf("suspicion level decreased at +%v", dt)
		}
		prev = lvl
	}
}

func TestSFDTunesDownWhenTDTooSlow(t *testing.T) {
	// Huge initial margin, generous accuracy targets, tight TD target:
	// feedback must shrink the margin slot after slot.
	s := New(Config{
		WindowSize: 50, Interval: 100 * msC,
		InitialMargin: 2 * clock.Second, Alpha: 200 * msC, Beta: 0.5,
		SlotHeartbeats: 100,
		Targets:        Targets{MaxTD: 300 * msC, MaxMR: 10, MinQAP: 0.5},
	})
	feedSFD(s, 2000, 100*msC, 2*msC, 0, 2)
	if s.Margin() >= 2*clock.Second {
		t.Fatalf("margin did not shrink: %v", s.Margin())
	}
	hist := s.History()
	if len(hist) == 0 {
		t.Fatal("no adjustment history")
	}
	sawDecrease := false
	for _, a := range hist {
		if a.Verdict == VerdictDecrease {
			sawDecrease = true
		}
	}
	if !sawDecrease {
		t.Fatal("no decrease verdicts recorded")
	}
}

func TestSFDTunesUpWhenInaccurate(t *testing.T) {
	// Zero initial margin on a jittery link: mistakes are frequent, so
	// with a loose TD target feedback must grow the margin.
	s := New(Config{
		WindowSize: 50, Interval: 100 * msC,
		InitialMargin: 0, Alpha: 50 * msC, Beta: 0.5,
		SlotHeartbeats: 100,
		Targets:        Targets{MaxTD: 5 * clock.Second, MaxMR: 0.0001, MinQAP: 0.9999},
	})
	feedSFD(s, 3000, 100*msC, 80*msC, 0, 3)
	if s.Margin() <= 0 {
		t.Fatalf("margin did not grow: %v", s.Margin())
	}
}

func TestSFDStabilizesWhenSatisfied(t *testing.T) {
	s := New(Config{
		WindowSize: 50, Interval: 100 * msC,
		InitialMargin: 300 * msC, Alpha: 100 * msC, Beta: 0.5,
		SlotHeartbeats: 100,
		Targets:        Targets{MaxTD: clock.Second, MaxMR: 5, MinQAP: 0.5},
	})
	feedSFD(s, 1500, 100*msC, 2*msC, 0, 4)
	if s.State() != StateStable {
		t.Fatalf("state = %v, want stable", s.State())
	}
	// A stable detector keeps its margin.
	if s.Margin() != 300*msC {
		t.Fatalf("stable margin moved: %v", s.Margin())
	}
}

func TestSFDInfeasibleResponse(t *testing.T) {
	// Impossible request: sub-interval detection time AND near-perfect
	// accuracy on a jittery lossy link.
	s := New(Config{
		WindowSize: 50, Interval: 100 * msC,
		InitialMargin: 0, Alpha: 50 * msC, Beta: 0.5,
		SlotHeartbeats:   100,
		Targets:          Targets{MaxTD: msC, MaxMR: 1e-9, MinQAP: 0.999999},
		HaltOnInfeasible: true,
	})
	feedSFD(s, 3000, 100*msC, 80*msC, 0.05, 5)
	if s.State() != StateInfeasible {
		t.Fatalf("state = %v, want infeasible", s.State())
	}
	if s.Response() == "" {
		t.Fatal("no infeasibility response")
	}
	// Margin frozen after halt.
	m := s.Margin()
	feedSFD(s, 500, 100*msC, 80*msC, 0.05, 6)
	if s.Margin() != m {
		t.Fatal("margin moved after HaltOnInfeasible")
	}
}

func TestSFDNoTargetsNoTuning(t *testing.T) {
	s := New(Config{WindowSize: 20, Interval: 100 * msC, InitialMargin: 100 * msC, SlotHeartbeats: 50})
	feedSFD(s, 1000, 100*msC, 10*msC, 0, 7)
	if s.Margin() != 100*msC {
		t.Fatalf("margin moved without targets: %v", s.Margin())
	}
}

func TestSFDGapFillingKeepsEstimateThroughLoss(t *testing.T) {
	mk := func(fill bool) *SFD {
		return New(Config{
			WindowSize: 100, Interval: 100 * msC, InitialMargin: 50 * msC,
			FillGaps: fill, SlotHeartbeats: 1 << 30,
		})
	}
	withFill, withoutFill := mk(true), mk(false)
	feedSFD(withFill, 120, 100*msC, msC, 0.3, 8)
	feedSFD(withoutFill, 120, 100*msC, msC, 0.3, 8)
	// Both must still detect; the filled one keeps a denser window.
	if withFill.est.Len() <= withoutFill.est.Len() {
		t.Fatalf("gap filling did not densify window: %d vs %d",
			withFill.est.Len(), withoutFill.est.Len())
	}
	if withFill.FreshnessPoint() == 0 {
		t.Fatal("no freshness point with gap filling")
	}
}

func TestSFDGapFillCapped(t *testing.T) {
	s := New(Config{
		WindowSize: 50, Interval: 100 * msC, InitialMargin: 50 * msC,
		FillGaps: true, MaxGapFill: 4, SlotHeartbeats: 1 << 30,
	})
	// Two real arrivals around a 1000-heartbeat outage.
	s.Observe(0, 0, clock.Time(5*msC))
	s.Observe(1, clock.Time(100*msC), clock.Time(105*msC))
	s.Observe(1001, clock.Time(100100*msC), clock.Time(100105*msC))
	if s.est.Len() > 3+4 {
		t.Fatalf("gap fill exceeded cap: window len %d", s.est.Len())
	}
}

func TestSFDSetMarginClamps(t *testing.T) {
	s := New(Config{MaxMargin: clock.Second})
	s.SetMargin(5 * clock.Second)
	if s.Margin() != clock.Second {
		t.Fatal("SetMargin above max not clamped")
	}
	s.SetMargin(-clock.Second)
	if s.Margin() != 0 {
		t.Fatal("SetMargin below min not clamped")
	}
}

func TestSFDReset(t *testing.T) {
	s := New(Config{WindowSize: 20, Interval: 100 * msC, InitialMargin: 70 * msC,
		SlotHeartbeats: 50, Targets: Targets{MaxTD: clock.Second, MaxMR: 10, MinQAP: 0.1}})
	feedSFD(s, 500, 100*msC, 10*msC, 0.1, 9)
	s.Reset()
	if s.Margin() != 70*msC || s.State() != StateWarmup || s.FreshnessPoint() != 0 {
		t.Fatal("Reset incomplete")
	}
	if len(s.History()) != 0 {
		t.Fatal("history survived Reset")
	}
}

func TestSFDMistakeAccounting(t *testing.T) {
	// Deterministic scenario: regular heartbeats, then one very late
	// arrival — exactly one mistake must be recorded in the slot.
	s := New(Config{WindowSize: 10, Interval: 100 * msC, InitialMargin: 20 * msC,
		SlotHeartbeats: 1 << 30})
	var send clock.Time
	for i := 0; i < 20; i++ {
		s.Observe(uint64(i), send, send.Add(5*msC))
		send = send.Add(100 * msC)
	}
	if s.slot.mistakes != 0 {
		t.Fatalf("mistakes = %d before late arrival", s.slot.mistakes)
	}
	// Heartbeat 20 arrives 400 ms late — far past the freshness point.
	s.Observe(20, send, send.Add(400*msC))
	if s.slot.mistakes != 1 {
		t.Fatalf("mistakes = %d after late arrival, want 1", s.slot.mistakes)
	}
	if s.slot.mistakeDur <= 0 {
		t.Fatal("mistake duration not recorded")
	}
}

func TestSFDMarginNeverOutsideClampProperty(t *testing.T) {
	f := func(seed int64, jitterRaw, lossRaw uint8) bool {
		jitter := clock.Duration(jitterRaw) * msC / 4
		loss := float64(lossRaw%40) / 100
		s := New(Config{
			WindowSize: 30, Interval: 100 * msC,
			InitialMargin: 100 * msC, Alpha: 400 * msC, Beta: 0.9,
			SlotHeartbeats: 50, MaxMargin: clock.Second,
			Targets: Targets{MaxTD: 150 * msC, MaxMR: 0.001, MinQAP: 0.9999},
		})
		feedSFD(s, 2000, 100*msC, jitter, loss, seed)
		return s.Margin() >= 0 && s.Margin() <= clock.Second
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSFDAdaptiveStepDampsOscillation(t *testing.T) {
	// With a huge step, fixed-gain feedback overshoots the target band
	// and oscillates; the adaptive step must flip direction no more
	// often and end in a sane state.
	run := func(adaptive bool) (*SFD, int) {
		s := New(Config{
			WindowSize: 50, Interval: 100 * msC,
			InitialMargin: 2 * clock.Second, Alpha: 1600 * msC, Beta: 0.5,
			SlotHeartbeats: 100, AdaptiveStep: adaptive,
			Targets: Targets{MaxTD: 400 * msC, MaxMR: 10, MinQAP: 0.5},
		})
		feedSFD(s, 6000, 100*msC, 5*msC, 0, 77)
		flips, prevDir := 0, 0
		hist := s.History()
		for i := 1; i < len(hist); i++ {
			d := 0
			if hist[i].Margin > hist[i-1].Margin {
				d = 1
			} else if hist[i].Margin < hist[i-1].Margin {
				d = -1
			}
			if d != 0 && prevDir != 0 && d != prevDir {
				flips++
			}
			if d != 0 {
				prevDir = d
			}
		}
		return s, flips
	}
	fixedSFD, fixedFlips := run(false)
	adaptiveSFD, adaptiveFlips := run(true)
	if adaptiveFlips > fixedFlips {
		t.Fatalf("adaptive step flipped more: %d vs %d", adaptiveFlips, fixedFlips)
	}
	// Both must keep the margin inside the clamp; adaptive should not be
	// stuck at the initial value.
	if adaptiveSFD.Margin() == 2*clock.Second && len(adaptiveSFD.History()) > 2 {
		t.Fatal("adaptive step never moved the margin")
	}
	_ = fixedSFD
}

func TestSFDAdaptiveStepResets(t *testing.T) {
	s := New(Config{AdaptiveStep: true, Interval: 100 * msC, WindowSize: 20,
		SlotHeartbeats: 50, Alpha: 400 * msC,
		Targets: Targets{MaxTD: 200 * msC, MaxMR: 10, MinQAP: 0.5}})
	feedSFD(s, 1000, 100*msC, 5*msC, 0, 78)
	s.Reset()
	if s.stepScale != 1 || s.lastDir != 0 {
		t.Fatal("adaptive state survived Reset")
	}
}

func TestSelfTunerWrapsChen(t *testing.T) {
	ch := detector.NewChen(50, 100*msC, 2*clock.Second)
	st := NewSelfTuner(TunableChen{ch}, TunerOptions{
		Alpha: 200 * msC, Beta: 0.5, SlotHeartbeats: 100,
		Targets: Targets{MaxTD: 300 * msC, MaxMR: 10, MinQAP: 0.5},
	})
	rng := rand.New(rand.NewSource(11))
	var send clock.Time
	for i := 0; i < 2000; i++ {
		recv := send.Add(5 * msC).Add(clock.Duration(rng.Intn(int(2 * msC))))
		st.Observe(uint64(i), send, recv)
		send = send.Add(100 * msC)
	}
	if ch.Alpha() >= 2*clock.Second {
		t.Fatalf("SelfTuner did not shrink Chen's α: %v", ch.Alpha())
	}
	if st.State() == StateWarmup {
		t.Fatal("tuner stuck in warmup")
	}
	if len(st.History()) == 0 {
		t.Fatal("no history")
	}
	if st.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestSelfTunerWrapsFixed(t *testing.T) {
	fx := detector.NewFixed(5*clock.Second, 10)
	st := NewSelfTuner(TunableFixed{fx}, TunerOptions{
		Alpha: clock.Second, Beta: 0.5, SlotHeartbeats: 50,
		Targets:  Targets{MaxTD: 500 * msC, MaxMR: 10, MinQAP: 0.5},
		MinParam: 10 * msC,
	})
	var send clock.Time
	for i := 0; i < 1000; i++ {
		st.Observe(uint64(i), send, send.Add(3*msC))
		send = send.Add(100 * msC)
	}
	if fx.Timeout() >= 5*clock.Second {
		t.Fatalf("SelfTuner did not shrink Fixed timeout: %v", fx.Timeout())
	}
	if fx.Timeout() < 10*msC {
		t.Fatal("MinParam clamp violated")
	}
}

func TestSelfTunerResetAndDelegation(t *testing.T) {
	ch := detector.NewChen(10, 100*msC, 100*msC)
	st := NewSelfTuner(TunableChen{ch}, TunerOptions{})
	var send clock.Time
	for i := 0; i < 30; i++ {
		st.Observe(uint64(i), send, send.Add(msC))
		send = send.Add(100 * msC)
	}
	if !st.Ready() {
		t.Fatal("Ready not delegated")
	}
	fp := st.FreshnessPoint()
	if fp == 0 || fp != ch.FreshnessPoint() {
		t.Fatal("FreshnessPoint not delegated")
	}
	if st.Suspect(fp+1) != ch.Suspect(fp+1) {
		t.Fatal("Suspect not delegated")
	}
	st.Reset()
	if st.State() != StateWarmup || ch.FreshnessPoint() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func BenchmarkSFDObserve(b *testing.B) {
	s := New(Config{WindowSize: 1000, Interval: 100 * msC, InitialMargin: 100 * msC,
		Targets: Targets{MaxTD: clock.Second, MaxMR: 1, MinQAP: 0.99}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := clock.Time(i) * clock.Time(100*msC)
		s.Observe(uint64(i), t, t.Add(3*msC))
	}
}
