package core

// Regression tests for the tuning-loop bugs fixed alongside the metrics
// layer (ISSUE 3): fillGap synthesizing arrivals later than the real
// arrival of the triggering heartbeat, and slotEvaluator charging a
// boundary-crossing mistake's full duration to one slot.

import (
	"testing"

	"repro/internal/clock"
)

// feedRegular drives s with heartbeats 0..n-1 at interval dt and a fixed
// 1 ms delivery delay, returning the last (send, recv).
func feedRegular(s *SFD, n int, dt clock.Duration) (send, recv clock.Time) {
	for i := 0; i < n; i++ {
		send = clock.Time(i) * clock.Time(dt)
		recv = send.Add(msC)
		s.Observe(uint64(i), send, recv)
	}
	return send, recv
}

// TestFillGapClampsToRealArrival reproduces the overshoot directly: after
// a long loss burst the compounded synthetic delay d_j = Δt·n_ag + d_{j−1}
// plus the per-position send offset exceeds the real arrival time of the
// heartbeat that ended the burst. Every synthetic sample handed to the
// estimator must be clamped to that real arrival — the estimator's
// contract is non-decreasing arrivals, and a "future" sample distorts
// EA_{k+1} for a full window length.
func TestFillGapClampsToRealArrival(t *testing.T) {
	dt := 100 * msC
	s := New(Config{WindowSize: 16, Interval: dt, FillGaps: true, MaxGapFill: 8})
	feedRegular(s, 10, dt) // seqs 0..9, last arrival 901 ms

	// Burst: seqs 10..24 lost, seq 25 arrives. Replicate Observe's gap
	// handling by hand so the estimator can be inspected between the
	// synthetic fills and the real observation.
	const seq = 25
	send := clock.Time(seq) * clock.Time(dt)
	recv := send.Add(msC)
	gap := int(seq - s.lastSeq - 1)
	s.gapAvg.Add(float64(gap))
	s.fillGap(seq, gap, recv)

	if lastSeq, lastArr, ok := s.est.Last(); !ok || lastArr.After(recv) {
		t.Fatalf("synthetic arrival for seq %d at %v is later than the real arrival %v of seq %d",
			lastSeq, lastArr, recv, seq)
	}
}

// TestFillGapExpectedArrivalBounded is the end-to-end form: with the
// clamp in place, the post-burst expected arrival stays near the real
// schedule; with pre-fix future samples in the window it drifts several
// intervals late (measured: EA = recv+437ms pre-fix vs recv+250ms fixed
// for this exact scenario).
func TestFillGapExpectedArrivalBounded(t *testing.T) {
	dt := 100 * msC
	s := New(Config{WindowSize: 16, Interval: dt, FillGaps: true, MaxGapFill: 8})
	feedRegular(s, 10, dt)

	send := clock.Time(25) * clock.Time(dt)
	recv := send.Add(msC)
	s.Observe(25, send, recv)

	ea, ok := s.est.Expected()
	if !ok {
		t.Fatal("estimator has no expected arrival after the burst")
	}
	if limit := recv.Add(3 * dt); ea.After(limit) {
		t.Fatalf("EA after loss burst = %v, want ≤ %v (recv %v + 3Δt): future-dated synthetic samples inflated the estimate", ea, limit, recv)
	}
}

// TestSlotMistakeSplitAtBoundary: a suspicion that began in the previous
// slot must only charge this slot for the portion after the boundary.
// Pre-fix the full duration landed here, so mistakeDur could exceed the
// slot span and floor QAP at 0.
func TestSlotMistakeSplitAtBoundary(t *testing.T) {
	sec := clock.Time(clock.Second)
	var s slotEvaluator
	s.begin(10 * sec)
	s.addTD(200 * msC)
	// Suspicion began at t=2s (8 s before this slot opened); the
	// disproving heartbeat arrived at t=11s — 9 s of mistake, only 1 s of
	// which belongs to this slot.
	s.addMistake(2*sec, 11*sec)
	q, ok := s.measure(12 * sec) // span 2 s
	if !ok {
		t.Fatal("slot did not measure")
	}
	if s.mistakeDur != 1*clock.Second {
		t.Fatalf("mistakeDur = %v, want 1s (split at the slot boundary)", s.mistakeDur)
	}
	if want := 0.5; q.QAP != want {
		t.Fatalf("QAP = %v, want %v — boundary-crossing mistake over-charged the slot", q.QAP, want)
	}
}

// TestSlotMistakeWithinSlotUnchanged: the split must not alter mistakes
// fully contained in the slot.
func TestSlotMistakeWithinSlotUnchanged(t *testing.T) {
	sec := clock.Time(clock.Second)
	var s slotEvaluator
	s.begin(10 * sec)
	s.addTD(200 * msC)
	s.addMistake(10*sec+clock.Time(500*msC), 11*sec)
	if s.mistakeDur != 500*msC {
		t.Fatalf("mistakeDur = %v, want 500ms", s.mistakeDur)
	}
}

// TestSlotQAPNeverNegative: even if accounting ever overruns the span,
// measure clamps mistake time to the span (QAP ≥ 0) instead of going
// negative.
func TestSlotQAPNeverNegative(t *testing.T) {
	sec := clock.Time(clock.Second)
	var s slotEvaluator
	s.begin(10 * sec)
	s.addTD(100 * msC)
	s.addMistake(10*sec, 11*sec)
	s.addMistake(10*sec, 11*sec) // overlapping mistakes can still overrun
	q, ok := s.measure(11 * sec)
	if !ok {
		t.Fatal("slot did not measure")
	}
	if q.QAP < 0 || q.QAP > 1 {
		t.Fatalf("QAP = %v out of [0,1]", q.QAP)
	}
}
