package core

import (
	"testing"

	"repro/internal/clock"
)

// Edge-condition tests for SFD beyond the main behavioural suite.

func TestSFDHistoryCapHonored(t *testing.T) {
	s := New(Config{
		WindowSize: 10, Interval: 100 * msC, InitialMargin: 50 * msC,
		SlotHeartbeats: 20, HistoryCap: 5,
		Targets: Targets{MaxTD: clock.Second, MaxMR: 10, MinQAP: 0.5},
	})
	feedSFD(s, 5000, 100*msC, 2*msC, 0, 41)
	if len(s.History()) > 5 {
		t.Fatalf("history grew past cap: %d", len(s.History()))
	}
}

func TestSFDZeroMarginSuspicionLevel(t *testing.T) {
	// A zero margin makes the accrual denominator degenerate; the level
	// must stay finite and still cross 1 after the freshness point.
	s := New(Config{WindowSize: 10, Interval: 100 * msC, InitialMargin: 0,
		MinMargin: 0, SlotHeartbeats: 1 << 30})
	last := feedSFD(s, 30, 100*msC, 0, 0, 42)
	fp := s.FreshnessPoint()
	lvl := s.SuspicionLevel(fp + clock.Time(10*msC))
	if lvl <= 0 || lvl != lvl /* NaN check */ {
		t.Fatalf("degenerate level = %v", lvl)
	}
	_ = last
}

func TestSFDGapFillWithoutIntervalKnowledge(t *testing.T) {
	// Interval = 0 and only one arrival before a gap: fillGap must not
	// panic or fabricate samples without an interval estimate.
	s := New(Config{WindowSize: 10, FillGaps: true, SlotHeartbeats: 1 << 30})
	s.Observe(0, 0, clock.Time(5*msC))
	s.Observe(10, clock.Time(clock.Second), clock.Time(clock.Second).Add(5*msC))
	if s.est.Len() > 2 {
		t.Fatalf("fabricated %d samples without an interval", s.est.Len())
	}
}

func TestSFDSlotSpanningLoss(t *testing.T) {
	// A slot that contains only losses (no arrivals) must not divide by
	// zero or emit a bogus adjustment when the next arrival finally
	// lands.
	s := New(Config{WindowSize: 10, Interval: 100 * msC, InitialMargin: 50 * msC,
		SlotHeartbeats: 5, Targets: Targets{MaxTD: clock.Second, MaxMR: 10, MinQAP: 0.1}})
	var send clock.Time
	for i := 0; i < 20; i++ {
		s.Observe(uint64(i), send, send.Add(3*msC))
		send = send.Add(100 * msC)
	}
	// 50 lost heartbeats (sequence jump), then arrivals resume.
	send = send.Add(50 * 100 * msC)
	for i := 70; i < 90; i++ {
		s.Observe(uint64(i), send, send.Add(3*msC))
		send = send.Add(100 * msC)
	}
	if s.FreshnessPoint() == 0 {
		t.Fatal("detector lost its freshness point across the outage")
	}
	if s.Margin() < 0 || s.Margin() > s.Config().MaxMargin {
		t.Fatalf("margin out of clamp after outage: %v", s.Margin())
	}
}

func TestDecideBoundaryExactness(t *testing.T) {
	// Measured exactly equal to targets on all three axes is satisfied
	// (the paper defines violation as QoS > Q̄oS).
	tg := Targets{MaxTD: 100 * msC, MaxMR: 0.5, MinQAP: 0.99}
	if v := Decide(QoS{TD: 100 * msC, MR: 0.5, QAP: 0.99}, tg); v != VerdictStable {
		t.Fatalf("boundary verdict = %v", v)
	}
}

func TestSelfTunerInfeasibleHalts(t *testing.T) {
	st := NewSelfTuner(newFixedForTest(), TunerOptions{
		SlotHeartbeats: 50, HaltOnInfeasible: true,
		Targets: Targets{MaxTD: clock.Duration(1), MaxMR: 1e-12, MinQAP: 0.999999999},
	})
	var send clock.Time
	for i := 0; i < 10000; i++ {
		// Jittery enough to violate accuracy, slow enough to violate TD.
		recv := send.Add(clock.Duration(i%7) * 20 * msC)
		if recv <= send {
			recv = send + 1
		}
		st.Observe(uint64(i), send, recv)
		send = send.Add(100 * msC)
	}
	if st.State() != StateInfeasible {
		t.Fatalf("state = %v, want infeasible", st.State())
	}
}

func newFixedForTest() *fixedShim { return &fixedShim{timeout: clock.Second} }

// fixedShim is a minimal local Tunable target so the SelfTuner test does
// not depend on detector internals.
type fixedShim struct {
	timeout clock.Duration
	last    clock.Time
	n       int
}

func (f *fixedShim) Observe(seq uint64, send, recv clock.Time) { f.last = recv; f.n++ }
func (f *fixedShim) FreshnessPoint() clock.Time {
	if f.n == 0 {
		return 0
	}
	return f.last.Add(f.timeout)
}
func (f *fixedShim) Suspect(now clock.Time) bool { return f.n > 0 && now.After(f.FreshnessPoint()) }
func (f *fixedShim) Ready() bool                 { return f.n >= 2 }
func (f *fixedShim) Name() string                { return "shim" }
func (f *fixedShim) Reset()                      { *f = fixedShim{timeout: f.timeout} }

// Tunable implementation.
func (f *fixedShim) TuningParam() clock.Duration     { return f.timeout }
func (f *fixedShim) SetTuningParam(d clock.Duration) { f.timeout = d }
