package core

import (
	"errors"
	"fmt"

	"repro/internal/clock"
	"repro/internal/detector"
)

// SFDState is the serializable form of an SFD's mutable state — the
// estimation window, the tuned safety margin, and the feedback-loop
// position. It deliberately excludes Config: a restarting monitor
// rebuilds detectors through its factory, so the configuration comes
// from code (possibly newer code) while the learned state comes from the
// snapshot. All times are in the exporting process's clock domain; the
// persistence layer rebases them before import.
type SFDState struct {
	Margin clock.Duration
	FP     clock.Time
	State  State

	SlotIndex int

	LastSeq   uint64
	LastSend  clock.Time
	LastDelay clock.Duration
	HaveSeq   bool
	GapAvg    float64
	GapAvgOK  bool

	StepScale float64
	LastDir   int8

	Window []detector.ArrivalSample
}

// ErrBadState reports an SFDState that fails validation on import.
var ErrBadState = errors.New("core: invalid detector state")

// ExportState captures the detector's mutable state for persistence.
// The adjustment history is not exported: it is an observability log,
// not an input to the feedback loop.
func (s *SFD) ExportState() SFDState {
	return SFDState{
		Margin:    s.margin,
		FP:        s.fp,
		State:     s.state,
		SlotIndex: s.slotIndex,
		LastSeq:   s.lastSeq,
		LastSend:  s.lastSend,
		LastDelay: s.lastDelay,
		HaveSeq:   s.haveSeq,
		GapAvg:    s.gapAvg.Value(),
		GapAvgOK:  s.gapAvg.Initialized(),
		StepScale: s.stepScale,
		LastDir:   int8(s.lastDir),
		Window:    s.est.Export(nil),
	}
}

// ImportState replaces the detector's mutable state with st, validating
// it first: a snapshot that fails validation must leave the detector
// cold rather than half-restored. The estimation window is replayed
// through the estimator, so windows larger than the configured size keep
// the newest samples and the running sums are rebuilt from scratch.
func (s *SFD) ImportState(st SFDState) error {
	if st.State < StateWarmup || st.State > StateInfeasible {
		return fmt.Errorf("%w: state %d out of range", ErrBadState, int(st.State))
	}
	if st.StepScale != 0 && (st.StepScale < 1.0/16 || st.StepScale > 1) {
		return fmt.Errorf("%w: step scale %g out of [1/16, 1]", ErrBadState, st.StepScale)
	}
	for i := 1; i < len(st.Window); i++ {
		if st.Window[i].Seq <= st.Window[i-1].Seq {
			return fmt.Errorf("%w: window sequence not increasing at %d", ErrBadState, i)
		}
	}
	if st.HaveSeq && len(st.Window) > 0 && st.LastSeq < st.Window[len(st.Window)-1].Seq {
		return fmt.Errorf("%w: last seq %d behind window head", ErrBadState, st.LastSeq)
	}

	s.Reset()
	s.est.Import(st.Window)
	s.margin = st.Margin
	if s.margin < s.cfg.MinMargin {
		s.margin = s.cfg.MinMargin
	}
	if s.margin > s.cfg.MaxMargin {
		s.margin = s.cfg.MaxMargin
	}
	s.fp = st.FP
	s.state = st.State
	if s.state != StateWarmup && !s.est.Full() {
		// A smaller restored window than the snapshot's detector had (or
		// a shrunk WindowSize) re-enters warmup honestly.
		s.state = StateWarmup
	}
	s.slotIndex = st.SlotIndex
	s.lastSeq, s.lastSend, s.lastDelay, s.haveSeq = st.LastSeq, st.LastSend, st.LastDelay, st.HaveSeq
	if st.GapAvgOK {
		s.gapAvg.Set(st.GapAvg)
	}
	if st.StepScale != 0 {
		s.stepScale = st.StepScale
	}
	s.lastDir = int(st.LastDir)
	return nil
}

// Rewarm enters the warm-restart grace window after ImportState: the
// stale freshness point is cleared (the pre-outage suspicion deadline
// proves nothing about a sender that kept running while the monitor was
// down), the interrupted slot is discarded, and the safety margin is
// frozen for the next n fresh arrivals (n <= 0 defaults to one slot's
// worth). The first post-restore arrival still fills the downtime gap
// with the paper's d_i = Δt·n_ag + d_{i−1} rule — seq jumped while the
// monitor was away — but the gap is excluded from the n_ag average.
func (s *SFD) Rewarm(n int) {
	if n <= 0 {
		n = s.cfg.SlotHeartbeats
	}
	s.rewarmLeft = n
	s.rewarmGapSkip = true
	s.fp = 0
	s.slot = slotEvaluator{}
	s.slotCount = 0
}

// Rewarming reports how many fresh arrivals remain before the margin
// unfreezes (0 when not in a rewarm grace window).
func (s *SFD) Rewarming() int { return s.rewarmLeft }
