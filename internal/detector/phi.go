package detector

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/stats"
	"repro/internal/window"
)

// PhiMaxThreshold is the largest Φ the paper's sweep reaches
// ("For φ FD, the parameters are set the same as in [30-31]:
// Φ ∈ [0.5, 16]") — beyond it the original implementation's rounding
// errors "prevent to compute points in the conservative range".
const PhiMaxThreshold = 16.0

// Phi implements the φ accrual failure detector (§III, Eq. 9–10): it
// maintains a sliding window of heartbeat inter-arrival times, fits a
// normal distribution N(μ, σ²), and reports the suspicion level
// φ(t_now) = −log10(P_later(t_now − T_last)). An application-supplied
// threshold Φ converts the accrual output into a binary suspicion and an
// effective freshness point.
type Phi struct {
	threshold float64
	ia        *window.Samples // inter-arrival times (ns)
	minSigma  float64         // variance floor (ns)
	last      clock.Time
	haveLast  bool
}

// NewPhi returns a φ FD with the given window size and threshold Φ.
// minSigma guards the normal fit against zero variance during warm-up
// (the reference implementation uses a similar floor); pass 0 for the
// default of 10 µs.
func NewPhi(ws int, threshold float64, minSigma clock.Duration) *Phi {
	if ws <= 0 {
		ws = DefaultWindowSize
	}
	if threshold <= 0 {
		threshold = 1
	}
	if minSigma <= 0 {
		minSigma = 10 * clock.Microsecond
	}
	return &Phi{threshold: threshold, ia: window.NewSamples(ws), minSigma: float64(minSigma)}
}

// Observe implements Detector.
func (p *Phi) Observe(seq uint64, send, recv clock.Time) {
	if p.haveLast {
		iv := float64(recv.Sub(p.last))
		if iv > 0 {
			p.ia.Push(iv)
		}
	}
	p.last, p.haveLast = recv, true
}

// mu and sigma return the fitted distribution parameters in ns.
func (p *Phi) dist() (mu, sigma float64, ok bool) {
	if p.ia.Len() < 2 {
		return 0, 0, false
	}
	mu = p.ia.Mean()
	sigma = p.ia.StdDev()
	if sigma < p.minSigma {
		sigma = p.minSigma
	}
	return mu, sigma, true
}

// SuspicionLevel implements Accrual: the current φ value at instant now.
func (p *Phi) SuspicionLevel(now clock.Time) float64 {
	mu, sigma, ok := p.dist()
	if !ok || !p.haveLast {
		return 0
	}
	elapsed := float64(now.Sub(p.last))
	return stats.Phi(elapsed, mu, sigma)
}

// FreshnessPoint implements Detector: the absolute instant at which φ
// crosses the configured threshold, T_last + PhiInverse(Φ, μ, σ).
func (p *Phi) FreshnessPoint() clock.Time {
	mu, sigma, ok := p.dist()
	if !ok || !p.haveLast {
		return 0
	}
	return p.last.Add(clock.Duration(stats.PhiInverse(p.threshold, mu, sigma)))
}

// Suspect implements Detector.
func (p *Phi) Suspect(now clock.Time) bool {
	if !p.haveLast || p.ia.Len() < 2 {
		return false
	}
	return p.SuspicionLevel(now) > p.threshold
}

// Ready implements Detector.
func (p *Phi) Ready() bool { return p.ia.Full() }

// Name implements Detector.
func (p *Phi) Name() string { return fmt.Sprintf("φ(Φ=%g)", p.threshold) }

// Threshold returns the configured Φ.
func (p *Phi) Threshold() float64 { return p.threshold }

// Reset implements Detector.
func (p *Phi) Reset() {
	p.ia.Reset()
	p.last, p.haveLast = 0, false
}
