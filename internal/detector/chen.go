package detector

import (
	"fmt"

	"repro/internal/clock"
)

// Chen implements Chen et al.'s adaptive failure detector (§III, Eq. 2–3):
// the next freshness point is the estimated next arrival time plus a
// constant safety margin α. The paper sweeps α ∈ [0, 10000] (ms) to trace
// the detector's QoS curve.
type Chen struct {
	est   *ArrivalEstimator
	alpha clock.Duration
	fp    clock.Time
}

// NewChen returns a Chen FD with the given window size, known sending
// interval (0 to estimate from arrivals), and safety margin α.
func NewChen(ws int, interval, alpha clock.Duration) *Chen {
	if alpha < 0 {
		alpha = 0
	}
	return &Chen{est: NewArrivalEstimator(ws, interval), alpha: alpha}
}

// Observe implements Detector.
func (c *Chen) Observe(seq uint64, send, recv clock.Time) {
	c.est.Observe(seq, recv)
	if ea, ok := c.est.Expected(); ok {
		c.fp = ea.Add(c.alpha)
	}
}

// FreshnessPoint implements Detector.
func (c *Chen) FreshnessPoint() clock.Time { return c.fp }

// Suspect implements Detector.
func (c *Chen) Suspect(now clock.Time) bool {
	return c.fp != 0 && now.After(c.fp)
}

// Ready implements Detector.
func (c *Chen) Ready() bool { return c.est.Full() }

// Name implements Detector.
func (c *Chen) Name() string { return fmt.Sprintf("Chen(α=%v)", c.alpha) }

// Alpha returns the configured safety margin.
func (c *Chen) Alpha() clock.Duration { return c.alpha }

// SetAlpha changes the safety margin. Chen FD itself never does this —
// the paper's point is precisely that its α must be hand-picked — but the
// general self-tuning method of §IV-A can drive any timeout-based FD, and
// core.SelfTuner uses this hook to retrofit Chen with feedback.
func (c *Chen) SetAlpha(alpha clock.Duration) {
	if alpha < 0 {
		alpha = 0
	}
	c.alpha = alpha
	if ea, ok := c.est.Expected(); ok {
		c.fp = ea.Add(c.alpha)
	}
}

// Estimator exposes the arrival estimator (shared with SFD).
func (c *Chen) Estimator() *ArrivalEstimator { return c.est }

// Reset implements Detector.
func (c *Chen) Reset() {
	c.est.Reset()
	c.fp = 0
}
