package detector

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/clock"
)

const msD = clock.Millisecond

// feedRegular feeds n perfectly periodic heartbeats (interval iv, delay d)
// and returns the last recv time.
func feedRegular(d Detector, n int, iv, delay clock.Duration) clock.Time {
	var last clock.Time
	for i := 0; i < n; i++ {
		send := clock.Time(i) * clock.Time(iv)
		recv := send.Add(delay)
		d.Observe(uint64(i), send, recv)
		last = recv
	}
	return last
}

func TestArrivalEstimatorRegular(t *testing.T) {
	e := NewArrivalEstimator(10, 100*msD)
	for i := 0; i < 5; i++ {
		e.Observe(uint64(i), clock.Time(i)*clock.Time(100*msD))
	}
	ea, ok := e.Expected()
	if !ok {
		t.Fatal("Expected not ready")
	}
	want := clock.Time(5 * 100 * int64(msD))
	if ea != want {
		t.Fatalf("EA = %v, want %v", ea, want)
	}
}

func TestArrivalEstimatorEstimatedInterval(t *testing.T) {
	e := NewArrivalEstimator(10, 0)
	if _, ok := e.Expected(); ok {
		t.Fatal("Expected ready with no data")
	}
	e.Observe(0, 0)
	if _, ok := e.Expected(); ok {
		t.Fatal("Expected ready with single arrival and unknown interval")
	}
	for i := 1; i < 6; i++ {
		e.Observe(uint64(i), clock.Time(i)*clock.Time(80*msD))
	}
	if got := e.Interval(); got != 80*msD {
		t.Fatalf("Interval = %v, want 80ms", got)
	}
	ea, ok := e.Expected()
	if !ok || ea != clock.Time(6*80*int64(msD)) {
		t.Fatalf("EA = %v (ok=%v), want 480ms", ea, ok)
	}
}

func TestArrivalEstimatorLossGap(t *testing.T) {
	// Sequence 0,1,2,5,6 — gap of 2 lost heartbeats. With interval
	// estimated per sequence step, Interval stays ≈ the true Δt.
	e := NewArrivalEstimator(10, 0)
	for _, seq := range []uint64{0, 1, 2, 5, 6} {
		e.Observe(seq, clock.Time(seq)*clock.Time(50*msD))
	}
	if got := e.Interval(); got != 50*msD {
		t.Fatalf("Interval across gap = %v, want 50ms", got)
	}
	ea, _ := e.Expected()
	if ea != clock.Time(7*50*int64(msD)) {
		t.Fatalf("EA = %v, want 350ms", ea)
	}
}

func TestArrivalEstimatorEviction(t *testing.T) {
	e := NewArrivalEstimator(3, 10*msD)
	for i := 0; i < 20; i++ {
		e.Observe(uint64(i), clock.Time(i)*clock.Time(10*msD))
	}
	if e.Len() != 3 || !e.Full() {
		t.Fatalf("window not bounded: len=%d", e.Len())
	}
	ea, _ := e.Expected()
	if ea != clock.Time(20*10*int64(msD)) {
		t.Fatalf("EA after eviction = %v, want 200ms", ea)
	}
}

func TestArrivalEstimatorConstantOffsetDelay(t *testing.T) {
	// Constant network delay shifts EA by exactly that delay.
	e := NewArrivalEstimator(10, 100*msD)
	const delay = 35 * msD
	for i := int64(0); i < 8; i++ {
		e.Observe(uint64(i), clock.Time(i*100*int64(msD)+int64(delay)))
	}
	ea, _ := e.Expected()
	want := clock.Time(8*100*int64(msD) + int64(delay))
	if ea != want {
		t.Fatalf("EA = %v, want %v", ea, want)
	}
}

func TestArrivalEstimatorReset(t *testing.T) {
	e := NewArrivalEstimator(4, 10*msD)
	e.Observe(0, 5)
	e.Reset()
	if _, _, ok := e.Last(); ok {
		t.Fatal("Last ok after Reset")
	}
	if _, ok := e.Expected(); ok {
		t.Fatal("Expected ok after Reset")
	}
}

func TestChenFreshnessPoint(t *testing.T) {
	c := NewChen(10, 100*msD, 40*msD)
	feedRegular(c, 5, 100*msD, 0)
	want := clock.Time(5*100*int64(msD) + 40*int64(msD))
	if c.FreshnessPoint() != want {
		t.Fatalf("FP = %v, want %v", c.FreshnessPoint(), want)
	}
	if c.Suspect(want - 1) {
		t.Fatal("suspected before FP")
	}
	if !c.Suspect(want + 1) {
		t.Fatal("not suspected after FP")
	}
}

func TestChenNegativeAlphaClamped(t *testing.T) {
	c := NewChen(10, 100*msD, -5*msD)
	if c.Alpha() != 0 {
		t.Fatal("negative alpha not clamped")
	}
}

func TestChenReadyAfterWindowFull(t *testing.T) {
	c := NewChen(4, 100*msD, 0)
	feedRegular(c, 3, 100*msD, 0)
	if c.Ready() {
		t.Fatal("Ready before window full")
	}
	feedRegular(c, 5, 100*msD, 0)
	if !c.Ready() {
		t.Fatal("not Ready after window full")
	}
}

func TestChenMonotoneInAlphaProperty(t *testing.T) {
	// Property: for the same arrivals, a larger α never yields an earlier
	// freshness point — the monotonicity Fig. 5/6 of the paper relies on.
	f := func(seed int64, aRaw, bRaw uint16) bool {
		a := clock.Duration(aRaw) * msD / 10
		b := clock.Duration(bRaw) * msD / 10
		if a > b {
			a, b = b, a
		}
		ca := NewChen(50, 0, a)
		cb := NewChen(50, 0, b)
		rng := rand.New(rand.NewSource(seed))
		var send clock.Time
		for i := 0; i < 200; i++ {
			send = send.Add(90*msD + clock.Duration(rng.Intn(int(20*msD))))
			recv := send.Add(clock.Duration(rng.Intn(int(30 * msD))))
			ca.Observe(uint64(i), send, recv)
			cb.Observe(uint64(i), send, recv)
		}
		return !cb.FreshnessPoint().Before(ca.FreshnessPoint())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestChenReset(t *testing.T) {
	c := NewChen(10, 100*msD, 10*msD)
	feedRegular(c, 5, 100*msD, 0)
	c.Reset()
	if c.FreshnessPoint() != 0 || c.Suspect(clock.Time(clock.Second)) {
		t.Fatal("Reset incomplete")
	}
}

func TestBertierAdaptsMargin(t *testing.T) {
	b := NewBertier(100, 100*msD, DefaultBertierParams())
	// Perfectly regular arrivals: margin stays near zero.
	feedRegular(b, 50, 100*msD, 0)
	calm := b.Margin()
	// Jittery arrivals: margin must grow.
	rng := rand.New(rand.NewSource(3))
	var send clock.Time = clock.Time(50 * 100 * int64(msD))
	for i := 50; i < 150; i++ {
		recv := send.Add(clock.Duration(rng.Intn(int(40 * msD))))
		b.Observe(uint64(i), send, recv)
		send = send.Add(100 * msD)
	}
	if b.Margin() <= calm {
		t.Fatalf("margin did not grow under jitter: calm=%v now=%v", calm, b.Margin())
	}
}

func TestBertierFreshnessAfterLastArrival(t *testing.T) {
	b := NewBertier(50, 100*msD, DefaultBertierParams())
	last := feedRegular(b, 30, 100*msD, 5*msD)
	if !b.FreshnessPoint().After(last) {
		t.Fatalf("FP %v not after last arrival %v", b.FreshnessPoint(), last)
	}
}

func TestBertierDefaultParams(t *testing.T) {
	b := NewBertier(10, 0, BertierParams{})
	if b.params != DefaultBertierParams() {
		t.Fatal("zero params did not default")
	}
	if DefaultBertierParams() != (BertierParams{Beta: 1, Phi: 4, Gamma: 0.1}) {
		t.Fatal("paper defaults wrong")
	}
}

func TestBertierReset(t *testing.T) {
	b := NewBertier(10, 100*msD, DefaultBertierParams())
	feedRegular(b, 20, 100*msD, 3*msD)
	b.Reset()
	if b.FreshnessPoint() != 0 || b.Margin() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestPhiSuspicionGrowsOverTime(t *testing.T) {
	p := NewPhi(100, 8, 0)
	last := feedRegular(p, 50, 100*msD, 0)
	prev := -1.0
	for dt := clock.Duration(0); dt < 2*clock.Second; dt += 50 * msD {
		lvl := p.SuspicionLevel(last.Add(dt))
		if lvl < prev {
			t.Fatalf("φ decreased over time at +%v", dt)
		}
		prev = lvl
	}
	if prev <= 8 {
		t.Fatalf("φ after 2s silence = %v, want > threshold 8", prev)
	}
}

func TestPhiThresholdCrossingMatchesFreshnessPoint(t *testing.T) {
	p := NewPhi(100, 4, 0)
	feedRegular(p, 60, 100*msD, 2*msD)
	fp := p.FreshnessPoint()
	if p.Suspect(fp - clock.Time(msD)) {
		t.Fatal("suspected just before FP")
	}
	if !p.Suspect(fp + clock.Time(5*msD)) {
		t.Fatal("not suspected just after FP")
	}
}

func TestPhiHigherThresholdLaterFPProperty(t *testing.T) {
	f := func(seed int64, t1Raw, t2Raw uint8) bool {
		t1 := 0.5 + float64(t1Raw)/255*15.5
		t2 := 0.5 + float64(t2Raw)/255*15.5
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		p1 := NewPhi(50, t1, 0)
		p2 := NewPhi(50, t2, 0)
		rng := rand.New(rand.NewSource(seed))
		var send clock.Time
		for i := 0; i < 100; i++ {
			send = send.Add(90*msD + clock.Duration(rng.Intn(int(20*msD))))
			recv := send.Add(clock.Duration(rng.Intn(int(10 * msD))))
			p1.Observe(uint64(i), send, recv)
			p2.Observe(uint64(i), send, recv)
		}
		return !p2.FreshnessPoint().Before(p1.FreshnessPoint())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPhiWarmupSafety(t *testing.T) {
	p := NewPhi(10, 2, 0)
	if p.Suspect(clock.Time(clock.Second)) {
		t.Fatal("suspect with no data")
	}
	if p.FreshnessPoint() != 0 {
		t.Fatal("FP nonzero with no data")
	}
	p.Observe(0, 0, 0)
	if p.Suspect(clock.Time(clock.Second)) {
		t.Fatal("suspect with a single arrival")
	}
	if p.SuspicionLevel(clock.Time(clock.Second)) != 0 {
		t.Fatal("suspicion level nonzero before distribution is fitted")
	}
}

func TestPhiDefaults(t *testing.T) {
	p := NewPhi(0, 0, 0)
	if p.ia.Cap() != DefaultWindowSize {
		t.Fatal("default window size not applied")
	}
	if p.Threshold() != 1 {
		t.Fatal("default threshold not applied")
	}
}

func TestPhiZeroVarianceFloor(t *testing.T) {
	// Perfectly regular arrivals give zero sample variance; the sigma
	// floor must keep the FP finite and past the last arrival.
	p := NewPhi(20, 8, clock.Millisecond)
	last := feedRegular(p, 30, 100*msD, 0)
	fp := p.FreshnessPoint()
	if !fp.After(last) {
		t.Fatalf("FP %v not after last arrival %v", fp, last)
	}
	if fp.Sub(last) > 2*clock.Second {
		t.Fatalf("FP %v absurdly far with σ floor", fp.Sub(last))
	}
}

func TestPhiReset(t *testing.T) {
	p := NewPhi(10, 2, 0)
	feedRegular(p, 20, 100*msD, 0)
	p.Reset()
	if p.FreshnessPoint() != 0 || p.Ready() {
		t.Fatal("Reset incomplete")
	}
}

func TestFixedDetector(t *testing.T) {
	f := NewFixed(500*msD, 3)
	if f.FreshnessPoint() != 0 || f.Suspect(clock.Time(clock.Second)) {
		t.Fatal("fresh Fixed should not suspect")
	}
	last := feedRegular(f, 2, 100*msD, 0)
	if f.Ready() {
		t.Fatal("Ready before warmup")
	}
	f.Observe(2, last, last.Add(100*msD))
	if !f.Ready() {
		t.Fatal("not Ready after warmup")
	}
	fp := f.FreshnessPoint()
	if fp != last.Add(100*msD).Add(500*msD) {
		t.Fatalf("FP = %v", fp)
	}
	if !f.Suspect(fp + 1) {
		t.Fatal("not suspected after timeout")
	}
	f.Reset()
	if f.Ready() || f.FreshnessPoint() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestFixedDefaultTimeout(t *testing.T) {
	f := NewFixed(0, 0)
	if f.timeout != clock.Second {
		t.Fatal("default timeout not applied")
	}
}

func TestNames(t *testing.T) {
	for _, d := range []Detector{
		NewChen(10, 0, msD),
		NewBertier(10, 0, DefaultBertierParams()),
		NewPhi(10, 2, 0),
		NewFixed(msD, 0),
	} {
		if d.Name() == "" {
			t.Fatalf("%T has empty name", d)
		}
	}
}

func BenchmarkChenObserve(b *testing.B) {
	c := NewChen(1000, 100*msD, 10*msD)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := clock.Time(i) * clock.Time(100*msD)
		c.Observe(uint64(i), t, t)
	}
}

func BenchmarkBertierObserve(b *testing.B) {
	d := NewBertier(1000, 100*msD, DefaultBertierParams())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := clock.Time(i) * clock.Time(100*msD)
		d.Observe(uint64(i), t, t)
	}
}

func BenchmarkPhiObserve(b *testing.B) {
	p := NewPhi(1000, 8, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := clock.Time(i) * clock.Time(100*msD)
		p.Observe(uint64(i), t, t)
	}
}

func BenchmarkPhiSuspicionLevel(b *testing.B) {
	p := NewPhi(1000, 8, 0)
	last := feedRegular(p, 1000, 100*msD, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SuspicionLevel(last.Add(150 * msD))
	}
}
