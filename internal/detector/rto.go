package detector

import (
	"fmt"
	"math"

	"repro/internal/clock"
	"repro/internal/stats"
)

// RTO is a TCP-retransmission-timeout-style failure detector: the
// freshness point is the last arrival plus Jacobson/Karels' classic
// estimate over *inter-arrival* times,
//
//	timeout = srtt + k·rttvar
//
// with srtt/rttvar the EWMA mean and mean-deviation of the heartbeat
// inter-arrival series (gains 1/8 and 1/4, k = 4, as in RFC 6298).
//
// It differs from Bertier FD in what it smooths: Bertier applies the
// Jacobson machinery to the *error of Chen's arrival estimator*, keeping
// the windowed EA; RTO applies it directly to inter-arrivals and keeps no
// window at all. It is the cheapest adaptive baseline (O(1) memory) and
// appears in the extended comparison benchmark.
type RTO struct {
	k      float64
	srtt   *stats.EWMA
	rttvar *stats.EWMA
	last   clock.Time
	have   bool
	count  int
	warmup int
}

// NewRTO returns an RTO detector. k ≤ 0 defaults to 4; warmup is the
// arrivals needed before Ready (for replay parity; default 2).
func NewRTO(k float64, warmup int) *RTO {
	if k <= 0 {
		k = 4
	}
	if warmup < 2 {
		warmup = 2
	}
	return &RTO{
		k:      k,
		srtt:   stats.NewEWMA(1.0 / 8),
		rttvar: stats.NewEWMA(1.0 / 4),
		warmup: warmup,
	}
}

// Observe implements Detector.
func (r *RTO) Observe(seq uint64, send, recv clock.Time) {
	if r.have {
		ia := float64(recv.Sub(r.last))
		if ia > 0 {
			if !r.srtt.Initialized() {
				r.srtt.Set(ia)
				r.rttvar.Set(ia / 2)
			} else {
				r.rttvar.Add(math.Abs(ia - r.srtt.Value()))
				r.srtt.Add(ia)
			}
		}
	}
	r.last, r.have = recv, true
	r.count++
}

// timeout returns the current adaptive timeout (0 before two arrivals).
func (r *RTO) timeout() clock.Duration {
	if !r.srtt.Initialized() {
		return 0
	}
	return clock.Duration(r.srtt.Value() + r.k*r.rttvar.Value())
}

// FreshnessPoint implements Detector.
func (r *RTO) FreshnessPoint() clock.Time {
	if !r.have || !r.srtt.Initialized() {
		return 0
	}
	return r.last.Add(r.timeout())
}

// Suspect implements Detector.
func (r *RTO) Suspect(now clock.Time) bool {
	fp := r.FreshnessPoint()
	return fp != 0 && now.After(fp)
}

// Ready implements Detector.
func (r *RTO) Ready() bool { return r.count >= r.warmup }

// Name implements Detector.
func (r *RTO) Name() string { return fmt.Sprintf("RTO(k=%g)", r.k) }

// Reset implements Detector.
func (r *RTO) Reset() {
	r.srtt = stats.NewEWMA(1.0 / 8)
	r.rttvar = stats.NewEWMA(1.0 / 4)
	r.last, r.have, r.count = 0, false, 0
}
