package detector

import (
	"errors"
	"math"

	"repro/internal/clock"
)

// This file implements a QoS-driven *configuration procedure* in the
// spirit of Chen et al.'s (the paper's [28]) analysis: given the
// probabilistic behaviour of the network (message loss probability and
// delay moments) and a QoS requirement, compute a heartbeat interval Δt
// and safety margin α that satisfy the requirement — or report that none
// can. SFD makes this tuning automatic and continuous; the static
// procedure remains useful for initial provisioning (choosing Δt and
// SM₁), and the repository's benchmarks use it as a non-adaptive
// reference point.
//
// Derivation (one-sided Chebyshev / Cantelli, distribution-free):
//
//	worst-case detection time   TD ≈ Δt + E[D] + α      (crash right
//	    after a send: the next freshness point is one interval plus the
//	    expected delay plus the margin away)
//	per-heartbeat false-suspicion probability
//	    p_false ≤ p_L + (1 − p_L)·V[D] / (V[D] + α²)    (a heartbeat is
//	    lost, or delayed more than α beyond its expectation)
//	mistake rate                MR ≈ p_false / Δt
//	query accuracy              QAP ≥ 1 − p_false·E[TM]/Δt, with the
//	    mean mistake duration E[TM] ≈ Δt (a wrong suspicion ends at the
//	    next arrival).
//
// Cantelli is deliberately conservative: it holds for any delay
// distribution, which suits WAN tails that are far from normal.

// NetworkStats is the probabilistic network model the configuration
// consumes — measurable online from trace.Analyze or a Prober.
type NetworkStats struct {
	LossRate  float64        // p_L: fraction of heartbeats lost
	DelayMean clock.Duration // E[D]: one-way delay expectation
	DelayStd  clock.Duration // sqrt(V[D])
}

// Requirements is the QoS the application demands, in Chen et al.'s
// terms: an upper bound on detection time, an upper bound on mistake
// rate, and a lower bound on query accuracy probability.
type Requirements struct {
	MaxTD  clock.Duration
	MaxMR  float64 // mistakes per second
	MinQAP float64 // in [0,1]
}

// Configuration is the computed operating point.
type Configuration struct {
	Interval clock.Duration // heartbeat interval Δt
	Alpha    clock.Duration // safety margin α (Chen) / initial SM₁ (SFD)
	// Predicted QoS at this operating point under the model.
	PredictedTD  clock.Duration
	PredictedMR  float64
	PredictedQAP float64
}

// ErrInfeasible reports that no (Δt, α) pair satisfies the requirements
// on the given network — the static analogue of SFD's "can not satisfy"
// response.
var ErrInfeasible = errors.New("detector: QoS requirements infeasible on this network")

// Configure computes a heartbeat interval and safety margin meeting the
// requirements, or ErrInfeasible. It searches candidate intervals from
// aggressive to relaxed and, for each, derives the smallest margin whose
// Cantelli bound meets the accuracy requirements, keeping the first
// candidate whose predicted detection time also fits. Preferring larger
// Δt (scanned descending) minimizes network load, mirroring Chen's
// "largest sending interval" objective.
func Configure(net NetworkStats, req Requirements) (Configuration, error) {
	if req.MaxTD <= 0 || req.MinQAP < 0 || req.MinQAP > 1 {
		return Configuration{}, errors.New("detector: invalid requirements")
	}
	if net.LossRate < 0 || net.LossRate >= 1 {
		return Configuration{}, errors.New("detector: invalid loss rate")
	}

	// Loss alone lower-bounds the per-heartbeat false-suspicion
	// probability; if even p_L violates the accuracy targets at every
	// interval, nothing helps.
	variance := float64(net.DelayStd) * float64(net.DelayStd)

	// Candidate intervals: log-spaced, from MaxTD down to MaxTD/1000.
	const steps = 200
	for i := 0; i < steps; i++ {
		frac := math.Pow(1000, -float64(i)/(steps-1)) // 1 → 1/1000
		dt := clock.Duration(float64(req.MaxTD) * frac)
		if dt <= 0 {
			continue
		}
		// Largest margin the TD budget allows at this interval.
		alphaMax := req.MaxTD - dt - net.DelayMean
		if alphaMax < 0 {
			continue
		}
		// Smallest margin meeting the accuracy targets.
		alpha, ok := minMargin(net.LossRate, variance, dt, req)
		if !ok || alpha > float64(alphaMax) {
			continue
		}
		cfg := Configuration{Interval: dt, Alpha: clock.Duration(alpha)}
		cfg.PredictedTD = dt + net.DelayMean + cfg.Alpha
		pFalse := falseProb(net.LossRate, variance, alpha)
		cfg.PredictedMR = pFalse / dt.Seconds()
		cfg.PredictedQAP = 1 - pFalse
		return cfg, nil
	}
	return Configuration{}, ErrInfeasible
}

// falseProb is the Cantelli-bounded per-heartbeat false-suspicion
// probability at margin alpha (ns).
func falseProb(pL, variance, alpha float64) float64 {
	tail := 1.0
	if alpha > 0 {
		tail = variance / (variance + alpha*alpha)
	} else if variance == 0 {
		tail = 0
	}
	return pL + (1-pL)*tail
}

// minMargin returns the smallest alpha (ns) such that both the MR and
// QAP requirements hold at interval dt; ok=false when even alpha→∞
// (tail→0, p_false→p_L) cannot satisfy them.
func minMargin(pL, variance float64, dt clock.Duration, req Requirements) (float64, bool) {
	// Required per-heartbeat false probability.
	pMR := math.Inf(1)
	if req.MaxMR >= 0 {
		pMR = req.MaxMR * dt.Seconds()
	}
	// QAP ≈ 1 − p_false (mistake duration ≈ one interval).
	pQAP := 1 - req.MinQAP
	pReq := math.Min(pMR, pQAP)
	if pReq >= 1 {
		return 0, true // no accuracy requirement at all
	}
	if pL >= pReq {
		return 0, false // loss alone already violates the budget
	}
	// Solve pL + (1−pL)·V/(V+α²) ≤ pReq for α.
	if variance == 0 {
		return 0, true
	}
	budget := (pReq - pL) / (1 - pL)
	if budget <= 0 {
		return 0, false
	}
	if budget >= 1 {
		return 0, true
	}
	// V/(V+α²) = budget  ⇒  α = sqrt(V·(1−budget)/budget).
	alpha := math.Sqrt(variance * (1 - budget) / budget)
	return alpha, true
}
