package detector

import (
	"fmt"
	"math"

	"repro/internal/clock"
)

// BertierParams are the tuning constants of Bertier's estimator
// (Eq. 4–8). The paper uses the authors' published values β=1, φ=4,
// γ=0.1 ("Typical values of β, φ and γ are 1, 4 and 0.1").
type BertierParams struct {
	Beta  float64 // weight of the smoothed error ("delay") term
	Phi   float64 // weight of the error-magnitude ("var") term
	Gamma float64 // EWMA gain for both estimators
}

// DefaultBertierParams returns β=1, φ=4, γ=0.1.
func DefaultBertierParams() BertierParams {
	return BertierParams{Beta: 1, Phi: 4, Gamma: 0.1}
}

// Bertier implements Bertier et al.'s adaptive failure detector (§III):
// Chen's expected-arrival estimation combined with a Jacobson-RTT-style
// dynamic safety margin,
//
//	error_k   = A_k − EA_k − delay_k
//	delay_k+1 = delay_k + γ·error_k
//	var_k+1   = var_k + γ·(|error_k| − var_k)
//	α_k+1     = β·delay_k+1 + φ·var_k+1
//	τ_k+1     = EA_k+1 + α_k+1
//
// It has no free parameter to sweep, which is why it contributes a single
// (aggressive) point to the paper's QoS figures.
type Bertier struct {
	params BertierParams
	est    *ArrivalEstimator

	delay float64 // smoothed estimation error (ns)
	vr    float64 // smoothed error magnitude (ns)
	fp    clock.Time
}

// NewBertier returns a Bertier FD with the given window size and known
// sending interval (0 to estimate).
func NewBertier(ws int, interval clock.Duration, p BertierParams) *Bertier {
	if p == (BertierParams{}) {
		p = DefaultBertierParams()
	}
	return &Bertier{params: p, est: NewArrivalEstimator(ws, interval)}
}

// Observe implements Detector.
func (b *Bertier) Observe(seq uint64, send, recv clock.Time) {
	// EA_k — prediction made before this arrival.
	predicted, hadPrediction := b.est.Expected()

	b.est.Observe(seq, recv)

	if hadPrediction {
		errK := float64(recv) - float64(predicted) - b.delay
		b.delay += b.params.Gamma * errK
		b.vr += b.params.Gamma * (math.Abs(errK) - b.vr)
	}
	if ea, ok := b.est.Expected(); ok {
		alpha := b.params.Beta*b.delay + b.params.Phi*b.vr
		if alpha < 0 {
			alpha = 0
		}
		b.fp = ea.Add(clock.Duration(alpha))
	}
}

// FreshnessPoint implements Detector.
func (b *Bertier) FreshnessPoint() clock.Time { return b.fp }

// Suspect implements Detector.
func (b *Bertier) Suspect(now clock.Time) bool {
	return b.fp != 0 && now.After(b.fp)
}

// Ready implements Detector.
func (b *Bertier) Ready() bool { return b.est.Full() }

// Name implements Detector.
func (b *Bertier) Name() string {
	return fmt.Sprintf("Bertier(β=%g,φ=%g,γ=%g)", b.params.Beta, b.params.Phi, b.params.Gamma)
}

// Margin returns the current dynamic safety margin α in nanoseconds.
func (b *Bertier) Margin() clock.Duration {
	alpha := b.params.Beta*b.delay + b.params.Phi*b.vr
	if alpha < 0 {
		alpha = 0
	}
	return clock.Duration(alpha)
}

// Reset implements Detector.
func (b *Bertier) Reset() {
	b.est.Reset()
	b.delay, b.vr, b.fp = 0, 0, 0
}
