// Package detector implements the adaptive failure detectors the paper
// evaluates SFD against (§III): Chen FD, Bertier FD, and the φ accrual
// FD, plus a naive fixed-timeout baseline. All of them consume heartbeat
// arrivals and expose a *freshness point* — the absolute instant at which
// the monitor starts suspecting the sender if no further heartbeat
// arrives (Fig. 2 of the paper).
//
// The SFD itself lives in internal/core; it composes the Chen-style
// arrival estimator from this package with a feedback-tuned safety
// margin.
package detector

import (
	"repro/internal/clock"
	"repro/internal/window"
)

// DefaultWindowSize is the sliding-window size used throughout the
// paper's experiments ("All the experiments for the four FDs use the same
// fixed window size (WS = 1,000)").
const DefaultWindowSize = 1000

// Detector is a heartbeat-based failure detector. Implementations are
// not safe for concurrent use; wrap them (as internal/cluster does) when
// sharing across goroutines.
type Detector interface {
	// Observe records the arrival of heartbeat seq, stamped send on the
	// sender's clock and recv on the monitor's clock. Sequence numbers
	// may skip (lost heartbeats) but must be presented in increasing
	// order; stale duplicates must be dropped by the caller.
	Observe(seq uint64, send, recv clock.Time)
	// FreshnessPoint returns the absolute time τ until which the sender
	// is trusted based on the arrivals observed so far. Before any
	// arrival it returns 0.
	FreshnessPoint() clock.Time
	// Suspect reports whether the sender is suspected at instant now.
	Suspect(now clock.Time) bool
	// Ready reports whether the warm-up period is over (the paper only
	// measures "after the sliding window is full").
	Ready() bool
	// Name identifies the scheme (for tables and curve labels).
	Name() string
	// Reset returns the detector to its initial state.
	Reset()
}

// Accrual is a detector that additionally outputs a suspicion level on a
// continuous scale (the paper's footnote 3: "an FD service outputs a
// suspicion level on a continuous scale rather than information of a
// boolean nature").
type Accrual interface {
	Detector
	// SuspicionLevel returns the current suspicion value at instant now;
	// larger means more suspicious. The φ FD returns φ, SFD returns a
	// margin-normalized overshoot.
	SuspicionLevel(now clock.Time) float64
}

// ArrivalEstimator is Chen's windowed expected-arrival-time estimator
// (Eq. 2): EA_{k+1} = (1/n)·Σ_{i∈W}(A_i − Δt·i) + (k+1)·Δt, where W holds
// the most recent n received heartbeats (i = sequence number, A_i =
// arrival time). When the configured sending interval Δt is zero, the
// estimator follows §IV-C of the paper and uses the average inter-arrival
// time observed in the window.
//
// Sums are carried in int64/int128-free form: Σ A_i and Σ i stay within
// int64 for window sizes up to ~9000 on month-long runs.
type ArrivalEstimator struct {
	interval clock.Duration // configured Δt; 0 ⇒ estimate from window
	win      *window.Ring[arrival]
	sumRecv  int64 // Σ A_i (ns)
	sumSeq   int64 // Σ i
	lastSeq  uint64
	lastRecv clock.Time
	have     bool
}

type arrival struct {
	seq  uint64
	recv clock.Time
}

// NewArrivalEstimator returns an estimator over a window of ws received
// heartbeats. interval is the known sending interval Δt, or 0 to estimate
// it from the window.
func NewArrivalEstimator(ws int, interval clock.Duration) *ArrivalEstimator {
	if ws <= 0 {
		ws = DefaultWindowSize
	}
	return &ArrivalEstimator{interval: interval, win: window.NewRing[arrival](ws)}
}

// Observe records an arrival.
func (e *ArrivalEstimator) Observe(seq uint64, recv clock.Time) {
	old, evicted := e.win.Push(arrival{seq: seq, recv: recv})
	if evicted {
		e.sumRecv -= int64(old.recv)
		e.sumSeq -= int64(old.seq)
	}
	e.sumRecv += int64(recv)
	e.sumSeq += int64(seq)
	e.lastSeq, e.lastRecv, e.have = seq, recv, true
}

// Interval returns the Δt in effect: the configured one, or the window
// estimate (mean arrival spacing per sequence step, which remains correct
// across loss gaps because it divides by sequence distance, not count).
func (e *ArrivalEstimator) Interval() clock.Duration {
	if e.interval > 0 {
		return e.interval
	}
	n := e.win.Len()
	if n < 2 {
		return 0
	}
	oldest, _ := e.win.Oldest()
	newest, _ := e.win.Newest()
	seqSpan := newest.seq - oldest.seq
	if seqSpan == 0 {
		return 0
	}
	return newest.recv.Sub(oldest.recv) / clock.Duration(seqSpan)
}

// Expected returns EA_{k+1}: the estimated arrival time of the next
// heartbeat (sequence lastSeq+1). ok is false until at least one arrival
// (and, with estimated Δt, two) has been observed.
func (e *ArrivalEstimator) Expected() (clock.Time, bool) {
	n := e.win.Len()
	if !e.have || n == 0 {
		return 0, false
	}
	dt := e.Interval()
	if dt <= 0 {
		return 0, false
	}
	// (1/n)·Σ(A_i − Δt·i) + (k+1)·Δt
	meanShift := float64(e.sumRecv)/float64(n) - float64(dt)*float64(e.sumSeq)/float64(n)
	ea := meanShift + float64(dt)*float64(e.lastSeq+1)
	return clock.Time(ea), true
}

// Last returns the sequence number and arrival time of the most recent
// heartbeat.
func (e *ArrivalEstimator) Last() (seq uint64, recv clock.Time, ok bool) {
	return e.lastSeq, e.lastRecv, e.have
}

// ArrivalSample is one (sequence, arrival) pair of the estimation window
// in exportable form — the unit of detector state persistence.
type ArrivalSample struct {
	Seq  uint64
	Recv clock.Time
}

// Export copies the estimation window, oldest first, appending to dst
// (which may be nil). Together with Import it lets a warm-restarting
// monitor carry a stream's learned arrival distribution across process
// lives instead of re-entering warmup.
func (e *ArrivalEstimator) Export(dst []ArrivalSample) []ArrivalSample {
	e.win.Do(func(a arrival) {
		dst = append(dst, ArrivalSample{Seq: a.seq, Recv: a.recv})
	})
	return dst
}

// Import resets the estimator and replays the samples (which must be in
// strictly increasing sequence order) through Observe, rebuilding the
// running sums. Samples beyond the window capacity keep only the newest
// Cap() entries, matching what a live estimator would hold.
func (e *ArrivalEstimator) Import(samples []ArrivalSample) {
	e.Reset()
	if n := len(samples) - e.win.Cap(); n > 0 {
		samples = samples[n:]
	}
	for _, s := range samples {
		e.Observe(s.Seq, s.Recv)
	}
}

// Full reports whether the estimation window is full.
func (e *ArrivalEstimator) Full() bool { return e.win.Full() }

// Len returns the number of arrivals currently in the window.
func (e *ArrivalEstimator) Len() int { return e.win.Len() }

// Reset clears all state.
func (e *ArrivalEstimator) Reset() {
	e.win.Reset()
	e.sumRecv, e.sumSeq = 0, 0
	e.lastSeq, e.lastRecv, e.have = 0, 0, false
}
