package detector

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/clock"
)

func TestRTOBasics(t *testing.T) {
	r := NewRTO(0, 0) // defaults: k=4, warmup=2
	if r.k != 4 || r.warmup != 2 {
		t.Fatalf("defaults wrong: %+v", r)
	}
	if r.FreshnessPoint() != 0 || r.Suspect(clock.Time(clock.Second)) {
		t.Fatal("fresh RTO should not suspect")
	}
	last := feedRegular(r, 50, 100*msD, 0)
	if !r.Ready() {
		t.Fatal("not ready")
	}
	fp := r.FreshnessPoint()
	if !fp.After(last) {
		t.Fatalf("FP %v not after last %v", fp, last)
	}
	// Perfectly regular arrivals: srtt = 100ms, rttvar → 0, so the
	// timeout converges toward ~1 interval.
	if fp.Sub(last) > 250*msD {
		t.Fatalf("timeout %v too conservative on a regular stream", fp.Sub(last))
	}
	if !r.Suspect(fp + 1) {
		t.Fatal("not suspected after FP")
	}
	r.Reset()
	if r.Ready() || r.FreshnessPoint() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestRTOAdaptsToJitter(t *testing.T) {
	calm := NewRTO(4, 2)
	jittery := NewRTO(4, 2)
	feedRegular(calm, 100, 100*msD, 0)
	rng := rand.New(rand.NewSource(5))
	var send, last clock.Time
	for i := 0; i < 100; i++ {
		recv := send.Add(clock.Duration(rng.Intn(int(60 * msD))))
		if recv <= last {
			recv = last + 1
		}
		jittery.Observe(uint64(i), send, recv)
		last = recv
		send = send.Add(100 * msD)
	}
	if jittery.timeout() <= calm.timeout() {
		t.Fatalf("jittery timeout %v not above calm %v", jittery.timeout(), calm.timeout())
	}
}

func TestRTOLargerKMoreConservative(t *testing.T) {
	k2 := NewRTO(2, 2)
	k8 := NewRTO(8, 2)
	rng := rand.New(rand.NewSource(6))
	var send, last clock.Time
	for i := 0; i < 200; i++ {
		recv := send.Add(clock.Duration(rng.Intn(int(20 * msD))))
		if recv <= last {
			recv = last + 1
		}
		k2.Observe(uint64(i), send, recv)
		k8.Observe(uint64(i), send, recv)
		last = recv
		send = send.Add(100 * msD)
	}
	if k8.FreshnessPoint() <= k2.FreshnessPoint() {
		t.Fatal("larger k not more conservative")
	}
}

func TestPhiExpClosedForm(t *testing.T) {
	p := NewPhiExp(50, 8)
	last := feedRegular(p, 60, 100*msD, 0)
	// μ = 100ms exactly, so φ(t) = t/(μ·ln10) and FP = last + 8·μ·ln10.
	mu := float64(100 * msD)
	wantFP := last.Add(clock.Duration(8 * mu * math.Ln10))
	fp := p.FreshnessPoint()
	if d := float64(fp - wantFP); math.Abs(d) > float64(msD) {
		t.Fatalf("FP = %v, want %v", fp, wantFP)
	}
	lvl := p.SuspicionLevel(last.Add(clock.Duration(mu * math.Ln10)))
	if math.Abs(lvl-1.0) > 1e-6 {
		t.Fatalf("φ at μ·ln10 = %v, want 1", lvl)
	}
}

func TestPhiExpMonotoneAndSafeties(t *testing.T) {
	p := NewPhiExp(0, 0) // defaults
	if p.ia.Cap() != DefaultWindowSize || p.Threshold() != 1 {
		t.Fatal("defaults wrong")
	}
	if p.Suspect(clock.Time(clock.Second)) || p.FreshnessPoint() != 0 {
		t.Fatal("fresh PhiExp should be silent")
	}
	last := feedRegular(p, 30, 100*msD, 0)
	prev := -1.0
	for dt := clock.Duration(0); dt < 3*clock.Second; dt += 50 * msD {
		lvl := p.SuspicionLevel(last.Add(dt))
		if lvl < prev {
			t.Fatalf("φ-exp decreased at +%v", dt)
		}
		prev = lvl
	}
	if !p.Suspect(p.FreshnessPoint() + clock.Time(msD)) {
		t.Fatal("not suspected after FP")
	}
	if p.Suspect(p.FreshnessPoint() - clock.Time(msD)) {
		t.Fatal("suspected before FP")
	}
	p.Reset()
	if p.FreshnessPoint() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestPhiExpMoreConservativeThanNormalPhiOnRegularTraffic(t *testing.T) {
	// On low-variance traffic the exponential model's heavy tail yields a
	// later freshness point than the normal model at equal Φ.
	norm := NewPhi(50, 8, 0)
	exp := NewPhiExp(50, 8)
	rng := rand.New(rand.NewSource(7))
	var send, last clock.Time
	for i := 0; i < 100; i++ {
		recv := send.Add(clock.Duration(rng.Intn(int(5 * msD))))
		if recv <= last {
			recv = last + 1
		}
		norm.Observe(uint64(i), send, recv)
		exp.Observe(uint64(i), send, recv)
		last = recv
		send = send.Add(100 * msD)
	}
	if exp.FreshnessPoint() <= norm.FreshnessPoint() {
		t.Fatalf("φ-exp FP %v not beyond φ FP %v on regular traffic",
			exp.FreshnessPoint(), norm.FreshnessPoint())
	}
}

func TestVariantNames(t *testing.T) {
	if NewRTO(4, 2).Name() == "" || NewPhiExp(10, 2).Name() == "" {
		t.Fatal("empty names")
	}
}

func BenchmarkRTOObserve(b *testing.B) {
	r := NewRTO(4, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := clock.Time(i) * clock.Time(100*msD)
		r.Observe(uint64(i), t, t)
	}
}

func BenchmarkPhiExpObserve(b *testing.B) {
	p := NewPhiExp(1000, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := clock.Time(i) * clock.Time(100*msD)
		p.Observe(uint64(i), t, t)
	}
}
