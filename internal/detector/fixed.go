package detector

import (
	"fmt"

	"repro/internal/clock"
)

// Fixed is the naive non-adaptive baseline: a constant timeout after the
// last heartbeat arrival. It is the "conventional implementation" the
// paper's §II-B discusses (fixed freshness point spacing) — too short a
// timeout yields a high wrong-suspicion rate, too long a timeout inflates
// detection time, and nothing adapts in between. It exists so benches can
// show what the adaptive schemes buy.
type Fixed struct {
	timeout  clock.Duration
	last     clock.Time
	haveLast bool
	count    int
	warmup   int
}

// NewFixed returns a fixed-timeout detector. warmup is the number of
// arrivals before Ready reports true (for parity with the windowed
// schemes in replay comparisons).
func NewFixed(timeout clock.Duration, warmup int) *Fixed {
	if timeout <= 0 {
		timeout = clock.Second
	}
	return &Fixed{timeout: timeout, warmup: warmup}
}

// Observe implements Detector.
func (f *Fixed) Observe(seq uint64, send, recv clock.Time) {
	f.last, f.haveLast = recv, true
	f.count++
}

// FreshnessPoint implements Detector.
func (f *Fixed) FreshnessPoint() clock.Time {
	if !f.haveLast {
		return 0
	}
	return f.last.Add(f.timeout)
}

// Suspect implements Detector.
func (f *Fixed) Suspect(now clock.Time) bool {
	return f.haveLast && now.After(f.FreshnessPoint())
}

// Ready implements Detector.
func (f *Fixed) Ready() bool { return f.count >= f.warmup }

// Timeout returns the configured timeout.
func (f *Fixed) Timeout() clock.Duration { return f.timeout }

// SetTimeout changes the timeout (hook for core.SelfTuner).
func (f *Fixed) SetTimeout(d clock.Duration) {
	if d <= 0 {
		return
	}
	f.timeout = d
}

// Name implements Detector.
func (f *Fixed) Name() string { return fmt.Sprintf("Fixed(τ=%v)", f.timeout) }

// Reset implements Detector.
func (f *Fixed) Reset() {
	f.last, f.haveLast, f.count = 0, false, 0
}
