package detector

import (
	"fmt"
	"math"

	"repro/internal/clock"
	"repro/internal/window"
)

// PhiExp is the exponential-tail variant of the φ accrual detector: it
// models heartbeat inter-arrival times as exponential with the window
// mean, so the suspicion level has the closed form
//
//	φ(t) = −log10(P_later(t)) = −log10(e^{−t/μ}) = t / (μ·ln 10).
//
// This is the simplification popularized by Cassandra's accrual detector
// (its CASSANDRA-2597 change replaced the normal tail with an
// exponential one). Compared to the normal-model φ it is cheaper (no
// variance term), heavier-tailed (more conservative for the same Φ on
// regular traffic), and immune to the zero-variance degeneracy. It joins
// the extended comparison benchmark.
type PhiExp struct {
	threshold float64
	ia        *window.Samples
	last      clock.Time
	haveLast  bool
}

// NewPhiExp returns an exponential accrual FD with the given window size
// and threshold Φ.
func NewPhiExp(ws int, threshold float64) *PhiExp {
	if ws <= 0 {
		ws = DefaultWindowSize
	}
	if threshold <= 0 {
		threshold = 1
	}
	return &PhiExp{threshold: threshold, ia: window.NewSamples(ws)}
}

// Observe implements Detector.
func (p *PhiExp) Observe(seq uint64, send, recv clock.Time) {
	if p.haveLast {
		iv := float64(recv.Sub(p.last))
		if iv > 0 {
			p.ia.Push(iv)
		}
	}
	p.last, p.haveLast = recv, true
}

// SuspicionLevel implements Accrual.
func (p *PhiExp) SuspicionLevel(now clock.Time) float64 {
	if !p.haveLast || p.ia.Len() < 1 {
		return 0
	}
	mu := p.ia.Mean()
	if mu <= 0 {
		return 0
	}
	elapsed := float64(now.Sub(p.last))
	if elapsed <= 0 {
		return 0
	}
	return elapsed / (mu * math.Ln10)
}

// FreshnessPoint implements Detector: φ(t) = Φ at t = Φ·μ·ln 10.
func (p *PhiExp) FreshnessPoint() clock.Time {
	if !p.haveLast || p.ia.Len() < 1 {
		return 0
	}
	mu := p.ia.Mean()
	if mu <= 0 {
		return 0
	}
	return p.last.Add(clock.Duration(p.threshold * mu * math.Ln10))
}

// Suspect implements Detector.
func (p *PhiExp) Suspect(now clock.Time) bool {
	if !p.haveLast || p.ia.Len() < 1 {
		return false
	}
	return p.SuspicionLevel(now) > p.threshold
}

// Ready implements Detector.
func (p *PhiExp) Ready() bool { return p.ia.Full() }

// Name implements Detector.
func (p *PhiExp) Name() string { return fmt.Sprintf("φ-exp(Φ=%g)", p.threshold) }

// Threshold returns the configured Φ.
func (p *PhiExp) Threshold() float64 { return p.threshold }

// Reset implements Detector.
func (p *PhiExp) Reset() {
	p.ia.Reset()
	p.last, p.haveLast = 0, false
}
