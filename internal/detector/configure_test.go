package detector

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/clock"
)

func wanStats() NetworkStats {
	return NetworkStats{
		LossRate:  0.004,
		DelayMean: 140 * clock.Millisecond,
		DelayStd:  15 * clock.Millisecond,
	}
}

func TestConfigureFeasible(t *testing.T) {
	cfg, err := Configure(wanStats(), Requirements{
		MaxTD: clock.Second, MaxMR: 0.5, MinQAP: 0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Interval <= 0 || cfg.Alpha < 0 {
		t.Fatalf("bad configuration %+v", cfg)
	}
	if cfg.PredictedTD > clock.Second {
		t.Fatalf("predicted TD %v exceeds requirement", cfg.PredictedTD)
	}
	if cfg.PredictedMR > 0.5 {
		t.Fatalf("predicted MR %v exceeds requirement", cfg.PredictedMR)
	}
	if cfg.PredictedQAP < 0.99 {
		t.Fatalf("predicted QAP %v below requirement", cfg.PredictedQAP)
	}
}

func TestConfigurePrefersLargeInterval(t *testing.T) {
	// With loose accuracy demands, the procedure should pick an interval
	// near the TD budget (minimal network load), not a tiny one.
	cfg, err := Configure(NetworkStats{DelayMean: clock.Millisecond, DelayStd: clock.Millisecond},
		Requirements{MaxTD: clock.Second, MaxMR: 100, MinQAP: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Interval < 500*clock.Millisecond {
		t.Fatalf("interval %v needlessly aggressive", cfg.Interval)
	}
}

func TestConfigureInfeasibleByLoss(t *testing.T) {
	// 10% loss: any heartbeat miss is a mistake; demanding QAP ≥ 99.99%
	// cannot be met no matter the margin.
	_, err := Configure(NetworkStats{LossRate: 0.1, DelayMean: clock.Millisecond, DelayStd: clock.Millisecond},
		Requirements{MaxTD: clock.Second, MaxMR: 1000, MinQAP: 0.9999})
	if err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestConfigureInfeasibleByDelay(t *testing.T) {
	// Delay mean alone exceeds the TD budget.
	_, err := Configure(NetworkStats{DelayMean: 2 * clock.Second, DelayStd: clock.Millisecond},
		Requirements{MaxTD: clock.Second, MaxMR: 1000, MinQAP: 0})
	if err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestConfigureTightAccuracyNeedsLargerMargin(t *testing.T) {
	// Note: with 0.4% loss the QAP budget must stay above p_L = 0.004,
	// so 0.99 is tight-but-feasible while 0.999 would be infeasible.
	loose, err1 := Configure(wanStats(), Requirements{MaxTD: clock.Second, MaxMR: 1, MinQAP: 0.95})
	tight, err2 := Configure(wanStats(), Requirements{MaxTD: clock.Second, MaxMR: 0.02, MinQAP: 0.99})
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v %v", err1, err2)
	}
	if tight.Alpha <= loose.Alpha {
		t.Fatalf("tight accuracy margin %v not larger than loose %v", tight.Alpha, loose.Alpha)
	}
}

func TestConfigureInvalidInputs(t *testing.T) {
	if _, err := Configure(wanStats(), Requirements{MaxTD: 0}); err == nil {
		t.Fatal("zero MaxTD accepted")
	}
	if _, err := Configure(wanStats(), Requirements{MaxTD: clock.Second, MinQAP: 1.5}); err == nil {
		t.Fatal("QAP > 1 accepted")
	}
	if _, err := Configure(NetworkStats{LossRate: 1}, Requirements{MaxTD: clock.Second}); err == nil {
		t.Fatal("loss rate 1 accepted")
	}
	if _, err := Configure(NetworkStats{LossRate: -0.1}, Requirements{MaxTD: clock.Second}); err == nil {
		t.Fatal("negative loss accepted")
	}
}

func TestConfigureZeroVariance(t *testing.T) {
	// Deterministic delays: zero margin suffices for accuracy.
	cfg, err := Configure(NetworkStats{DelayMean: 10 * clock.Millisecond, DelayStd: 0},
		Requirements{MaxTD: clock.Second, MaxMR: 0.001, MinQAP: 0.9999})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Alpha != 0 {
		t.Fatalf("alpha = %v on a deterministic network, want 0", cfg.Alpha)
	}
}

func TestConfigurePredictionsSatisfyRequirementsProperty(t *testing.T) {
	// Property: whenever Configure succeeds, its own predictions satisfy
	// the requirements it was given.
	f := func(lossRaw, stdRaw, tdRaw uint8, mrRaw, qapRaw uint8) bool {
		net := NetworkStats{
			LossRate:  float64(lossRaw%50) / 1000,                           // 0–4.9%
			DelayMean: clock.Duration(10+int(stdRaw)) * clock.Millisecond,   // 10–265ms
			DelayStd:  clock.Duration(1+int(stdRaw)%40) * clock.Millisecond, // 1–40ms
		}
		req := Requirements{
			MaxTD:  clock.Duration(200+int(tdRaw)*10) * clock.Millisecond, // 0.2–2.75s
			MaxMR:  0.01 + float64(mrRaw)/50,                              // 0.01–5.1
			MinQAP: 0.5 + float64(qapRaw%50)/100,                          // 0.5–0.99
		}
		cfg, err := Configure(net, req)
		if err != nil {
			return true // infeasible is a legal answer
		}
		return cfg.PredictedTD <= req.MaxTD &&
			cfg.PredictedMR <= req.MaxMR+1e-12 &&
			cfg.PredictedQAP >= req.MinQAP-1e-12 &&
			cfg.Interval > 0 && cfg.Alpha >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFalseProbMonotoneInAlpha(t *testing.T) {
	variance := math.Pow(15e6, 2) // (15ms in ns)²
	prev := 2.0
	for a := 0.0; a < 1e9; a += 5e7 {
		p := falseProb(0.01, variance, a)
		if p > prev {
			t.Fatalf("falseProb increased at α=%v", a)
		}
		prev = p
	}
	if falseProb(0.01, variance, 1e12) < 0.01-1e-15 {
		t.Fatal("false prob dropped below loss floor")
	}
}
