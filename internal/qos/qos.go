// Package qos measures the quality of service of failure detectors by
// replaying heartbeat traces through them, exactly as the paper's
// evaluation does (§V: "These logged arrival times are used to replay the
// execution for each FD scheme ... it provides a fair experimental
// platform for every FD").
//
// It computes Chen et al.'s metrics (§II-C): detection time TD, mistake
// rate MR, query accuracy probability QAP, and the auxiliary mistake
// duration TM and mistake recurrence time TMR (Fig. 3), plus parameter
// sweeps that trace each detector's QoS curve for the MR-vs-TD and
// QAP-vs-TD figures.
package qos

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/detector"
	"repro/internal/trace"
)

// Result is the measured QoS of one detector over one trace replay.
type Result struct {
	Detector string

	// Detection time: the latency from a (hypothetical) crash occurring
	// immediately after a heartbeat send to the freshness point at which
	// the monitor would begin suspecting — measured at every received
	// heartbeat, after warm-up.
	TDAvg clock.Duration
	TDMin clock.Duration
	TDMax clock.Duration

	// Accuracy: wrong suspicions observed during replay. A mistake
	// begins when the freshness point expires while the sender is alive
	// and ends when the next heartbeat arrives (Fig. 2, case 3).
	Mistakes   int64
	MistakeDur clock.Duration // Σ wrong-suspicion durations
	MR         float64        // mistakes per second of monitored time
	QAP        float64        // 1 − MistakeDur/TotalTime, in [0,1]
	TM         clock.Duration // mean mistake duration (Fig. 3)
	TMR        clock.Duration // mean mistake recurrence time (Fig. 3)

	// Bookkeeping.
	Arrivals  int64          // received heartbeats measured (post warm-up)
	Warmup    int64          // heartbeats consumed to fill the window
	TotalTime clock.Duration // measured span (first to last post-warm-up arrival)
}

// String renders the headline metrics.
func (r Result) String() string {
	return fmt.Sprintf("%s: TD=%.4fs MR=%.3g/s QAP=%.5f%% (mistakes=%d over %.0fs)",
		r.Detector, r.TDAvg.Seconds(), r.MR, r.QAP*100, r.Mistakes, r.TotalTime.Seconds())
}

// Replay feeds the stream through det and measures its QoS. Heartbeats
// before det.Ready() (plus any before the first freshness point exists)
// count as warm-up — "It is reasonable to analyze the sampled data only
// after the sliding window is full because the network is unstable during
// the warm-up period" (§V).
func Replay(s trace.Stream, det detector.Detector) Result {
	res := Result{Detector: det.Name(), TDMin: 1 << 62}

	var (
		measStart     clock.Time
		measuring     bool
		lastSeq       uint64
		haveSeq       bool
		lastRecv      clock.Time
		tdSum         float64
		prevMistakeAt clock.Time
		recurrenceSum float64
		recurrenceCnt int64
		lastFP        clock.Time
	)

	for {
		rec, ok := s.Next()
		if !ok {
			break
		}
		if rec.Lost {
			continue
		}
		// Guard against stale or reordered records.
		if haveSeq && (rec.Seq <= lastSeq || rec.RecvTime <= lastRecv) {
			continue
		}

		if measuring {
			// Wrong suspicion: the previous freshness point expired
			// before this (alive) heartbeat arrived.
			if lastFP != 0 && rec.RecvTime.After(lastFP) {
				res.Mistakes++
				res.MistakeDur += rec.RecvTime.Sub(lastFP)
				if prevMistakeAt != 0 {
					recurrenceSum += float64(lastFP.Sub(prevMistakeAt))
					recurrenceCnt++
				}
				prevMistakeAt = lastFP
			}
		}

		det.Observe(rec.Seq, rec.SendTime, rec.RecvTime)
		lastSeq, haveSeq, lastRecv = rec.Seq, true, rec.RecvTime
		fp := det.FreshnessPoint()

		if !measuring {
			res.Warmup++
			if det.Ready() && fp != 0 {
				measuring = true
				measStart = rec.RecvTime
			}
			lastFP = fp
			continue
		}

		res.Arrivals++
		if fp != 0 {
			td := fp.Sub(rec.SendTime)
			if td < 0 {
				td = 0
			}
			tdSum += float64(td)
			if td < res.TDMin {
				res.TDMin = td
			}
			if td > res.TDMax {
				res.TDMax = td
			}
		}
		lastFP = fp
		res.TotalTime = rec.RecvTime.Sub(measStart)
	}

	if res.Arrivals > 0 {
		res.TDAvg = clock.Duration(tdSum / float64(res.Arrivals))
	} else {
		res.TDMin = 0
	}
	if res.TotalTime > 0 {
		res.MR = float64(res.Mistakes) / res.TotalTime.Seconds()
		qap := 1 - float64(res.MistakeDur)/float64(res.TotalTime)
		if qap < 0 {
			qap = 0
		}
		res.QAP = qap
	} else {
		res.QAP = 1
	}
	if res.Mistakes > 0 {
		res.TM = res.MistakeDur / clock.Duration(res.Mistakes)
	}
	if recurrenceCnt > 0 {
		res.TMR = clock.Duration(recurrenceSum / float64(recurrenceCnt))
	}
	return res
}

// CrashOutcome is the result of a crash-injection replay.
type CrashOutcome struct {
	Result
	CrashAt    clock.Time     // instant of the injected crash
	DetectedAt clock.Time     // when the detector began suspecting permanently
	Latency    clock.Duration // DetectedAt − CrashAt: the *actual* TD
}

// ReplayWithCrash replays the stream but injects a crash: every heartbeat
// with Seq ≥ crashSeq is dropped, and the crash instant is the send time
// of the first dropped heartbeat (the worst case the TD metric models —
// the process dies right after its last successful send). The returned
// outcome carries both the pre-crash QoS and the actual detection
// latency, which validates that the replay TD estimate predicts real
// detection behaviour.
func ReplayWithCrash(s trace.Stream, det detector.Detector, crashSeq uint64) CrashOutcome {
	pre := &crashFilter{s: s, crashSeq: crashSeq}
	out := CrashOutcome{Result: Replay(pre, det)}
	if !pre.crashed {
		return out // stream ended before the crash point
	}
	out.CrashAt = pre.crashAt
	fp := det.FreshnessPoint()
	out.DetectedAt = fp
	if fp < out.CrashAt {
		// Already suspecting at crash time (aggressive detector).
		out.DetectedAt = out.CrashAt
	}
	out.Latency = out.DetectedAt.Sub(out.CrashAt)
	return out
}

// crashFilter drops every record at or after crashSeq, remembering the
// crash instant.
type crashFilter struct {
	s        trace.Stream
	crashSeq uint64
	crashed  bool
	crashAt  clock.Time
}

func (c *crashFilter) Next() (trace.Record, bool) {
	for {
		rec, ok := c.s.Next()
		if !ok {
			return trace.Record{}, false
		}
		if rec.Seq >= c.crashSeq {
			if !c.crashed {
				c.crashed = true
				c.crashAt = rec.SendTime
			}
			continue
		}
		return rec, true
	}
}
