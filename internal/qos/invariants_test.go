package qos

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/trace"
)

// randomTrace builds a structurally valid random trace from quick inputs.
func randomTrace(seed int64, n int, lossPct int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{Meta: trace.Meta{Name: "rand"}}
	var send, lastRecv clock.Time
	for i := 0; i < n; i++ {
		rec := trace.Record{Seq: uint64(i), SendTime: send}
		if rng.Intn(100) < lossPct {
			rec.Lost = true
		} else {
			recv := send.Add(clock.Duration(1+rng.Intn(int(80*msQ))) + 5*msQ)
			if recv <= lastRecv {
				recv = lastRecv + 1
			}
			rec.RecvTime = recv
			lastRecv = recv
		}
		tr.Records = append(tr.Records, rec)
		send = send.Add(50*msQ + clock.Duration(rng.Intn(int(50*msQ))))
	}
	return tr
}

// TestReplayInvariantsProperty checks the structural invariants every
// replay result must satisfy for any detector on any valid trace:
// QAP ∈ [0,1], MistakeDur ≤ TotalTime, TDMin ≤ TDAvg ≤ TDMax, and the
// arrival/warm-up partition adds up.
func TestReplayInvariantsProperty(t *testing.T) {
	f := func(seed int64, lossRaw, detSel uint8) bool {
		lossPct := int(lossRaw % 30)
		tr := randomTrace(seed, 2000, lossPct)
		if err := tr.Validate(); err != nil {
			return false
		}
		var det detector.Detector
		switch detSel % 5 {
		case 0:
			det = detector.NewChen(100, 0, 50*msQ)
		case 1:
			det = detector.NewBertier(100, 0, detector.DefaultBertierParams())
		case 2:
			det = detector.NewPhi(100, 4, 0)
		case 3:
			det = detector.NewRTO(4, 2)
		default:
			det = core.New(core.Config{WindowSize: 100, InitialMargin: 50 * msQ})
		}
		res := Replay(tr.Stream(), det)
		if res.QAP < 0 || res.QAP > 1 {
			return false
		}
		if res.MistakeDur > res.TotalTime {
			return false
		}
		if res.Arrivals > 0 && (res.TDMin > res.TDAvg || res.TDAvg > res.TDMax) {
			return false
		}
		if res.Mistakes > 0 && res.TM <= 0 {
			return false
		}
		received := int64(0)
		for _, r := range tr.Records {
			if !r.Lost {
				received++
			}
		}
		return res.Arrivals+res.Warmup == received
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestReplayMoreLossMoreMistakesTrend: for a fixed aggressive detector,
// higher loss can only hurt accuracy (statistically, with fixed seed).
func TestReplayMoreLossMoreMistakesTrend(t *testing.T) {
	mk := func(lossPct int) Result {
		tr := randomTrace(99, 4000, lossPct)
		return Replay(tr.Stream(), detector.NewChen(100, 0, 40*msQ))
	}
	clean := mk(0)
	lossy := mk(20)
	if lossy.Mistakes <= clean.Mistakes {
		t.Fatalf("20%% loss produced %d mistakes vs %d clean", lossy.Mistakes, clean.Mistakes)
	}
	if lossy.QAP >= clean.QAP {
		t.Fatalf("20%% loss QAP %v not below clean %v", lossy.QAP, clean.QAP)
	}
}

// TestCrashDetectedForEveryDetectorType: every detector in the repository
// eventually detects an injected crash on a clean trace.
func TestCrashDetectedForEveryDetectorType(t *testing.T) {
	tr := randomTrace(7, 3000, 0)
	dets := []detector.Detector{
		detector.NewChen(100, 0, 100*msQ),
		detector.NewBertier(100, 0, detector.DefaultBertierParams()),
		detector.NewPhi(100, 8, 0),
		detector.NewPhiExp(100, 2),
		detector.NewRTO(4, 2),
		detector.NewFixed(2*clock.Second, 100),
		core.New(core.Config{WindowSize: 100, InitialMargin: 100 * msQ}),
	}
	for _, det := range dets {
		out := ReplayWithCrash(tr.Stream(), det, 1500)
		if out.Latency <= 0 {
			t.Errorf("%s: crash not detected", det.Name())
		}
		if out.Latency > 30*clock.Second {
			t.Errorf("%s: implausible latency %v", det.Name(), out.Latency)
		}
	}
}
