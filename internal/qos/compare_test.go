package qos

import (
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/detector"
)

// small aliases keeping the real-sweep test readable
type detectorIface = detector.Detector

func newChenMS(alphaMS float64) detector.Detector {
	return detector.NewChen(500, 0, clock.Duration(alphaMS*float64(clock.Millisecond)))
}

func newPhiThresh(p float64) detector.Detector {
	return detector.NewPhi(500, p, 0)
}

func mkCurve(name string, pts ...[3]float64) Curve {
	// each pt: TD seconds, MR, QAP
	c := Curve{Detector: name}
	for i, p := range pts {
		c.Points = append(c.Points, Point{
			Param: float64(i),
			Result: Result{
				Detector: name,
				TDAvg:    clock.FromSeconds(p[0]).Sub(0),
				MR:       p[1],
				QAP:      p[2],
			},
		})
	}
	return c
}

func TestInterpolation(t *testing.T) {
	c := mkCurve("x", [3]float64{0.1, 1.0, 0.9}, [3]float64{0.3, 0.5, 0.95}, [3]float64{0.5, 0.1, 0.99})
	mr, ok := interpMR(c, clock.FromSeconds(0.2).Sub(0))
	if !ok || mr < 0.74 || mr > 0.76 {
		t.Fatalf("interp MR at 0.2s = %v,%v, want 0.75", mr, ok)
	}
	qap, ok := interpQAP(c, clock.FromSeconds(0.4).Sub(0))
	if !ok || qap < 0.969 || qap > 0.971 {
		t.Fatalf("interp QAP at 0.4s = %v,%v, want 0.97", qap, ok)
	}
	if _, ok := interpMR(c, clock.FromSeconds(0.05).Sub(0)); ok {
		t.Fatal("interpolated outside range")
	}
	if _, ok := interpMR(c, clock.FromSeconds(0.9).Sub(0)); ok {
		t.Fatal("interpolated beyond range")
	}
	// Exact endpoints.
	if mr, ok := interpMR(c, clock.FromSeconds(0.1).Sub(0)); !ok || mr != 1.0 {
		t.Fatalf("endpoint interp = %v,%v", mr, ok)
	}
}

func TestCompareAtPicksWinners(t *testing.T) {
	fast := mkCurve("fast", [3]float64{0.1, 0.9, 0.90}, [3]float64{0.5, 0.5, 0.94})
	slow := mkCurve("slow", [3]float64{0.2, 0.4, 0.97}, [3]float64{0.6, 0.01, 0.999})
	anchors := CompareAt([]Curve{fast, slow},
		[]clock.Duration{150 * clock.Millisecond, 300 * clock.Millisecond, clock.Second})
	if anchors[0].BestMR != "fast" || anchors[0].Eligible != 1 {
		t.Fatalf("anchor 0: %+v (only fast covers 0.15s)", anchors[0])
	}
	if anchors[1].BestMR != "slow" || anchors[1].Eligible != 2 {
		t.Fatalf("anchor 1: %+v (slow has lower MR at 0.3s)", anchors[1])
	}
	if anchors[1].BestQAP != "slow" {
		t.Fatalf("anchor 1 QAP winner: %+v", anchors[1])
	}
	if anchors[2].Eligible != 0 {
		t.Fatalf("anchor 2 should be empty: %+v", anchors[2])
	}
	table := AnchorTable(anchors)
	if !strings.Contains(table, "slow") || !strings.Contains(table, "(no curve)") {
		t.Fatalf("bad table:\n%s", table)
	}
}

func TestCrossoverFound(t *testing.T) {
	// a starts below b, ends above: exactly one crossover around 0.3s.
	a := mkCurve("a", [3]float64{0.1, 0.1, 0.9}, [3]float64{0.5, 0.5, 0.9})
	b := mkCurve("b", [3]float64{0.1, 0.5, 0.9}, [3]float64{0.5, 0.1, 0.9})
	td, ok := Crossover(a, b)
	if !ok {
		t.Fatal("crossover not found")
	}
	s := td.Seconds()
	if s < 0.28 || s > 0.32 {
		t.Fatalf("crossover at %.3fs, want ≈0.30", s)
	}
}

func TestCrossoverAbsentWhenDominated(t *testing.T) {
	a := mkCurve("a", [3]float64{0.1, 0.1, 0.9}, [3]float64{0.5, 0.05, 0.9})
	b := mkCurve("b", [3]float64{0.1, 0.5, 0.9}, [3]float64{0.5, 0.4, 0.9})
	if _, ok := Crossover(a, b); ok {
		t.Fatal("phantom crossover between non-intersecting curves")
	}
}

func TestCrossoverDisjointRanges(t *testing.T) {
	a := mkCurve("a", [3]float64{0.1, 0.1, 0.9}, [3]float64{0.2, 0.05, 0.9})
	b := mkCurve("b", [3]float64{0.5, 0.5, 0.9}, [3]float64{0.9, 0.4, 0.9})
	if _, ok := Crossover(a, b); ok {
		t.Fatal("crossover with no overlap")
	}
}

func TestCompareOnRealSweep(t *testing.T) {
	// Chen vs φ on the JP↔CH trace: the anchor machinery must produce a
	// coherent winner in the range both curves cover.
	tr := wanTrace(t, "WAN-JPCH", 25_000)
	chen := Sweep(tr, "Chen", func(a float64) detectorIface {
		return newChenMS(a)
	}, []float64{0, 50, 100, 200, 400})
	phi := Sweep(tr, "phi", func(p float64) detectorIface {
		return newPhiThresh(p)
	}, []float64{0.5, 1, 2, 4, 8})
	pMin, pMax := phi.TDRange()
	anchors := CompareAt([]Curve{chen, phi}, []clock.Duration{(pMin + pMax) / 2})
	if anchors[0].Eligible < 1 {
		t.Fatalf("no eligible curves at mid-anchor: %+v", anchors[0])
	}
	if anchors[0].BestMR == "" || anchors[0].BestQAP == "" {
		t.Fatalf("no winners: %+v", anchors[0])
	}
}
