package qos

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/clock"
)

// This file analyses relationships *between* QoS curves — who wins at a
// given detection-time budget, and where two detectors' orderings flip.
// The paper's §V warns that comparing parametric detectors at arbitrary
// parameter values "almost always leads to the erroneous conclusion that
// one is better for detection time while the other provides higher
// accuracy"; the honest comparison is at equal TD, which is what these
// helpers implement.

// Anchor is the comparison of all curves at one detection-time budget.
type Anchor struct {
	TD       clock.Duration
	BestMR   string  // detector with the lowest interpolated MR at TD
	MR       float64 // that MR
	BestQAP  string  // detector with the highest interpolated QAP at TD
	QAP      float64
	Eligible int // curves whose TD range covers the anchor
}

// interpMR linearly interpolates a curve's MR at the given TD; ok=false
// when TD lies outside the curve's range. Points must be TD-sorted.
func interpMR(c Curve, td clock.Duration) (float64, bool) {
	return interpolate(c, td, func(r Result) float64 { return r.MR })
}

// interpQAP interpolates QAP at TD.
func interpQAP(c Curve, td clock.Duration) (float64, bool) {
	return interpolate(c, td, func(r Result) float64 { return r.QAP })
}

func interpolate(c Curve, td clock.Duration, f func(Result) float64) (float64, bool) {
	pts := append([]Point(nil), c.Points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Result.TDAvg < pts[j].Result.TDAvg })
	if len(pts) == 0 {
		return 0, false
	}
	if td < pts[0].Result.TDAvg || td > pts[len(pts)-1].Result.TDAvg {
		return 0, false
	}
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1].Result, pts[i].Result
		if td >= a.TDAvg && td <= b.TDAvg {
			span := float64(b.TDAvg - a.TDAvg)
			if span == 0 {
				return f(a), true
			}
			frac := float64(td-a.TDAvg) / span
			return f(a) + frac*(f(b)-f(a)), true
		}
	}
	return f(pts[len(pts)-1].Result), true
}

// CompareAt evaluates every curve at the given anchors and reports the
// winners. Single-point curves (Bertier) participate only at anchors
// inside their degenerate range.
func CompareAt(curves []Curve, anchors []clock.Duration) []Anchor {
	out := make([]Anchor, 0, len(anchors))
	for _, td := range anchors {
		a := Anchor{TD: td}
		bestMR, bestQAP := -1.0, -1.0
		for _, c := range curves {
			if mr, ok := interpMR(c, td); ok {
				a.Eligible++
				if bestMR < 0 || mr < bestMR {
					bestMR, a.BestMR = mr, c.Detector
					a.MR = mr
				}
				if qap, ok := interpQAP(c, td); ok {
					if bestQAP < 0 || qap > bestQAP {
						bestQAP, a.BestQAP = qap, c.Detector
						a.QAP = qap
					}
				}
			}
		}
		out = append(out, a)
	}
	return out
}

// Crossover finds the detection time at which curve a stops having lower
// MR than curve b (or vice versa): the first sign change of
// MR_a(TD) − MR_b(TD) over their overlapping range, located by bisection
// on the interpolants. ok=false when the ordering never flips (no
// crossover — one curve dominates the overlap).
func Crossover(a, b Curve) (clock.Duration, bool) {
	aMin, aMax := a.TDRange()
	bMin, bMax := b.TDRange()
	lo, hi := maxD(aMin, bMin), minD(aMax, bMax)
	if lo >= hi {
		return 0, false
	}
	diff := func(td clock.Duration) (float64, bool) {
		ma, ok1 := interpMR(a, td)
		mb, ok2 := interpMR(b, td)
		if !ok1 || !ok2 {
			return 0, false
		}
		return ma - mb, true
	}
	dLo, ok := diff(lo)
	if !ok {
		return 0, false
	}
	// Scan for a sign change, then bisect.
	const scanSteps = 64
	step := (hi - lo) / scanSteps
	if step <= 0 {
		return 0, false
	}
	prevTD, prevD := lo, dLo
	for td := lo + step; td <= hi; td += step {
		d, ok := diff(td)
		if !ok {
			continue
		}
		if (prevD < 0) != (d < 0) && prevD != 0 {
			l, r := prevTD, td
			for i := 0; i < 40; i++ {
				mid := (l + r) / 2
				dm, ok := diff(mid)
				if !ok {
					break
				}
				if (dm < 0) == (prevD < 0) {
					l = mid
				} else {
					r = mid
				}
			}
			return (l + r) / 2, true
		}
		prevTD, prevD = td, d
	}
	return 0, false
}

// AnchorTable renders CompareAt results.
func AnchorTable(anchors []Anchor) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s  %-14s %-14s  %-14s %-12s %s\n",
		"TD[s]", "best MR", "value", "best QAP", "value", "eligible")
	for _, a := range anchors {
		if a.Eligible == 0 {
			fmt.Fprintf(&b, "%10.3f  %-14s\n", a.TD.Seconds(), "(no curve)")
			continue
		}
		fmt.Fprintf(&b, "%10.3f  %-14s %-14.4g  %-14s %-12.5f %d\n",
			a.TD.Seconds(), a.BestMR, a.MR, a.BestQAP, a.QAP*100, a.Eligible)
	}
	return b.String()
}

func maxD(a, b clock.Duration) clock.Duration {
	if a > b {
		return a
	}
	return b
}

func minD(a, b clock.Duration) clock.Duration {
	if a < b {
		return a
	}
	return b
}
