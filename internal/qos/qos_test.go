package qos

import (
	"math"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/trace"
)

const msQ = clock.Millisecond

// syntheticTrace builds a deterministic trace: n heartbeats every iv,
// constant delay, with the listed sequence numbers dropped.
func syntheticTrace(n int, iv, delay clock.Duration, drop map[uint64]bool) *trace.Trace {
	tr := &trace.Trace{Meta: trace.Meta{Name: "synthetic", Interval: iv}}
	for i := 0; i < n; i++ {
		rec := trace.Record{Seq: uint64(i), SendTime: clock.Time(i) * clock.Time(iv)}
		if drop[rec.Seq] {
			rec.Lost = true
		} else {
			rec.RecvTime = rec.SendTime.Add(delay)
		}
		tr.Records = append(tr.Records, rec)
	}
	return tr
}

func wanTrace(t testing.TB, name string, count int) *trace.Trace {
	t.Helper()
	gp, err := trace.Preset(name)
	if err != nil {
		t.Fatal(err)
	}
	gp.Count = count
	return trace.Collect(gp.Meta, trace.NewGenerator(gp))
}

func TestReplayPerfectNetworkNoMistakes(t *testing.T) {
	tr := syntheticTrace(500, 100*msQ, 5*msQ, nil)
	det := detector.NewChen(50, 100*msQ, 50*msQ)
	res := Replay(tr.Stream(), det)
	if res.Mistakes != 0 {
		t.Fatalf("mistakes = %d on a perfect network", res.Mistakes)
	}
	if res.QAP != 1 {
		t.Fatalf("QAP = %v, want 1", res.QAP)
	}
	if res.MR != 0 {
		t.Fatalf("MR = %v, want 0", res.MR)
	}
	// TD = Δt + delay + α for a crash right after a send on a perfectly
	// regular network.
	want := 100*msQ + 5*msQ + 50*msQ
	if d := res.TDAvg - want; d < -msQ || d > msQ {
		t.Fatalf("TD = %v, want ≈%v", res.TDAvg, want)
	}
	if res.Warmup == 0 {
		t.Fatal("no warm-up recorded")
	}
	if res.Arrivals != 500-res.Warmup {
		t.Fatalf("arrivals %d + warmup %d != 500", res.Arrivals, res.Warmup)
	}
}

func TestReplayLossCausesMistakesForAggressiveDetector(t *testing.T) {
	// Drop a run of heartbeats: an aggressive Chen (α=0) must record
	// exactly one wrong suspicion ending at the next arrival.
	drop := map[uint64]bool{200: true, 201: true, 202: true}
	tr := syntheticTrace(400, 100*msQ, 5*msQ, drop)
	det := detector.NewChen(50, 100*msQ, 10*msQ)
	res := Replay(tr.Stream(), det)
	if res.Mistakes != 1 {
		t.Fatalf("mistakes = %d, want 1", res.Mistakes)
	}
	// Suspicion spans from FP(200) ≈ 20.015s+α to arrival of 203 ≈
	// 20.305s: roughly 280 ms.
	if res.MistakeDur < 200*msQ || res.MistakeDur > 400*msQ {
		t.Fatalf("mistake duration = %v, want ≈290ms", res.MistakeDur)
	}
	if res.QAP >= 1 || res.QAP < 0.9 {
		t.Fatalf("QAP = %v", res.QAP)
	}
	if res.TM != res.MistakeDur {
		t.Fatalf("TM = %v, want %v for a single mistake", res.TM, res.MistakeDur)
	}
}

func TestReplayTMRBetweenMistakes(t *testing.T) {
	drop := map[uint64]bool{100: true, 300: true}
	tr := syntheticTrace(500, 100*msQ, 5*msQ, drop)
	det := detector.NewChen(20, 100*msQ, 10*msQ)
	res := Replay(tr.Stream(), det)
	if res.Mistakes != 2 {
		t.Fatalf("mistakes = %d, want 2", res.Mistakes)
	}
	// Suspicion starts ≈ 20s apart (200 heartbeats × 100 ms).
	if res.TMR < 19*clock.Second || res.TMR > 21*clock.Second {
		t.Fatalf("TMR = %v, want ≈20s", res.TMR)
	}
}

func TestReplaySkipsStaleRecords(t *testing.T) {
	tr := syntheticTrace(100, 100*msQ, 5*msQ, nil)
	// Inject a duplicate and an out-of-order record.
	dup := tr.Records[50]
	tr.Records = append(tr.Records[:60], append([]trace.Record{dup}, tr.Records[60:]...)...)
	det := detector.NewChen(10, 100*msQ, 20*msQ)
	res := Replay(tr.Stream(), det)
	if res.Mistakes != 0 {
		t.Fatalf("stale record caused mistakes: %d", res.Mistakes)
	}
}

func TestReplayEmptyStream(t *testing.T) {
	res := Replay(trace.NewCursor(&trace.Trace{}), detector.NewChen(10, 100*msQ, 0))
	if res.Arrivals != 0 || res.Mistakes != 0 || res.QAP != 1 {
		t.Fatalf("empty replay: %+v", res)
	}
	if res.TDMin != 0 {
		t.Fatalf("TDMin sentinel leaked: %v", res.TDMin)
	}
}

func TestReplayWithCrashDetection(t *testing.T) {
	tr := syntheticTrace(1000, 100*msQ, 5*msQ, nil)
	det := detector.NewChen(50, 100*msQ, 50*msQ)
	out := ReplayWithCrash(tr.Stream(), det, 500)
	if out.CrashAt != clock.Time(500)*clock.Time(100*msQ) {
		t.Fatalf("CrashAt = %v", out.CrashAt)
	}
	if out.Latency <= 0 {
		t.Fatal("crash not detected")
	}
	// The TD estimate models a crash right after a send; the injected
	// crash happens right before the next send, so the actual latency
	// lands in [TD − Δt, TD].
	lo, hi := out.TDAvg-100*msQ-5*msQ, out.TDAvg+5*msQ
	if out.Latency < lo || out.Latency > hi {
		t.Fatalf("actual latency %v outside [%v, %v] (TD=%v)", out.Latency, lo, hi, out.TDAvg)
	}
}

func TestReplayWithCrashBeforeWarmup(t *testing.T) {
	tr := syntheticTrace(100, 100*msQ, 5*msQ, nil)
	det := detector.NewChen(50, 100*msQ, 50*msQ)
	out := ReplayWithCrash(tr.Stream(), det, 2000) // crash beyond trace end
	if out.CrashAt != 0 || out.Latency != 0 {
		t.Fatalf("phantom crash: %+v", out)
	}
}

func TestSweepChenMonotoneTradeoff(t *testing.T) {
	tr := wanTrace(t, "WAN-JPCH", 30_000)
	params := []float64{0, 50, 100, 200, 400, 800} // α in ms
	curve := Sweep(tr, "Chen", func(a float64) detector.Detector {
		return detector.NewChen(1000, 0, clock.Duration(a*float64(msQ)))
	}, params)
	if len(curve.Points) != len(params) {
		t.Fatalf("curve has %d points", len(curve.Points))
	}
	// TD strictly increases with α; MR is nonincreasing (within noise).
	for i := 1; i < len(curve.Points); i++ {
		prev, cur := curve.Points[i-1].Result, curve.Points[i].Result
		if cur.TDAvg <= prev.TDAvg {
			t.Errorf("TD not increasing: α=%v gives %v after %v",
				curve.Points[i].Param, cur.TDAvg, prev.TDAvg)
		}
		if cur.MR > prev.MR*1.05+1e-9 {
			t.Errorf("MR increased with α: %v → %v", prev.MR, cur.MR)
		}
	}
}

func TestSweepPhiCurve(t *testing.T) {
	tr := wanTrace(t, "WAN-JPCH", 30_000)
	curve := Sweep(tr, "phi", func(phi float64) detector.Detector {
		return detector.NewPhi(1000, phi, 0)
	}, []float64{0.5, 1, 2, 4, 8, 16})
	for i := 1; i < len(curve.Points); i++ {
		if curve.Points[i].Result.TDAvg <= curve.Points[i-1].Result.TDAvg {
			t.Errorf("φ TD not increasing at Φ=%v", curve.Points[i].Param)
		}
	}
	// QAP must be high everywhere on a 0.4%-loss network (Φ=0.5 is
	// extremely aggressive, so allow it a couple of percent).
	for _, p := range curve.Points {
		if p.Result.QAP < 0.96 {
			t.Errorf("Φ=%v: QAP=%v implausibly low", p.Param, p.Result.QAP)
		}
	}
}

func TestSweepSFDStaysInsideTargetBand(t *testing.T) {
	// The paper's headline claim (Fig. 6): SFD has no points in the
	// too-aggressive or too-conservative extremes because feedback pulls
	// the margin toward the target box.
	tr := wanTrace(t, "WAN-JPCH", 40_000)
	targets := core.Targets{MaxTD: 900 * msQ, MaxMR: 0.1, MinQAP: 0.995}
	curve := Sweep(tr, "SFD", func(sm1 float64) detector.Detector {
		return core.New(core.Config{
			WindowSize: 1000, InitialMargin: clock.Duration(sm1 * float64(msQ)),
			Alpha: 100 * msQ, Beta: 0.5, SlotHeartbeats: 200, Targets: targets,
		})
	}, []float64{10, 100, 400, 1500, 3000})
	// Even with SM₁ = 3 s (far too conservative) the measured TD must be
	// pulled well below a pure Chen with α = 3 s (whose TD ≈ 3.25 s).
	for _, p := range curve.Points {
		if p.Result.TDAvg > 2*clock.Second {
			t.Errorf("SM1=%v ms: TD=%v — feedback failed to pull margin down",
				p.Param, p.Result.TDAvg)
		}
	}
}

func TestCurveHelpers(t *testing.T) {
	c := Curve{Detector: "X", Points: []Point{
		{Param: 1, Result: Result{TDAvg: 100 * msQ, MR: 0.5, QAP: 0.99}},
		{Param: 2, Result: Result{TDAvg: 300 * msQ, MR: 0.1, QAP: 0.995}},
		{Param: 3, Result: Result{TDAvg: 500 * msQ, MR: 0.01, QAP: 0.999}},
	}}
	min, max := c.TDRange()
	if min != 100*msQ || max != 500*msQ {
		t.Fatalf("TDRange = %v,%v", min, max)
	}
	mr, ok := c.BestMRAt(350 * msQ)
	if !ok || mr != 0.1 {
		t.Fatalf("BestMRAt = %v,%v", mr, ok)
	}
	qap, ok := c.BestQAPAt(350 * msQ)
	if !ok || qap != 0.995 {
		t.Fatalf("BestQAPAt = %v,%v", qap, ok)
	}
	if _, ok := c.BestMRAt(msQ); ok {
		t.Fatal("BestMRAt matched below all points")
	}
	if c.Table() == "" {
		t.Fatal("empty table")
	}
	// SortByTD on shuffled points.
	c.Points[0], c.Points[2] = c.Points[2], c.Points[0]
	c.SortByTD()
	if c.Points[0].Result.TDAvg != 100*msQ {
		t.Fatal("SortByTD wrong")
	}
	var empty Curve
	if mn, mx := empty.TDRange(); mn != 0 || mx != 0 {
		t.Fatal("empty TDRange")
	}
}

func TestLinLogSpace(t *testing.T) {
	lin := LinSpace(0, 10, 5)
	want := []float64{0, 2.5, 5, 7.5, 10}
	for i := range want {
		if math.Abs(lin[i]-want[i]) > 1e-12 {
			t.Fatalf("LinSpace = %v", lin)
		}
	}
	if got := LinSpace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Fatal("LinSpace n=1 wrong")
	}
	lg := LogSpace(1, 1000, 4)
	wantLg := []float64{1, 10, 100, 1000}
	for i := range wantLg {
		if math.Abs(lg[i]-wantLg[i]) > 1e-9*wantLg[i] {
			t.Fatalf("LogSpace = %v", lg)
		}
	}
	if got := LogSpace(0, 10, 3); got[0] <= 0 {
		t.Fatal("LogSpace lo=0 not floored")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Detector: "X", TDAvg: 100 * msQ, MR: 0.1, QAP: 0.99}
	if r.String() == "" {
		t.Fatal("empty string")
	}
}

func BenchmarkReplayChen(b *testing.B) {
	tr := wanTrace(b, "WAN-1", 50_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Replay(tr.Stream(), detector.NewChen(1000, 0, 100*msQ))
	}
}
