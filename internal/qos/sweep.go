package qos

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/clock"
	"repro/internal/detector"
	"repro/internal/trace"
)

// Factory builds a fresh detector for one parameter value of a sweep:
// Chen's α, φ's Φ, SFD's SM₁ — "each point in the graph is corresponding
// to a parameter in this FD scheme" (§V footnote 9).
type Factory func(param float64) detector.Detector

// Point is one point of a QoS curve: the parameter value and the QoS it
// produced.
type Point struct {
	Param  float64
	Result Result
}

// Curve is a detector's QoS trade-off curve: the set of (TD, accuracy)
// points reachable by varying its parameter "from a highly aggressive
// behavior to a very conservative one" (§V).
type Curve struct {
	Detector string
	Points   []Point
}

// Sweep replays the trace once per parameter value, in parallel across
// the available cores (each replay is independent — the same logged
// arrivals feed every detector instance, the paper's fairness condition).
func Sweep(tr *trace.Trace, name string, factory Factory, params []float64) Curve {
	c := Curve{Detector: name, Points: make([]Point, len(params))}
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for i, p := range params {
		wg.Add(1)
		go func(i int, p float64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			det := factory(p)
			c.Points[i] = Point{Param: p, Result: Replay(tr.Stream(), det)}
		}(i, p)
	}
	wg.Wait()
	sort.Slice(c.Points, func(a, b int) bool { return c.Points[a].Param < c.Points[b].Param })
	return c
}

// SortByTD orders the curve points by detection time, the x-axis of the
// paper's figures.
func (c *Curve) SortByTD() {
	sort.Slice(c.Points, func(a, b int) bool {
		return c.Points[a].Result.TDAvg < c.Points[b].Result.TDAvg
	})
}

// TDRange returns the span of detection times the curve covers.
func (c Curve) TDRange() (min, max clock.Duration) {
	if len(c.Points) == 0 {
		return 0, 0
	}
	min, max = c.Points[0].Result.TDAvg, c.Points[0].Result.TDAvg
	for _, p := range c.Points[1:] {
		if p.Result.TDAvg < min {
			min = p.Result.TDAvg
		}
		if p.Result.TDAvg > max {
			max = p.Result.TDAvg
		}
	}
	return min, max
}

// BestMRAt returns the lowest mistake rate among points whose detection
// time does not exceed maxTD; ok is false when no point qualifies. This
// is how curves are compared at equal detection time ("Chen FD can
// obtain the lowest MR with the same TD").
func (c Curve) BestMRAt(maxTD clock.Duration) (float64, bool) {
	best, found := 0.0, false
	for _, p := range c.Points {
		if p.Result.TDAvg <= maxTD {
			if !found || p.Result.MR < best {
				best, found = p.Result.MR, true
			}
		}
	}
	return best, found
}

// BestQAPAt returns the highest QAP among points with TD ≤ maxTD.
func (c Curve) BestQAPAt(maxTD clock.Duration) (float64, bool) {
	best, found := 0.0, false
	for _, p := range c.Points {
		if p.Result.TDAvg <= maxTD {
			if !found || p.Result.QAP > best {
				best, found = p.Result.QAP, true
			}
		}
	}
	return best, found
}

// Table renders the curve as aligned text rows: param, TD, MR, QAP — the
// series behind one figure line.
func (c Curve) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", c.Detector)
	fmt.Fprintf(&b, "%14s %12s %14s %12s %10s\n", "param", "TD[s]", "MR[1/s]", "QAP[%]", "mistakes")
	for _, p := range c.Points {
		fmt.Fprintf(&b, "%14.6g %12.4f %14.6g %12.5f %10d\n",
			p.Param, p.Result.TDAvg.Seconds(), p.Result.MR, p.Result.QAP*100, p.Result.Mistakes)
	}
	return b.String()
}

// LinSpace returns n evenly spaced values over [lo, hi] inclusive.
func LinSpace(lo, hi float64, n int) []float64 {
	if n <= 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// LogSpace returns n logarithmically spaced values over [lo, hi]
// inclusive (lo must be > 0). Parameter sweeps that span orders of
// magnitude (Chen's α ∈ [0, 10000] ms) look linear on the paper's
// log-scale MR axis when spaced this way.
func LogSpace(lo, hi float64, n int) []float64 {
	if lo <= 0 {
		lo = 1e-9
	}
	if n <= 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := hi / lo
	for i := range out {
		out[i] = lo * math.Pow(ratio, float64(i)/float64(n-1))
	}
	return out
}
