// Package netsim is a deterministic discrete-event network simulator: the
// substitute substrate for the paper's PlanetLab/Internet UDP paths (see
// DESIGN.md §2). Nodes exchange datagrams over directional links whose
// delay follows base + Gamma jitter + exponential heavy tail and whose
// loss follows a Gilbert–Elliott burst model — the same processes the
// synthetic trace generator uses, so live simulation and trace replay
// agree statistically.
//
// The simulator runs on a clock.Sim: deliveries are scheduled as timer
// callbacks, so an entire multi-node, multi-hour experiment executes in
// milliseconds of wall time and is bit-for-bit reproducible from its
// seed. Channel semantics match the paper's model (§II-B): messages may
// be lost, but are never created, altered, or duplicated; FIFO per link.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/clock"
	"repro/internal/stats"
)

// LinkParams describes one directional link.
type LinkParams struct {
	DelayBase  clock.Duration // propagation floor
	JitterMean clock.Duration // Gamma jitter mean
	JitterStd  clock.Duration // Gamma jitter std
	TailProb   float64        // probability of an exponential excursion
	TailScale  clock.Duration // mean of the excursion
	LossRate   float64        // long-run loss fraction
	MeanBurst  float64        // mean loss-burst length (events)
}

// DefaultLink returns a mild-WAN link: 40 ms base, small jitter, no loss.
func DefaultLink() LinkParams {
	return LinkParams{
		DelayBase:  40 * clock.Millisecond,
		JitterMean: 2 * clock.Millisecond,
		JitterStd:  2 * clock.Millisecond,
	}
}

// Inbound is a delivered datagram.
type Inbound struct {
	From    string
	Payload []byte
	At      clock.Time // delivery instant on the receiver's clock
}

// Network is the simulated fabric. All methods are safe for concurrent
// use, though deterministic runs should drive it from one goroutine.
type Network struct {
	clk *clock.Sim
	rng *rand.Rand

	mu          sync.Mutex
	nodes       map[string]*Node
	links       map[linkKey]*link
	defaultLink LinkParams
	partitioned map[linkKey]bool
	delivered   uint64
	dropped     uint64
}

type linkKey struct{ from, to string }

type link struct {
	params      LinkParams
	ge          *stats.GilbertElliott
	lastDeliver clock.Time
}

// ErrUnknownNode reports a send to or from an unregistered address.
var ErrUnknownNode = errors.New("netsim: unknown node")

// New creates an empty network on the given simulated clock, with the
// given default link parameters for node pairs that have no explicit
// link, and a deterministic seed.
func New(clk *clock.Sim, def LinkParams, seed int64) *Network {
	return &Network{
		clk:         clk,
		rng:         rand.New(rand.NewSource(seed)),
		nodes:       make(map[string]*Node),
		links:       make(map[linkKey]*link),
		defaultLink: def,
		partitioned: make(map[linkKey]bool),
	}
}

// Clock returns the simulated clock driving the network.
func (n *Network) Clock() *clock.Sim { return n.clk }

// AddNode registers a node with the given address and inbox capacity
// (datagrams overflowing the inbox are dropped, like a full UDP socket
// buffer). It panics on duplicate addresses — a configuration bug.
func (n *Network) AddNode(addr string, inboxCap int) *Node {
	if inboxCap <= 0 {
		inboxCap = 1024
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.nodes[addr]; dup {
		panic(fmt.Sprintf("netsim: duplicate node %q", addr))
	}
	node := &Node{addr: addr, net: n, inbox: make(chan Inbound, inboxCap)}
	n.nodes[addr] = node
	return node
}

// SetLink installs directional link parameters from → to.
func (n *Network) SetLink(from, to string, p LinkParams) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{from, to}] = &link{params: p, ge: stats.NewGilbertElliott(p.LossRate, p.MeanBurst)}
}

// SetBidirectional installs the same parameters in both directions.
func (n *Network) SetBidirectional(a, b string, p LinkParams) {
	n.SetLink(a, b, p)
	n.SetLink(b, a, p)
}

// Partition cuts the directional path from → to (every datagram dropped)
// until Heal is called. Partitioning both directions models the paper's
// long outage bursts.
func (n *Network) Partition(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitioned[linkKey{from, to}] = true
}

// PartitionBoth cuts both directions between a and b.
func (n *Network) PartitionBoth(a, b string) {
	n.Partition(a, b)
	n.Partition(b, a)
}

// Heal restores the directional path from → to.
func (n *Network) Heal(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitioned, linkKey{from, to})
}

// HealBoth restores both directions.
func (n *Network) HealBoth(a, b string) {
	n.Heal(a, b)
	n.Heal(b, a)
}

// Stats returns delivered and dropped datagram counts.
func (n *Network) Stats() (delivered, dropped uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delivered, n.dropped
}

// send routes one datagram; called by Node.Send.
func (n *Network) send(from, to string, payload []byte) error {
	n.mu.Lock()
	dst, ok := n.nodes[to]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	key := linkKey{from, to}
	if n.partitioned[key] {
		n.dropped++
		n.mu.Unlock()
		return nil // silently dropped, like real UDP into a black hole
	}
	lk := n.links[key]
	if lk == nil {
		lk = &link{params: n.defaultLink, ge: stats.NewGilbertElliott(n.defaultLink.LossRate, n.defaultLink.MeanBurst)}
		n.links[key] = lk
	}
	if lk.ge.Drop(n.rng) {
		n.dropped++
		n.mu.Unlock()
		return nil
	}

	p := lk.params
	d := float64(p.DelayBase)
	if p.JitterMean > 0 {
		d += stats.SampleGamma(n.rng, float64(p.JitterMean), float64(p.JitterStd))
	}
	if p.TailProb > 0 && n.rng.Float64() < p.TailProb {
		d += n.rng.ExpFloat64() * float64(p.TailScale)
	}
	deliverAt := n.clk.Now().Add(clock.Duration(d))
	// FIFO per link, matching the paper's channel model.
	if deliverAt <= lk.lastDeliver {
		deliverAt = lk.lastDeliver + 1
	}
	lk.lastDeliver = deliverAt
	n.delivered++
	n.mu.Unlock()

	cp := make([]byte, len(payload))
	copy(cp, payload)
	n.clk.AfterFunc(deliverAt.Sub(n.clk.Now()), func(at clock.Time) {
		select {
		case dst.inbox <- Inbound{From: from, Payload: cp, At: at}:
		default:
			// Inbox overflow: drop, as a saturated socket buffer would.
			n.mu.Lock()
			n.dropped++
			n.delivered--
			n.mu.Unlock()
		}
	})
	return nil
}

// Node is a simulated host endpoint.
type Node struct {
	addr  string
	net   *Network
	inbox chan Inbound
}

// Addr returns the node's address.
func (nd *Node) Addr() string { return nd.addr }

// Send transmits a datagram to the named node. A nil error does not mean
// delivery — the link may drop it (unreliable channel).
func (nd *Node) Send(to string, payload []byte) error {
	return nd.net.send(nd.addr, to, payload)
}

// Recv returns the node's delivery channel. Drain it with TryRecv or a
// select; deliveries occur inside clock.Sim.Advance.
func (nd *Node) Recv() <-chan Inbound { return nd.inbox }

// TryRecv performs a non-blocking receive.
func (nd *Node) TryRecv() (Inbound, bool) {
	select {
	case in := <-nd.inbox:
		return in, true
	default:
		return Inbound{}, false
	}
}

// Drain empties the inbox, returning everything queued.
func (nd *Node) Drain() []Inbound {
	var out []Inbound
	for {
		in, ok := nd.TryRecv()
		if !ok {
			return out
		}
		out = append(out, in)
	}
}
