package netsim

import (
	"testing"

	"repro/internal/clock"
)

const msN = clock.Millisecond

func twoNodeNet(seed int64, p LinkParams) (*Network, *Node, *Node, *clock.Sim) {
	clk := clock.NewSim(0)
	n := New(clk, p, seed)
	a := n.AddNode("a", 0)
	b := n.AddNode("b", 0)
	return n, a, b, clk
}

func TestDeliveryWithDelay(t *testing.T) {
	p := LinkParams{DelayBase: 50 * msN}
	_, a, b, clk := twoNodeNet(1, p)
	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.TryRecv(); ok {
		t.Fatal("delivered before delay elapsed")
	}
	clk.Advance(49 * msN)
	if _, ok := b.TryRecv(); ok {
		t.Fatal("delivered early")
	}
	clk.Advance(msN)
	in, ok := b.TryRecv()
	if !ok {
		t.Fatal("not delivered at delay")
	}
	if string(in.Payload) != "hello" || in.From != "a" {
		t.Fatalf("wrong datagram: %+v", in)
	}
	if in.At != clock.Time(50*msN) {
		t.Fatalf("delivery time = %v, want 50ms", in.At)
	}
}

func TestUnknownNode(t *testing.T) {
	_, a, _, _ := twoNodeNet(1, DefaultLink())
	if err := a.Send("nobody", nil); err == nil {
		t.Fatal("send to unknown node succeeded")
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	clk := clock.NewSim(0)
	n := New(clk, DefaultLink(), 1)
	n.AddNode("x", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddNode did not panic")
		}
	}()
	n.AddNode("x", 0)
}

func TestPayloadIsolation(t *testing.T) {
	// The sender's buffer must be copied — mutating it after Send cannot
	// alter the delivered datagram (no message alteration, §II-B).
	p := LinkParams{DelayBase: 10 * msN}
	_, a, b, clk := twoNodeNet(1, p)
	buf := []byte("abc")
	a.Send("b", buf)
	buf[0] = 'X'
	clk.Advance(10 * msN)
	in, _ := b.TryRecv()
	if string(in.Payload) != "abc" {
		t.Fatalf("payload aliased: %q", in.Payload)
	}
}

func TestFIFOPerLink(t *testing.T) {
	// Heavy jitter would reorder; the link must enforce FIFO.
	p := LinkParams{DelayBase: 5 * msN, JitterMean: 50 * msN, JitterStd: 80 * msN}
	_, a, b, clk := twoNodeNet(42, p)
	for i := byte(0); i < 50; i++ {
		a.Send("b", []byte{i})
		clk.Advance(msN)
	}
	clk.Advance(clock.Second)
	got := b.Drain()
	if len(got) != 50 {
		t.Fatalf("delivered %d, want 50", len(got))
	}
	for i, in := range got {
		if in.Payload[0] != byte(i) {
			t.Fatalf("reordered at %d: got %d", i, in.Payload[0])
		}
		if i > 0 && got[i].At <= got[i-1].At {
			t.Fatalf("non-monotone delivery times at %d", i)
		}
	}
}

func TestLossRateApproximation(t *testing.T) {
	p := LinkParams{DelayBase: msN, LossRate: 0.2, MeanBurst: 1}
	clk := clock.NewSim(0)
	n := New(clk, p, 7)
	a := n.AddNode("a", 0)
	const total = 20000
	b := n.AddNode("b", total) // inbox large enough to hold everything
	for i := 0; i < total; i++ {
		a.Send("b", []byte{1})
		clk.Advance(msN)
	}
	clk.Advance(clock.Second)
	got := len(b.Drain())
	loss := 1 - float64(got)/float64(total)
	if loss < 0.17 || loss > 0.23 {
		t.Fatalf("observed loss %.3f, want ≈0.20", loss)
	}
	delivered, dropped := n.Stats()
	if delivered != uint64(got) || dropped != uint64(total-got) {
		t.Fatalf("stats %d/%d vs observed %d/%d", delivered, dropped, got, total-got)
	}
}

func TestBurstLossCorrelation(t *testing.T) {
	// MeanBurst=10 must produce long consecutive loss runs.
	p := LinkParams{DelayBase: msN, LossRate: 0.1, MeanBurst: 10}
	_, a, b, clk := twoNodeNet(9, p)
	const total = 50000
	receivedSeq := make(map[int]bool)
	for i := 0; i < total; i++ {
		a.Send("b", []byte{byte(i), byte(i >> 8), byte(i >> 16)})
		clk.Advance(msN)
		for _, in := range b.Drain() {
			seq := int(in.Payload[0]) | int(in.Payload[1])<<8 | int(in.Payload[2])<<16
			receivedSeq[seq] = true
		}
	}
	clk.Advance(clock.Second)
	for _, in := range b.Drain() {
		seq := int(in.Payload[0]) | int(in.Payload[1])<<8 | int(in.Payload[2])<<16
		receivedSeq[seq] = true
	}
	// Count maximal loss runs.
	runs, runLen, maxRun, losses := 0, 0, 0, 0
	for i := 0; i < total; i++ {
		if !receivedSeq[i] {
			losses++
			runLen++
			if runLen > maxRun {
				maxRun = runLen
			}
		} else if runLen > 0 {
			runs++
			runLen = 0
		}
	}
	if runLen > 0 {
		runs++
	}
	if losses == 0 || runs == 0 {
		t.Fatal("no losses observed")
	}
	meanRun := float64(losses) / float64(runs)
	if meanRun < 4 {
		t.Fatalf("mean loss run %.1f, want ≥4 for MeanBurst=10", meanRun)
	}
	if maxRun < 10 {
		t.Fatalf("max loss run %d, want ≥10", maxRun)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	p := LinkParams{DelayBase: msN}
	n, a, b, clk := twoNodeNet(3, p)
	n.PartitionBoth("a", "b")
	a.Send("b", []byte{1})
	b.Send("a", []byte{2})
	clk.Advance(clock.Second)
	if _, ok := b.TryRecv(); ok {
		t.Fatal("delivered through partition a→b")
	}
	if _, ok := a.TryRecv(); ok {
		t.Fatal("delivered through partition b→a")
	}
	n.HealBoth("a", "b")
	a.Send("b", []byte{3})
	clk.Advance(clock.Second)
	in, ok := b.TryRecv()
	if !ok || in.Payload[0] != 3 {
		t.Fatal("not delivered after heal")
	}
}

func TestAsymmetricLinks(t *testing.T) {
	clk := clock.NewSim(0)
	n := New(clk, DefaultLink(), 5)
	a := n.AddNode("a", 0)
	b := n.AddNode("b", 0)
	n.SetLink("a", "b", LinkParams{DelayBase: 10 * msN})
	n.SetLink("b", "a", LinkParams{DelayBase: 200 * msN})
	a.Send("b", []byte{1})
	b.Send("a", []byte{2})
	clk.Advance(10 * msN)
	if _, ok := b.TryRecv(); !ok {
		t.Fatal("fast direction not delivered")
	}
	if _, ok := a.TryRecv(); ok {
		t.Fatal("slow direction delivered early")
	}
	clk.Advance(190 * msN)
	if _, ok := a.TryRecv(); !ok {
		t.Fatal("slow direction never delivered")
	}
}

func TestInboxOverflowDrops(t *testing.T) {
	clk := clock.NewSim(0)
	n := New(clk, LinkParams{DelayBase: msN}, 5)
	a := n.AddNode("a", 0)
	n.AddNode("b", 0) // default capacity
	clk2 := clk       // silence unused warnings in older linters
	_ = clk2
	// Use a tiny inbox on c.
	c := n.AddNode("c", 2)
	for i := 0; i < 10; i++ {
		a.Send("c", []byte{byte(i)})
	}
	clk.Advance(clock.Second)
	got := c.Drain()
	if len(got) != 2 {
		t.Fatalf("tiny inbox delivered %d, want 2", len(got))
	}
	_, dropped := n.Stats()
	if dropped != 8 {
		t.Fatalf("dropped = %d, want 8", dropped)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []clock.Time {
		p := LinkParams{DelayBase: 5 * msN, JitterMean: 10 * msN, JitterStd: 15 * msN, LossRate: 0.1, MeanBurst: 3}
		_, a, b, clk := twoNodeNet(99, p)
		for i := 0; i < 500; i++ {
			a.Send("b", []byte{byte(i)})
			clk.Advance(10 * msN)
		}
		clk.Advance(clock.Second)
		var times []clock.Time
		for _, in := range b.Drain() {
			times = append(times, in.At)
		}
		return times
	}
	t1, t2 := run(), run()
	if len(t1) != len(t2) {
		t.Fatalf("non-deterministic delivery count: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("non-deterministic delivery time at %d", i)
		}
	}
}

func TestDelayMomentsMatchModel(t *testing.T) {
	p := LinkParams{DelayBase: 50 * msN, JitterMean: 10 * msN, JitterStd: 5 * msN}
	clk := clock.NewSim(0)
	n := New(clk, p, 77)
	a := n.AddNode("a", 0)
	const total = 20000
	b := n.AddNode("b", total)
	var sendTimes []clock.Time
	for i := 0; i < total; i++ {
		a.Send("b", []byte{1})
		sendTimes = append(sendTimes, clk.Now())
		clk.Advance(100 * msN)
	}
	clk.Advance(clock.Second)
	got := b.Drain()
	if len(got) != total {
		t.Fatalf("delivered %d/%d", len(got), total)
	}
	var sum float64
	for i, in := range got {
		sum += float64(in.At.Sub(sendTimes[i]))
	}
	meanMS := sum / float64(total) / float64(msN)
	if meanMS < 58 || meanMS > 62 {
		t.Fatalf("mean delay = %.2fms, want ≈60 (base 50 + jitter 10)", meanMS)
	}
}

func TestPartitionIsDirectional(t *testing.T) {
	p := LinkParams{DelayBase: msN}
	n, a, b, clk := twoNodeNet(88, p)
	n.Partition("a", "b") // only a→b cut
	a.Send("b", []byte{1})
	b.Send("a", []byte{2})
	clk.Advance(clock.Second)
	if _, ok := b.TryRecv(); ok {
		t.Fatal("a→b delivered through partition")
	}
	if in, ok := a.TryRecv(); !ok || in.Payload[0] != 2 {
		t.Fatal("b→a should be unaffected")
	}
}
