package registry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/detector"
	"repro/internal/heartbeat"
)

func newWatchTestRegistry(clk clock.Clock) *Registry {
	return New(clk, func(string) detector.Detector {
		return detector.NewFixed(500*clock.Millisecond, 1)
	}, Options{OfflineAfter: -1, EvictAfter: -1, MaxSilence: -1})
}

// waitForTopicSubs polls until the trie holds want topic subscriptions —
// the handshake that the /watch handler goroutine has subscribed.
func waitForTopicSubs(t *testing.T, reg *Registry, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Bus().FanoutStats().Subscriptions != want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d topic subscriptions", want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWatchStreamsFilteredEvents drives the full HTTP path: a /watch
// client with a narrow filter and max=2 must receive a hello line, then
// exactly its two matching events as NDJSON, then a done summary — and
// nothing from outside its subtree.
func TestWatchStreamsFilteredEvents(t *testing.T) {
	sim := clock.NewSim(0)
	reg := newWatchTestRegistry(sim)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	lines := make(chan string, 16)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/watch?filter=" + "eu%2F%23" + "&max=2")
		if err != nil {
			errc <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			errc <- fmt.Errorf("status = %d", resp.StatusCode)
			return
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
			errc <- fmt.Errorf("content-type = %q", ct)
			return
		}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
		errc <- sc.Err()
	}()

	waitForTopicSubs(t, reg, 1)
	bus := reg.Bus()
	bus.Publish(Event{Type: EventSuspect, Peer: "eu/zrh/web-1", At: 7, Suspicion: 0.9})
	bus.Publish(Event{Type: EventOffline, Peer: "us/iad/web-9", At: 8}) // filtered out
	bus.Publish(Event{Type: EventTrust, Peer: "eu/ams/db-2", At: 9, Incarnation: 3})

	read := func() string {
		select {
		case l, ok := <-lines:
			if !ok {
				t.Fatalf("stream ended early (reader err: %v)", <-errc)
			}
			return l
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for a watch line")
			return ""
		}
	}

	var hello watchHelloJSON
	if err := json.Unmarshal([]byte(read()), &hello); err != nil || hello.Watching != "eu/#" {
		t.Fatalf("bad hello line (err %v): %+v", err, hello)
	}
	var ev1, ev2 watchEventJSON
	if err := json.Unmarshal([]byte(read()), &ev1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(read()), &ev2); err != nil {
		t.Fatal(err)
	}
	if ev1.Peer != "eu/zrh/web-1" || ev1.Event != "suspect" || ev1.Suspicion != 0.9 {
		t.Fatalf("event 1 = %+v", ev1)
	}
	if ev2.Peer != "eu/ams/db-2" || ev2.Event != "trust" || ev2.Incarnation != 3 {
		t.Fatalf("event 2 = %+v", ev2)
	}
	var done watchDoneJSON
	if err := json.Unmarshal([]byte(read()), &done); err != nil || !done.Done || done.Delivered != 2 {
		t.Fatalf("bad done line (err %v): %+v", err, done)
	}
	if _, ok := <-lines; ok {
		t.Fatal("stream kept flowing past the done line")
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	// The handler's deferred Close must detach the trie subscription.
	waitForTopicSubs(t, reg, 0)
}

// TestWatchHeartbeatCarriesDropAccounting uses a real clock and a tiny
// keepalive so an idle connection emits heartbeat lines, and checks the
// per-connection delivered/dropped accounting rides along on them.
func TestWatchHeartbeatCarriesDropAccounting(t *testing.T) {
	reg := newWatchTestRegistry(clock.NewReal())
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/watch?filter=a%2F%23&buf=1&heartbeat=10ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no hello line: %v", sc.Err())
	}

	// Overrun the buf=1 subscription before the handler can drain it:
	// with N back-to-back publishes at least one must be dropped, and the
	// drop must show up on this connection's heartbeat line.
	waitForTopicSubs(t, reg, 1)
	for i := 0; i < 32; i++ {
		reg.Bus().Publish(Event{Type: EventSuspect, Peer: "a/b", At: clock.Time(i)})
	}

	sawDrop := false
	for i := 0; i < 200 && sc.Scan(); i++ {
		var hb watchHeartbeatJSON
		if err := json.Unmarshal(sc.Bytes(), &hb); err != nil || !hb.Heartbeat {
			continue // an event line
		}
		if hb.Delivered < hb.Dropped || hb.Delivered == 0 {
			t.Fatalf("implausible accounting: %+v", hb)
		}
		if hb.Dropped > 0 {
			sawDrop = true
			break
		}
	}
	if !sawDrop {
		t.Fatal("never saw a heartbeat line reporting this connection's drops")
	}
}

// TestWatchRejectsInvalidParams covers the 400 paths.
func TestWatchRejectsInvalidParams(t *testing.T) {
	reg := newWatchTestRegistry(clock.NewSim(0))
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	for _, q := range []string{
		"filter=a%2F%2Fb",  // empty segment
		"filter=a%23b",     // '#' inside a segment
		"filter=%23%2Fa",   // '#' not last
		"buf=0",            // non-positive buffer
		"buf=x",            // not an integer
		"heartbeat=-1s",    // non-positive keepalive
		"heartbeat=fast",   // not a duration
		"max=-1",           // negative cap
		"filter=a&max=1.5", // not an integer
	} {
		resp, err := http.Get(srv.URL + "/watch?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /watch?%s status = %d, want 400", q, resp.StatusCode)
		}
	}
	if n := reg.Bus().FanoutStats().Subscriptions; n != 0 {
		t.Fatalf("rejected requests leaked %d subscriptions", n)
	}
}

// TestVarsExposesSubscriptionStats checks /vars lists every live
// subscription with filter and drop accounting.
func TestVarsExposesSubscriptionStats(t *testing.T) {
	sim := clock.NewSim(0)
	reg := newWatchTestRegistry(sim)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	fire := reg.Subscribe(4)
	defer fire.Close()
	topic, err := reg.SubscribeTopic("eu/+", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer topic.Close()
	reg.Bus().Publish(Event{Type: EventSuspect, Peer: "eu/a", At: 1})

	resp, err := http.Get(srv.URL + "/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars varsJSON
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if len(vars.Subscriptions) != 2 {
		t.Fatalf("subscriptions = %+v, want 2 entries", vars.Subscriptions)
	}
	byID := map[uint64]SubscriptionStats{}
	for _, s := range vars.Subscriptions {
		byID[s.ID] = s
	}
	f, ok := byID[fire.ID()]
	if !ok || f.Filter != "" || f.Delivered != 1 {
		t.Fatalf("firehose stats = %+v", f)
	}
	tp, ok := byID[topic.ID()]
	if !ok || tp.Filter != "eu/+" || tp.Delivered != 1 || tp.Buffer != 8 {
		t.Fatalf("topic stats = %+v", tp)
	}
}

// TestWatchMaxConnsSaturation pins the connection cap: with
// WatchMaxConns=2, a third concurrent /watch gets 503 with a
// Retry-After header, and closing a stream frees its slot.
func TestWatchMaxConnsSaturation(t *testing.T) {
	sim := clock.NewSim(0)
	reg := New(sim, func(string) detector.Detector {
		return detector.NewFixed(500*clock.Millisecond, 1)
	}, Options{OfflineAfter: -1, EvictAfter: -1, MaxSilence: -1, WatchMaxConns: 2})
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	open := func() *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + "/watch?filter=%23")
		if err != nil {
			t.Fatalf("GET /watch: %v", err)
		}
		return resp
	}
	r1, r2 := open(), open()
	defer r1.Body.Close()
	defer r2.Body.Close()
	if r1.StatusCode != http.StatusOK || r2.StatusCode != http.StatusOK {
		t.Fatalf("first two connections: %d, %d, want 200s", r1.StatusCode, r2.StatusCode)
	}
	waitForTopicSubs(t, reg, 2)

	r3 := open()
	defer r3.Body.Close()
	if r3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third connection status = %d, want 503", r3.StatusCode)
	}
	if ra := r3.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 response missing Retry-After header")
	}
	if got := reg.Counters().WatchRejected; got != 1 {
		t.Fatalf("watch_rejected = %d, want 1", got)
	}

	// Free a slot: the next connection must be admitted again.
	r1.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		r4, err := http.Get(srv.URL + "/watch?filter=%23")
		if err != nil {
			t.Fatalf("GET /watch after close: %v", err)
		}
		code := r4.StatusCode
		r4.Body.Close()
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: still %d", code)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestForEachStream pins the federation roll-up hatch: every registered
// stream is visited exactly once with its phase and incarnation, and
// self-tuning QoS fields surface once the detector has adjusted a slot.
func TestForEachStream(t *testing.T) {
	sim := clock.NewSim(0)
	reg := New(sim, func(string) detector.Detector {
		return detector.NewFixed(100*clock.Millisecond, 1)
	}, Options{WheelTick: 10 * clock.Millisecond, OfflineAfter: 200 * clock.Millisecond,
		MaxSilence: -1, EvictAfter: -1})
	reg.Start()

	now := sim.Now()
	for i := 0; i < 10; i++ {
		reg.Observe(heartbeatArrivalAt(fmt.Sprintf("eu/a/s%d", i), 1, now, 3))
	}
	// Let half of them expire into suspicion, two all the way offline.
	sim.Advance(150 * clock.Millisecond)
	for i := 0; i < 5; i++ {
		reg.Observe(heartbeatArrivalAt(fmt.Sprintf("eu/a/s%d", i), 2, sim.Now(), 3))
	}
	// Unrefreshed streams: suspected ≈ t=100ms, offline ≈ t=300ms.
	// Refreshed streams: suspected ≈ t=250ms, offline ≈ t=450ms.
	// At t=350ms the sweep sees 5 offline and 5 suspected.
	sim.Advance(200 * clock.Millisecond)

	got := make(map[string]StreamView)
	reg.ForEachStream(func(v StreamView) { got[v.Peer] = v })
	if len(got) != 10 {
		t.Fatalf("visited %d streams, want 10", len(got))
	}
	offline := 0
	for peer, v := range got {
		if !v.Seen {
			t.Fatalf("%s reported unseen", peer)
		}
		if v.Incarnation != 3 {
			t.Fatalf("%s incarnation = %d, want 3", peer, v.Incarnation)
		}
		if v.Phase == StreamOffline {
			offline++
		}
	}
	if offline != 5 {
		t.Fatalf("offline phase count = %d, want 5", offline)
	}
}

func heartbeatArrivalAt(peer string, seq uint64, now clock.Time, inc uint64) heartbeat.Arrival {
	return heartbeat.Arrival{From: peer, Seq: seq, Send: now, Recv: now, Inc: inc}
}
