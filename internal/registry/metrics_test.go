package registry

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/heartbeat"
)

// sfdFactory builds self-tuning detectors with slots small enough that a
// short test closes several feedback slots, so the per-stream QoS gauges
// (margin / state / TD / MR / QAP) have data to expose.
func sfdFactory(string) detector.Detector {
	return core.New(core.Config{
		WindowSize:     8,
		Interval:       10 * ms,
		SlotHeartbeats: 10,
		Targets:        core.Targets{MaxTD: 100 * ms, MaxMR: 5, MinQAP: 0.5},
	})
}

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text/plain; version=0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return string(body)
}

// TestMetricsExposition drives enough heartbeats through a sim-clock
// registry for the self-tuner to close feedback slots, then scrapes
// /metrics off the registry's own HTTP handler and checks that every
// layer shows up: aggregate counters, per-shard occupancy, and the
// per-stream detector QoS gauges.
func TestMetricsExposition(t *testing.T) {
	sim := clock.NewSim(0)
	r := New(sim, sfdFactory, Options{Shards: 4})
	const beats = 35
	for i := 0; i < beats; i++ {
		send := clock.Time(i) * clock.Time(10*ms)
		r.Observe(heartbeat.Arrival{From: "p1", Seq: uint64(i), Send: send, Recv: send.Add(ms)})
	}
	page := scrape(t, r)

	for _, want := range []string{
		"# TYPE sfd_registry_heartbeats_total counter",
		"sfd_registry_heartbeats_total 35",
		"sfd_registry_streams 1",
		"sfd_registry_wheel_rearms_total",
		"sfd_registry_shard_streams{shard=\"0\"}",
		"sfd_registry_shard_streams{shard=\"3\"}",
		"# TYPE sfd_stream_qap gauge",
		"sfd_stream_qap{peer=\"p1\"}",
		"sfd_stream_margin_seconds{peer=\"p1\"}",
		"sfd_stream_td_seconds{peer=\"p1\"}",
		"sfd_stream_mr_per_s{peer=\"p1\"}",
		"sfd_stream_suspicion{peer=\"p1\"}",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("page:\n%s", page)
	}
}

// TestMetricsFanoutSeries: the sfd_fanout_* series track the topic trie
// and interest-routed delivery accounting.
func TestMetricsFanoutSeries(t *testing.T) {
	sim := clock.NewSim(0)
	r := New(sim, sfdFactory, Options{Shards: 2})

	sub, err := r.SubscribeTopic("eu/+/web", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// Two matches into a 1-slot buffer: the second displaces the first.
	r.Bus().Publish(Event{Type: EventSuspect, Peer: "eu/zrh/web", At: 1})
	r.Bus().Publish(Event{Type: EventSuspect, Peer: "eu/ams/web", At: 2})
	r.Bus().Publish(Event{Type: EventSuspect, Peer: "us/iad/web", At: 3}) // no match

	page := scrape(t, r)
	for _, want := range []string{
		"# TYPE sfd_fanout_trie_nodes gauge",
		"sfd_fanout_trie_nodes 3",
		"sfd_fanout_subscriptions 1",
		"# TYPE sfd_fanout_matches_total counter",
		"sfd_fanout_matches_total 2",
		"sfd_fanout_drops_total 1",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("page:\n%s", page)
	}
}

// TestMetricsMaxStreams: the per-stream sampler honors the cap and
// reports how many streams it skipped instead of truncating silently.
func TestMetricsMaxStreams(t *testing.T) {
	sim := clock.NewSim(0)
	r := New(sim, sfdFactory, Options{Shards: 2, MetricsMaxStreams: 2})
	for _, p := range []string{"a", "b", "c", "d", "e"} {
		r.Observe(heartbeat.Arrival{From: p, Seq: 1, Send: sim.Now(), Recv: sim.Now().Add(ms)})
	}
	page := scrape(t, r)
	if got := strings.Count(page, "sfd_stream_suspicion{"); got != 2 {
		t.Errorf("per-stream suspicion series = %d, want 2 (capped)", got)
	}
	if !strings.Contains(page, "sfd_registry_metrics_streams_skipped 3") {
		t.Errorf("missing skipped-streams gauge; page:\n%s", page)
	}
}

// TestMetricsPerStreamDisabled: a negative cap removes the per-stream
// sampler entirely while the aggregate series remain.
func TestMetricsPerStreamDisabled(t *testing.T) {
	sim := clock.NewSim(0)
	r := New(sim, sfdFactory, Options{MetricsMaxStreams: -1})
	r.Observe(heartbeat.Arrival{From: "p1", Seq: 1, Send: sim.Now(), Recv: sim.Now().Add(ms)})
	page := scrape(t, r)
	if strings.Contains(page, "sfd_stream_") {
		t.Errorf("per-stream series present despite MetricsMaxStreams<0")
	}
	if !strings.Contains(page, "sfd_registry_heartbeats_total 1") {
		t.Errorf("aggregate counters missing; page:\n%s", page)
	}
}

// TestMetricsConcurrentScrape hammers the instrumented ingest path from
// several goroutines while scrapers render the page and the wheel driver
// runs — the -race proof that instrumentation added no unsynchronized
// state to the hot path.
func TestMetricsConcurrentScrape(t *testing.T) {
	r := New(nil, sfdFactory, Options{Shards: 4, WheelTick: ms})
	r.Start()
	defer r.Stop()
	set := r.Metrics()

	const beats = 500
	peers := []string{"w0", "w1", "w2", "w3"}
	clk := clock.NewReal()

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = set.WritePrometheus(io.Discard)
				}
			}
		}()
	}

	var writers sync.WaitGroup
	for _, peer := range peers {
		writers.Add(1)
		go func(peer string) {
			defer writers.Done()
			for i := 0; i < beats; i++ {
				now := clk.Now()
				r.Observe(heartbeat.Arrival{From: peer, Seq: uint64(i), Send: now, Recv: now})
			}
		}(peer)
	}
	writers.Wait()
	close(stop)
	scrapers.Wait()

	if got := r.heartbeats.Load(); got != uint64(len(peers)*beats) {
		t.Fatalf("heartbeats = %d, want %d", got, len(peers)*beats)
	}
	if !strings.Contains(scrape(t, r), "sfd_registry_heartbeats_total 2000") {
		t.Fatalf("final scrape missing total")
	}
}
