package registry

import (
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/persist"
)

// statePorter is implemented by detectors (core.SFD) that can carry
// their learned state across process lives. Detectors without it restart
// cold on restore — correct, just slower to converge.
type statePorter interface {
	ExportState() core.SFDState
	ImportState(core.SFDState) error
	Rewarm(int)
}

// auxSnapFunc supplies the gossip layer's persisted record at snapshot
// time (registered by gossip.New; nil when no gossiper is attached).
type auxSnapFunc func(clock.Time) *persist.GossipRecord

// SetAuxSnapshot registers fn to be called under each full snapshot so
// auxiliary subsystem state (the gossip opinion tables) rides in the
// same atomic file as the stream table.
func (r *Registry) SetAuxSnapshot(fn func(clock.Time) *persist.GossipRecord) {
	r.auxSnap.Store(auxSnapFunc(fn))
}

func (r *Registry) auxSnapshotFn() auxSnapFunc {
	fn, _ := r.auxSnap.Load().(auxSnapFunc)
	return fn
}

// ClaimRestoredGossip hands over the gossip record recovered from the
// snapshot, once: the first caller (the gossiper, at construction) gets
// it, later calls get nil.
func (r *Registry) ClaimRestoredGossip() *persist.GossipRecord {
	r.restoreMu.Lock()
	defer r.restoreMu.Unlock()
	g := r.restoredGossip
	r.restoredGossip = nil
	return g
}

// Checkpointer returns the running checkpointer (nil before Start or
// when persistence is disabled).
func (r *Registry) Checkpointer() *persist.Checkpointer { return r.ckpt.Load() }

// RestoredStreams reports how many streams the automatic (or explicit)
// restore recovered, and the error it hit, if any. persist.ErrNoSnapshot
// is normal first-boot; any other error means a corrupt state directory
// was skipped and the registry cold-started.
func (r *Registry) RestoredStreams() (int, error) {
	r.restoreMu.Lock()
	defer r.restoreMu.Unlock()
	return r.restoredCount, r.restoreErr
}

// openStoreLocked lazily opens the state directory (restoreMu held).
func (r *Registry) openStoreLocked() error {
	if r.store != nil || r.opts.StateDir == "" {
		return nil
	}
	st, err := persist.OpenStore(r.opts.StateDir, 2)
	if err != nil {
		return err
	}
	r.store = st
	return nil
}

// RestoreFromDisk loads the newest valid snapshot/journal pair from
// Options.StateDir and imports it. downtime is how long the monitor was
// down (the gap between the snapshot instant and this process's clock
// "now"); pass a negative value to derive it from the snapshot's
// wall-clock anchor — the right choice everywhere except simulated-clock
// tests, which know their downtime exactly.
//
// Start calls this automatically (with auto downtime) on the first
// start when StateDir is set; calling it explicitly first — before any
// heartbeats — lets embedders control the downtime and inspect the
// result. Restore is one-shot: later calls are no-ops returning the
// first outcome.
func (r *Registry) RestoreFromDisk(downtime clock.Duration) (int, error) {
	r.restoreMu.Lock()
	defer r.restoreMu.Unlock()
	if r.restored {
		return r.restoredCount, r.restoreErr
	}
	r.restored = true
	if err := r.openStoreLocked(); err != nil {
		r.restoreErr = err
		return 0, err
	}
	if r.store == nil {
		return 0, nil
	}
	snap, deltas, err := r.store.Load()
	if err != nil {
		r.restoreErr = err
		return 0, err
	}
	if downtime < 0 {
		downtime = clock.Duration(time.Now().UnixNano() - snap.WallNano)
		if downtime < 0 {
			downtime = 0
		}
	}
	n := r.importSnapshot(snap, deltas, downtime)
	r.restoredGossip = snap.Gossip
	r.restoredCount = n
	return n, nil
}

// importSnapshot rebases snap into this process's clock domain, folds
// the journal deltas in, and files every recovered stream. Streams that
// already exist live (heartbeats beat the restore) keep their live
// state. Returns the number of streams imported.
func (r *Registry) importSnapshot(snap *persist.Snapshot, deltas []persist.Delta, downtime clock.Duration) int {
	now := r.clk.Now()
	// The snapshot instant corresponds to (now - downtime) on our clock.
	shift := now.Sub(snap.TakenAt) - downtime
	snap.Rebase(shift)
	persist.RebaseDeltas(deltas, shift)
	snap.Apply(deltas)

	imported := 0
	for i := range snap.Streams {
		rec := &snap.Streams[i]
		if rec.Peer == "" {
			continue
		}
		sh := r.shardFor(rec.Peer)
		sh.mu.Lock()
		if _, exists := sh.streams[rec.Peer]; exists {
			sh.mu.Unlock()
			continue
		}
		st := r.newStreamLocked(sh, rec.Peer)
		st.inc = rec.Inc
		st.seen = rec.Seen
		st.lastSeq = rec.LastSeq
		st.lastArrival = rec.LastArrival
		st.suspectSince = rec.SuspectSince
		st.phase = wirePhase(rec.Phase)
		st.stats = StreamStats{
			Heartbeats:  rec.Heartbeats,
			Stale:       rec.Stale,
			Mistakes:    rec.Mistakes,
			MistakeTime: rec.MistakeTime,
		}
		if rec.Det != nil {
			if sp, ok := st.det.(statePorter); ok {
				if err := sp.ImportState(*rec.Det); err == nil {
					sp.Rewarm(r.opts.RewarmArrivals)
				} else {
					st.det = r.factory(rec.Peer) // invalid state: cold detector
				}
			}
		}
		// Rewarm deadlines. A trusted stream gets the grace window: its
		// pre-outage freshness point proves nothing (the monitor, not the
		// sender, was down — Rewarm cleared it), so it is suspected only
		// if no heartbeat lands within RewarmGrace. Suspected and offline
		// streams resume their machine where it stood.
		switch st.phase {
		case phaseTrusted:
			r.rearmLocked(st, now.Add(r.opts.RewarmGrace))
		case phaseSuspected:
			if st.suspectSince == 0 || st.suspectSince.After(now) {
				st.suspectSince = now
			}
			dl := st.suspectSince.Add(r.opts.OfflineAfter)
			if !dl.After(now) {
				dl = now.Add(r.opts.WheelTick)
			}
			r.rearmLocked(st, dl)
		case phaseOffline:
			if r.opts.EvictAfter > 0 {
				r.rearmLocked(st, now.Add(r.opts.EvictAfter))
			} else {
				st.deadline = 0
			}
		}
		sh.mu.Unlock()
		imported++
	}
	return imported
}

// ExportSnapshot captures the full registry state at instant now as a
// persist.Snapshot (plus the gossip record when a gossiper registered
// one). It walks the shards under their stripe locks — checkpoint-path
// work, never ingest-path.
func (r *Registry) ExportSnapshot(now clock.Time) *persist.Snapshot {
	snap := &persist.Snapshot{
		TakenAt:  now,
		WallNano: time.Now().UnixNano(),
		Streams:  make([]persist.StreamRecord, 0, r.Len()),
	}
	for _, sh := range r.shards {
		sh.mu.Lock()
		for name, st := range sh.streams {
			rec := persist.StreamRecord{
				Peer:         name,
				Inc:          st.inc,
				Phase:        phaseWire(st.phase),
				Seen:         st.seen,
				LastSeq:      st.lastSeq,
				LastArrival:  st.lastArrival,
				SuspectSince: st.suspectSince,
				Heartbeats:   st.stats.Heartbeats,
				Stale:        st.stats.Stale,
				Mistakes:     st.stats.Mistakes,
				MistakeTime:  st.stats.MistakeTime,
			}
			if sp, ok := st.det.(statePorter); ok {
				s := sp.ExportState()
				rec.Det = &s
			}
			snap.Streams = append(snap.Streams, rec)
		}
		sh.mu.Unlock()
	}
	if fn := r.auxSnapshotFn(); fn != nil {
		snap.Gossip = fn(now)
	}
	return snap
}

// SaveSnapshot forces a full checkpoint now — the graceful-shutdown
// flush, also usable for on-demand state export. With the checkpointer
// running it routes through it (keeping Store access serialized);
// otherwise it writes directly.
func (r *Registry) SaveSnapshot() error {
	if c := r.ckpt.Load(); c != nil {
		c.Checkpoint()
		return nil
	}
	r.restoreMu.Lock()
	defer r.restoreMu.Unlock()
	if err := r.openStoreLocked(); err != nil {
		return err
	}
	if r.store == nil {
		return nil
	}
	_, err := r.store.WriteSnapshot(r.ExportSnapshot(r.clk.Now()))
	return err
}

// startPersist runs the persistence side of Start: auto-restore (if not
// already done explicitly), subscribe the delta source, and launch the
// checkpointer. No-op when StateDir is unset.
func (r *Registry) startPersist() {
	if r.opts.StateDir == "" {
		return
	}
	r.RestoreFromDisk(-1) // no-op if already restored; errors via RestoredStreams
	r.restoreMu.Lock()
	store := r.store
	if store != nil && r.deltaSub == nil {
		r.deltaSub = r.bus.Subscribe(4096)
	}
	r.restoreMu.Unlock()
	if store == nil {
		return
	}
	ckpt := persist.NewCheckpointer(r.clk, store, r.ExportSnapshot, r.drainDeltas,
		persist.CheckpointOptions{
			Interval:        r.opts.CheckpointInterval,
			FlushInterval:   r.opts.JournalFlush,
			JournalMaxBytes: r.opts.JournalMaxBytes,
		})
	r.ckpt.Store(ckpt)
	ckpt.Start()
}

// stopPersist flushes the final snapshot and releases the store.
func (r *Registry) stopPersist() {
	if c := r.ckpt.Load(); c != nil {
		c.Stop()
	}
	r.restoreMu.Lock()
	sub := r.deltaSub
	r.deltaSub = nil
	r.restoreMu.Unlock()
	if sub != nil {
		sub.Close()
	}
}

// drainDeltas converts events queued on the persistence subscription
// into journal deltas, appending to dst. Non-blocking: called on the
// checkpointer's cadence, never the ingest path.
func (r *Registry) drainDeltas(dst []persist.Delta) []persist.Delta {
	r.restoreMu.Lock()
	sub := r.deltaSub
	r.restoreMu.Unlock()
	if sub == nil {
		return dst
	}
	for {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				return dst
			}
			if d, ok := deltaFromEvent(ev); ok {
				dst = append(dst, d)
			}
		default:
			return dst
		}
	}
}

// deltaFromEvent maps bus events onto journal deltas. Global verdicts
// and infeasibility reports are derived state — the gossip record and
// detector state cover them — so only lifecycle transitions journal.
func deltaFromEvent(ev Event) (persist.Delta, bool) {
	d := persist.Delta{Peer: ev.Peer, At: ev.At, Inc: ev.Incarnation}
	switch ev.Type {
	case EventSuspect:
		d.Kind, d.Phase = persist.DeltaPhase, persist.PhaseSuspected
	case EventTrust:
		d.Kind, d.Phase = persist.DeltaPhase, persist.PhaseTrusted
	case EventOffline:
		d.Kind, d.Phase = persist.DeltaPhase, persist.PhaseOffline
	case EventEvicted:
		d.Kind = persist.DeltaEvict
	default:
		return persist.Delta{}, false
	}
	return d, true
}

// phaseWire / wirePhase map between the registry's unexported phase and
// the persistence wire constants (kept in lockstep by TestPhaseWire).
func phaseWire(p phase) uint8 {
	switch p {
	case phaseSuspected:
		return persist.PhaseSuspected
	case phaseOffline:
		return persist.PhaseOffline
	default:
		return persist.PhaseTrusted
	}
}

func wirePhase(w uint8) phase {
	switch w {
	case persist.PhaseSuspected:
		return phaseSuspected
	case persist.PhaseOffline:
		return phaseOffline
	default:
		return phaseTrusted
	}
}
