// Package registry scales the paper's "one monitors multiple"
// deployment (Fig. 1, §VII) to fleet size: a sharded monitoring
// registry holding one failure detector per heartbeat stream, a
// hierarchical timer wheel that fires suspect/offline/eviction
// transitions for the whole fleet from a single driver, and a
// failure-event bus pushing typed transitions to subscribers over
// bounded channels with drop-oldest backpressure.
//
// The cluster.Monitor keeps a flat map behind one mutex and classifies
// peers only when queried; the Registry is its event-driven sibling for
// tens of thousands of streams. It reuses the cluster package's status
// model (active / busy / suspected / offline) so snapshots render on the
// same status board, and it runs unchanged over the real clock (UDP
// stack) or clock.Sim (netsim), keeping fleet-scale scenarios
// deterministic.
package registry

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/fanout"
	"repro/internal/heartbeat"
	"repro/internal/metrics"
	"repro/internal/persist"
	"repro/internal/stats"
)

// Factory builds a fresh detector for a newly registered stream.
type Factory func(peer string) detector.Detector

// Options tunes a Registry. Zero values take the documented defaults;
// negative durations disable the corresponding mechanism where noted.
type Options struct {
	// Shards is the number of lock stripes, rounded up to a power of two
	// (default 16).
	Shards int
	// WheelTick is the timer-wheel granularity — transitions fire within
	// one tick of their deadline (default 10 ms).
	WheelTick clock.Duration
	// BusyLevel and SuspectLevel classify snapshot queries exactly as
	// cluster.Options does (defaults 0.5 and 1.0).
	BusyLevel    float64
	SuspectLevel float64
	// OfflineAfter is how long a stream stays suspected before it is
	// declared offline (default 10 s).
	OfflineAfter clock.Duration
	// MaxSilence is the safety net under the detector: a stream whose
	// last heartbeat is older than this is suspected even if its detector
	// never formed a freshness point. Default 30 s; negative disables.
	// With it disabled, a stream that heartbeats once and goes silent
	// before its detector warms up is never suspected nor evicted.
	MaxSilence clock.Duration
	// EvictAfter is how long an offline stream is kept before it is
	// removed from the registry — the bound that keeps the table finite
	// under peer churn. Default 1 minute; negative disables eviction.
	EvictAfter clock.Duration
	// MetricsMaxStreams caps how many streams the /metrics page exposes
	// per-stream QoS gauges for — a huge fleet would otherwise make every
	// scrape enumerate every stream. Default 256; negative disables the
	// per-stream sampler entirely (aggregate series remain).
	MetricsMaxStreams int
	// WatchMaxConns caps concurrent /watch connections; each holds a bus
	// subscription, so an unbounded count would let one misbehaving
	// aggregator exhaust the event bus. Saturated requests get 503 with a
	// Retry-After header. Default 64; negative disables the cap.
	WatchMaxConns int

	// StateDir enables crash-safe persistence: full snapshots and the
	// delta journal live here, and Start restores from them (warm
	// restart). Empty disables persistence entirely.
	StateDir string
	// CheckpointInterval is the cadence of full state snapshots
	// (default 30 s).
	CheckpointInterval clock.Duration
	// JournalFlush is the cadence of incremental delta-journal flushes
	// (default 1 s).
	JournalFlush clock.Duration
	// JournalMaxBytes rotates the delta journal into a fresh full
	// snapshot once it grows past this size (default 1 MiB).
	JournalMaxBytes int64
	// RewarmArrivals is how many fresh arrivals a restored detector's
	// safety margin stays frozen for after a warm restart (0 → one
	// slot's worth, the detector default).
	RewarmArrivals int
	// RewarmGrace is the deadline granted to restored trusted streams:
	// a stream that does not heartbeat within this window after restart
	// is suspected through the normal machinery. Default: MaxSilence,
	// or OfflineAfter when the silence net is disabled.
	RewarmGrace clock.Duration
}

func (o *Options) normalize() {
	if o.Shards <= 0 {
		o.Shards = 16
	}
	// Round up to a power of two so shard selection is a mask.
	n := 1
	for n < o.Shards {
		n <<= 1
	}
	o.Shards = n
	if o.WheelTick <= 0 {
		o.WheelTick = 10 * clock.Millisecond
	}
	if o.BusyLevel <= 0 {
		o.BusyLevel = 0.5
	}
	if o.SuspectLevel <= o.BusyLevel {
		o.SuspectLevel = o.BusyLevel + 0.5
	}
	if o.OfflineAfter <= 0 {
		o.OfflineAfter = 10 * clock.Second
	}
	switch {
	case o.MaxSilence == 0:
		o.MaxSilence = 30 * clock.Second
	case o.MaxSilence < 0:
		o.MaxSilence = 0
	}
	switch {
	case o.EvictAfter == 0:
		o.EvictAfter = 60 * clock.Second
	case o.EvictAfter < 0:
		o.EvictAfter = 0
	}
	switch {
	case o.MetricsMaxStreams == 0:
		o.MetricsMaxStreams = 256
	case o.MetricsMaxStreams < 0:
		o.MetricsMaxStreams = 0
	}
	switch {
	case o.WatchMaxConns == 0:
		o.WatchMaxConns = 64
	case o.WatchMaxConns < 0:
		o.WatchMaxConns = 0
	}
	if o.CheckpointInterval <= 0 {
		o.CheckpointInterval = 30 * clock.Second
	}
	if o.JournalFlush <= 0 {
		o.JournalFlush = clock.Second
	}
	if o.JournalMaxBytes <= 0 {
		o.JournalMaxBytes = 1 << 20
	}
	if o.RewarmGrace <= 0 {
		if o.MaxSilence > 0 {
			o.RewarmGrace = o.MaxSilence
		} else {
			o.RewarmGrace = o.OfflineAfter
		}
	}
}

// Counters is a point-in-time view of the registry's monotonic counters
// (the expvar-style numbers the HTTP endpoint exposes).
type Counters struct {
	Heartbeats    uint64 `json:"heartbeats"`      // accepted arrivals
	Stale         uint64 `json:"stale"`           // duplicate/reordered arrivals dropped
	Registered    uint64 `json:"registered"`      // streams ever registered
	InvalidNames  uint64 `json:"invalid_names"`   // registrations rejected by name validation
	Suspects      uint64 `json:"suspects"`        // trust → suspect transitions
	Trusts        uint64 `json:"trusts"`          // suspect → trust transitions
	Offlines      uint64 `json:"offlines"`        // suspect → offline transitions
	Evictions     uint64 `json:"evictions"`       // offline streams removed
	CannotSatisfy uint64 `json:"cannot_satisfy"`  // self-tuner infeasibility reports
	BusPublished  uint64 `json:"bus_published"`   // events published on the bus
	BusDropped    uint64 `json:"bus_dropped"`     // events dropped across subscribers
	FanoutMatches uint64 `json:"fanout_matches"`  // deliveries routed by the topic trie
	FanoutDrops   uint64 `json:"fanout_drops"`    // drops charged to topic subscriptions
	WatchRejected uint64 `json:"watch_rejected"`  // /watch requests refused at WatchMaxConns
	WatchConns    int    `json:"watch_conns"`     // live /watch connections
	Streams       int    `json:"streams"`         // currently registered streams
	WheelEntries  int    `json:"wheel_entries"`   // live wheel entries (incl. stale)
	Subscribers   int    `json:"bus_subscribers"` // current subscribers (firehose + topic)
	TopicSubs     int    `json:"topic_subscriptions"`
	TrieNodes     int    `json:"fanout_trie_nodes"`
}

// stater is implemented by self-tuning detectors (core.SFD) whose
// infeasibility verdict the registry surfaces as EventCannotSatisfy.
type stater interface {
	State() core.State
	Response() string
}

// afterFuncer is satisfied by clock.Sim; when the registry runs on a
// simulated clock it drives the wheel through deterministic timer
// callbacks instead of a goroutine.
type afterFuncer interface {
	AfterFunc(clock.Duration, func(clock.Time))
}

// Registry is the sharded fleet monitor. All methods are safe for
// concurrent use.
type Registry struct {
	clk     clock.Clock
	factory Factory
	opts    Options

	shards    []*shard
	shardMask uint32
	wheel     *timerWheel
	bus       *Bus

	// gen issues globally unique wheel-entry generations (see stream.gen).
	gen atomic.Uint64

	heartbeats    atomic.Uint64
	stale         atomic.Uint64
	registered    atomic.Uint64
	invalidNames  atomic.Uint64
	suspects      atomic.Uint64
	trusts        atomic.Uint64
	offlines      atomic.Uint64
	evictions     atomic.Uint64
	cannotSatisfy atomic.Uint64
	rearms        atomic.Uint64

	// metricsSet is built lazily on the first Metrics() call so embedders
	// that never scrape pay nothing for it.
	metricsOnce sync.Once
	metricsSet  *metrics.Set

	// Ground-truth failure marks (see groundtruth.go). markCount gates the
	// hot-path checks so a registry with no marks pays one atomic load.
	marksMu    sync.Mutex
	marks      map[string]clock.Time
	markCount  atomic.Int64
	detLat     *stats.Histogram                  // quantile summary, under marksMu
	detLatHist atomic.Pointer[metrics.Histogram] // /metrics exposition

	// varsAux holds /vars sections registered by other subsystems via
	// RegisterVars (transport, gossip, federation).
	varsMu  sync.Mutex
	varsAux map[string]func() any

	// watchConns counts live /watch connections against WatchMaxConns.
	watchConns    atomic.Int64
	watchRejected atomic.Uint64

	started atomic.Bool
	stopped atomic.Bool
	stopc   chan struct{}

	tickBuf []expiry // owned by the single wheel driver

	// Persistence plumbing (zero when Options.StateDir is unset). The
	// checkpointer rides in an atomic pointer so scrape-time metrics can
	// read it regardless of Start ordering; restoreMu guards the
	// restore-once state and the store handle.
	ckpt           atomic.Pointer[persist.Checkpointer]
	auxSnap        atomic.Value // auxSnapFunc
	restoreMu      sync.Mutex
	store          *persist.Store
	deltaSub       *Subscription
	restored       bool
	restoredCount  int
	restoreErr     error
	restoredGossip *persist.GossipRecord
}

// New builds a Registry. A nil clock defaults to the real clock; a nil
// factory defaults to SFD instances with default targets.
func New(clk clock.Clock, factory Factory, opts Options) *Registry {
	if clk == nil {
		clk = clock.NewReal()
	}
	if factory == nil {
		factory = func(string) detector.Detector { return core.New(core.DefaultConfig()) }
	}
	opts.normalize()
	r := &Registry{
		clk:       clk,
		factory:   factory,
		opts:      opts,
		shards:    make([]*shard, opts.Shards),
		shardMask: uint32(opts.Shards - 1),
		wheel:     newTimerWheel(opts.WheelTick, clk.Now()),
		bus:       NewBus(),
		stopc:     make(chan struct{}),
	}
	for i := range r.shards {
		r.shards[i] = newShard()
	}
	return r
}

// Options returns the effective configuration after defaulting.
func (r *Registry) Options() Options { return r.opts }

// Start launches the timer-wheel driver. Under the real clock this is a
// goroutine waking every WheelTick; under clock.Sim it is a chain of
// simulated timer callbacks, so deterministic tests drive transitions by
// advancing the clock. Start is idempotent.
func (r *Registry) Start() {
	if !r.started.CompareAndSwap(false, true) {
		return
	}
	r.startPersist()
	if af, ok := r.clk.(afterFuncer); ok {
		r.armSim(af)
		return
	}
	go r.runReal()
}

// Stop halts the wheel driver and, when persistence is enabled, flushes
// a final full snapshot (the graceful-shutdown guarantee: a clean exit
// restores exactly). Streams and subscriptions survive; Tick can still
// be called manually.
func (r *Registry) Stop() {
	if r.stopped.CompareAndSwap(false, true) {
		close(r.stopc)
		r.stopPersist()
	}
}

func (r *Registry) armSim(af afterFuncer) {
	af.AfterFunc(r.opts.WheelTick, func(now clock.Time) {
		if r.stopped.Load() {
			return
		}
		r.Tick(now)
		r.armSim(af)
	})
}

func (r *Registry) runReal() {
	for {
		select {
		case <-r.stopc:
			return
		case now := <-r.clk.After(r.opts.WheelTick):
			r.Tick(now)
		}
	}
}

// Tick advances the wheel to instant now, firing every due transition.
// Start calls it automatically; it is exported so tests and embedders
// can drive the wheel by hand. It must not be called concurrently with
// itself (the Start drivers never do).
func (r *Registry) Tick(now clock.Time) {
	r.tickBuf = r.wheel.advance(now, r.tickBuf[:0])
	for _, x := range r.tickBuf {
		r.expire(now, x)
	}
}

func (r *Registry) shardFor(peer string) *shard {
	return r.shards[fnv32a(peer)&r.shardMask]
}

// Register adds a stream without waiting for its first heartbeat
// (idempotent). The silence safety net starts immediately, so a
// registered peer that never speaks is still suspected and evicted.
//
// Stream names are hierarchical topics (`region/cluster/host/service`):
// names with empty segments (`a//b`) or wildcard characters (`+`, `#`)
// are rejected here, at the boundary, so every tracked stream is
// unambiguously addressable by SubscribeTopic filters.
func (r *Registry) Register(peer string) error {
	if err := fanout.ValidateName(peer); err != nil {
		r.invalidNames.Add(1)
		return err
	}
	sh := r.shardFor(peer)
	sh.mu.Lock()
	if _, ok := sh.streams[peer]; !ok {
		st := r.newStreamLocked(sh, peer)
		if r.opts.MaxSilence > 0 {
			r.rearmLocked(st, r.clk.Now().Add(r.opts.MaxSilence))
		}
	}
	sh.mu.Unlock()
	return nil
}

// newStreamLocked creates and files a stream; the shard lock must be held.
func (r *Registry) newStreamLocked(sh *shard, peer string) *stream {
	st := &stream{peer: peer, det: r.factory(peer)}
	sh.streams[peer] = st
	r.registered.Add(1)
	return st
}

// Deregister removes a stream, reporting whether it existed. Stale wheel
// entries for it are invalidated lazily.
func (r *Registry) Deregister(peer string) bool {
	sh := r.shardFor(peer)
	sh.mu.Lock()
	_, ok := sh.streams[peer]
	delete(sh.streams, peer)
	sh.mu.Unlock()
	return ok
}

// Len returns the number of registered streams.
func (r *Registry) Len() int {
	n := 0
	for _, sh := range r.shards {
		n += sh.len()
	}
	return n
}

// Subscribe attaches a firehose failure-event subscriber (every event)
// with the given channel capacity (buf <= 0 takes the default).
func (r *Registry) Subscribe(buf int) *Subscription {
	return r.bus.Subscribe(buf)
}

// SubscribeTopic attaches an interest-routed subscriber: it receives
// only events whose stream name matches filter (`+`/`#` wildcards over
// `/`-separated hierarchical names). A client watching 50 streams in a
// million-stream fleet pays for exactly those 50 streams' events.
func (r *Registry) SubscribeTopic(filter string, buf int) (*Subscription, error) {
	return r.bus.SubscribeTopic(filter, buf)
}

// Bus returns the underlying event bus.
func (r *Registry) Bus() *Bus { return r.bus }

// Observe ingests one heartbeat arrival. It matches heartbeat.Handler,
// so a Registry wires directly into a Receiver:
//
//	recv := heartbeat.NewReceiver(ep, clk, reg.Observe)
//
// Arrivals from unknown peers auto-register them (a server joining the
// cloud announces itself by heartbeating). The hot path takes one shard
// lock and normally never touches the wheel: a heartbeat only moves the
// stream's authoritative deadline, and the wheel entry re-arms itself
// when it fires.
func (r *Registry) Observe(a heartbeat.Arrival) {
	sh := r.shardFor(a.From)
	var evs [2]Event
	nev := 0

	sh.mu.Lock()
	st, ok := sh.streams[a.From]
	if !ok {
		// First sight of this name: validate it before it becomes a
		// topic. Known streams skip this, so the hot path pays nothing.
		if err := fanout.ValidateName(a.From); err != nil {
			sh.mu.Unlock()
			r.invalidNames.Add(1)
			return
		}
		st = r.newStreamLocked(sh, a.From)
	}
	if st.seen && (a.Inc < st.inc || (a.Inc == st.inc && a.Seq <= st.lastSeq)) {
		st.stats.Stale++
		sh.mu.Unlock()
		r.stale.Add(1)
		return
	}
	if st.seen && a.Inc > st.inc {
		// A restarted process: its arrival statistics share nothing with
		// the dead incarnation, so start the detector over.
		st.det = r.factory(a.From)
	}
	st.inc = a.Inc

	if st.phase != phaseTrusted {
		// Recovery: the suspicion (or offline verdict) was a mistake.
		st.stats.Mistakes++
		if a.Recv.After(st.suspectSince) {
			st.stats.MistakeTime += a.Recv.Sub(st.suspectSince)
		}
		st.phase = phaseTrusted
		evs[nev] = Event{Type: EventTrust, Peer: a.From, At: a.Recv, Incarnation: a.Inc}
		nev++
	}

	st.det.Observe(a.Seq, a.Send, a.Recv)
	st.lastSeq, st.lastArrival, st.seen = a.Seq, a.Recv, true
	st.stats.Heartbeats++

	// Surface the self-tuner's "can not satisfy" response as an event,
	// once per infeasibility episode.
	if sd, ok := st.det.(stater); ok {
		if sd.State() == core.StateInfeasible {
			if !st.infeasible {
				st.infeasible = true
				evs[nev] = Event{Type: EventCannotSatisfy, Peer: a.From, At: a.Recv, Detail: sd.Response()}
				nev++
			}
		} else {
			st.infeasible = false
		}
	}

	// New authoritative deadline: the freshness point, tightened by the
	// silence safety net when that comes first (or when no freshness
	// point exists yet).
	dl := st.det.FreshnessPoint()
	if r.opts.MaxSilence > 0 {
		if sil := a.Recv.Add(r.opts.MaxSilence); dl == 0 || sil.Before(dl) {
			dl = sil
		}
	}
	st.deadline = dl
	if dl > 0 && (st.entryAt == 0 || dl.Before(st.entryAt)) {
		r.rearmLocked(st, dl)
	}
	sh.mu.Unlock()

	r.heartbeats.Add(1)
	if r.markCount.Load() > 0 {
		r.clearMark(a.From, a.Recv)
	}
	for i := 0; i < nev; i++ {
		r.publish(evs[i])
	}
}

// rearmLocked schedules a fresh wheel entry for st at instant at,
// invalidating any previous entry. The stream's shard lock must be held.
// The generation comes from the registry-wide counter so entries left
// behind by a deregistered stream can never match a later stream that
// reuses the same address.
func (r *Registry) rearmLocked(st *stream, at clock.Time) {
	r.rearms.Add(1)
	st.gen = r.gen.Add(1)
	st.entryAt = at
	st.deadline = at
	r.wheel.schedule(at, st.peer, st.gen)
}

// expire resolves one fired wheel entry against the stream's current
// state: re-arm if a heartbeat moved the deadline, otherwise advance the
// trusted → suspected → offline → evicted machine one step.
func (r *Registry) expire(now clock.Time, x expiry) {
	sh := r.shardFor(x.peer)
	sh.mu.Lock()
	st := sh.streams[x.peer]
	if st == nil || st.gen != x.gen {
		sh.mu.Unlock()
		return // deregistered, evicted, or a lazily-invalidated entry
	}
	st.entryAt = 0
	if st.deadline.After(now) {
		// Heartbeats pushed the deadline out while the entry was queued.
		r.rearmLocked(st, st.deadline)
		sh.mu.Unlock()
		return
	}

	var ev Event
	switch st.phase {
	case phaseTrusted:
		st.phase = phaseSuspected
		// The suspicion episode began when the freshness point expired,
		// not when the wheel got around to firing it.
		st.suspectSince = now
		if fp := st.det.FreshnessPoint(); fp > 0 && fp.Before(now) {
			st.suspectSince = fp
		}
		ev = Event{Type: EventSuspect, Peer: st.peer, At: now, Suspicion: r.level(st, now), Incarnation: st.inc}
		r.rearmLocked(st, st.suspectSince.Add(r.opts.OfflineAfter))
	case phaseSuspected:
		st.phase = phaseOffline
		ev = Event{Type: EventOffline, Peer: st.peer, At: now, Suspicion: r.level(st, now), Incarnation: st.inc}
		if r.opts.EvictAfter > 0 {
			r.rearmLocked(st, now.Add(r.opts.EvictAfter))
		} else {
			st.deadline = 0 // parked: kept until it recovers or is deregistered
		}
	case phaseOffline:
		delete(sh.streams, st.peer)
		ev = Event{Type: EventEvicted, Peer: st.peer, At: now, Incarnation: st.inc}
	}
	sh.mu.Unlock()
	if ev.Type == EventSuspect && r.markCount.Load() > 0 {
		r.noteDetection(ev.Peer, now)
	}
	r.publish(ev)
}

// level computes the accrual suspicion level (shard lock must be held).
func (r *Registry) level(st *stream, now clock.Time) float64 {
	if acc, ok := st.det.(detector.Accrual); ok {
		return acc.SuspicionLevel(now)
	}
	if st.det.Suspect(now) {
		return r.opts.SuspectLevel
	}
	return 0
}

func (r *Registry) publish(ev Event) {
	switch ev.Type {
	case EventSuspect:
		r.suspects.Add(1)
	case EventTrust:
		r.trusts.Add(1)
	case EventOffline:
		r.offlines.Add(1)
	case EventEvicted:
		r.evictions.Add(1)
	case EventCannotSatisfy:
		r.cannotSatisfy.Add(1)
	}
	r.bus.Publish(ev)
}

// SuspicionOf returns the peer's current accrual suspicion level at
// instant now; ok is false for unknown peers.
func (r *Registry) SuspicionOf(peer string, now clock.Time) (float64, bool) {
	sh := r.shardFor(peer)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.streams[peer]
	if st == nil {
		return 0, false
	}
	return r.level(st, now), true
}

// IncarnationOf returns the peer's current incarnation number; ok is
// false for unknown peers. The gossip layer uses it to stamp local
// opinions so a restarted process can refute suspicion of its old life.
func (r *Registry) IncarnationOf(peer string) (uint64, bool) {
	sh := r.shardFor(peer)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.streams[peer]
	if st == nil {
		return 0, false
	}
	return st.inc, true
}

// StatusOf classifies one stream at instant now using the cluster
// status model; ok is false for unknown peers.
func (r *Registry) StatusOf(peer string, now clock.Time) (cluster.Status, bool) {
	sh := r.shardFor(peer)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.streams[peer]
	if st == nil {
		return cluster.StatusUnknown, false
	}
	s, _ := r.classify(st, now)
	return s, true
}

// classify maps a stream's phase (plus the accrual level for the
// busy/active refinement) onto cluster.Status. Shard lock must be held.
func (r *Registry) classify(st *stream, now clock.Time) (cluster.Status, float64) {
	if !st.seen {
		return cluster.StatusUnknown, 0
	}
	lvl := r.level(st, now)
	switch st.phase {
	case phaseOffline:
		return cluster.StatusOffline, lvl
	case phaseSuspected:
		return cluster.StatusSuspected, lvl
	default:
		switch {
		case lvl >= r.opts.SuspectLevel:
			// The wheel has not fired yet this tick; report what the
			// detector already knows.
			return cluster.StatusSuspected, lvl
		case lvl >= r.opts.BusyLevel:
			return cluster.StatusBusy, lvl
		default:
			return cluster.StatusActive, lvl
		}
	}
}

// Snapshot reports every stream at instant now, sorted by peer name —
// the same shape cluster.Monitor produces, so cluster.FormatSnapshot
// renders it unchanged.
func (r *Registry) Snapshot(now clock.Time) []cluster.Report {
	out := make([]cluster.Report, 0, r.Len())
	for _, sh := range r.shards {
		sh.mu.Lock()
		for name, st := range sh.streams {
			status, lvl := r.classify(st, now)
			out = append(out, cluster.Report{
				Peer:           name,
				Status:         status,
				SuspicionLevel: lvl,
				LastSeq:        st.lastSeq,
				LastArrival:    st.lastArrival,
				FreshnessPoint: st.det.FreshnessPoint(),
				Detector:       st.det.Name(),
				Incarnation:    st.inc,
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// Stats returns one stream's QoS tracker; ok is false for unknown peers.
func (r *Registry) Stats(peer string) (StreamStats, bool) {
	sh := r.shardFor(peer)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.streams[peer]
	if st == nil {
		return StreamStats{}, false
	}
	return st.stats, true
}

// Inspect runs fn on a stream's detector under the shard lock; it
// reports whether the peer was tracked. fn must not retain the detector
// or call back into the registry — it is a read hatch for tests and
// diagnostics (e.g. chaos acceptance asserting the safety margin widened
// during a loss burst), not a mutation path.
func (r *Registry) Inspect(peer string, fn func(det detector.Detector)) bool {
	sh := r.shardFor(peer)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.streams[peer]
	if st == nil || st.det == nil {
		return false
	}
	fn(st.det)
	return true
}

// Counters returns the registry's monotonic counters plus current gauges.
func (r *Registry) Counters() Counters {
	pub, drop := r.bus.Stats()
	fs := r.bus.FanoutStats()
	return Counters{
		Heartbeats:    r.heartbeats.Load(),
		Stale:         r.stale.Load(),
		Registered:    r.registered.Load(),
		InvalidNames:  r.invalidNames.Load(),
		Suspects:      r.suspects.Load(),
		Trusts:        r.trusts.Load(),
		Offlines:      r.offlines.Load(),
		Evictions:     r.evictions.Load(),
		CannotSatisfy: r.cannotSatisfy.Load(),
		BusPublished:  pub,
		BusDropped:    drop,
		FanoutMatches: fs.Matches,
		FanoutDrops:   r.bus.TopicDropped(),
		WatchRejected: r.watchRejected.Load(),
		WatchConns:    int(r.watchConns.Load()),
		Streams:       r.Len(),
		WheelEntries:  r.wheel.len(),
		Subscribers:   r.bus.Subscribers(),
		TopicSubs:     fs.Subscriptions,
		TrieNodes:     fs.Nodes,
	}
}

// ShardOccupancy returns the stream count per shard (lock-stripe load
// balance; with FNV hashing it should be near-uniform).
func (r *Registry) ShardOccupancy() []int {
	out := make([]int, len(r.shards))
	for i, sh := range r.shards {
		out[i] = sh.len()
	}
	return out
}
