package registry

import (
	"encoding/json"
	"net/http"

	"repro/internal/clock"
)

// Handler returns the registry's HTTP surface, mounted by
// `sfdmon -mode monitor -serve :8080`:
//
//	GET /status   full JSON snapshot: counters plus one row per stream
//	GET /vars     expvar-style counters, shard occupancy, subscriptions
//	GET /watch    NDJSON event stream filtered by topic (see serveWatch)
//	GET /metrics  Prometheus text exposition (see Metrics)
//	GET /healthz  liveness probe (200 "ok")
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", r.serveStatus)
	mux.HandleFunc("/vars", r.serveVars)
	mux.HandleFunc("/watch", r.serveWatch)
	mux.Handle("/metrics", r.Metrics().Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}

type streamJSON struct {
	Peer        string  `json:"peer"`
	Status      string  `json:"status"`
	Suspicion   float64 `json:"suspicion"`
	LastSeq     uint64  `json:"last_seq"`
	LastArrival int64   `json:"last_arrival_ns"`
	Freshness   int64   `json:"freshness_point_ns"`
	Detector    string  `json:"detector"`
	Incarnation uint64  `json:"incarnation"`
}

type statusJSON struct {
	Now      int64        `json:"now_ns"`
	Counters Counters     `json:"counters"`
	Shards   []int        `json:"shard_occupancy"`
	Streams  []streamJSON `json:"streams"`
}

func (r *Registry) serveStatus(w http.ResponseWriter, _ *http.Request) {
	now := r.clk.Now()
	reports := r.Snapshot(now)
	out := statusJSON{
		Now:      int64(now),
		Counters: r.Counters(),
		Shards:   r.ShardOccupancy(),
		Streams:  make([]streamJSON, 0, len(reports)),
	}
	for _, rep := range reports {
		out.Streams = append(out.Streams, streamJSON{
			Peer:        rep.Peer,
			Status:      rep.Status.String(),
			Suspicion:   rep.SuspicionLevel,
			LastSeq:     rep.LastSeq,
			LastArrival: int64(rep.LastArrival),
			Freshness:   int64(rep.FreshnessPoint),
			Detector:    rep.Detector,
			Incarnation: rep.Incarnation,
		})
	}
	writeJSON(w, out)
}

type varsJSON struct {
	Now      int64    `json:"now_ns"`
	Uptime   float64  `json:"uptime_s"`
	Counters Counters `json:"counters"`
	Shards   []int    `json:"shard_occupancy"`
	// Subscriptions lists every live bus subscription (firehose and
	// topic) with its delivery accounting, so a slow /watch consumer is
	// diagnosable from the outside by its per-subscription drop count.
	Subscriptions []SubscriptionStats `json:"subscriptions"`
	// Aux carries sections registered by RegisterVars — subsystems
	// outside the registry (transport drop counters, gossip, federation)
	// that want their accounting on the same endpoint.
	Aux map[string]any `json:"aux,omitempty"`
}

// RegisterVars adds a named section to /vars, produced by fn at serve
// time. Registering the same name again replaces the section. fn must
// be safe for concurrent use; it is called on the HTTP serving path.
func (r *Registry) RegisterVars(name string, fn func() any) {
	r.varsMu.Lock()
	if r.varsAux == nil {
		r.varsAux = make(map[string]func() any)
	}
	r.varsAux[name] = fn
	r.varsMu.Unlock()
}

func (r *Registry) serveVars(w http.ResponseWriter, _ *http.Request) {
	now := r.clk.Now()
	out := varsJSON{
		Now:           int64(now),
		Uptime:        now.Sub(clock.Time(0)).Seconds(),
		Counters:      r.Counters(),
		Shards:        r.ShardOccupancy(),
		Subscriptions: r.bus.SubscriptionStats(),
	}
	r.varsMu.Lock()
	if len(r.varsAux) > 0 {
		out.Aux = make(map[string]any, len(r.varsAux))
		for name, fn := range r.varsAux {
			out.Aux[name] = fn()
		}
	}
	r.varsMu.Unlock()
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
