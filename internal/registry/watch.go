package registry

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// Streaming watch endpoint: GET /watch?filter=eu/%23 holds the
// connection open and streams matching failure-bus events as NDJSON
// (one JSON object per line, flushed as they happen). This is the
// push-based counterpart of polling /status — a narrow watcher taps
// the interest-routed topic trie instead of snapshotting 100k streams.
//
// Query parameters:
//
//	filter     topic filter (`+`/`#` wildcards; default "#" = everything)
//	buf        subscription channel capacity (default 256)
//	heartbeat  keepalive period while idle (Go duration; default 5s)
//	max        close after this many events (default 0 = stream forever)
//
// The stream opens with a hello line carrying the subscription id, then
// interleaves event lines with heartbeat lines. Heartbeats double as
// per-connection drop accounting: a consumer that reads too slowly sees
// its own `dropped` counter climb (drop-oldest backpressure at the bus,
// see Bus). When `max` is reached a final summary line is written and
// the connection closes — handy for curl demos and tests.
const (
	watchDefaultBuf       = 256
	watchDefaultHeartbeat = 5 * time.Second
)

// watchHelloJSON is the first line of a /watch stream.
type watchHelloJSON struct {
	Watching string `json:"watching"`
	ID       uint64 `json:"subscription_id"`
	Buffer   int    `json:"buffer"`
}

// watchEventJSON is one routed failure-bus event.
type watchEventJSON struct {
	Event       string  `json:"event"`
	Peer        string  `json:"peer"`
	At          int64   `json:"at_ns"`
	Suspicion   float64 `json:"suspicion,omitempty"`
	Incarnation uint64  `json:"incarnation,omitempty"`
	Source      string  `json:"source,omitempty"`
	Detail      string  `json:"detail,omitempty"`
}

// watchHeartbeatJSON is an idle-period keepalive with this connection's
// delivery accounting so far.
type watchHeartbeatJSON struct {
	Heartbeat bool   `json:"heartbeat"`
	NowNs     int64  `json:"now_ns"`
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
	Queued    int    `json:"queued"`
}

// watchDoneJSON closes a max-bounded stream.
type watchDoneJSON struct {
	Done      bool   `json:"done"`
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
}

// watchRetryAfterSeconds is the Retry-After hint sent with a 503 when
// WatchMaxConns is saturated.
const watchRetryAfterSeconds = 5

func (r *Registry) serveWatch(w http.ResponseWriter, req *http.Request) {
	if max := int64(r.opts.WatchMaxConns); max > 0 {
		if n := r.watchConns.Add(1); n > max {
			r.watchConns.Add(-1)
			r.watchRejected.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(watchRetryAfterSeconds))
			http.Error(w, "watch: connection limit reached", http.StatusServiceUnavailable)
			return
		}
		defer r.watchConns.Add(-1)
	}
	q := req.URL.Query()
	filter := q.Get("filter")
	if filter == "" {
		filter = "#"
	}
	buf := watchDefaultBuf
	if s := q.Get("buf"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			http.Error(w, "watch: buf must be a positive integer", http.StatusBadRequest)
			return
		}
		buf = n
	}
	hb := watchDefaultHeartbeat
	if s := q.Get("heartbeat"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			http.Error(w, "watch: heartbeat must be a positive duration", http.StatusBadRequest)
			return
		}
		hb = d
	}
	max := 0
	if s := q.Get("max"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, "watch: max must be a non-negative integer", http.StatusBadRequest)
			return
		}
		max = n
	}

	sub, err := r.bus.SubscribeTopic(filter, buf)
	if err != nil {
		http.Error(w, "watch: "+err.Error(), http.StatusBadRequest)
		return
	}
	defer sub.Close()

	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	// Tell buffering reverse proxies to pass chunks through unmodified.
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w) // Encode appends "\n": NDJSON for free
	emit := func(v any) bool {
		if err := enc.Encode(v); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	if !emit(watchHelloJSON{Watching: filter, ID: sub.ID(), Buffer: buf}) {
		return
	}

	ctx := req.Context()
	keepalive := r.clk.After(hb)
	sent := 0
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-sub.C():
			if !ok {
				return
			}
			if !emit(watchEventJSON{
				Event:       ev.Type.String(),
				Peer:        ev.Peer,
				At:          int64(ev.At),
				Suspicion:   ev.Suspicion,
				Incarnation: ev.Incarnation,
				Source:      ev.Source,
				Detail:      ev.Detail,
			}) {
				return
			}
			sent++
			if max > 0 && sent >= max {
				st := sub.Stats()
				emit(watchDoneJSON{Done: true, Delivered: st.Delivered, Dropped: st.Dropped})
				return
			}
		case now := <-keepalive:
			st := sub.Stats()
			if !emit(watchHeartbeatJSON{
				Heartbeat: true,
				NowNs:     int64(now),
				Delivered: st.Delivered,
				Dropped:   st.Dropped,
				Queued:    st.Queued,
			}) {
				return
			}
			keepalive = r.clk.After(hb)
		}
	}
}
