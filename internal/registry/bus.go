package registry

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/fanout"
)

// Bus is the failure-event fan-out: transitions detected by the registry
// are published to subscribers over bounded channels. Publishing NEVER
// blocks — a subscriber that falls behind has its oldest queued events
// replaced by newer ones (drop-oldest backpressure), with the drops
// counted per subscriber. This keeps the single timer-wheel goroutine
// isolated from slow consumers, the property Dobre et al.'s
// notification-driven architecture depends on.
//
// Subscribers come in two kinds:
//
//   - Subscribe: the firehose — every event, the original contract.
//   - SubscribeTopic: interest-routed — only events whose stream name
//     matches the subscription's topic filter (`+`/`#` wildcards over
//     `/`-separated hierarchical names; see internal/fanout). The
//     publish path routes through a copy-on-write topic trie, so its
//     cost scales with the number of *matching* subscribers, not the
//     total — the property that lets one registry serve thousands of
//     narrow watchers.
type Bus struct {
	mu   sync.RWMutex
	subs map[*Subscription]struct{} // firehose subscribers
	all  map[uint64]*Subscription   // every live subscription by id (stats)

	trie *fanout.Trie[*Subscription]
	// matchBuf pools publish-time match buffers so interest routing
	// stays allocation-free in steady state.
	matchBuf sync.Pool

	nextID       atomic.Uint64
	published    atomic.Uint64
	dropped      atomic.Uint64
	droppedTopic atomic.Uint64
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{
		subs: make(map[*Subscription]struct{}),
		all:  make(map[uint64]*Subscription),
		trie: fanout.New[*Subscription](),
		matchBuf: sync.Pool{New: func() any {
			buf := make([]*Subscription, 0, 32)
			return &buf
		}},
	}
}

// Subscribe registers a firehose subscriber receiving every event, with
// the given channel capacity (minimum 1; buf <= 0 takes 64). Close the
// subscription to detach.
func (b *Bus) Subscribe(buf int) *Subscription {
	s := b.newSubscription("", buf)
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.all[s.id] = s
	b.mu.Unlock()
	return s
}

// SubscribeTopic registers an interest-routed subscriber: it receives
// only events whose stream name matches filter (MQTT-style `+`/`#`
// wildcards over `/`-separated segments, e.g. "eu/+/web-1/#"). Drop-
// oldest semantics and channel capacity behave exactly as Subscribe.
// An invalid filter returns fanout's validation error.
func (b *Bus) SubscribeTopic(filter string, buf int) (*Subscription, error) {
	s := b.newSubscription(filter, buf)
	tok, err := b.trie.Subscribe(filter, s)
	if err != nil {
		return nil, err
	}
	s.tok = tok
	b.mu.Lock()
	b.all[s.id] = s
	b.mu.Unlock()
	return s, nil
}

func (b *Bus) newSubscription(filter string, buf int) *Subscription {
	if buf <= 0 {
		buf = 64
	}
	return &Subscription{
		bus:    b,
		id:     b.nextID.Add(1),
		filter: filter,
		ch:     make(chan Event, buf),
	}
}

// Publish delivers e to every firehose subscriber and to every topic
// subscriber whose filter matches e.Peer, without blocking.
func (b *Bus) Publish(e Event) {
	b.published.Add(1)
	b.mu.RLock()
	for s := range b.subs {
		s.offer(e)
	}
	b.mu.RUnlock()
	if b.trie.Empty() {
		return
	}
	bufp := b.matchBuf.Get().(*[]*Subscription)
	matched := b.trie.MatchAppend(e.Peer, (*bufp)[:0])
	for _, s := range matched {
		s.offer(e)
	}
	*bufp = matched[:0]
	b.matchBuf.Put(bufp)
}

// Stats returns the total published events and total drops across all
// subscribers (including subscribers that have since closed).
func (b *Bus) Stats() (published, dropped uint64) {
	return b.published.Load(), b.dropped.Load()
}

// TopicDropped returns drops charged to topic (filtered) subscriptions
// only — the sfd_fanout_drops_total series.
func (b *Bus) TopicDropped() uint64 { return b.droppedTopic.Load() }

// FanoutStats returns the topic trie's size and routing counters.
func (b *Bus) FanoutStats() fanout.Stats { return b.trie.Stats() }

// Subscribers returns the current subscriber count, firehose plus topic.
func (b *Bus) Subscribers() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.all)
}

// SubscriptionStats is one subscriber's delivery accounting — the
// per-subscription view the ISSUE's slow-watcher diagnosis needs: a
// consumer that falls behind sees *its own* drop count, not just the
// bus-wide aggregate.
type SubscriptionStats struct {
	ID     uint64 `json:"id"`
	Filter string `json:"filter,omitempty"` // empty = firehose
	Buffer int    `json:"buffer"`
	Queued int    `json:"queued"`
	// Delivered counts events enqueued to this subscription (including
	// any later displaced by drop-oldest).
	Delivered uint64 `json:"delivered"`
	// Dropped counts events this subscription lost to drop-oldest
	// backpressure.
	Dropped uint64 `json:"dropped"`
}

// SubscriptionStats reports every live subscription, ordered by id
// (oldest first).
func (b *Bus) SubscriptionStats() []SubscriptionStats {
	b.mu.RLock()
	out := make([]SubscriptionStats, 0, len(b.all))
	for _, s := range b.all {
		out = append(out, s.Stats())
	}
	b.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Subscription is one bounded-channel consumer of the event bus.
type Subscription struct {
	bus    *Bus
	id     uint64
	filter string // "" = firehose
	ch     chan Event
	tok    *fanout.Sub[*Subscription] // non-nil for topic subscriptions

	mu        sync.Mutex // serializes offers against Close
	closed    bool
	delivered atomic.Uint64
	dropped   atomic.Uint64
}

// C returns the event channel. It is closed by Close.
func (s *Subscription) C() <-chan Event { return s.ch }

// ID returns the bus-unique subscription id.
func (s *Subscription) ID() uint64 { return s.id }

// Filter returns the topic filter, or "" for a firehose subscription.
func (s *Subscription) Filter() string { return s.filter }

// Dropped returns how many events were discarded because this subscriber
// fell behind.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Delivered returns how many events were enqueued to this subscription.
func (s *Subscription) Delivered() uint64 { return s.delivered.Load() }

// Stats returns this subscription's delivery accounting.
func (s *Subscription) Stats() SubscriptionStats {
	return SubscriptionStats{
		ID:        s.id,
		Filter:    s.filter,
		Buffer:    cap(s.ch),
		Queued:    len(s.ch),
		Delivered: s.delivered.Load(),
		Dropped:   s.dropped.Load(),
	}
}

// Close detaches the subscription from the bus and closes the channel.
// It is safe to call concurrently with Publish and more than once.
func (s *Subscription) Close() {
	s.bus.mu.Lock()
	delete(s.bus.subs, s)
	delete(s.bus.all, s.id)
	s.bus.mu.Unlock()
	if s.tok != nil {
		s.bus.trie.Unsubscribe(s.tok)
	}
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
	s.mu.Unlock()
}

// offer enqueues e, evicting the oldest queued event when full. Offers
// are serialized by s.mu (publishers from the wheel goroutine and from
// heartbeat ingest paths may race), so the loop below terminates: only
// the consumer can remove events besides us, and it only makes room.
func (s *Subscription) offer(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.delivered.Add(1)
	for {
		select {
		case s.ch <- e:
			return
		default:
		}
		// Full: drop the oldest (the consumer may race us for it; either
		// way a slot frees up and the next send attempt succeeds).
		select {
		case <-s.ch:
			s.dropped.Add(1)
			s.bus.dropped.Add(1)
			if s.filter != "" {
				s.bus.droppedTopic.Add(1)
			}
		default:
		}
	}
}
