package registry

import (
	"sync"
	"sync/atomic"
)

// Bus is the failure-event fan-out: transitions detected by the registry
// are published to every subscriber over a bounded channel. Publishing
// NEVER blocks — a subscriber that falls behind has its oldest queued
// events replaced by newer ones (drop-oldest backpressure), with the
// drops counted per subscriber. This keeps the single timer-wheel
// goroutine isolated from slow consumers, the property Dobre et al.'s
// notification-driven architecture depends on.
type Bus struct {
	mu   sync.RWMutex
	subs map[*Subscription]struct{}

	published atomic.Uint64
	dropped   atomic.Uint64
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[*Subscription]struct{})}
}

// Subscribe registers a subscriber with the given channel capacity
// (minimum 1; buf <= 0 takes 64). Close the subscription to detach.
func (b *Bus) Subscribe(buf int) *Subscription {
	if buf <= 0 {
		buf = 64
	}
	s := &Subscription{bus: b, ch: make(chan Event, buf)}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

// Publish delivers e to every subscriber without blocking.
func (b *Bus) Publish(e Event) {
	b.published.Add(1)
	b.mu.RLock()
	for s := range b.subs {
		s.offer(e)
	}
	b.mu.RUnlock()
}

// Stats returns the total published events and total drops across all
// subscribers (including subscribers that have since closed).
func (b *Bus) Stats() (published, dropped uint64) {
	return b.published.Load(), b.dropped.Load()
}

// Subscribers returns the current subscriber count.
func (b *Bus) Subscribers() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.subs)
}

// Subscription is one bounded-channel consumer of the event bus.
type Subscription struct {
	bus *Bus
	ch  chan Event

	mu      sync.Mutex // serializes offers against Close
	closed  bool
	dropped atomic.Uint64
}

// C returns the event channel. It is closed by Close.
func (s *Subscription) C() <-chan Event { return s.ch }

// Dropped returns how many events were discarded because this subscriber
// fell behind.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close detaches the subscription from the bus and closes the channel.
// It is safe to call concurrently with Publish and more than once.
func (s *Subscription) Close() {
	s.bus.mu.Lock()
	delete(s.bus.subs, s)
	s.bus.mu.Unlock()
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
	s.mu.Unlock()
}

// offer enqueues e, evicting the oldest queued event when full. Offers
// are serialized by s.mu (publishers from the wheel goroutine and from
// heartbeat ingest paths may race), so the loop below terminates: only
// the consumer can remove events besides us, and it only makes room.
func (s *Subscription) offer(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	for {
		select {
		case s.ch <- e:
			return
		default:
		}
		// Full: drop the oldest (the consumer may race us for it; either
		// way a slot frees up and the next send attempt succeeds).
		select {
		case <-s.ch:
			s.dropped.Add(1)
			s.bus.dropped.Add(1)
		default:
		}
	}
}
