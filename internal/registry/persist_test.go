package registry

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/heartbeat"
	"repro/internal/persist"
)

// persistFactory builds self-tuning detectors small enough to warm up
// within a short simulated run.
func persistFactory(interval clock.Duration) Factory {
	return func(string) detector.Detector {
		return core.New(core.Config{
			WindowSize:     32,
			Interval:       interval,
			InitialMargin:  200 * ms,
			SlotHeartbeats: 16,
		})
	}
}

func persistOpts(dir string) Options {
	return Options{
		WheelTick:          10 * ms,
		OfflineAfter:       500 * ms,
		EvictAfter:         clock.Second,
		MaxSilence:         -1, // deadline discipline comes from the detector
		StateDir:           dir,
		CheckpointInterval: 2 * clock.Second,
		JournalFlush:       100 * ms,
		RewarmGrace:        clock.Second,
	}
}

func beatAt(r *Registry, sim *clock.Sim, peer string, seq, inc uint64) {
	now := sim.Now()
	r.Observe(heartbeat.Arrival{From: peer, Seq: seq, Send: now.Add(-2 * ms), Recv: now, Inc: inc})
}

func eventsByPeer(evs []Event) map[string][]Event {
	m := map[string][]Event{}
	for _, ev := range evs {
		m[ev.Peer] = append(m[ev.Peer], ev)
	}
	return m
}

// TestWarmRestartNoSpuriousSuspects is the core robustness property:
// streams that kept heartbeating through a short monitor outage must
// produce zero suspect transitions after a warm restart, and their
// incarnations must not regress.
func TestWarmRestartNoSpuriousSuspects(t *testing.T) {
	dir := t.TempDir()
	peers := []string{"srv-0", "srv-1", "srv-2", "srv-3"}
	incs := map[string]uint64{"srv-0": 0, "srv-1": 3, "srv-2": 0, "srv-3": 7}

	// First life: 50 beats per peer on a 100 ms cadence, then a clean stop.
	sim1 := clock.NewSim(0)
	r1 := New(sim1, persistFactory(100*ms), persistOpts(dir))
	r1.Start()
	sub1 := r1.Subscribe(256)
	for i := 0; i < 50; i++ {
		for _, p := range peers {
			beatAt(r1, sim1, p, uint64(i), incs[p])
		}
		sim1.Advance(100 * ms)
	}
	if evs := drain(sub1); len(evs) != 0 {
		t.Fatalf("first life produced events while healthy: %v", evs)
	}
	r1.Stop()

	// Second life, 300 ms of downtime. The senders kept running: they are
	// 3 sequence numbers ahead when the monitor comes back.
	const downtime = 300 * ms
	sim2 := clock.NewSim(0)
	r2 := New(sim2, persistFactory(100*ms), persistOpts(dir))
	n, err := r2.RestoreFromDisk(downtime)
	if err != nil {
		t.Fatalf("RestoreFromDisk: %v", err)
	}
	if n != len(peers) {
		t.Fatalf("restored %d streams, want %d", n, len(peers))
	}
	r2.Start()
	defer r2.Stop()

	for _, p := range peers {
		if inc, ok := r2.IncarnationOf(p); !ok || inc != incs[p] {
			t.Fatalf("%s incarnation = %d (ok=%v), want %d — regressed across restart", p, inc, ok, incs[p])
		}
		if st, ok := r2.StatusOf(p, sim2.Now()); !ok || st != cluster.StatusActive {
			t.Fatalf("%s restored as %v, want active", p, st)
		}
		if st, ok := r2.Stats(p); !ok || st.Heartbeats != 50 {
			t.Fatalf("%s stats not restored: %+v", p, st)
		}
		ok := r2.Inspect(p, func(det detector.Detector) {
			if sfd, isSFD := det.(*core.SFD); !isSFD || sfd.Rewarming() == 0 {
				t.Errorf("%s detector not in rewarm grace after restore", p)
			}
		})
		if !ok {
			t.Fatalf("%s not inspectable after restore", p)
		}
	}

	// Resume heartbeats for 3 s — past the rewarm grace window — and
	// demand total silence on the event bus.
	sub2 := r2.Subscribe(256)
	seq := uint64(50 + 3) // 50 sent pre-crash + 3 lost to downtime
	for i := 0; i < 30; i++ {
		for _, p := range peers {
			beatAt(r2, sim2, p, seq+uint64(i), incs[p])
		}
		sim2.Advance(100 * ms)
	}
	if evs := drain(sub2); len(evs) != 0 {
		t.Fatalf("warm restart produced spurious events: %v", evs)
	}
	for _, p := range peers {
		if st, ok := r2.StatusOf(p, sim2.Now()); !ok || st != cluster.StatusActive {
			t.Fatalf("%s = %v after resumed beating, want active", p, st)
		}
	}
}

// TestWarmRestartSilentStreamStillSuspected: the rewarm grace must not
// turn into amnesty. A restored stream that never heartbeats again walks
// suspect → offline → evicted on the normal machinery, starting at the
// grace deadline.
func TestWarmRestartSilentStreamStillSuspected(t *testing.T) {
	dir := t.TempDir()
	sim1 := clock.NewSim(0)
	r1 := New(sim1, persistFactory(100*ms), persistOpts(dir))
	r1.Start()
	for i := 0; i < 50; i++ {
		beatAt(r1, sim1, "dead", uint64(i), 0)
		beatAt(r1, sim1, "live", uint64(i), 0)
		sim1.Advance(100 * ms)
	}
	r1.Stop()

	sim2 := clock.NewSim(0)
	r2 := New(sim2, persistFactory(100*ms), persistOpts(dir))
	if _, err := r2.RestoreFromDisk(300 * ms); err != nil {
		t.Fatalf("RestoreFromDisk: %v", err)
	}
	r2.Start()
	defer r2.Stop()
	sub := r2.Subscribe(256)

	// "live" resumes; "dead" stays silent past grace (1 s) + offline
	// (500 ms) + evict (1 s).
	for i := 0; i < 30; i++ {
		beatAt(r2, sim2, "live", uint64(53+i), 0)
		sim2.Advance(100 * ms)
	}

	by := eventsByPeer(drain(sub))
	if len(by["live"]) != 0 {
		t.Fatalf("live peer got events: %v", by["live"])
	}
	evs := by["dead"]
	want := []EventType{EventSuspect, EventOffline, EventEvicted}
	if len(evs) != len(want) {
		t.Fatalf("dead peer events = %v, want %v", evs, want)
	}
	for i, ev := range evs {
		if ev.Type != want[i] {
			t.Fatalf("dead peer event %d = %v, want %v", i, ev.Type, want[i])
		}
	}
	// Suspicion began at the rewarm-grace deadline, not instantly at
	// restart and not at some stale pre-crash freshness point.
	grace := clock.Time(persistOpts(dir).RewarmGrace)
	if evs[0].At < grace || evs[0].At > grace.Add(100*ms) {
		t.Fatalf("suspect fired at %v, want ≈ grace %v", evs[0].At, grace)
	}
	if _, ok := r2.StatusOf("dead", sim2.Now()); ok {
		t.Fatal("dead peer still present after eviction")
	}
}

// TestWarmRestartResumesSuspicion: a stream suspected before the crash
// comes back suspected, and its offline deadline credits the time it was
// already under suspicion — including the downtime itself.
func TestWarmRestartResumesSuspicion(t *testing.T) {
	dir := t.TempDir()
	opts := persistOpts(dir)
	opts.OfflineAfter = 2 * clock.Second

	sim1 := clock.NewSim(0)
	r1 := New(sim1, persistFactory(100*ms), opts)
	r1.Start()
	sub1 := r1.Subscribe(256)
	for i := 0; i < 50; i++ {
		beatAt(r1, sim1, "flaky", uint64(i), 0)
		beatAt(r1, sim1, "steady", uint64(i), 0)
		sim1.Advance(100 * ms)
	}
	// "flaky" goes silent; run until the wheel suspects it.
	for i := 50; i < 58; i++ {
		beatAt(r1, sim1, "steady", uint64(i), 0)
		sim1.Advance(100 * ms)
	}
	by := eventsByPeer(drain(sub1))
	if len(by["flaky"]) != 1 || by["flaky"][0].Type != EventSuspect {
		t.Fatalf("flaky pre-crash events = %v, want one suspect", by["flaky"])
	}
	r1.Stop()

	sim2 := clock.NewSim(0)
	r2 := New(sim2, persistFactory(100*ms), opts)
	if _, err := r2.RestoreFromDisk(300 * ms); err != nil {
		t.Fatalf("RestoreFromDisk: %v", err)
	}
	r2.Start()
	defer r2.Stop()
	if st, ok := r2.StatusOf("flaky", sim2.Now()); !ok || st != cluster.StatusSuspected {
		t.Fatalf("flaky restored as %v, want suspected", st)
	}

	sub2 := r2.Subscribe(256)
	for i := 0; i < 18; i++ { // 1.8 s < OfflineAfter from restart
		beatAt(r2, sim2, "steady", uint64(61+i), 0)
		sim2.Advance(100 * ms)
	}
	by = eventsByPeer(drain(sub2))
	evs := by["flaky"]
	if len(evs) != 1 || evs[0].Type != EventOffline {
		t.Fatalf("flaky post-restart events = %v, want exactly one offline (no fresh suspect)", evs)
	}
	// The episode started ≈ 0.6 s before the crash plus 0.3 s downtime, so
	// offline must land well before a from-scratch 2 s OfflineAfter would.
	if evs[0].At >= clock.Time(opts.OfflineAfter) {
		t.Fatalf("offline at %v: suspicion clock restarted instead of resuming", evs[0].At)
	}
	if len(by["steady"]) != 0 {
		t.Fatalf("steady got events: %v", by["steady"])
	}
}

// TestRestartRecoversJournalDeltas simulates a hard kill (no final
// snapshot): a phase transition that only made it into the delta journal
// must still be visible after restart.
func TestRestartRecoversJournalDeltas(t *testing.T) {
	dir := t.TempDir()
	opts := persistOpts(dir)
	opts.CheckpointInterval = clock.Duration(3600) * clock.Second // journal-only after the first full

	sim1 := clock.NewSim(0)
	r1 := New(sim1, persistFactory(100*ms), opts)
	r1.Start()
	for i := 0; i < 50; i++ {
		beatAt(r1, sim1, "flaky", uint64(i), 0)
		beatAt(r1, sim1, "steady", uint64(i), 0)
		sim1.Advance(100 * ms)
	}
	// flaky goes silent long enough to be suspected — but not long enough
	// to go offline (that would be at suspectSince + 500 ms ≈ 5.7 s);
	// journal flushes run every 100 ms, so the suspect delta is durable
	// well before the "kill".
	for i := 50; i < 55; i++ {
		beatAt(r1, sim1, "steady", uint64(i), 0)
		sim1.Advance(100 * ms)
	}
	if c := r1.Checkpointer(); c == nil || c.Deltas() == 0 {
		t.Fatal("suspect delta never reached the journal")
	}
	// Hard kill: r1 is abandoned without Stop — no final snapshot.

	sim2 := clock.NewSim(0)
	r2 := New(sim2, persistFactory(100*ms), opts)
	n, err := r2.RestoreFromDisk(300 * ms)
	if err != nil {
		t.Fatalf("RestoreFromDisk: %v", err)
	}
	if n != 2 {
		t.Fatalf("restored %d streams, want 2", n)
	}
	if st, ok := r2.StatusOf("flaky", sim2.Now()); !ok || st != cluster.StatusSuspected {
		t.Fatalf("flaky = %v, want suspected (journal delta lost?)", st)
	}
	if st, ok := r2.StatusOf("steady", sim2.Now()); !ok || st != cluster.StatusActive {
		t.Fatalf("steady = %v, want active", st)
	}
}

// TestRestartColdStartsOnCorruptState: a mangled state directory must
// produce a working cold-started registry (plus a reported error), and
// the next clean shutdown heals the directory.
func TestRestartColdStartsOnCorruptState(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snap-00000001.full"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	sim := clock.NewSim(0)
	r := New(sim, persistFactory(100*ms), persistOpts(dir))
	r.Start()
	n, err := r.RestoredStreams()
	if n != 0 || err == nil {
		t.Fatalf("corrupt dir: restored=%d err=%v, want 0 with an error", n, err)
	}
	if !errors.Is(err, persist.ErrNoSnapshot) || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt dir error %q should wrap ErrNoSnapshot and name the corruption", err)
	}
	for i := 0; i < 40; i++ {
		beatAt(r, sim, "srv-0", uint64(i), 0)
		sim.Advance(100 * ms)
	}
	if st, ok := r.StatusOf("srv-0", sim.Now()); !ok || st != cluster.StatusActive {
		t.Fatalf("cold-started registry broken: %v", st)
	}
	r.Stop() // writes a fresh, valid snapshot past the corrupt epoch

	sim2 := clock.NewSim(0)
	r2 := New(sim2, persistFactory(100*ms), persistOpts(dir))
	if n, err := r2.RestoreFromDisk(100 * ms); err != nil || n != 1 {
		t.Fatalf("post-heal restore: n=%d err=%v, want 1 stream", n, err)
	}
}

// TestPhaseWire keeps the registry's unexported phase constants in
// lockstep with the persistence wire constants.
func TestPhaseWire(t *testing.T) {
	pairs := []struct {
		p phase
		w uint8
	}{
		{phaseTrusted, persist.PhaseTrusted},
		{phaseSuspected, persist.PhaseSuspected},
		{phaseOffline, persist.PhaseOffline},
	}
	for _, pw := range pairs {
		if phaseWire(pw.p) != pw.w {
			t.Errorf("phaseWire(%v) = %d, want %d", pw.p, phaseWire(pw.p), pw.w)
		}
		if wirePhase(pw.w) != pw.p {
			t.Errorf("wirePhase(%d) = %v, want %v", pw.w, wirePhase(pw.w), pw.p)
		}
	}
}
