package registry

import (
	"math"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/heartbeat"
)

// TestGroundTruthLatency drives the MarkFailure → suspect → latency
// pipeline deterministically: a marked peer's suspect transition must
// produce exactly one sample equal to (transition − mark).
func TestGroundTruthLatency(t *testing.T) {
	sim := clock.NewSim(0)
	r := New(sim, chenFactory(100*ms, 200*ms), Options{
		WheelTick:    10 * ms,
		OfflineAfter: clock.Second,
		EvictAfter:   -1,
	})
	r.Start()
	defer r.Stop()

	feed := func(peer string, seq uint64) {
		now := sim.Now()
		r.Observe(heartbeat.Arrival{From: peer, Seq: seq, Send: now.Add(-2 * ms), Recv: now})
	}
	for i := 0; i < 20; i++ {
		feed("victim", uint64(i))
		feed("bystander", uint64(i))
		sim.Advance(100 * ms)
	}
	if d := r.DetectionLatency(); d.Samples != 0 || d.Pending != 0 {
		t.Fatalf("pre-mark latency = %+v", d)
	}

	// Kill "victim" at a known instant; keep "bystander" beating.
	killed := sim.Now()
	r.MarkFailure("victim", killed)
	if d := r.DetectionLatency(); d.Pending != 1 {
		t.Fatalf("pending = %d, want 1", d.Pending)
	}
	var suspectAt clock.Time
	sub := r.Subscribe(64)
	for i := 20; i < 30; i++ {
		feed("bystander", uint64(i))
		sim.Advance(100 * ms)
	}
	for _, ev := range drain(sub) {
		if ev.Type == EventSuspect && ev.Peer == "victim" {
			suspectAt = ev.At
		}
		if ev.Peer == "bystander" {
			t.Fatalf("bystander transitioned: %v", ev)
		}
	}
	if suspectAt == 0 {
		t.Fatal("victim never suspected")
	}

	d := r.DetectionLatency()
	if d.Samples != 1 || d.Pending != 0 {
		t.Fatalf("latency after detection = %+v", d)
	}
	want := clock.Duration(suspectAt.Sub(killed)).Seconds()
	if math.Abs(d.Mean-want) > 0.05 {
		t.Fatalf("mean latency %.3fs, want ≈%.3fs (bin width tolerance)", d.Mean, want)
	}

	// The same transition must land on the /metrics histogram.
	r.Metrics() // builds the set, arming detLatHist
	r.MarkFailure("bystander", sim.Now())
	for i := 0; i < 15; i++ {
		sim.Advance(100 * ms)
	}
	var page strings.Builder
	r.Metrics().WritePrometheus(&page)
	if !strings.Contains(page.String(), "sfd_detection_latency_seconds_count 1") {
		t.Fatalf("histogram missing bystander sample:\n%s", grepLines(page.String(), "sfd_detection_latency"))
	}
}

// TestGroundTruthMarkCleared: a marked peer that keeps heartbeating past
// the settle grace was a mis-injection — the mark must be consumed
// without a sample.
func TestGroundTruthMarkCleared(t *testing.T) {
	sim := clock.NewSim(0)
	r := New(sim, chenFactory(100*ms, 200*ms), Options{WheelTick: 10 * ms})
	r.Start()
	defer r.Stop()

	feed := func(seq uint64) {
		now := sim.Now()
		r.Observe(heartbeat.Arrival{From: "p", Seq: seq, Send: now.Add(-ms), Recv: now})
	}
	for i := 0; i < 10; i++ {
		feed(uint64(i))
		sim.Advance(100 * ms)
	}
	r.MarkFailure("p", sim.Now())
	// A heartbeat inside the settle grace must NOT clear the mark (it
	// was in flight when the failure was injected)...
	sim.Advance(50 * ms)
	feed(10)
	if d := r.DetectionLatency(); d.Pending != 1 {
		t.Fatalf("in-grace heartbeat cleared the mark: %+v", d)
	}
	// ...but one beyond the grace proves the peer is alive.
	sim.Advance(200 * ms)
	feed(11)
	if d := r.DetectionLatency(); d.Pending != 0 {
		t.Fatalf("live peer still marked: %+v", d)
	}
	if r.UnmarkFailure("p") {
		t.Fatal("UnmarkFailure found a mark that should be gone")
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
