package registry

import (
	"sync"

	"repro/internal/clock"
	"repro/internal/detector"
)

// phase is a stream's position in the event-driven status machine. It is
// coarser than cluster.Status: busy/active are query-time refinements of
// phaseTrusted, while suspect/offline transitions are driven by the
// timer wheel and published on the bus.
type phase uint8

const (
	phaseTrusted phase = iota
	phaseSuspected
	phaseOffline
)

// StreamStats is the per-stream QoS tracker: raw ingest counts plus the
// mistake bookkeeping (wrong suspicions corrected by a later heartbeat,
// and the time spent wrongly suspecting — the T_M of Chen's metrics).
type StreamStats struct {
	Heartbeats  uint64
	Stale       uint64
	Mistakes    uint64
	MistakeTime clock.Duration
}

// stream is one monitored heartbeat source. All fields are guarded by
// the owning shard's mutex.
type stream struct {
	peer string
	det  detector.Detector

	lastSeq     uint64
	lastArrival clock.Time
	seen        bool
	// inc is the peer's current incarnation. Sequence numbers restart
	// within each incarnation; a bump replaces the detector, since the
	// new life's arrival process shares no history with the old one.
	inc uint64

	phase        phase
	suspectSince clock.Time
	infeasible   bool // EventCannotSatisfy already published this episode

	// deadline is the authoritative next-check instant (freshness point,
	// silence safety net, offline deadline, or eviction deadline). The
	// wheel may lag behind it; a fired entry re-arms at the current value.
	deadline clock.Time
	// gen invalidates stale wheel entries. Generations are drawn from a
	// single registry-wide counter, never per stream: if they restarted
	// at zero for each stream object, a register→deregister→register on
	// the same address could leave an old stream's pending wheel entry
	// aliasing the new stream's generation and firing a stale
	// transition against it. entryAt is the fire instant of the newest
	// entry scheduled for this stream (0 = none live).
	gen     uint64
	entryAt clock.Time

	stats StreamStats
}

// shard is one lock stripe of the registry: a mutex plus the streams
// whose FNV-hashed peer address maps here. Register, deregister, and
// ingest are O(1) under a single stripe lock.
type shard struct {
	mu      sync.Mutex
	streams map[string]*stream
}

func newShard() *shard {
	return &shard{streams: make(map[string]*stream)}
}

func (s *shard) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.streams)
}

// fnv32a hashes a peer address (FNV-1a, inlined to keep the ingest path
// allocation-free).
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
