package registry

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/clock"
	"repro/internal/detector"
	"repro/internal/heartbeat"
)

// fleetName composes the hierarchical stream name of one fleet member:
// 10 regions × 10 clusters × 20 hosts × 50 services = 100k streams.
func fleetName(region, cluster, host, svc int) string {
	return fmt.Sprintf("r%d/c%d/h%d/s%d", region, cluster, host, svc)
}

// TestFanoutLoad100kFleet is the ISSUE's acceptance scenario: a 100k-
// stream fleet crashes wholesale, and a watcher whose filter selects
// exactly one host's 50 services receives *precisely* its 50 suspect
// events — no flooding, no drops, no misses — while the firehose sees
// all 100k. Deterministic on clock.Sim.
func TestFanoutLoad100kFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-stream fan-out load test skipped in -short mode")
	}
	const (
		regions, clusters, hosts, svcs = 10, 10, 20, 50
		total                          = regions * clusters * hosts * svcs
	)
	sim := clock.NewSim(0)
	reg := New(sim, func(string) detector.Detector {
		return detector.NewFixed(500*clock.Millisecond, 1)
	}, Options{
		Shards:       64,
		WheelTick:    50 * clock.Millisecond,
		OfflineAfter: clock.Second,
		EvictAfter:   -1,
		MaxSilence:   -1,
	})
	reg.Start()
	defer reg.Stop()

	// The narrow watcher: one host's services (50 streams of 100k).
	narrow, err := reg.SubscribeTopic("r7/c3/h9/+", 128)
	if err != nil {
		t.Fatal(err)
	}
	// A subtree watcher: one cluster (1000 streams of 100k).
	subtree, err := reg.SubscribeTopic("r7/c3/#", 2048)
	if err != nil {
		t.Fatal(err)
	}
	// The firehose control: must still see every event.
	fire := reg.Subscribe(total + 16)

	// Every stream heartbeats twice, then the whole fleet goes silent.
	beat := func(seq uint64) {
		now := sim.Now()
		for r := 0; r < regions; r++ {
			for c := 0; c < clusters; c++ {
				for h := 0; h < hosts; h++ {
					for s := 0; s < svcs; s++ {
						reg.Observe(heartbeat.Arrival{
							From: fleetName(r, c, h, s), Seq: seq, Send: now, Recv: now,
						})
					}
				}
			}
		}
	}
	beat(0)
	sim.Advance(100 * clock.Millisecond)
	beat(1)
	if got := reg.Len(); got != total {
		t.Fatalf("fleet size = %d, want %d", got, total)
	}

	// Silence → every stream's fixed 500 ms timeout fires.
	sim.Advance(700 * clock.Millisecond)

	countByPeer := func(sub *Subscription) map[string]int {
		got := map[string]int{}
		for {
			select {
			case ev := <-sub.C():
				if ev.Type != EventSuspect {
					t.Fatalf("unexpected event %v", ev)
				}
				got[ev.Peer]++
			default:
				return got
			}
		}
	}

	nGot := countByPeer(narrow)
	if len(nGot) != svcs {
		t.Fatalf("narrow watcher saw %d peers, want exactly %d", len(nGot), svcs)
	}
	for s := 0; s < svcs; s++ {
		if nGot[fleetName(7, 3, 9, s)] != 1 {
			t.Fatalf("narrow watcher missed %s (got %v)", fleetName(7, 3, 9, s), nGot)
		}
	}
	if d := narrow.Dropped(); d != 0 {
		t.Fatalf("narrow watcher dropped %d events; its 128-buffer must hold 50", d)
	}

	sGot := countByPeer(subtree)
	if want := hosts * svcs; len(sGot) != want {
		t.Fatalf("subtree watcher saw %d peers, want %d", len(sGot), want)
	}
	for p := range sGot {
		if len(p) < 5 || p[:5] != "r7/c3" {
			t.Fatalf("subtree watcher got out-of-scope peer %s", p)
		}
	}

	if got := len(countByPeer(fire)); got != total {
		t.Fatalf("firehose saw %d peers, want %d", got, total)
	}

	c := reg.Counters()
	if c.Suspects != total {
		t.Fatalf("suspects = %d, want %d", c.Suspects, total)
	}
	wantMatches := uint64(svcs + hosts*svcs) // narrow + subtree routed deliveries
	if c.FanoutMatches != wantMatches {
		t.Fatalf("fanout matches = %d, want %d", c.FanoutMatches, wantMatches)
	}
	if c.TopicSubs != 2 || c.FanoutDrops != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestFanoutPublishVsSubscribeChurnRace storms Publish from several
// goroutines while topic subscriptions churn on overlapping filters —
// the bus-level companion of the trie stress test (run with -race).
func TestFanoutPublishVsSubscribeChurnRace(t *testing.T) {
	b := NewBus()
	stop := make(chan struct{})
	var pubWg, churnWg sync.WaitGroup

	names := make([]string, 64)
	for i := range names {
		names[i] = fmt.Sprintf("r%d/c%d/h%d/s%d", i%4, (i/4)%4, (i/16)%2, i%8)
	}

	for p := 0; p < 3; p++ {
		pubWg.Add(1)
		go func(p int) {
			defer pubWg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					b.Publish(Event{Type: EventSuspect, Peer: names[(i+p)%len(names)], At: clock.Time(i)})
				}
			}
		}(p)
	}

	for w := 0; w < 4; w++ {
		churnWg.Add(1)
		go func(w int) {
			defer churnWg.Done()
			for i := 0; i < 500; i++ {
				filter := fmt.Sprintf("r%d/+/h%d/#", i%4, i%2)
				sub, err := b.SubscribeTopic(filter, 4)
				if err != nil {
					t.Error(err)
					return
				}
				// Consume a little, then detach mid-storm.
				select {
				case <-sub.C():
				default:
				}
				sub.Close()
			}
		}(w)
	}

	churnWg.Wait()
	close(stop)
	pubWg.Wait()

	if fs := b.FanoutStats(); fs.Subscriptions != 0 || fs.Nodes != 0 {
		t.Fatalf("trie not drained after churn: %+v", fs)
	}
}
