package registry

import (
	"sync"
	"testing"

	"repro/internal/clock"
)

// TestBusDropOldestBackpressure: a subscriber that never drains keeps
// only the newest `buf` events, the drop counter accounts for the rest,
// and Publish never blocks.
func TestBusDropOldestBackpressure(t *testing.T) {
	b := NewBus()
	const buf, total = 4, 100
	sub := b.Subscribe(buf)

	for i := 0; i < total; i++ {
		b.Publish(Event{Type: EventSuspect, At: clock.Time(i)})
	}

	if got, want := sub.Dropped(), uint64(total-buf); got != want {
		t.Fatalf("sub.Dropped() = %d, want %d", got, want)
	}
	if _, drop := b.Stats(); drop != uint64(total-buf) {
		t.Fatalf("bus drop counter = %d, want %d", drop, total-buf)
	}
	// Drop-oldest: the queue holds exactly the newest buf events in order.
	for i := 0; i < buf; i++ {
		ev := <-sub.C()
		if want := clock.Time(total - buf + i); ev.At != want {
			t.Fatalf("queued event %d has At=%v, want %v (oldest must be dropped first)", i, ev.At, want)
		}
	}
	select {
	case ev := <-sub.C():
		t.Fatalf("unexpected extra event %v", ev)
	default:
	}
}

// TestBusSlowSubscriberDoesNotBlockOthers: one stalled subscriber must
// not prevent a healthy one from seeing every event.
func TestBusSlowSubscriberDoesNotBlockOthers(t *testing.T) {
	b := NewBus()
	stalled := b.Subscribe(1)
	healthy := b.Subscribe(64)

	for i := 0; i < 32; i++ {
		b.Publish(Event{At: clock.Time(i)})
	}
	if stalled.Dropped() != 31 {
		t.Fatalf("stalled.Dropped() = %d, want 31", stalled.Dropped())
	}
	for i := 0; i < 32; i++ {
		if ev := <-healthy.C(); ev.At != clock.Time(i) {
			t.Fatalf("healthy subscriber missed events: got At=%v want %v", ev.At, i)
		}
	}
	if healthy.Dropped() != 0 {
		t.Fatalf("healthy.Dropped() = %d, want 0", healthy.Dropped())
	}
}

// TestBusUnsubscribeDuringPublish closes subscriptions concurrently with
// a publisher storm; must not panic, deadlock, or race (run with -race).
func TestBusUnsubscribeDuringPublish(t *testing.T) {
	b := NewBus()
	var pubWg, subWg sync.WaitGroup

	stop := make(chan struct{})
	pubWg.Add(1)
	go func() {
		defer pubWg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				b.Publish(Event{At: clock.Time(i)})
			}
		}
	}()

	for i := 0; i < 200; i++ {
		sub := b.Subscribe(2)
		subWg.Add(1)
		go func() {
			defer subWg.Done()
			<-sub.C() // consume a little, then detach mid-storm
			sub.Close()
			sub.Close() // double-close must be safe
		}()
	}
	subWg.Wait()
	close(stop)
	pubWg.Wait()

	if n := b.Subscribers(); n != 0 {
		t.Fatalf("%d subscribers left after close", n)
	}
}

// TestBusPublishAfterCloseIsNoop: events offered to a closed
// subscription are discarded without panicking on the closed channel.
func TestBusPublishAfterCloseIsNoop(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(1)
	sub.Close()
	b.Publish(Event{Type: EventOffline})
	if _, ok := <-sub.C(); ok {
		t.Fatal("closed subscription delivered an event")
	}
}
