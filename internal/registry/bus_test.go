package registry

import (
	"sync"
	"testing"

	"repro/internal/clock"
)

// TestBusDropOldestBackpressure: a subscriber that never drains keeps
// only the newest `buf` events, the drop counter accounts for the rest,
// and Publish never blocks.
func TestBusDropOldestBackpressure(t *testing.T) {
	b := NewBus()
	const buf, total = 4, 100
	sub := b.Subscribe(buf)

	for i := 0; i < total; i++ {
		b.Publish(Event{Type: EventSuspect, At: clock.Time(i)})
	}

	if got, want := sub.Dropped(), uint64(total-buf); got != want {
		t.Fatalf("sub.Dropped() = %d, want %d", got, want)
	}
	if _, drop := b.Stats(); drop != uint64(total-buf) {
		t.Fatalf("bus drop counter = %d, want %d", drop, total-buf)
	}
	// Drop-oldest: the queue holds exactly the newest buf events in order.
	for i := 0; i < buf; i++ {
		ev := <-sub.C()
		if want := clock.Time(total - buf + i); ev.At != want {
			t.Fatalf("queued event %d has At=%v, want %v (oldest must be dropped first)", i, ev.At, want)
		}
	}
	select {
	case ev := <-sub.C():
		t.Fatalf("unexpected extra event %v", ev)
	default:
	}
}

// TestBusSlowSubscriberDoesNotBlockOthers: one stalled subscriber must
// not prevent a healthy one from seeing every event.
func TestBusSlowSubscriberDoesNotBlockOthers(t *testing.T) {
	b := NewBus()
	stalled := b.Subscribe(1)
	healthy := b.Subscribe(64)

	for i := 0; i < 32; i++ {
		b.Publish(Event{At: clock.Time(i)})
	}
	if stalled.Dropped() != 31 {
		t.Fatalf("stalled.Dropped() = %d, want 31", stalled.Dropped())
	}
	for i := 0; i < 32; i++ {
		if ev := <-healthy.C(); ev.At != clock.Time(i) {
			t.Fatalf("healthy subscriber missed events: got At=%v want %v", ev.At, i)
		}
	}
	if healthy.Dropped() != 0 {
		t.Fatalf("healthy.Dropped() = %d, want 0", healthy.Dropped())
	}
}

// TestBusUnsubscribeDuringPublish closes subscriptions concurrently with
// a publisher storm; must not panic, deadlock, or race (run with -race).
func TestBusUnsubscribeDuringPublish(t *testing.T) {
	b := NewBus()
	var pubWg, subWg sync.WaitGroup

	stop := make(chan struct{})
	pubWg.Add(1)
	go func() {
		defer pubWg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				b.Publish(Event{At: clock.Time(i)})
			}
		}
	}()

	for i := 0; i < 200; i++ {
		sub := b.Subscribe(2)
		subWg.Add(1)
		go func() {
			defer subWg.Done()
			<-sub.C() // consume a little, then detach mid-storm
			sub.Close()
			sub.Close() // double-close must be safe
		}()
	}
	subWg.Wait()
	close(stop)
	pubWg.Wait()

	if n := b.Subscribers(); n != 0 {
		t.Fatalf("%d subscribers left after close", n)
	}
}

// TestBusPublishAfterCloseIsNoop: events offered to a closed
// subscription are discarded without panicking on the closed channel.
func TestBusPublishAfterCloseIsNoop(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(1)
	sub.Close()
	b.Publish(Event{Type: EventOffline})
	if _, ok := <-sub.C(); ok {
		t.Fatal("closed subscription delivered an event")
	}
}

// TestBusSubscribeTopicRouting: topic subscribers receive exactly the
// events their filter matches; the firehose still sees everything.
func TestBusSubscribeTopicRouting(t *testing.T) {
	b := NewBus()
	fire := b.Subscribe(64)
	web, err := b.SubscribeTopic("eu/zurich/web-1/+", 64)
	if err != nil {
		t.Fatal(err)
	}
	region, err := b.SubscribeTopic("eu/#", 64)
	if err != nil {
		t.Fatal(err)
	}
	other, err := b.SubscribeTopic("us/#", 64)
	if err != nil {
		t.Fatal(err)
	}

	names := []string{
		"eu/zurich/web-1/nginx",
		"eu/zurich/web-2/nginx",
		"eu/paris/web-1/redis",
		"us/east/web-1/nginx",
	}
	for i, n := range names {
		b.Publish(Event{Type: EventSuspect, Peer: n, At: clock.Time(i)})
	}

	drain := func(s *Subscription) []string {
		var out []string
		for {
			select {
			case ev := <-s.C():
				out = append(out, ev.Peer)
			default:
				return out
			}
		}
	}
	if got := drain(fire); len(got) != 4 {
		t.Fatalf("firehose got %v, want all 4", got)
	}
	if got := drain(web); len(got) != 1 || got[0] != names[0] {
		t.Fatalf("web-1 filter got %v, want [%s]", got, names[0])
	}
	if got := drain(region); len(got) != 3 {
		t.Fatalf("eu/# got %v, want 3 events", got)
	}
	if got := drain(other); len(got) != 1 || got[0] != names[3] {
		t.Fatalf("us/# got %v, want [%s]", got, names[3])
	}

	if n := b.Subscribers(); n != 4 {
		t.Fatalf("Subscribers() = %d, want 4", n)
	}
	if fs := b.FanoutStats(); fs.Subscriptions != 3 || fs.Matches != 5 {
		t.Fatalf("FanoutStats() = %+v, want 3 subs / 5 matches", fs)
	}

	// Closing a topic subscription detaches it from the trie.
	web.Close()
	b.Publish(Event{Type: EventTrust, Peer: names[0], At: 99})
	if fs := b.FanoutStats(); fs.Subscriptions != 2 {
		t.Fatalf("after Close: %d topic subs, want 2", fs.Subscriptions)
	}
	if got := drain(region); len(got) != 1 {
		t.Fatalf("region missed the post-close event: %v", got)
	}

	if _, err := b.SubscribeTopic("a//b", 1); err == nil {
		t.Fatal("SubscribeTopic accepted an invalid filter")
	}
}

// TestBusPerSubscriptionStats: each subscription exposes its own drop
// and delivery counts, so the one slow watcher is identifiable.
func TestBusPerSubscriptionStats(t *testing.T) {
	b := NewBus()
	slow := b.Subscribe(2)
	fast := b.Subscribe(64)
	topic, err := b.SubscribeTopic("a/#", 2)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 10; i++ {
		b.Publish(Event{Type: EventSuspect, Peer: "a/x", At: clock.Time(i)})
	}

	stats := b.SubscriptionStats()
	if len(stats) != 3 {
		t.Fatalf("SubscriptionStats() has %d rows, want 3", len(stats))
	}
	byID := map[uint64]SubscriptionStats{}
	for _, s := range stats {
		byID[s.ID] = s
	}
	if s := byID[slow.ID()]; s.Dropped != 8 || s.Delivered != 10 || s.Filter != "" {
		t.Fatalf("slow stats = %+v, want 8 dropped / 10 delivered / firehose", s)
	}
	if s := byID[fast.ID()]; s.Dropped != 0 || s.Delivered != 10 || s.Queued != 10 {
		t.Fatalf("fast stats = %+v", s)
	}
	if s := byID[topic.ID()]; s.Dropped != 8 || s.Filter != "a/#" || s.Buffer != 2 {
		t.Fatalf("topic stats = %+v", s)
	}
	if b.TopicDropped() != 8 {
		t.Fatalf("TopicDropped() = %d, want 8 (only the filtered sub's drops)", b.TopicDropped())
	}
	_, total := b.Stats()
	if total != 16 {
		t.Fatalf("aggregate dropped = %d, want 16", total)
	}

	// Closed subscriptions leave the stats table.
	slow.Close()
	if got := len(b.SubscriptionStats()); got != 2 {
		t.Fatalf("stats rows after close = %d, want 2", got)
	}
}
