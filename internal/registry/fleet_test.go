package registry

import (
	"fmt"
	"testing"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/detector"
	"repro/internal/heartbeat"
	"repro/internal/netsim"
)

// simSender is a minimal deterministic heartbeat source: a chain of
// clock.Sim callbacks sending one datagram per interval to the monitor
// node, with an optional permanent crash and an optional pause window
// (heartbeats withheld but the process alive — a wrongful-suspicion
// generator).
type simSender struct {
	node     *netsim.Node
	clk      *clock.Sim
	to       string
	interval clock.Duration
	seq      uint64

	crashAt              clock.Time // 0 = never
	pauseFrom, pauseTo   clock.Time // zero window = never
}

func (s *simSender) beat(now clock.Time) {
	if s.crashAt > 0 && !now.Before(s.crashAt) {
		return // crashed: the chain ends, like a dead process
	}
	paused := s.pauseTo > s.pauseFrom && !now.Before(s.pauseFrom) && now.Before(s.pauseTo)
	if !paused {
		msg := heartbeat.Message{Kind: heartbeat.KindHeartbeat, Seq: s.seq, Time: now}
		s.seq++
		_ = s.node.Send(s.to, msg.Marshal())
	}
	s.clk.AfterFunc(s.interval, s.beat)
}

// TestFleet10kStreamsDeterministic drives ten thousand heartbeat
// streams through a single Registry over netsim links on clock.Sim —
// the ISSUE's fleet-scale acceptance scenario. 100 senders crash, 100
// pause long enough to be wrongly suspected, the rest stay healthy. The
// test asserts exactly the right transition events come out of the bus,
// in order, with plausible latencies, and that crashed streams are
// evicted so the registry stays bounded.
func TestFleet10kStreamsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-stream fleet simulation skipped in -short mode")
	}
	const (
		n        = 10_000
		crashN   = 100
		pauseN   = 100
		interval = clock.Second
		step     = 50 * clock.Millisecond
		runFor   = 20 * clock.Second
		crashAt  = clock.Time(8 * clock.Second)
		pauseOn  = clock.Time(10 * clock.Second)
		pauseOff = clock.Time(13 * clock.Second)
	)
	sim := clock.NewSim(0)
	net := netsim.New(sim, netsim.LinkParams{DelayBase: 5 * clock.Millisecond}, 1)
	mon := net.AddNode("monitor", 1<<16)

	reg := New(sim, func(string) detector.Detector {
		// A fixed timeout makes every transition instant analytically
		// predictable (windowed estimators would be skewed by the pause
		// gap and oscillate while their window flushes). The 500 ms
		// margin over the interval dwarfs the 50 ms pump step, so
		// healthy streams can never be wrongly suspected by drain lag.
		return detector.NewFixed(interval+500*clock.Millisecond, 1)
	}, Options{
		Shards:       64,
		WheelTick:    10 * clock.Millisecond,
		OfflineAfter: 3 * clock.Second,
		EvictAfter:   2 * clock.Second,
	})
	reg.Start()
	defer reg.Stop()
	sub := reg.Subscribe(1 << 14)

	crashed := make(map[string]bool, crashN)
	pausing := make(map[string]bool, pauseN)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("srv-%04d", i)
		s := &simSender{
			node:     net.AddNode(name, 8),
			clk:      sim,
			to:       "monitor",
			interval: interval,
		}
		switch {
		case i < crashN:
			s.crashAt = crashAt
			crashed[name] = true
		case i < crashN+pauseN:
			s.pauseFrom, s.pauseTo = pauseOn, pauseOff
			pausing[name] = true
		}
		// Phase-offset the fleet so load spreads across every tick.
		phase := clock.Duration(int64(interval) * int64(i) / n)
		sim.AfterFunc(phase, s.beat)
	}

	pump := func() {
		for {
			in, ok := mon.TryRecv()
			if !ok {
				return
			}
			msg, err := heartbeat.Unmarshal(in.Payload)
			if err != nil || msg.Kind != heartbeat.KindHeartbeat {
				continue
			}
			reg.Observe(heartbeat.Arrival{From: in.From, Seq: msg.Seq, Send: msg.Time, Recv: in.At})
		}
	}
	for elapsed := clock.Duration(0); elapsed < runFor; elapsed += step {
		sim.Advance(step)
		pump()
	}

	// Collect every event per peer, asserting global order per peer.
	type history struct {
		types []EventType
		at    []clock.Time
	}
	events := make(map[string]*history)
	for {
		var ev Event
		select {
		case ev = <-sub.C():
		default:
			ev = Event{}
		}
		if ev.Type == 0 {
			break
		}
		h := events[ev.Peer]
		if h == nil {
			h = &history{}
			events[ev.Peer] = h
		}
		h.types = append(h.types, ev.Type)
		h.at = append(h.at, ev.At)
	}
	if d := sub.Dropped(); d != 0 {
		t.Fatalf("subscriber dropped %d events — buffer sized wrong for the scenario", d)
	}

	wantCrash := []EventType{EventSuspect, EventOffline, EventEvicted}
	wantPause := []EventType{EventSuspect, EventTrust}
	for peer, h := range events {
		switch {
		case crashed[peer]:
			if !typesEqual(h.types, wantCrash) {
				t.Fatalf("crashed %s: events %v, want %v", peer, h.types, wantCrash)
			}
			// Suspicion must begin after the crash, within interval +
			// margin + delivery/step/tick slack.
			lat := h.at[0].Sub(crashAt)
			if lat <= 0 || lat > interval+700*clock.Millisecond {
				t.Fatalf("crashed %s: suspect latency %v out of range", peer, lat)
			}
		case pausing[peer]:
			if !typesEqual(h.types, wantPause) {
				t.Fatalf("paused %s: events %v, want %v", peer, h.types, wantPause)
			}
			if h.at[1].Before(clock.Time(pauseOff)) {
				t.Fatalf("paused %s: trusted again at %v, before the pause ended", peer, h.at[1])
			}
		default:
			t.Fatalf("healthy %s emitted events %v — wrongful transitions", peer, h.types)
		}
	}
	for peer := range crashed {
		if events[peer] == nil {
			t.Fatalf("crashed %s produced no events", peer)
		}
	}
	for peer := range pausing {
		if events[peer] == nil {
			t.Fatalf("paused %s produced no events", peer)
		}
	}

	// Eviction keeps the registry bounded: only live streams remain.
	if got, want := reg.Len(), n-crashN; got != want {
		t.Fatalf("registry holds %d streams, want %d after eviction", got, want)
	}
	now := sim.Now()
	for _, peer := range []string{"srv-0150", "srv-5000", "srv-9999"} {
		st, ok := reg.StatusOf(peer, now)
		if !ok || st != cluster.StatusActive {
			t.Fatalf("%s status = %v (ok=%v), want active", peer, st, ok)
		}
	}
	// Every paused stream recorded exactly one QoS mistake.
	for peer := range pausing {
		st, ok := reg.Stats(peer)
		if !ok || st.Mistakes != 1 {
			t.Fatalf("%s stats = %+v (ok=%v), want exactly one mistake", peer, st, ok)
		}
	}

	c := reg.Counters()
	if c.Suspects != crashN+pauseN || c.Trusts != pauseN ||
		c.Offlines != crashN || c.Evictions != crashN {
		t.Fatalf("counters = %+v", c)
	}
	if c.Heartbeats == 0 || c.Stale != 0 {
		t.Fatalf("ingest counters = %+v", c)
	}
	// FNV striping across 64 shards must have no pathological stripe.
	for i, occ := range reg.ShardOccupancy() {
		if occ == 0 {
			t.Fatalf("shard %d empty at 10k streams", i)
		}
	}
}

func typesEqual(a, b []EventType) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
