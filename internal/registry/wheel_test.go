package registry

import (
	"testing"

	"repro/internal/clock"
)

// TestWheelFiresAcrossLevels schedules entries whose delays land on
// every level of the hierarchy and checks each fires at its deadline
// rounded up to the tick, never early.
func TestWheelFiresAcrossLevels(t *testing.T) {
	const tick = clock.Millisecond
	w := newTimerWheel(tick, 0)

	delays := []clock.Duration{
		500 * clock.Microsecond, // sub-tick: rounds up to tick 1
		3 * clock.Millisecond,
		63 * clock.Millisecond,  // last level-0 slot
		64 * clock.Millisecond,  // first level-1 entry
		100 * clock.Millisecond, // level 1
		4095 * clock.Millisecond,
		4096 * clock.Millisecond, // level 2
		300 * clock.Second,       // level 3
	}
	fired := make(map[uint64]clock.Time)
	for i, d := range delays {
		w.schedule(clock.Time(d), "p", uint64(i))
	}
	if got := w.len(); got != len(delays) {
		t.Fatalf("len = %d, want %d", got, len(delays))
	}

	end := clock.Time(301 * clock.Second)
	step := 7 * clock.Millisecond // deliberately unaligned with the tick
	for now := clock.Time(0); now <= end; now = now.Add(step) {
		for _, x := range w.advance(now, nil) {
			if _, dup := fired[x.gen]; dup {
				t.Fatalf("entry %d fired twice", x.gen)
			}
			fired[x.gen] = now
		}
	}

	for i, d := range delays {
		at, ok := fired[uint64(i)]
		if !ok {
			t.Fatalf("entry %d (delay %v) never fired", i, d)
		}
		if at.Before(clock.Time(d)) {
			t.Errorf("entry %d fired at %v, before its deadline %v", i, at, d)
		}
		// May fire up to one tick late (rounding) plus one step late
		// (advance granularity of this test loop).
		if slack := at.Sub(clock.Time(d)); slack > tick+step {
			t.Errorf("entry %d fired %v after its deadline", i, slack)
		}
	}
	if got := w.len(); got != 0 {
		t.Fatalf("len after drain = %d, want 0", got)
	}
}

// TestWheelDueEntriesLandOnNextTick verifies scheduling at or before the
// current instant still fires (on the next tick) rather than being lost.
func TestWheelDueEntriesLandOnNextTick(t *testing.T) {
	const tick = 10 * clock.Millisecond
	w := newTimerWheel(tick, 0)
	w.advance(clock.Time(clock.Second), nil) // cur = 100 ticks

	w.schedule(clock.Time(0), "past", 1)
	w.schedule(clock.Time(clock.Second), "now", 2)

	exp := w.advance(clock.Time(clock.Second).Add(tick), nil)
	if len(exp) != 2 {
		t.Fatalf("expired %d entries, want 2", len(exp))
	}
}

// TestWheelFarFutureClamped verifies deadlines beyond the wheel span do
// not wrap into the near future.
func TestWheelFarFutureClamped(t *testing.T) {
	const tick = clock.Millisecond
	w := newTimerWheel(tick, 0)
	const span = int64(1) << (wheelLevels * wheelBits)
	far := clock.Time(clock.Duration(2*span) * tick)
	w.schedule(far, "far", 1)
	// Advancing well past "soon" must not fire the entry.
	if exp := w.advance(clock.Time(clock.Second), nil); len(exp) != 0 {
		t.Fatalf("far-future entry fired after 1s: %v", exp)
	}
}
