package registry

import (
	"sync"

	"repro/internal/clock"
)

// The registry replaces per-peer polling with a hierarchical timing
// wheel (Varghese & Lauck): each stream's next check instant — its
// freshness point τ_{k+1} (Eq. 11), its offline deadline, or its
// eviction deadline — is one entry in the wheel, and a single driver
// (goroutine under the real clock, timer callback chain under
// clock.Sim) advances the wheel and fires due entries for the whole
// fleet. Scheduling and firing are O(1) amortized regardless of fleet
// size.
//
// Entries are lazily invalidated rather than removed: every stream
// carries a generation counter, each entry captures the generation it
// was scheduled under, and a fired entry whose generation no longer
// matches the stream's is ignored. A heartbeat that merely pushes a
// stream's deadline further out does NOT touch the wheel at all — the
// old entry fires, notices the authoritative deadline is in the future,
// and re-arms there. This makes the per-heartbeat ingest cost
// wheel-free, which is what keeps it sub-microsecond at 10k+ streams.
// Stale entries occupy a slot until their original fire tick arrives;
// their number is bounded by the transition rate, not the heartbeat
// rate.

const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64 slots per level
	wheelMask   = wheelSlots - 1
	wheelLevels = 5 // span = tick × 64^5 ≈ 124 days at 10 ms/tick
)

// expiry identifies a fired entry; the registry resolves it against the
// stream's current generation.
type expiry struct {
	peer string
	gen  uint64
}

// wheelSlot stores its entries struct-of-arrays: three parallel slices
// instead of one []struct. advance scans ticks — a dense []int64 — to
// decide expiry, touching peers/gens only for entries that actually
// fire or cascade; at 1M streams that keeps the per-tick scan inside a
// few cache lines instead of striding over 40-byte entries whose
// string headers the comparison never needs.
type wheelSlot struct {
	ticks []int64 // absolute fire tick
	gens  []uint64
	peers []string
}

func (s *wheelSlot) push(tick int64, gen uint64, peer string) {
	s.ticks = append(s.ticks, tick)
	s.gens = append(s.gens, gen)
	s.peers = append(s.peers, peer)
}

// reset empties the slot, keeping capacity but clearing the string
// slice so fired peers don't pin their backing memory.
func (s *wheelSlot) reset() {
	clear(s.peers)
	s.ticks = s.ticks[:0]
	s.gens = s.gens[:0]
	s.peers = s.peers[:0]
}

type timerWheel struct {
	mu    sync.Mutex
	tick  clock.Duration
	start clock.Time
	cur   int64 // highest tick already processed
	count int
	slots [wheelLevels][wheelSlots]wheelSlot
}

func newTimerWheel(tick clock.Duration, start clock.Time) *timerWheel {
	if tick <= 0 {
		tick = 10 * clock.Millisecond
	}
	return &timerWheel{tick: tick, start: start}
}

// ticksAt converts an absolute instant to a fire tick, rounding up so an
// entry never fires before its deadline.
func (w *timerWheel) ticksAt(t clock.Time) int64 {
	d := int64(t.Sub(w.start))
	if d <= 0 {
		return 0
	}
	return (d + int64(w.tick) - 1) / int64(w.tick)
}

// schedule inserts a fire-once entry for (peer, gen) at instant `at`.
// Instants at or before the current tick land on the next tick.
func (w *timerWheel) schedule(at clock.Time, peer string, gen uint64) {
	w.mu.Lock()
	ticks := w.ticksAt(at)
	if ticks <= w.cur {
		ticks = w.cur + 1
	}
	w.place(ticks, gen, peer)
	w.count++
	w.mu.Unlock()
}

// place files an entry at the innermost level whose span covers its
// delay. Must hold mu.
func (w *timerWheel) place(ticks int64, gen uint64, peer string) {
	const maxSpan = int64(1) << (wheelLevels * wheelBits)
	if ticks-w.cur >= maxSpan {
		ticks = w.cur + maxSpan - 1 // clamp: fires early, then re-arms
	}
	delta := ticks - w.cur
	for l := 0; l < wheelLevels; l++ {
		if delta < int64(1)<<uint((l+1)*wheelBits) || l == wheelLevels-1 {
			idx := (ticks >> uint(l*wheelBits)) & wheelMask
			w.slots[l][idx].push(ticks, gen, peer)
			return
		}
	}
}

// advance moves the wheel to instant now, appending every due entry to
// expired (which may be nil) and returning it. Entries cascade from
// outer levels toward level 0 as their slots come into range.
func (w *timerWheel) advance(now clock.Time, expired []expiry) []expiry {
	w.mu.Lock()
	target := int64(now.Sub(w.start)) / int64(w.tick)
	for w.cur < target {
		w.cur++
		slot := &w.slots[0][w.cur&wheelMask]
		for i := range slot.ticks {
			expired = append(expired, expiry{peer: slot.peers[i], gen: slot.gens[i]})
			w.count--
		}
		slot.reset()
		// Each time a level's index wraps to 0 the next outer level's
		// current slot comes into range: redistribute it inward.
		for l := 1; l < wheelLevels; l++ {
			if (w.cur>>uint((l-1)*wheelBits))&wheelMask != 0 {
				break
			}
			idx := (w.cur >> uint(l*wheelBits)) & wheelMask
			src := &w.slots[l][idx]
			// place may append into this very slot on the innermost
			// level; detach the arrays before redistributing.
			ticks, gens, peers := src.ticks, src.gens, src.peers
			src.ticks, src.gens, src.peers = nil, nil, nil
			for i := range ticks {
				if ticks[i] <= w.cur {
					expired = append(expired, expiry{peer: peers[i], gen: gens[i]})
					w.count--
				} else {
					w.place(ticks[i], gens[i], peers[i])
				}
			}
		}
	}
	w.mu.Unlock()
	return expired
}

// len returns the number of live (scheduled, not yet fired) entries,
// including lazily-invalidated ones still awaiting their tick.
func (w *timerWheel) len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}
