package registry

import (
	"repro/internal/clock"
	"repro/internal/stats"
)

// Ground-truth detection-latency tap. A harness that injects a failure
// (kills a sender, partitions a link) knows the exact instant heartbeats
// stopped; the registry is the first component that can pair that instant
// with its own suspect transition. MarkFailure records the injection;
// the transition path then measures injection→suspect latency without
// the harness having to race the event bus.
//
// The hot path pays one atomic load per arrival while no marks are
// outstanding, so production monitors that never call MarkFailure are
// unaffected.

// markSettleGrace is how much older than an accepted arrival a mark must
// be before the arrival clears it. Heartbeats sent just before the
// injected failure can still be in flight when the mark lands; without
// the grace they would erase the mark and the detection would go
// unmeasured. 100 ms is orders of magnitude above loopback delivery and
// well under any realistic heartbeat interval.
const markSettleGrace = 100 * clock.Millisecond

// detLatRange bounds the stats.Histogram backing the latency quantiles:
// 0–120 s at 50 ms resolution. Latencies beyond the range still count
// (overflow bin) but stop resolving.
const (
	detLatMax  = 120.0
	detLatBins = 2400
)

// DetectionLatencyBuckets is the /metrics histogram layout for
// sfd_detection_latency_seconds: second-scale, because detection latency
// is dominated by the heartbeat interval plus the tuned safety margin,
// not by network RTT.
var DetectionLatencyBuckets = []float64{
	0.05, 0.1, 0.25, 0.5, 0.75, 1, 1.5, 2, 3, 4, 5, 7.5, 10, 15, 20, 30, 45, 60,
}

// MarkFailure records that peer's heartbeats were stopped at instant at
// (harness ground truth). The next suspect transition for the peer
// observes the injection→suspect latency and consumes the mark; an
// accepted heartbeat arriving more than markSettleGrace after at clears
// it instead (the failure did not stick, or the process restarted).
// Re-marking an already-marked peer moves its injection instant.
func (r *Registry) MarkFailure(peer string, at clock.Time) {
	r.marksMu.Lock()
	if r.marks == nil {
		r.marks = make(map[string]clock.Time)
	}
	if _, ok := r.marks[peer]; !ok {
		r.markCount.Add(1)
	}
	r.marks[peer] = at
	r.marksMu.Unlock()
}

// UnmarkFailure withdraws a pending mark (e.g. the harness restarted the
// process before detection), reporting whether one was outstanding.
func (r *Registry) UnmarkFailure(peer string) bool {
	r.marksMu.Lock()
	_, ok := r.marks[peer]
	if ok {
		delete(r.marks, peer)
		r.markCount.Add(-1)
	}
	r.marksMu.Unlock()
	return ok
}

// clearMark drops peer's mark if the accepted arrival at recv postdates
// it by more than the settle grace. Called from Observe only while marks
// are outstanding.
func (r *Registry) clearMark(peer string, recv clock.Time) {
	r.marksMu.Lock()
	if at, ok := r.marks[peer]; ok && recv.Sub(at) > markSettleGrace {
		delete(r.marks, peer)
		r.markCount.Add(-1)
	}
	r.marksMu.Unlock()
}

// noteDetection consumes peer's mark at a suspect transition, feeding
// the injection→suspect latency into the quantile histogram and the
// /metrics histogram. Called from expire only while marks are
// outstanding.
func (r *Registry) noteDetection(peer string, now clock.Time) {
	r.marksMu.Lock()
	at, ok := r.marks[peer]
	var lat clock.Duration
	if ok {
		delete(r.marks, peer)
		r.markCount.Add(-1)
		lat = now.Sub(at)
		if lat < 0 {
			lat = 0
		}
		if r.detLat == nil {
			r.detLat = stats.NewHistogram(0, detLatMax, detLatBins)
		}
		r.detLat.Add(lat.Seconds())
	}
	r.marksMu.Unlock()
	if ok {
		if h := r.detLatHist.Load(); h != nil {
			h.Observe(lat.Seconds())
		}
	}
}

// DetectionLatency summarizes the ground-truth latency samples observed
// so far (all zero before the first MarkFailure detection).
type DetectionLatency struct {
	Samples int64   `json:"samples"`
	Pending int     `json:"pending"` // marks awaiting detection
	Mean    float64 `json:"mean_s"`
	StdDev  float64 `json:"stddev_s"`
	P50     float64 `json:"p50_s"`
	P95     float64 `json:"p95_s"`
	P99     float64 `json:"p99_s"`
}

// DetectionLatency returns the current ground-truth summary.
func (r *Registry) DetectionLatency() DetectionLatency {
	r.marksMu.Lock()
	defer r.marksMu.Unlock()
	out := DetectionLatency{Pending: len(r.marks)}
	h := r.detLat
	if h == nil || h.Total() == 0 {
		return out
	}
	out.Samples = h.Total()
	out.Mean = h.Mean()
	out.StdDev = h.StdDev()
	out.P50 = h.Quantile(0.50)
	out.P95 = h.Quantile(0.95)
	out.P99 = h.Quantile(0.99)
	return out
}
