package registry

import (
	"strconv"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/persist"
)

// tuned is implemented by self-tuning detectors (core.SFD) whose QoS
// feedback loop the metrics layer exposes per stream: the current safety
// margin, the tuning state, and the last slot's measured TD/MR/QAP — the
// live form of the paper's Fig. 3 evaluation.
type tuned interface {
	Margin() clock.Duration
	State() core.State
	LastAdjustment() (core.Adjustment, bool)
}

// Metrics returns the registry's instrument set, building it on first
// call. The set holds CounterFunc/GaugeFunc views over the atomics the
// registry already maintains — instrumentation adds nothing to the ingest
// path — plus scrape-time samplers for per-shard occupancy and per-stream
// detector QoS. Embedders (sfdmon) register receiver and gossip
// instruments into the same set so one /metrics page covers the pipeline.
func (r *Registry) Metrics() *metrics.Set {
	r.metricsOnce.Do(func() {
		set := metrics.NewSet()
		set.CounterFunc("sfd_registry_heartbeats_total",
			"Heartbeat arrivals accepted by the registry.", r.heartbeats.Load)
		set.CounterFunc("sfd_registry_stale_total",
			"Arrivals dropped as duplicate, reordered, or from a dead incarnation.", r.stale.Load)
		set.CounterFunc("sfd_registry_registered_total",
			"Streams ever registered (explicitly or by first heartbeat).", r.registered.Load)
		set.CounterFunc("sfd_registry_suspects_total",
			"Trust to suspect transitions fired by the timer wheel.", r.suspects.Load)
		set.CounterFunc("sfd_registry_trusts_total",
			"Suspect to trust recoveries (a heartbeat disproved the suspicion).", r.trusts.Load)
		set.CounterFunc("sfd_registry_offlines_total",
			"Suspect to offline transitions.", r.offlines.Load)
		set.CounterFunc("sfd_registry_evictions_total",
			"Offline streams removed from the table.", r.evictions.Load)
		set.CounterFunc("sfd_registry_cannot_satisfy_total",
			"Self-tuner infeasibility reports (Algorithm 1 line 14).", r.cannotSatisfy.Load)
		set.CounterFunc("sfd_registry_wheel_rearms_total",
			"Timer-wheel entries scheduled (first arms plus deadline moves).", r.rearms.Load)
		set.CounterFunc("sfd_registry_bus_published_total",
			"Events published on the failure-event bus.",
			func() uint64 { pub, _ := r.bus.Stats(); return pub })
		set.CounterFunc("sfd_registry_bus_dropped_total",
			"Events dropped across subscribers by drop-oldest backpressure.",
			func() uint64 { _, drop := r.bus.Stats(); return drop })
		set.GaugeFunc("sfd_registry_streams",
			"Streams currently registered.",
			func() float64 { return float64(r.Len()) })
		set.GaugeFunc("sfd_registry_wheel_entries",
			"Live timer-wheel entries, including lazily-invalidated ones.",
			func() float64 { return float64(r.wheel.len()) })
		set.GaugeFunc("sfd_registry_bus_subscribers",
			"Current failure-event bus subscribers.",
			func() float64 { return float64(r.bus.Subscribers()) })
		set.GaugeFunc("sfd_fanout_trie_nodes",
			"Live nodes in the topic-subscription trie.",
			func() float64 { return float64(r.bus.FanoutStats().Nodes) })
		set.GaugeFunc("sfd_fanout_subscriptions",
			"Live topic (filtered) subscriptions.",
			func() float64 { return float64(r.bus.FanoutStats().Subscriptions) })
		set.CounterFunc("sfd_fanout_matches_total",
			"Topic-routed deliveries (events times matching subscriptions).",
			func() uint64 { return r.bus.FanoutStats().Matches })
		set.CounterFunc("sfd_fanout_drops_total",
			"Events lost by topic subscriptions to drop-oldest backpressure.",
			r.bus.TopicDropped)
		set.GaugeFunc("sfd_watch_connections",
			"Live /watch streaming connections.",
			func() float64 { return float64(r.watchConns.Load()) })
		set.CounterFunc("sfd_watch_rejected_total",
			"/watch requests refused because WatchMaxConns was saturated.",
			r.watchRejected.Load)
		r.detLatHist.Store(set.Histogram("sfd_detection_latency_seconds",
			"Ground-truth injection-to-suspect latency for peers marked via MarkFailure.",
			DetectionLatencyBuckets))
		set.GaugeFunc("sfd_detection_marks_pending",
			"Injected failures marked but not yet detected.",
			func() float64 { return float64(r.markCount.Load()) })
		set.Sampled(r.sampleDetectionLatency)
		set.Sampled(r.sampleShards)
		if r.opts.MetricsMaxStreams > 0 {
			set.Sampled(r.sampleStreams)
		}
		if r.opts.StateDir != "" {
			r.instrumentPersist(set)
		}
		r.metricsSet = set
	})
	return r.metricsSet
}

// instrumentPersist registers the sfd_persist_* series. The closures
// read through the checkpointer's atomic pointer so registration order
// relative to Start does not matter (zeros before the checkpointer
// exists).
func (r *Registry) instrumentPersist(set *metrics.Set) {
	ck := func(read func(*persist.Checkpointer) uint64) func() uint64 {
		return func() uint64 {
			if c := r.ckpt.Load(); c != nil {
				return read(c)
			}
			return 0
		}
	}
	set.CounterFunc("sfd_persist_snapshots_total",
		"Full state snapshots written.", ck((*persist.Checkpointer).Snapshots))
	set.CounterFunc("sfd_persist_deltas_total",
		"Incremental delta records appended to the journal.", ck((*persist.Checkpointer).Deltas))
	set.CounterFunc("sfd_persist_rotations_total",
		"Journal rotations (full snapshot supersedes the delta journal).", ck((*persist.Checkpointer).Rotations))
	set.CounterFunc("sfd_persist_errors_total",
		"Snapshot or journal write failures.", ck((*persist.Checkpointer).Errors))
	set.GaugeFunc("sfd_persist_snapshot_age_seconds",
		"Seconds since the last full snapshot was written (-1 before the first).",
		func() float64 {
			if c := r.ckpt.Load(); c != nil {
				return c.SnapshotAgeSeconds()
			}
			return -1
		})
	set.GaugeFunc("sfd_persist_snapshot_bytes",
		"Encoded size of the last full snapshot.", func() float64 {
			if c := r.ckpt.Load(); c != nil {
				return float64(c.SnapshotBytes())
			}
			return 0
		})
	set.GaugeFunc("sfd_persist_restored_streams",
		"Streams recovered by the warm restart (0 on cold start).",
		func() float64 { n, _ := r.RestoredStreams(); return float64(n) })
}

// sampleDetectionLatency emits scrape-time quantile gauges from the
// stats.Histogram behind the ground-truth tap — the tail summary a
// dashboard wants without reconstructing it from cumulative buckets.
func (r *Registry) sampleDetectionLatency(em *metrics.Emitter) {
	d := r.DetectionLatency()
	if d.Samples == 0 {
		return
	}
	em.Gauge("sfd_detection_latency_p50_seconds", d.P50)
	em.Gauge("sfd_detection_latency_p95_seconds", d.P95)
	em.Gauge("sfd_detection_latency_p99_seconds", d.P99)
	em.Gauge("sfd_detection_latency_mean_seconds", d.Mean)
}

// sampleShards emits one occupancy gauge per lock stripe — the load
// balance FNV hashing should keep near-uniform.
func (r *Registry) sampleShards(em *metrics.Emitter) {
	for i, sh := range r.shards {
		em.Gauge(metrics.Name("sfd_registry_shard_streams", "shard", strconv.Itoa(i)),
			float64(sh.len()))
	}
}

// sampleStreams emits per-stream detector gauges for up to
// Options.MetricsMaxStreams streams: the accrual suspicion level and the
// lifecycle phase for every detector, plus margin / tuning state / last
// measured slot QoS for self-tuning ones. Streams beyond the cap are
// counted in sfd_registry_metrics_streams_skipped rather than silently
// dropped.
func (r *Registry) sampleStreams(em *metrics.Emitter) {
	now := r.clk.Now()
	budget := r.opts.MetricsMaxStreams
	skipped := 0
	for _, sh := range r.shards {
		sh.mu.Lock()
		for peer, st := range sh.streams {
			if budget <= 0 {
				skipped++
				continue
			}
			budget--
			em.Gauge(metrics.Name("sfd_stream_suspicion", "peer", peer), r.level(st, now))
			em.Gauge(metrics.Name("sfd_stream_phase", "peer", peer), float64(st.phase))
			td, ok := st.det.(tuned)
			if !ok {
				continue
			}
			em.Gauge(metrics.Name("sfd_stream_margin_seconds", "peer", peer),
				td.Margin().Seconds())
			em.Gauge(metrics.Name("sfd_stream_state", "peer", peer), float64(td.State()))
			if adj, ok := td.LastAdjustment(); ok {
				em.Gauge(metrics.Name("sfd_stream_td_seconds", "peer", peer),
					adj.Measured.TD.Seconds())
				em.Gauge(metrics.Name("sfd_stream_mr_per_s", "peer", peer), adj.Measured.MR)
				em.Gauge(metrics.Name("sfd_stream_qap", "peer", peer), adj.Measured.QAP)
			}
		}
		sh.mu.Unlock()
	}
	if skipped > 0 {
		em.Gauge("sfd_registry_metrics_streams_skipped", float64(skipped))
	}
}
