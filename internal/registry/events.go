package registry

import (
	"fmt"

	"repro/internal/clock"
)

// EventType discriminates failure-bus notifications.
type EventType uint8

const (
	// EventSuspect: a stream crossed from trusted to suspected (its
	// freshness point expired, or it exceeded the silence safety net).
	EventSuspect EventType = iota + 1
	// EventTrust: a suspected (or offline) stream resumed heartbeating —
	// the suspicion was a mistake, or a wrongly-declared-offline server
	// came back (the paper's model: a crashed process never recovers, so
	// a recovery proves the suspicion wrong).
	EventTrust
	// EventOffline: a stream stayed suspected past the offline grace
	// period and is now treated as crashed.
	EventOffline
	// EventEvicted: an offline stream outlived the eviction grace period
	// and was removed from the registry (bounded-table guarantee).
	EventEvicted
	// EventCannotSatisfy: the stream's self-tuning detector reports that
	// the requested QoS targets are infeasible on this network path —
	// Algorithm 1's "this SFD can not satisfy the QoS" response, pushed
	// instead of polled.
	EventCannotSatisfy
	// EventGlobalSuspect: the gossip layer's quorum rule found enough
	// monitors concurring that the peer is suspected — a fleet-wide
	// suspicion, not just this monitor's local one.
	EventGlobalSuspect
	// EventGlobalOffline: ≥K monitors (weighted by their recent accuracy)
	// independently declared the peer offline at its latest incarnation —
	// the corroborated verdict safe to act on.
	EventGlobalOffline
	// EventGlobalTrust: a previously gossip-suspected peer is trusted
	// again fleet-wide — the quorum dissolved, or a bumped incarnation
	// refuted the old suspicion.
	EventGlobalTrust
)

// String implements fmt.Stringer.
func (t EventType) String() string {
	switch t {
	case EventSuspect:
		return "suspect"
	case EventTrust:
		return "trust"
	case EventOffline:
		return "offline"
	case EventEvicted:
		return "evicted"
	case EventCannotSatisfy:
		return "cannot-satisfy"
	case EventGlobalSuspect:
		return "global-suspect"
	case EventGlobalOffline:
		return "global-offline"
	case EventGlobalTrust:
		return "global-trust"
	default:
		return fmt.Sprintf("EventType(%d)", uint8(t))
	}
}

// Event is one failure-detection transition published on the bus.
type Event struct {
	Type EventType
	Peer string
	// At is the instant the transition was detected (wheel fire time or
	// heartbeat arrival time).
	At clock.Time
	// Suspicion is the accrual suspicion level at the transition, when
	// the stream's detector exposes one (0 otherwise).
	Suspicion float64
	// Incarnation is the peer incarnation the transition refers to;
	// Global* verdicts apply only to this incarnation.
	Incarnation uint64
	// Source identifies the monitor that produced a Global* verdict
	// (empty for this monitor's own local transitions).
	Source string
	// Detail carries auxiliary text, e.g. the self-tuner's infeasibility
	// response for EventCannotSatisfy or the quorum tally behind a
	// Global* verdict.
	Detail string
}

// String renders the event for logs.
func (e Event) String() string {
	if e.Detail != "" {
		return fmt.Sprintf("%s %s at %v: %s", e.Peer, e.Type, e.At, e.Detail)
	}
	return fmt.Sprintf("%s %s at %v (suspicion %.3f)", e.Peer, e.Type, e.At, e.Suspicion)
}
