package registry

import (
	"repro/internal/clock"
)

// StreamPhase is the exported view of a stream's lifecycle position —
// the coarse event-driven machine the timer wheel advances, without the
// query-time busy/active refinement cluster.Status adds.
type StreamPhase uint8

const (
	StreamTrusted StreamPhase = iota
	StreamSuspected
	StreamOffline
)

// StreamView is one row of a registry sweep: the fields a federation
// leaf needs to roll a stream up into its cohort digest. QoS fields are
// populated only when the stream's detector self-tunes and has adjusted
// at least one slot (Tuned reports that).
type StreamView struct {
	Peer        string
	Phase       StreamPhase
	Seen        bool
	Incarnation uint64
	Tuned       bool
	TD          clock.Duration // last adjusted slot's measured detection time
	MR          float64        // last adjusted slot's mistake rate
	QAP         float64        // last adjusted slot's query-accuracy probability
}

// ForEachStream sweeps every registered stream under its shard lock and
// calls fn with a roll-up view — the bulk read hatch federation leaves
// use to build per-cohort digests without N snapshot allocations. fn
// runs with a shard lock held: it must be fast, must not retain the
// view's strings beyond the call, and must not call back into the
// registry. Iteration order is unspecified (shard, then map order).
func (r *Registry) ForEachStream(fn func(StreamView)) {
	var v StreamView
	for _, sh := range r.shards {
		sh.mu.Lock()
		for peer, st := range sh.streams {
			v = StreamView{
				Peer:        peer,
				Phase:       StreamPhase(st.phase),
				Seen:        st.seen,
				Incarnation: st.inc,
			}
			if td, ok := st.det.(tuned); ok {
				if adj, ok := td.LastAdjustment(); ok {
					v.Tuned = true
					v.TD = adj.Measured.TD
					v.MR = adj.Measured.MR
					v.QAP = adj.Measured.QAP
				}
			}
			fn(v)
		}
		sh.mu.Unlock()
	}
}
