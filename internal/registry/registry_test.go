package registry

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/heartbeat"
)

const ms = clock.Millisecond

func chenFactory(interval, margin clock.Duration) Factory {
	return func(string) detector.Detector {
		return detector.NewChen(64, interval, margin)
	}
}

// drain empties a subscription's queued events without blocking.
func drain(sub *Subscription) []Event {
	var out []Event
	for {
		select {
		case ev := <-sub.C():
			out = append(out, ev)
		default:
			return out
		}
	}
}

// TestRegistryTransitionsUnderSim walks one stream through the whole
// machine — suspect, offline, evict — and another through a wrongful
// suspicion corrected by recovery, all deterministically on clock.Sim.
func TestRegistryTransitionsUnderSim(t *testing.T) {
	sim := clock.NewSim(0)
	r := New(sim, chenFactory(100*ms, 200*ms), Options{
		WheelTick:    10 * ms,
		OfflineAfter: 500 * ms,
		EvictAfter:   500 * ms,
	})
	r.Start()
	defer r.Stop()
	sub := r.Subscribe(256)

	feed := func(peer string, seq uint64) {
		now := sim.Now()
		r.Observe(heartbeat.Arrival{From: peer, Seq: seq, Send: now.Add(-2 * ms), Recv: now})
	}

	// Both peers beat every 100 ms for 2 s.
	for i := 0; i < 20; i++ {
		feed("steady", uint64(i))
		feed("flaky", uint64(i))
		sim.Advance(100 * ms)
	}
	if evs := drain(sub); len(evs) != 0 {
		t.Fatalf("unexpected events while healthy: %v", evs)
	}

	// "flaky" goes silent for 600 ms — long enough to be suspected
	// (freshness ≈ 300 ms after its last beat) but it recovers before
	// the 500 ms OfflineAfter grace expires.
	for i := 20; i < 25; i++ {
		feed("steady", uint64(i))
		sim.Advance(100 * ms)
	}
	feed("flaky", 25)
	feed("steady", 25)

	evs := drain(sub)
	if len(evs) != 2 || evs[0].Type != EventSuspect || evs[0].Peer != "flaky" ||
		evs[1].Type != EventTrust || evs[1].Peer != "flaky" {
		t.Fatalf("want [suspect(flaky) trust(flaky)], got %v", evs)
	}
	if st, ok := r.Stats("flaky"); !ok || st.Mistakes != 1 || st.MistakeTime <= 0 {
		t.Fatalf("flaky stats = %+v, ok=%v; want one mistake with positive duration", st, ok)
	}

	// Now "flaky" crashes for good: suspect → offline → evicted.
	for i := 26; i < 56; i++ {
		feed("steady", uint64(i))
		sim.Advance(100 * ms)
	}
	evs = drain(sub)
	want := []EventType{EventSuspect, EventOffline, EventEvicted}
	if len(evs) != len(want) {
		t.Fatalf("crash events = %v, want types %v", evs, want)
	}
	for i, ev := range evs {
		if ev.Type != want[i] || ev.Peer != "flaky" {
			t.Fatalf("crash event %d = %v, want %v(flaky)", i, ev, want[i])
		}
		if i > 0 && ev.At.Before(evs[i-1].At) {
			t.Fatalf("events out of order: %v", evs)
		}
	}
	if _, ok := r.StatusOf("flaky", sim.Now()); ok {
		t.Fatal("evicted stream still present")
	}
	if st, ok := r.StatusOf("steady", sim.Now()); !ok || st != cluster.StatusActive {
		t.Fatalf("steady status = %v, want active", st)
	}

	c := r.Counters()
	if c.Suspects != 2 || c.Trusts != 1 || c.Offlines != 1 || c.Evictions != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if c.Streams != 1 || r.Len() != 1 {
		t.Fatalf("streams = %d, want 1", c.Streams)
	}
}

// TestRegistrySilenceSafetyNet: a stream whose detector never forms a
// freshness point (single heartbeat, unknown interval) is still
// suspected and eventually evicted via MaxSilence.
func TestRegistrySilenceSafetyNet(t *testing.T) {
	sim := clock.NewSim(0)
	r := New(sim, nil, Options{ // default factory: SFD, interval estimated
		WheelTick:    10 * ms,
		MaxSilence:   200 * ms,
		OfflineAfter: 100 * ms,
		EvictAfter:   100 * ms,
	})
	r.Start()
	defer r.Stop()
	sub := r.Subscribe(16)

	r.Observe(heartbeat.Arrival{From: "oneshot", Seq: 0, Send: 0, Recv: sim.Now()})
	sim.Advance(clock.Second)

	evs := drain(sub)
	want := []EventType{EventSuspect, EventOffline, EventEvicted}
	if len(evs) != len(want) {
		t.Fatalf("events = %v, want %v", evs, want)
	}
	for i, ev := range evs {
		if ev.Type != want[i] {
			t.Fatalf("event %d = %v, want %v", i, ev, want[i])
		}
	}
	if r.Len() != 0 {
		t.Fatalf("registry still holds %d streams", r.Len())
	}
}

// TestRegistryRegisterBeforeHeartbeat: an explicitly registered but
// silent peer is bounded by the safety net too.
func TestRegistryRegisterBeforeHeartbeat(t *testing.T) {
	sim := clock.NewSim(0)
	r := New(sim, chenFactory(100*ms, 100*ms), Options{
		WheelTick:    10 * ms,
		MaxSilence:   200 * ms,
		OfflineAfter: 100 * ms,
		EvictAfter:   100 * ms,
	})
	r.Start()
	defer r.Stop()

	r.Register("silent")
	r.Register("silent") // idempotent
	if r.Len() != 1 {
		t.Fatalf("Len = %d after double register", r.Len())
	}
	if st, ok := r.StatusOf("silent", sim.Now()); !ok || st != cluster.StatusUnknown {
		t.Fatalf("status = %v, want unknown", st)
	}
	sim.Advance(clock.Second)
	if r.Len() != 0 {
		t.Fatal("silent registered peer was never evicted")
	}
}

// infeasibleDet fakes a self-tuning detector stuck in the infeasible
// state to exercise the EventCannotSatisfy path.
type infeasibleDet struct {
	detector.Detector
	state core.State
}

func (d *infeasibleDet) State() core.State { return d.state }
func (d *infeasibleDet) Response() string  { return "cannot satisfy (test)" }

func TestRegistryCannotSatisfyPublishedOncePerEpisode(t *testing.T) {
	sim := clock.NewSim(0)
	det := &infeasibleDet{Detector: detector.NewChen(8, 100*ms, 100*ms), state: core.StateTuning}
	r := New(sim, func(string) detector.Detector { return det }, Options{})
	sub := r.Subscribe(16)

	feed := func(seq uint64) {
		r.Observe(heartbeat.Arrival{From: "p", Seq: seq, Send: sim.Now(), Recv: sim.Now()})
		sim.Advance(100 * ms)
	}
	feed(0)
	det.state = core.StateInfeasible
	feed(1)
	feed(2) // same episode: no second event
	det.state = core.StateTuning
	feed(3)
	det.state = core.StateInfeasible
	feed(4) // new episode: second event

	evs := drain(sub)
	if len(evs) != 2 {
		t.Fatalf("cannot-satisfy events = %v, want exactly 2", evs)
	}
	for _, ev := range evs {
		if ev.Type != EventCannotSatisfy || ev.Detail == "" {
			t.Fatalf("bad event %v", ev)
		}
	}
	if c := r.Counters(); c.CannotSatisfy != 2 {
		t.Fatalf("CannotSatisfy counter = %d", c.CannotSatisfy)
	}
}

// TestRegistryStaleArrivalsDropped mirrors the receiver contract:
// duplicate or reordered sequence numbers never reach the detector.
func TestRegistryStaleArrivalsDropped(t *testing.T) {
	sim := clock.NewSim(0)
	r := New(sim, chenFactory(100*ms, 100*ms), Options{})
	for _, seq := range []uint64{5, 6, 6, 3, 7} {
		r.Observe(heartbeat.Arrival{From: "p", Seq: seq, Send: sim.Now(), Recv: sim.Now()})
		sim.Advance(10 * ms)
	}
	c := r.Counters()
	if c.Heartbeats != 3 || c.Stale != 2 {
		t.Fatalf("heartbeats=%d stale=%d, want 3/2", c.Heartbeats, c.Stale)
	}
	st, _ := r.Stats("p")
	if st.Heartbeats != 3 || st.Stale != 2 {
		t.Fatalf("stream stats = %+v", st)
	}
}

// TestRegistryShardOccupancyUniform: FNV striping should spread peers
// across all shards.
// TestRegistryReregisterNoStaleFire: register→deregister→register on the
// same address must never let a wheel entry from the first life fire a
// transition against the second. Generations are registry-global, so the
// old entry can never alias the new stream; the re-registered peer's
// first suspect event fires at ITS deadline, not the old stream's.
func TestRegistryReregisterNoStaleFire(t *testing.T) {
	sim := clock.NewSim(0)
	r := New(sim, chenFactory(100*ms, 200*ms), Options{
		WheelTick:  10 * ms,
		MaxSilence: 100 * ms,
	})
	r.Start()
	defer r.Stop()
	sub := r.Subscribe(256)

	r.Register("p") // arms the silence net: entry due at t=100ms
	sim.Advance(50 * ms)
	if !r.Deregister("p") {
		t.Fatal("Deregister returned false for a registered peer")
	}
	r.Register("p") // second life: silence entry due at t=150ms

	// Cross the first life's deadline: nothing may fire (the old entry's
	// generation can no longer match any live stream).
	sim.Advance(60 * ms) // t=110ms
	if evs := drain(sub); len(evs) != 0 {
		t.Fatalf("stale wheel entry fired against re-registered peer: %v", evs)
	}
	// The second life's own deadline still works.
	sim.Advance(50 * ms) // t=160ms
	evs := drain(sub)
	if len(evs) != 1 || evs[0].Type != EventSuspect {
		t.Fatalf("expected exactly the second life's suspect event, got %v", evs)
	}
	if evs[0].At < clock.Time(150*ms) {
		t.Fatalf("suspect fired at %v, before the second life's deadline 150ms", evs[0].At)
	}
}

// TestRegistryReregisterChurnRace hammers register→deregister→register
// (plus heartbeats that re-arm the wheel) from several goroutines under
// the real clock — the -race churn scenario; generation uniqueness keeps
// the wheel, the shards, and the event stream consistent.
func TestRegistryReregisterChurnRace(t *testing.T) {
	r := New(nil, chenFactory(clock.Millisecond, clock.Millisecond), Options{
		WheelTick:    clock.Millisecond,
		MaxSilence:   2 * clock.Millisecond,
		OfflineAfter: 2 * clock.Millisecond,
		EvictAfter:   2 * clock.Millisecond,
	})
	r.Start()
	defer r.Stop()
	sub := r.Subscribe(4096)
	defer sub.Close()
	go func() {
		for range sub.C() { // keep the bus draining
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			peer := fmt.Sprintf("churn-%d", g)
			clk := clock.NewReal()
			for i := 0; i < 300; i++ {
				r.Register(peer)
				r.Observe(heartbeat.Arrival{From: peer, Seq: uint64(i), Recv: clk.Now()})
				r.Deregister(peer)
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 4; g++ {
		r.Deregister(fmt.Sprintf("churn-%d", g))
	}
	if n := r.Len(); n != 0 {
		t.Fatalf("streams left after churn: %d", n)
	}
}

// TestRegistryIncarnationRestart: a bumped incarnation supersedes the old
// life even with a lower sequence number, recovers a suspected stream,
// and restarts the detector.
func TestRegistryIncarnationRestart(t *testing.T) {
	sim := clock.NewSim(0)
	r := New(sim, chenFactory(100*ms, 200*ms), Options{
		WheelTick:    10 * ms,
		OfflineAfter: 500 * ms,
	})
	r.Start()
	defer r.Stop()
	sub := r.Subscribe(256)

	feed := func(inc, seq uint64) {
		r.Observe(heartbeat.Arrival{From: "p", Seq: seq, Send: sim.Now(), Recv: sim.Now(), Inc: inc})
	}
	for i := 0; i < 10; i++ {
		feed(0, uint64(i))
		sim.Advance(100 * ms)
	}
	// Crash: silence until the stream is suspected.
	sim.Advance(600 * ms)
	found := false
	for _, ev := range drain(sub) {
		if ev.Type == EventSuspect {
			found = true
		}
	}
	if !found {
		t.Fatal("stream not suspected after going silent")
	}

	// Old-incarnation straggler must NOT recover the stream.
	feed(0, 3)
	if evs := drain(sub); len(evs) != 0 {
		t.Fatalf("dead-incarnation straggler produced events: %v", evs)
	}

	// The restarted process (inc 1, seq from 0) recovers it.
	feed(1, 0)
	evs := drain(sub)
	if len(evs) != 1 || evs[0].Type != EventTrust || evs[0].Incarnation != 1 {
		t.Fatalf("restart events = %v, want one trust at incarnation 1", evs)
	}
	if inc, ok := r.IncarnationOf("p"); !ok || inc != 1 {
		t.Fatalf("IncarnationOf = %d,%v want 1,true", inc, ok)
	}
}

func TestRegistryShardOccupancy(t *testing.T) {
	r := New(clock.NewSim(0), chenFactory(100*ms, 100*ms), Options{Shards: 8})
	for i := 0; i < 4096; i++ {
		r.Register(fmt.Sprintf("10.0.%d.%d:7946", i/256, i%256))
	}
	occ := r.ShardOccupancy()
	if len(occ) != 8 {
		t.Fatalf("shards = %d, want 8", len(occ))
	}
	total := 0
	for s, n := range occ {
		total += n
		if n == 0 {
			t.Errorf("shard %d empty — striping is degenerate", s)
		}
	}
	if total != 4096 {
		t.Fatalf("total occupancy %d, want 4096", total)
	}
}

// TestRegistryHTTPEndpoints exercises /status, /vars and /healthz.
func TestRegistryHTTPEndpoints(t *testing.T) {
	sim := clock.NewSim(0)
	r := New(sim, chenFactory(100*ms, 100*ms), Options{})
	for i := 0; i < 3; i++ {
		r.Observe(heartbeat.Arrival{From: fmt.Sprintf("peer-%d", i), Seq: 1, Send: 0, Recv: sim.Now()})
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Counters Counters `json:"counters"`
		Shards   []int    `json:"shard_occupancy"`
		Streams  []struct {
			Peer   string `json:"peer"`
			Status string `json:"status"`
		} `json:"streams"`
	}
	if err := json.NewDecoder(res.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if len(status.Streams) != 3 || status.Counters.Heartbeats != 3 {
		t.Fatalf("status = %+v", status)
	}
	if status.Streams[0].Peer != "peer-0" {
		t.Fatalf("streams not sorted: %+v", status.Streams)
	}

	res, err = srv.Client().Get(srv.URL + "/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Counters Counters `json:"counters"`
	}
	if err := json.NewDecoder(res.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if vars.Counters.Streams != 3 {
		t.Fatalf("vars = %+v", vars)
	}

	res, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("healthz status %d", res.StatusCode)
	}
}

// TestRegistryConcurrentRealClock hammers a real-clock registry from
// many goroutines — ingest, snapshots, subscribe/close, register/
// deregister — while the wheel goroutine fires transitions. Exists for
// the race detector; assertions are minimal.
func TestRegistryConcurrentRealClock(t *testing.T) {
	r := New(clock.NewReal(), func(string) detector.Detector {
		return detector.NewFixed(5*ms, 1)
	}, Options{
		WheelTick:    ms,
		OfflineAfter: 10 * ms,
		EvictAfter:   10 * ms,
		MaxSilence:   20 * ms,
	})
	clk := clock.NewReal()
	r.Start()
	defer r.Stop()

	var wg sync.WaitGroup
	const workers = 8
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sub := r.Subscribe(8)
			defer sub.Close()
			for i := 0; i < 400; i++ {
				peer := fmt.Sprintf("w%d-p%d", g, i%16)
				now := clk.Now()
				r.Observe(heartbeat.Arrival{From: peer, Seq: uint64(i/16 + 1), Send: now, Recv: now})
				switch i % 64 {
				case 7:
					r.Snapshot(clk.Now())
				case 19:
					r.Deregister(peer)
				case 31:
					r.Counters()
				case 47:
					drain(sub)
				}
				if i%50 == 0 {
					clk.Sleep(ms)
				}
			}
		}(g)
	}
	wg.Wait()
	// Let the wheel chew through remaining deadlines, then make sure the
	// registry still answers queries coherently.
	clk.Sleep(50 * ms)
	_ = r.Snapshot(clk.Now())
	c := r.Counters()
	if c.Heartbeats == 0 {
		t.Fatal("no heartbeats ingested")
	}
}

// TestRegisterRejectsInvalidStreamNames is the ISSUE's regression test:
// names with empty segments (`a//b`) or wildcard characters must be
// rejected at every registration boundary — explicit Register and
// heartbeat auto-registration alike — so publish-side topic matching
// stays unambiguous.
func TestRegisterRejectsInvalidStreamNames(t *testing.T) {
	sim := clock.NewSim(0)
	r := New(sim, chenFactory(100*ms, 200*ms), Options{})
	bad := []string{"a//b", "", "/a", "a/", "srv/+/x", "srv/#", "a#b"}
	for _, name := range bad {
		if err := r.Register(name); err == nil {
			t.Errorf("Register(%q) accepted an invalid name", name)
		}
	}
	if err := r.Register("a/b"); err != nil {
		t.Fatalf("Register(a/b): %v", err)
	}

	// Heartbeats from invalid names are dropped, not auto-registered.
	for _, name := range bad {
		r.Observe(heartbeat.Arrival{From: name, Seq: 0, Send: 0, Recv: 0})
	}
	if got := r.Len(); got != 1 {
		t.Fatalf("Len() = %d, want 1 (only a/b)", got)
	}
	c := r.Counters()
	if want := uint64(2 * len(bad)); c.InvalidNames != want {
		t.Fatalf("InvalidNames = %d, want %d", c.InvalidNames, want)
	}
	if c.Heartbeats != 0 {
		t.Fatalf("Heartbeats = %d, want 0 (invalid arrivals must not count)", c.Heartbeats)
	}
}
