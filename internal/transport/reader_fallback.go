//go:build !linux || (!amd64 && !arm64)

package transport

import "net"

// newReader on platforms without the recvmmsg fast path always returns
// the portable per-datagram reader: still pooled-buffer, still
// allocation-free in steady state, just one syscall per datagram.
func newReader(conn *net.UDPConn, pool *BufPool, batch int) (udpReader, bool) {
	return &singleReader{conn: conn, pool: pool}, false
}
