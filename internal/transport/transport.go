// Package transport provides the datagram endpoints the live heartbeat
// stack runs on: a real UDP endpoint (stdlib net) matching the paper's
// "inter-process communication model is based on message exchanges over
// the UDP communication protocol" (§II-B), and an in-memory hub with the
// same unreliable-channel semantics for socket-free tests. Deterministic
// simulation uses internal/netsim instead.
package transport

import (
	"container/list"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Inbound is a received datagram.
type Inbound struct {
	From    string
	Payload []byte
}

// Endpoint is an unreliable datagram endpoint: sends may be silently
// lost, delayed, reordered, duplicated, or truncated in flight — UDP
// guarantees none of the above, and the chaos layer (internal/chaos)
// injects all of them on purpose. Consumers must tolerate duplicates and
// undecodable payloads; the heartbeat codec rejects damage and the
// registry's incarnation/sequence filter absorbs replays.
type Endpoint interface {
	// Send transmits to the named address. A nil error does not imply
	// delivery.
	Send(to string, payload []byte) error
	// Recv returns the delivery channel. It is closed by Close.
	Recv() <-chan Inbound
	// Addr returns this endpoint's address.
	Addr() string
	// Close releases resources and closes the Recv channel.
	Close() error
}

// ErrClosed reports use of a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// maxDatagram bounds receive buffers; heartbeat messages are tiny, but
// leave room for piggybacked payloads.
const maxDatagram = 64 * 1024

// DefaultPeerCache bounds the UDP resolution cache. Restart and
// partition drills churn peer addresses; without a cap the cache grows
// monotonically for the life of the socket.
const DefaultPeerCache = 1024

// peerEntry is one resolution-cache slot; the element value in the LRU
// list.
type peerEntry struct {
	key  string
	addr *net.UDPAddr
}

// UDP is an Endpoint over a real UDP socket.
type UDP struct {
	conn   *net.UDPConn
	recv   chan Inbound
	closed chan struct{}
	once   sync.Once

	// The resolution cache is an LRU bounded at peerCap: peers is the
	// index, order the recency list (front = most recent).
	mu      sync.Mutex
	peers   map[string]*list.Element
	order   *list.List
	peerCap int
}

// ListenUDP opens a UDP endpoint on addr (e.g. "127.0.0.1:0"). The
// endpoint's Addr is the concrete bound address.
func ListenUDP(addr string) (*UDP, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", addr, err)
	}
	u := &UDP{
		conn:    conn,
		recv:    make(chan Inbound, 4096),
		closed:  make(chan struct{}),
		peers:   make(map[string]*list.Element),
		order:   list.New(),
		peerCap: DefaultPeerCache,
	}
	go u.readLoop()
	return u, nil
}

// SetPeerCache rebounds the resolution cache (minimum 1), evicting
// least-recently-sent entries if the new cap is already exceeded.
func (u *UDP) SetPeerCache(n int) {
	if n < 1 {
		n = 1
	}
	u.mu.Lock()
	u.peerCap = n
	for len(u.peers) > u.peerCap {
		u.evictOldestLocked()
	}
	u.mu.Unlock()
}

// PeerCacheLen returns the current resolution-cache occupancy.
func (u *UDP) PeerCacheLen() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.peers)
}

// lookupPeerLocked returns the cached resolution and refreshes recency.
func (u *UDP) lookupPeerLocked(to string) *net.UDPAddr {
	el := u.peers[to]
	if el == nil {
		return nil
	}
	u.order.MoveToFront(el)
	return el.Value.(*peerEntry).addr
}

func (u *UDP) storePeerLocked(to string, ua *net.UDPAddr) {
	if el := u.peers[to]; el != nil { // raced with another Send
		el.Value.(*peerEntry).addr = ua
		u.order.MoveToFront(el)
		return
	}
	u.peers[to] = u.order.PushFront(&peerEntry{key: to, addr: ua})
	for len(u.peers) > u.peerCap {
		u.evictOldestLocked()
	}
}

func (u *UDP) evictOldestLocked() {
	el := u.order.Back()
	if el == nil {
		return
	}
	u.order.Remove(el)
	delete(u.peers, el.Value.(*peerEntry).key)
}

func (u *UDP) readLoop() {
	defer close(u.recv)
	buf := make([]byte, maxDatagram)
	for {
		n, from, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-u.closed:
				return
			default:
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		payload := make([]byte, n)
		copy(payload, buf[:n])
		select {
		case u.recv <- Inbound{From: from.String(), Payload: payload}:
		default:
			// Receiver not draining: drop, like a full socket buffer.
		}
	}
}

// Send implements Endpoint.
func (u *UDP) Send(to string, payload []byte) error {
	select {
	case <-u.closed:
		return ErrClosed
	default:
	}
	u.mu.Lock()
	ua := u.lookupPeerLocked(to)
	u.mu.Unlock()
	if ua == nil {
		resolved, err := net.ResolveUDPAddr("udp", to)
		if err != nil {
			return fmt.Errorf("transport: resolve %q: %w", to, err)
		}
		u.mu.Lock()
		u.storePeerLocked(to, resolved)
		u.mu.Unlock()
		ua = resolved
	}
	_, err := u.conn.WriteToUDP(payload, ua)
	return err
}

// Recv implements Endpoint.
func (u *UDP) Recv() <-chan Inbound { return u.recv }

// Addr implements Endpoint.
func (u *UDP) Addr() string { return u.conn.LocalAddr().String() }

// Close implements Endpoint.
func (u *UDP) Close() error {
	var err error
	u.once.Do(func() {
		close(u.closed)
		err = u.conn.Close()
	})
	return err
}

// Pump drains an endpoint into a handler until the endpoint closes —
// the receive-loop glue for consumers that are not heartbeat Receivers
// (e.g. a gossip daemon sharing or owning a socket). It blocks; run it
// on its own goroutine:
//
//	go transport.Pump(ep, func(in transport.Inbound) { g.HandleDatagram(in.Payload) })
func Pump(ep Endpoint, h func(Inbound)) {
	for in := range ep.Recv() {
		h(in)
	}
}

// Hub is an in-memory datagram switchboard for tests: real-time (not
// simulated), optionally lossy and delayed, no sockets.
type Hub struct {
	mu        sync.Mutex
	endpoints map[string]*MemEndpoint
	lossRate  float64
	delay     time.Duration
	// rng drives loss decisions. *rand.Rand is not safe for concurrent
	// use; every access MUST hold mu (Send draws under mu — see the
	// concurrency stress test). Do not read it lock-free for "cheap"
	// randomness.
	rng *rand.Rand
}

// NewHub returns an empty hub. lossRate drops datagrams uniformly at
// random; delay postpones each delivery by a fixed amount.
func NewHub(lossRate float64, delay time.Duration, seed int64) *Hub {
	return &Hub{
		endpoints: make(map[string]*MemEndpoint),
		lossRate:  lossRate,
		delay:     delay,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Endpoint registers and returns an endpoint with the given address.
func (h *Hub) Endpoint(addr string) *MemEndpoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.endpoints[addr]; dup {
		panic(fmt.Sprintf("transport: duplicate hub endpoint %q", addr))
	}
	ep := &MemEndpoint{hub: h, addr: addr, recv: make(chan Inbound, 4096), closed: make(chan struct{})}
	h.endpoints[addr] = ep
	return ep
}

// MemEndpoint is an Endpoint attached to a Hub.
type MemEndpoint struct {
	hub    *Hub
	addr   string
	recv   chan Inbound
	closed chan struct{}
	once   sync.Once

	// closeMu serializes deliveries against Close: recv may only be
	// closed once no sender can still be inside a send (closing a
	// channel with concurrent senders is a race).
	closeMu  sync.RWMutex
	isClosed bool
}

// Send implements Endpoint.
func (m *MemEndpoint) Send(to string, payload []byte) error {
	select {
	case <-m.closed:
		return ErrClosed
	default:
	}
	h := m.hub
	h.mu.Lock()
	dst := h.endpoints[to]
	drop := h.lossRate > 0 && h.rng.Float64() < h.lossRate
	delay := h.delay
	h.mu.Unlock()
	if dst == nil {
		return fmt.Errorf("transport: unknown hub endpoint %q", to)
	}
	if drop {
		return nil
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	deliver := func() {
		dst.closeMu.RLock()
		defer dst.closeMu.RUnlock()
		if dst.isClosed {
			return
		}
		select {
		case dst.recv <- Inbound{From: m.addr, Payload: cp}:
		default:
		}
	}
	if delay > 0 {
		time.AfterFunc(delay, deliver)
	} else {
		deliver()
	}
	return nil
}

// Recv implements Endpoint.
func (m *MemEndpoint) Recv() <-chan Inbound { return m.recv }

// Addr implements Endpoint.
func (m *MemEndpoint) Addr() string { return m.addr }

// Close implements Endpoint.
func (m *MemEndpoint) Close() error {
	m.once.Do(func() {
		close(m.closed)
		m.hub.mu.Lock()
		delete(m.hub.endpoints, m.addr)
		m.hub.mu.Unlock()
		m.closeMu.Lock()
		m.isClosed = true
		close(m.recv)
		m.closeMu.Unlock()
	})
	return nil
}
