// Package transport provides the datagram endpoints the live heartbeat
// stack runs on: a real UDP endpoint (stdlib net) matching the paper's
// "inter-process communication model is based on message exchanges over
// the UDP communication protocol" (§II-B), and an in-memory hub with the
// same unreliable-channel semantics for socket-free tests. Deterministic
// simulation uses internal/netsim instead.
//
// The UDP receive path is built for million-stream ingest: datagrams
// are read in batches (recvmmsg on Linux, one syscall for up to a whole
// batch), land in pooled buffers (BufPool) instead of a fresh
// allocation each, and are routed by sender hash onto per-shard ingest
// queues so several consumer goroutines can drain in parallel. The
// consumer returns each buffer with Inbound.Release once the payload is
// decoded, which is what keeps the steady-state path at zero
// allocations per datagram.
package transport

import (
	"container/list"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Inbound is a received datagram. When the payload rides in a pooled
// receive buffer, the consumer that finishes decoding it must call
// Release; an Inbound from an unpooled source releases as a no-op.
type Inbound struct {
	From    string
	Payload []byte

	// pool, when non-nil, owns Payload's backing buffer.
	pool *BufPool
}

// Release returns the payload's pooled buffer to its pool. Call it
// exactly once, after the payload has been fully decoded: the buffer is
// recycled into the receive path immediately, so retaining Payload (or
// any sub-slice) past Release is a use-after-free-style bug. Safe on a
// Inbound that carries no pooled buffer, and idempotent per copy.
func (in *Inbound) Release() {
	if in.pool == nil {
		return
	}
	p := in.pool
	in.pool = nil
	p.Put(in.Payload)
}

// Endpoint is an unreliable datagram endpoint: sends may be silently
// lost, delayed, reordered, duplicated, or truncated in flight — UDP
// guarantees none of the above, and the chaos layer (internal/chaos)
// injects all of them on purpose. Consumers must tolerate duplicates and
// undecodable payloads; the heartbeat codec rejects damage and the
// registry's incarnation/sequence filter absorbs replays.
type Endpoint interface {
	// Send transmits to the named address. A nil error does not imply
	// delivery.
	Send(to string, payload []byte) error
	// Recv returns the delivery channel. It is closed by Close.
	Recv() <-chan Inbound
	// Addr returns this endpoint's address.
	Addr() string
	// Close releases resources and closes the Recv channel.
	Close() error
}

// QueuedEndpoint is the optional multi-queue surface of an endpoint
// whose receive path shards inbound datagrams by sender: consumers that
// want parallel ingest drain every queue (one goroutine each) instead
// of the single Recv channel. Recv() is always queue 0.
type QueuedEndpoint interface {
	Endpoint
	// RecvQueues returns the number of ingest queues (≥ 1).
	RecvQueues() int
	// RecvQueue returns queue i (0 ≤ i < RecvQueues). All queues are
	// closed by Close. Datagrams from one sender always land on the
	// same queue, so per-sender ordering is preserved per queue.
	RecvQueue(i int) <-chan Inbound
}

// ErrClosed reports use of a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// maxDatagram bounds receive buffers; heartbeat messages are tiny, but
// leave room for piggybacked payloads.
const maxDatagram = 64 * 1024

// DefaultPeerCache bounds the UDP resolution cache. Restart and
// partition drills churn peer addresses; without a cap the cache grows
// monotonically for the life of the socket.
const DefaultPeerCache = 1024

// defaultFromCache bounds the sender-address string cache the receive
// loop keeps (netip.AddrPort → "ip:port"). On overflow the cache is
// reset wholesale — an amortized O(1) bound that costs one string
// re-allocation per sender after a reset.
const defaultFromCache = 1 << 16

// UDPOptions tunes a UDP endpoint's receive path. The zero value takes
// the documented defaults, which reproduce the classic single-queue
// Recv() interface on top of the batched machinery.
type UDPOptions struct {
	// Queues is the number of per-shard ingest queues (rounded up to a
	// power of two, default 1). Datagrams are routed by an FNV hash of
	// the sender address, so one sender's traffic stays ordered within
	// its queue. Consumers that only drain Recv() must keep Queues at 1;
	// heartbeat.Receiver drains every queue.
	Queues int
	// QueueLen is each queue's channel capacity (default 4096). A full
	// queue drops, like a full socket buffer — but counted.
	QueueLen int
	// Batch is the maximum datagrams per batched read (default 32).
	// On Linux the batch is filled by one recvmmsg syscall; elsewhere —
	// and always when Batch is 1 — the portable per-datagram loop runs.
	Batch int
	// Pool supplies receive buffers; one is created when nil (PoolBuffers
	// × BufSize). Sharing a pool across endpoints shares its bound.
	Pool *BufPool
	// PoolBuffers caps the pool's idle-buffer count (default 512).
	PoolBuffers int
	// BufSize is the per-buffer (= max datagram) size, default 64 KiB.
	// Datagrams longer than this are truncated by the kernel.
	BufSize int
	// FromCacheCap bounds the sender-address string cache (default 64k
	// entries; the cache resets wholesale when it overflows).
	FromCacheCap int
	// ReadBuffer requests a kernel receive buffer (SO_RCVBUF) of this
	// many bytes when > 0. The kernel caps the request at
	// net.core.rmem_max; at tens of thousands of heartbeats per second
	// the ~208 KiB default holds only a few milliseconds of traffic, so
	// any scheduling stall sheds datagrams before the read loop ever
	// sees them.
	ReadBuffer int
}

func (o *UDPOptions) normalize() {
	if o.Queues <= 0 {
		o.Queues = 1
	}
	n := 1
	for n < o.Queues {
		n <<= 1
	}
	o.Queues = n
	if o.QueueLen <= 0 {
		o.QueueLen = 4096
	}
	if o.Batch <= 0 {
		o.Batch = 32
	}
	if o.PoolBuffers <= 0 {
		o.PoolBuffers = 512
	}
	if o.BufSize <= 0 {
		o.BufSize = maxDatagram
	}
	if o.Pool == nil {
		o.Pool = NewBufPool(o.PoolBuffers, o.BufSize)
	}
	if o.FromCacheCap <= 0 {
		o.FromCacheCap = defaultFromCache
	}
}

// udpReader is the receive primitive behind the read loop: one call
// delivers one batch (≥ 1 datagrams) into pooled buffers via emit, or
// returns the read error for the loop's retry policy to classify. The
// loop owns error handling; readers just read.
type udpReader interface {
	read(emit func(from netip.AddrPort, payload []byte)) error
}

// singleReader is the portable per-datagram reader: one blocking
// ReadFromUDPAddrPort per call into a pooled buffer. Still allocation-
// free in steady state (netip addresses are values; the buffer is
// pooled) — the Linux batched reader only amortizes the syscall.
type singleReader struct {
	conn *net.UDPConn
	pool *BufPool
}

func (r *singleReader) read(emit func(netip.AddrPort, []byte)) error {
	buf := r.pool.Get()
	n, ap, err := r.conn.ReadFromUDPAddrPort(buf)
	if err != nil {
		r.pool.Put(buf)
		return err
	}
	emit(netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port()), buf[:n])
	return nil
}

// UDPCounters is a UDP endpoint's receive-path counter snapshot.
type UDPCounters struct {
	Received    uint64       `json:"received"`     // datagrams delivered to a queue
	Dropped     uint64       `json:"dropped"`      // datagrams dropped at a full queue
	RxBytes     uint64       `json:"rx_bytes"`     // payload bytes received
	ReadRetries uint64       `json:"read_retries"` // transient read errors retried
	Batched     bool         `json:"batched"`      // recvmmsg fast path active
	Batch       int          `json:"batch"`        // max datagrams per read
	Queues      int          `json:"queues"`       // ingest queue count
	QueueDepth  int          `json:"queue_depth"`  // datagrams waiting across queues
	Pool        BufPoolStats `json:"pool"`         // receive-buffer pool accounting
}

// UDP is an Endpoint over a real UDP socket.
type UDP struct {
	conn   *net.UDPConn
	opts   UDPOptions
	pool   *BufPool
	reader udpReader

	queues  []chan Inbound
	qmask   uint32
	batched bool

	closed chan struct{}
	once   sync.Once

	received    atomic.Uint64
	dropped     atomic.Uint64
	rxBytes     atomic.Uint64
	readRetries atomic.Uint64

	// fromCache maps sender addresses to their rendered strings; owned
	// exclusively by the readLoop goroutine, so it needs no lock.
	fromCache map[netip.AddrPort]string

	// The resolution cache is an LRU bounded at peerCap: peers is the
	// index, order the recency list (front = most recent).
	mu      sync.Mutex
	peers   map[string]*list.Element
	order   *list.List
	peerCap int
}

// peerEntry is one resolution-cache slot; the element value in the LRU
// list.
type peerEntry struct {
	key  string
	addr *net.UDPAddr
}

// ListenUDP opens a UDP endpoint on addr (e.g. "127.0.0.1:0") with
// default options: batched reads, one ingest queue, a private buffer
// pool. The endpoint's Addr is the concrete bound address.
func ListenUDP(addr string) (*UDP, error) {
	return ListenUDPOpts(addr, UDPOptions{})
}

// ListenUDPOpts opens a UDP endpoint with explicit receive-path tuning.
func ListenUDPOpts(addr string, opts UDPOptions) (*UDP, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", addr, err)
	}
	u := newUDP(opts)
	if u.opts.ReadBuffer > 0 {
		_ = conn.SetReadBuffer(u.opts.ReadBuffer) // best effort; kernel caps at rmem_max
	}
	u.conn = conn
	u.reader, u.batched = newReader(conn, u.pool, u.opts.Batch)
	go u.readLoop()
	return u, nil
}

// newUDP builds the queue/pool scaffolding without a socket; tests
// inject a fake reader and drive readLoop directly.
func newUDP(opts UDPOptions) *UDP {
	opts.normalize()
	u := &UDP{
		opts:      opts,
		pool:      opts.Pool,
		queues:    make([]chan Inbound, opts.Queues),
		qmask:     uint32(opts.Queues - 1),
		closed:    make(chan struct{}),
		fromCache: make(map[netip.AddrPort]string),
		peers:     make(map[string]*list.Element),
		order:     list.New(),
		peerCap:   DefaultPeerCache,
	}
	for i := range u.queues {
		u.queues[i] = make(chan Inbound, opts.QueueLen)
	}
	return u
}

// SetPeerCache rebounds the resolution cache (minimum 1), evicting
// least-recently-sent entries if the new cap is already exceeded.
func (u *UDP) SetPeerCache(n int) {
	if n < 1 {
		n = 1
	}
	u.mu.Lock()
	u.peerCap = n
	for len(u.peers) > u.peerCap {
		u.evictOldestLocked()
	}
	u.mu.Unlock()
}

// PeerCacheLen returns the current resolution-cache occupancy.
func (u *UDP) PeerCacheLen() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.peers)
}

// lookupPeerLocked returns the cached resolution and refreshes recency.
func (u *UDP) lookupPeerLocked(to string) *net.UDPAddr {
	el := u.peers[to]
	if el == nil {
		return nil
	}
	u.order.MoveToFront(el)
	return el.Value.(*peerEntry).addr
}

func (u *UDP) storePeerLocked(to string, ua *net.UDPAddr) {
	if el := u.peers[to]; el != nil { // raced with another Send
		el.Value.(*peerEntry).addr = ua
		u.order.MoveToFront(el)
		return
	}
	u.peers[to] = u.order.PushFront(&peerEntry{key: to, addr: ua})
	for len(u.peers) > u.peerCap {
		u.evictOldestLocked()
	}
}

func (u *UDP) evictOldestLocked() {
	el := u.order.Back()
	if el == nil {
		return
	}
	u.order.Remove(el)
	delete(u.peers, el.Value.(*peerEntry).key)
}

// fromString renders (and caches) a sender address. Owned by readLoop.
func (u *UDP) fromString(ap netip.AddrPort) string {
	if s, ok := u.fromCache[ap]; ok {
		return s
	}
	if len(u.fromCache) >= u.opts.FromCacheCap {
		clear(u.fromCache)
	}
	s := ap.String()
	u.fromCache[ap] = s
	return s
}

// emit delivers one received datagram onto its sender's shard queue,
// dropping (counted, buffer reclaimed) when the queue is full — the
// userspace analogue of a full socket buffer, now observable.
func (u *UDP) emit(ap netip.AddrPort, payload []byte) {
	from := u.fromString(ap)
	in := Inbound{From: from, Payload: payload, pool: u.pool}
	q := u.queues[0]
	if u.qmask != 0 {
		q = u.queues[fnv32a(from)&u.qmask]
	}
	select {
	case q <- in:
		u.received.Add(1)
		u.rxBytes.Add(uint64(len(payload)))
	default:
		u.dropped.Add(1)
		u.pool.Put(payload)
	}
}

// readLoop drives the reader until the endpoint closes. Read errors are
// classified, not fatal: timeouts continue immediately, and everything
// else short of endpoint closure — ENOBUFS, ECONNREFUSED-class ICMP
// feedback, EINTR, transient kernel refusals — is retried under a
// capped exponential backoff. Before this policy existed the loop
// returned on the first non-timeout error, permanently closing Recv()
// and silently killing the monitor's socket.
func (u *UDP) readLoop() {
	defer func() {
		for _, q := range u.queues {
			close(q)
		}
	}()
	const (
		minBackoff = time.Millisecond
		maxBackoff = 100 * time.Millisecond
	)
	backoff := minBackoff
	emit := u.emit // bind once; a per-iteration method value would allocate
	for {
		err := u.reader.read(emit)
		if err == nil {
			backoff = minBackoff
			continue
		}
		if u.isClosed() || errors.Is(err, net.ErrClosed) {
			return
		}
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			continue
		}
		u.readRetries.Add(1)
		select {
		case <-u.closed:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

func (u *UDP) isClosed() bool {
	select {
	case <-u.closed:
		return true
	default:
		return false
	}
}

// Send implements Endpoint.
func (u *UDP) Send(to string, payload []byte) error {
	select {
	case <-u.closed:
		return ErrClosed
	default:
	}
	u.mu.Lock()
	ua := u.lookupPeerLocked(to)
	u.mu.Unlock()
	if ua == nil {
		resolved, err := net.ResolveUDPAddr("udp", to)
		if err != nil {
			return fmt.Errorf("transport: resolve %q: %w", to, err)
		}
		u.mu.Lock()
		u.storePeerLocked(to, resolved)
		u.mu.Unlock()
		ua = resolved
	}
	_, err := u.conn.WriteToUDP(payload, ua)
	return err
}

// Recv implements Endpoint; it is ingest queue 0.
func (u *UDP) Recv() <-chan Inbound { return u.queues[0] }

// RecvQueues implements QueuedEndpoint.
func (u *UDP) RecvQueues() int { return len(u.queues) }

// RecvQueue implements QueuedEndpoint.
func (u *UDP) RecvQueue(i int) <-chan Inbound { return u.queues[i] }

// Batched reports whether the recvmmsg fast path is active (Linux with
// Batch > 1); elsewhere the portable per-datagram reader runs.
func (u *UDP) Batched() bool { return u.batched }

// Pool returns the receive-buffer pool.
func (u *UDP) Pool() *BufPool { return u.pool }

// Addr implements Endpoint.
func (u *UDP) Addr() string { return u.conn.LocalAddr().String() }

// Close implements Endpoint.
func (u *UDP) Close() error {
	var err error
	u.once.Do(func() {
		close(u.closed)
		if u.conn != nil {
			err = u.conn.Close()
		}
	})
	return err
}

// Counters returns the endpoint's receive-path counter snapshot.
func (u *UDP) Counters() UDPCounters {
	depth := 0
	for _, q := range u.queues {
		depth += len(q)
	}
	return UDPCounters{
		Received:    u.received.Load(),
		Dropped:     u.dropped.Load(),
		RxBytes:     u.rxBytes.Load(),
		ReadRetries: u.readRetries.Load(),
		Batched:     u.batched,
		Batch:       u.opts.Batch,
		Queues:      len(u.queues),
		QueueDepth:  depth,
		Pool:        u.pool.Stats(),
	}
}

// Dropped returns how many datagrams were dropped at full ingest
// queues since the endpoint opened.
func (u *UDP) Dropped() uint64 { return u.dropped.Load() }

// InstrumentMetrics registers the endpoint's receive-path instruments
// in set. Counters are the same atomics the read loop already bumps,
// sampled at scrape time — nothing is added to the hot path.
func (u *UDP) InstrumentMetrics(set *metrics.Set) {
	set.CounterFunc("sfd_transport_received_total",
		"Datagrams delivered to an ingest queue.",
		u.received.Load)
	set.CounterFunc("sfd_transport_dropped_total",
		"Datagrams dropped because the ingest queue was full (consumer not draining).",
		u.dropped.Load)
	set.CounterFunc("sfd_transport_rx_bytes_total",
		"Payload bytes received.",
		u.rxBytes.Load)
	set.CounterFunc("sfd_transport_read_retries_total",
		"Transient socket read errors retried with backoff instead of killing the read loop.",
		u.readRetries.Load)
	set.CounterFunc("sfd_transport_pool_misses_total",
		"Receive-buffer pool misses (datagrams that fell back to a fresh allocation).",
		func() uint64 { return u.pool.Stats().Misses })
	set.GaugeFunc("sfd_transport_queue_depth",
		"Datagrams waiting across all ingest queues.",
		func() float64 {
			d := 0
			for _, q := range u.queues {
				d += len(q)
			}
			return float64(d)
		})
}

// fnv32a hashes a sender address for shard routing (FNV-1a, inlined to
// keep the receive path allocation-free).
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Pump drains an endpoint into a handler until the endpoint closes —
// the receive-loop glue for consumers that are not heartbeat Receivers
// (e.g. a gossip daemon sharing or owning a socket). It blocks; run it
// on its own goroutine:
//
//	go transport.Pump(ep, func(in transport.Inbound) { g.HandleDatagram(in.Payload) })
//
// Pump releases each datagram's pooled buffer after the handler
// returns, so the handler must not retain the payload.
func Pump(ep Endpoint, h func(Inbound)) {
	for in := range ep.Recv() {
		h(in)
		in.Release()
	}
}

// Hub is an in-memory datagram switchboard for tests: real-time (not
// simulated), optionally lossy and delayed, no sockets.
type Hub struct {
	mu        sync.Mutex
	endpoints map[string]*MemEndpoint
	lossRate  float64
	delay     time.Duration
	// rng drives loss decisions. *rand.Rand is not safe for concurrent
	// use; every access MUST hold mu (Send draws under mu — see the
	// concurrency stress test). Do not read it lock-free for "cheap"
	// randomness.
	rng *rand.Rand
}

// NewHub returns an empty hub. lossRate drops datagrams uniformly at
// random; delay postpones each delivery by a fixed amount.
func NewHub(lossRate float64, delay time.Duration, seed int64) *Hub {
	return &Hub{
		endpoints: make(map[string]*MemEndpoint),
		lossRate:  lossRate,
		delay:     delay,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Endpoint registers and returns an endpoint with the given address.
func (h *Hub) Endpoint(addr string) *MemEndpoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.endpoints[addr]; dup {
		panic(fmt.Sprintf("transport: duplicate hub endpoint %q", addr))
	}
	ep := &MemEndpoint{hub: h, addr: addr, recv: make(chan Inbound, 4096), closed: make(chan struct{})}
	h.endpoints[addr] = ep
	return ep
}

// MemEndpoint is an Endpoint attached to a Hub.
type MemEndpoint struct {
	hub    *Hub
	addr   string
	recv   chan Inbound
	closed chan struct{}
	once   sync.Once

	// closeMu serializes deliveries against Close: recv may only be
	// closed once no sender can still be inside a send (closing a
	// channel with concurrent senders is a race).
	closeMu  sync.RWMutex
	isClosed bool
}

// Send implements Endpoint.
func (m *MemEndpoint) Send(to string, payload []byte) error {
	select {
	case <-m.closed:
		return ErrClosed
	default:
	}
	h := m.hub
	h.mu.Lock()
	dst := h.endpoints[to]
	drop := h.lossRate > 0 && h.rng.Float64() < h.lossRate
	delay := h.delay
	h.mu.Unlock()
	if dst == nil {
		return fmt.Errorf("transport: unknown hub endpoint %q", to)
	}
	if drop {
		return nil
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	deliver := func() {
		dst.closeMu.RLock()
		defer dst.closeMu.RUnlock()
		if dst.isClosed {
			return
		}
		select {
		case dst.recv <- Inbound{From: m.addr, Payload: cp}:
		default:
		}
	}
	if delay > 0 {
		time.AfterFunc(delay, deliver)
	} else {
		deliver()
	}
	return nil
}

// Recv implements Endpoint.
func (m *MemEndpoint) Recv() <-chan Inbound { return m.recv }

// Addr implements Endpoint.
func (m *MemEndpoint) Addr() string { return m.addr }

// Close implements Endpoint.
func (m *MemEndpoint) Close() error {
	m.once.Do(func() {
		close(m.closed)
		m.hub.mu.Lock()
		delete(m.hub.endpoints, m.addr)
		m.hub.mu.Unlock()
		m.closeMu.Lock()
		m.isClosed = true
		close(m.recv)
		m.closeMu.Unlock()
	})
	return nil
}
