//go:build linux && (amd64 || arm64)

package transport

// The Linux fast path of the batched ingest loop: one recvmmsg(2)
// syscall fills up to Batch pooled buffers with datagrams and their
// source addresses. At heartbeat sizes the syscall dominates the
// per-datagram cost, so amortizing it over a batch is what moves the
// ceiling from ~100k streams to 1M+ — the same lever Dobre et al. pull
// for large-scale FD ingest, and the standard trick of every high-rate
// UDP server (QUIC stacks, DNS servers, mqtt brokers).
//
// The reader integrates with the runtime netpoller through
// syscall.RawConn.Read: the socket is already non-blocking, so EAGAIN
// parks the goroutine until readability instead of spinning, and Close
// on the net.UDPConn wakes it with net.ErrClosed like any blocked read.

import (
	"net"
	"net/netip"
	"syscall"
	"unsafe"
)

// mmsghdr mirrors struct mmsghdr on 64-bit Linux: a msghdr plus the
// kernel-written received length, padded to 8-byte alignment.
type mmsghdr struct {
	hdr syscall.Msghdr
	ln  uint32
	_   [4]byte
}

const sockaddrBuf = syscall.SizeofSockaddrInet6 // covers AF_INET too

// mmsgReader owns one preallocated scatter-gather table: batch slots of
// (pooled buffer, iovec, sockaddr buffer, mmsghdr). Slots whose buffer
// was handed to a consumer are re-armed from the pool on the next read;
// untouched slots keep their buffer, so a quiet socket recirculates
// nothing.
type mmsgReader struct {
	raw  syscall.RawConn
	pool *BufPool

	hs    []mmsghdr
	iovs  []syscall.Iovec
	names [][sockaddrBuf]byte
	bufs  [][]byte

	// recvFn is the RawConn.Read callback, built once at construction —
	// a per-read closure (and its captured result variables) would
	// allocate on every batch and break the zero-alloc steady state.
	// It leaves its results in n/errno.
	recvFn func(fd uintptr) bool
	n      int
	errno  syscall.Errno
}

// newReader builds the recvmmsg reader for batch > 1, falling back to
// the portable per-datagram reader for batch 1 or when the socket's
// RawConn is unavailable. The bool reports whether batching is active.
func newReader(conn *net.UDPConn, pool *BufPool, batch int) (udpReader, bool) {
	if batch <= 1 {
		return &singleReader{conn: conn, pool: pool}, false
	}
	raw, err := conn.SyscallConn()
	if err != nil {
		return &singleReader{conn: conn, pool: pool}, false
	}
	r := &mmsgReader{
		raw:   raw,
		pool:  pool,
		hs:    make([]mmsghdr, batch),
		iovs:  make([]syscall.Iovec, batch),
		names: make([][sockaddrBuf]byte, batch),
		bufs:  make([][]byte, batch),
	}
	for i := range r.hs {
		r.hs[i].hdr.Name = &r.names[i][0]
		r.hs[i].hdr.Iov = &r.iovs[i]
		r.hs[i].hdr.Iovlen = 1
	}
	r.recvFn = func(fd uintptr) bool {
		rn, _, e := syscall.Syscall6(syscall.SYS_RECVMMSG,
			fd,
			uintptr(unsafe.Pointer(&r.hs[0])),
			uintptr(len(r.hs)),
			uintptr(syscall.MSG_DONTWAIT),
			0, 0)
		r.n, r.errno = int(rn), e
		return r.errno != syscall.EAGAIN // false parks on the netpoller
	}
	return r, true
}

func (r *mmsgReader) read(emit func(netip.AddrPort, []byte)) error {
	for i := range r.hs {
		if r.bufs[i] == nil {
			b := r.pool.Get()
			r.bufs[i] = b
			r.iovs[i].Base = &b[0]
			r.iovs[i].SetLen(len(b))
		}
		// The kernel overwrites Namelen (and ln) per call; restore them.
		r.hs[i].hdr.Namelen = sockaddrBuf
		r.hs[i].ln = 0
	}

	err := r.raw.Read(r.recvFn)
	if err != nil {
		return err
	}
	if r.errno != 0 {
		return r.errno
	}
	for i := 0; i < r.n; i++ {
		payload := r.bufs[i][:r.hs[i].ln]
		r.bufs[i] = nil // ownership moves to the consumer
		emit(r.addrPort(i), payload)
	}
	return nil
}

// addrPort decodes slot i's raw sockaddr. IPv4-mapped IPv6 addresses
// (a dual-stack socket's view of IPv4 senders) are unmapped so From
// strings match what the portable reader and Send's resolver produce.
func (r *mmsgReader) addrPort(i int) netip.AddrPort {
	sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&r.names[i][0]))
	// Port sits in network byte order in both sockaddr_in and _in6.
	pb := (*[2]byte)(unsafe.Pointer(&sa.Port))
	port := uint16(pb[0])<<8 | uint16(pb[1])
	switch sa.Family {
	case syscall.AF_INET:
		return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), port)
	case syscall.AF_INET6:
		sa6 := (*syscall.RawSockaddrInet6)(unsafe.Pointer(&r.names[i][0]))
		return netip.AddrPortFrom(netip.AddrFrom16(sa6.Addr).Unmap(), port)
	default:
		return netip.AddrPort{}
	}
}
