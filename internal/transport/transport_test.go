package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestHubBasicDelivery(t *testing.T) {
	hub := NewHub(0, 0, 1)
	a := hub.Endpoint("a")
	b := hub.Endpoint("b")
	defer a.Close()
	defer b.Close()
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case in := <-b.Recv():
		if in.From != "a" || string(in.Payload) != "x" {
			t.Fatalf("got %+v", in)
		}
	case <-time.After(time.Second):
		t.Fatal("no delivery")
	}
}

func TestHubLoss(t *testing.T) {
	hub := NewHub(0.5, 0, 42)
	a := hub.Endpoint("a")
	b := hub.Endpoint("b")
	defer a.Close()
	defer b.Close()
	const total = 2000
	for i := 0; i < total; i++ {
		a.Send("b", []byte{1})
	}
	got := 0
	for {
		select {
		case <-b.Recv():
			got++
		default:
			goto done
		}
	}
done:
	if got < total/4 || got > 3*total/4 {
		t.Fatalf("50%% loss delivered %d of %d", got, total)
	}
}

func TestHubDelay(t *testing.T) {
	hub := NewHub(0, 30*time.Millisecond, 1)
	a := hub.Endpoint("a")
	b := hub.Endpoint("b")
	defer a.Close()
	defer b.Close()
	start := time.Now()
	a.Send("b", []byte("x"))
	select {
	case <-b.Recv():
		if el := time.Since(start); el < 25*time.Millisecond {
			t.Fatalf("delivered after %v, want ≥30ms", el)
		}
	case <-time.After(time.Second):
		t.Fatal("no delivery")
	}
}

func TestHubPayloadCopied(t *testing.T) {
	hub := NewHub(0, 0, 1)
	a := hub.Endpoint("a")
	b := hub.Endpoint("b")
	defer a.Close()
	defer b.Close()
	buf := []byte("abc")
	a.Send("b", buf)
	buf[0] = 'Z'
	in := <-b.Recv()
	if string(in.Payload) != "abc" {
		t.Fatalf("payload aliased: %q", in.Payload)
	}
}

func TestUDPAddrConcrete(t *testing.T) {
	ep, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if ep.Addr() == "127.0.0.1:0" || ep.Addr() == "" {
		t.Fatalf("Addr not concrete: %q", ep.Addr())
	}
}

func TestUDPRoundTrip(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Send(b.Addr(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case in := <-b.Recv():
		if string(in.Payload) != "ping" {
			t.Fatalf("payload %q", in.Payload)
		}
		// Reply to the observed source address.
		if err := b.Send(in.From, []byte("pong")); err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery a→b")
	}
	select {
	case in := <-a.Recv():
		if string(in.Payload) != "pong" {
			t.Fatalf("payload %q", in.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery b→a")
	}
}

func TestUDPResolveFailure(t *testing.T) {
	ep, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := ep.Send("not a valid : address : at all", []byte("x")); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestUDPCloseUnblocksRecv(t *testing.T) {
	ep, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for range ep.Recv() {
		}
		close(done)
	}()
	ep.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Recv not closed by Close")
	}
}

func TestUDPListenFailure(t *testing.T) {
	if _, err := ListenUDP("definitely-not-an-address"); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

func TestHubConcurrentSenders(t *testing.T) {
	hub := NewHub(0, 0, 1)
	dst := hub.Endpoint("dst")
	defer dst.Close()
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ep := hub.Endpoint(string(rune('a' + w)))
		wg.Add(1)
		go func(ep *MemEndpoint) {
			defer wg.Done()
			defer ep.Close()
			for i := 0; i < per; i++ {
				ep.Send("dst", []byte{byte(i)})
			}
		}(ep)
	}
	wg.Wait()
	got := 0
	for {
		select {
		case <-dst.Recv():
			got++
		default:
			if got != workers*per {
				t.Fatalf("delivered %d, want %d", got, workers*per)
			}
			return
		}
	}
}

// TestHubStressSendEndpointClose hammers one Hub from many goroutines
// mixing lossy Sends (which draw from the shared rng under hub.mu),
// Endpoint registration, and mid-flight Closes. It exists to run under
// `go test -race`: the hub's rng is a plain *rand.Rand guarded only by
// hub.mu, and this is the test that proves no path touches it unlocked.
func TestHubStressSendEndpointClose(t *testing.T) {
	hub := NewHub(0.3, 0, 42) // lossy: every Send exercises the rng
	dst := hub.Endpoint("dst")
	defer dst.Close()

	// One drainer keeps dst's buffer from filling.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range dst.Recv() {
		}
	}()

	const workers, rounds = 16, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Fresh endpoint per round: registration, sends to the
				// shared destination and to a vanishing peer, then close
				// — all racing with the other 15 workers.
				ep := hub.Endpoint(fmt.Sprintf("w%d-r%d", w, r))
				for i := 0; i < 5; i++ {
					_ = ep.Send("dst", []byte{byte(w), byte(r), byte(i)})
					_ = ep.Send(fmt.Sprintf("w%d-r%d", (w+1)%workers, r), []byte{0})
				}
				if err := ep.Close(); err != nil {
					t.Errorf("close: %v", err)
					return
				}
				if err := ep.Send("dst", nil); err != ErrClosed {
					t.Errorf("send after close: %v, want ErrClosed", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	dst.Close()
	<-drained
}

func TestMemEndpointDoubleClose(t *testing.T) {
	hub := NewHub(0, 0, 1)
	a := hub.Endpoint("a")
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal("double close errored")
	}
}

func TestUDPPeerCacheLRU(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.SetPeerCache(8)

	// Churn through 5× the cap; occupancy must stay bounded.
	for i := 0; i < 40; i++ {
		if err := a.Send(fmt.Sprintf("127.0.0.1:%d", 20000+i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if n := a.PeerCacheLen(); n != 8 {
		t.Fatalf("peer cache length %d after churn, want 8", n)
	}

	// Recency: re-sending to the oldest survivor keeps it cached when
	// a new peer evicts — the eviction victim is the LRU entry, not it.
	oldest := "127.0.0.1:20032" // positions 32..39 survived; 32 is LRU
	if err := a.Send(oldest, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("127.0.0.1:21000", []byte("x")); err != nil {
		t.Fatal(err)
	}
	a.mu.Lock()
	_, stillThere := a.peers[oldest]
	_, evicted := a.peers["127.0.0.1:20033"]
	a.mu.Unlock()
	if !stillThere {
		t.Fatal("recently-used entry was evicted")
	}
	if evicted {
		t.Fatal("LRU entry survived eviction")
	}

	// Shrinking the cap evicts down to it.
	a.SetPeerCache(2)
	if n := a.PeerCacheLen(); n != 2 {
		t.Fatalf("peer cache length %d after shrink, want 2", n)
	}
}
