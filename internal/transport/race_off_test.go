//go:build !race

package transport

// raceEnabled gates allocation assertions: the race detector instruments
// allocations, so zero-alloc tests only run in normal builds.
const raceEnabled = false
