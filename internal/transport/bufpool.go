package transport

import "sync/atomic"

// BufPool is a channel-based pool of fixed-size receive buffers — the
// allocation backstop of the batched ingest path. The receive loop Gets
// a buffer per datagram slot; whoever consumes the Inbound Puts it back
// (Inbound.Release). The channel IS the free list: Get prefers a pooled
// buffer and falls back to a fresh allocation when the pool runs dry
// (counted as a miss), Put returns a buffer unless the pool is already
// full (counted as a discard, and the buffer falls to the GC). The pool
// therefore never blocks either side and holds at most `buffers`
// idle buffers; steady-state traffic with prompt releases recirculates
// the same backing arrays and the hot path stops allocating per
// datagram.
//
// A zero or nil pool is not usable; construct with NewBufPool.
type BufPool struct {
	ch   chan []byte
	size int

	gets     atomic.Uint64
	misses   atomic.Uint64
	puts     atomic.Uint64
	discards atomic.Uint64
}

// BufPoolStats is a point-in-time counter snapshot.
type BufPoolStats struct {
	Gets     uint64 `json:"gets"`     // buffers handed out
	Misses   uint64 `json:"misses"`   // Gets served by a fresh allocation
	Puts     uint64 `json:"puts"`     // buffers returned
	Discards uint64 `json:"discards"` // returns dropped (pool full or wrong size)
	Idle     int    `json:"idle"`     // buffers currently pooled
	Cap      int    `json:"cap"`      // pool capacity
	BufSize  int    `json:"buf_size"` // bytes per buffer
}

// NewBufPool builds a pool of up to `buffers` buffers of `size` bytes
// each. Nothing is preallocated: memory is only committed for buffers
// actually in circulation, so a large cap costs nothing until traffic
// needs it. Non-positive arguments take defaults (256 buffers, 64 KiB).
func NewBufPool(buffers, size int) *BufPool {
	if buffers <= 0 {
		buffers = 256
	}
	if size <= 0 {
		size = maxDatagram
	}
	return &BufPool{ch: make(chan []byte, buffers), size: size}
}

// BufSize returns the fixed per-buffer size.
func (p *BufPool) BufSize() int { return p.size }

// Get returns a buffer of exactly BufSize bytes: pooled if one is idle,
// freshly allocated otherwise.
func (p *BufPool) Get() []byte {
	p.gets.Add(1)
	select {
	case b := <-p.ch:
		return b
	default:
		p.misses.Add(1)
		return make([]byte, p.size)
	}
}

// Put returns a buffer to the pool. The buffer may have been resliced
// shorter (payload trimming keeps the backing array); Put restores the
// full length from its capacity. A buffer whose capacity no longer
// matches the pool's size — one that was resliced off its base or came
// from elsewhere — is discarded rather than poisoning the pool, as is
// any return beyond the pool's capacity.
func (p *BufPool) Put(b []byte) {
	if cap(b) != p.size {
		p.discards.Add(1)
		return
	}
	p.puts.Add(1)
	select {
	case p.ch <- b[:p.size]:
	default:
		p.discards.Add(1)
	}
}

// Stats returns the pool's counter snapshot.
func (p *BufPool) Stats() BufPoolStats {
	return BufPoolStats{
		Gets:     p.gets.Load(),
		Misses:   p.misses.Load(),
		Puts:     p.puts.Load(),
		Discards: p.discards.Load(),
		Idle:     len(p.ch),
		Cap:      cap(p.ch),
		BufSize:  p.size,
	}
}
