package transport

import (
	"errors"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"
)

// --- drop accounting -------------------------------------------------

// TestUDPDropCounterMoves is the regression test for the silent-drop
// bug: with nobody draining and a tiny ingest queue, overflow datagrams
// used to vanish without a trace. Now they must move the drop counter
// (and only the queue's capacity may be counted as received).
func TestUDPDropCounterMoves(t *testing.T) {
	ep, err := ListenUDPOpts("127.0.0.1:0", UDPOptions{QueueLen: 4, Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	sender, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	dst, err := netip.ParseAddrPort(ep.Addr())
	if err != nil {
		t.Fatal(err)
	}

	// Blast until the queue has demonstrably overflowed. Loopback can
	// shed datagrams below us, so send in rounds rather than assuming
	// every write arrives.
	payload := []byte("overflow-me")
	deadline := time.Now().Add(5 * time.Second)
	for ep.Dropped() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("drop counter never moved; counters %+v", ep.Counters())
		}
		for i := 0; i < 64; i++ {
			if _, err := sender.WriteToUDPAddrPort(payload, dst); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	c := ep.Counters()
	if c.Dropped == 0 {
		t.Fatal("dropped counter is zero after overflow")
	}
	if c.Received > uint64(4) {
		t.Fatalf("received %d datagrams into a 4-slot queue nobody drained", c.Received)
	}
	// The queued datagrams must still be deliverable after the overflow.
	select {
	case in := <-ep.Recv():
		if string(in.Payload) != "overflow-me" {
			t.Fatalf("corrupt payload %q", in.Payload)
		}
		in.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("queued datagram not delivered after overflow")
	}
}

// --- read-loop error policy ------------------------------------------

// scriptReader replays a scripted sequence of read outcomes, then
// blocks until released — a stand-in for the socket that lets the test
// drive readLoop through error paths no real socket produces on demand.
type scriptReader struct {
	mu      sync.Mutex
	script  []scriptStep
	release chan struct{}
}

type scriptStep struct {
	err  error
	from netip.AddrPort
	data []byte
}

func (r *scriptReader) read(emit func(netip.AddrPort, []byte)) error {
	r.mu.Lock()
	if len(r.script) == 0 {
		r.mu.Unlock()
		<-r.release
		return net.ErrClosed
	}
	step := r.script[0]
	r.script = r.script[1:]
	r.mu.Unlock()
	if step.err != nil {
		return step.err
	}
	emit(step.from, step.data)
	return nil
}

// transientErr is a non-timeout net.Error — the class that used to kill
// the read loop permanently.
type transientErr struct{}

func (transientErr) Error() string   { return "transient socket error" }
func (transientErr) Timeout() bool   { return false }
func (transientErr) Temporary() bool { return true }

// timeoutErr is a timeout net.Error — retried without backoff.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

// TestReadLoopSurvivesTransientErrors is the regression test for the
// fatal-read-error bug: the loop used to return on the first non-timeout
// error, closing Recv and silently killing the endpoint. It must instead
// retry with backoff and deliver the datagrams that follow.
func TestReadLoopSurvivesTransientErrors(t *testing.T) {
	from := netip.MustParseAddrPort("10.0.0.9:4100")
	r := &scriptReader{
		release: make(chan struct{}),
		script: []scriptStep{
			{err: transientErr{}},
			{err: timeoutErr{}},
			{err: transientErr{}},
			{from: from, data: []byte("after-the-storm")},
		},
	}
	u := newUDP(UDPOptions{Batch: 1})
	u.reader = r
	done := make(chan struct{})
	go func() { u.readLoop(); close(done) }()

	select {
	case in := <-u.Recv():
		if in.From != "10.0.0.9:4100" || string(in.Payload) != "after-the-storm" {
			t.Fatalf("got %q from %q", in.Payload, in.From)
		}
		in.Release()
	case <-time.After(5 * time.Second):
		t.Fatal("datagram after transient errors never delivered: read loop died")
	}
	if got := u.Counters().ReadRetries; got != 2 {
		t.Fatalf("ReadRetries = %d, want 2 (timeouts are not retries)", got)
	}

	// Closing the endpoint must terminate the loop and close the queues.
	close(u.closed)
	close(r.release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("read loop did not exit on close")
	}
	if _, ok := <-u.Recv(); ok {
		t.Fatal("Recv channel not closed after loop exit")
	}
}

// TestReadLoopExitsOnNetErrClosed verifies the other half of the error
// policy: a closed socket ends the loop even if the endpoint's own
// closed channel hasn't been signalled yet.
func TestReadLoopExitsOnNetErrClosed(t *testing.T) {
	r := &scriptReader{
		release: make(chan struct{}),
		script:  []scriptStep{{err: net.ErrClosed}},
	}
	u := newUDP(UDPOptions{})
	u.reader = r
	done := make(chan struct{})
	go func() { u.readLoop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("read loop did not exit on net.ErrClosed")
	}
	if u.Counters().ReadRetries != 0 {
		t.Fatal("close must not count as a retry")
	}
}

// TestReadLoopWrappedErrClosed: the loop must classify wrapped
// net.ErrClosed (as RawConn read errors arrive) via errors.Is.
func TestReadLoopWrappedErrClosed(t *testing.T) {
	wrapped := &net.OpError{Op: "read", Net: "udp", Err: net.ErrClosed}
	if !errors.Is(wrapped, net.ErrClosed) {
		t.Fatal("test premise broken")
	}
	r := &scriptReader{release: make(chan struct{}), script: []scriptStep{{err: wrapped}}}
	u := newUDP(UDPOptions{})
	u.reader = r
	done := make(chan struct{})
	go func() { u.readLoop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("read loop did not exit on wrapped net.ErrClosed")
	}
}

// --- buffer pool ------------------------------------------------------

// TestBufPoolExhaustionAndReuse is the pool's property test: misses are
// fresh allocations, returns recirculate, overflow and foreign buffers
// are discarded, and a recycled Get hands back the same backing array.
func TestBufPoolExhaustionAndReuse(t *testing.T) {
	p := NewBufPool(2, 1024)

	// Exhaustion: every Get from an empty pool is a miss, never nil.
	a, b, c := p.Get(), p.Get(), p.Get()
	for i, buf := range [][]byte{a, b, c} {
		if len(buf) != 1024 {
			t.Fatalf("buf %d: len %d, want 1024", i, len(buf))
		}
	}
	if s := p.Stats(); s.Gets != 3 || s.Misses != 3 {
		t.Fatalf("after 3 dry Gets: %+v", s)
	}

	// Reuse: returns land in the pool, and Get hands the same arrays back.
	p.Put(a)
	p.Put(b)
	if s := p.Stats(); s.Idle != 2 || s.Puts != 2 {
		t.Fatalf("after 2 Puts: %+v", s)
	}
	p.Put(c) // pool full: discarded
	if s := p.Stats(); s.Discards != 1 || s.Idle != 2 {
		t.Fatalf("overflow Put not discarded: %+v", s)
	}
	seen := map[*byte]bool{&a[0]: true, &b[0]: true}
	for i := 0; i < 2; i++ {
		g := p.Get()
		if !seen[&g[0]] {
			t.Fatalf("Get %d returned a buffer not previously Put", i)
		}
		delete(seen, &g[0])
	}
	if s := p.Stats(); s.Misses != 3 {
		t.Fatalf("pooled Gets counted as misses: %+v", s)
	}

	// A payload-trimmed buffer recycles at full length.
	p.Put(a[:7])
	g := p.Get()
	if len(g) != 1024 || &g[0] != &a[0] {
		t.Fatal("trimmed buffer not restored to full length on reuse")
	}

	// Foreign buffers (wrong backing size) never enter the pool.
	p.Put(make([]byte, 512))
	p.Put(make([]byte, 4096))
	if s := p.Stats(); s.Idle != 0 || s.Discards != 3 {
		t.Fatalf("foreign buffers not discarded: %+v", s)
	}
}

// TestBufPoolDefaults covers the constructor's defaulting contract.
func TestBufPoolDefaults(t *testing.T) {
	p := NewBufPool(0, 0)
	if s := p.Stats(); s.Cap != 256 || s.BufSize != maxDatagram {
		t.Fatalf("defaults: %+v", s)
	}
	if got := len(p.Get()); got != maxDatagram {
		t.Fatalf("default buffer len %d", got)
	}
}

// --- zero-allocation steady state ------------------------------------

// TestUDPSteadyStateZeroAllocs sends one datagram per iteration through
// a real socket and requires the receive path — read, pool, From-string
// cache, queue, Release — to allocate nothing once warm.
func TestUDPSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations")
	}
	ep, err := ListenUDPOpts("127.0.0.1:0", UDPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	sender, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	dst, err := netip.ParseAddrPort(ep.Addr())
	if err != nil {
		t.Fatal(err)
	}

	payload := []byte("steady-state-heartbeat")
	roundTrip := func() {
		if _, err := sender.WriteToUDPAddrPort(payload, dst); err != nil {
			t.Fatal(err)
		}
		in := <-ep.Recv()
		in.Release()
	}
	// Warm the pool, the From cache, and the sender's route.
	for i := 0; i < 64; i++ {
		roundTrip()
	}
	if avg := testing.AllocsPerRun(200, roundTrip); avg > 0 {
		t.Fatalf("receive path allocates %.2f allocs/datagram in steady state, want 0 (pool %+v)",
			avg, ep.Pool().Stats())
	}
	if misses := ep.Pool().Stats().Misses; misses > uint64(ep.Pool().Stats().Cap) {
		t.Fatalf("pool keeps missing in steady state: %+v", ep.Pool().Stats())
	}
}

// --- sharded queues ---------------------------------------------------

// TestUDPQueueShardingBySender verifies that multi-queue routing is
// per-sender sticky and covers every configured queue given enough
// distinct senders.
func TestUDPQueueShardingBySender(t *testing.T) {
	u := newUDP(UDPOptions{Queues: 4, Batch: 1})
	if len(u.queues) != 4 {
		t.Fatalf("queues = %d", len(u.queues))
	}
	hit := make(map[int]bool)
	for s := 0; s < 64; s++ {
		ap := netip.AddrPortFrom(netip.MustParseAddr("10.1.2.3"), uint16(20000+s))
		want := int(fnv32a(ap.String()) & u.qmask)
		for rep := 0; rep < 3; rep++ {
			u.emit(ap, []byte("x"))
		}
		for i := range u.queues {
			for len(u.queues[i]) > 0 {
				in := <-u.queues[i]
				if i != want {
					t.Fatalf("sender %s landed on queue %d, want %d", in.From, i, want)
				}
				hit[i] = true
			}
		}
	}
	if len(hit) != 4 {
		t.Fatalf("only %d of 4 queues used across 64 senders", len(hit))
	}
}

// TestUDPOptionsNormalize pins the documented defaults and the
// power-of-two queue rounding.
func TestUDPOptionsNormalize(t *testing.T) {
	o := UDPOptions{Queues: 5}
	o.normalize()
	if o.Queues != 8 || o.QueueLen != 4096 || o.Batch != 32 || o.Pool == nil {
		t.Fatalf("normalized: %+v", o)
	}
	if o.Pool.BufSize() != maxDatagram {
		t.Fatalf("pool buf size %d", o.Pool.BufSize())
	}
}

// --- batched vs per-datagram benchmark --------------------------------

// benchIngest times receiving b.N datagrams through drain. Each round
// fills the kernel socket buffer off the clock, then times draining it
// — so the measurement is receive-path cost per datagram, not sender
// throughput, and holds on single-core CI machines where a blast-sender
// design would just measure scheduler contention. drain consumes at
// least `want` datagrams and returns how many it took (a batched read
// may overshoot); returning 0 signals a read deadline (round shed by
// loopback — refill).
func benchIngest(b *testing.B, conn *net.UDPConn, drain func(want int) int) {
	b.Helper()
	snd, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		b.Fatal(err)
	}
	defer snd.Close()
	dst, err := netip.ParseAddrPort(conn.LocalAddr().String())
	if err != nil {
		b.Fatal(err)
	}

	// chunk × (payload + per-skb overhead) stays under the default
	// 208 KiB socket buffer, so an unforced SetReadBuffer can't silently
	// shed half the round.
	const chunk = 256
	payload := make([]byte, 64)
	b.SetBytes(64)
	b.ResetTimer()
	for count := 0; count < b.N; {
		b.StopTimer()
		_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		for i := 0; i < chunk; i++ {
			if _, err := snd.WriteToUDPAddrPort(payload, dst); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		count += drain(chunk)
	}
}

// BenchmarkUDPReadLoop compares the per-datagram receive cost of the
// pre-batching ingest loop against the shipped batched path:
//
//   - perdatagram replicates what the read loop did before this ingest
//     path existed: one ReadFromUDP per datagram, a fresh payload copy,
//     a *net.UDPAddr and its rendered string per datagram.
//   - batched is the shipped path: recvmmsg into pooled buffers with
//     the From-string cache (portable pooled reader off Linux).
//
// CI gates batched ≥ 1.5× perdatagram throughput on Linux — observed
// ~1.8–1.9× on 1-vCPU CI-class VMs (the margin absorbs runner noise;
// multi-core bare metal measures higher, as the syscall fraction the
// batch amortizes is larger there).
func BenchmarkUDPReadLoop(b *testing.B) {
	b.Run("perdatagram", func(b *testing.B) {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		buf := make([]byte, maxDatagram)
		var sink Inbound
		benchIngest(b, conn, func(want int) int {
			got := 0
			for got < want {
				n, from, err := conn.ReadFromUDP(buf)
				if err != nil {
					if ne, ok := err.(net.Error); ok && ne.Timeout() {
						break
					}
					b.Fatal(err)
				}
				payload := make([]byte, n)
				copy(payload, buf[:n])
				sink = Inbound{From: from.String(), Payload: payload}
				got++
			}
			return got
		})
		_ = sink
	})
	b.Run("batched", func(b *testing.B) {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		pool := NewBufPool(256, 2048)
		reader, _ := newReader(conn, pool, 32)
		fromCache := make(map[netip.AddrPort]string)
		var sink Inbound
		got := 0
		emit := func(ap netip.AddrPort, p []byte) {
			from, ok := fromCache[ap]
			if !ok {
				from = ap.String()
				fromCache[ap] = from
			}
			sink = Inbound{From: from, Payload: p, pool: pool}
			sink.Release()
			got++
		}
		benchIngest(b, conn, func(want int) int {
			got = 0
			for got < want {
				if err := reader.read(emit); err != nil {
					if ne, ok := err.(net.Error); ok && ne.Timeout() {
						break
					}
					b.Fatal(err)
				}
			}
			return got
		})
	})
}
