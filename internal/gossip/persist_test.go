package gossip

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/detector"
	"repro/internal/persist"
	"repro/internal/registry"
)

func sampleGossipRecord() *persist.GossipRecord {
	return &persist.GossipRecord{
		ID:          "mon-a",
		MistakeRate: 0.125,
		Seq:         42,
		Weights:     []persist.MonitorWeight{{Monitor: "mon-b", Weight: 0.75}},
		Opinions: []persist.OpinionRecord{
			{Subject: "srv-1", Monitor: "mon-b", State: uint8(StateSuspect),
				Inc: 2, Level: 1.5, Seq: 7, At: clock.Time(clock.Second)},
		},
		Verdicts: []persist.VerdictRecord{{Subject: "srv-1", State: uint8(StateSuspect)}},
		Suspects: []string{"srv-1"},
	}
}

func TestGossipStateRoundTrip(t *testing.T) {
	_, _, g, _, _ := newTestRig(t, Options{Seed: 1})
	now := clock.Time(5 * clock.Second)
	g.ImportState(sampleGossipRecord(), now)

	rec := g.ExportState(now)
	if rec.Seq != 42 {
		t.Fatalf("Seq = %d, want 42", rec.Seq)
	}
	if rec.MistakeRate != 0.125 {
		t.Fatalf("MistakeRate = %g", rec.MistakeRate)
	}
	if len(rec.Weights) != 1 || rec.Weights[0] != (persist.MonitorWeight{Monitor: "mon-b", Weight: 0.75}) {
		t.Fatalf("Weights = %+v", rec.Weights)
	}
	if len(rec.Opinions) != 1 || rec.Opinions[0].Seq != 7 || rec.Opinions[0].At != clock.Time(clock.Second) {
		t.Fatalf("Opinions = %+v", rec.Opinions)
	}
	if len(rec.Verdicts) != 1 || rec.Verdicts[0].Subject != "srv-1" {
		t.Fatalf("Verdicts = %+v", rec.Verdicts)
	}
	if g.VerdictOf("srv-1") != StateSuspect {
		t.Fatalf("VerdictOf(srv-1) = %v", g.VerdictOf("srv-1"))
	}
}

func TestGossipImportNeverRegressesSeq(t *testing.T) {
	_, _, g, _, _ := newTestRig(t, Options{Seed: 1})
	now := clock.Time(clock.Second)
	g.ImportState(sampleGossipRecord(), now)

	older := sampleGossipRecord()
	older.Seq = 5
	g.ImportState(older, now)
	if got := g.ExportState(now).Seq; got != 42 {
		t.Fatalf("Seq regressed to %d after importing an older record", got)
	}
}

func TestGossipImportSkipsInvalidEntries(t *testing.T) {
	_, _, g, _, _ := newTestRig(t, Options{Seed: 1})
	now := clock.Time(clock.Second)
	rec := &persist.GossipRecord{
		MistakeRate: 2.0, // out of [0,1]
		Weights: []persist.MonitorWeight{
			{Monitor: "", Weight: 0.5},
			{Monitor: "mon-b", Weight: 1.5},
		},
		Opinions: []persist.OpinionRecord{
			{Subject: "", Monitor: "mon-b", State: uint8(StateSuspect)},
			{Subject: "srv-1", Monitor: "mon-b", State: 99},
		},
		Verdicts: []persist.VerdictRecord{{Subject: "srv-1", State: 99}},
		Suspects: []string{""},
	}
	g.ImportState(rec, now)
	out := g.ExportState(now)
	if out.MistakeRate != 0 || len(out.Weights) != 0 || len(out.Opinions) != 0 ||
		len(out.Verdicts) != 0 || len(out.Suspects) != 0 {
		t.Fatalf("invalid entries imported: %+v", out)
	}
}

func TestGossipImportClampsFutureInstants(t *testing.T) {
	_, _, g, _, _ := newTestRig(t, Options{Seed: 1})
	now := clock.Time(clock.Second)
	rec := sampleGossipRecord()
	rec.Opinions[0].At = now.Add(clock.Second) // clock skew: future-dated
	g.ImportState(rec, now)
	if got := g.ExportState(now).Opinions[0].At; got != now {
		t.Fatalf("future-dated opinion At = %v, want clamped to %v", got, now)
	}
}

// TestGossipSurvivesRestart is the wiring drill: a gossiper attached to a
// persistence-enabled registry rides in its snapshots and is handed back
// to the next life's gossiper at construction.
func TestGossipSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ropts := registry.Options{
		WheelTick:    10 * clock.Millisecond,
		OfflineAfter: 300 * clock.Millisecond,
		MaxSilence:   2 * clock.Second,
		EvictAfter:   -1,
		StateDir:     dir,
	}
	factory := func(string) detector.Detector { return detector.NewFixed(300*clock.Millisecond, 0) }

	sim1 := clock.NewSim(0)
	r1 := registry.New(sim1, factory, ropts)
	r1.Start()
	g1 := New(&stubEP{addr: "mon-a"}, sim1, r1, []string{"mon-b"}, Options{Seed: 1})
	g1.ImportState(sampleGossipRecord(), sim1.Now())
	beat(r1, sim1, "srv-1", 1, 2)
	sim1.Advance(100 * clock.Millisecond)
	g1.Stop()
	r1.Stop() // final snapshot carries the gossip record

	sim2 := clock.NewSim(0)
	r2 := registry.New(sim2, factory, ropts)
	if _, err := r2.RestoreFromDisk(50 * clock.Millisecond); err != nil {
		t.Fatalf("RestoreFromDisk: %v", err)
	}
	r2.Start()
	defer r2.Stop()
	g2 := New(&stubEP{addr: "mon-a"}, sim2, r2, []string{"mon-b"}, Options{Seed: 1})
	defer g2.Stop()

	rec := g2.ExportState(sim2.Now())
	if rec.Seq < 42 {
		t.Fatalf("digest seq regressed across restart: %d", rec.Seq)
	}
	if g2.VerdictOf("srv-1") != StateSuspect {
		t.Fatalf("verdict lost across restart: %v", g2.VerdictOf("srv-1"))
	}
	if len(rec.Opinions) != 1 || rec.Opinions[0].Monitor != "mon-b" {
		t.Fatalf("opinion table lost across restart: %+v", rec.Opinions)
	}
	// The record is claimed exactly once; a third party gets nothing.
	if got := r2.ClaimRestoredGossip(); got != nil {
		t.Fatalf("restored gossip claimable twice: %+v", got)
	}
}
