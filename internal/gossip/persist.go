package gossip

import (
	"repro/internal/clock"
	"repro/internal/persist"
)

// ExportState captures the gossiper's tables as a persistence record:
// the opinion tables, peer weights, published verdicts, the local
// suspect set, the mistake-rate EWMA behind this monitor's self-reported
// weight, and — critically — the digest sequence number. Peers keep only
// the newest opinion per (subject, monitor) keyed by Seq, so a monitor
// that restarted at seq 0 would have every digest dropped until it
// out-counted its old life; restoring Seq keeps it audible immediately.
func (g *Gossiper) ExportState(now clock.Time) *persist.GossipRecord {
	g.mu.Lock()
	defer g.mu.Unlock()
	rec := &persist.GossipRecord{
		ID:          g.id,
		MistakeRate: g.mistakeRate,
		Seq:         g.seq,
	}
	for mon, w := range g.weights {
		rec.Weights = append(rec.Weights, persist.MonitorWeight{Monitor: mon, Weight: w})
	}
	for subject, byMon := range g.remote {
		for mon, op := range byMon {
			rec.Opinions = append(rec.Opinions, persist.OpinionRecord{
				Subject: subject,
				Monitor: mon,
				State:   uint8(op.State),
				Inc:     op.Inc,
				Level:   op.Level,
				Seq:     op.seq,
				At:      op.at,
			})
		}
	}
	for subject, st := range g.verdict {
		rec.Verdicts = append(rec.Verdicts, persist.VerdictRecord{Subject: subject, State: uint8(st)})
	}
	for subject := range g.suspects {
		rec.Suspects = append(rec.Suspects, subject)
	}
	return rec
}

// ImportState restores a persisted gossip record (clock fields already
// rebased by the persistence layer). The digest sequence takes the max
// of the restored and current values, so Seq never regresses even if a
// few digests went out before the restore landed. Invalid entries are
// skipped rather than failing the whole import — the tables are
// self-healing via anti-entropy anyway.
func (g *Gossiper) ImportState(rec *persist.GossipRecord, now clock.Time) {
	if rec == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if rec.Seq > g.seq {
		g.seq = rec.Seq
	}
	if rec.MistakeRate >= 0 && rec.MistakeRate <= 1 {
		g.mistakeRate = rec.MistakeRate
	}
	for _, w := range rec.Weights {
		if w.Monitor == "" || w.Weight < 0 || w.Weight > 1 {
			continue
		}
		g.weights[w.Monitor] = w.Weight
	}
	for _, o := range rec.Opinions {
		if o.Subject == "" || o.Monitor == "" || State(o.State) > StateOffline {
			continue
		}
		byMon := g.remote[o.Subject]
		if byMon == nil {
			byMon = make(map[string]remoteOpinion)
			g.remote[o.Subject] = byMon
		}
		if cur, ok := byMon[o.Monitor]; ok && cur.seq >= o.Seq {
			continue // a live digest already superseded the snapshot
		}
		// Rebased receive instants stay truthful: the TTL keeps counting
		// across the outage, so opinions from monitors that went quiet
		// before the crash still expire on schedule. Only unset or
		// future-dated (clock-skewed) instants are clamped.
		at := o.At
		if at == 0 || at.After(now) {
			at = now
		}
		byMon[o.Monitor] = remoteOpinion{
			Opinion: Opinion{
				Subject: o.Subject,
				State:   State(o.State),
				Inc:     o.Inc,
				Level:   o.Level,
			},
			seq: o.Seq,
			at:  at,
		}
	}
	for _, v := range rec.Verdicts {
		if v.Subject == "" || State(v.State) > StateOffline {
			continue
		}
		g.verdict[v.Subject] = State(v.State)
	}
	for _, s := range rec.Suspects {
		if s != "" {
			g.suspects[s] = struct{}{}
		}
	}
}
