package gossip

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/registry"
)

// Endpoint is the datagram surface the gossiper sends on. Both
// transport.Endpoint (live UDP / in-memory hub) and *netsim.Node
// (deterministic simulation) satisfy it; receiving is wired externally
// by feeding datagrams to HandleDatagram, so one socket can carry both
// heartbeat and gossip traffic (the magic bytes discriminate).
type Endpoint interface {
	Send(to string, payload []byte) error
	Addr() string
}

// Options tunes a Gossiper. Zero values take the documented defaults.
type Options struct {
	// ID identifies this monitor in digests (default: the endpoint
	// address).
	ID string
	// Interval is the anti-entropy round period (default 250 ms).
	Interval clock.Duration
	// Fanout is how many random peer monitors receive a digest each
	// round (default 2, capped at the peer count).
	Fanout int
	// Quorum is the minimum number of concurring monitors — self
	// included — required for a global verdict (default 2).
	Quorum int
	// MinMass is the weighted-sum threshold the concurring monitors must
	// also reach, each contributing its accuracy weight in
	// [WeightFloor, 1] (default 0.75 × Quorum). Monitors with a poor
	// recent mistake rate therefore need extra corroboration — the
	// Impact FD idea.
	MinMass float64
	// WeightFloor is the minimum weight a mistake-prone monitor retains,
	// so no monitor is ever fully ignored (default 0.25).
	WeightFloor float64
	// MistakeGain is the EWMA gain of the mistake-rate estimate behind
	// this monitor's self-reported weight (default 0.2).
	MistakeGain float64
	// OpinionTTL expires remote opinions whose reporting monitor has
	// gone quiet (default 30 s); a dead monitor cannot hold a suspicion
	// (or a refutation) forever.
	OpinionTTL clock.Duration
	// Seed drives peer selection (deterministic tests set it; 0 means 1).
	Seed int64
}

func (o *Options) normalize() {
	if o.Interval <= 0 {
		o.Interval = 250 * clock.Millisecond
	}
	if o.Fanout <= 0 {
		o.Fanout = 2
	}
	if o.Quorum <= 0 {
		o.Quorum = 2
	}
	if o.WeightFloor <= 0 || o.WeightFloor > 1 {
		o.WeightFloor = 0.25
	}
	if o.MinMass <= 0 {
		o.MinMass = 0.75 * float64(o.Quorum)
	}
	if o.MistakeGain <= 0 || o.MistakeGain > 1 {
		o.MistakeGain = 0.2
	}
	if o.OpinionTTL <= 0 {
		o.OpinionTTL = 30 * clock.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Counters is the gossiper's monotonic counter snapshot.
type Counters struct {
	DigestsSent     uint64 `json:"digests_sent"`
	DigestsReceived uint64 `json:"digests_received"`
	DigestsBad      uint64 `json:"digests_bad"`
	EntriesMerged   uint64 `json:"entries_merged"`
	GlobalSuspects  uint64 `json:"global_suspects"`
	GlobalOfflines  uint64 `json:"global_offlines"`
	GlobalTrusts    uint64 `json:"global_trusts"`
	RemoteOpinions  int    `json:"remote_opinions"` // gauge
	OpenVerdicts    int    `json:"open_verdicts"`   // gauge: non-trusted verdicts
}

// Gossiper is one monitor's membership in the dissemination fabric. It
// reads local opinions from a Registry, exchanges digests with peer
// monitors, and publishes corroborated Global* verdicts back onto the
// registry's failure-event bus. All methods are safe for concurrent use.
type Gossiper struct {
	id    string
	ep    Endpoint
	clk   clock.Clock
	reg   *registry.Registry
	peers []string
	opts  Options

	mu sync.Mutex
	// suspects is the locally non-trusted subject set, maintained from
	// the registry's bus events (suspect/offline add; trust/evict drop).
	suspects map[string]struct{}
	// remote holds the newest opinion per (subject, reporting monitor).
	remote map[string]map[string]remoteOpinion
	// weights is each peer monitor's last self-reported accuracy weight.
	weights map[string]float64
	// verdict is the last published global state per subject (absent =
	// trusted with nothing pending).
	verdict map[string]State
	// episodes tracks open local suspicion episodes for mistake-rate
	// accounting: subject → suspicion start.
	episodes map[string]struct{}
	// mistakeRate is the EWMA of suspicion-episode outcomes (1 =
	// mistake, i.e. the suspect recovered; 0 = confirmed offline).
	mistakeRate float64
	rng         *rand.Rand
	seq         uint64

	sub *registry.Subscription

	digestsSent     atomic.Uint64
	digestsReceived atomic.Uint64
	digestsBad      atomic.Uint64
	entriesMerged   atomic.Uint64
	globalSuspects  atomic.Uint64
	globalOfflines  atomic.Uint64
	globalTrusts    atomic.Uint64
	opinionsExpired atomic.Uint64

	started atomic.Bool
	stopped atomic.Bool
	stopc   chan struct{}
}

// New builds a Gossiper for the monitor owning reg, gossiping over ep
// with the given peer monitor addresses. A nil clock defaults to the
// real clock. Call Start to begin anti-entropy rounds and feed received
// datagrams to HandleDatagram.
func New(ep Endpoint, clk clock.Clock, reg *registry.Registry, peers []string, opts Options) *Gossiper {
	if clk == nil {
		clk = clock.NewReal()
	}
	opts.normalize()
	if opts.ID == "" {
		opts.ID = ep.Addr()
	}
	// Exclude ourselves from the peer list; gossiping to self is a no-op
	// that would waste fanout slots.
	ps := make([]string, 0, len(peers))
	for _, p := range peers {
		if p != opts.ID && p != ep.Addr() {
			ps = append(ps, p)
		}
	}
	g := &Gossiper{
		id:       opts.ID,
		ep:       ep,
		clk:      clk,
		reg:      reg,
		peers:    ps,
		opts:     opts,
		suspects: make(map[string]struct{}),
		remote:   make(map[string]map[string]remoteOpinion),
		weights:  make(map[string]float64),
		verdict:  make(map[string]State),
		episodes: make(map[string]struct{}),
		rng:      rand.New(rand.NewSource(opts.Seed)),
		stopc:    make(chan struct{}),
		sub:      reg.Subscribe(4096),
	}
	// Persistence wiring: contribute this gossiper's tables to the
	// registry's snapshots, and absorb whatever the warm restart
	// recovered (a no-op when the registry restored nothing or
	// persistence is disabled).
	reg.SetAuxSnapshot(g.ExportState)
	g.ImportState(reg.ClaimRestoredGossip(), clk.Now())
	return g
}

// ID returns this monitor's gossip identity.
func (g *Gossiper) ID() string { return g.id }

// Peers returns the peer monitor addresses (self excluded).
func (g *Gossiper) Peers() []string { return append([]string(nil), g.peers...) }

// Options returns the effective configuration after defaulting.
func (g *Gossiper) Options() Options { return g.opts }

// afterFuncer is satisfied by clock.Sim; under a simulated clock the
// round loop is a deterministic timer-callback chain (same pattern as
// the registry's wheel driver).
type afterFuncer interface {
	AfterFunc(clock.Duration, func(clock.Time))
}

// Start launches the anti-entropy round loop. Idempotent.
func (g *Gossiper) Start() {
	if !g.started.CompareAndSwap(false, true) {
		return
	}
	// Second claim window: if this gossiper was built before the
	// registry restored (construction order varies by embedder), the
	// restored record is still waiting. Claim is one-shot and a nil
	// import is a no-op, so claiming in both places is safe.
	g.ImportState(g.reg.ClaimRestoredGossip(), g.clk.Now())
	if af, ok := g.clk.(afterFuncer); ok {
		g.armSim(af)
		return
	}
	go g.runReal()
}

// Stop halts the round loop and detaches from the registry bus.
func (g *Gossiper) Stop() {
	if g.stopped.CompareAndSwap(false, true) {
		close(g.stopc)
		g.sub.Close()
	}
}

func (g *Gossiper) armSim(af afterFuncer) {
	af.AfterFunc(g.opts.Interval, func(now clock.Time) {
		if g.stopped.Load() {
			return
		}
		g.Round(now)
		g.armSim(af)
	})
}

func (g *Gossiper) runReal() {
	for {
		select {
		case <-g.stopc:
			return
		case now := <-g.clk.After(g.opts.Interval):
			g.Round(now)
		}
	}
}

// Round executes one anti-entropy round at instant now: absorb local
// registry events, expire stale remote opinions, recompute verdicts, and
// send digests to Fanout random peers. Start drives it automatically; it
// is exported so tests can step rounds by hand.
func (g *Gossiper) Round(now clock.Time) {
	g.mu.Lock()
	g.drainBusLocked()
	g.expireLocked(now)
	g.reverdictAllLocked(now)
	digests := g.buildDigestsLocked(now)
	targets := g.pickPeersLocked()
	g.mu.Unlock()

	for _, to := range targets {
		for _, d := range digests {
			if g.ep.Send(to, d) == nil {
				g.digestsSent.Add(1)
			}
		}
	}
}

// drainBusLocked absorbs this registry's transition events since the
// last round: they maintain the local suspicion set and the mistake-rate
// EWMA behind our self-reported weight.
func (g *Gossiper) drainBusLocked() {
	for {
		select {
		case ev, ok := <-g.sub.C():
			if !ok {
				return
			}
			switch ev.Type {
			case registry.EventSuspect:
				g.suspects[ev.Peer] = struct{}{}
				g.episodes[ev.Peer] = struct{}{}
			case registry.EventOffline:
				g.suspects[ev.Peer] = struct{}{}
				// A locally-confirmed offline counts as a non-mistake
				// outcome; a later recovery of the same subject will
				// still land a mistake sample below.
				g.mistakeRate = (1 - g.opts.MistakeGain) * g.mistakeRate
			case registry.EventTrust:
				delete(g.suspects, ev.Peer)
				if _, open := g.episodes[ev.Peer]; open {
					delete(g.episodes, ev.Peer)
					// The suspect recovered: the suspicion was a mistake.
					g.mistakeRate = (1-g.opts.MistakeGain)*g.mistakeRate + g.opts.MistakeGain
				}
			case registry.EventEvicted:
				delete(g.suspects, ev.Peer)
				delete(g.episodes, ev.Peer)
			}
		default:
			return
		}
	}
}

// expireLocked drops remote opinions older than OpinionTTL.
func (g *Gossiper) expireLocked(now clock.Time) {
	for subj, byMon := range g.remote {
		for mon, op := range byMon {
			if now.Sub(op.at) > g.opts.OpinionTTL {
				delete(byMon, mon)
				g.opinionsExpired.Add(1)
			}
		}
		if len(byMon) == 0 {
			delete(g.remote, subj)
		}
	}
}

// Weight returns this monitor's current self-assessed accuracy weight.
func (g *Gossiper) Weight() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.weightLocked()
}

func (g *Gossiper) weightLocked() float64 {
	return clampWeight(1-g.mistakeRate, g.opts.WeightFloor)
}

// MistakeRate returns the EWMA of local suspicion-episode outcomes.
func (g *Gossiper) MistakeRate() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.mistakeRate
}

// localOpinion derives this monitor's current opinion of subj from the
// registry (authoritative at call time); ok is false when the subject is
// not locally covered.
func (g *Gossiper) localOpinion(subj string, now clock.Time) (Opinion, bool) {
	status, ok := g.reg.StatusOf(subj, now)
	if !ok {
		return Opinion{}, false
	}
	inc, _ := g.reg.IncarnationOf(subj)
	op := Opinion{Subject: subj, Inc: inc}
	switch status {
	case cluster.StatusOffline:
		op.State = StateOffline
	case cluster.StatusSuspected:
		op.State = StateSuspect
	default:
		// Unknown (registered, never heard) gossips as trusted: we have
		// no evidence against the subject.
		op.State = StateTrusted
	}
	return op, true
}

// interestLocked returns every subject with a live local or remote
// suspicion — the set verdicts and digests are computed over.
func (g *Gossiper) interestLocked() map[string]struct{} {
	out := make(map[string]struct{}, len(g.suspects)+len(g.remote))
	for s := range g.suspects {
		out[s] = struct{}{}
	}
	for s, byMon := range g.remote {
		for _, op := range byMon {
			if op.State != StateTrusted {
				out[s] = struct{}{}
				break
			}
		}
	}
	// Subjects with an open verdict stay interesting until recanted.
	for s := range g.verdict {
		out[s] = struct{}{}
	}
	return out
}

// buildDigestsLocked encodes this monitor's opinions over the interest
// set, chunked to the wire bound. Trusted opinions ARE included for
// subjects others suspect: an explicit refutation (with incarnation)
// is what lets a recovered process return to trusted fleet-wide.
func (g *Gossiper) buildDigestsLocked(now clock.Time) [][]byte {
	interest := g.interestLocked()
	if len(interest) == 0 {
		return nil
	}
	subjects := make([]string, 0, len(interest))
	for s := range interest {
		subjects = append(subjects, s)
	}
	sort.Strings(subjects) // deterministic digests for reproducible sims

	entries := make([]Opinion, 0, len(subjects))
	for _, s := range subjects {
		op, ok := g.localOpinion(s, now)
		if !ok {
			continue // not locally covered: nothing to report
		}
		if op.State != StateTrusted {
			op.Level = g.levelOf(s, now)
		}
		entries = append(entries, op)
	}
	if len(entries) == 0 {
		return nil
	}
	var out [][]byte
	for len(entries) > 0 {
		n := len(entries)
		if n > MaxDigestEntries {
			n = MaxDigestEntries
		}
		g.seq++
		d := Digest{Monitor: g.id, Weight: g.weightLocked(), Seq: g.seq, Entries: entries[:n]}
		out = append(out, d.Marshal())
		entries = entries[n:]
	}
	return out
}

// levelOf reads the subject's live accrual suspicion level; 0 when
// unavailable. Levels ride in digests as evidence only — the quorum
// rule counts monitors, not levels.
func (g *Gossiper) levelOf(subj string, now clock.Time) float64 {
	lvl, _ := g.reg.SuspicionOf(subj, now)
	return lvl
}

// pickPeersLocked selects Fanout distinct random peers.
func (g *Gossiper) pickPeersLocked() []string {
	if len(g.peers) == 0 {
		return nil
	}
	n := g.opts.Fanout
	if n >= len(g.peers) {
		return append([]string(nil), g.peers...)
	}
	idx := g.rng.Perm(len(g.peers))[:n]
	out := make([]string, 0, n)
	for _, i := range idx {
		out = append(out, g.peers[i])
	}
	return out
}

// HandleDatagram ingests one received gossip datagram. Non-gossip
// payloads (wrong magic) are ignored silently so the gossiper can share
// a socket with the heartbeat stack; malformed gossip is counted.
func (g *Gossiper) HandleDatagram(payload []byte) {
	if len(payload) < 2 || payload[0] != digestMagic[0] || payload[1] != digestMagic[1] {
		return // foreign datagram (heartbeat, ping, ...): not ours
	}
	d, err := UnmarshalDigest(payload)
	if err != nil {
		g.digestsBad.Add(1)
		return
	}
	if d.Monitor == g.id {
		return // our own digest reflected back
	}
	g.digestsReceived.Add(1)
	now := g.clk.Now()

	g.mu.Lock()
	g.weights[d.Monitor] = clampWeight(d.Weight, g.opts.WeightFloor)
	touched := make([]string, 0, len(d.Entries))
	for _, e := range d.Entries {
		byMon := g.remote[e.Subject]
		if byMon == nil {
			byMon = make(map[string]remoteOpinion)
			g.remote[e.Subject] = byMon
		}
		if prev, ok := byMon[d.Monitor]; ok && prev.seq >= d.Seq {
			continue // an older (reordered) digest cannot retract a newer one
		}
		byMon[d.Monitor] = remoteOpinion{Opinion: e, seq: d.Seq, at: now}
		g.entriesMerged.Add(1)
		touched = append(touched, e.Subject)
	}
	for _, s := range touched {
		g.reverdictLocked(s, now)
	}
	g.mu.Unlock()
}

// reverdictAllLocked recomputes every interesting subject's verdict, in
// sorted order so verdict events fire deterministically under clock.Sim.
func (g *Gossiper) reverdictAllLocked(now clock.Time) {
	interest := g.interestLocked()
	subjects := make([]string, 0, len(interest))
	for s := range interest {
		subjects = append(subjects, s)
	}
	sort.Strings(subjects)
	for _, s := range subjects {
		g.reverdictLocked(s, now)
	}
}

// reverdictLocked applies the quorum rule to one subject and publishes a
// Global* event on the registry bus when the verdict changes.
//
// The rule: let inc* be the highest incarnation any live opinion (local
// or remote) refers to. Opinions about older incarnations are refuted —
// a restarted process's new life cannot inherit its old life's
// suspicion. Over the remaining opinions, the subject is globally
// offline when at least Quorum monitors say offline AND their accuracy
// weights sum to at least MinMass; globally suspect likewise for
// states ≥ suspect; otherwise trusted.
func (g *Gossiper) reverdictLocked(subj string, now clock.Time) {
	local, hasLocal := g.localOpinion(subj, now)

	// Highest incarnation in view.
	incStar := uint64(0)
	if hasLocal {
		incStar = local.Inc
	}
	for _, op := range g.remote[subj] {
		if op.Inc > incStar {
			incStar = op.Inc
		}
	}

	var suspCount, offCount int
	var suspMass, offMass float64
	consider := func(st State, w float64, inc uint64) {
		if inc != incStar || st == StateTrusted {
			return
		}
		suspCount++
		suspMass += w
		if st == StateOffline {
			offCount++
			offMass += w
		}
	}
	if hasLocal {
		consider(local.State, g.weightLocked(), local.Inc)
	}
	// Sorted monitor order keeps the floating-point mass sum — and so
	// the verdict — bit-identical across runs (clock.Sim determinism).
	mons := make([]string, 0, len(g.remote[subj]))
	for mon := range g.remote[subj] {
		mons = append(mons, mon)
	}
	sort.Strings(mons)
	for _, mon := range mons {
		op := g.remote[subj][mon]
		w, ok := g.weights[mon]
		if !ok {
			w = g.opts.WeightFloor
		}
		consider(op.State, w, op.Inc)
	}

	next := StateTrusted
	switch {
	case offCount >= g.opts.Quorum && offMass >= g.opts.MinMass:
		next = StateOffline
	case suspCount >= g.opts.Quorum && suspMass >= g.opts.MinMass:
		next = StateSuspect
	}

	prev := g.verdict[subj] // zero value = trusted
	if next == prev {
		if next == StateTrusted {
			delete(g.verdict, subj) // nothing pending: bound the table
		}
		return
	}
	if next == StateTrusted {
		delete(g.verdict, subj)
	} else {
		g.verdict[subj] = next
	}

	ev := registry.Event{
		Peer:        subj,
		At:          now,
		Incarnation: incStar,
		Source:      g.id,
		Suspicion:   suspMass,
		Detail: fmt.Sprintf("quorum %d/%d monitors, mass %.2f/%.2f (offline %d, mass %.2f)",
			suspCount, g.opts.Quorum, suspMass, g.opts.MinMass, offCount, offMass),
	}
	switch next {
	case StateOffline:
		ev.Type = registry.EventGlobalOffline
		g.globalOfflines.Add(1)
	case StateSuspect:
		ev.Type = registry.EventGlobalSuspect
		g.globalSuspects.Add(1)
	case StateTrusted:
		ev.Type = registry.EventGlobalTrust
		ev.Suspicion = 0
		g.globalTrusts.Add(1)
	}
	g.reg.Bus().Publish(ev)
}

// VerdictOf returns the current global verdict for a subject (trusted
// when no quorum holds).
func (g *Gossiper) VerdictOf(subj string) State {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.verdict[subj]
}

// Verdicts returns every non-trusted global verdict, sorted by subject.
func (g *Gossiper) Verdicts() []Opinion {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Opinion, 0, len(g.verdict))
	for s, st := range g.verdict {
		out = append(out, Opinion{Subject: s, State: st})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Subject < out[j].Subject })
	return out
}

// Counters returns the gossiper's counter snapshot.
func (g *Gossiper) Counters() Counters {
	g.mu.Lock()
	nRemote := 0
	for _, byMon := range g.remote {
		nRemote += len(byMon)
	}
	nVerdicts := len(g.verdict)
	g.mu.Unlock()
	return Counters{
		DigestsSent:     g.digestsSent.Load(),
		DigestsReceived: g.digestsReceived.Load(),
		DigestsBad:      g.digestsBad.Load(),
		EntriesMerged:   g.entriesMerged.Load(),
		GlobalSuspects:  g.globalSuspects.Load(),
		GlobalOfflines:  g.globalOfflines.Load(),
		GlobalTrusts:    g.globalTrusts.Load(),
		RemoteOpinions:  nRemote,
		OpenVerdicts:    nVerdicts,
	}
}
