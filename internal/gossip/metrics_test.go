package gossip

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/clock"
)

// TestInstrumentMetricsExposition registers the gossiper's instruments
// into the owning registry's set — the one-page integration sfdmon uses —
// drives a round so the counters move, and checks the rendered page.
func TestInstrumentMetricsExposition(t *testing.T) {
	sim, reg, g, ep, _ := newTestRig(t, Options{Quorum: 2})
	g.InstrumentMetrics(reg.Metrics())

	// A subject goes silent long enough to be suspected, then a round
	// sends digests about it.
	beat(reg, sim, "subject-1", 1, 0)
	sim.Advance(2500 * clock.Millisecond)
	g.Round(sim.Now())
	if len(ep.take()) == 0 {
		t.Fatal("round sent no digests; test rig assumption broken")
	}

	var b strings.Builder
	if err := reg.Metrics().WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	page := b.String()

	sent := g.Counters().DigestsSent
	if sent == 0 {
		t.Fatal("DigestsSent = 0 after a round with a suspect")
	}
	for _, want := range []string{
		"# TYPE sfd_gossip_digests_sent_total counter",
		"sfd_gossip_digests_sent_total " + strconv.FormatUint(sent, 10),
		"sfd_gossip_global_offlines_total",
		"sfd_gossip_global_suspects_total",
		"sfd_gossip_opinions_expired_total",
		"sfd_gossip_weight",
		"sfd_gossip_mistake_rate",
		// The registry's own series share the page.
		"sfd_registry_heartbeats_total 1",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("page:\n%s", page)
	}
}
