package gossip

import (
	"math"
	"strings"
	"testing"
)

func TestDigestRoundTrip(t *testing.T) {
	cases := []Digest{
		{Monitor: "mon-a", Weight: 1, Seq: 1},
		{Monitor: "m", Weight: 0.25, Seq: 42, Entries: []Opinion{
			{Subject: "10.0.0.1:9000", State: StateSuspect, Inc: 0, Level: 1.75},
		}},
		{Monitor: "monitor-θ", Weight: 0.5, Seq: 1 << 40, Entries: []Opinion{
			{Subject: "s1", State: StateTrusted, Inc: 3, Level: 0},
			{Subject: "s2", State: StateOffline, Inc: 7, Level: 12.5},
			{Subject: "üñïçødé", State: StateSuspect, Inc: 1, Level: math.MaxFloat64},
		}},
	}
	for _, want := range cases {
		got, err := UnmarshalDigest(want.Marshal())
		if err != nil {
			t.Fatalf("UnmarshalDigest(%+v): %v", want, err)
		}
		if got.Monitor != want.Monitor || got.Weight != want.Weight || got.Seq != want.Seq {
			t.Fatalf("header mismatch: got %+v want %+v", got, want)
		}
		if len(got.Entries) != len(want.Entries) {
			t.Fatalf("entry count: got %d want %d", len(got.Entries), len(want.Entries))
		}
		for i := range want.Entries {
			if got.Entries[i] != want.Entries[i] {
				t.Fatalf("entry %d: got %+v want %+v", i, got.Entries[i], want.Entries[i])
			}
		}
	}
}

func TestDigestMaxEntriesRoundTrip(t *testing.T) {
	d := Digest{Monitor: "m", Weight: 1, Seq: 9}
	for i := 0; i < MaxDigestEntries; i++ {
		d.Entries = append(d.Entries, Opinion{Subject: "s", State: StateSuspect, Inc: uint64(i)})
	}
	got, err := UnmarshalDigest(d.Marshal())
	if err != nil {
		t.Fatalf("max-size digest rejected: %v", err)
	}
	if len(got.Entries) != MaxDigestEntries {
		t.Fatalf("got %d entries, want %d", len(got.Entries), MaxDigestEntries)
	}
}

func TestDigestRejectsGarbage(t *testing.T) {
	valid := Digest{Monitor: "mon-a", Weight: 1, Seq: 3, Entries: []Opinion{
		{Subject: "s1", State: StateOffline, Inc: 2, Level: 4},
	}}.Marshal()

	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return f(b)
	}
	cases := map[string][]byte{
		"empty":      {},
		"one byte":   {'S'},
		"bad magic":  mutate(func(b []byte) []byte { b[0] = 'X'; return b }),
		"bad version": mutate(func(b []byte) []byte { b[2] = 99; return b }),
		"truncated header":  valid[:10],
		"truncated entry":   valid[:len(valid)-3],
		"trailing bytes":    append(append([]byte(nil), valid...), 0),
		"bad state":         mutate(func(b []byte) []byte { b[len(b)-17] = 3; return b }), // state byte sits 17 from the end (inc+level follow)
		"oversized id len":  mutate(func(b []byte) []byte { b[3], b[4] = 0xff, 0xff; return b }),
		"huge entry count": func() []byte {
			d := Digest{Monitor: "m", Weight: 1, Seq: 1}
			b := d.Marshal()
			// Patch count (last 2 bytes of an entryless digest) past the bound.
			b[len(b)-2], b[len(b)-1] = 0xff, 0xff
			return b
		}(),
	}
	for name, b := range cases {
		if _, err := UnmarshalDigest(b); err == nil {
			t.Errorf("%s: accepted, want error", name)
		}
	}
}

func TestDigestMarshalPanicsOnOversize(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	assertPanics("long monitor id", func() {
		Digest{Monitor: strings.Repeat("x", maxNameLen+1)}.Marshal()
	})
	assertPanics("long subject", func() {
		Digest{Monitor: "m", Entries: []Opinion{{Subject: strings.Repeat("x", maxNameLen+1)}}}.Marshal()
	})
	assertPanics("too many entries", func() {
		Digest{Monitor: "m", Entries: make([]Opinion, MaxDigestEntries+1)}.Marshal()
	})
}

func TestClampWeight(t *testing.T) {
	const floor = 0.25
	cases := []struct{ in, want float64 }{
		{0.5, 0.5},
		{1, 1},
		{1.5, 1},
		{0, floor},
		{-3, floor},
		{math.NaN(), floor},
		{math.Inf(1), floor},
		{math.Inf(-1), floor},
	}
	for _, c := range cases {
		if got := clampWeight(c.in, floor); got != c.want {
			t.Errorf("clampWeight(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
