// Package gossip is the dissemination layer between monitors: the
// paper's Fig. 1 deployment is "multiple monitor multiple" — several
// monitors across clouds watch overlapping server sets — and this
// package turns each monitor's local suspicions into fleet-wide
// verdicts. Monitors periodically exchange compact, versioned suspicion
// digests (anti-entropy over the same unreliable datagram substrate the
// heartbeats use), and a stream is only *globally* declared offline when
// enough monitors concur, each weighted by its recent accuracy — the
// quorum-corroboration idea of Dobre et al.'s robust FD architecture
// combined with the Impact FD's weighted group-level trust. Incarnation
// numbers (SWIM-style) let a recovered process refute stale suspicion of
// its previous life.
package gossip

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/clock"
)

// State is a monitor's opinion about one subject stream, ordered by
// severity so precedence comparisons are numeric.
type State uint8

const (
	// StateTrusted: the monitor currently trusts the subject (also used
	// to refute another monitor's suspicion at the same incarnation).
	StateTrusted State = iota
	// StateSuspect: the subject's freshness point expired locally.
	StateSuspect
	// StateOffline: the subject stayed suspected past the local offline
	// grace period.
	StateOffline
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateTrusted:
		return "trusted"
	case StateSuspect:
		return "suspect"
	case StateOffline:
		return "offline"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Opinion is one monitor's view of one subject at one incarnation.
type Opinion struct {
	Subject string
	State   State
	// Inc is the subject incarnation this opinion refers to. An opinion
	// about incarnation i says nothing about incarnation i+1: a
	// restarted process refutes old suspicion simply by existing.
	Inc uint64
	// Level is the local accrual suspicion evidence behind the opinion
	// (the TD/φ output at transition time; 0 for trusted).
	Level float64
}

// Digest is one anti-entropy exchange unit: the sending monitor's
// identity, its self-assessed accuracy weight, a per-monitor sequence
// number that versions its opinions, and the opinions themselves.
type Digest struct {
	Monitor string
	// Weight is the sender's self-reported accuracy in [0,1], derived
	// from its recent mistake rate (1 = no recent wrong suspicions).
	// Receivers clamp it into [WeightFloor, 1] before use.
	Weight float64
	// Seq increases with every digest a monitor sends; receivers keep
	// only the newest opinion per (subject, monitor), so reordered UDP
	// deliveries cannot resurrect a retracted suspicion.
	Seq     uint64
	Entries []Opinion
}

// Wire format v1:
//
//	magic 'S','G'  version(1)  idLen(u16) id  weight(f64) seq(u64)
//	count(u16) then per entry: subjLen(u16) subject state(u8) inc(u64)
//	level(f64)
//
// All integers big-endian. Bounded: id and subjects ≤ maxNameLen bytes,
// count ≤ MaxDigestEntries.
const (
	digestVersion    = 1
	maxNameLen       = 512
	// MaxDigestEntries bounds one datagram's entry count; larger opinion
	// sets are chunked across digests by the sender.
	MaxDigestEntries = 1024
)

var digestMagic = [2]byte{'S', 'G'}

// ErrBadDigest reports an undecodable gossip datagram.
var ErrBadDigest = errors.New("gossip: bad digest")

// Marshal encodes the digest. It panics if the monitor id, a subject, or
// the entry count exceeds the wire bounds — a programming error, since
// the gossiper chunks before encoding.
func (d Digest) Marshal() []byte {
	if len(d.Monitor) > maxNameLen {
		panic(fmt.Sprintf("gossip: monitor id %d bytes exceeds %d", len(d.Monitor), maxNameLen))
	}
	if len(d.Entries) > MaxDigestEntries {
		panic(fmt.Sprintf("gossip: %d entries exceeds %d", len(d.Entries), MaxDigestEntries))
	}
	size := 3 + 2 + len(d.Monitor) + 8 + 8 + 2
	for _, e := range d.Entries {
		if len(e.Subject) > maxNameLen {
			panic(fmt.Sprintf("gossip: subject %d bytes exceeds %d", len(e.Subject), maxNameLen))
		}
		size += 2 + len(e.Subject) + 1 + 8 + 8
	}
	buf := make([]byte, 0, size)
	buf = append(buf, digestMagic[0], digestMagic[1], digestVersion)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(d.Monitor)))
	buf = append(buf, d.Monitor...)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(d.Weight))
	buf = binary.BigEndian.AppendUint64(buf, d.Seq)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(d.Entries)))
	for _, e := range d.Entries {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Subject)))
		buf = append(buf, e.Subject...)
		buf = append(buf, byte(e.State))
		buf = binary.BigEndian.AppendUint64(buf, e.Inc)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(e.Level))
	}
	return buf
}

// UnmarshalDigest decodes a gossip datagram. Any malformed input returns
// ErrBadDigest; no input may panic (the port is open to the world, same
// contract as the heartbeat codec).
func UnmarshalDigest(b []byte) (Digest, error) {
	r := reader{buf: b}
	magic0, _ := r.u8()
	magic1, _ := r.u8()
	ver, ok := r.u8()
	if !ok || magic0 != digestMagic[0] || magic1 != digestMagic[1] {
		return Digest{}, fmt.Errorf("%w: bad magic", ErrBadDigest)
	}
	if ver != digestVersion {
		return Digest{}, fmt.Errorf("%w: version %d", ErrBadDigest, ver)
	}
	id, ok := r.str()
	if !ok {
		return Digest{}, fmt.Errorf("%w: truncated monitor id", ErrBadDigest)
	}
	wbits, ok1 := r.u64()
	seq, ok2 := r.u64()
	count, ok3 := r.u16()
	if !ok1 || !ok2 || !ok3 {
		return Digest{}, fmt.Errorf("%w: truncated header", ErrBadDigest)
	}
	if int(count) > MaxDigestEntries {
		return Digest{}, fmt.Errorf("%w: %d entries", ErrBadDigest, count)
	}
	d := Digest{Monitor: id, Weight: math.Float64frombits(wbits), Seq: seq}
	if count > 0 {
		d.Entries = make([]Opinion, 0, count)
	}
	for i := 0; i < int(count); i++ {
		subj, ok := r.str()
		if !ok {
			return Digest{}, fmt.Errorf("%w: truncated entry %d", ErrBadDigest, i)
		}
		st, ok1 := r.u8()
		inc, ok2 := r.u64()
		lbits, ok3 := r.u64()
		if !ok1 || !ok2 || !ok3 || State(st) > StateOffline {
			return Digest{}, fmt.Errorf("%w: malformed entry %d", ErrBadDigest, i)
		}
		d.Entries = append(d.Entries, Opinion{
			Subject: subj,
			State:   State(st),
			Inc:     inc,
			Level:   math.Float64frombits(lbits),
		})
	}
	if len(r.buf) != r.off {
		return Digest{}, fmt.Errorf("%w: %d trailing bytes", ErrBadDigest, len(r.buf)-r.off)
	}
	return d, nil
}

// reader is a bounds-checked cursor over a datagram.
type reader struct {
	buf []byte
	off int
}

func (r *reader) u8() (byte, bool) {
	if r.off+1 > len(r.buf) {
		return 0, false
	}
	v := r.buf[r.off]
	r.off++
	return v, true
}

func (r *reader) u16() (uint16, bool) {
	if r.off+2 > len(r.buf) {
		return 0, false
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, true
}

func (r *reader) u64() (uint64, bool) {
	if r.off+8 > len(r.buf) {
		return 0, false
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, true
}

func (r *reader) str() (string, bool) {
	n, ok := r.u16()
	if !ok || int(n) > maxNameLen || r.off+int(n) > len(r.buf) {
		return "", false
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, true
}

// clampWeight forces a received (or computed) weight into [floor, 1],
// treating NaN and ±Inf as the floor — a hostile digest cannot poison
// the quorum arithmetic.
func clampWeight(w, floor float64) float64 {
	if math.IsNaN(w) || math.IsInf(w, 0) || w < floor {
		return floor
	}
	if w > 1 {
		return 1
	}
	return w
}

// remoteOpinion is a received opinion plus the bookkeeping the receiver
// needs: the digest sequence that carried it (versioning) and the
// receive instant (TTL expiry when the reporting monitor goes quiet).
type remoteOpinion struct {
	Opinion
	seq uint64     // digest sequence that carried it
	at  clock.Time // receive instant (for TTL expiry)
}
