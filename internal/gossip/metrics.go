package gossip

import "repro/internal/metrics"

// InstrumentMetrics registers the gossiper's instruments in set —
// typically the registry's set, so one /metrics page covers local
// detection and global dissemination. All counters are scrape-time reads
// of atomics the gossip rounds already maintain; the anti-entropy path
// gains nothing.
func (g *Gossiper) InstrumentMetrics(set *metrics.Set) {
	set.CounterFunc("sfd_gossip_digests_sent_total",
		"Digest datagrams sent to peer monitors.", g.digestsSent.Load)
	set.CounterFunc("sfd_gossip_digests_received_total",
		"Digest datagrams received and decoded.", g.digestsReceived.Load)
	set.CounterFunc("sfd_gossip_digests_bad_total",
		"Datagrams rejected as malformed or wrong version.", g.digestsBad.Load)
	set.CounterFunc("sfd_gossip_entries_merged_total",
		"Remote opinions merged into the opinion table.", g.entriesMerged.Load)
	set.CounterFunc("sfd_gossip_opinions_expired_total",
		"Remote opinions dropped after OpinionTTL without refresh.", g.opinionsExpired.Load)
	set.CounterFunc("sfd_gossip_global_suspects_total",
		"Quorum-corroborated GlobalSuspect verdicts published.", g.globalSuspects.Load)
	set.CounterFunc("sfd_gossip_global_offlines_total",
		"Quorum-corroborated GlobalOffline verdicts published.", g.globalOfflines.Load)
	set.CounterFunc("sfd_gossip_global_trusts_total",
		"GlobalTrust retractions published.", g.globalTrusts.Load)
	set.GaugeFunc("sfd_gossip_weight",
		"This monitor's self-assessed accuracy weight (1 − mistake-rate EWMA, floored).",
		g.Weight)
	set.GaugeFunc("sfd_gossip_mistake_rate",
		"EWMA of local suspicion-episode outcomes (1 = the suspect recovered).",
		g.MistakeRate)
	set.GaugeFunc("sfd_gossip_remote_opinions",
		"Live (subject, monitor) remote-opinion entries.",
		func() float64 { return float64(g.Counters().RemoteOpinions) })
	set.GaugeFunc("sfd_gossip_open_verdicts",
		"Subjects with a non-trusted global verdict outstanding.",
		func() float64 { return float64(g.Counters().OpenVerdicts) })
}
