package gossip

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/detector"
	"repro/internal/heartbeat"
	"repro/internal/registry"
	"repro/internal/transport"
)

// stubEP captures sends without a network.
type stubEP struct {
	addr string
	mu   sync.Mutex
	sent []stubSend
}

type stubSend struct {
	to      string
	payload []byte
}

func (s *stubEP) Send(to string, payload []byte) error {
	s.mu.Lock()
	s.sent = append(s.sent, stubSend{to: to, payload: append([]byte(nil), payload...)})
	s.mu.Unlock()
	return nil
}

func (s *stubEP) Addr() string { return s.addr }

func (s *stubEP) take() []stubSend {
	s.mu.Lock()
	out := s.sent
	s.sent = nil
	s.mu.Unlock()
	return out
}

// newTestRig builds a sim-clock registry plus a gossiper named mon-a with
// peers mon-b and mon-c. The registry's wheel runs off sim.Advance; the
// gossiper is NOT started — tests step Round by hand.
func newTestRig(t *testing.T, opts Options) (*clock.Sim, *registry.Registry, *Gossiper, *stubEP, *registry.Subscription) {
	t.Helper()
	sim := clock.NewSim(0)
	reg := registry.New(sim,
		func(string) detector.Detector { return detector.NewFixed(300*clock.Millisecond, 0) },
		registry.Options{
			WheelTick:    10 * clock.Millisecond,
			OfflineAfter: 300 * clock.Millisecond,
			MaxSilence:   2 * clock.Second,
			EvictAfter:   -1,
		})
	reg.Start()
	sub := reg.Subscribe(1024)
	ep := &stubEP{addr: "mon-a"}
	g := New(ep, sim, reg, []string{"mon-b", "mon-c"}, opts)
	t.Cleanup(func() { g.Stop(); reg.Stop() })
	return sim, reg, g, ep, sub
}

func beat(reg *registry.Registry, sim *clock.Sim, subj string, seq, inc uint64) {
	reg.Observe(heartbeat.Arrival{From: subj, Seq: seq, Send: sim.Now(), Recv: sim.Now(), Inc: inc})
}

func drain(sub *registry.Subscription) []registry.Event {
	var out []registry.Event
	for {
		select {
		case ev := <-sub.C():
			out = append(out, ev)
		default:
			return out
		}
	}
}

func eventsOfType(evs []registry.Event, t registry.EventType) []registry.Event {
	var out []registry.Event
	for _, ev := range evs {
		if ev.Type == t {
			out = append(out, ev)
		}
	}
	return out
}

func globalEvents(evs []registry.Event) []registry.Event {
	var out []registry.Event
	for _, ev := range evs {
		switch ev.Type {
		case registry.EventGlobalSuspect, registry.EventGlobalOffline, registry.EventGlobalTrust:
			out = append(out, ev)
		}
	}
	return out
}

func TestQuorumCorroborationAndIncarnationRefutation(t *testing.T) {
	sim, reg, g, _, sub := newTestRig(t, Options{Quorum: 2, Seed: 7})

	for i := uint64(1); i <= 3; i++ {
		beat(reg, sim, "s1", i, 0)
		sim.Advance(100 * clock.Millisecond)
	}
	// Silence: the local registry suspects then offlines s1.
	sim.Advance(1 * clock.Second)
	g.Round(sim.Now())

	if got := g.VerdictOf("s1"); got != StateTrusted {
		t.Fatalf("one monitor's opinion reached a verdict: %v (quorum is 2)", got)
	}
	evs := drain(sub)
	if len(eventsOfType(evs, registry.EventOffline)) != 1 {
		t.Fatalf("expected a local offline event, got %+v", evs)
	}
	if ge := globalEvents(evs); len(ge) != 0 {
		t.Fatalf("global events without quorum: %+v", ge)
	}

	// A second monitor corroborates: quorum 2 met, mass 1+1 >= 1.5.
	g.HandleDatagram(Digest{Monitor: "mon-b", Weight: 1, Seq: 1, Entries: []Opinion{
		{Subject: "s1", State: StateOffline, Inc: 0, Level: 3},
	}}.Marshal())

	if got := g.VerdictOf("s1"); got != StateOffline {
		t.Fatalf("verdict after corroboration = %v, want offline", got)
	}
	ge := globalEvents(drain(sub))
	if len(ge) != 1 || ge[0].Type != registry.EventGlobalOffline {
		t.Fatalf("want exactly one GlobalOffline, got %+v", ge)
	}
	if ge[0].Peer != "s1" || ge[0].Source != "mon-a" || ge[0].Incarnation != 0 {
		t.Fatalf("bad GlobalOffline event: %+v", ge[0])
	}
	if c := g.Counters(); c.GlobalOfflines != 1 || c.OpenVerdicts != 1 {
		t.Fatalf("counters after verdict: %+v", c)
	}

	// The process restarts with a bumped incarnation: its first heartbeat
	// refutes every opinion about its previous life, including mon-b's.
	beat(reg, sim, "s1", 0, 1)
	g.Round(sim.Now())

	if got := g.VerdictOf("s1"); got != StateTrusted {
		t.Fatalf("verdict after incarnation bump = %v, want trusted", got)
	}
	evs = drain(sub)
	ge = globalEvents(evs)
	if len(ge) != 1 || ge[0].Type != registry.EventGlobalTrust {
		t.Fatalf("want exactly one GlobalTrust, got %+v", ge)
	}
	if ge[0].Incarnation != 1 {
		t.Fatalf("GlobalTrust incarnation = %d, want 1", ge[0].Incarnation)
	}
}

func TestWeightedMassSuppression(t *testing.T) {
	_, _, g, _, sub := newTestRig(t, Options{Quorum: 2, Seed: 7})

	// Two mistake-prone monitors (weights clamp to the 0.25 floor) agree
	// on offline. Quorum count is met but mass 0.5 < MinMass 1.5: the
	// accusation needs better-reputed corroboration.
	g.HandleDatagram(Digest{Monitor: "mon-b", Weight: 0.01, Seq: 1, Entries: []Opinion{
		{Subject: "x", State: StateOffline},
	}}.Marshal())
	g.HandleDatagram(Digest{Monitor: "mon-c", Weight: math.NaN(), Seq: 1, Entries: []Opinion{
		{Subject: "x", State: StateOffline},
	}}.Marshal())

	if got := g.VerdictOf("x"); got != StateTrusted {
		t.Fatalf("low-mass quorum reached a verdict: %v", got)
	}
	if ge := globalEvents(drain(sub)); len(ge) != 0 {
		t.Fatalf("global events despite low mass: %+v", ge)
	}

	// The same monitors regain accuracy: fresh digests carry full weight,
	// mass 2 >= 1.5 and the verdict lands.
	g.HandleDatagram(Digest{Monitor: "mon-b", Weight: 1, Seq: 2, Entries: []Opinion{
		{Subject: "x", State: StateOffline},
	}}.Marshal())
	g.HandleDatagram(Digest{Monitor: "mon-c", Weight: 1, Seq: 2, Entries: []Opinion{
		{Subject: "x", State: StateOffline},
	}}.Marshal())

	if got := g.VerdictOf("x"); got != StateOffline {
		t.Fatalf("verdict with full weights = %v, want offline", got)
	}
	ge := globalEvents(drain(sub))
	if len(ge) != 1 || ge[0].Type != registry.EventGlobalOffline {
		t.Fatalf("want exactly one GlobalOffline, got %+v", ge)
	}
}

func TestStaleDigestCannotRetract(t *testing.T) {
	_, _, g, _, _ := newTestRig(t, Options{Quorum: 2, Seed: 7})

	g.HandleDatagram(Digest{Monitor: "mon-b", Weight: 1, Seq: 5, Entries: []Opinion{
		{Subject: "x", State: StateOffline},
	}}.Marshal())
	if got := g.Counters().EntriesMerged; got != 1 {
		t.Fatalf("EntriesMerged = %d, want 1", got)
	}

	// A reordered older digest tries to retract the suspicion: ignored.
	g.HandleDatagram(Digest{Monitor: "mon-b", Weight: 1, Seq: 4, Entries: []Opinion{
		{Subject: "x", State: StateTrusted},
	}}.Marshal())
	if got := g.Counters().EntriesMerged; got != 1 {
		t.Fatalf("stale digest merged: EntriesMerged = %d, want 1", got)
	}

	// mon-b's (still-standing) offline opinion corroborates mon-c's.
	g.HandleDatagram(Digest{Monitor: "mon-c", Weight: 1, Seq: 1, Entries: []Opinion{
		{Subject: "x", State: StateOffline},
	}}.Marshal())
	if got := g.VerdictOf("x"); got != StateOffline {
		t.Fatalf("verdict = %v, want offline (stale retraction must not count)", got)
	}
}

func TestOpinionTTLExpiry(t *testing.T) {
	sim, _, g, _, sub := newTestRig(t, Options{Quorum: 2, Seed: 7, OpinionTTL: 1 * clock.Second})

	g.HandleDatagram(Digest{Monitor: "mon-b", Weight: 1, Seq: 1, Entries: []Opinion{
		{Subject: "x", State: StateOffline},
	}}.Marshal())
	g.HandleDatagram(Digest{Monitor: "mon-c", Weight: 1, Seq: 1, Entries: []Opinion{
		{Subject: "x", State: StateOffline},
	}}.Marshal())
	if got := g.VerdictOf("x"); got != StateOffline {
		t.Fatalf("verdict = %v, want offline", got)
	}
	drain(sub)

	// Both accusing monitors go quiet: their opinions age out and the
	// verdict is recanted rather than held forever.
	sim.Advance(2 * clock.Second)
	g.Round(sim.Now())

	if got := g.VerdictOf("x"); got != StateTrusted {
		t.Fatalf("verdict after TTL expiry = %v, want trusted", got)
	}
	ge := globalEvents(drain(sub))
	if len(ge) != 1 || ge[0].Type != registry.EventGlobalTrust {
		t.Fatalf("want exactly one GlobalTrust after expiry, got %+v", ge)
	}
	if c := g.Counters(); c.RemoteOpinions != 0 || c.OpenVerdicts != 0 {
		t.Fatalf("state not cleaned after expiry: %+v", c)
	}
}

func TestMistakeRateTracksEpisodeOutcomes(t *testing.T) {
	sim, reg, g, _, _ := newTestRig(t, Options{Quorum: 2, Seed: 7})

	if w := g.Weight(); w != 1 {
		t.Fatalf("initial weight = %v, want 1", w)
	}

	// Episode 1: suspect, then the subject recovers — a mistake.
	beat(reg, sim, "s1", 1, 0)
	sim.Advance(400 * clock.Millisecond) // past the 300 ms fixed timeout
	beat(reg, sim, "s1", 2, 0)
	g.Round(sim.Now())
	if mr := g.MistakeRate(); math.Abs(mr-0.2) > 1e-12 {
		t.Fatalf("mistake rate after one mistake = %v, want 0.2", mr)
	}
	if w := g.Weight(); math.Abs(w-0.8) > 1e-12 {
		t.Fatalf("weight = %v, want 0.8", w)
	}

	// Episode 2: suspect, then offline is confirmed — not a mistake, the
	// EWMA decays toward zero.
	sim.Advance(1 * clock.Second)
	g.Round(sim.Now())
	if mr := g.MistakeRate(); math.Abs(mr-0.16) > 1e-12 {
		t.Fatalf("mistake rate after confirmed offline = %v, want 0.16", mr)
	}
}

func TestDigestCarriesTrustedRefutation(t *testing.T) {
	sim, reg, g, ep, _ := newTestRig(t, Options{Quorum: 2, Seed: 7})

	beat(reg, sim, "s1", 1, 2)
	g.HandleDatagram(Digest{Monitor: "mon-b", Weight: 1, Seq: 1, Entries: []Opinion{
		{Subject: "s1", State: StateSuspect, Inc: 2, Level: 1.2},
	}}.Marshal())

	g.Round(sim.Now())
	sends := ep.take()
	if len(sends) != 2 { // fanout 2 over exactly 2 peers
		t.Fatalf("sent %d digests, want 2 (one per peer)", len(sends))
	}
	seen := map[string]bool{}
	for _, s := range sends {
		seen[s.to] = true
		d, err := UnmarshalDigest(s.payload)
		if err != nil {
			t.Fatalf("sent digest does not decode: %v", err)
		}
		if d.Monitor != "mon-a" || d.Weight != 1 {
			t.Fatalf("bad digest header: %+v", d)
		}
		if len(d.Entries) != 1 {
			t.Fatalf("digest entries = %+v, want the one disputed subject", d.Entries)
		}
		e := d.Entries[0]
		if e.Subject != "s1" || e.State != StateTrusted || e.Inc != 2 {
			t.Fatalf("want explicit trusted@inc2 refutation, got %+v", e)
		}
	}
	if !seen["mon-b"] || !seen["mon-c"] {
		t.Fatalf("digests went to %v, want both peers", seen)
	}
	if c := g.Counters(); c.DigestsSent != 2 {
		t.Fatalf("DigestsSent = %d, want 2", c.DigestsSent)
	}
}

func TestHandleDatagramForeignOwnAndMalformed(t *testing.T) {
	sim, _, g, _, _ := newTestRig(t, Options{Quorum: 2, Seed: 7})

	// A heartbeat on the shared socket: silently ignored.
	hb := heartbeat.Message{Kind: heartbeat.KindHeartbeat, Seq: 1, Time: sim.Now()}
	g.HandleDatagram(hb.Marshal())
	// Truncated gossip: counted as bad.
	g.HandleDatagram([]byte{'S', 'G', 1, 0})
	// Our own digest reflected back: ignored.
	g.HandleDatagram(Digest{Monitor: "mon-a", Weight: 1, Seq: 9}.Marshal())

	c := g.Counters()
	if c.DigestsReceived != 0 || c.DigestsBad != 1 || c.EntriesMerged != 0 {
		t.Fatalf("counters = %+v, want received 0, bad 1, merged 0", c)
	}
}

// TestGossipOverHubRealClock runs two full monitors over the in-memory
// hub on the real clock: transport.Pump feeds one shared socket per
// monitor into both the registry (heartbeats) and the gossiper (digests).
// A subject crash must reach a corroborated GlobalOffline on both
// monitors, and an incarnation-bumped restart must recant it.
func TestGossipOverHubRealClock(t *testing.T) {
	clk := clock.NewReal()
	hub := transport.NewHub(0, 0, 1)

	type monitor struct {
		reg *registry.Registry
		g   *Gossiper
		ep  *transport.MemEndpoint
	}
	mk := func(addr, peer string, seed int64) *monitor {
		reg := registry.New(clk,
			func(string) detector.Detector { return detector.NewFixed(80*clock.Millisecond, 0) },
			registry.Options{
				WheelTick:    5 * clock.Millisecond,
				OfflineAfter: 80 * clock.Millisecond,
				MaxSilence:   1 * clock.Second,
				EvictAfter:   -1,
			})
		reg.Start()
		ep := hub.Endpoint(addr)
		g := New(ep, clk, reg, []string{peer}, Options{Interval: 25 * clock.Millisecond, Quorum: 2, Seed: seed})
		g.Start()
		go transport.Pump(ep, func(in transport.Inbound) {
			if msg, err := heartbeat.Unmarshal(in.Payload); err == nil {
				if msg.Kind == heartbeat.KindHeartbeat {
					reg.Observe(heartbeat.Arrival{From: in.From, Seq: msg.Seq, Send: msg.Time, Recv: clk.Now(), Inc: msg.Inc})
				}
				return
			}
			g.HandleDatagram(in.Payload)
		})
		return &monitor{reg: reg, g: g, ep: ep}
	}
	ma := mk("monA", "monB", 1)
	mb := mk("monB", "monA", 2)
	defer func() {
		ma.g.Stop()
		mb.g.Stop()
		ma.reg.Stop()
		mb.reg.Stop()
		ma.ep.Close()
		mb.ep.Close()
	}()

	srv := hub.Endpoint("srv")
	defer srv.Close()
	sendBeats := func(inc uint64, stop <-chan struct{}) {
		tick := time.NewTicker(15 * time.Millisecond)
		defer tick.Stop()
		seq := uint64(0)
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				seq++
				b := heartbeat.Message{Kind: heartbeat.KindHeartbeat, Seq: seq, Time: clk.Now(), Inc: inc}.Marshal()
				_ = srv.Send("monA", b)
				_ = srv.Send("monB", b)
			}
		}
	}
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	stop1 := make(chan struct{})
	go sendBeats(0, stop1)
	time.Sleep(200 * time.Millisecond) // warm both registries
	close(stop1)                       // crash

	waitFor("corroborated GlobalOffline on both monitors", func() bool {
		return ma.g.VerdictOf("srv") == StateOffline && mb.g.VerdictOf("srv") == StateOffline
	})

	// Restart with a bumped incarnation: sequence numbers begin again at
	// 1, yet both monitors must return the subject to trusted.
	stop2 := make(chan struct{})
	go sendBeats(1, stop2)
	defer close(stop2)

	waitFor("verdicts recanted after restart", func() bool {
		return ma.g.VerdictOf("srv") == StateTrusted && mb.g.VerdictOf("srv") == StateTrusted
	})
	if inc, ok := ma.reg.IncarnationOf("srv"); !ok || inc != 1 {
		t.Fatalf("monA incarnation = %d/%v, want 1", inc, ok)
	}
}
