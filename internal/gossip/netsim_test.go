package gossip

import (
	"fmt"
	"testing"

	"repro/internal/clock"
	"repro/internal/detector"
	"repro/internal/heartbeat"
	"repro/internal/netsim"
	"repro/internal/registry"
)

// The acceptance scenario from the issue: three monitors watch the same
// 100 heartbeat streams over netsim. One monitor is partitioned away from
// every subject — it locally declares the whole fleet offline, but quorum
// corroboration must suppress every global verdict, because the other two
// monitors still hear the heartbeats. After the partition heals, a
// genuinely crashed process must be globally declared offline on every
// monitor within 2× its local detection time, and a restart with a bumped
// incarnation must return it to trusted fleet-wide. Everything runs on
// one clock.Sim, so the run is deterministic.

const (
	simSubjects     = 100
	simBeatInterval = 100 * clock.Millisecond
	simOfflineAfter = 300 * clock.Millisecond
)

// simMonitor is one monitor host: a netsim node carrying both heartbeat
// and gossip traffic, a registry, and a gossiper.
type simMonitor struct {
	name string
	node *netsim.Node
	reg  *registry.Registry
	g    *Gossiper
	sub  *registry.Subscription
}

// pump drains the node's inbox every 5 ms, routing by magic bytes —
// the same shared-socket discrimination sfdmon uses.
func (m *simMonitor) pump(sim *clock.Sim) {
	sim.AfterFunc(5*clock.Millisecond, func(now clock.Time) {
		for _, in := range m.node.Drain() {
			if msg, err := heartbeat.Unmarshal(in.Payload); err == nil {
				if msg.Kind == heartbeat.KindHeartbeat {
					m.reg.Observe(heartbeat.Arrival{
						From: in.From, Seq: msg.Seq, Send: msg.Time, Recv: in.At, Inc: msg.Inc,
					})
				}
				continue
			}
			m.g.HandleDatagram(in.Payload)
		}
		m.pump(sim)
	})
}

// subjectProc is one monitored process: an AfterFunc loop heartbeating to
// every monitor. alive/inc/seq are only touched between Advance calls or
// inside sim callbacks, so the run stays single-threaded.
type subjectProc struct {
	node     *netsim.Node
	monitors []string
	alive    bool
	inc      uint64
	seq      uint64
}

func (p *subjectProc) loop(sim *clock.Sim) {
	sim.AfterFunc(simBeatInterval, func(now clock.Time) {
		if p.alive {
			p.seq++
			b := heartbeat.Message{Kind: heartbeat.KindHeartbeat, Seq: p.seq, Time: now, Inc: p.inc}.Marshal()
			for _, m := range p.monitors {
				_ = p.node.Send(m, b)
			}
		}
		p.loop(sim)
	})
}

func TestNetsimPartitionQuorumAndRecovery(t *testing.T) {
	sim := clock.NewSim(0)
	net := netsim.New(sim, netsim.LinkParams{
		DelayBase:  5 * clock.Millisecond,
		JitterMean: 1 * clock.Millisecond,
		JitterStd:  1 * clock.Millisecond,
	}, 42)

	monNames := []string{"monA", "monB", "monC"}
	monitors := make([]*simMonitor, 0, len(monNames))
	for i, name := range monNames {
		reg := registry.New(sim,
			func(string) detector.Detector {
				return detector.NewChen(16, simBeatInterval, 200*clock.Millisecond)
			},
			registry.Options{
				WheelTick:    10 * clock.Millisecond,
				OfflineAfter: simOfflineAfter,
				MaxSilence:   2 * clock.Second,
				EvictAfter:   -1,
			})
		reg.Start()
		node := net.AddNode(name, 4096)
		peers := make([]string, 0, 2)
		for _, p := range monNames {
			if p != name {
				peers = append(peers, p)
			}
		}
		g := New(node, sim, reg, peers, Options{
			Interval:   150 * clock.Millisecond,
			Quorum:     2,
			Seed:       int64(i + 1),
			OpinionTTL: 10 * clock.Second,
		})
		g.Start()
		m := &simMonitor{name: name, node: node, reg: reg, g: g, sub: reg.Subscribe(1 << 15)}
		m.pump(sim)
		monitors = append(monitors, m)
	}

	subjects := make([]*subjectProc, simSubjects)
	subjNames := make([]string, simSubjects)
	for i := range subjects {
		name := fmt.Sprintf("s%03d", i)
		subjNames[i] = name
		p := &subjectProc{node: net.AddNode(name, 16), monitors: monNames, alive: true}
		// Stagger start so 100 first beats do not land on one instant.
		sim.AfterFunc(clock.Duration(i)*clock.Millisecond, func(clock.Time) { p.loop(sim) })
		subjects[i] = p
	}

	assertNoGlobal := func(phase string) {
		t.Helper()
		for _, m := range monitors {
			if ge := globalEvents(drain(m.sub)); len(ge) != 0 {
				t.Fatalf("%s: %s published global events: %+v", phase, m.name, ge[:min(len(ge), 4)])
			}
		}
	}

	// Phase 1 — warmup: everything trusted everywhere.
	sim.Advance(5 * clock.Second)
	for _, m := range monitors {
		if n := m.reg.Len(); n != simSubjects {
			t.Fatalf("warmup: %s tracks %d streams, want %d", m.name, n, simSubjects)
		}
	}
	assertNoGlobal("warmup")

	// Phase 2 — partition all subjects away from monC. monC locally
	// offlines the entire fleet; with quorum 2 and monA+monB still
	// hearing heartbeats, not a single global verdict may fire.
	for _, s := range subjNames {
		net.Partition(s, "monC")
	}
	sim.Advance(5 * clock.Second)
	monC := monitors[2]
	if got := monC.reg.Counters().Offlines; got != simSubjects {
		t.Fatalf("partition: monC local offlines = %d, want %d", got, simSubjects)
	}
	for _, m := range monitors {
		if c := m.g.Counters(); c.DigestsReceived == 0 {
			t.Fatalf("partition: %s received no digests — gossip not flowing", m.name)
		}
	}
	assertNoGlobal("partition")

	// Phase 3 — heal. monC recovers every stream; its ~100 mistaken
	// suspicions crush its self-reported weight to the floor (Impact-FD
	// behaviour), while the verdict table stays clean.
	for _, s := range subjNames {
		net.Heal(s, "monC")
	}
	sim.Advance(3 * clock.Second)
	if got := monC.reg.Counters().Trusts; got < simSubjects {
		t.Fatalf("heal: monC recovered only %d streams", got)
	}
	if w, floor := monC.g.Weight(), monC.g.Options().WeightFloor; w != floor {
		t.Fatalf("heal: monC weight = %v, want the %v floor after ~100 mistakes", w, floor)
	}
	assertNoGlobal("heal")

	// Phase 4 — a genuine crash. Every monitor must locally detect it AND
	// publish a corroborated GlobalOffline within 2× its local detection
	// time (gossip adds at most an interval + a link delay on top).
	const victim = "s007"
	subjects[7].alive = false
	crashAt := sim.Now()
	sim.Advance(3 * clock.Second)
	for _, m := range monitors {
		evs := drain(m.sub)
		var localOff, globalOff *registry.Event
		for i := range evs {
			ev := evs[i]
			if ev.Peer != victim {
				if ge := globalEvents([]registry.Event{ev}); len(ge) != 0 {
					t.Fatalf("crash: %s global event for innocent subject: %+v", m.name, ev)
				}
				continue
			}
			switch ev.Type {
			case registry.EventOffline:
				localOff = &evs[i]
			case registry.EventGlobalOffline:
				globalOff = &evs[i]
			}
		}
		if localOff == nil {
			t.Fatalf("crash: %s never locally offlined %s", m.name, victim)
		}
		if globalOff == nil {
			t.Fatalf("crash: %s never published GlobalOffline for %s", m.name, victim)
		}
		localD := localOff.At.Sub(crashAt)
		globalD := globalOff.At.Sub(crashAt)
		if globalD > 2*localD {
			t.Fatalf("crash: %s global detection %v exceeds 2× local %v", m.name, globalD, localD)
		}
		if v := m.g.VerdictOf(victim); v != StateOffline {
			t.Fatalf("crash: %s verdict = %v, want offline", m.name, v)
		}
	}

	// Phase 5 — restart with a bumped incarnation: sequence numbers start
	// over, and every monitor must recant back to trusted.
	subjects[7].alive = true
	subjects[7].inc = 1
	subjects[7].seq = 0
	sim.Advance(3 * clock.Second)
	for _, m := range monitors {
		if v := m.g.VerdictOf(victim); v != StateTrusted {
			t.Fatalf("restart: %s verdict = %v, want trusted", m.name, v)
		}
		if inc, ok := m.reg.IncarnationOf(victim); !ok || inc != 1 {
			t.Fatalf("restart: %s incarnation = %d/%v, want 1", m.name, inc, ok)
		}
		evs := drain(m.sub)
		trusts := eventsOfType(evs, registry.EventGlobalTrust)
		found := false
		for _, ev := range trusts {
			if ev.Peer == victim && ev.Incarnation == 1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("restart: %s published no GlobalTrust@inc1 for %s (events: %+v)", m.name, victim, trusts)
		}
	}

	// The same seed must reproduce the same traffic: a coarse determinism
	// canary that catches unordered-map iteration sneaking into the path.
	delivered, dropped := net.Stats()
	if delivered == 0 || dropped == 0 {
		t.Fatalf("implausible traffic stats: delivered %d dropped %d", delivered, dropped)
	}
}
