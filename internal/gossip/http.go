package gossip

import (
	"encoding/json"
	"net/http"
	"sort"
)

// Handler returns the gossiper's HTTP surface, mounted at /gossip by
// `sfdmon -mode monitor -gossip ... -serve :8080`: one JSON document
// with this monitor's identity, weight, peers, open verdicts, and the
// remote opinion table.
func (g *Gossiper) Handler() http.Handler {
	return http.HandlerFunc(g.serveGossip)
}

type opinionJSON struct {
	Monitor string  `json:"monitor"`
	State   string  `json:"state"`
	Inc     uint64  `json:"incarnation"`
	Level   float64 `json:"level"`
}

type verdictJSON struct {
	Subject  string        `json:"subject"`
	State    string        `json:"state"`
	Opinions []opinionJSON `json:"opinions,omitempty"`
}

type gossipJSON struct {
	ID          string             `json:"id"`
	Weight      float64            `json:"weight"`
	MistakeRate float64            `json:"mistake_rate"`
	Quorum      int                `json:"quorum"`
	MinMass     float64            `json:"min_mass"`
	Peers       []string           `json:"peers"`
	PeerWeights map[string]float64 `json:"peer_weights"`
	Counters    Counters           `json:"counters"`
	Verdicts    []verdictJSON      `json:"verdicts"`
}

func (g *Gossiper) serveGossip(w http.ResponseWriter, _ *http.Request) {
	g.mu.Lock()
	out := gossipJSON{
		ID:          g.id,
		Weight:      g.weightLocked(),
		MistakeRate: g.mistakeRate,
		Quorum:      g.opts.Quorum,
		MinMass:     g.opts.MinMass,
		Peers:       append([]string(nil), g.peers...),
		PeerWeights: make(map[string]float64, len(g.weights)),
	}
	for mon, wt := range g.weights {
		out.PeerWeights[mon] = wt
	}
	subjects := make([]string, 0, len(g.verdict))
	for s := range g.verdict {
		subjects = append(subjects, s)
	}
	sort.Strings(subjects)
	for _, s := range subjects {
		v := verdictJSON{Subject: s, State: g.verdict[s].String()}
		mons := make([]string, 0, len(g.remote[s]))
		for mon := range g.remote[s] {
			mons = append(mons, mon)
		}
		sort.Strings(mons)
		for _, mon := range mons {
			op := g.remote[s][mon]
			v.Opinions = append(v.Opinions, opinionJSON{
				Monitor: mon, State: op.State.String(), Inc: op.Inc, Level: op.Level,
			})
		}
		out.Verdicts = append(out.Verdicts, v)
	}
	g.mu.Unlock()
	out.Counters = g.Counters()

	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}
