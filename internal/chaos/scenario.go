package chaos

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/clock"
)

// Span is a clock.Duration that marshals as a human duration string
// ("250ms") and unmarshals from either a string or an integer nanosecond
// count, so scenario files stay readable.
type Span clock.Duration

// MarshalJSON implements json.Marshaler.
func (s Span) MarshalJSON() ([]byte, error) {
	return []byte(`"` + clock.Duration(s).String() + `"`), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Span) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var str string
		if err := json.Unmarshal(b, &str); err != nil {
			return err
		}
		d, err := time.ParseDuration(str)
		if err != nil {
			return fmt.Errorf("chaos: bad duration %q: %w", str, err)
		}
		*s = Span(d)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return err
	}
	*s = Span(ns)
	return nil
}

// Step is one timeline entry of a Scenario: arm Impairment at At (from
// scenario start), disarm after Duration (0 = stay armed until the
// controller is reset).
type Step struct {
	At         Span       `json:"at"`
	Duration   Span       `json:"duration,omitempty"`
	Impairment Impairment `json:"impairment"`
}

// Scenario is an ordered impairment timeline, replayable against a live
// fleet via Controller.Play. Seed feeds the controller's rand.Rand so a
// scenario names its own reproducible randomness (0 keeps the
// controller's current seed).
type Scenario struct {
	Name  string `json:"name,omitempty"`
	Seed  int64  `json:"seed,omitempty"`
	Steps []Step `json:"steps"`
}

// Validate checks every step's impairment and timing.
func (sc Scenario) Validate() error {
	if len(sc.Steps) == 0 {
		return fmt.Errorf("chaos: scenario %q has no steps", sc.Name)
	}
	for i, st := range sc.Steps {
		if st.At < 0 || st.Duration < 0 {
			return fmt.Errorf("chaos: step %d has negative timing", i)
		}
		if err := st.Impairment.Validate(); err != nil {
			return fmt.Errorf("chaos: step %d: %w", i, err)
		}
	}
	return nil
}

// Marshal renders the scenario as indented JSON.
func (sc Scenario) Marshal() []byte {
	b, _ := json.MarshalIndent(sc, "", "  ")
	return append(b, '\n')
}

// ParseScenario decodes a JSON scenario and validates it.
func ParseScenario(b []byte) (Scenario, error) {
	var sc Scenario
	if err := json.Unmarshal(b, &sc); err != nil {
		return Scenario{}, fmt.Errorf("chaos: scenario JSON: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// ParseDSL parses the compact flag form of a scenario: semicolon-
// separated steps of
//
//	AT+DURATION:KIND(key=value,...)
//
// with optional leading "name=..." and "seed=N" entries. Durations use
// Go syntax; DURATION 0 means "stay armed". Peer lists separate
// addresses with "|". Example:
//
//	seed=7;2s+10s:loss(rate=0.3,burst=5);15s+5s:partition(dir=in,peers=10.0.0.1:7946);22s+0:skew(offset=500ms,drift=200)
func ParseDSL(s string) (Scenario, error) {
	var sc Scenario
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if v, ok := strings.CutPrefix(part, "name="); ok && !strings.Contains(part, ":") {
			sc.Name = v
			continue
		}
		if v, ok := strings.CutPrefix(part, "seed="); ok && !strings.Contains(part, ":") {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return Scenario{}, fmt.Errorf("chaos: bad seed %q", v)
			}
			sc.Seed = n
			continue
		}
		st, err := parseDSLStep(part)
		if err != nil {
			return Scenario{}, err
		}
		sc.Steps = append(sc.Steps, st)
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

func parseDSLStep(s string) (Step, error) {
	timing, body, ok := strings.Cut(s, ":")
	if !ok {
		return Step{}, fmt.Errorf("chaos: step %q: want AT+DUR:KIND(...)", s)
	}
	atStr, durStr, ok := strings.Cut(timing, "+")
	if !ok {
		return Step{}, fmt.Errorf("chaos: step %q: timing wants AT+DUR", s)
	}
	var st Step
	at, err := parseDur(atStr)
	if err != nil {
		return Step{}, fmt.Errorf("chaos: step %q: %w", s, err)
	}
	dur, err := parseDur(durStr)
	if err != nil {
		return Step{}, fmt.Errorf("chaos: step %q: %w", s, err)
	}
	st.At, st.Duration = Span(at), Span(dur)

	kind, params, hasParams := strings.Cut(body, "(")
	st.Impairment.Kind = Kind(strings.TrimSpace(kind))
	if hasParams {
		params = strings.TrimSuffix(strings.TrimSpace(params), ")")
		if err := parseDSLParams(&st.Impairment, params); err != nil {
			return Step{}, fmt.Errorf("chaos: step %q: %w", s, err)
		}
	}
	return st, nil
}

func parseDSLParams(im *Impairment, s string) error {
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("bad parameter %q", kv)
		}
		var err error
		switch k {
		case "rate":
			im.Rate, err = strconv.ParseFloat(v, 64)
		case "burst":
			im.Burst, err = strconv.ParseFloat(v, 64)
		case "drift":
			im.DriftPPM, err = strconv.ParseFloat(v, 64)
		case "bytes":
			im.Bytes, err = strconv.Atoi(v)
		case "delay":
			var d clock.Duration
			d, err = parseDur(v)
			im.Delay = Span(d)
		case "jitter":
			var d clock.Duration
			d, err = parseDur(v)
			im.Jitter = Span(d)
		case "offset":
			var d clock.Duration
			d, err = parseDur(v)
			im.Offset = Span(d)
		case "dir":
			im.Direction, err = parseDirection(v)
		case "peers":
			im.Peers = strings.Split(v, "|")
		default:
			return fmt.Errorf("unknown parameter %q", k)
		}
		if err != nil {
			return fmt.Errorf("parameter %q: %v", kv, err)
		}
	}
	return nil
}

// parseDur accepts Go duration syntax plus a bare "0".
func parseDur(s string) (clock.Duration, error) {
	s = strings.TrimSpace(s)
	if s == "0" {
		return 0, nil
	}
	return time.ParseDuration(s)
}

// DSL renders the scenario in ParseDSL's compact form (steps sorted by
// At; the inverse of ParseDSL up to parameter ordering).
func (sc Scenario) DSL() string {
	var parts []string
	if sc.Name != "" {
		parts = append(parts, "name="+sc.Name)
	}
	if sc.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatInt(sc.Seed, 10))
	}
	steps := append([]Step(nil), sc.Steps...)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })
	for _, st := range steps {
		dur := "0"
		if st.Duration > 0 {
			dur = clock.Duration(st.Duration).String()
		}
		parts = append(parts, fmt.Sprintf("%s+%s:%s",
			clock.Duration(st.At), dur, st.Impairment))
	}
	return strings.Join(parts, ";")
}
