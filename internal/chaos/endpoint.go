package chaos

import (
	"sync"
	"sync/atomic"

	"repro/internal/transport"
)

// Endpoint wraps a transport.Endpoint and applies the Controller's armed
// impairments to traffic in both directions. Several Endpoints may share
// one Controller (a fleet drill steers every node from one schedule);
// all injection randomness and counters live in the Controller.
//
// Outbound: Send consults the controller and drops, truncates, delays,
// duplicates, or passes the datagram before it reaches the inner
// endpoint. Inbound: either call Start to pump the inner endpoint on a
// goroutine (live use), or feed datagrams through Process directly
// (deterministic tests drive impairments synchronously under clock.Sim).
// Either way consumers read the impaired stream from Recv.
type Endpoint struct {
	inner   transport.Endpoint
	ctl     *Controller
	recv    chan transport.Inbound
	started atomic.Bool

	// closeMu serializes (possibly delayed) deliveries against close:
	// recv may only be closed once no deliverer can still be inside a
	// send — the same discipline transport.MemEndpoint uses.
	closeMu  sync.RWMutex
	isClosed bool
	once     sync.Once
}

// Wrap layers chaos injection over inner, steered by ctl.
func Wrap(inner transport.Endpoint, ctl *Controller) *Endpoint {
	return &Endpoint{
		inner: inner,
		ctl:   ctl,
		recv:  make(chan transport.Inbound, 4096),
	}
}

// Start pumps the inner endpoint's receive channel through the
// impairment path on a new goroutine, closing Recv when the inner
// endpoint closes. Do not combine with manual Process calls.
func (e *Endpoint) Start() {
	if !e.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		for in := range e.inner.Recv() {
			e.Process(in)
		}
		e.closeRecv()
	}()
}

// Process runs one inbound datagram through the armed impairments,
// delivering survivors (and any duplicates) to Recv. Exported so
// deterministic tests can drive the inbound path without a pump
// goroutine.
func (e *Endpoint) Process(in transport.Inbound) {
	v := e.ctl.decide(DirIn, in.From, len(in.Payload))
	if v.drop {
		in.Release() // recycle the pooled receive buffer on injected loss
		return
	}
	if v.truncateTo >= 0 && v.truncateTo < len(in.Payload) {
		in.Payload = in.Payload[:v.truncateTo]
	}
	if v.dup {
		cp := transport.Inbound{From: in.From, Payload: append([]byte(nil), in.Payload...)}
		e.ctl.schedule(v.delay+v.dupDelay, func() { e.deliver(cp) })
	}
	if v.delay > 0 {
		held := in
		e.ctl.schedule(v.delay, func() { e.deliver(held) })
		return
	}
	e.deliver(in)
}

func (e *Endpoint) deliver(in transport.Inbound) {
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.isClosed {
		in.Release()
		return
	}
	select {
	case e.recv <- in:
	default:
		e.ctl.overflow.Add(1)
		in.Release()
	}
}

// Send implements transport.Endpoint. Dropped datagrams return nil — an
// injected loss is indistinguishable from a network loss, exactly the
// Endpoint contract. Delayed and duplicated sends are re-issued from
// the controller's clock; their late errors are discarded.
func (e *Endpoint) Send(to string, payload []byte) error {
	v := e.ctl.decide(DirOut, to, len(payload))
	if v.drop {
		return nil
	}
	p := payload
	if v.truncateTo >= 0 && v.truncateTo < len(p) {
		p = p[:v.truncateTo]
	}
	if v.dup {
		cp := append([]byte(nil), p...)
		e.ctl.schedule(v.delay+v.dupDelay, func() { _ = e.inner.Send(to, cp) })
	}
	if v.delay > 0 {
		cp := append([]byte(nil), p...)
		e.ctl.schedule(v.delay, func() { _ = e.inner.Send(to, cp) })
		return nil
	}
	return e.inner.Send(to, p)
}

// Recv implements transport.Endpoint; it yields the impaired inbound
// stream.
func (e *Endpoint) Recv() <-chan transport.Inbound { return e.recv }

// Addr implements transport.Endpoint.
func (e *Endpoint) Addr() string { return e.inner.Addr() }

// Close implements transport.Endpoint. With Start running, Recv closes
// once the inner pump drains; otherwise it closes immediately.
func (e *Endpoint) Close() error {
	err := e.inner.Close()
	if !e.started.Load() {
		e.closeRecv()
	}
	return err
}

func (e *Endpoint) closeRecv() {
	e.once.Do(func() {
		e.closeMu.Lock()
		e.isClosed = true
		close(e.recv)
		e.closeMu.Unlock()
	})
}
