package chaos

// The QoS-bounded acceptance scenarios from the issue: the self-tuning
// contract the paper claims (§IV-A feedback loop, §V's misbehaving
// networks) must hold over the *live* stack — real transport path,
// registry, gossip — while this package injects the misbehavior. Every
// run is driven by one clock.Sim and a lossless synchronous Hub, with
// all randomness seeded, so the scenarios are deterministic: a failure
// reproduces byte-for-byte.

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/gossip"
	"repro/internal/heartbeat"
	"repro/internal/registry"
	"repro/internal/transport"
)

// acceptInterval is the heartbeat period of the acceptance scenarios.
const acceptInterval = 10 * clock.Millisecond

// observeInto decodes heartbeat datagrams queued on recv into the
// registry, stamping arrival with the sim's current instant.
func observeInto(reg *registry.Registry, sim *clock.Sim, recv <-chan transport.Inbound) {
	for {
		select {
		case in, ok := <-recv:
			if !ok {
				return
			}
			msg, err := heartbeat.Unmarshal(in.Payload)
			if err != nil || msg.Kind != heartbeat.KindHeartbeat {
				continue
			}
			reg.Observe(heartbeat.Arrival{
				From: in.From, Seq: msg.Seq, Send: msg.Time, Recv: sim.Now(), Inc: msg.Inc,
			})
		default:
			return
		}
	}
}

// margins reads the peer's self-tuning detector under the shard lock.
func sfdOf(t *testing.T, reg *registry.Registry, peer string) (margin clock.Duration, state core.State, history []core.Adjustment) {
	t.Helper()
	ok := reg.Inspect(peer, func(det detector.Detector) {
		s, isSFD := det.(*core.SFD)
		if !isSFD {
			t.Fatalf("detector for %s is %T, want *core.SFD", peer, det)
		}
		margin, state = s.Margin(), s.State()
		history = append(history, s.History()...)
	})
	if !ok {
		t.Fatalf("peer %s not tracked", peer)
	}
	return margin, state, history
}

// TestAcceptLossBurstMarginReconverges asserts the paper's headline
// behavior end to end: during a Gilbert–Elliott loss burst the safety
// margin SM widens (accuracy feedback, Sat=+β), and after the network
// heals the widened margin violates the detection-time target, so the
// loop shrinks it back (Sat=−β) and re-stabilizes within a bounded
// number of slots.
func TestAcceptLossBurstMarginReconverges(t *testing.T) {
	sim := clock.NewSim(0)
	hub := transport.NewHub(0, 0, 1)
	ctl := NewController(sim, 99)
	sender := Wrap(hub.Endpoint("proc-1"), ctl) // outbound chaos on the sender
	mon := hub.Endpoint("monitor")
	defer sender.Close()
	defer mon.Close()

	cfg := core.Config{
		WindowSize:     64,
		Interval:       acceptInterval,
		InitialMargin:  30 * clock.Millisecond,
		Alpha:          20 * clock.Millisecond,
		Beta:           0.5, // margin moves ±10 ms per adjusted slot
		SlotHeartbeats: 50,  // ≈ one slot per 500 ms of healthy traffic
		Targets: core.Targets{
			MaxTD:  60 * clock.Millisecond,
			MaxMR:  0.2, // mistakes/s
			MinQAP: 0.99,
		},
		FillGaps:   true,
		MaxGapFill: 8,
	}
	reg := registry.New(sim,
		func(string) detector.Detector { return core.New(cfg) },
		registry.Options{WheelTick: 10 * clock.Millisecond, OfflineAfter: clock.Second, EvictAfter: -1})
	reg.Start()
	defer reg.Stop()

	var seq uint64
	var emit func(clock.Time)
	emit = func(now clock.Time) {
		seq++
		b := heartbeat.Message{Kind: heartbeat.KindHeartbeat, Seq: seq, Time: now, Inc: 1}.Marshal()
		_ = sender.Send("monitor", b)
		observeInto(reg, sim, mon.Recv())
		sim.AfterFunc(acceptInterval, emit)
	}
	sim.AfterFunc(acceptInterval, emit)

	// Phase 1 — healthy warm-up: the margin must hold at SM₁ (stable).
	sim.Advance(5 * clock.Second)
	baseline, state, _ := sfdOf(t, reg, "proc-1")
	if state != core.StateStable {
		t.Fatalf("after warm-up: state %v, want stable", state)
	}
	if baseline != cfg.InitialMargin {
		t.Fatalf("baseline margin %v, want %v", baseline, cfg.InitialMargin)
	}

	// Phase 2 — burst: 55% loss in mean runs of 8 heartbeats. Runs of
	// ≥ 4 lost heartbeats push the next arrival past fp = EA+SM, so
	// mistakes accumulate and accuracy feedback must widen SM.
	lossID, err := ctl.Arm(Impairment{Kind: KindLoss, Rate: 0.55, Burst: 8})
	if err != nil {
		t.Fatal(err)
	}
	peak := baseline
	for i := 0; i < 100; i++ {
		sim.Advance(100 * clock.Millisecond)
		if m, _, _ := sfdOf(t, reg, "proc-1"); m > peak {
			peak = m
		}
	}
	if peak <= baseline {
		t.Fatalf("margin never widened during the loss burst: peak %v ≤ baseline %v", peak, baseline)
	}
	if ctl.Counters().LossDrops == 0 {
		t.Fatal("loss impairment armed but nothing dropped")
	}

	// Phase 3 — heal. The widened margin now makes TD = Δt+SM exceed
	// MaxTD with accuracy restored, so the loop must shrink SM until the
	// target box is re-entered, and stay there.
	ctl.Disarm(lossID)
	healSlots := func() int {
		_, _, h := sfdOf(t, reg, "proc-1")
		return len(h)
	}()
	sim.Advance(15 * clock.Second)
	final, state, hist := sfdOf(t, reg, "proc-1")
	if state != core.StateStable {
		t.Fatalf("after heal: state %v (margin %v), want stable", state, final)
	}
	if final >= peak {
		t.Fatalf("margin did not re-converge: final %v ≥ peak %v", final, peak)
	}
	// TD target re-satisfied: SM ≤ MaxTD − Δt.
	if final > cfg.Targets.MaxTD-acceptInterval {
		t.Fatalf("final margin %v still violates MaxTD %v at Δt %v", final, cfg.Targets.MaxTD, acceptInterval)
	}
	// Bounded re-convergence: stable verdict within 10 slots of heal.
	reconverged := -1
	for i := healSlots; i < len(hist); i++ {
		if hist[i].Verdict == core.VerdictStable {
			reconverged = i - healSlots
			break
		}
	}
	if reconverged < 0 || reconverged > 10 {
		t.Fatalf("no stable verdict within 10 slots of heal (got %d; %d post-heal slots)", reconverged, len(hist)-healSlots)
	}
	t.Logf("margin %v → peak %v → final %v; stable %d slots after heal; %d heartbeats dropped",
		time.Duration(baseline), time.Duration(peak), time.Duration(final),
		reconverged, ctl.Counters().LossDrops)
}

// TestAcceptDuplicationReorderQAPFloor asserts the accuracy floor under
// duplication and reordering: the registry's incarnation/sequence stale
// filter must absorb both impairments before they reach the detector, so
// QAP never leaves the target box and the margin never moves.
func TestAcceptDuplicationReorderQAPFloor(t *testing.T) {
	sim := clock.NewSim(0)
	hub := transport.NewHub(0, 0, 1)
	ctl := NewController(sim, 17)
	sender := hub.Endpoint("proc-1")
	monRaw := hub.Endpoint("monitor")
	mon := Wrap(monRaw, ctl) // inbound chaos on the monitor
	defer sender.Close()
	defer mon.Close()

	cfg := core.Config{
		WindowSize:     64,
		Interval:       acceptInterval,
		InitialMargin:  30 * clock.Millisecond,
		Alpha:          20 * clock.Millisecond,
		Beta:           0.5,
		SlotHeartbeats: 50,
		Targets: core.Targets{
			MaxTD:  60 * clock.Millisecond,
			MaxMR:  0.2,
			MinQAP: 0.99,
		},
		FillGaps:   true,
		MaxGapFill: 8,
	}
	reg := registry.New(sim,
		func(string) detector.Detector { return core.New(cfg) },
		registry.Options{WheelTick: 10 * clock.Millisecond, OfflineAfter: clock.Second, EvictAfter: -1})
	reg.Start()
	defer reg.Stop()

	var seq uint64
	var emit func(clock.Time)
	emit = func(now clock.Time) {
		seq++
		b := heartbeat.Message{Kind: heartbeat.KindHeartbeat, Seq: seq, Time: now, Inc: 1}.Marshal()
		_ = sender.Send("monitor", b)
		// Route the raw hub deliveries through the impairment path, then
		// feed survivors (and injected duplicates) to the registry.
		for _, in := range drain(monRaw.Recv()) {
			mon.Process(in)
		}
		observeInto(reg, sim, mon.Recv())
		sim.AfterFunc(acceptInterval, emit)
	}
	sim.AfterFunc(acceptInterval, emit)

	sim.Advance(2 * clock.Second) // warm up clean
	if _, err := ctl.Arm(Impairment{Kind: KindDuplicate, Rate: 0.3, Delay: Span(5 * clock.Millisecond)}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Arm(Impairment{Kind: KindReorder, Rate: 0.2, Delay: Span(25 * clock.Millisecond)}); err != nil {
		t.Fatal(err)
	}
	sim.Advance(20 * clock.Second)

	c := ctl.Counters()
	if c.Duplicated == 0 || c.Reordered == 0 {
		t.Fatalf("impairments idle: %+v", c)
	}
	margin, state, hist := sfdOf(t, reg, "proc-1")
	if state != core.StateStable {
		t.Fatalf("state %v, want stable under dup/reorder", state)
	}
	if margin != cfg.InitialMargin {
		t.Fatalf("margin moved to %v under dup/reorder; stale filter leaked", margin)
	}
	if len(hist) == 0 {
		t.Fatal("no slots evaluated")
	}
	minQAP, maxMR := 1.0, 0.0
	for _, adj := range hist {
		if adj.Measured.QAP < cfg.Targets.MinQAP {
			t.Fatalf("slot %d QAP %.4f below floor %.4f", adj.Slot, adj.Measured.QAP, cfg.Targets.MinQAP)
		}
		if adj.Measured.MR > cfg.Targets.MaxMR {
			t.Fatalf("slot %d MR %.3f above cap %.3f", adj.Slot, adj.Measured.MR, cfg.Targets.MaxMR)
		}
		if adj.Measured.QAP < minQAP {
			minQAP = adj.Measured.QAP
		}
		if adj.Measured.MR > maxMR {
			maxMR = adj.Measured.MR
		}
	}
	// The impairments really hit the registry: duplicates and late
	// reordered originals must show up as stale observations.
	st, ok := reg.Stats("proc-1")
	if !ok || st.Stale == 0 {
		t.Fatalf("stale filter saw nothing (stats %+v) — impairment path bypassed?", st)
	}
	t.Logf("%d slots: worst QAP %.4f, worst MR %.3f/s; %d duplicated + %d reordered absorbed (%d stale)",
		len(hist), minQAP, maxMR, c.Duplicated, c.Reordered, st.Stale)
}

// TestAcceptOneSidedPartitionNoGlobalOffline asserts the quorum
// contract under a directional partition: one monitor losing *inbound*
// heartbeats declares the fleet offline locally, but with the other two
// monitors still hearing every subject, no global-offline verdict may
// fire anywhere; after the heal the partitioned monitor must trust the
// subjects again. The partition is armed through a Scenario, which also
// exercises Play under the simulated clock.
func TestAcceptOneSidedPartitionNoGlobalOffline(t *testing.T) {
	const (
		beat         = 100 * clock.Millisecond
		offlineAfter = 300 * clock.Millisecond
	)
	sim := clock.NewSim(0)
	hub := transport.NewHub(0, 0, 1)
	ctl := NewController(sim, 31)

	monNames := []string{"monA", "monB", "monC"}
	subjects := []string{"s1", "s2", "s3"}

	type monitor struct {
		name string
		ep   transport.Endpoint
		raw  *transport.MemEndpoint
		ch   *Endpoint // non-nil on the impaired monitor
		reg  *registry.Registry
		g    *gossip.Gossiper
		sub  *registry.Subscription
	}
	mons := make([]*monitor, 0, len(monNames))
	for i, name := range monNames {
		m := &monitor{name: name, raw: hub.Endpoint(name)}
		m.ep = m.raw
		if name == "monA" {
			m.ch = Wrap(m.raw, ctl)
			m.ep = m.ch
		}
		m.reg = registry.New(sim,
			func(string) detector.Detector { return detector.NewChen(16, beat, 200*clock.Millisecond) },
			registry.Options{WheelTick: 10 * clock.Millisecond, OfflineAfter: offlineAfter, MaxSilence: 2 * clock.Second, EvictAfter: -1})
		m.reg.Start()
		peers := make([]string, 0, 2)
		for _, p := range monNames {
			if p != name {
				peers = append(peers, p)
			}
		}
		m.g = gossip.New(m.ep, sim, m.reg, peers, gossip.Options{
			Interval: 150 * clock.Millisecond,
			Quorum:   2,
			Seed:     int64(i + 1),
		})
		m.g.Start()
		m.sub = m.reg.Subscribe(1 << 15)
		mons = append(mons, m)
	}
	defer func() {
		for _, m := range mons {
			m.g.Stop()
			m.reg.Stop()
			_ = m.ep.Close()
		}
	}()

	// Monitor pumps: drain the hub endpoint every 5 ms, monA routing
	// through the impairment path first, and discriminate heartbeat vs
	// gossip datagrams by magic — the sfdmon shared-socket pattern.
	for _, m := range mons {
		m := m
		var pump func(clock.Time)
		pump = func(clock.Time) {
			ins := drain(m.raw.Recv())
			if m.ch != nil {
				for _, in := range ins {
					m.ch.Process(in)
				}
				ins = drain(m.ch.Recv())
			}
			for _, in := range ins {
				if msg, err := heartbeat.Unmarshal(in.Payload); err == nil {
					if msg.Kind == heartbeat.KindHeartbeat {
						m.reg.Observe(heartbeat.Arrival{
							From: in.From, Seq: msg.Seq, Send: msg.Time, Recv: sim.Now(), Inc: msg.Inc,
						})
					}
					continue
				}
				m.g.HandleDatagram(in.Payload)
			}
			sim.AfterFunc(5*clock.Millisecond, pump)
		}
		sim.AfterFunc(5*clock.Millisecond, pump)
	}

	// Subjects heartbeat to every monitor.
	for _, s := range subjects {
		s := s
		ep := hub.Endpoint(s)
		defer ep.Close()
		var seq uint64
		var emit func(clock.Time)
		emit = func(now clock.Time) {
			seq++
			b := heartbeat.Message{Kind: heartbeat.KindHeartbeat, Seq: seq, Time: now, Inc: 1}.Marshal()
			for _, m := range monNames {
				_ = ep.Send(m, b)
			}
			sim.AfterFunc(beat, emit)
		}
		sim.AfterFunc(beat, emit)
	}

	// Scenario: silence the subjects' heartbeats into monA (inbound,
	// subjects only — gossip from monB/monC still flows) for 4 s.
	sc := Scenario{
		Name: "one-sided-partition",
		Seed: 31,
		Steps: []Step{{
			At:       Span(3 * clock.Second),
			Duration: Span(4 * clock.Second),
			Impairment: Impairment{
				Kind: KindPartition, Direction: DirIn, Peers: subjects,
			},
		}},
	}
	if err := ctl.Play(sc); err != nil {
		t.Fatal(err)
	}
	sim.Advance(12 * clock.Second)

	if ctl.Counters().PartDrops == 0 {
		t.Fatal("partition never dropped a heartbeat")
	}
	if n := len(ctl.Active()); n != 0 {
		t.Fatalf("%d impairments still armed after the scenario window", n)
	}

	type tally struct{ offline, globalOffline, lateTrust int }
	tallies := make(map[string]*tally)
	for _, m := range mons {
		tl := &tally{}
		tallies[m.name] = tl
		for {
			var done bool
			select {
			case ev := <-m.sub.C():
				switch ev.Type {
				case registry.EventOffline:
					tl.offline++
				case registry.EventGlobalOffline:
					tl.globalOffline++
				case registry.EventTrust:
					// The heal fires at exactly t=7s, and the first
					// post-heal heartbeat can land in the same instant.
					if ev.At >= clock.Time(7*clock.Second) {
						tl.lateTrust++
					}
				}
			default:
				done = true
			}
			if done {
				break
			}
		}
	}
	// The quorum rule is the whole point: one partitioned monitor's
	// opinion must never become a fleet verdict.
	for name, tl := range tallies {
		if tl.globalOffline != 0 {
			t.Fatalf("%s saw %d global-offline verdicts during a one-sided partition", name, tl.globalOffline)
		}
	}
	if tallies["monA"].offline == 0 {
		t.Fatal("monA never locally declared a subject offline — partition ineffective")
	}
	if tallies["monA"].lateTrust < len(subjects) {
		t.Fatalf("monA re-trusted %d subjects after heal, want ≥ %d", tallies["monA"].lateTrust, len(subjects))
	}
	if tallies["monB"].offline != 0 || tallies["monC"].offline != 0 {
		t.Fatalf("unimpaired monitors declared offlines: B=%d C=%d",
			tallies["monB"].offline, tallies["monC"].offline)
	}
	t.Logf("monA local offlines %d, global-offline verdicts 0 on all monitors, post-heal trusts %d; %d datagrams blackholed",
		tallies["monA"].offline, tallies["monA"].lateTrust, ctl.Counters().PartDrops)
}
