package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// DefaultLogCap bounds the injection log (entries); older drills stay
// inspectable without letting a long soak grow memory without bound.
const DefaultLogCap = 8192

// Counters is the controller's monotonic injection-counter snapshot.
type Counters struct {
	SentSeen     uint64 `json:"sent_seen"`     // outbound datagrams inspected
	RecvSeen     uint64 `json:"recv_seen"`     // inbound datagrams inspected
	LossDrops    uint64 `json:"loss_drops"`    // dropped by the loss channel
	PartDrops    uint64 `json:"part_drops"`    // dropped by a partition
	Delayed      uint64 `json:"delayed"`       // deliveries postponed
	Reordered    uint64 `json:"reordered"`     // deliveries held back past successors
	Duplicated   uint64 `json:"duplicated"`    // extra copies injected
	Truncated    uint64 `json:"truncated"`     // payloads cut short
	Overflow     uint64 `json:"overflow"`      // deliveries lost to a full chaos queue
	LogDropped   uint64 `json:"log_dropped"`   // decisions not logged (cap reached)
	StepsArmed   uint64 `json:"steps_armed"`   // impairments armed (manual or scenario)
	StepsCleared uint64 `json:"steps_cleared"` // impairments disarmed
}

// armed is one live impairment plus its per-impairment channel state.
type armed struct {
	id    uint64
	imp   Impairment
	ge    *stats.GilbertElliott // loss only
	since clock.Time
	until clock.Time // 0 = indefinite
}

// afterFuncer is satisfied by clock.Sim; under a simulated clock all
// chaos scheduling (delayed deliveries, scenario steps) runs as
// deterministic timer callbacks, the same pattern the registry wheel and
// gossip rounds use.
type afterFuncer interface {
	AfterFunc(clock.Duration, func(clock.Time))
}

// Controller owns the impairment set, the seeded randomness, and the
// injection log shared by every Endpoint wrapped through it. Arm,
// Disarm, and Play may be called at runtime while traffic flows; all
// methods are safe for concurrent use.
type Controller struct {
	clk clock.Clock

	mu       sync.Mutex
	rng      *rand.Rand
	seed     int64
	armedSet []*armed // ascending id: decisions apply in arm order
	nextID   uint64
	clocks   []*SkewedClock
	scenario string
	log      bytes.Buffer
	logN     int
	logCap   int
	decided  uint64 // decision ordinal (the log's first column)

	// stepFns observe impairment arm/disarm transitions (scenario steps
	// and manual calls alike) — the programmatic form of the injection
	// log's timeline, used by load harnesses to correlate QoS dips with
	// impairment windows. Guarded by mu; invoked outside it.
	stepFns []func(StepEvent)

	sentSeen   atomic.Uint64
	recvSeen   atomic.Uint64
	lossDrops  atomic.Uint64
	partDrops  atomic.Uint64
	delayed    atomic.Uint64
	reordered  atomic.Uint64
	duplicated atomic.Uint64
	truncated  atomic.Uint64
	overflow   atomic.Uint64
	logDropped atomic.Uint64
	stepsArm   atomic.Uint64
	stepsClear atomic.Uint64
}

// NewController builds an idle controller (no impairments armed) drawing
// injection randomness from seed (0 means 1). nil clk defaults to the
// real clock.
func NewController(clk clock.Clock, seed int64) *Controller {
	if clk == nil {
		clk = clock.NewReal()
	}
	if seed == 0 {
		seed = 1
	}
	return &Controller{
		clk:    clk,
		rng:    rand.New(rand.NewSource(seed)),
		seed:   seed,
		logCap: DefaultLogCap,
	}
}

// Seed returns the active randomness seed.
func (c *Controller) Seed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seed
}

// SetLogCap bounds the injection log to n entries (0 disables logging).
func (c *Controller) SetLogCap(n int) {
	c.mu.Lock()
	c.logCap = n
	c.mu.Unlock()
}

// StepEvent is one impairment transition: an impairment armed
// (Armed=true) or disarmed, at instant At, under scenario Scenario (""
// for manual Arm/Disarm outside a Play timeline).
type StepEvent struct {
	Scenario   string
	ID         uint64
	Impairment Impairment
	Armed      bool
	At         clock.Time
}

// OnStep registers fn to observe every subsequent impairment transition.
// Callbacks run synchronously on the arming/disarming goroutine (a
// scenario timer under Play, the caller otherwise), so they must be
// fast; they must not call back into Arm/Disarm.
func (c *Controller) OnStep(fn func(StepEvent)) {
	if fn == nil {
		return
	}
	c.mu.Lock()
	c.stepFns = append(c.stepFns, fn)
	c.mu.Unlock()
}

// notifyStep fans a transition out to the registered observers. The
// controller mutex must not be held.
func (c *Controller) notifyStep(id uint64, im Impairment, armed bool, at clock.Time) {
	c.mu.Lock()
	fns := c.stepFns
	scenario := c.scenario
	c.mu.Unlock()
	if len(fns) == 0 {
		return
	}
	ev := StepEvent{Scenario: scenario, ID: id, Impairment: im, Armed: armed, At: at}
	for _, fn := range fns {
		fn(ev)
	}
}

// Arm activates an impairment immediately and returns its id for
// Disarm. Invalid impairments are rejected.
func (c *Controller) Arm(im Impairment) (uint64, error) {
	return c.armUntil(im, 0)
}

func (c *Controller) armUntil(im Impairment, until clock.Time) (uint64, error) {
	if err := im.Validate(); err != nil {
		return 0, err
	}
	now := c.clk.Now()
	c.mu.Lock()
	c.nextID++
	a := &armed{id: c.nextID, imp: im, since: now, until: until}
	if im.Kind == KindLoss {
		burst := im.Burst
		if burst < 1 {
			burst = 1
		}
		a.ge = stats.NewGilbertElliott(im.Rate, burst)
	}
	c.armedSet = append(c.armedSet, a)
	var clocks []*SkewedClock
	if im.Kind == KindSkew {
		clocks = append(clocks, c.clocks...)
	}
	id := a.id
	c.mu.Unlock()
	c.stepsArm.Add(1)
	for _, sc := range clocks {
		sc.SetSkew(clock.Duration(im.Offset), im.DriftPPM)
	}
	c.notifyStep(id, im, true, now)
	return id, nil
}

// Disarm deactivates an armed impairment; it reports whether the id was
// live. Disarming a skew impairment steps attached clocks back to zero
// skew unless another skew impairment remains armed.
func (c *Controller) Disarm(id uint64) bool {
	c.mu.Lock()
	idx := -1
	var wasSkew bool
	var disarmed Impairment
	for i, a := range c.armedSet {
		if a.id == id {
			idx, wasSkew, disarmed = i, a.imp.Kind == KindSkew, a.imp
			break
		}
	}
	if idx < 0 {
		c.mu.Unlock()
		return false
	}
	c.armedSet = append(c.armedSet[:idx], c.armedSet[idx+1:]...)
	var reset, apply []*SkewedClock
	var remaining Impairment
	if wasSkew {
		// The newest remaining skew (if any) takes over; else reset.
		found := false
		for i := len(c.armedSet) - 1; i >= 0; i-- {
			if c.armedSet[i].imp.Kind == KindSkew {
				remaining, found = c.armedSet[i].imp, true
				break
			}
		}
		if found {
			apply = append(apply, c.clocks...)
		} else {
			reset = append(reset, c.clocks...)
		}
	}
	c.mu.Unlock()
	c.stepsClear.Add(1)
	for _, sc := range reset {
		sc.SetSkew(0, 0)
	}
	for _, sc := range apply {
		sc.SetSkew(clock.Duration(remaining.Offset), remaining.DriftPPM)
	}
	c.notifyStep(id, disarmed, false, c.clk.Now())
	return true
}

// DisarmAll clears every impairment and resets attached clocks.
func (c *Controller) DisarmAll() {
	c.mu.Lock()
	cleared := c.armedSet
	c.armedSet = nil
	clocks := append([]*SkewedClock(nil), c.clocks...)
	c.mu.Unlock()
	c.stepsClear.Add(uint64(len(cleared)))
	for _, sc := range clocks {
		sc.SetSkew(0, 0)
	}
	now := c.clk.Now()
	for _, a := range cleared {
		c.notifyStep(a.id, a.imp, false, now)
	}
}

// AttachClock registers a SkewedClock so skew impairments drive it. Any
// currently armed skew applies immediately.
func (c *Controller) AttachClock(sc *SkewedClock) {
	c.mu.Lock()
	c.clocks = append(c.clocks, sc)
	var im Impairment
	found := false
	for i := len(c.armedSet) - 1; i >= 0; i-- {
		if c.armedSet[i].imp.Kind == KindSkew {
			im, found = c.armedSet[i].imp, true
			break
		}
	}
	c.mu.Unlock()
	if found {
		sc.SetSkew(clock.Duration(im.Offset), im.DriftPPM)
	}
}

// ArmedView is one active impairment as reported by Active / the /chaos
// endpoint.
type ArmedView struct {
	ID    uint64     `json:"id"`
	Since int64      `json:"since_ns"`
	Until int64      `json:"until_ns,omitempty"` // 0 = indefinite
	Imp   Impairment `json:"impairment"`
}

// Active lists the armed impairments in arm order.
func (c *Controller) Active() []ArmedView {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ArmedView, 0, len(c.armedSet))
	for _, a := range c.armedSet {
		out = append(out, ArmedView{ID: a.id, Since: int64(a.since), Until: int64(a.until), Imp: a.imp})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Play schedules every step of the scenario relative to now: each
// impairment arms at its At instant and disarms Duration later
// (Duration 0 stays armed). A nonzero scenario seed reseeds the
// controller so the drill's randomness is self-contained.
func (c *Controller) Play(sc Scenario) error {
	if err := sc.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	c.scenario = sc.Name
	if sc.Seed != 0 {
		c.seed = sc.Seed
		c.rng = rand.New(rand.NewSource(sc.Seed))
	}
	c.mu.Unlock()
	start := c.clk.Now()
	for _, st := range sc.Steps {
		st := st
		c.schedule(clock.Duration(st.At), func() {
			var until clock.Time
			if st.Duration > 0 {
				until = start.Add(clock.Duration(st.At + st.Duration))
			}
			id, err := c.armUntil(st.Impairment, until)
			if err != nil {
				return // validated above; unreachable
			}
			if st.Duration > 0 {
				c.schedule(clock.Duration(st.Duration), func() { c.Disarm(id) })
			}
		})
	}
	return nil
}

// Scenario returns the name of the scenario last handed to Play.
func (c *Controller) Scenario() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.scenario
}

// schedule runs fn after d: a deterministic timer callback under
// clock.Sim, a goroutine under the real clock.
func (c *Controller) schedule(d clock.Duration, fn func()) {
	if d <= 0 {
		fn()
		return
	}
	if af, ok := c.clk.(afterFuncer); ok {
		af.AfterFunc(d, func(clock.Time) { fn() })
		return
	}
	go func() {
		c.clk.Sleep(d)
		fn()
	}()
}

// verdict is one datagram's injection outcome.
type verdict struct {
	drop       bool
	dropKind   Kind // loss or partition
	truncateTo int  // -1 = intact
	dup        bool
	dupDelay   clock.Duration
	delay      clock.Duration
}

// decide draws this datagram's fate from the armed impairments, in arm
// order, and appends one line to the injection log. It is the single
// randomness consumer, so identical traffic order reproduces identical
// decisions.
func (c *Controller) decide(dir Direction, peer string, size int) verdict {
	if dir == DirOut {
		c.sentSeen.Add(1)
	} else {
		c.recvSeen.Add(1)
	}
	v := verdict{truncateTo: -1}

	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.decided
	c.decided++
	var acts []string
	for _, a := range c.armedSet {
		if v.drop || !a.imp.matches(dir, peer) {
			continue
		}
		im := a.imp
		switch im.Kind {
		case KindPartition:
			v.drop, v.dropKind = true, KindPartition
			c.partDrops.Add(1)
			acts = append(acts, "drop:partition")
		case KindLoss:
			if a.ge.Drop(c.rng) {
				v.drop, v.dropKind = true, KindLoss
				c.lossDrops.Add(1)
				acts = append(acts, "drop:loss")
			}
		case KindTruncate:
			if c.rng.Float64() < im.Rate {
				cut := im.Bytes
				if cut <= 0 {
					cut = size / 2
				}
				if cut < size {
					v.truncateTo = cut
					c.truncated.Add(1)
					acts = append(acts, "trunc:"+strconv.Itoa(cut))
				}
			}
		case KindDuplicate:
			if c.rng.Float64() < im.Rate {
				v.dup = true
				v.dupDelay = clock.Duration(im.Delay)
				c.duplicated.Add(1)
				acts = append(acts, "dup")
			}
		case KindReorder:
			if c.rng.Float64() < im.Rate {
				v.delay += clock.Duration(im.Delay)
				c.reordered.Add(1)
				acts = append(acts, "reorder:"+clock.Duration(im.Delay).String())
			}
		case KindDelay:
			if im.Rate > 0 && c.rng.Float64() >= im.Rate {
				continue
			}
			d := clock.Duration(im.Delay)
			if im.Jitter > 0 {
				d += clock.Duration(c.rng.Float64() * float64(im.Jitter))
			}
			if d > 0 {
				v.delay += d
				c.delayed.Add(1)
				acts = append(acts, "delay:"+d.String())
			}
		case KindSkew:
			// Clock-only impairment: no per-datagram effect.
		}
	}
	if c.logCap > 0 {
		if c.logN < c.logCap {
			c.logN++
			action := "pass"
			if len(acts) > 0 {
				action = acts[0]
				for _, a := range acts[1:] {
					action += "+" + a
				}
			}
			fmt.Fprintf(&c.log, "%d %s %s %d %s\n", n, dir, peer, size, action)
		} else {
			c.logDropped.Add(1)
		}
	}
	return v
}

// LogBytes returns a copy of the injection log: one line per inspected
// datagram, "<ordinal> <dir> <peer> <bytes> <actions>". Same seed, same
// schedule, same traffic order ⇒ byte-identical log.
func (c *Controller) LogBytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.log.Bytes()...)
}

// ResetLog clears the injection log (the cap is unchanged).
func (c *Controller) ResetLog() {
	c.mu.Lock()
	c.log.Reset()
	c.logN = 0
	c.mu.Unlock()
}

// Counters returns the injection-counter snapshot.
func (c *Controller) Counters() Counters {
	return Counters{
		SentSeen:     c.sentSeen.Load(),
		RecvSeen:     c.recvSeen.Load(),
		LossDrops:    c.lossDrops.Load(),
		PartDrops:    c.partDrops.Load(),
		Delayed:      c.delayed.Load(),
		Reordered:    c.reordered.Load(),
		Duplicated:   c.duplicated.Load(),
		Truncated:    c.truncated.Load(),
		Overflow:     c.overflow.Load(),
		LogDropped:   c.logDropped.Load(),
		StepsArmed:   c.stepsArm.Load(),
		StepsCleared: c.stepsClear.Load(),
	}
}

// InstrumentMetrics registers the controller's injection counters in
// set, so a /metrics scrape can correlate impairment windows with QoS
// dips. Counter reads are the same atomics the injection path bumps;
// scrapes add nothing to it.
func (c *Controller) InstrumentMetrics(set *metrics.Set) {
	set.CounterFunc("sfd_chaos_sent_seen_total",
		"Outbound datagrams inspected by the chaos layer.", c.sentSeen.Load)
	set.CounterFunc("sfd_chaos_recv_seen_total",
		"Inbound datagrams inspected by the chaos layer.", c.recvSeen.Load)
	set.CounterFunc("sfd_chaos_loss_drops_total",
		"Datagrams dropped by the Gilbert-Elliott loss channel.", c.lossDrops.Load)
	set.CounterFunc("sfd_chaos_partition_drops_total",
		"Datagrams dropped by an armed partition.", c.partDrops.Load)
	set.CounterFunc("sfd_chaos_delayed_total",
		"Deliveries postponed by delay/jitter injection.", c.delayed.Load)
	set.CounterFunc("sfd_chaos_reordered_total",
		"Deliveries held back so later datagrams overtake them.", c.reordered.Load)
	set.CounterFunc("sfd_chaos_duplicated_total",
		"Extra datagram copies injected.", c.duplicated.Load)
	set.CounterFunc("sfd_chaos_truncated_total",
		"Payloads cut short in flight.", c.truncated.Load)
	set.CounterFunc("sfd_chaos_queue_overflow_total",
		"Impaired deliveries lost to a full chaos delivery queue.", c.overflow.Load)
	set.CounterFunc("sfd_chaos_steps_armed_total",
		"Impairments armed (scenario steps plus manual arms).", c.stepsArm.Load)
	set.CounterFunc("sfd_chaos_steps_cleared_total",
		"Impairments disarmed.", c.stepsClear.Load)
	set.GaugeFunc("sfd_chaos_active_impairments",
		"Impairments currently armed.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.armedSet))
		})
}
