package chaos

import (
	"sync"

	"repro/internal/clock"
)

// SkewedClock wraps a clock.Clock and offsets its Now readings by a
// settable step plus linear drift — the send-side "skewed timestamp"
// fault: a sender stamping heartbeats from a skewed clock looks, to a
// remote detector, like a process whose messages age differently than
// they should (the paper's §II-B drift assumption, violated on purpose).
//
// Skew affects timestamps only: After and Sleep pass through unscaled,
// so timer cadence (heartbeat intervals, wheel ticks) is unchanged and
// the impairment isolates the timestamp channel. Arm a KindSkew
// impairment on a Controller with this clock attached (AttachClock) and
// the skew steps in while armed and back out when disarmed.
type SkewedClock struct {
	inner clock.Clock

	mu       sync.Mutex
	offset   clock.Duration
	driftPPM float64
	setAt    clock.Time // inner instant the current skew took effect
}

// NewSkewedClock wraps inner with zero initial skew.
func NewSkewedClock(inner clock.Clock) *SkewedClock {
	if inner == nil {
		inner = clock.NewReal()
	}
	return &SkewedClock{inner: inner}
}

// SetSkew steps the clock to inner+offset and accumulates driftPPM
// parts-per-million of additional skew from this moment on. SetSkew(0,0)
// steps back to the inner clock exactly (no residual drift).
func (s *SkewedClock) SetSkew(offset clock.Duration, driftPPM float64) {
	now := s.inner.Now()
	s.mu.Lock()
	s.offset = offset
	s.driftPPM = driftPPM
	s.setAt = now
	s.mu.Unlock()
}

// Skew returns the clock's current total displacement from inner.
func (s *SkewedClock) Skew() clock.Duration {
	n := s.inner.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skewAt(n)
}

func (s *SkewedClock) skewAt(n clock.Time) clock.Duration {
	skew := s.offset
	if s.driftPPM != 0 {
		skew += clock.Duration(float64(n.Sub(s.setAt)) * s.driftPPM / 1e6)
	}
	return skew
}

// Now implements clock.Clock.
func (s *SkewedClock) Now() clock.Time {
	n := s.inner.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	return n.Add(s.skewAt(n))
}

// After implements clock.Clock (unskewed; see the type comment).
func (s *SkewedClock) After(d clock.Duration) <-chan clock.Time { return s.inner.After(d) }

// Sleep implements clock.Clock (unskewed; see the type comment).
func (s *SkewedClock) Sleep(d clock.Duration) { s.inner.Sleep(d) }
