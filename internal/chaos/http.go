package chaos

import (
	"encoding/json"
	"net/http"
)

// status is the /chaos response body.
type status struct {
	Scenario string      `json:"scenario,omitempty"`
	Seed     int64       `json:"seed"`
	Counters Counters    `json:"counters"`
	Active   []ArmedView `json:"active"`
}

// Handler returns the /chaos status endpoint: a JSON snapshot of the
// active impairments and injection counters. With ?log=1 it returns the
// plain-text injection log instead.
func (c *Controller) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		if r.URL.Query().Get("log") != "" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write(c.LogBytes())
			return
		}
		c.mu.Lock()
		st := status{Scenario: c.scenario, Seed: c.seed}
		c.mu.Unlock()
		st.Counters = c.Counters()
		st.Active = c.Active()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
}
