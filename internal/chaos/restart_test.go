package chaos

// The kill/restart acceptance drill from the issue: a fleet-scale
// monitor with persistence armed is hard-killed mid-run (no Stop, no
// final snapshot — the journal is what saves the tail) and restarted
// after a short outage. Streams that kept heartbeating through the
// downtime must come back trusted with zero spurious transitions,
// incarnations must survive exactly, streams that restarted themselves
// during the outage (incarnation bump) must be absorbed silently, and a
// cohort partitioned away by chaos must still walk suspect → offline on
// the normal deadlines — the rewarm grace defers real detection, it
// does not disable it. The whole drill runs on one clock.Sim with
// seeded chaos, so a failure replays byte-for-byte.

import (
	"fmt"
	"testing"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/heartbeat"
	"repro/internal/registry"
	"repro/internal/transport"
)

const (
	drillInterval = 200 * clock.Millisecond
	drillStep     = 20 * clock.Millisecond
	drillGrace    = clock.Second
)

// drillSender injects one stream's heartbeats straight into the
// monitor's chaos endpoint via Process — the documented deterministic
// inbound path — so ten thousand streams need no per-sender endpoints.
type drillSender struct {
	mon    *Endpoint
	clk    *clock.Sim
	name   string
	seq    uint64
	inc    uint64
	stopAt clock.Time // 0 = never: the chain ends, like a dead process
}

func (s *drillSender) beat(now clock.Time) {
	if s.stopAt > 0 && !now.Before(s.stopAt) {
		return
	}
	s.seq++
	b := heartbeat.Message{Kind: heartbeat.KindHeartbeat, Seq: s.seq, Time: now, Inc: s.inc}.Marshal()
	s.mon.Process(transport.Inbound{From: s.name, Payload: b})
	s.clk.AfterFunc(drillInterval, s.beat)
}

func drillConfig() core.Config {
	return core.Config{
		WindowSize:     16,
		Interval:       drillInterval,
		InitialMargin:  150 * clock.Millisecond,
		Alpha:          20 * clock.Millisecond,
		Beta:           0.5,
		SlotHeartbeats: 8,
		// Generous targets keep every healthy slot Stable, so the margin
		// holding exactly InitialMargin across the restart is itself an
		// assertion of determinism.
		Targets: core.Targets{
			MaxTD:  600 * clock.Millisecond,
			MaxMR:  0.5,
			MinQAP: 0.9,
		},
		FillGaps:   true,
		MaxGapFill: 16,
	}
}

func drillOptions(dir string) registry.Options {
	return registry.Options{
		Shards:       64,
		WheelTick:    10 * clock.Millisecond,
		OfflineAfter: clock.Second,
		MaxSilence:   -1, // the detectors carry detection; no silence net
		EvictAfter:   -1, // keep offline streams inspectable
		StateDir:     dir,
		// Tight cadences so a hard kill loses at most ~50 ms of arrivals.
		CheckpointInterval: clock.Second,
		JournalFlush:       50 * clock.Millisecond,
		RewarmGrace:        drillGrace,
	}
}

// drillPump advances the sim in drain-sized steps, folding the chaos
// endpoint's surviving datagrams into the registry after each step.
func drillPump(sim *clock.Sim, reg *registry.Registry, mon *Endpoint, span clock.Duration) {
	for elapsed := clock.Duration(0); elapsed < span; elapsed += drillStep {
		sim.Advance(drillStep)
		observeInto(reg, sim, mon.Recv())
	}
}

func TestAcceptKillRestartDrill(t *testing.T) {
	n := 10_000
	if testing.Short() {
		n = 1000
	}
	deadN := n / 100   // partitioned away after the restart
	rebornN := n / 100 // restarted themselves during the outage
	flakyN := n / 100  // die before the kill, recover during the outage
	dir := t.TempDir()
	cfg := drillConfig()
	factory := func(string) detector.Detector { return core.New(cfg) }

	names := make([]string, n)
	incs := make([]uint64, n)
	for i := range names {
		names[i] = fmt.Sprintf("srv-%05d", i)
		incs[i] = uint64(i%4) + 1
	}
	jitter := Impairment{
		Kind:      KindDelay,
		Delay:     Span(2 * clock.Millisecond),
		Jitter:    Span(6 * clock.Millisecond),
		Direction: DirIn,
	}

	// ---- First life: warm the fleet past its first slot closes. ----
	sim1 := clock.NewSim(0)
	hub1 := transport.NewHub(0, 0, 1)
	ctl1 := NewController(sim1, 424242)
	mon1 := Wrap(hub1.Endpoint("monitor"), ctl1)
	if _, err := ctl1.Arm(jitter); err != nil {
		t.Fatal(err)
	}
	r1 := registry.New(sim1, factory, drillOptions(dir))
	r1.Start()
	sub1 := r1.Subscribe(1 << 12)

	// The flaky cohort dies at flakyStop: its suspect (~+350 ms) and
	// offline (~+1.35 s) transitions land after the last full snapshot
	// (checkpoints fire at 1..4 s; the kill preempts the 5 s one), so
	// that state reaches the next life through the delta journal alone.
	flaky0 := deadN + rebornN
	const flakyStop = clock.Time(3300 * clock.Millisecond)
	const firstLife = 4900 * clock.Millisecond

	senders := make([]*drillSender, n)
	for i := range senders {
		senders[i] = &drillSender{mon: mon1, clk: sim1, name: names[i], inc: incs[i]}
		if i >= flaky0 && i < flaky0+flakyN {
			senders[i].stopAt = flakyStop
		}
		// Phase-offset the fleet so load spreads across every step.
		phase := clock.Duration(int64(drillInterval) * int64(i) / int64(n))
		sim1.AfterFunc(phase, senders[i].beat)
	}
	drillPump(sim1, r1, mon1, firstLife)

	if got := r1.Len(); got != n {
		t.Fatalf("first life tracks %d streams, want %d", got, n)
	}
	firstEvents := make(map[string][]registry.Event)
	for _, ev := range drainEvents(sub1) {
		firstEvents[ev.Peer] = append(firstEvents[ev.Peer], ev)
	}
	for i, name := range names {
		evs := firstEvents[name]
		if i >= flaky0 && i < flaky0+flakyN {
			if len(evs) != 2 || evs[0].Type != registry.EventSuspect || evs[1].Type != registry.EventOffline {
				t.Fatalf("%s (flaky) first-life events = %+v, want suspect then offline", name, evs)
			}
			if evs[0].At.Before(flakyStop) {
				t.Fatalf("%s suspected at %v, before it stopped beating (%v)", name, evs[0].At, flakyStop)
			}
			continue
		}
		if len(evs) != 0 {
			t.Fatalf("%s emitted %d spurious first-life events, e.g. %+v", name, len(evs), evs[0])
		}
	}
	ck := r1.Checkpointer()
	if ck == nil {
		t.Fatal("persistence not armed")
	}
	if ck.Snapshots() == 0 || ck.Deltas() == 0 {
		t.Fatalf("checkpointer wrote %d snapshots / %d deltas — drill never hit disk",
			ck.Snapshots(), ck.Deltas())
	}
	if ck.Errors() != 0 {
		t.Fatalf("checkpointer recorded %d errors", ck.Errors())
	}
	// Hard kill: r1 is abandoned without Stop. Whatever the journal
	// flushed (≤ 50 ms ago) is all the next life gets.

	// ---- Second life: restore after a 500 ms outage. ----
	const downtime = 500 * clock.Millisecond
	sim2 := clock.NewSim(0)
	hub2 := transport.NewHub(0, 0, 1)
	ctl2 := NewController(sim2, 424242)
	mon2 := Wrap(hub2.Endpoint("monitor"), ctl2)
	if _, err := ctl2.Arm(jitter); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl2.Arm(Impairment{
		Kind:      KindPartition,
		Direction: DirIn,
		Peers:     names[:deadN],
	}); err != nil {
		t.Fatal(err)
	}

	r2 := registry.New(sim2, factory, drillOptions(dir))
	restored, err := r2.RestoreFromDisk(downtime)
	if err != nil {
		t.Fatalf("RestoreFromDisk: %v", err)
	}
	if restored != n {
		t.Fatalf("restored %d streams, want %d", restored, n)
	}
	for i, name := range names {
		inc, ok := r2.IncarnationOf(name)
		if !ok || inc != incs[i] {
			t.Fatalf("%s incarnation after restore = %d (ok=%v), want %d", name, inc, ok, incs[i])
		}
	}
	// The flaky cohort's offline transition happened after the last full
	// snapshot; seeing it here proves the delta journal replayed.
	if st, ok := r2.StatusOf(names[flaky0], sim2.Now()); !ok || st != cluster.StatusOffline {
		t.Fatalf("%s restored as %v (ok=%v), want offline via journal replay", names[flaky0], st, ok)
	}
	r2.Start()
	defer r2.Stop()
	sub2 := r2.Subscribe(1 << 12)

	for i, s := range senders {
		s2 := &drillSender{mon: mon2, clk: sim2, name: s.name, inc: s.inc}
		switch {
		case i < deadN:
			// Still sending, but chaos partitions them away: from the
			// monitor's seat they are failed processes.
			s2.seq = s.seq
		case i < flaky0+flakyN:
			// Reborn and flaky processes restarted during the outage:
			// incarnation bumps, sequence restarts from zero. (A sender
			// cannot resume a paused stream under the same incarnation —
			// its sequence numbers would contradict the wall-clock gap.)
			s2.inc = s.inc + 1
			s2.seq = 0
		default:
			// Kept running through the outage; the heartbeats sent while
			// the monitor was down were simply never received.
			s2.seq = s.seq + uint64(downtime/drillInterval)
		}
		phase := clock.Duration(int64(drillInterval) * int64(i) / int64(n))
		sim2.AfterFunc(phase, s2.beat)
	}
	const secondLife = 5 * clock.Second
	drillPump(sim2, r2, mon2, secondLife)

	// Partitioned streams walk suspect → offline on the normal deadlines;
	// everyone else rides through the restart without a single event.
	events := make(map[string][]registry.Event)
	for _, ev := range drainEvents(sub2) {
		events[ev.Peer] = append(events[ev.Peer], ev)
	}
	grace := clock.Time(drillGrace)
	for i, name := range names {
		evs := events[name]
		switch {
		case i < deadN:
			if len(evs) != 2 || evs[0].Type != registry.EventSuspect || evs[1].Type != registry.EventOffline {
				t.Fatalf("%s (partitioned) events = %+v, want suspect then offline", name, evs)
			}
			// Suspicion starts once the rewarm grace expires — not before
			// (that would be a spurious suspect) and not much after (the
			// grace must not mask real failures).
			if evs[0].At.Before(grace) || evs[0].At.After(grace.Add(150*clock.Millisecond)) {
				t.Fatalf("%s suspected at %v, want within [%v, %v+150ms]", name, evs[0].At, grace, grace)
			}
		case i >= flaky0 && i < flaky0+flakyN:
			// Restored offline, heartbeating again: one recovery, fast.
			if len(evs) != 1 || evs[0].Type != registry.EventTrust {
				t.Fatalf("%s (recovered) events = %+v, want exactly one trust", name, evs)
			}
			if evs[0].At.After(clock.Time(drillInterval + 2*drillStep)) {
				t.Fatalf("%s recovered at %v, want within the first interval", name, evs[0].At)
			}
		default:
			if len(evs) != 0 {
				t.Fatalf("%s (survivor) emitted %+v — spurious post-restart transition", name, evs)
			}
		}
	}
	c := r2.Counters()
	if c.Suspects != uint64(deadN) || c.Offlines != uint64(deadN) || c.Trusts != uint64(flakyN) {
		t.Fatalf("second-life counters = %+v, want %d suspects/offlines and %d trusts", c, deadN, flakyN)
	}

	// Survivors: trusted, incarnation intact (bumped for the reborn), and
	// their detectors re-stabilized at the pre-crash margin with clean
	// post-restart slots — the QoS re-convergence the paper's gap rule
	// and the rewarm freeze exist to deliver.
	now := sim2.Now()
	for _, i := range []int{deadN, deadN + rebornN/2, deadN + rebornN, n/2, n - 1} {
		name := names[i]
		if st, ok := r2.StatusOf(name, now); !ok || st != cluster.StatusActive {
			t.Fatalf("%s status = %v (ok=%v), want active", name, st, ok)
		}
		wantInc := incs[i]
		if i >= deadN && i < flaky0+flakyN {
			wantInc++
		}
		if inc, ok := r2.IncarnationOf(name); !ok || inc != wantInc {
			t.Fatalf("%s incarnation = %d (ok=%v), want %d", name, inc, ok, wantInc)
		}
		margin, state, history := sfdOf(t, r2, name)
		if state != core.StateStable {
			t.Fatalf("%s detector state = %v, want stable", name, state)
		}
		if margin != cfg.InitialMargin {
			for _, adj := range history {
				t.Logf("%s slot at %v: %v verdict=%v margin=%v", name, adj.At, adj.Measured, adj.Verdict, adj.Margin)
			}
			t.Fatalf("%s margin = %v, want %v (healthy slots must stay Stable)", name, margin, cfg.InitialMargin)
		}
		if len(history) == 0 {
			t.Fatalf("%s closed no slots after the restart", name)
		}
		for _, adj := range history {
			if adj.Measured.MR != 0 || adj.Measured.QAP < 0.999 {
				t.Fatalf("%s post-restart slot MR=%g QAP=%g — restart booked mistakes",
					name, adj.Measured.MR, adj.Measured.QAP)
			}
		}
	}
}

// drainEvents empties a subscription without blocking.
func drainEvents(sub *registry.Subscription) []registry.Event {
	var out []registry.Event
	for {
		select {
		case ev := <-sub.C():
			out = append(out, ev)
		default:
			if d := sub.Dropped(); d != 0 {
				panic(fmt.Sprintf("subscriber dropped %d events", d))
			}
			return out
		}
	}
}
