// Package chaos is the fault-injection layer for the live heartbeat
// stack: an Endpoint middleware that wraps any transport.Endpoint (UDP
// socket or in-memory hub) and injects deterministic, seeded
// impairments between the wire and the protocol code — Gilbert–Elliott
// loss bursts, added delay and jitter, reordering, duplication,
// truncation, directional partitions, and send-side clock skew/drift.
//
// The paper's claim is that SFD holds its QoS targets *while the
// network misbehaves* (§V's WAN loss/delay processes, Fig. 2's message
// cases); internal/netsim proves that over a fully simulated clock and
// link, but nothing could impair the real transport path that sfdmon
// ships. This package closes that gap: the same Receiver, Registry, and
// Gossiper binaries run unmodified while a scripted Scenario turns
// impairments on and off around them, and injection counters exported
// through internal/metrics let a scrape correlate each impairment window
// with the QoS dip it caused. The fault taxonomy follows the
// robustness-architecture direction of Dobre et al. and the fault-model
// classification of the Impact FD line of work (see DESIGN.md §4d).
//
// Determinism contract: all injection decisions are drawn from one
// seeded rand.Rand in arrival order, so the same seed, schedule, and
// offered traffic sequence produce a byte-identical injection log
// (Controller.LogBytes) — replays of a chaos drill are debuggable.
package chaos

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/clock"
)

// Direction selects which traffic an impairment applies to, relative to
// the wrapped endpoint: DirOut is Send traffic, DirIn is received
// traffic, DirBoth is both.
type Direction uint8

const (
	// DirBoth applies the impairment to sends and receives alike.
	DirBoth Direction = iota
	// DirIn applies the impairment to received datagrams only.
	DirIn
	// DirOut applies the impairment to sent datagrams only.
	DirOut
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case DirIn:
		return "in"
	case DirOut:
		return "out"
	default:
		return "both"
	}
}

// MarshalJSON encodes the direction as its string form.
func (d Direction) MarshalJSON() ([]byte, error) {
	return []byte(`"` + d.String() + `"`), nil
}

// UnmarshalJSON accepts "in", "out", "both" (or empty for both).
func (d *Direction) UnmarshalJSON(b []byte) error {
	v, err := parseDirection(strings.Trim(string(b), `"`))
	if err != nil {
		return err
	}
	*d = v
	return nil
}

func parseDirection(s string) (Direction, error) {
	switch s {
	case "in":
		return DirIn, nil
	case "out":
		return DirOut, nil
	case "both", "":
		return DirBoth, nil
	default:
		return DirBoth, fmt.Errorf("chaos: bad direction %q (want in, out, or both)", s)
	}
}

// Kind names an impairment class.
type Kind string

const (
	// KindLoss drops datagrams through a Gilbert–Elliott burst channel:
	// Rate is the long-run loss fraction, Burst the mean loss-run length
	// in datagrams (Burst ≤ 1 degenerates to Bernoulli loss).
	KindLoss Kind = "loss"
	// KindDelay postpones delivery by Delay plus uniform jitter in
	// [0, Jitter). Rate 0 (the default) delays every matching datagram;
	// a nonzero Rate delays only that fraction.
	KindDelay Kind = "delay"
	// KindReorder holds back a Rate fraction of datagrams by Delay so
	// later datagrams overtake them — the classic late-arrival reorder.
	KindReorder Kind = "reorder"
	// KindDuplicate delivers a Rate fraction of datagrams twice; the
	// copy follows after Delay (0 = immediately after the original).
	KindDuplicate Kind = "duplicate"
	// KindTruncate cuts a Rate fraction of datagrams to Bytes bytes
	// (default: half their length) — the wire-damage case codecs must
	// reject without panicking.
	KindTruncate Kind = "truncate"
	// KindPartition drops every matching datagram outright. With
	// Direction and Peers it expresses one-sided partitions: e.g.
	// Direction DirIn + a peer list silences those peers without
	// touching outbound traffic.
	KindPartition Kind = "partition"
	// KindSkew steps every attached SkewedClock to Offset plus DriftPPM
	// parts-per-million drift while armed (disarming steps back) —
	// send-side timestamp skew as seen by remote detectors.
	KindSkew Kind = "skew"
)

// Impairment is one parameterized fault. Unused fields are ignored by
// kinds that do not consume them; Validate reports nonsensical
// combinations. The zero Direction (DirBoth) matches both directions
// and an empty Peers list matches every peer.
type Impairment struct {
	Kind Kind `json:"kind"`
	// Rate is the affected fraction in [0,1] (loss: long-run loss rate).
	Rate float64 `json:"rate,omitempty"`
	// Burst is the Gilbert–Elliott mean burst length (loss only).
	Burst float64 `json:"burst,omitempty"`
	// Delay is the added latency (delay), hold-back (reorder), or copy
	// lag (duplicate).
	Delay Span `json:"delay,omitempty"`
	// Jitter widens Delay by a uniform draw in [0, Jitter) (delay only).
	Jitter Span `json:"jitter,omitempty"`
	// Bytes is the truncated length (truncate only; 0 = half length).
	Bytes int `json:"bytes,omitempty"`
	// Peers restricts the impairment to these addresses (the Send
	// destination for DirOut, the Inbound source for DirIn). Empty
	// matches all.
	Peers []string `json:"peers,omitempty"`
	// Direction restricts the impairment to one traffic direction.
	Direction Direction `json:"direction,omitempty"`
	// Offset is the clock step applied while a skew impairment is armed.
	Offset Span `json:"offset,omitempty"`
	// DriftPPM is the clock drift in parts per million while armed.
	DriftPPM float64 `json:"drift_ppm,omitempty"`
}

// Validate reports whether the impairment is well-formed.
func (im Impairment) Validate() error {
	switch im.Kind {
	case KindLoss, KindReorder, KindDuplicate, KindTruncate:
		if im.Rate < 0 || im.Rate > 1 {
			return fmt.Errorf("chaos: %s rate %g outside [0,1]", im.Kind, im.Rate)
		}
		if im.Kind == KindLoss && im.Rate == 0 {
			return fmt.Errorf("chaos: loss needs rate > 0")
		}
		if im.Kind != KindLoss && im.Rate == 0 {
			return fmt.Errorf("chaos: %s needs rate > 0", im.Kind)
		}
		if im.Burst < 0 {
			return fmt.Errorf("chaos: negative burst %g", im.Burst)
		}
		if im.Bytes < 0 {
			return fmt.Errorf("chaos: negative bytes %d", im.Bytes)
		}
		if im.Kind == KindReorder && im.Delay <= 0 {
			return fmt.Errorf("chaos: reorder needs delay > 0")
		}
	case KindDelay:
		if im.Delay <= 0 && im.Jitter <= 0 {
			return fmt.Errorf("chaos: delay needs delay and/or jitter > 0")
		}
		if im.Rate < 0 || im.Rate > 1 {
			return fmt.Errorf("chaos: delay rate %g outside [0,1]", im.Rate)
		}
	case KindPartition:
		// Any combination of direction/peers is meaningful.
	case KindSkew:
		if im.Offset == 0 && im.DriftPPM == 0 {
			return fmt.Errorf("chaos: skew needs offset and/or drift")
		}
	default:
		return fmt.Errorf("chaos: unknown impairment kind %q", im.Kind)
	}
	if im.Delay < 0 || im.Jitter < 0 {
		return fmt.Errorf("chaos: negative delay/jitter")
	}
	return nil
}

// matches reports whether the impairment applies to a datagram moving in
// direction dir to/from peer.
func (im Impairment) matches(dir Direction, peer string) bool {
	if im.Direction != DirBoth && im.Direction != dir {
		return false
	}
	if len(im.Peers) == 0 {
		return true
	}
	for _, p := range im.Peers {
		if p == peer {
			return true
		}
	}
	return false
}

// String renders the impairment compactly, in the DSL's parameter form.
func (im Impairment) String() string {
	var kv []string
	add := func(k, v string) { kv = append(kv, k+"="+v) }
	if im.Rate != 0 {
		add("rate", fmt.Sprintf("%g", im.Rate))
	}
	if im.Burst != 0 {
		add("burst", fmt.Sprintf("%g", im.Burst))
	}
	if im.Delay != 0 {
		add("delay", clock.Duration(im.Delay).String())
	}
	if im.Jitter != 0 {
		add("jitter", clock.Duration(im.Jitter).String())
	}
	if im.Bytes != 0 {
		add("bytes", fmt.Sprintf("%d", im.Bytes))
	}
	if im.Direction != DirBoth {
		add("dir", im.Direction.String())
	}
	if len(im.Peers) > 0 {
		ps := append([]string(nil), im.Peers...)
		sort.Strings(ps)
		add("peers", strings.Join(ps, "|"))
	}
	if im.Offset != 0 {
		add("offset", clock.Duration(im.Offset).String())
	}
	if im.DriftPPM != 0 {
		add("drift", fmt.Sprintf("%g", im.DriftPPM))
	}
	return string(im.Kind) + "(" + strings.Join(kv, ",") + ")"
}
