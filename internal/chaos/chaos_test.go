package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/transport"
)

func TestImpairmentValidate(t *testing.T) {
	cases := []struct {
		name string
		im   Impairment
		ok   bool
	}{
		{"loss ok", Impairment{Kind: KindLoss, Rate: 0.3, Burst: 5}, true},
		{"loss no rate", Impairment{Kind: KindLoss}, false},
		{"loss rate > 1", Impairment{Kind: KindLoss, Rate: 1.5}, false},
		{"delay ok", Impairment{Kind: KindDelay, Delay: Span(10 * clock.Millisecond)}, true},
		{"delay jitter only", Impairment{Kind: KindDelay, Jitter: Span(5 * clock.Millisecond)}, true},
		{"delay empty", Impairment{Kind: KindDelay}, false},
		{"reorder ok", Impairment{Kind: KindReorder, Rate: 0.2, Delay: Span(clock.Millisecond)}, true},
		{"reorder no delay", Impairment{Kind: KindReorder, Rate: 0.2}, false},
		{"duplicate ok", Impairment{Kind: KindDuplicate, Rate: 1}, true},
		{"duplicate no rate", Impairment{Kind: KindDuplicate}, false},
		{"truncate ok", Impairment{Kind: KindTruncate, Rate: 0.5, Bytes: 8}, true},
		{"truncate negative bytes", Impairment{Kind: KindTruncate, Rate: 0.5, Bytes: -1}, false},
		{"partition bare", Impairment{Kind: KindPartition}, true},
		{"partition directional", Impairment{Kind: KindPartition, Direction: DirIn, Peers: []string{"a"}}, true},
		{"skew offset", Impairment{Kind: KindSkew, Offset: Span(clock.Second)}, true},
		{"skew drift", Impairment{Kind: KindSkew, DriftPPM: 200}, true},
		{"skew empty", Impairment{Kind: KindSkew}, false},
		{"unknown", Impairment{Kind: Kind("gremlin")}, false},
	}
	for _, c := range cases {
		if err := c.im.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestDirectionRoundTrip(t *testing.T) {
	for _, d := range []Direction{DirBoth, DirIn, DirOut} {
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		var back Direction
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != d {
			t.Fatalf("direction %v round-tripped to %v", d, back)
		}
	}
	var d Direction
	if err := json.Unmarshal([]byte(`"sideways"`), &d); err == nil {
		t.Fatal("bad direction accepted")
	}
}

func testScenario() Scenario {
	return Scenario{
		Name: "drill",
		Seed: 7,
		Steps: []Step{
			{At: Span(2 * clock.Second), Duration: Span(10 * clock.Second),
				Impairment: Impairment{Kind: KindLoss, Rate: 0.3, Burst: 5}},
			{At: Span(15 * clock.Second), Duration: Span(5 * clock.Second),
				Impairment: Impairment{Kind: KindPartition, Direction: DirIn, Peers: []string{"10.0.0.1:7946"}}},
			{At: Span(22 * clock.Second),
				Impairment: Impairment{Kind: KindSkew, Offset: Span(500 * clock.Millisecond), DriftPPM: 200}},
		},
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := testScenario()
	back, err := ParseScenario(sc.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, back) {
		t.Fatalf("JSON round trip mismatch:\n got %+v\nwant %+v", back, sc)
	}
}

func TestScenarioDSLRoundTrip(t *testing.T) {
	sc := testScenario()
	dsl := sc.DSL()
	back, err := ParseDSL(dsl)
	if err != nil {
		t.Fatalf("ParseDSL(%q): %v", dsl, err)
	}
	if !reflect.DeepEqual(sc, back) {
		t.Fatalf("DSL round trip mismatch via %q:\n got %+v\nwant %+v", dsl, back, sc)
	}
	if _, err := ParseDSL("2s:loss(rate=0.3)"); err == nil {
		t.Fatal("step without +DUR accepted")
	}
	if _, err := ParseDSL("2s+1s:loss(rate=nope)"); err == nil {
		t.Fatal("bad rate accepted")
	}
}

// drain empties a receive channel without blocking.
func drain(ch <-chan transport.Inbound) []transport.Inbound {
	var out []transport.Inbound
	for {
		select {
		case in, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, in)
		default:
			return out
		}
	}
}

// pair builds a chaos-wrapped sender endpoint "a" and a raw receiver "b"
// on a lossless synchronous hub.
func pair(t *testing.T, ctl *Controller) (*Endpoint, *transport.MemEndpoint) {
	t.Helper()
	hub := transport.NewHub(0, 0, 1)
	a := Wrap(hub.Endpoint("a"), ctl)
	b := hub.Endpoint("b")
	t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
	return a, b
}

func TestPartitionIsDirectional(t *testing.T) {
	ctl := NewController(nil, 1)
	a, b := pair(t, ctl)
	if _, err := ctl.Arm(Impairment{Kind: KindPartition, Direction: DirIn, Peers: []string{"b"}}); err != nil {
		t.Fatal(err)
	}
	// Outbound to b passes (partition is inbound-only)...
	if err := a.Send("b", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if got := drain(b.Recv()); len(got) != 1 {
		t.Fatalf("outbound delivered %d datagrams, want 1", len(got))
	}
	// ...while inbound from b is silenced.
	a.Process(transport.Inbound{From: "b", Payload: []byte("yo")})
	a.Process(transport.Inbound{From: "c", Payload: []byte("ok")})
	got := drain(a.Recv())
	if len(got) != 1 || got[0].From != "c" {
		t.Fatalf("inbound survivors %v, want only c", got)
	}
	if n := ctl.Counters().PartDrops; n != 1 {
		t.Fatalf("PartDrops = %d, want 1", n)
	}
}

func TestTruncateAndDuplicate(t *testing.T) {
	ctl := NewController(nil, 1)
	a, b := pair(t, ctl)
	trunc, err := ctl.Arm(Impairment{Kind: KindTruncate, Rate: 1, Bytes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	got := drain(b.Recv())
	if len(got) != 1 || string(got[0].Payload) != "abc" {
		t.Fatalf("truncate delivered %v, want [abc]", got)
	}
	if !ctl.Disarm(trunc) {
		t.Fatal("Disarm lost the id")
	}
	if _, err := ctl.Arm(Impairment{Kind: KindDuplicate, Rate: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("dup")); err != nil {
		t.Fatal(err)
	}
	if got := drain(b.Recv()); len(got) != 2 {
		t.Fatalf("duplicate delivered %d datagrams, want 2", len(got))
	}
	c := ctl.Counters()
	if c.Truncated != 1 || c.Duplicated != 1 {
		t.Fatalf("counters = %+v, want 1 truncation + 1 duplication", c)
	}
}

func TestDelayHoldsUntilClockAdvances(t *testing.T) {
	sim := clock.NewSim(0)
	ctl := NewController(sim, 1)
	a, b := pair(t, ctl)
	if _, err := ctl.Arm(Impairment{Kind: KindDelay, Delay: Span(50 * clock.Millisecond)}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("late")); err != nil {
		t.Fatal(err)
	}
	if got := drain(b.Recv()); len(got) != 0 {
		t.Fatalf("delivered before the delay elapsed: %v", got)
	}
	sim.Advance(50 * clock.Millisecond)
	if got := drain(b.Recv()); len(got) != 1 {
		t.Fatalf("delivered %d datagrams after delay, want 1", len(got))
	}
	// Inbound delay holds in the wrapped endpoint's own queue.
	a.Process(transport.Inbound{From: "b", Payload: []byte("in")})
	if got := drain(a.Recv()); len(got) != 0 {
		t.Fatal("inbound delivered before the delay elapsed")
	}
	sim.Advance(50 * clock.Millisecond)
	if got := drain(a.Recv()); len(got) != 1 {
		t.Fatalf("inbound delivered %d datagrams after delay, want 1", len(got))
	}
}

func TestGilbertElliottLossDropsInBursts(t *testing.T) {
	ctl := NewController(nil, 42)
	a, b := pair(t, ctl)
	if _, err := ctl.Arm(Impairment{Kind: KindLoss, Rate: 0.4, Burst: 6}); err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if err := a.Send("b", []byte("hb")); err != nil {
			t.Fatal(err)
		}
	}
	delivered := len(drain(b.Recv()))
	dropped := int(ctl.Counters().LossDrops)
	if delivered+dropped != n {
		t.Fatalf("delivered %d + dropped %d != %d", delivered, dropped, n)
	}
	if frac := float64(dropped) / n; frac < 0.25 || frac > 0.55 {
		t.Fatalf("loss fraction %.3f far from configured 0.4", frac)
	}
}

func TestScenarioPlayTimeline(t *testing.T) {
	sim := clock.NewSim(0)
	ctl := NewController(sim, 1)
	sc := Scenario{Name: "timeline", Seed: 9, Steps: []Step{
		{At: Span(clock.Second), Duration: Span(2 * clock.Second),
			Impairment: Impairment{Kind: KindPartition}},
	}}
	if err := ctl.Play(sc); err != nil {
		t.Fatal(err)
	}
	if ctl.Scenario() != "timeline" || ctl.Seed() != 9 {
		t.Fatalf("scenario/seed not adopted: %q/%d", ctl.Scenario(), ctl.Seed())
	}
	if n := len(ctl.Active()); n != 0 {
		t.Fatalf("armed before At: %d", n)
	}
	sim.Advance(clock.Second)
	if n := len(ctl.Active()); n != 1 {
		t.Fatalf("armed at At: %d, want 1", n)
	}
	sim.Advance(2 * clock.Second)
	if n := len(ctl.Active()); n != 0 {
		t.Fatalf("still armed after Duration: %d", n)
	}
	c := ctl.Counters()
	if c.StepsArmed != 1 || c.StepsCleared != 1 {
		t.Fatalf("step counters = %+v", c)
	}
}

func TestSkewedClock(t *testing.T) {
	sim := clock.NewSim(0)
	sk := NewSkewedClock(sim)
	sim.Advance(10 * clock.Second)
	if got := sk.Now(); got != sim.Now() {
		t.Fatalf("unskewed Now = %v, want %v", got, sim.Now())
	}
	// +500 ms step plus 1e5 ppm (10%) drift.
	sk.SetSkew(500*clock.Millisecond, 1e5)
	sim.Advance(clock.Second)
	want := sim.Now().Add(500*clock.Millisecond + 100*clock.Millisecond)
	if got := sk.Now(); got != want {
		t.Fatalf("skewed Now = %v, want %v", got, want)
	}
	sk.SetSkew(0, 0)
	if got := sk.Now(); got != sim.Now() {
		t.Fatalf("skew did not step back: %v != %v", got, sim.Now())
	}
}

func TestSkewImpairmentDrivesAttachedClocks(t *testing.T) {
	sim := clock.NewSim(0)
	ctl := NewController(sim, 1)
	sk := NewSkewedClock(sim)
	ctl.AttachClock(sk)
	id, err := ctl.Arm(Impairment{Kind: KindSkew, Offset: Span(250 * clock.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	if got := sk.Skew(); got != 250*clock.Millisecond {
		t.Fatalf("armed skew = %v, want 250ms", got)
	}
	ctl.Disarm(id)
	if got := sk.Skew(); got != 0 {
		t.Fatalf("disarmed skew = %v, want 0", got)
	}
	// Late attachment picks up an already-armed skew.
	if _, err := ctl.Arm(Impairment{Kind: KindSkew, Offset: Span(clock.Second)}); err != nil {
		t.Fatal(err)
	}
	late := NewSkewedClock(sim)
	ctl.AttachClock(late)
	if got := late.Skew(); got != clock.Second {
		t.Fatalf("late-attached skew = %v, want 1s", got)
	}
}

// TestInjectionLogDeterminism is the determinism guarantee the package
// doc promises: same seed + same schedule + same traffic order ⇒
// byte-identical injection log.
func TestInjectionLogDeterminism(t *testing.T) {
	run := func() []byte {
		sim := clock.NewSim(0)
		ctl := NewController(sim, 1)
		hub := transport.NewHub(0, 0, 1)
		a := Wrap(hub.Endpoint("a"), ctl)
		b := hub.Endpoint("b")
		defer a.Close()
		defer b.Close()
		sc := Scenario{Seed: 1234, Steps: []Step{
			{At: 0, Impairment: Impairment{Kind: KindLoss, Rate: 0.3, Burst: 4}},
			{At: Span(100 * clock.Millisecond), Duration: Span(300 * clock.Millisecond),
				Impairment: Impairment{Kind: KindDuplicate, Rate: 0.5}},
			{At: Span(200 * clock.Millisecond),
				Impairment: Impairment{Kind: KindTruncate, Rate: 0.25, Bytes: 4}},
		}}
		if err := ctl.Play(sc); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			sim.Advance(clock.Millisecond)
			if err := a.Send("b", []byte(fmt.Sprintf("payload-%04d", i))); err != nil {
				t.Fatal(err)
			}
			a.Process(transport.Inbound{From: "b", Payload: []byte("reply")})
			drain(a.Recv())
			drain(b.Recv())
		}
		return ctl.LogBytes()
	}
	first, second := run(), run()
	if len(first) == 0 || !strings.Contains(string(first), "drop:loss") {
		t.Fatalf("injection log missing expected entries:\n%.400s", first)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("injection logs differ between identical runs:\n--- first\n%.400s\n--- second\n%.400s", first, second)
	}
}

func TestHandler(t *testing.T) {
	ctl := NewController(nil, 5)
	if _, err := ctl.Arm(Impairment{Kind: KindLoss, Rate: 0.2, Burst: 3}); err != nil {
		t.Fatal(err)
	}
	ctl.decide(DirOut, "peer", 28)
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var st struct {
		Seed     int64       `json:"seed"`
		Counters Counters    `json:"counters"`
		Active   []ArmedView `json:"active"`
	}
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Seed != 5 || len(st.Active) != 1 || st.Active[0].Imp.Kind != KindLoss {
		t.Fatalf("status = %+v", st)
	}
	if st.Counters.SentSeen != 1 {
		t.Fatalf("SentSeen = %d, want 1", st.Counters.SentSeen)
	}

	res2, err := srv.Client().Get(srv.URL + "?log=1")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res2.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "out peer 28") {
		t.Fatalf("log endpoint returned %q", buf.String())
	}
}

func TestEndpointCloseClosesRecv(t *testing.T) {
	ctl := NewController(nil, 1)
	hub := transport.NewHub(0, 0, 1)
	a := Wrap(hub.Endpoint("a"), ctl)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-a.Recv(); ok {
		t.Fatal("Recv not closed after Close")
	}
	if id, _ := ctl.Arm(Impairment{Kind: KindDuplicate, Rate: 1}); id == 0 {
		t.Fatal("arm failed")
	}
	// Delivery after close must be a no-op, not a panic.
	a.Process(transport.Inbound{From: "x", Payload: []byte("late")})
}
