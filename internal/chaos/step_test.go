package chaos

import (
	"sync"
	"testing"

	"repro/internal/clock"
)

// TestOnStepNotifications: every arm and disarm — manual or scripted —
// must reach registered step observers with the right polarity.
func TestOnStepNotifications(t *testing.T) {
	sim := clock.NewSim(0)
	c := NewController(sim, 1)

	var mu sync.Mutex
	var got []StepEvent
	c.OnStep(func(ev StepEvent) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	})

	id, err := c.Arm(Impairment{Kind: KindLoss, Rate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Disarm(id) {
		t.Fatal("disarm failed")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("got %d step events, want 2: %+v", len(got), got)
	}
	if !got[0].Armed || got[0].ID != id || got[0].Impairment.Kind != KindLoss {
		t.Fatalf("arm event = %+v", got[0])
	}
	if got[1].Armed || got[1].ID != id || got[1].Impairment.Kind != KindLoss {
		t.Fatalf("disarm event = %+v", got[1])
	}
}

// TestOnStepScenario: a played scenario's timed arms/disarms notify too,
// carrying the scenario name.
func TestOnStepScenario(t *testing.T) {
	sim := clock.NewSim(0)
	c := NewController(sim, 1)

	var mu sync.Mutex
	var got []StepEvent
	c.OnStep(func(ev StepEvent) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	})

	sc := Scenario{
		Name: "drill",
		Steps: []Step{{
			At: Span(10 * clock.Millisecond), Duration: Span(20 * clock.Millisecond),
			Impairment: Impairment{Kind: KindLoss, Rate: 1},
		}},
	}
	if err := c.Play(sc); err != nil {
		t.Fatal(err)
	}
	// Under clock.Sim the scenario timers fire synchronously inside
	// Advance, so both edges are deterministic.
	sim.Advance(15 * clock.Millisecond)
	sim.Advance(30 * clock.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("got %d step events, want 2: %+v", len(got), got)
	}
	if got[0].Scenario != "drill" || !got[0].Armed {
		t.Fatalf("scenario arm = %+v", got[0])
	}
	if got[1].Armed {
		t.Fatalf("scenario disarm = %+v", got[1])
	}
	if got[0].At == 0 && got[1].At == 0 {
		t.Fatalf("step events missing timestamps: %+v", got)
	}
}
