// Package bench is the experiment harness: one registered experiment per
// table and figure in the paper's evaluation (§V), each regenerating the
// corresponding rows or curve series from synthetic traces calibrated to
// Table II. cmd/sfdbench is its CLI; the repository-root benchmark file
// drives the same experiments under `go test -bench`.
package bench

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/qos"
	"repro/internal/trace"
)

// Config scales and seeds an experiment run.
type Config struct {
	// Heartbeats per trace; 0 uses trace.DefaultCount. Full overrides
	// with the paper's per-environment counts (minutes of CPU).
	Heartbeats int
	Full       bool
	// SweepPoints is the number of parameter values per curve (default
	// 24; the paper plots "plenty of points").
	SweepPoints int
	// WindowSize overrides WS (default 1000, the paper's setting).
	WindowSize int
}

func (c Config) withDefaults() Config {
	if c.Heartbeats <= 0 {
		c.Heartbeats = trace.DefaultCount
	}
	if c.SweepPoints <= 0 {
		c.SweepPoints = 24
	}
	if c.WindowSize <= 0 {
		c.WindowSize = detector.DefaultWindowSize
	}
	return c
}

// Experiment is one reproducible artefact of the paper.
type Experiment struct {
	ID    string // e.g. "fig6"
	Title string
	Paper string // what the paper reports, for EXPERIMENTS.md context
	Run   func(cfg Config, w io.Writer) error
}

var registry = map[string]Experiment{}

func register(e Experiment) { registry[e.ID] = e }

// Get returns an experiment by ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment in a stable order.
func All() []Experiment {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Experiment, 0, len(ids))
	for _, id := range ids {
		out = append(out, registry[id])
	}
	return out
}

// MakeTrace generates the named WAN environment at the configured scale.
func MakeTrace(cfg Config, env string) (*trace.Trace, error) {
	gp, err := trace.Preset(env)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	gp.Count = cfg.Heartbeats
	if cfg.Full {
		gp.Count = trace.PaperCounts[env]
	}
	return trace.Collect(gp.Meta, trace.NewGenerator(gp)), nil
}

// FigureCurves runs the paper's four-detector comparison over one trace:
// Chen's α sweep, φ's Φ sweep, Bertier's single point, and SFD's SM₁
// sweep with the given QoS targets. Parameters follow §V: α ∈ [0, 10000]
// ms, Φ ∈ [0.5, 16], Bertier at its published constants, SM₁ rising
// through a list with SFD's feedback active.
func FigureCurves(cfg Config, tr *trace.Trace, targets core.Targets) []qos.Curve {
	cfg = cfg.withDefaults()
	ws := cfg.WindowSize
	n := cfg.SweepPoints

	alphaMS := append([]float64{0}, qos.LogSpace(1, 10000, n-1)...)
	phiThresh := qos.LinSpace(0.5, detector.PhiMaxThreshold, n)
	sm1MS := append([]float64{0}, qos.LogSpace(10, 5000, n-1)...)

	chen := qos.Sweep(tr, "Chen FD", func(a float64) detector.Detector {
		return detector.NewChen(ws, 0, clock.Duration(a*float64(clock.Millisecond)))
	}, alphaMS)

	phi := qos.Sweep(tr, "phi FD", func(p float64) detector.Detector {
		return detector.NewPhi(ws, p, 0)
	}, phiThresh)

	bertier := qos.Sweep(tr, "Bertier FD", func(float64) detector.Detector {
		return detector.NewBertier(ws, 0, detector.DefaultBertierParams())
	}, []float64{0})

	sfd := qos.Sweep(tr, "SFD", func(sm1 float64) detector.Detector {
		return core.New(core.Config{
			WindowSize:     ws,
			InitialMargin:  clock.Duration(sm1 * float64(clock.Millisecond)),
			Alpha:          100 * clock.Millisecond,
			Beta:           0.5,
			SlotHeartbeats: 500,
			Targets:        targets,
		})
	}, sm1MS)

	return []qos.Curve{sfd, chen, bertier, phi}
}

// DefaultTargets returns the QoS requirement used for the SFD curves,
// matching the band the paper's SFD occupies in Fig. 6/9 (TD between
// 0.10 s and ≈0.9 s with QAP ≥ 99.5%).
func DefaultTargets() core.Targets {
	return core.Targets{MaxTD: 900 * clock.Millisecond, MaxMR: 0.35, MinQAP: 0.994}
}

// writeCurves renders each curve's table plus a combined scatter.
func writeCurves(w io.Writer, curves []qos.Curve, yAxis string) {
	for _, c := range curves {
		fmt.Fprintln(w, c.Table())
	}
	fmt.Fprintln(w, ScatterPlot(curves, yAxis))
}
