package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/qos"
)

func smallCfg() Config {
	return Config{Heartbeats: 20_000, SweepPoints: 8, WindowSize: 200}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablation-gapfill", "ablation-signs", "ablation-slot", "ablation-step",
		"cluster", "configure", "extended",
		"fig10", "fig6", "fig7", "fig9", "figall", "selftune", "table1", "table2", "window",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("experiment %d = %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
	if _, ok := Get("fig6"); !ok {
		t.Fatal("Get(fig6) failed")
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("Get(nope) succeeded")
	}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow in -short mode")
	}
	cfg := smallCfg()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(cfg, &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestTable1ListsSixPairs(t *testing.T) {
	var buf bytes.Buffer
	if err := registry["table1"].Run(Config{}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, host := range []string{
		"planet1.scs.stanford.edu", "planetlab-03.naist.ac.jp",
		"planetlab-2.fokus.fraunhofer.de", "planetlab2.ie.cuhk.edu.hk",
		"plab1.cs.ust.hk", "planetlab1.sfc.wide.ad.jp",
	} {
		if !strings.Contains(out, host) {
			t.Errorf("Table I missing host %s", host)
		}
	}
	if strings.Contains(out, "WAN-JPCH") {
		t.Error("Table I should not include the JP↔CH run")
	}
	lines := strings.Count(out, "\n")
	if lines != 7 { // header + 6 rows
		t.Errorf("Table I has %d lines, want 7", lines)
	}
}

func TestTable2RowsPerEnvironment(t *testing.T) {
	var buf bytes.Buffer
	if err := registry["table2"].Run(Config{Heartbeats: 30_000}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, env := range []string{"WAN-JPCH", "WAN-1", "WAN-2", "WAN-3", "WAN-4", "WAN-5", "WAN-6"} {
		if !strings.Contains(out, env) {
			t.Errorf("Table II missing %s", env)
		}
	}
	if !strings.Contains(out, "bursts=") {
		t.Error("Table II missing JP↔CH burst detail")
	}
}

func TestFigureCurvesShape(t *testing.T) {
	cfg := smallCfg()
	tr, err := MakeTrace(cfg, "WAN-JPCH")
	if err != nil {
		t.Fatal(err)
	}
	curves := FigureCurves(cfg, tr, DefaultTargets())
	if len(curves) != 4 {
		t.Fatalf("got %d curves", len(curves))
	}
	byName := map[string]qos.Curve{}
	for _, c := range curves {
		byName[c.Detector] = c
	}
	chen, phi, bert, sfd := byName["Chen FD"], byName["phi FD"], byName["Bertier FD"], byName["SFD"]

	if len(bert.Points) != 1 {
		t.Fatalf("Bertier must contribute exactly one point, got %d", len(bert.Points))
	}
	// Chen covers the widest TD range (paper: "Chen FD has an extensive
	// performance range").
	cMin, cMax := chen.TDRange()
	pMin, pMax := phi.TDRange()
	sMin, sMax := sfd.TDRange()
	if cMax-cMin < pMax-pMin || cMax-cMin < sMax-sMin {
		t.Errorf("Chen range [%v,%v] not the widest (phi [%v,%v], SFD [%v,%v])",
			cMin, cMax, pMin, pMax, sMin, sMax)
	}
	// Chen's conservative end reaches further than φ's capped curve.
	if cMax <= pMax {
		t.Errorf("Chen max TD %v not beyond phi cap %v", cMax, pMax)
	}
	// SFD avoids Chen's conservative extreme: feedback pulls large SM₁
	// values back toward the target band.
	if sMax >= cMax {
		t.Errorf("SFD max TD %v not inside Chen's range %v", sMax, cMax)
	}
	// Chen reaches zero mistakes at its most conservative point.
	zero := false
	for _, p := range chen.Points {
		if p.Result.Mistakes == 0 {
			zero = true
		}
	}
	if !zero {
		t.Error("Chen never reached MR=0 in the conservative range")
	}
	// In the aggressive range (smallest TDs) φ and Chen behave similarly:
	// compare best MR at the aggressive cutoff.
	cutoff := pMin + (pMax-pMin)/4
	cMR, ok1 := chen.BestMRAt(cutoff)
	pMR, ok2 := phi.BestMRAt(cutoff)
	if ok1 && ok2 {
		if cMR > pMR*50+1e-6 || pMR > cMR*50+1e-6 {
			t.Errorf("aggressive range mismatch: Chen MR %g vs phi MR %g", cMR, pMR)
		}
	}
}

func TestScatterPlotRendering(t *testing.T) {
	c := qos.Curve{Detector: "X", Points: []qos.Point{
		{Param: 1, Result: qos.Result{TDAvg: 100 * clock.Millisecond, MR: 0.5, QAP: 0.99}},
		{Param: 2, Result: qos.Result{TDAvg: 500 * clock.Millisecond, MR: 0.001, QAP: 0.999}},
		{Param: 3, Result: qos.Result{TDAvg: 900 * clock.Millisecond, MR: 0, QAP: 1}},
	}}
	mr := ScatterPlot([]qos.Curve{c}, "mr")
	if !strings.Contains(mr, "mistake rate") || !strings.Contains(mr, "legend") {
		t.Fatalf("bad MR plot:\n%s", mr)
	}
	qap := ScatterPlot([]qos.Curve{c}, "qap")
	if !strings.Contains(qap, "query accuracy") {
		t.Fatalf("bad QAP plot:\n%s", qap)
	}
	if ScatterPlot(nil, "mr") != "(no points)\n" {
		t.Fatal("empty plot wrong")
	}
}

func TestMakeTraceScales(t *testing.T) {
	tr, err := MakeTrace(Config{Heartbeats: 1234}, "WAN-3")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1234 {
		t.Fatalf("trace len = %d", tr.Len())
	}
	if _, err := MakeTrace(Config{}, "WAN-99"); err == nil {
		t.Fatal("unknown env accepted")
	}
}

func TestDefaultTargetsSane(t *testing.T) {
	tg := DefaultTargets()
	if !tg.Valid() {
		t.Fatalf("default targets invalid: %+v", tg)
	}
	if tg.MaxTD != 900*clock.Millisecond {
		t.Fatalf("MaxTD = %v", tg.MaxTD)
	}
}
