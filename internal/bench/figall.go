package bench

import (
	"fmt"
	"io"

	"repro/internal/qos"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "figall",
		Title: "§V-B — all six PlanetLab environments (WAN-1..6)",
		Paper: "\"A similar behavior can be observed in the different experimental settings. The experimental results from WAN-2 to WAN-6 obtained on the PlanetLab are similar to WAN-1.\"",
		Run:   runFigAll,
	})
}

// runFigAll verifies the paper's similarity claim: the qualitative
// relations of Fig. 9 must hold on every PlanetLab environment, not just
// WAN-1.
func runFigAll(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "%-8s  %-24s %-24s %-24s  %-7s %-7s %-7s\n",
		"case", "Chen TD range [s]", "phi TD range [s]", "SFD TD range [s]",
		"widest", "capped", "banded")
	allHold := true
	for _, env := range trace.PresetNames() {
		if env == "WAN-JPCH" {
			continue
		}
		tr, err := MakeTrace(cfg, env)
		if err != nil {
			return err
		}
		curves := FigureCurves(cfg, tr, DefaultTargets())
		byName := map[string]qos.Curve{}
		for _, c := range curves {
			byName[c.Detector] = c
		}
		cMin, cMax := byName["Chen FD"].TDRange()
		pMin, pMax := byName["phi FD"].TDRange()
		sMin, sMax := byName["SFD"].TDRange()

		widest := cMax-cMin >= pMax-pMin && cMax-cMin >= sMax-sMin
		capped := pMax < cMax // φ's curve stops before Chen's conservative reach
		banded := sMax < cMax // SFD avoids the conservative extreme
		allHold = allHold && widest && capped && banded

		fmt.Fprintf(w, "%-8s  [%6.3f, %7.3f]       [%6.3f, %7.3f]       [%6.3f, %7.3f]        %-7v %-7v %-7v\n",
			env, cMin.Seconds(), cMax.Seconds(), pMin.Seconds(), pMax.Seconds(),
			sMin.Seconds(), sMax.Seconds(), widest, capped, banded)
	}
	fmt.Fprintf(w, "\nsimilarity claim holds on every environment: %v\n", allHold)
	if !allHold {
		return fmt.Errorf("bench: figall similarity claim violated")
	}
	return nil
}
