package bench

import (
	"fmt"
	"io"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/qos"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "configure",
		Title: "Static QoS-driven provisioning vs SFD self-tuning",
		Paper: "Chen et al. [28] derive parameters from network stats once; SFD keeps them matched continuously. Compare predicted, statically-provisioned, and self-tuned QoS on each WAN.",
		Run:   runConfigure,
	})
}

func runConfigure(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	req := detector.Requirements{
		MaxTD:  DefaultTargets().MaxTD,
		MaxMR:  DefaultTargets().MaxMR,
		MinQAP: DefaultTargets().MinQAP,
	}
	fmt.Fprintf(w, "requirement: TD≤%.3fs MR≤%.3g/s QAP≥%.3f%%\n\n",
		req.MaxTD.Seconds(), req.MaxMR, req.MinQAP*100)
	fmt.Fprintf(w, "%-9s  %-28s  %-30s  %-30s\n",
		"case", "configured (Δt, α)", "static Chen: TD/MR/QAP meas.", "SFD(SM₁=α): TD/MR/QAP meas.")

	for _, env := range trace.PresetNames() {
		gp, err := trace.Preset(env)
		if err != nil {
			return err
		}
		gp.Count = cfg.Heartbeats
		tr := trace.Collect(gp.Meta, trace.NewGenerator(gp))

		// Measure the network model the way an operator would: from the
		// trace statistics (or live, from a Prober + loss counters).
		st := trace.Analyze(env, tr.Stream())
		net := detector.NetworkStats{
			LossRate:  st.LossRate,
			DelayMean: clock.Duration(st.DelayMeanMS * float64(clock.Millisecond)),
			DelayStd:  clock.Duration(st.DelayStdMS * float64(clock.Millisecond)),
		}
		conf, err := detector.Configure(net, req)
		if err != nil {
			fmt.Fprintf(w, "%-9s  %s\n", env, err)
			continue
		}

		// The trace's sending interval is fixed; provisioning can only
		// pick the margin. Replay a static Chen at the configured α and
		// an SFD seeded with it.
		cell := func(r qos.Result) string {
			return fmt.Sprintf("%.3fs / %-9.3g / %7.4f%%", r.TDAvg.Seconds(), r.MR, r.QAP*100)
		}
		static := qos.Replay(tr.Stream(), detector.NewChen(cfg.WindowSize, 0, conf.Alpha))
		tuned := qos.Replay(tr.Stream(), core.New(core.Config{
			WindowSize:    cfg.WindowSize,
			InitialMargin: conf.Alpha,
			Targets:       DefaultTargets(),
		}))
		fmt.Fprintf(w, "%-9s  Δt=%-8v α=%-10v  %-30s  %-30s\n",
			env, conf.Interval.Round(clock.Millisecond), conf.Alpha.Round(clock.Millisecond),
			cell(static), cell(tuned))
	}
	fmt.Fprintln(w, "\nnote: Configure's Cantelli bound is distribution-free and therefore")
	fmt.Fprintln(w, "conservative; SFD starts from the provisioned margin and trims it to the")
	fmt.Fprintln(w, "measured network, which is the paper's core argument for self-tuning.")
	return nil
}
