package bench

import (
	"fmt"
	"io"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/qos"
)

func init() {
	register(Experiment{
		ID:    "extended",
		Title: "Extended comparison — six detectors, equal-TD anchors, crossovers",
		Paper: "Beyond the paper's four schemes: adds the TCP-RTO-style detector and the exponential accrual variant; compares at equal detection time as §V prescribes, and locates MR crossovers.",
		Run:   runExtended,
	})
}

func runExtended(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	tr, err := MakeTrace(cfg, "WAN-1")
	if err != nil {
		return err
	}
	ws := cfg.WindowSize
	n := cfg.SweepPoints

	curves := FigureCurves(cfg, tr, DefaultTargets())
	rto := qos.Sweep(tr, "RTO", func(k float64) detector.Detector {
		return detector.NewRTO(k, 2)
	}, qos.LinSpace(1, 12, n))
	phiExp := qos.Sweep(tr, "phi-exp", func(p float64) detector.Detector {
		return detector.NewPhiExp(ws, p)
	}, qos.LinSpace(0.1, 4, n))
	curves = append(curves, rto, phiExp)

	for _, c := range curves {
		fmt.Fprintln(w, c.Table())
	}
	fmt.Fprintln(w, ScatterPlot(curves, "mr"))

	// Equal-TD comparison, the honest ranking the paper insists on.
	anchors := []clock.Duration{
		150 * clock.Millisecond, 300 * clock.Millisecond,
		600 * clock.Millisecond, clock.Second, 2 * clock.Second,
	}
	fmt.Fprintln(w, "equal-detection-time ranking:")
	fmt.Fprintln(w, qos.AnchorTable(qos.CompareAt(curves, anchors)))

	// Crossovers between the interesting pairs.
	pairs := [][2]string{{"Chen FD", "phi FD"}, {"Chen FD", "RTO"}, {"phi FD", "phi-exp"}}
	byName := map[string]qos.Curve{}
	for _, c := range curves {
		byName[c.Detector] = c
	}
	for _, p := range pairs {
		a, b := byName[p[0]], byName[p[1]]
		if td, ok := qos.Crossover(a, b); ok {
			fmt.Fprintf(w, "crossover: %s vs %s MR ordering flips at TD ≈ %.3fs\n",
				p[0], p[1], td.Seconds())
		} else {
			fmt.Fprintf(w, "crossover: %s vs %s — none in the overlapping range (one dominates)\n",
				p[0], p[1])
		}
	}

	// SFD pinned for reference at the default targets.
	sfdRes := qos.Replay(tr.Stream(), core.New(core.Config{
		WindowSize: ws, InitialMargin: 200 * clock.Millisecond, Targets: DefaultTargets(),
	}))
	fmt.Fprintf(w, "\nreference SFD at default targets: %s\n", sfdRes)
	return nil
}
