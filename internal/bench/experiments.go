package bench

import (
	"fmt"
	"io"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/qos"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Table I — summary of the WAN experiments (host matrix)",
		Paper: "Six PlanetLab sender/receiver pairs across USA, Germany, Japan, China.",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "table2",
		Title: "Table II — summary of the experiments: statistics",
		Paper: "Per-environment heartbeat totals, loss rates, send/receive interval stats, RTT.",
		Run:   runTable2,
	})
	register(Experiment{
		ID:    "fig6",
		Title: "Fig. 6 — mistake rate vs detection time in a WAN (JP↔CH)",
		Paper: "Chen widest range reaching lowest MR conservatively; φ matches Chen aggressively, stops early; Bertier one aggressive point; SFD occupies the 0.3–0.9 s feedback band.",
		Run:   figRunner("WAN-JPCH", "mr"),
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Fig. 7 — query accuracy probability vs detection time in a WAN (JP↔CH)",
		Paper: "QAP in the 99.6–99.75% band; best values upper-left.",
		Run:   figRunner("WAN-JPCH", "qap"),
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Fig. 9 — mistake rate vs detection time, WAN-1 (USA→Japan)",
		Paper: "SFD curve from TD 0.10 s (MR 0.31, QAP 99.5%) to 0.87 s (MR 4.1e-4, QAP 99.8%); Chen conservative reaching MR 0; φ stops at TD 1.58 s.",
		Run:   figRunner("WAN-1", "mr"),
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Fig. 10 — query accuracy probability vs detection time, WAN-1",
		Paper: "Same sweep, QAP axis (97.5–100%).",
		Run:   figRunner("WAN-1", "qap"),
	})
	register(Experiment{
		ID:    "window",
		Title: "§V-C — effect of window size on FD QoS",
		Paper: "Larger windows help φ; window size negligible for Bertier; smaller windows better for Chen and SFD.",
		Run:   runWindow,
	})
	register(Experiment{
		ID:    "selftune",
		Title: "§V-B — SFD self-tuning convergence and infeasible response",
		Paper: "SM trajectory converges to the target QoS box; infeasible targets elicit the 'can not satisfy' response.",
		Run:   runSelfTune,
	})
	register(Experiment{
		ID:    "cluster",
		Title: "§VII — one-monitors-multiple / multiple-monitor-multiple cloud",
		Paper: "The Fig. 1 consortium: crash detection latency and cross-cloud quorum agreement.",
		Run:   runCluster,
	})
}

func runTable1(cfg Config, w io.Writer) error {
	fmt.Fprintf(w, "%-9s %-9s %-35s %-9s %-35s\n", "case", "sender", "sender-hostname", "receiver", "receiver-hostname")
	for _, name := range trace.PresetNames() {
		if name == "WAN-JPCH" {
			continue // Table I covers only the six PlanetLab pairs
		}
		gp, err := trace.Preset(name)
		if err != nil {
			return err
		}
		m := gp.Meta
		fmt.Fprintf(w, "%-9s %-9s %-35s %-9s %-35s\n", m.Name, m.Sender, m.SenderHost, m.Receiver, m.ReceiverHost)
	}
	return nil
}

func runTable2(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(w, trace.TableHeader())
	for _, name := range trace.PresetNames() {
		gp, err := trace.Preset(name)
		if err != nil {
			return err
		}
		gp.Count = cfg.Heartbeats
		if cfg.Full {
			gp.Count = trace.PaperCounts[name]
		}
		st := trace.Analyze(name, trace.NewGenerator(gp))
		fmt.Fprintln(w, st.TableRow())
		if name == "WAN-JPCH" {
			fmt.Fprintf(w, "%-9s   bursts=%d maxBurst=%d meanBurst=%.1f (paper: 814 bursts, max 1093)\n",
				"", st.LossBursts, st.MaxBurstLen, st.MeanBurstLen)
		}
	}
	return nil
}

func figRunner(env, yAxis string) func(Config, io.Writer) error {
	return func(cfg Config, w io.Writer) error {
		tr, err := MakeTrace(cfg, env)
		if err != nil {
			return err
		}
		curves := FigureCurves(cfg, tr, DefaultTargets())
		writeCurves(w, curves, yAxis)
		writeShapeChecks(w, curves)
		return nil
	}
}

// writeShapeChecks prints the qualitative relations the paper's figures
// exhibit, so a reader can confirm the reproduction preserves them.
func writeShapeChecks(w io.Writer, curves []qos.Curve) {
	byName := map[string]qos.Curve{}
	for _, c := range curves {
		byName[c.Detector] = c
	}
	sfd, chen, phi := byName["SFD"], byName["Chen FD"], byName["phi FD"]

	sMin, sMax := sfd.TDRange()
	cMin, cMax := chen.TDRange()
	pMin, pMax := phi.TDRange()
	fmt.Fprintf(w, "shape: Chen TD range  [%.3fs, %.3fs]\n", cMin.Seconds(), cMax.Seconds())
	fmt.Fprintf(w, "shape: phi  TD range  [%.3fs, %.3fs] (threshold capped at %g)\n",
		pMin.Seconds(), pMax.Seconds(), detector.PhiMaxThreshold)
	fmt.Fprintf(w, "shape: SFD  TD range  [%.3fs, %.3fs] (feedback band)\n", sMin.Seconds(), sMax.Seconds())
	fmt.Fprintf(w, "shape: Chen covers widest range: %v\n", cMax-cMin >= sMax-sMin && cMax >= pMax)
	fmt.Fprintf(w, "shape: SFD avoids Chen's conservative extreme: %v (SFD max %.3fs < Chen max %.3fs)\n",
		sMax < cMax, sMax.Seconds(), cMax.Seconds())
	zeroMR := false
	for _, p := range chen.Points {
		if p.Result.Mistakes == 0 {
			zeroMR = true
			break
		}
	}
	fmt.Fprintf(w, "shape: Chen reaches MR=0 in the conservative range: %v\n", zeroMR)
}

func runWindow(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	tr, err := MakeTrace(cfg, "WAN-1")
	if err != nil {
		return err
	}
	sizes := []int{100, 250, 500, 1000, 2000, 4000}
	fmt.Fprintf(w, "%-6s  %-26s %-26s %-26s %-26s\n", "WS", "Chen(α=200ms)", "Bertier", "phi(Φ=4)", "SFD(SM1=200ms)")
	fmt.Fprintf(w, "%-6s  %s\n", "", "each cell: TD[s] / MR[1/s] / QAP[%]")
	for _, ws := range sizes {
		cell := func(r qos.Result) string {
			return fmt.Sprintf("%.3f / %-9.3g / %7.4f", r.TDAvg.Seconds(), r.MR, r.QAP*100)
		}
		chen := qos.Replay(tr.Stream(), detector.NewChen(ws, 0, 200*clock.Millisecond))
		bert := qos.Replay(tr.Stream(), detector.NewBertier(ws, 0, detector.DefaultBertierParams()))
		phi := qos.Replay(tr.Stream(), detector.NewPhi(ws, 4, 0))
		sfd := qos.Replay(tr.Stream(), core.New(core.Config{
			WindowSize: ws, InitialMargin: 200 * clock.Millisecond,
			Targets: DefaultTargets(),
		}))
		fmt.Fprintf(w, "%-6d  %-26s %-26s %-26s %-26s\n", ws, cell(chen), cell(bert), cell(phi), cell(sfd))
	}
	return nil
}

func runSelfTune(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	tr, err := MakeTrace(cfg, "WAN-1")
	if err != nil {
		return err
	}

	// Feasible request: start far too conservative; watch SM fall.
	targets := DefaultTargets()
	sfd := core.New(core.Config{
		WindowSize:    cfg.WindowSize,
		InitialMargin: 3 * clock.Second,
		Alpha:         100 * clock.Millisecond, Beta: 0.5,
		SlotHeartbeats: 500,
		Targets:        targets,
	})
	res := qos.Replay(tr.Stream(), sfd)
	fmt.Fprintf(w, "feasible request %v, SM1=3s\n", targets)
	fmt.Fprintf(w, "  final state=%v margin=%v\n", sfd.State(), sfd.Margin())
	fmt.Fprintf(w, "  measured  %s\n", res)
	fmt.Fprintln(w, "  SM trajectory (slot → margin, verdict):")
	hist := sfd.History()
	step := len(hist)/12 + 1
	for i := 0; i < len(hist); i += step {
		a := hist[i]
		fmt.Fprintf(w, "    slot %4d  SM=%-10v  verdict=%-9v  TD=%.3fs MR=%.3g QAP=%.4f%%\n",
			a.Slot, a.Margin, a.Verdict, a.Measured.TD.Seconds(), a.Measured.MR, a.Measured.QAP*100)
	}

	// Infeasible request: Algorithm 1 line 14's response.
	bad := core.New(core.Config{
		WindowSize:    cfg.WindowSize,
		InitialMargin: 0,
		Alpha:         100 * clock.Millisecond, Beta: 0.5,
		SlotHeartbeats:   500,
		Targets:          core.Targets{MaxTD: clock.Millisecond, MaxMR: 1e-9, MinQAP: 0.9999999},
		HaltOnInfeasible: true,
	})
	qos.Replay(tr.Stream(), bad)
	fmt.Fprintf(w, "infeasible request: state=%v\n  response: %s\n", bad.State(), bad.Response())
	return nil
}

func runCluster(cfg Config, w io.Writer) error {
	factory := func(string) detector.Detector {
		c := core.DefaultConfig()
		c.WindowSize = 100
		c.InitialMargin = 200 * clock.Millisecond
		c.Targets = DefaultTargets()
		return core.New(c)
	}
	con := cluster.BuildConsortium(cluster.ConsortiumConfig{
		ServersPerCloud: 3,
		Interval:        100 * clock.Millisecond,
		Jitter:          2 * clock.Millisecond,
		Factory:         factory,
		Seed:            42,
	})
	con.RunFor(30*clock.Second, 10*clock.Millisecond)

	now := con.Clk.Now()
	active := 0
	for _, cl := range con.Clouds {
		for _, r := range cl.Manager.Mon.Snapshot(now) {
			if r.Status == cluster.StatusActive {
				active++
			}
		}
	}
	fmt.Fprintf(w, "consortium warm: %d peer views active across %d clouds\n", active, len(con.Clouds))

	// Crash one server per cloud and measure detection latencies.
	fmt.Fprintf(w, "%-14s %-14s %s\n", "cloud", "crashed", "detection latency")
	var lat []clock.Duration
	for _, name := range []string{"GA", "SC", "NC", "VA", "MD"} {
		cl := con.Clouds[name]
		srv := cl.Servers[0]
		srv.Crash()
		peers := cl.Manager.Mon.Peers()
		var peerName string
		for _, p := range peers {
			if p == name+"/server-0" {
				peerName = p
			}
		}
		d, ok := con.DetectCrash(name+"/manager", peerName, 10*clock.Second)
		if !ok {
			return fmt.Errorf("cluster: %s crash not detected", peerName)
		}
		lat = append(lat, d)
		fmt.Fprintf(w, "%-14s %-14s %v\n", name, peerName, d)
	}

	// Cross-cloud quorum on a crashed beacon.
	con.Sender("GA/beacon").Crash()
	con.RunFor(3*clock.Second, 10*clock.Millisecond)
	q := con.CrossCloudQuorum("GA")
	sus, votes := q.Suspected("GA/beacon", con.Clk.Now())
	fmt.Fprintf(w, "cross-cloud quorum on GA/beacon crash: suspected=%v votes=%d/%d\n",
		sus, votes, len(q.Monitors))
	if !sus {
		return fmt.Errorf("cluster: quorum failed to confirm beacon crash")
	}
	return nil
}
