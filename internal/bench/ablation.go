package bench

import (
	"fmt"
	"io"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/qos"
)

// Ablation experiments for the design choices DESIGN.md calls out. These
// have no direct counterpart in the paper's figures; they justify the
// reproduction's interpretation decisions and quantify SFD's own knobs.
func init() {
	register(Experiment{
		ID:    "ablation-gapfill",
		Title: "Ablation — §IV-C time-series gap filling on a bursty-loss WAN",
		Paper: "SFD fills delay samples for lost heartbeats with d_i = Δt·n_ag + d_{i−1}.",
		Run:   runAblationGapFill,
	})
	register(Experiment{
		ID:    "ablation-slot",
		Title: "Ablation — feedback slot length vs convergence",
		Paper: "\"in a specific time slot, we adjust the parameters of SFD only one time\" (§IV-A); the slot length is unspecified.",
		Run:   runAblationSlot,
	})
	register(Experiment{
		ID:    "ablation-step",
		Title: "Ablation — adjustment step β·α vs convergence and stability",
		Paper: "\"The value β is for the adjusting rate, and it could be dynamically chosen by users\" (§IV-B).",
		Run:   runAblationStep,
	})
	register(Experiment{
		ID:    "ablation-signs",
		Title: "Ablation — Algorithm 1 printed signs vs the corrected rule",
		Paper: "Lines 11/13 print Sat=+β for slow TD and −β for bad accuracy; the WAN-1 walkthrough implies the opposite (DESIGN.md §4).",
		Run:   runAblationSigns,
	})
}

func runAblationGapFill(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	// WAN-2: 5% loss in bursts — where gap filling matters most.
	tr, err := MakeTrace(cfg, "WAN-2")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %10s %14s %12s %10s\n", "gapfill", "TD[s]", "MR[1/s]", "QAP[%]", "mistakes")
	for _, fill := range []bool{false, true} {
		det := core.New(core.Config{
			WindowSize:    cfg.WindowSize,
			InitialMargin: 200 * clock.Millisecond,
			FillGaps:      fill,
			Targets:       DefaultTargets(),
		})
		r := qos.Replay(tr.Stream(), det)
		fmt.Fprintf(w, "%-10v %10.4f %14.6g %12.5f %10d\n",
			fill, r.TDAvg.Seconds(), r.MR, r.QAP*100, r.Mistakes)
	}
	fmt.Fprintln(w, "expectation: filling keeps the estimation window dense through bursts,")
	fmt.Fprintln(w, "trading slightly inflated freshness points for fewer loss-induced mistakes.")
	return nil
}

func runAblationSlot(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	tr, err := MakeTrace(cfg, "WAN-1")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %14s %12s %16s %10s\n", "slot", "final-SM", "state", "slots-to-stable", "TD[s]")
	for _, slot := range []int{50, 100, 200, 500, 1000, 2000} {
		det := core.New(core.Config{
			WindowSize:     cfg.WindowSize,
			InitialMargin:  3 * clock.Second,
			SlotHeartbeats: slot,
			Targets:        DefaultTargets(),
		})
		r := qos.Replay(tr.Stream(), det)
		fmt.Fprintf(w, "%-8d %14v %12v %16d %10.4f\n",
			slot, det.Margin(), det.State(), slotsToStable(det), r.TDAvg.Seconds())
	}
	fmt.Fprintln(w, "expectation: short slots converge in fewer heartbeats but measure noisier QoS;")
	fmt.Fprintln(w, "long slots are stable but spend most of a short trace still tuning.")
	return nil
}

func runAblationStep(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	tr, err := MakeTrace(cfg, "WAN-1")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %-9s %14s %12s %16s %12s\n",
		"step(β·α)", "adaptive", "final-SM", "state", "slots-to-stable", "direction-flips")
	for _, stepMS := range []float64{10, 25, 50, 100, 250} {
		for _, adaptive := range []bool{false, true} {
			det := core.New(core.Config{
				WindowSize:     cfg.WindowSize,
				InitialMargin:  3 * clock.Second,
				Alpha:          clock.Duration(2 * stepMS * float64(clock.Millisecond)),
				Beta:           0.5, // step = β·α = stepMS
				SlotHeartbeats: 200,
				Targets:        DefaultTargets(),
				AdaptiveStep:   adaptive,
			})
			qos.Replay(tr.Stream(), det)
			fmt.Fprintf(w, "%-12.0f %-9v %14v %12v %16d %12d\n",
				stepMS, adaptive, det.Margin(), det.State(), slotsToStable(det), directionFlips(det))
		}
	}
	fmt.Fprintln(w, "expectation: tiny steps converge slowly; huge steps overshoot and oscillate")
	fmt.Fprintln(w, "around the target box (more direction flips); the adaptive step (an")
	fmt.Fprintln(w, "extension the paper leaves to users) damps the large-step oscillation.")
	return nil
}

func runAblationSigns(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	tr, err := MakeTrace(cfg, "WAN-1")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %14s %12s %10s %14s\n", "rule", "final-SM", "state", "TD[s]", "MR[1/s]")
	for _, inverted := range []bool{false, true} {
		det := core.New(core.Config{
			WindowSize:     cfg.WindowSize,
			InitialMargin:  3 * clock.Second, // too slow: correct rule shrinks SM
			SlotHeartbeats: 200,
			Targets:        DefaultTargets(),
			InvertFeedback: inverted,
		})
		r := qos.Replay(tr.Stream(), det)
		rule := "corrected"
		if inverted {
			rule = "as-printed"
		}
		fmt.Fprintf(w, "%-12s %14v %12v %10.4f %14.6g\n",
			rule, det.Margin(), det.State(), r.TDAvg.Seconds(), r.MR)
	}
	fmt.Fprintln(w, "expectation: the as-printed signs push SM to the clamp and never satisfy the")
	fmt.Fprintln(w, "targets, confirming Algorithm 1's listing has the signs transposed (DESIGN.md §4).")
	return nil
}

// slotsToStable counts adjustment slots until the first stable verdict
// (0 when never stable).
func slotsToStable(det *core.SFD) int {
	for _, a := range det.History() {
		if a.Verdict == core.VerdictStable {
			return a.Slot
		}
	}
	return 0
}

// directionFlips counts sign changes in the margin trajectory — an
// oscillation measure for the step-size ablation.
func directionFlips(det *core.SFD) int {
	hist := det.History()
	flips := 0
	prevDir := 0
	for i := 1; i < len(hist); i++ {
		d := 0
		if hist[i].Margin > hist[i-1].Margin {
			d = 1
		} else if hist[i].Margin < hist[i-1].Margin {
			d = -1
		}
		if d != 0 && prevDir != 0 && d != prevDir {
			flips++
		}
		if d != 0 {
			prevDir = d
		}
	}
	return flips
}
