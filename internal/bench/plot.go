package bench

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/qos"
)

// ScatterPlot renders curves as an ASCII scatter in the paper's figure
// layout: detection time (seconds) on X, and on Y either mistake rate on
// a log scale (yAxis = "mr", Fig. 6/9) or query accuracy probability on a
// linear percent scale (yAxis = "qap", Fig. 7/10). Each curve gets a
// distinct glyph.
func ScatterPlot(curves []qos.Curve, yAxis string) string {
	const width, height = 72, 22
	glyphs := []byte{'S', 'C', 'B', 'F', '*', '+', 'x', 'o'}

	type pt struct {
		x, y float64
		g    byte
	}
	var pts []pt
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)

	logY := yAxis != "qap"
	for ci, c := range curves {
		g := glyphs[ci%len(glyphs)]
		for _, p := range c.Points {
			x := p.Result.TDAvg.Seconds()
			var y float64
			if logY {
				mr := p.Result.MR
				if mr <= 0 {
					mr = 1e-7 // plot floor for zero-mistake points
				}
				y = math.Log10(mr)
			} else {
				y = p.Result.QAP * 100
			}
			pts = append(pts, pt{x, y, g})
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if len(pts) == 0 {
		return "(no points)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range pts {
		col := int((p.x - minX) / (maxX - minX) * float64(width-1))
		row := int((p.y - minY) / (maxY - minY) * float64(height-1))
		row = height - 1 - row
		if grid[row][col] == ' ' || grid[row][col] == p.g {
			grid[row][col] = p.g
		} else {
			grid[row][col] = '#' // collision
		}
	}

	var b strings.Builder
	yLabel := "mistake rate [1/s, log10]"
	if !logY {
		yLabel = "query accuracy probability [%]"
	}
	fmt.Fprintf(&b, "%s vs detection time [s]\n", yLabel)
	for i, row := range grid {
		yVal := maxY - (maxY-minY)*float64(i)/float64(height-1)
		if logY {
			fmt.Fprintf(&b, "%9.2e │%s\n", math.Pow(10, yVal), row)
		} else {
			fmt.Fprintf(&b, "%9.3f │%s\n", yVal, row)
		}
	}
	fmt.Fprintf(&b, "          └%s\n", strings.Repeat("─", width))
	fmt.Fprintf(&b, "           %-10.3f%*s\n", minX, width-10, fmt.Sprintf("%.3f", maxX))
	var legend []string
	for ci, c := range curves {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[ci%len(glyphs)], c.Detector))
	}
	fmt.Fprintf(&b, "           legend: %s\n", strings.Join(legend, "  "))
	return b.String()
}
