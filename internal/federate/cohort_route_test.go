package federate

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fanout"
)

// linearCohortOf is the reference implementation the trie-backed
// cohortOfLocked replaced: scan every owned filter, first match in
// sorted order wins. The equivalence test keeps the two in lockstep.
func linearCohortOf(cohorts map[string]*cohortState, peer string) *cohortState {
	var best *cohortState
	for f, c := range cohorts {
		if fanout.MatchTopic(f, peer) {
			if best == nil || f < best.filter {
				best = c
			}
		}
	}
	return best
}

func leafWithCohorts(t *testing.T, filters []string) *Leaf {
	t.Helper()
	l := &Leaf{cohorts: make(map[string]*cohortState, len(filters))}
	for _, f := range filters {
		if err := fanout.ValidateFilter(f); err != nil {
			t.Fatalf("filter %q: %v", f, err)
		}
		l.cohorts[f] = &cohortState{filter: f}
	}
	l.rebuildTrieLocked()
	return l
}

// TestCohortOfMatchesLinearScan drives the trie-backed lookup and the
// linear reference over overlapping filter sets — including wildcard
// overlaps where several cohorts match one stream — and demands the
// same cohort (the min filter string) every time.
func TestCohortOfMatchesLinearScan(t *testing.T) {
	filters := []string{
		"eu/#",
		"eu/cluster-1/#",
		"eu/cluster-1/rack-2/#",
		"eu/+/rack-2/#",
		"us/cluster-3/#",
		"+/cluster-1/#",
		"ap/edge/+/sensor",
	}
	l := leafWithCohorts(t, filters)

	topics := []string{
		"eu/cluster-1/rack-2/node-7", // matches 4 overlapping filters
		"eu/cluster-1/node-0",
		"eu/cluster-9/rack-2/node-1",
		"us/cluster-3/node-5",
		"us/cluster-1/node-5", // only "+/cluster-1/#"
		"ap/edge/cam-3/sensor",
		"ap/edge/cam-3/actuator", // no match
		"sa/cluster-0/node-0",    // no match
		"eu",                     // parent of "eu/#": matches per MQTT semantics
	}
	for _, topic := range topics {
		want := linearCohortOf(l.cohorts, topic)
		got := l.cohortOfLocked(topic)
		if got != want {
			t.Errorf("cohortOfLocked(%q) = %v, linear scan = %v", topic, name(got), name(want))
		}
	}
}

// TestCohortOfMatchesLinearScanRandom fuzzes the same equivalence over
// randomly generated filter sets and topics.
func TestCohortOfMatchesLinearScanRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	segs := []string{"eu", "us", "ap", "cluster-1", "cluster-2", "rack-1", "rack-2", "node-3", "+"}
	for trial := 0; trial < 50; trial++ {
		nf := 1 + rng.Intn(12)
		fset := make(map[string]bool)
		for len(fset) < nf {
			depth := 1 + rng.Intn(4)
			f := ""
			for d := 0; d < depth; d++ {
				if d > 0 {
					f += "/"
				}
				f += segs[rng.Intn(len(segs))]
			}
			if rng.Intn(2) == 0 {
				f += "/#"
			}
			if fanout.ValidateFilter(f) == nil {
				fset[f] = true
			}
		}
		filters := make([]string, 0, len(fset))
		for f := range fset {
			filters = append(filters, f)
		}
		l := leafWithCohorts(t, filters)

		for i := 0; i < 200; i++ {
			depth := 1 + rng.Intn(5)
			topic := ""
			for d := 0; d < depth; d++ {
				if d > 0 {
					topic += "/"
				}
				s := segs[rng.Intn(len(segs)-1)] // skip "+": not valid in names
				topic += s
			}
			if fanout.ValidateName(topic) != nil {
				continue
			}
			want := linearCohortOf(l.cohorts, topic)
			got := l.cohortOfLocked(topic)
			if got != want {
				t.Fatalf("trial %d: cohortOfLocked(%q) = %v, linear scan = %v (filters %v)",
					trial, topic, name(got), name(want), filters)
			}
		}
	}
}

// TestCohortTrieRebuiltOnAssignment asserts applyAssignment re-indexes
// the trie: routing must reflect the new cohort set, not the seed's.
func TestCohortTrieRebuiltOnAssignment(t *testing.T) {
	l := leafWithCohorts(t, []string{"eu/old/#"})
	l.opts.ID = "leaf-1"

	if c := l.cohortOfLocked("eu/old/node-1"); c == nil || c.filter != "eu/old/#" {
		t.Fatalf("seed routing broken: got %v", name(c))
	}

	l.applyAssignment(&Assignment{
		Version: 2,
		Entries: []AssignEntry{
			{Cohort: "eu/new/#", Owner: "leaf-1"},
			{Cohort: "eu/other/#", Owner: "leaf-2"},
		},
	})

	if c := l.cohortOfLocked("eu/old/node-1"); c != nil {
		t.Errorf("dropped cohort still routes: %v", name(c))
	}
	if c := l.cohortOfLocked("eu/new/node-1"); c == nil || c.filter != "eu/new/#" {
		t.Errorf("adopted cohort does not route: got %v", name(c))
	}
	if c := l.cohortOfLocked("eu/other/node-1"); c != nil {
		t.Errorf("cohort owned by another leaf routes here: %v", name(c))
	}
}

func name(c *cohortState) string {
	if c == nil {
		return "<none>"
	}
	return fmt.Sprintf("%q", c.filter)
}
