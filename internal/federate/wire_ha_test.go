package federate

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/clock"
)

func randPeerBeat(rng *rand.Rand) PeerBeat {
	return PeerBeat{
		Agg:           randName(rng),
		Region:        randRegion(rng),
		Inc:           rng.Uint64(),
		Seq:           rng.Uint64(),
		SentAt:        clock.Time(rng.Int63()),
		AssignVersion: rng.Uint64(),
		Leader:        rng.Intn(2) == 0,
		Ready:         rng.Intn(2) == 0,
		Leaves:        rng.Uint32(),
		Cohorts:       rng.Uint32(),
		FleetStreams:  rng.Uint64(),
	}
}

func randMirror(rng *rand.Rand) Mirror {
	m := Mirror{
		Agg:           randName(rng),
		Inc:           rng.Uint64(),
		Seq:           rng.Uint64(),
		SentAt:        clock.Time(rng.Int63()),
		AssignVersion: rng.Uint64(),
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		m.Leaves = append(m.Leaves, MirrorLeaf{
			ID:       randName(rng),
			Addr:     randName(rng),
			Region:   randRegion(rng),
			Weight:   rng.Float64(),
			Inc:      rng.Uint64(),
			LastSeq:  rng.Uint64(),
			LastAt:   clock.Time(rng.Int63()),
			EchoedAV: rng.Uint64(),
			Live:     uint8(rng.Intn(int(leafDead) + 1)),
		})
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		filter := randName(rng) + "/#"
		c := MirrorCohort{
			Filter:           filter,
			Owner:            randName(rng),
			Orphaned:         rng.Intn(2) == 0,
			EpochLeaf:        randName(rng),
			EpochInc:         rng.Uint64(),
			CarriedSuspects:  rng.Uint64(),
			CarriedTrusts:    rng.Uint64(),
			CarriedOfflines:  rng.Uint64(),
			CarriedEvictions: rng.Uint64(),
			// Last.Filter mirrors the cohort filter on decode, and the
			// notable ring is deliberately not mirrored.
			Last: CohortDigest{
				Filter:    filter,
				Streams:   rng.Uint32(),
				Trusted:   rng.Uint32(),
				Suspected: rng.Uint32(),
				Offline:   rng.Uint32(),
				Suspects:  rng.Uint64(),
				Trusts:    rng.Uint64(),
				Offlines:  rng.Uint64(),
				Evictions: rng.Uint64(),
				TDSum:     rng.Float64() * 100,
				MRSum:     rng.Float64(),
				QAPMin:    rng.Float64(),
				Tuned:     rng.Uint32(),
				Omitted:   rng.Uint32(),
			},
			UpdatedAt: clock.Time(rng.Int63()),
		}
		m.Cohorts = append(m.Cohorts, c)
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		h := RedelegationRecord{
			Version:      rng.Uint64(),
			At:           clock.Time(rng.Int63()),
			Dead:         randName(rng),
			MovedOmitted: rng.Uint32(),
		}
		for j, k := 0, rng.Intn(3); j < k; j++ {
			h.Moved = append(h.Moved, AssignEntry{Cohort: randName(rng) + "/#", Owner: randName(rng)})
		}
		m.History = append(m.History, h)
	}
	return m
}

func randAck(rng *rand.Rand) Ack {
	return Ack{
		Agg:           randName(rng),
		Leader:        rng.Intn(2) == 0,
		AssignVersion: rng.Uint64(),
		EchoSeq:       rng.Uint64(),
		SentAt:        clock.Time(rng.Int63()),
	}
}

// TestHARoundTrip extends the codec property test to the HA kinds:
// Marshal∘Decode is the identity and re-encoding is canonical.
func TestHARoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		p := randPeerBeat(rng)
		b := p.Marshal()
		msg, err := Decode(b)
		if err != nil {
			t.Fatalf("iter %d: decode peer beat: %v", i, err)
		}
		if msg.PeerBeat == nil || msg.Digest != nil || msg.Assign != nil || msg.Mirror != nil || msg.Ack != nil {
			t.Fatalf("iter %d: peer beat decoded into the wrong arm: %+v", i, msg)
		}
		if !reflect.DeepEqual(*msg.PeerBeat, p) {
			t.Fatalf("iter %d: lossy peer beat round trip:\n have %+v\n want %+v", i, *msg.PeerBeat, p)
		}
		if !bytes.Equal(msg.PeerBeat.Marshal(), b) {
			t.Fatalf("iter %d: peer beat re-encode is not canonical", i)
		}
	}
	for i := 0; i < 500; i++ {
		m := randMirror(rng)
		b := m.Marshal()
		msg, err := Decode(b)
		if err != nil {
			t.Fatalf("iter %d: decode mirror: %v", i, err)
		}
		if msg.Mirror == nil {
			t.Fatalf("iter %d: mirror decoded into the wrong arm", i)
		}
		if !reflect.DeepEqual(*msg.Mirror, m) {
			t.Fatalf("iter %d: lossy mirror round trip:\n have %+v\n want %+v", i, *msg.Mirror, m)
		}
		if !bytes.Equal(msg.Mirror.Marshal(), b) {
			t.Fatalf("iter %d: mirror re-encode is not canonical", i)
		}
	}
	for i := 0; i < 500; i++ {
		k := randAck(rng)
		b := k.Marshal()
		msg, err := Decode(b)
		if err != nil {
			t.Fatalf("iter %d: decode ack: %v", i, err)
		}
		if msg.Ack == nil {
			t.Fatalf("iter %d: ack decoded into the wrong arm", i)
		}
		if !reflect.DeepEqual(*msg.Ack, k) {
			t.Fatalf("iter %d: lossy ack round trip:\n have %+v\n want %+v", i, *msg.Ack, k)
		}
		if !bytes.Equal(msg.Ack.Marshal(), b) {
			t.Fatalf("iter %d: ack re-encode is not canonical", i)
		}
	}
	// Decode also handles the legacy kinds.
	d := randDigest(rng)
	if msg, err := Decode(d.Marshal()); err != nil || msg.Digest == nil || !reflect.DeepEqual(*msg.Digest, d) {
		t.Fatalf("Decode(digest) = %+v, %v", msg, err)
	}
	a := randAssignment(rng)
	if msg, err := Decode(a.Marshal()); err != nil || msg.Assign == nil || !reflect.DeepEqual(*msg.Assign, a) {
		t.Fatalf("Decode(assignment) = %+v, %v", msg, err)
	}
}

// TestDecodeRejects covers the HA kinds' failure modes: truncation at
// every length, trailing bytes, unknown flag bits, illegal liveness,
// over-bound counts — and that the legacy Unmarshal refuses HA kinds.
func TestDecodeRejects(t *testing.T) {
	beat := PeerBeat{Agg: "agg-a", Region: "eu", Inc: 1, Seq: 5, SentAt: 100,
		AssignVersion: 2, Leader: true, Ready: true, Leaves: 3, Cohorts: 12, FleetStreams: 10_000}
	mirror := Mirror{Agg: "agg-a", Inc: 1, Seq: 6, SentAt: 100, AssignVersion: 2,
		Leaves: []MirrorLeaf{{ID: "eu/leaf-0", Addr: "eu/leaf-0", Region: "eu", Weight: 1, Inc: 1, LastSeq: 4, LastAt: 90, Live: uint8(leafAlive)}},
		Cohorts: []MirrorCohort{{Filter: "eu/cl-0/#", Owner: "eu/leaf-0", EpochLeaf: "eu/leaf-0", EpochInc: 1,
			Last: CohortDigest{Filter: "eu/cl-0/#", Streams: 7, QAPMin: 1}, UpdatedAt: 95}},
		History: []RedelegationRecord{{Version: 2, At: 80, Dead: "eu/leaf-9",
			Moved: []AssignEntry{{Cohort: "eu/cl-9/#", Owner: "eu/leaf-0"}}}}}
	ack := Ack{Agg: "agg-a", Leader: true, AssignVersion: 2, EchoSeq: 9, SentAt: 100}

	for name, good := range map[string][]byte{
		"peerBeat": beat.Marshal(),
		"mirror":   mirror.Marshal(),
		"ack":      ack.Marshal(),
	} {
		for n := 0; n < len(good); n++ {
			if _, err := Decode(good[:n]); err == nil {
				t.Fatalf("%s: truncation to %d bytes accepted", name, n)
			}
		}
		if _, err := Decode(append(append([]byte(nil), good...), 0)); err == nil {
			t.Fatalf("%s: trailing byte accepted", name)
		}
		// The legacy decoder must refuse the HA kinds rather than
		// misparse them.
		if _, _, err := Unmarshal(good); err == nil {
			t.Fatalf("%s: legacy Unmarshal accepted an HA kind", name)
		}
	}

	// Unknown flag bits: flags byte follows agg+region strings and four
	// u64s in a beat.
	b := beat.Marshal()
	flagsOff := 4 + 2 + len(beat.Agg) + 2 + len(beat.Region) + 8*4
	b[flagsOff] |= 0x80
	if _, err := Decode(b); err == nil {
		t.Fatal("peer beat with unknown flag bit accepted")
	}

	// Illegal liveness value in a mirror leaf row (last byte of the row).
	badLive := mirror
	badLive.Leaves = []MirrorLeaf{{ID: "x", Live: uint8(leafDead) + 1}}
	// Marshal doesn't validate Live (it is a trusted internal enum), so
	// the decoder must.
	if _, err := Decode(badLive.Marshal()); err == nil {
		t.Fatal("mirror leaf with out-of-range liveness accepted")
	}

	// Over-bound encode panics, same contract as the legacy kinds.
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	long := strings.Repeat("x", maxNameLen+1)
	mustPanic("long beat agg", func() { PeerBeat{Agg: long}.Marshal() })
	mustPanic("too many mirror leaves", func() {
		Mirror{Agg: "a", Leaves: make([]MirrorLeaf, MaxMirrorLeaves+1)}.Marshal()
	})
	mustPanic("too many mirror cohorts", func() {
		Mirror{Agg: "a", Cohorts: make([]MirrorCohort, MaxMirrorCohorts+1)}.Marshal()
	})
	mustPanic("too many mirror history records", func() {
		Mirror{Agg: "a", History: make([]RedelegationRecord, MaxMirrorHistory+1)}.Marshal()
	})
	mustPanic("long ack agg", func() { Ack{Agg: long}.Marshal() })
	mustPanic("mirror over byte budget", func() {
		// Per-record counts are in bounds but long names push the
		// encoding past MirrorMTU; the chunker must never build this.
		big := Mirror{Agg: "a"}
		wide := strings.Repeat("n", maxNameLen)
		for i := 0; i < MaxMirrorLeaves; i++ {
			big.Leaves = append(big.Leaves, MirrorLeaf{ID: wide, Addr: wide, Region: "eu", Live: uint8(leafAlive)})
		}
		big.Marshal()
	})
}
