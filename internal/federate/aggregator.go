package federate

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/gossip"
	"repro/internal/heartbeat"
	"repro/internal/registry"
)

// AggregatorOptions tunes an Aggregator. Zero values take the documented
// defaults.
type AggregatorOptions struct {
	// ID identifies this aggregator in assignment pushes (default: the
	// endpoint address). In HA mode the id doubles as the election rank:
	// lowest id alive leads.
	ID string
	// Region labels this aggregator in peer beats (optional).
	Region string
	// Peers lists the HA peer aggregator addresses. Empty means
	// standalone (no beats, no mirroring, always leader). Non-empty turns
	// on HA: peer beats and anti-entropy mirrors go to every address each
	// round, and leadership is elected over the learned peer set.
	Peers []string
	// Incarnation distinguishes restarts of the same aggregator id in
	// peer beats (default 1; bump on restart).
	Incarnation uint64
	// JoinGrace is how long a freshly started HA aggregator defers
	// leadership while waiting to hear from (and catch up with) an
	// established peer before concluding it is a cold start (default:
	// 3 × DigestInterval).
	JoinGrace clock.Duration
	// DigestInterval is the leaves' expected roll-up period; it drives
	// the liveness-registry defaults and the anti-entropy cadence
	// (default 1 s). Re-delegation completes within ≤ 3 digest intervals
	// of a leaf death with the default liveness windows below.
	DigestInterval clock.Duration
	// LeafOfflineAfter is how long a leaf stays suspected before it is
	// declared offline and its cohorts are re-delegated (default:
	// DigestInterval — one extra interval of grace after suspicion).
	LeafOfflineAfter clock.Duration
	// LeafMaxSilence is the silence safety net on leaf digest streams
	// (default: 2 × DigestInterval).
	LeafMaxSilence clock.Duration
	// LeafEvictAfter is how long a dead leaf is remembered before its
	// record is dropped entirely (default 10 min).
	LeafEvictAfter clock.Duration
	// MaxNotable bounds the per-cohort recent-notable ring served by
	// /fleet (default 16).
	MaxNotable int
	// HistoryCap bounds the re-delegation history ring (default 32).
	HistoryCap int
	// RegistryFactory overrides the detector factory for the leaf
	// liveness registry (nil → default self-tuning SFD, the dogfood).
	RegistryFactory registry.Factory
}

func (o *AggregatorOptions) normalize(ep gossip.Endpoint) {
	if o.ID == "" {
		o.ID = ep.Addr()
	}
	if o.DigestInterval <= 0 {
		o.DigestInterval = clock.Second
	}
	if o.LeafOfflineAfter <= 0 {
		o.LeafOfflineAfter = o.DigestInterval
	}
	if o.LeafMaxSilence <= 0 {
		o.LeafMaxSilence = 2 * o.DigestInterval
	}
	if o.LeafEvictAfter <= 0 {
		o.LeafEvictAfter = 600 * clock.Second
	}
	if o.Incarnation == 0 {
		o.Incarnation = 1
	}
	if o.JoinGrace <= 0 {
		o.JoinGrace = 3 * o.DigestInterval
	}
	if o.MaxNotable <= 0 {
		o.MaxNotable = 16
	}
	if o.HistoryCap <= 0 {
		o.HistoryCap = 32
	}
}

// AggCounters is the aggregator's monotonic counter snapshot.
type AggCounters struct {
	DigestsReceived uint64 `json:"digests_received"`
	DigestsBad      uint64 `json:"digests_bad"`
	DigestsStale    uint64 `json:"digests_stale"`
	RowsMerged      uint64 `json:"rows_merged"`
	RowsConflicted  uint64 `json:"rows_conflicted"`
	Redelegations   uint64 `json:"redelegations"`
	CohortsMoved    uint64 `json:"cohorts_moved"`
	AssignsSent     uint64 `json:"assigns_sent"`
	SendErrors      uint64 `json:"send_errors,omitempty"`
	LeafOfflines    uint64 `json:"leaf_offlines"`
	LeafRecoveries  uint64 `json:"leaf_recoveries"`

	// HA counters (all zero outside HA mode).
	PeerBeatsSent     uint64 `json:"peer_beats_sent,omitempty"`
	PeerBeatsReceived uint64 `json:"peer_beats_received,omitempty"`
	PeerBeatsStale    uint64 `json:"peer_beats_stale,omitempty"`
	MirrorsSent       uint64 `json:"mirrors_sent,omitempty"`
	MirrorsReceived   uint64 `json:"mirrors_received,omitempty"`
	MirrorConflicts   uint64 `json:"mirror_conflicts,omitempty"`
	AcksSent          uint64 `json:"acks_sent,omitempty"`
	Promotions        uint64 `json:"promotions,omitempty"`
	Demotions         uint64 `json:"demotions,omitempty"`
	LeadershipChanges uint64 `json:"leadership_changes,omitempty"`

	Leaves          int    `json:"leaves"`         // gauge
	LiveLeaves      int    `json:"live_leaves"`    // gauge
	Cohorts         int    `json:"cohorts"`        // gauge
	OrphanedCohorts int    `json:"orphan_cohorts"` // gauge: owner dead, no survivor yet
	AssignVersion   uint64 `json:"assign_version"` // gauge
	FleetStreams    uint64 `json:"fleet_streams"`  // gauge: sum of cohort stream counts
}

// leafLiveness is a leaf's coarse liveness as seen by the aggregator's
// detector registry (maintained from that registry's bus events).
type leafLiveness uint8

const (
	leafAlive leafLiveness = iota
	leafSuspected
	leafDead
)

func (s leafLiveness) String() string {
	switch s {
	case leafSuspected:
		return "suspected"
	case leafDead:
		return "offline"
	default:
		return "alive"
	}
}

// leafState is the aggregator's record of one leaf. (inc, lastSeq) is
// the merge watermark — peer mirrors raise it too; (directInc,
// directSeq) is the first-hand watermark, advanced only by digests this
// aggregator received itself. The split keeps the liveness heartbeat
// path honest: a direct digest whose mirrored copy arrived first is
// stale for the merge but still a real arrival for the detector.
type leafState struct {
	id        string
	addr      string // datagram source address; assignment pushes go here
	region    string
	weight    float64
	inc       uint64
	lastSeq   uint64
	directInc uint64
	directSeq uint64
	lastAt    clock.Time
	echoedAV  uint64 // newest assignment version echoed in a digest
	live      leafLiveness
}

// notableAt is a digest notable plus its reporting leaf, for /fleet.
type notableAt struct {
	Notable
	leaf string
}

// cohortMerge is the aggregator's merged view of one cohort. Cumulative
// transition counters reset at the leaves per ownership epoch (owner ×
// leaf incarnation); the aggregator freezes a closing epoch's totals
// into the carried fields, so handoffs and leaf restarts never lose a
// transition — the zero-lost-transitions invariant the acceptance test
// asserts.
type cohortMerge struct {
	filter string
	owner  string

	epochLeaf string
	epochInc  uint64
	last      CohortDigest

	carriedSuspects  uint64
	carriedTrusts    uint64
	carriedOfflines  uint64
	carriedEvictions uint64

	notable   []notableAt
	updatedAt clock.Time
	orphaned  bool
}

func (c *cohortMerge) totals() (suspects, trusts, offlines, evictions uint64) {
	return c.carriedSuspects + c.last.Suspects,
		c.carriedTrusts + c.last.Trusts,
		c.carriedOfflines + c.last.Offlines,
		c.carriedEvictions + c.last.Evictions
}

// closeEpoch freezes the current epoch's cumulative counters into the
// carried totals (called before ownership or incarnation changes).
func (c *cohortMerge) closeEpoch() {
	c.carriedSuspects += c.last.Suspects
	c.carriedTrusts += c.last.Trusts
	c.carriedOfflines += c.last.Offlines
	c.carriedEvictions += c.last.Evictions
	c.last = CohortDigest{Filter: c.filter, QAPMin: 1}
}

// RedelegationRecord is one completed cohort handoff, kept for /fleet.
// Moved is capped at MaxAssignEntries so the record always fits the
// mirror wire; a dead leaf owning more cohorts than that counts the
// overflow in MovedOmitted (the cohort table itself stays exact — only
// this observability record is bounded).
type RedelegationRecord struct {
	Version      uint64        `json:"version"`
	At           clock.Time    `json:"at_ns"`
	Dead         string        `json:"dead_leaf"`
	Moved        []AssignEntry `json:"moved"`
	MovedOmitted uint32        `json:"moved_omitted,omitempty"`
}

// Aggregator is the regional tier above the leaves: it merges cohort
// digests into a fleet-wide view, tracks leaf liveness with an internal
// SFD registry fed by the digest streams themselves, and re-delegates a
// dead leaf's cohorts to survivors through the versioned assignment
// table. All methods are safe for concurrent use.
type Aggregator struct {
	ep   gossip.Endpoint
	clk  clock.Clock
	opts AggregatorOptions

	// liveness is the dogfood registry: one monitored stream per leaf,
	// heartbeaten by digests.
	liveness *registry.Registry
	sub      *registry.Subscription

	mu            sync.Mutex
	leaves        map[string]*leafState
	cohorts       map[string]*cohortMerge
	assignVersion uint64
	history       []RedelegationRecord

	// HA state (peer.go, mirror.go). assignVersionFrom records which peer
	// the current table version was adopted from by mirror ("" when this
	// instance issued it), so equal-version continuation chunks are told
	// apart from split-brain divergence.
	peers             map[string]*peerState
	elector           *cluster.Elector
	leaderID          string
	assignVersionFrom string
	startedAt         clock.Time
	peerSeq           uint64

	digestsReceived atomic.Uint64
	digestsBad      atomic.Uint64
	digestsStale    atomic.Uint64
	rowsMerged      atomic.Uint64
	rowsConflicted  atomic.Uint64
	redelegations   atomic.Uint64
	cohortsMoved    atomic.Uint64
	assignsSent     atomic.Uint64
	sendErrors      atomic.Uint64
	leafOfflines    atomic.Uint64
	leafRecoveries  atomic.Uint64

	leaderFlag        atomic.Bool
	joining           atomic.Bool
	peerBeatsSent     atomic.Uint64
	peerBeatsReceived atomic.Uint64
	peerBeatsStale    atomic.Uint64
	mirrorsSent       atomic.Uint64
	mirrorsReceived   atomic.Uint64
	mirrorConflicts   atomic.Uint64
	acksSent          atomic.Uint64
	promotions        atomic.Uint64
	demotions         atomic.Uint64
	leadershipChanges atomic.Uint64
	lastMirrorRecv    atomic.Int64

	started atomic.Bool
	stopped atomic.Bool
	stopc   chan struct{}
}

// NewAggregator builds an Aggregator serving the fleet over ep. A nil
// clock defaults to the real clock. Call Start, then feed received
// datagrams to HandleDatagram (with their source address — assignment
// pushes reply there).
func NewAggregator(ep gossip.Endpoint, clk clock.Clock, opts AggregatorOptions) *Aggregator {
	if clk == nil {
		clk = clock.NewReal()
	}
	opts.normalize(ep)
	liveness := registry.New(clk, opts.RegistryFactory, registry.Options{
		WheelTick:    opts.DigestInterval / 10,
		OfflineAfter: opts.LeafOfflineAfter,
		MaxSilence:   opts.LeafMaxSilence,
		EvictAfter:   opts.LeafEvictAfter,
	})
	a := &Aggregator{
		ep:       ep,
		clk:      clk,
		opts:     opts,
		liveness: liveness,
		sub:      liveness.Subscribe(4096),
		leaves:   make(map[string]*leafState),
		cohorts:  make(map[string]*cohortMerge),
		peers:    make(map[string]*peerState),
		stopc:    make(chan struct{}),
	}
	if a.haMode() {
		// Start deferent: follow an established peer until caught up (or
		// JoinGrace decides this is a cold start). See peer.go.
		a.joining.Store(true)
		a.rebuildElectorLocked()
	} else {
		a.leaderID = opts.ID
		a.leaderFlag.Store(true)
	}
	return a
}

// ID returns the aggregator's identity.
func (a *Aggregator) ID() string { return a.opts.ID }

// Options returns the effective configuration after defaulting.
func (a *Aggregator) Options() AggregatorOptions { return a.opts }

// Liveness returns the internal leaf-liveness registry (one stream per
// leaf) so embedders can mount its /status, /metrics, and /watch
// surfaces beside /fleet.
func (a *Aggregator) Liveness() *registry.Registry { return a.liveness }

// Start launches the liveness registry's wheel driver and the round
// loop. Idempotent.
func (a *Aggregator) Start() {
	if !a.started.CompareAndSwap(false, true) {
		return
	}
	a.mu.Lock()
	a.startedAt = a.clk.Now()
	a.mu.Unlock()
	a.liveness.Start()
	if af, ok := a.clk.(afterFuncer); ok {
		a.armSim(af)
		return
	}
	go a.runReal()
}

// Stop halts the round loop and the liveness registry.
func (a *Aggregator) Stop() {
	if a.stopped.CompareAndSwap(false, true) {
		close(a.stopc)
		a.sub.Close()
		a.liveness.Stop()
	}
}

// roundPeriod is the maintenance-loop cadence: half the digest interval,
// so a leaf death detected mid-interval converts to an assignment push
// without waiting a full interval (it bounds the handoff tail, keeping
// re-delegation within 3 digest intervals of a kill).
func (a *Aggregator) roundPeriod() clock.Duration {
	if p := a.opts.DigestInterval / 2; p > 0 {
		return p
	}
	return a.opts.DigestInterval
}

func (a *Aggregator) armSim(af afterFuncer) {
	af.AfterFunc(a.roundPeriod(), func(now clock.Time) {
		if a.stopped.Load() {
			return
		}
		a.Round(now)
		a.armSim(af)
	})
}

func (a *Aggregator) runReal() {
	for {
		select {
		case <-a.stopc:
			return
		case now := <-a.clk.After(a.roundPeriod()):
			a.Round(now)
		}
	}
}

// Round executes one maintenance round at instant now: reconcile HA
// leadership, absorb liveness transitions (a leaf declared offline
// triggers re-delegation — leader only; orphaned cohorts retry when a
// leaf recovers or joins), re-push the assignment table to live leaves
// that have not echoed the current version yet (anti-entropy — a lost
// push converges next round, leader only), and ship peer beats plus
// state mirrors to HA peers. Start drives it automatically; tests step
// it by hand.
func (a *Aggregator) Round(now clock.Time) {
	a.reconcileLeadership(now)
	var pushes []push
	a.mu.Lock()
	a.drainLivenessLocked(now)
	if a.leaderFlag.Load() {
		pushes = a.antiEntropyLocked()
	}
	pushes = append(pushes, a.buildPeerTrafficLocked(now)...)
	a.mu.Unlock()
	a.send(pushes)
}

// push is one outbound datagram (built under the lock, sent outside
// it). sent, when non-nil, is the counter credited on successful send.
type push struct {
	to      string
	payload []byte
	sent    *atomic.Uint64
}

func (a *Aggregator) send(pushes []push) {
	for _, p := range pushes {
		if a.ep.Send(p.to, p.payload) != nil {
			// Counted, not silent: an endpoint persistently refusing
			// mirror or assignment traffic is replication stalling.
			a.sendErrors.Add(1)
			continue
		}
		if p.sent != nil {
			p.sent.Add(1)
		}
	}
}

// drainLivenessLocked folds the liveness registry's transitions into
// leaf records and fires re-delegation for offline leaves.
func (a *Aggregator) drainLivenessLocked(now clock.Time) {
	recovered := false
	for {
		select {
		case ev, ok := <-a.sub.C():
			if !ok {
				return
			}
			ls := a.leaves[ev.Peer]
			if ls == nil {
				continue
			}
			switch ev.Type {
			case registry.EventSuspect:
				if ls.live == leafAlive {
					ls.live = leafSuspected
				}
			case registry.EventTrust:
				if ls.live == leafDead {
					a.leafRecoveries.Add(1)
					recovered = true
				}
				ls.live = leafAlive
			case registry.EventOffline:
				if ls.live != leafDead {
					ls.live = leafDead
					a.leafOfflines.Add(1)
					// A standby records the death but defers the handoff to
					// its promotion sweep — only the leader issues tables.
					if a.leaderFlag.Load() {
						a.redelegateLocked(ev.Peer, now)
					}
				}
			case registry.EventEvicted:
				// Long-dead leaf: forget the record entirely. Its cohorts
				// were re-delegated (or orphaned) at offline time.
				delete(a.leaves, ev.Peer)
			}
		default:
			if recovered && a.leaderFlag.Load() {
				a.adoptOrphansLocked(now)
			}
			return
		}
	}
}

// HandleDatagram ingests one received federation datagram with its
// source address (transport.Pump and netsim deliveries both carry it;
// assignment pushes and acks go back to the same address).
// Non-federation payloads are ignored silently; malformed federation
// traffic is counted.
func (a *Aggregator) HandleDatagram(from string, payload []byte) {
	if !IsFederation(payload) {
		return
	}
	msg, err := Decode(payload)
	if err != nil {
		a.digestsBad.Add(1)
		return
	}
	switch {
	case msg.Digest != nil:
		a.ingestDigest(from, msg.Digest)
	case msg.PeerBeat != nil:
		a.ingestPeerBeat(from, msg.PeerBeat)
	case msg.Mirror != nil:
		a.ingestMirror(from, msg.Mirror)
		// Assignments and acks address leaves, not aggregators: ignore.
	}
}

// ingestDigest merges one leaf digest: update the leaf record, feed the
// digest as a heartbeat into the liveness registry, and fold each cohort
// row into the merged fleet view.
func (a *Aggregator) ingestDigest(from string, d *Digest) {
	now := a.clk.Now()
	a.digestsReceived.Add(1)

	a.mu.Lock()
	ls := a.leaves[d.Leaf]
	if ls == nil {
		ls = &leafState{id: d.Leaf, live: leafAlive}
		a.leaves[d.Leaf] = ls
	}
	// Two staleness watermarks. The merge path ratchets on (inc,
	// lastSeq), which peer mirrors also raise; the heartbeat path
	// ratchets on the first-hand watermark only, so a direct digest that
	// lost the race against its own mirrored copy still reaches the
	// liveness detector — mirrors replicate state, not heartbeats, and
	// inflating the detector's gap history from them would manufacture
	// false suspicion on lossy or reordering paths. staleDirect implies
	// staleMerge (the merge watermark is never behind the direct one).
	staleDirect := d.Inc < ls.directInc || (d.Inc == ls.directInc && d.Seq <= ls.directSeq && ls.directSeq != 0)
	staleMerge := d.Inc < ls.inc || (d.Inc == ls.inc && d.Seq <= ls.lastSeq && ls.lastSeq != 0)
	if staleDirect {
		a.mu.Unlock()
		a.digestsStale.Add(1)
		// Still ack: the leaf is reachable even when the digest is a
		// duplicate or reordered.
		a.ackDigest(from, d.Seq, now)
		return
	}
	ls.directInc, ls.directSeq = d.Inc, d.Seq
	ls.addr = from
	ls.lastAt = now
	if !staleMerge {
		ls.region = d.Region
		ls.weight = d.Weight
		ls.inc = d.Inc
		ls.lastSeq = d.Seq
		if d.AssignVersion > ls.echoedAV {
			ls.echoedAV = d.AssignVersion
		}
		// A digest from a dead leaf needs no special casing here: the
		// liveness registry publishes EventTrust for the recovered
		// stream, and the next Round's drain flips the record back to
		// alive and retries any orphaned cohorts.
		for i := range d.Cohorts {
			a.mergeRowLocked(d.Leaf, d.Inc, &d.Cohorts[i], now)
		}
	}
	a.mu.Unlock()
	if staleMerge {
		// Rows already merged from a peer's mirror; only the heartbeat
		// below is new information.
		a.digestsStale.Add(1)
	}

	// Feed the digest as the leaf's liveness heartbeat — the same SFD
	// detector machinery the leaves run on their own streams: the digest
	// sequence is the heartbeat sequence, SentAt the send timestamp, and
	// the leaf incarnation carries through so a restarted leaf's
	// detector starts over.
	a.liveness.Observe(heartbeat.Arrival{
		From: d.Leaf,
		Seq:  d.Seq,
		Send: d.SentAt,
		Recv: now,
		Inc:  d.Inc,
	})
	a.ackDigest(from, d.Seq, now)
}

// ackDigest sends the digest receipt leaves use to track per-aggregator
// reachability (and, through the Leader flag, to learn which aggregator
// is active).
func (a *Aggregator) ackDigest(to string, seq uint64, now clock.Time) {
	a.mu.Lock()
	av := a.assignVersion
	a.mu.Unlock()
	ack := Ack{
		Agg:           a.opts.ID,
		Leader:        a.leaderFlag.Load(),
		AssignVersion: av,
		EchoSeq:       seq,
		SentAt:        now,
	}
	if a.ep.Send(to, ack.Marshal()) == nil {
		a.acksSent.Add(1)
	} else {
		a.sendErrors.Add(1)
	}
}

// mergeRowLocked folds one cohort row into the merged view.
func (a *Aggregator) mergeRowLocked(leaf string, inc uint64, row *CohortDigest, now clock.Time) {
	c := a.cohorts[row.Filter]
	if c == nil {
		// First sight of this cohort: the reporting leaf owns it (the
		// implicit version-0 table is learned from leaf configuration).
		c = &cohortMerge{filter: row.Filter, owner: leaf, last: CohortDigest{Filter: row.Filter, QAPMin: 1}}
		a.cohorts[row.Filter] = c
	}
	if c.owner != leaf {
		// A row from a non-owner: a dead leaf's late digest after
		// re-delegation, or overlapping leaf configs. The assignment
		// table is authoritative — drop the row (the leaf drops the
		// cohort too once the table reaches it).
		a.rowsConflicted.Add(1)
		return
	}
	if c.epochLeaf != leaf || c.epochInc != inc {
		// New ownership epoch (adoption or leaf restart): freeze the old
		// epoch's totals so its transitions survive the handoff.
		c.closeEpoch()
		c.epochLeaf, c.epochInc = leaf, inc
	}
	// Counters are cumulative within an epoch; keep the maximum so an
	// in-epoch reorder can only be a no-op, never a regression.
	prev := c.last
	c.last = *row
	if prev.Suspects > c.last.Suspects {
		c.last.Suspects = prev.Suspects
	}
	if prev.Trusts > c.last.Trusts {
		c.last.Trusts = prev.Trusts
	}
	if prev.Offlines > c.last.Offlines {
		c.last.Offlines = prev.Offlines
	}
	if prev.Evictions > c.last.Evictions {
		c.last.Evictions = prev.Evictions
	}
	c.orphaned = false
	c.updatedAt = now
	for _, n := range row.Notable {
		if len(c.notable) >= a.opts.MaxNotable {
			copy(c.notable, c.notable[1:])
			c.notable = c.notable[:len(c.notable)-1]
		}
		c.notable = append(c.notable, notableAt{Notable: n, leaf: leaf})
	}
	a.rowsMerged.Add(1)
}

// redelegateLocked reassigns a dead leaf's cohorts to survivors. The
// assignment is deterministic: the dead leaf's cohorts in sorted order,
// round-robin over candidates sorted by (same region first, weight
// descending, id ascending). With no live candidate the cohorts are
// orphaned and retried when a leaf recovers or joins.
func (a *Aggregator) redelegateLocked(dead string, now clock.Time) {
	var moved []string
	for f, c := range a.cohorts {
		if c.owner == dead {
			moved = append(moved, f)
		}
	}
	if len(moved) == 0 {
		return
	}
	sort.Strings(moved)

	cands := a.candidatesLocked(dead, a.leaves[dead])
	if len(cands) == 0 {
		for _, f := range moved {
			a.cohorts[f].orphaned = true
		}
		return
	}

	a.assignVersion++
	a.assignVersionFrom = "" // locally issued version
	rec := RedelegationRecord{Version: a.assignVersion, At: now, Dead: dead}
	for i, f := range moved {
		c := a.cohorts[f]
		c.owner = cands[i%len(cands)].id
		c.orphaned = false
		if len(rec.Moved) < MaxAssignEntries {
			rec.Moved = append(rec.Moved, AssignEntry{Cohort: f, Owner: c.owner})
		} else {
			rec.MovedOmitted++
		}
		a.cohortsMoved.Add(1)
	}
	a.redelegations.Add(1)
	a.history = append(a.history, rec)
	if len(a.history) > a.opts.HistoryCap {
		a.history = a.history[len(a.history)-a.opts.HistoryCap:]
	}
	// Pushes go out on the next Round's anti-entropy pass — and keep
	// going out until every live leaf echoes the version, so a lost
	// push only costs one interval.
}

// adoptOrphansLocked re-runs assignment for cohorts whose owner died
// with no survivor available at the time.
func (a *Aggregator) adoptOrphansLocked(now clock.Time) {
	byDead := make(map[string][]string)
	for f, c := range a.cohorts {
		if c.orphaned {
			byDead[c.owner] = append(byDead[c.owner], f)
		}
	}
	deads := make([]string, 0, len(byDead))
	for d := range byDead {
		deads = append(deads, d)
	}
	sort.Strings(deads)
	for _, d := range deads {
		if ls := a.leaves[d]; ls != nil && ls.live != leafDead {
			// The owner itself recovered: cohorts are no longer orphaned.
			for _, f := range byDead[d] {
				a.cohorts[f].orphaned = false
			}
			continue
		}
		a.redelegateLocked(d, now)
	}
}

// candidatesLocked returns live leaves (dead excluded), same-region
// first, heavier first, id as the tiebreak.
func (a *Aggregator) candidatesLocked(dead string, deadLS *leafState) []*leafState {
	region := ""
	if deadLS != nil {
		region = deadLS.region
	}
	var out []*leafState
	for id, ls := range a.leaves {
		if id == dead || ls.live == leafDead {
			continue
		}
		out = append(out, ls)
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].region == region, out[j].region == region
		if si != sj {
			return si
		}
		if out[i].weight != out[j].weight {
			return out[i].weight > out[j].weight
		}
		return out[i].id < out[j].id
	})
	return out
}

// antiEntropyLocked builds assignment pushes for live leaves that have
// not echoed the current table version. Each leaf gets its own filtered
// table (every cohort it owns — full-replace semantics at the leaf).
func (a *Aggregator) antiEntropyLocked() []push {
	if a.assignVersion == 0 {
		return nil
	}
	byOwner := make(map[string][]AssignEntry)
	for f, c := range a.cohorts {
		byOwner[c.owner] = append(byOwner[c.owner], AssignEntry{Cohort: f, Owner: c.owner})
	}
	var out []push
	ids := make([]string, 0, len(a.leaves))
	for id := range a.leaves {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ls := a.leaves[id]
		if ls.live == leafDead || ls.addr == "" || ls.echoedAV >= a.assignVersion {
			continue
		}
		entries := byOwner[id]
		sort.Slice(entries, func(i, j int) bool { return entries[i].Cohort < entries[j].Cohort })
		if len(entries) > MaxAssignEntries {
			entries = entries[:MaxAssignEntries]
		}
		msg := Assignment{Agg: a.opts.ID, Version: a.assignVersion, Entries: entries}
		out = append(out, push{to: ls.addr, payload: msg.Marshal(), sent: &a.assignsSent})
	}
	return out
}

// AssignVersion returns the current assignment-table version.
func (a *Aggregator) AssignVersion() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.assignVersion
}

// OwnerOf returns the current owner of a cohort ("" when unknown).
func (a *Aggregator) OwnerOf(cohort string) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	if c := a.cohorts[cohort]; c != nil {
		return c.owner
	}
	return ""
}

// CohortTotals returns a cohort's merged cumulative transition totals
// across every ownership epoch; ok is false for unknown cohorts.
func (a *Aggregator) CohortTotals(cohort string) (suspects, trusts, offlines, evictions uint64, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c := a.cohorts[cohort]
	if c == nil {
		return 0, 0, 0, 0, false
	}
	suspects, trusts, offlines, evictions = c.totals()
	return suspects, trusts, offlines, evictions, true
}

// History returns the re-delegation record ring, oldest first.
func (a *Aggregator) History() []RedelegationRecord {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]RedelegationRecord(nil), a.history...)
}

// Counters returns the aggregator's counter snapshot.
func (a *Aggregator) Counters() AggCounters {
	a.mu.Lock()
	leaves, live := len(a.leaves), 0
	for _, ls := range a.leaves {
		if ls.live != leafDead {
			live++
		}
	}
	cohorts, orphans := len(a.cohorts), 0
	var fleetStreams uint64
	for _, c := range a.cohorts {
		if c.orphaned {
			orphans++
		}
		fleetStreams += uint64(c.last.Streams)
	}
	av := a.assignVersion
	a.mu.Unlock()
	return AggCounters{
		DigestsReceived: a.digestsReceived.Load(),
		DigestsBad:      a.digestsBad.Load(),
		DigestsStale:    a.digestsStale.Load(),
		RowsMerged:      a.rowsMerged.Load(),
		RowsConflicted:  a.rowsConflicted.Load(),
		Redelegations:   a.redelegations.Load(),
		CohortsMoved:    a.cohortsMoved.Load(),
		AssignsSent:     a.assignsSent.Load(),
		SendErrors:      a.sendErrors.Load(),
		LeafOfflines:    a.leafOfflines.Load(),
		LeafRecoveries:  a.leafRecoveries.Load(),

		PeerBeatsSent:     a.peerBeatsSent.Load(),
		PeerBeatsReceived: a.peerBeatsReceived.Load(),
		PeerBeatsStale:    a.peerBeatsStale.Load(),
		MirrorsSent:       a.mirrorsSent.Load(),
		MirrorsReceived:   a.mirrorsReceived.Load(),
		MirrorConflicts:   a.mirrorConflicts.Load(),
		AcksSent:          a.acksSent.Load(),
		Promotions:        a.promotions.Load(),
		Demotions:         a.demotions.Load(),
		LeadershipChanges: a.leadershipChanges.Load(),

		Leaves:          leaves,
		LiveLeaves:      live,
		Cohorts:         cohorts,
		OrphanedCohorts: orphans,
		AssignVersion:   av,
		FleetStreams:    fleetStreams,
	}
}
