package federate

import (
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/fanout"
	"repro/internal/gossip"
	"repro/internal/registry"
)

// LeafOptions tunes a Leaf. Zero values take the documented defaults.
type LeafOptions struct {
	// ID identifies this leaf fleet-wide — a valid hierarchical stream
	// name (it becomes a monitored stream on the aggregator). Default:
	// the endpoint address.
	ID string
	// Region groups leaves for re-delegation locality: the aggregator
	// prefers same-region survivors when a leaf dies.
	Region string
	// Cohorts are the topic filters this leaf initially owns (e.g.
	// "eu/cluster-3/#"). The aggregator's assignment table supersedes
	// this seed once a higher-versioned table arrives.
	Cohorts []string
	// Incarnation is bumped by a restarted leaf so the aggregator's
	// detector starts its digest stream over (default 1).
	Incarnation uint64
	// Interval is the roll-up period (default 1 s). Every interval the
	// leaf sweeps its registry, folds bus transitions into per-cohort
	// counters, and sends one digest (or several, chunked) — the digest
	// doubles as the leaf's liveness heartbeat, so an idle leaf still
	// sends every interval.
	Interval clock.Duration
	// MaxNotable bounds the notable-transition list per cohort per
	// digest (default 16, capped at the wire bound). Overflow is counted
	// in the digest's Omitted field; consumers needing every transition
	// tap the leaf's /watch stream.
	MaxNotable int
	// WeightFn supplies the leaf's self-assessed accuracy weight in
	// [0,1] — wire gossip.(*Gossiper).Weight here so gossip verdict
	// quality feeds aggregator re-delegation preference. Nil reports 1.
	WeightFn func() float64
	// BusBuf is the capacity of the registry-bus subscription feeding
	// transition counters (default 4096; drop-oldest beyond that, with
	// drops visible in the registry's fanout accounting).
	BusBuf int
	// Aggs is the ordered aggregator address list for HA deployments;
	// when set it supersedes the constructor's agg argument. The leaf
	// dual-sends every digest to each address (the standby's fleet view
	// stays within one round of the active's) and tracks per-aggregator
	// reachability from digest acks: an aggregator silent past
	// UnreachableAfter is counted unreachable and probed with capped
	// backoff instead of on every round, until an ack revives it.
	Aggs []string
	// UnreachableAfter is the ack-silence bound before an aggregator is
	// counted unreachable (default: 3 × Interval).
	UnreachableAfter clock.Duration
}

func (o *LeafOptions) normalize(ep gossip.Endpoint) {
	if o.ID == "" {
		o.ID = ep.Addr()
	}
	if o.Incarnation == 0 {
		o.Incarnation = 1
	}
	if o.Interval <= 0 {
		o.Interval = clock.Second
	}
	if o.MaxNotable <= 0 || o.MaxNotable > MaxNotablePerCohort {
		o.MaxNotable = 16
	}
	if o.BusBuf <= 0 {
		o.BusBuf = 4096
	}
	if o.UnreachableAfter <= 0 {
		o.UnreachableAfter = 3 * o.Interval
	}
}

// LeafCounters is the leaf's monotonic counter snapshot.
type LeafCounters struct {
	Rollups        uint64 `json:"rollups"`
	DigestsSent    uint64 `json:"digests_sent"`
	SendErrors     uint64 `json:"send_errors"`
	AssignsApplied uint64 `json:"assigns_applied"`
	AssignsStale   uint64 `json:"assigns_stale"`
	BadDatagrams   uint64 `json:"bad_datagrams"`
	NotableOmitted uint64 `json:"notable_omitted"`
	AcksReceived   uint64 `json:"acks_received"`
	AggUnreachable uint64 `json:"agg_unreachable"` // reachable→unreachable transitions
	AggsReachable  int    `json:"aggs_reachable"`  // gauge
	CohortsOwned   int    `json:"cohorts_owned"`   // gauge
	AssignVersion  uint64 `json:"assign_version"`  // gauge
	StreamsRolled  uint64 `json:"streams_rolled"`  // streams matched into cohorts, cumulative
	StreamsForeign uint64 `json:"streams_foreign"` // swept streams outside every owned cohort
}

// cohortState is one owned cohort's accumulator. Transition counters are
// cumulative for the cohort's current ownership epoch (they reset when
// the cohort is adopted, never between digests) so a lost digest cannot
// lose a transition; the notable ring resets every digest.
type cohortState struct {
	filter    string
	suspects  uint64
	trusts    uint64
	offlines  uint64
	evictions uint64
	notable   []Notable
	omitted   uint32
}

// aggState is the leaf's reachability record for one aggregator in its
// ordered list, maintained from digest acks.
type aggState struct {
	addr        string
	canonical   string // addr resolved to ip:port ("" when unresolvable)
	id          string // learned from acks
	leader      bool   // last ack's leadership claim
	firstSentAt clock.Time
	lastAckAt   clock.Time
	unreachable bool
	probeAt     clock.Time     // next probe while unreachable
	backoff     clock.Duration // current probe backoff
}

// Leaf is one monitor's membership in the federation tier: it owns a set
// of cohorts, rolls them up to the regional aggregator(s) every
// Interval, and adopts re-delegated cohorts from the aggregators'
// assignment table. All methods are safe for concurrent use.
type Leaf struct {
	ep   gossip.Endpoint
	clk  clock.Clock
	reg  *registry.Registry
	aggs []*aggState // ordered; guarded by mu (slice fixed, records mutate)
	opts LeafOptions

	mu sync.Mutex
	// cohorts maps filter → accumulator for every owned cohort.
	cohorts map[string]*cohortState
	// trie indexes the owned cohorts by filter so cohortOfLocked resolves
	// a stream in O(topic depth) instead of scanning every cohort —
	// drainBus and sweep call it once per stream, so at 1M streams the
	// linear scan is the difference between O(streams) and
	// O(streams × cohorts) per roll-up round. Rebuilt on assignment
	// changes, which are rare.
	trie *fanout.Trie[*cohortState]
	// matchBuf is cohortOfLocked's reusable match buffer (guarded by mu,
	// like the trie lookups themselves).
	matchBuf []*cohortState
	// assignVersion is the newest assignment-table version applied.
	assignVersion uint64
	seq           uint64

	sub *registry.Subscription

	rollups        atomic.Uint64
	digestsSent    atomic.Uint64
	sendErrors     atomic.Uint64
	assignsApplied atomic.Uint64
	assignsStale   atomic.Uint64
	badDatagrams   atomic.Uint64
	notableOmitted atomic.Uint64
	acksReceived   atomic.Uint64
	aggUnreachable atomic.Uint64
	streamsRolled  atomic.Uint64
	streamsForeign atomic.Uint64

	started atomic.Bool
	stopped atomic.Bool
	stopc   chan struct{}
}

// NewLeaf builds a Leaf that rolls reg's streams up to the aggregator at
// address agg over ep (or the ordered opts.Aggs list, which supersedes
// agg, for HA pairs). A nil clock defaults to the real clock. Call
// Start to begin roll-up rounds and feed received datagrams (assignment
// pushes and acks) to HandleDatagramFrom — the same shared-socket
// pattern as gossip.
func NewLeaf(ep gossip.Endpoint, clk clock.Clock, reg *registry.Registry, agg string, opts LeafOptions) (*Leaf, error) {
	if clk == nil {
		clk = clock.NewReal()
	}
	opts.normalize(ep)
	if err := fanout.ValidateName(opts.ID); err != nil {
		return nil, err
	}
	addrs := opts.Aggs
	if len(addrs) == 0 {
		addrs = []string{agg}
	}
	aggs := make([]*aggState, 0, len(addrs))
	for _, addr := range addrs {
		as := &aggState{addr: addr}
		// Acks are attributed by the datagram's source address, which
		// for a hostname-configured aggregator is its resolved ip:port
		// and never matches the configured string. Resolve once here
		// (best effort — netsim-style names simply don't resolve) so
		// attribution works in either form.
		if ua, err := net.ResolveUDPAddr("udp", addr); err == nil {
			if s := ua.String(); s != addr {
				as.canonical = s
			}
		}
		aggs = append(aggs, as)
	}
	l := &Leaf{
		ep:      ep,
		clk:     clk,
		reg:     reg,
		aggs:    aggs,
		opts:    opts,
		cohorts: make(map[string]*cohortState, len(opts.Cohorts)),
		stopc:   make(chan struct{}),
		sub:     reg.Subscribe(opts.BusBuf),
	}
	for _, f := range opts.Cohorts {
		if err := fanout.ValidateFilter(f); err != nil {
			l.sub.Close()
			return nil, err
		}
		l.cohorts[f] = &cohortState{filter: f}
	}
	l.rebuildTrieLocked()
	return l, nil
}

// rebuildTrieLocked re-indexes l.cohorts into a fresh trie. Filters in
// l.cohorts have already been validated, so Subscribe cannot fail; a
// filter that somehow slipped through falls back to unmatched (counted
// as foreign), never a panic. Must hold mu (or be pre-publication).
func (l *Leaf) rebuildTrieLocked() {
	l.trie = fanout.New[*cohortState]()
	for f, c := range l.cohorts {
		_, _ = l.trie.Subscribe(f, c)
	}
}

// ID returns the leaf's federation identity.
func (l *Leaf) ID() string { return l.opts.ID }

// Options returns the effective configuration after defaulting.
func (l *Leaf) Options() LeafOptions { return l.opts }

// Cohorts returns the currently owned cohort filters, sorted.
func (l *Leaf) Cohorts() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.cohorts))
	for f := range l.cohorts {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// AssignVersion returns the newest applied assignment-table version.
func (l *Leaf) AssignVersion() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.assignVersion
}

// afterFuncer is satisfied by clock.Sim (same pattern as the registry
// wheel driver and the gossip round loop).
type afterFuncer interface {
	AfterFunc(clock.Duration, func(clock.Time))
}

// Start launches the roll-up loop. Idempotent.
func (l *Leaf) Start() {
	if !l.started.CompareAndSwap(false, true) {
		return
	}
	if af, ok := l.clk.(afterFuncer); ok {
		l.armSim(af)
		return
	}
	go l.runReal()
}

// Stop halts the roll-up loop and detaches from the registry bus.
func (l *Leaf) Stop() {
	if l.stopped.CompareAndSwap(false, true) {
		close(l.stopc)
		l.sub.Close()
	}
}

func (l *Leaf) armSim(af afterFuncer) {
	af.AfterFunc(l.opts.Interval, func(now clock.Time) {
		if l.stopped.Load() {
			return
		}
		l.Rollup(now)
		l.armSim(af)
	})
}

func (l *Leaf) runReal() {
	for {
		select {
		case <-l.stopc:
			return
		case now := <-l.clk.After(l.opts.Interval):
			l.Rollup(now)
		}
	}
}

// Rollup executes one roll-up round at instant now: fold queued bus
// transitions into cohort counters, sweep the registry for per-cohort
// state counts and QoS aggregates, and send the digest(s) to the
// aggregator. The digest count — and so the bandwidth — is O(cohorts),
// independent of how many streams the cohorts hold. Start drives it
// automatically; it is exported so tests step rounds by hand.
func (l *Leaf) Rollup(now clock.Time) {
	l.mu.Lock()
	l.drainBusLocked()
	rows := l.sweepLocked()
	digests := l.buildDigestsLocked(now, rows)
	targets := l.targetsLocked(now)
	l.mu.Unlock()

	l.rollups.Add(1)
	for _, d := range digests {
		for _, to := range targets {
			if l.ep.Send(to, d) == nil {
				l.digestsSent.Add(1)
			} else {
				l.sendErrors.Add(1)
			}
		}
	}
}

// targetsLocked picks this round's send targets and updates per-
// aggregator reachability. Every reachable aggregator gets the digests
// (dual-send — both halves of an HA pair stay one round fresh); an
// aggregator whose acks have been silent past UnreachableAfter flips
// unreachable (counted once per transition) and is probed with capped
// exponential backoff instead of every round. With a single configured
// aggregator — or when every aggregator is unreachable — digests keep
// flowing to all of them regardless: the digest is the leaf's
// heartbeat, and someone has to hear a recovery.
func (l *Leaf) targetsLocked(now clock.Time) []string {
	for _, as := range l.aggs {
		if as.unreachable || as.firstSentAt == 0 {
			continue
		}
		ref := as.lastAckAt
		if ref == 0 {
			ref = as.firstSentAt
		}
		if now.Sub(ref) > l.opts.UnreachableAfter {
			as.unreachable = true
			as.backoff = l.opts.Interval
			as.probeAt = now // probe immediately this round, then back off
			l.aggUnreachable.Add(1)
		}
	}
	out := make([]string, 0, len(l.aggs))
	anyReachable := false
	for _, as := range l.aggs {
		if !as.unreachable {
			anyReachable = true
		}
	}
	for _, as := range l.aggs {
		switch {
		case !as.unreachable, len(l.aggs) == 1, !anyReachable:
			// routine send (or mandatory heartbeat path)
		case now >= as.probeAt:
			as.backoff *= 2
			if limit := 16 * l.opts.Interval; as.backoff > limit {
				as.backoff = limit
			}
			as.probeAt = now.Add(as.backoff)
		default:
			continue // backing off
		}
		if as.firstSentAt == 0 {
			as.firstSentAt = now
		}
		out = append(out, as.addr)
	}
	return out
}

// drainBusLocked folds transition events since the last round into the
// owning cohort's cumulative counters and notable ring. An event whose
// stream matches no owned cohort is ignored (it belongs to a cohort
// re-delegated away, or to a stream outside the federation's scope).
func (l *Leaf) drainBusLocked() {
	for {
		select {
		case ev, ok := <-l.sub.C():
			if !ok {
				return
			}
			c := l.cohortOfLocked(ev.Peer)
			if c == nil {
				continue
			}
			notable := false
			switch ev.Type {
			case registry.EventSuspect:
				c.suspects++
				notable = true
			case registry.EventTrust:
				c.trusts++
				notable = true
			case registry.EventOffline:
				c.offlines++
				notable = true
			case registry.EventEvicted:
				c.evictions++
			}
			if !notable {
				continue
			}
			if len(c.notable) >= l.opts.MaxNotable {
				c.omitted++
				l.notableOmitted.Add(1)
				continue
			}
			c.notable = append(c.notable, Notable{
				Peer: ev.Peer,
				Type: uint8(ev.Type),
				At:   ev.At,
				Inc:  ev.Incarnation,
			})
		default:
			return
		}
	}
}

// cohortOfLocked finds the owned cohort a stream belongs to via the
// cohort trie: O(topic depth), independent of how many cohorts the leaf
// owns. First match in sorted filter order wins when filters overlap —
// the same tie-break the old linear scan applied, so re-delegation
// attribution is stable across the index change. The match buffer is
// reused across calls; nothing allocates on the per-stream path.
func (l *Leaf) cohortOfLocked(peer string) *cohortState {
	l.matchBuf = l.trie.MatchAppend(peer, l.matchBuf[:0])
	var best *cohortState
	for _, c := range l.matchBuf {
		if best == nil || c.filter < best.filter {
			best = c
		}
	}
	return best
}

// cohortRow is one sweep's per-cohort aggregate (state counts + QoS).
type cohortRow struct {
	streams, trusted, suspected, offline uint32
	tdSum, mrSum, qapMin                 float64
	tuned                                uint32
}

// sweepLocked walks every registry stream once and buckets it into its
// owning cohort: O(streams) CPU per round, O(cohorts) output.
func (l *Leaf) sweepLocked() map[string]*cohortRow {
	rows := make(map[string]*cohortRow, len(l.cohorts))
	for f := range l.cohorts {
		rows[f] = &cohortRow{qapMin: 1}
	}
	l.reg.ForEachStream(func(v registry.StreamView) {
		c := l.cohortOfLocked(v.Peer)
		if c == nil {
			l.streamsForeign.Add(1)
			return
		}
		l.streamsRolled.Add(1)
		row := rows[c.filter]
		row.streams++
		switch v.Phase {
		case registry.StreamTrusted:
			row.trusted++
		case registry.StreamSuspected:
			row.suspected++
		case registry.StreamOffline:
			row.offline++
		}
		if v.Tuned {
			row.tuned++
			row.tdSum += v.TD.Seconds()
			row.mrSum += v.MR
			if v.QAP < row.qapMin {
				row.qapMin = v.QAP
			}
		}
	})
	return rows
}

// buildDigestsLocked encodes the round's digests, chunked to the wire
// bound, resetting each cohort's notable ring. Sorted cohort order keeps
// digests byte-identical across runs for the same state (determinism
// under clock.Sim).
func (l *Leaf) buildDigestsLocked(now clock.Time, rows map[string]*cohortRow) [][]byte {
	filters := make([]string, 0, len(l.cohorts))
	for f := range l.cohorts {
		filters = append(filters, f)
	}
	sort.Strings(filters)

	weight := 1.0
	if l.opts.WeightFn != nil {
		weight = l.opts.WeightFn()
	}

	entries := make([]CohortDigest, 0, len(filters))
	for _, f := range filters {
		c := l.cohorts[f]
		row := rows[f]
		cd := CohortDigest{
			Filter:    f,
			Suspects:  c.suspects,
			Trusts:    c.trusts,
			Offlines:  c.offlines,
			Evictions: c.evictions,
			QAPMin:    1,
			Omitted:   c.omitted,
		}
		if row != nil {
			cd.Streams, cd.Trusted, cd.Suspected, cd.Offline = row.streams, row.trusted, row.suspected, row.offline
			cd.TDSum, cd.MRSum, cd.QAPMin, cd.Tuned = row.tdSum, row.mrSum, row.qapMin, row.tuned
		}
		if len(c.notable) > 0 {
			cd.Notable = append([]Notable(nil), c.notable...)
			c.notable = c.notable[:0]
		}
		c.omitted = 0
		entries = append(entries, cd)
	}

	// Always send at least one digest: it is the leaf's heartbeat, and
	// it echoes AssignVersion so the aggregator's anti-entropy settles.
	var out [][]byte
	for first := true; first || len(entries) > 0; first = false {
		n := len(entries)
		if n > MaxDigestCohorts {
			n = MaxDigestCohorts
		}
		l.seq++
		d := Digest{
			Leaf:          l.opts.ID,
			Region:        l.opts.Region,
			Inc:           l.opts.Incarnation,
			Seq:           l.seq,
			SentAt:        now,
			Weight:        weight,
			AssignVersion: l.assignVersion,
			Cohorts:       entries[:n],
		}
		out = append(out, d.Marshal())
		entries = entries[n:]
	}
	return out
}

// HandleDatagramFrom ingests one received federation datagram with its
// source address — for a leaf, assignment-table pushes and digest acks
// (the source address attributes an ack to its aggregator).
// Non-federation payloads (wrong magic) are ignored silently so the
// leaf shares a socket with the heartbeat and gossip stacks; malformed
// federation traffic is counted.
func (l *Leaf) HandleDatagramFrom(from string, payload []byte) {
	if !IsFederation(payload) {
		return
	}
	msg, err := Decode(payload)
	if err != nil {
		l.badDatagrams.Add(1)
		return
	}
	switch {
	case msg.Assign != nil:
		l.applyAssignment(msg.Assign)
	case msg.Ack != nil:
		l.ingestAck(from, msg.Ack)
		// Digests, peer beats, and mirrors address aggregators: ignore.
	}
}

// HandleDatagram is HandleDatagramFrom without a source address, kept
// for single-aggregator embedders; acks then attribute by the sender id
// learned from earlier acks (or trivially, with one aggregator).
func (l *Leaf) HandleDatagram(payload []byte) {
	l.HandleDatagramFrom("", payload)
}

// ingestAck records a digest receipt: refresh the aggregator's
// reachability and note its leadership claim.
func (l *Leaf) ingestAck(from string, ack *Ack) {
	now := l.clk.Now()
	l.acksReceived.Add(1)
	l.mu.Lock()
	if as := l.aggLocked(from, ack.Agg); as != nil {
		as.id = ack.Agg
		as.leader = ack.Leader
		as.lastAckAt = now
		if as.unreachable {
			as.unreachable = false
			as.backoff = 0
			as.probeAt = 0
		}
	}
	l.mu.Unlock()
}

// aggLocked resolves an ack to its aggState: by source address first
// (configured or canonical resolved form), then by the aggregator id
// learned from earlier acks, then — when the id is new and exactly one
// configured aggregator has no learned id — by elimination, so
// attribution can bootstrap even when the socket's source address
// matches no configured form. A single configured aggregator always
// matches trivially.
func (l *Leaf) aggLocked(from, id string) *aggState {
	if from != "" {
		for _, as := range l.aggs {
			if as.addr == from || as.canonical == from {
				return as
			}
		}
	}
	if id != "" {
		var unlearned *aggState
		sole := true
		for _, as := range l.aggs {
			if as.id == id {
				return as
			}
			if as.id == "" {
				if unlearned != nil {
					sole = false
				}
				unlearned = as
			}
		}
		if unlearned != nil && sole {
			return unlearned
		}
	}
	if len(l.aggs) == 1 {
		return l.aggs[0]
	}
	return nil
}

// applyAssignment adopts a newer assignment table: cohorts assigned to
// this leaf are owned (fresh accumulator epoch for newly adopted ones —
// cumulative counters restart per ownership epoch, and the aggregator
// freezes the previous owner's totals), the rest are dropped. Version
// ratchets; stale or duplicate tables are ignored.
func (l *Leaf) applyAssignment(a *Assignment) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if a.Version <= l.assignVersion {
		l.assignsStale.Add(1)
		return
	}
	next := make(map[string]*cohortState, len(l.cohorts))
	for _, e := range a.Entries {
		if e.Owner != l.opts.ID {
			continue
		}
		if fanout.ValidateFilter(e.Cohort) != nil {
			continue
		}
		if c, ok := l.cohorts[e.Cohort]; ok {
			next[e.Cohort] = c // kept: epoch and counters continue
		} else {
			next[e.Cohort] = &cohortState{filter: e.Cohort}
		}
	}
	l.cohorts = next
	l.rebuildTrieLocked()
	l.assignVersion = a.Version
	l.assignsApplied.Add(1)
}

// Aggregators returns the configured aggregator addresses in order.
func (l *Leaf) Aggregators() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.aggs))
	for _, as := range l.aggs {
		out = append(out, as.addr)
	}
	return out
}

// AggReachable reports whether the aggregator at the given address is
// currently considered reachable (unknown addresses report false).
func (l *Leaf) AggReachable(addr string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, as := range l.aggs {
		if as.addr == addr {
			return !as.unreachable
		}
	}
	return false
}

// Counters returns the leaf's counter snapshot.
func (l *Leaf) Counters() LeafCounters {
	l.mu.Lock()
	owned := len(l.cohorts)
	av := l.assignVersion
	reachable := 0
	for _, as := range l.aggs {
		if !as.unreachable {
			reachable++
		}
	}
	l.mu.Unlock()
	return LeafCounters{
		Rollups:        l.rollups.Load(),
		DigestsSent:    l.digestsSent.Load(),
		SendErrors:     l.sendErrors.Load(),
		AssignsApplied: l.assignsApplied.Load(),
		AssignsStale:   l.assignsStale.Load(),
		BadDatagrams:   l.badDatagrams.Load(),
		NotableOmitted: l.notableOmitted.Load(),
		AcksReceived:   l.acksReceived.Load(),
		AggUnreachable: l.aggUnreachable.Load(),
		AggsReachable:  reachable,
		CohortsOwned:   owned,
		AssignVersion:  av,
		StreamsRolled:  l.streamsRolled.Load(),
		StreamsForeign: l.streamsForeign.Load(),
	}
}
