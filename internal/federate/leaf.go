package federate

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/fanout"
	"repro/internal/gossip"
	"repro/internal/registry"
)

// LeafOptions tunes a Leaf. Zero values take the documented defaults.
type LeafOptions struct {
	// ID identifies this leaf fleet-wide — a valid hierarchical stream
	// name (it becomes a monitored stream on the aggregator). Default:
	// the endpoint address.
	ID string
	// Region groups leaves for re-delegation locality: the aggregator
	// prefers same-region survivors when a leaf dies.
	Region string
	// Cohorts are the topic filters this leaf initially owns (e.g.
	// "eu/cluster-3/#"). The aggregator's assignment table supersedes
	// this seed once a higher-versioned table arrives.
	Cohorts []string
	// Incarnation is bumped by a restarted leaf so the aggregator's
	// detector starts its digest stream over (default 1).
	Incarnation uint64
	// Interval is the roll-up period (default 1 s). Every interval the
	// leaf sweeps its registry, folds bus transitions into per-cohort
	// counters, and sends one digest (or several, chunked) — the digest
	// doubles as the leaf's liveness heartbeat, so an idle leaf still
	// sends every interval.
	Interval clock.Duration
	// MaxNotable bounds the notable-transition list per cohort per
	// digest (default 16, capped at the wire bound). Overflow is counted
	// in the digest's Omitted field; consumers needing every transition
	// tap the leaf's /watch stream.
	MaxNotable int
	// WeightFn supplies the leaf's self-assessed accuracy weight in
	// [0,1] — wire gossip.(*Gossiper).Weight here so gossip verdict
	// quality feeds aggregator re-delegation preference. Nil reports 1.
	WeightFn func() float64
	// BusBuf is the capacity of the registry-bus subscription feeding
	// transition counters (default 4096; drop-oldest beyond that, with
	// drops visible in the registry's fanout accounting).
	BusBuf int
}

func (o *LeafOptions) normalize(ep gossip.Endpoint) {
	if o.ID == "" {
		o.ID = ep.Addr()
	}
	if o.Incarnation == 0 {
		o.Incarnation = 1
	}
	if o.Interval <= 0 {
		o.Interval = clock.Second
	}
	if o.MaxNotable <= 0 || o.MaxNotable > MaxNotablePerCohort {
		o.MaxNotable = 16
	}
	if o.BusBuf <= 0 {
		o.BusBuf = 4096
	}
}

// LeafCounters is the leaf's monotonic counter snapshot.
type LeafCounters struct {
	Rollups        uint64 `json:"rollups"`
	DigestsSent    uint64 `json:"digests_sent"`
	SendErrors     uint64 `json:"send_errors"`
	AssignsApplied uint64 `json:"assigns_applied"`
	AssignsStale   uint64 `json:"assigns_stale"`
	BadDatagrams   uint64 `json:"bad_datagrams"`
	NotableOmitted uint64 `json:"notable_omitted"`
	CohortsOwned   int    `json:"cohorts_owned"`   // gauge
	AssignVersion  uint64 `json:"assign_version"`  // gauge
	StreamsRolled  uint64 `json:"streams_rolled"`  // streams matched into cohorts, cumulative
	StreamsForeign uint64 `json:"streams_foreign"` // swept streams outside every owned cohort
}

// cohortState is one owned cohort's accumulator. Transition counters are
// cumulative for the cohort's current ownership epoch (they reset when
// the cohort is adopted, never between digests) so a lost digest cannot
// lose a transition; the notable ring resets every digest.
type cohortState struct {
	filter    string
	suspects  uint64
	trusts    uint64
	offlines  uint64
	evictions uint64
	notable   []Notable
	omitted   uint32
}

// Leaf is one monitor's membership in the federation tier: it owns a set
// of cohorts, rolls them up to the regional aggregator every Interval,
// and adopts re-delegated cohorts from the aggregator's assignment
// table. All methods are safe for concurrent use.
type Leaf struct {
	ep   gossip.Endpoint
	clk  clock.Clock
	reg  *registry.Registry
	agg  string
	opts LeafOptions

	mu sync.Mutex
	// cohorts maps filter → accumulator for every owned cohort.
	cohorts map[string]*cohortState
	// trie indexes the owned cohorts by filter so cohortOfLocked resolves
	// a stream in O(topic depth) instead of scanning every cohort —
	// drainBus and sweep call it once per stream, so at 1M streams the
	// linear scan is the difference between O(streams) and
	// O(streams × cohorts) per roll-up round. Rebuilt on assignment
	// changes, which are rare.
	trie *fanout.Trie[*cohortState]
	// matchBuf is cohortOfLocked's reusable match buffer (guarded by mu,
	// like the trie lookups themselves).
	matchBuf []*cohortState
	// assignVersion is the newest assignment-table version applied.
	assignVersion uint64
	seq           uint64

	sub *registry.Subscription

	rollups        atomic.Uint64
	digestsSent    atomic.Uint64
	sendErrors     atomic.Uint64
	assignsApplied atomic.Uint64
	assignsStale   atomic.Uint64
	badDatagrams   atomic.Uint64
	notableOmitted atomic.Uint64
	streamsRolled  atomic.Uint64
	streamsForeign atomic.Uint64

	started atomic.Bool
	stopped atomic.Bool
	stopc   chan struct{}
}

// NewLeaf builds a Leaf that rolls reg's streams up to the aggregator at
// address agg over ep. A nil clock defaults to the real clock. Call
// Start to begin roll-up rounds and feed received datagrams (assignment
// pushes) to HandleDatagram — the same shared-socket pattern as gossip.
func NewLeaf(ep gossip.Endpoint, clk clock.Clock, reg *registry.Registry, agg string, opts LeafOptions) (*Leaf, error) {
	if clk == nil {
		clk = clock.NewReal()
	}
	opts.normalize(ep)
	if err := fanout.ValidateName(opts.ID); err != nil {
		return nil, err
	}
	l := &Leaf{
		ep:      ep,
		clk:     clk,
		reg:     reg,
		agg:     agg,
		opts:    opts,
		cohorts: make(map[string]*cohortState, len(opts.Cohorts)),
		stopc:   make(chan struct{}),
		sub:     reg.Subscribe(opts.BusBuf),
	}
	for _, f := range opts.Cohorts {
		if err := fanout.ValidateFilter(f); err != nil {
			l.sub.Close()
			return nil, err
		}
		l.cohorts[f] = &cohortState{filter: f}
	}
	l.rebuildTrieLocked()
	return l, nil
}

// rebuildTrieLocked re-indexes l.cohorts into a fresh trie. Filters in
// l.cohorts have already been validated, so Subscribe cannot fail; a
// filter that somehow slipped through falls back to unmatched (counted
// as foreign), never a panic. Must hold mu (or be pre-publication).
func (l *Leaf) rebuildTrieLocked() {
	l.trie = fanout.New[*cohortState]()
	for f, c := range l.cohorts {
		_, _ = l.trie.Subscribe(f, c)
	}
}

// ID returns the leaf's federation identity.
func (l *Leaf) ID() string { return l.opts.ID }

// Options returns the effective configuration after defaulting.
func (l *Leaf) Options() LeafOptions { return l.opts }

// Cohorts returns the currently owned cohort filters, sorted.
func (l *Leaf) Cohorts() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.cohorts))
	for f := range l.cohorts {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// AssignVersion returns the newest applied assignment-table version.
func (l *Leaf) AssignVersion() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.assignVersion
}

// afterFuncer is satisfied by clock.Sim (same pattern as the registry
// wheel driver and the gossip round loop).
type afterFuncer interface {
	AfterFunc(clock.Duration, func(clock.Time))
}

// Start launches the roll-up loop. Idempotent.
func (l *Leaf) Start() {
	if !l.started.CompareAndSwap(false, true) {
		return
	}
	if af, ok := l.clk.(afterFuncer); ok {
		l.armSim(af)
		return
	}
	go l.runReal()
}

// Stop halts the roll-up loop and detaches from the registry bus.
func (l *Leaf) Stop() {
	if l.stopped.CompareAndSwap(false, true) {
		close(l.stopc)
		l.sub.Close()
	}
}

func (l *Leaf) armSim(af afterFuncer) {
	af.AfterFunc(l.opts.Interval, func(now clock.Time) {
		if l.stopped.Load() {
			return
		}
		l.Rollup(now)
		l.armSim(af)
	})
}

func (l *Leaf) runReal() {
	for {
		select {
		case <-l.stopc:
			return
		case now := <-l.clk.After(l.opts.Interval):
			l.Rollup(now)
		}
	}
}

// Rollup executes one roll-up round at instant now: fold queued bus
// transitions into cohort counters, sweep the registry for per-cohort
// state counts and QoS aggregates, and send the digest(s) to the
// aggregator. The digest count — and so the bandwidth — is O(cohorts),
// independent of how many streams the cohorts hold. Start drives it
// automatically; it is exported so tests step rounds by hand.
func (l *Leaf) Rollup(now clock.Time) {
	l.mu.Lock()
	l.drainBusLocked()
	rows := l.sweepLocked()
	digests := l.buildDigestsLocked(now, rows)
	l.mu.Unlock()

	l.rollups.Add(1)
	for _, d := range digests {
		if l.ep.Send(l.agg, d) == nil {
			l.digestsSent.Add(1)
		} else {
			l.sendErrors.Add(1)
		}
	}
}

// drainBusLocked folds transition events since the last round into the
// owning cohort's cumulative counters and notable ring. An event whose
// stream matches no owned cohort is ignored (it belongs to a cohort
// re-delegated away, or to a stream outside the federation's scope).
func (l *Leaf) drainBusLocked() {
	for {
		select {
		case ev, ok := <-l.sub.C():
			if !ok {
				return
			}
			c := l.cohortOfLocked(ev.Peer)
			if c == nil {
				continue
			}
			notable := false
			switch ev.Type {
			case registry.EventSuspect:
				c.suspects++
				notable = true
			case registry.EventTrust:
				c.trusts++
				notable = true
			case registry.EventOffline:
				c.offlines++
				notable = true
			case registry.EventEvicted:
				c.evictions++
			}
			if !notable {
				continue
			}
			if len(c.notable) >= l.opts.MaxNotable {
				c.omitted++
				l.notableOmitted.Add(1)
				continue
			}
			c.notable = append(c.notable, Notable{
				Peer: ev.Peer,
				Type: uint8(ev.Type),
				At:   ev.At,
				Inc:  ev.Incarnation,
			})
		default:
			return
		}
	}
}

// cohortOfLocked finds the owned cohort a stream belongs to via the
// cohort trie: O(topic depth), independent of how many cohorts the leaf
// owns. First match in sorted filter order wins when filters overlap —
// the same tie-break the old linear scan applied, so re-delegation
// attribution is stable across the index change. The match buffer is
// reused across calls; nothing allocates on the per-stream path.
func (l *Leaf) cohortOfLocked(peer string) *cohortState {
	l.matchBuf = l.trie.MatchAppend(peer, l.matchBuf[:0])
	var best *cohortState
	for _, c := range l.matchBuf {
		if best == nil || c.filter < best.filter {
			best = c
		}
	}
	return best
}

// cohortRow is one sweep's per-cohort aggregate (state counts + QoS).
type cohortRow struct {
	streams, trusted, suspected, offline uint32
	tdSum, mrSum, qapMin                 float64
	tuned                                uint32
}

// sweepLocked walks every registry stream once and buckets it into its
// owning cohort: O(streams) CPU per round, O(cohorts) output.
func (l *Leaf) sweepLocked() map[string]*cohortRow {
	rows := make(map[string]*cohortRow, len(l.cohorts))
	for f := range l.cohorts {
		rows[f] = &cohortRow{qapMin: 1}
	}
	l.reg.ForEachStream(func(v registry.StreamView) {
		c := l.cohortOfLocked(v.Peer)
		if c == nil {
			l.streamsForeign.Add(1)
			return
		}
		l.streamsRolled.Add(1)
		row := rows[c.filter]
		row.streams++
		switch v.Phase {
		case registry.StreamTrusted:
			row.trusted++
		case registry.StreamSuspected:
			row.suspected++
		case registry.StreamOffline:
			row.offline++
		}
		if v.Tuned {
			row.tuned++
			row.tdSum += v.TD.Seconds()
			row.mrSum += v.MR
			if v.QAP < row.qapMin {
				row.qapMin = v.QAP
			}
		}
	})
	return rows
}

// buildDigestsLocked encodes the round's digests, chunked to the wire
// bound, resetting each cohort's notable ring. Sorted cohort order keeps
// digests byte-identical across runs for the same state (determinism
// under clock.Sim).
func (l *Leaf) buildDigestsLocked(now clock.Time, rows map[string]*cohortRow) [][]byte {
	filters := make([]string, 0, len(l.cohorts))
	for f := range l.cohorts {
		filters = append(filters, f)
	}
	sort.Strings(filters)

	weight := 1.0
	if l.opts.WeightFn != nil {
		weight = l.opts.WeightFn()
	}

	entries := make([]CohortDigest, 0, len(filters))
	for _, f := range filters {
		c := l.cohorts[f]
		row := rows[f]
		cd := CohortDigest{
			Filter:    f,
			Suspects:  c.suspects,
			Trusts:    c.trusts,
			Offlines:  c.offlines,
			Evictions: c.evictions,
			QAPMin:    1,
			Omitted:   c.omitted,
		}
		if row != nil {
			cd.Streams, cd.Trusted, cd.Suspected, cd.Offline = row.streams, row.trusted, row.suspected, row.offline
			cd.TDSum, cd.MRSum, cd.QAPMin, cd.Tuned = row.tdSum, row.mrSum, row.qapMin, row.tuned
		}
		if len(c.notable) > 0 {
			cd.Notable = append([]Notable(nil), c.notable...)
			c.notable = c.notable[:0]
		}
		c.omitted = 0
		entries = append(entries, cd)
	}

	// Always send at least one digest: it is the leaf's heartbeat, and
	// it echoes AssignVersion so the aggregator's anti-entropy settles.
	var out [][]byte
	for first := true; first || len(entries) > 0; first = false {
		n := len(entries)
		if n > MaxDigestCohorts {
			n = MaxDigestCohorts
		}
		l.seq++
		d := Digest{
			Leaf:          l.opts.ID,
			Region:        l.opts.Region,
			Inc:           l.opts.Incarnation,
			Seq:           l.seq,
			SentAt:        now,
			Weight:        weight,
			AssignVersion: l.assignVersion,
			Cohorts:       entries[:n],
		}
		out = append(out, d.Marshal())
		entries = entries[n:]
	}
	return out
}

// HandleDatagram ingests one received federation datagram — for a leaf,
// assignment-table pushes. Non-federation payloads (wrong magic) are
// ignored silently so the leaf shares a socket with the heartbeat and
// gossip stacks; malformed federation traffic is counted.
func (l *Leaf) HandleDatagram(payload []byte) {
	if !IsFederation(payload) {
		return
	}
	_, a, err := Unmarshal(payload)
	if err != nil {
		l.badDatagrams.Add(1)
		return
	}
	if a == nil {
		return // a digest: not addressed to leaves
	}
	l.applyAssignment(a)
}

// applyAssignment adopts a newer assignment table: cohorts assigned to
// this leaf are owned (fresh accumulator epoch for newly adopted ones —
// cumulative counters restart per ownership epoch, and the aggregator
// freezes the previous owner's totals), the rest are dropped. Version
// ratchets; stale or duplicate tables are ignored.
func (l *Leaf) applyAssignment(a *Assignment) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if a.Version <= l.assignVersion {
		l.assignsStale.Add(1)
		return
	}
	next := make(map[string]*cohortState, len(l.cohorts))
	for _, e := range a.Entries {
		if e.Owner != l.opts.ID {
			continue
		}
		if fanout.ValidateFilter(e.Cohort) != nil {
			continue
		}
		if c, ok := l.cohorts[e.Cohort]; ok {
			next[e.Cohort] = c // kept: epoch and counters continue
		} else {
			next[e.Cohort] = &cohortState{filter: e.Cohort}
		}
	}
	l.cohorts = next
	l.rebuildTrieLocked()
	l.assignVersion = a.Version
	l.assignsApplied.Add(1)
}

// Counters returns the leaf's counter snapshot.
func (l *Leaf) Counters() LeafCounters {
	l.mu.Lock()
	owned := len(l.cohorts)
	av := l.assignVersion
	l.mu.Unlock()
	return LeafCounters{
		Rollups:        l.rollups.Load(),
		DigestsSent:    l.digestsSent.Load(),
		SendErrors:     l.sendErrors.Load(),
		AssignsApplied: l.assignsApplied.Load(),
		AssignsStale:   l.assignsStale.Load(),
		BadDatagrams:   l.badDatagrams.Load(),
		NotableOmitted: l.notableOmitted.Load(),
		CohortsOwned:   owned,
		AssignVersion:  av,
		StreamsRolled:  l.streamsRolled.Load(),
		StreamsForeign: l.streamsForeign.Load(),
	}
}
