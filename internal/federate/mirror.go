package federate

import (
	"sort"

	"repro/internal/clock"
)

// Anti-entropy state mirroring between HA peers. Every round each
// aggregator ships its whole merged fleet view — leaf records, the
// per-cohort epoch counters, the versioned assignment table (implied by
// cohort owners), and the re-delegation history — to its peers, chunked
// to the wire bounds. The merge is CRDT-shaped: assignment ownership
// ratchets on AssignVersion (higher version wins; an equal-version
// divergence — both sides of a healed partition bumped independently —
// resolves to the lexicographically lower aggregator id, and the winner
// re-issues at a fresh version so leaves that ratcheted onto the loser's
// table converge too), cumulative transition counters merge monotonically
// per epoch, and history unions by version. Order does not matter and
// chunks apply independently, so datagram loss only delays convergence
// until the next round — the standby's view stays within one round of
// the active's.

// buildMirrorChunksLocked encodes this aggregator's fleet view as mirror
// datagrams, chunked against both the record-count caps and MirrorMTU's
// byte budget — counts alone cannot keep a chunk inside one UDP
// datagram once names grow, and an oversized datagram would be silently
// dropped by the transport where netsim drills never see it. Records
// fill chunks greedily (leaves, then history, then cohorts); merging is
// per-record and order-independent, so the layout is free to vary. At
// least one chunk always goes out: an empty chunk still carries the
// assignment version and feeds the receiver's joining gate.
func (a *Aggregator) buildMirrorChunksLocked(now clock.Time) [][]byte {
	leafIDs := make([]string, 0, len(a.leaves))
	for id := range a.leaves {
		leafIDs = append(leafIDs, id)
	}
	sort.Strings(leafIDs)
	leaves := make([]MirrorLeaf, 0, len(leafIDs))
	for _, id := range leafIDs {
		ls := a.leaves[id]
		leaves = append(leaves, MirrorLeaf{
			ID: ls.id, Addr: ls.addr, Region: ls.region, Weight: ls.weight,
			Inc: ls.inc, LastSeq: ls.lastSeq, LastAt: ls.lastAt,
			EchoedAV: ls.echoedAV, Live: uint8(ls.live),
		})
	}

	filters := make([]string, 0, len(a.cohorts))
	for f := range a.cohorts {
		filters = append(filters, f)
	}
	sort.Strings(filters)
	cohorts := make([]MirrorCohort, 0, len(filters))
	for _, f := range filters {
		c := a.cohorts[f]
		last := c.last
		last.Notable = nil // notables travel in digests, not mirrors
		cohorts = append(cohorts, MirrorCohort{
			Filter: c.filter, Owner: c.owner, Orphaned: c.orphaned,
			EpochLeaf: c.epochLeaf, EpochInc: c.epochInc,
			CarriedSuspects: c.carriedSuspects, CarriedTrusts: c.carriedTrusts,
			CarriedOfflines: c.carriedOfflines, CarriedEvictions: c.carriedEvictions,
			Last: last, UpdatedAt: c.updatedAt,
		})
	}

	history := a.history
	if len(history) > MaxMirrorHistory {
		history = history[len(history)-MaxMirrorHistory:]
	}

	budget := MirrorMTU - mirrorHeaderSize(a.opts.ID)
	var out [][]byte
	cur := Mirror{Agg: a.opts.ID, Inc: a.opts.Incarnation, SentAt: now, AssignVersion: a.assignVersion}
	curBytes := 0
	flush := func() {
		a.peerSeq++
		cur.Seq = a.peerSeq
		out = append(out, cur.Marshal())
		cur = Mirror{Agg: a.opts.ID, Inc: a.opts.Incarnation, SentAt: now, AssignVersion: a.assignVersion}
		curBytes = 0
	}
	for i := range leaves {
		sz := leaves[i].wireSize()
		if len(cur.Leaves) >= MaxMirrorLeaves || (curBytes+sz > budget && curBytes > 0) {
			flush()
		}
		cur.Leaves = append(cur.Leaves, leaves[i])
		curBytes += sz
	}
	for _, h := range history {
		sz := h.wireSize()
		if sz > budget {
			// A single record wider than a datagram (a dead leaf owned
			// very many cohorts with long names): truncate its Moved
			// list on the wire, keeping the head and accounting for the
			// cut — the local record and the cohort table stay whole.
			h.Moved = append([]AssignEntry(nil), h.Moved...)
			for sz > budget && len(h.Moved) > 0 {
				e := h.Moved[len(h.Moved)-1]
				sz -= 4 + len(e.Cohort) + len(e.Owner)
				h.Moved = h.Moved[:len(h.Moved)-1]
				h.MovedOmitted++
			}
		}
		if len(cur.History) >= MaxMirrorHistory || (curBytes+sz > budget && curBytes > 0) {
			flush()
		}
		cur.History = append(cur.History, h)
		curBytes += sz
	}
	for i := range cohorts {
		sz := cohorts[i].wireSize()
		if len(cur.Cohorts) >= MaxMirrorCohorts || (curBytes+sz > budget && curBytes > 0) {
			flush()
		}
		cur.Cohorts = append(cur.Cohorts, cohorts[i])
		curBytes += sz
	}
	if curBytes > 0 || len(out) == 0 {
		flush()
	}
	return out
}

// ingestMirror merges one received mirror chunk. Merging is idempotent
// and monotone; see the package comment above for the resolution rules.
func (a *Aggregator) ingestMirror(from string, m *Mirror) {
	if m.Agg == a.opts.ID {
		return // own mirror looped back
	}
	now := a.clk.Now()
	a.mirrorsReceived.Add(1)

	a.mu.Lock()
	if ps := a.peers[m.Agg]; ps != nil {
		ps.lastMirrorAt = now
		ps.mirrorSeq = m.Seq
	}
	a.lastMirrorRecv.Store(int64(now))

	adoptOwnership := false
	reissue := false
	switch {
	case m.AssignVersion > a.assignVersion:
		// Higher version wins outright: adopt the mirrored table. If this
		// instance was leading at a lower version (split brain), its
		// divergent assignments are discarded here — it lost.
		adoptOwnership = true
		a.assignVersion = m.AssignVersion
		a.assignVersionFrom = m.Agg
	case m.AssignVersion == a.assignVersion && m.AssignVersion != 0:
		if a.assignVersionFrom == m.Agg {
			// Continuation chunk of a table we already adopted from this
			// peer at this version.
			adoptOwnership = true
		} else if a.mirrorOwnerConflictLocked(m) {
			// Both sides bumped to the same version independently during
			// a partition. Deterministic tiebreak: lower id wins.
			a.mirrorConflicts.Add(1)
			if m.Agg < a.opts.ID {
				adoptOwnership = true
				a.assignVersionFrom = m.Agg
			} else if a.leaderFlag.Load() {
				// We win — but leaves may have ratcheted onto the loser's
				// equal-version table and would ignore ours. Re-issue at a
				// fresh version so anti-entropy converges everyone.
				reissue = true
			}
		}
	}

	for i := range m.Leaves {
		a.mergeMirrorLeafLocked(&m.Leaves[i], now)
	}
	for i := range m.Cohorts {
		a.mergeMirrorCohortLocked(&m.Cohorts[i], adoptOwnership)
	}
	a.mergeHistoryLocked(m.History)
	if reissue {
		a.assignVersion++
		a.assignVersionFrom = ""
	}
	if a.joining.Load() {
		if ps := a.peers[m.Agg]; ps != nil && ps.ready {
			// Caught up from an established peer: eligible for election
			// (and, as lowest id, for deterministic failback) from here on.
			a.joining.Store(false)
		}
	}
	a.mu.Unlock()
}

// mirrorOwnerConflictLocked reports whether any mirrored cohort names a
// different owner than the local table.
func (a *Aggregator) mirrorOwnerConflictLocked(m *Mirror) bool {
	for i := range m.Cohorts {
		if c := a.cohorts[m.Cohorts[i].Filter]; c != nil && c.owner != m.Cohorts[i].Owner {
			return true
		}
	}
	return false
}

// mergeMirrorLeafLocked folds one mirrored leaf record in. The local
// liveness registry stays authoritative for live state once it has its
// own detector stream for the leaf (leaves dual-send, so it usually
// does); the mirrored liveness is adopted only while this aggregator has
// never heard the leaf first-hand — the restart catch-up case.
func (a *Aggregator) mergeMirrorLeafLocked(ml *MirrorLeaf, now clock.Time) {
	ls := a.leaves[ml.ID]
	if ls == nil {
		a.leaves[ml.ID] = &leafState{
			id: ml.ID, addr: ml.Addr, region: ml.Region, weight: ml.Weight,
			inc: ml.Inc, lastSeq: ml.LastSeq, lastAt: ml.LastAt,
			echoedAV: ml.EchoedAV, live: leafLiveness(ml.Live),
		}
		return
	}
	if ml.Inc > ls.inc || (ml.Inc == ls.inc && ml.LastSeq > ls.lastSeq) {
		ls.addr, ls.region, ls.weight = ml.Addr, ml.Region, ml.Weight
		ls.inc, ls.lastSeq = ml.Inc, ml.LastSeq
		if ml.LastAt > ls.lastAt {
			ls.lastAt = ml.LastAt
		}
	}
	if ml.EchoedAV > ls.echoedAV {
		ls.echoedAV = ml.EchoedAV
	}
	if _, heard := a.liveness.StatusOf(ml.ID, now); !heard {
		ls.live = leafLiveness(ml.Live)
	}
}

// mergeMirrorCohortLocked folds one mirrored cohort in. Ownership is
// adopted only on the version-ratchet paths resolved by ingestMirror;
// the cumulative transition counters always merge monotonically —
// per-field maxima within a matching epoch, and on an epoch change the
// fresher representation wins with the carried totals raised so the
// grand totals never regress (the zero-lost-transitions invariant).
func (a *Aggregator) mergeMirrorCohortLocked(mc *MirrorCohort, adoptOwnership bool) {
	c := a.cohorts[mc.Filter]
	if c == nil {
		// Unknown cohort: adopt wholesale — the restart catch-up path.
		a.cohorts[mc.Filter] = &cohortMerge{
			filter: mc.Filter, owner: mc.Owner, orphaned: mc.Orphaned,
			epochLeaf: mc.EpochLeaf, epochInc: mc.EpochInc,
			last:            mc.Last,
			carriedSuspects: mc.CarriedSuspects, carriedTrusts: mc.CarriedTrusts,
			carriedOfflines: mc.CarriedOfflines, carriedEvictions: mc.CarriedEvictions,
			updatedAt: mc.UpdatedAt,
		}
		return
	}
	if adoptOwnership {
		c.owner, c.orphaned = mc.Owner, mc.Orphaned
	}
	if c.epochLeaf == mc.EpochLeaf && c.epochInc == mc.EpochInc {
		// Same epoch on both sides: counters are cumulative within the
		// epoch, so per-field max is exact. State counts and QoS come from
		// whichever side saw the newer digest.
		if mc.UpdatedAt > c.updatedAt {
			prev := c.last
			c.last = mc.Last
			maxTransitions(&c.last, &prev)
			c.updatedAt = mc.UpdatedAt
		} else {
			maxTransitions(&c.last, &mc.Last)
		}
		maxU64(&c.carriedSuspects, mc.CarriedSuspects)
		maxU64(&c.carriedTrusts, mc.CarriedTrusts)
		maxU64(&c.carriedOfflines, mc.CarriedOfflines)
		maxU64(&c.carriedEvictions, mc.CarriedEvictions)
		return
	}
	if mc.UpdatedAt > c.updatedAt {
		// The peer is on a newer epoch (it saw an ownership handoff or
		// leaf restart this side has not): adopt its representation, but
		// floor the carried totals so our grand totals cannot shrink.
		s, t, o, e := c.totals()
		c.epochLeaf, c.epochInc = mc.EpochLeaf, mc.EpochInc
		c.last = mc.Last
		c.carriedSuspects, c.carriedTrusts = mc.CarriedSuspects, mc.CarriedTrusts
		c.carriedOfflines, c.carriedEvictions = mc.CarriedOfflines, mc.CarriedEvictions
		c.updatedAt = mc.UpdatedAt
		ns, nt, no, ne := c.totals()
		if ns < s {
			c.carriedSuspects += s - ns
		}
		if nt < t {
			c.carriedTrusts += t - nt
		}
		if no < o {
			c.carriedOfflines += o - no
		}
		if ne < e {
			c.carriedEvictions += e - ne
		}
	}
	// Else: the local epoch is fresher — the peer's copy is behind and
	// everything it counted is already included here; keep local state.
}

// maxTransitions raises dst's cumulative transition counters to at least
// src's (both rows from the same counting epoch).
func maxTransitions(dst, src *CohortDigest) {
	maxU64(&dst.Suspects, src.Suspects)
	maxU64(&dst.Trusts, src.Trusts)
	maxU64(&dst.Offlines, src.Offlines)
	maxU64(&dst.Evictions, src.Evictions)
}

func maxU64(dst *uint64, v uint64) {
	if v > *dst {
		*dst = v
	}
}

// mergeHistoryLocked unions mirrored re-delegation records in by
// version (first record seen for a version wins), keeping the ring
// sorted and capped.
func (a *Aggregator) mergeHistoryLocked(recs []RedelegationRecord) {
	if len(recs) == 0 {
		return
	}
	have := make(map[uint64]bool, len(a.history))
	for _, h := range a.history {
		have[h.Version] = true
	}
	added := false
	for _, h := range recs {
		if !have[h.Version] {
			a.history = append(a.history, h)
			have[h.Version] = true
			added = true
		}
	}
	if !added {
		return
	}
	sort.Slice(a.history, func(i, j int) bool { return a.history[i].Version < a.history[j].Version })
	if len(a.history) > a.opts.HistoryCap {
		a.history = a.history[len(a.history)-a.opts.HistoryCap:]
	}
}
