package federate

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/clock"
	"repro/internal/detector"
	"repro/internal/heartbeat"
	"repro/internal/registry"
	"repro/internal/transport"
)

// TestRollupVsChurnRace exercises digest roll-up concurrently with
// cohort churn, stream ingest, and aggregator merging — run under -race
// in CI (the federation-drill job). The leaf re-learns its cohort set
// from a fresh assignment table every few iterations while Rollup sweeps
// the registry and the aggregator ingests whatever arrives.
func TestRollupVsChurnRace(t *testing.T) {
	hub := transport.NewHub(0, 0, 1)
	leafEP := hub.Endpoint("leaf-1")
	aggEP := hub.Endpoint("agg-0")
	defer leafEP.Close()
	defer aggEP.Close()

	reg := registry.New(nil,
		func(string) detector.Detector { return detector.NewChen(8, clock.Millisecond, clock.Millisecond) },
		registry.Options{EvictAfter: -1})
	cohorts := make([]string, 8)
	for i := range cohorts {
		cohorts[i] = fmt.Sprintf("r/c%d/#", i)
	}
	leaf, err := NewLeaf(leafEP, nil, reg, "agg-0", LeafOptions{
		ID: "leaf-1", Region: "r", Cohorts: cohorts, Interval: clock.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(aggEP, nil, AggregatorOptions{ID: "agg-0", DigestInterval: clock.Millisecond})

	const iters = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Ingest: streams across every cohort heartbeat continuously.
	wg.Add(1)
	go func() {
		defer wg.Done()
		clk := clock.NewReal()
		seq := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			seq++
			now := clk.Now()
			for i := 0; i < len(cohorts); i++ {
				reg.Observe(heartbeat.Arrival{
					From: fmt.Sprintf("r/c%d/s%d", i, seq%17), Seq: seq, Send: now, Recv: now, Inc: 1,
				})
			}
		}
	}()

	// Churn: alternating assignment tables re-shape the cohort set.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := uint64(1); v <= iters; v++ {
			var entries []AssignEntry
			for i, f := range cohorts {
				owner := "leaf-1"
				if (int(v)+i)%3 == 0 {
					owner = "leaf-2" // a third of the cohorts move away and back
				}
				entries = append(entries, AssignEntry{Cohort: f, Owner: owner})
			}
			leaf.HandleDatagram(Assignment{Agg: "agg-0", Version: v, Entries: entries}.Marshal())
		}
	}()

	// Aggregator drains the hub and merges concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				// Drain what's still queued before exiting: on a
				// single-CPU box every digest can be sitting in the
				// hub buffer when stop closes, and the select above
				// may take the stop arm first.
				for {
					select {
					case in, ok := <-aggEP.Recv():
						if !ok {
							return
						}
						agg.HandleDatagram(in.From, in.Payload)
					default:
						return
					}
				}
			case in, ok := <-aggEP.Recv():
				if !ok {
					return
				}
				agg.HandleDatagram(in.From, in.Payload)
			}
		}
	}()

	// Roll-up: the racing sweep itself.
	for i := 0; i < iters; i++ {
		leaf.Rollup(clock.Time(i) * clock.Time(clock.Millisecond))
	}
	close(stop)
	wg.Wait()

	lc := leaf.Counters()
	if lc.Rollups != iters {
		t.Fatalf("rollups = %d, want %d", lc.Rollups, iters)
	}
	if lc.AssignsApplied == 0 {
		t.Fatal("no assignment tables applied under churn")
	}
	if ac := agg.Counters(); ac.DigestsReceived == 0 {
		t.Fatal("aggregator received no digests")
	}
}
