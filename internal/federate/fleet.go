package federate

import (
	"encoding/json"
	"net/http"
	"sort"

	"repro/internal/clock"
	"repro/internal/registry"
)

// /fleet: the aggregator's merged fleet-wide view as JSON — leaves with
// liveness and echoed table versions, per-cohort merged state counts,
// cumulative transition totals, QoS aggregates, recent notable
// transitions, and the re-delegation history. This is the federation
// counterpart of a single monitor's /status: O(cohorts) rows for a
// fleet whose stream count is unbounded.

// fleetLeafJSON is one leaf row of /fleet.
type fleetLeafJSON struct {
	Leaf          string     `json:"leaf"`
	Region        string     `json:"region,omitempty"`
	Addr          string     `json:"addr,omitempty"`
	State         string     `json:"state"`
	Weight        float64    `json:"weight"`
	Incarnation   uint64     `json:"incarnation"`
	LastSeq       uint64     `json:"last_seq"`
	LastDigestNs  clock.Time `json:"last_digest_ns"`
	AssignVersion uint64     `json:"assign_version"`
	Cohorts       int        `json:"cohorts"`
}

// fleetNotableJSON is one recent notable transition.
type fleetNotableJSON struct {
	Peer        string     `json:"peer"`
	Event       string     `json:"event"`
	At          clock.Time `json:"at_ns"`
	Incarnation uint64     `json:"incarnation,omitempty"`
	Leaf        string     `json:"leaf"`
}

// fleetCohortJSON is one cohort row of /fleet.
type fleetCohortJSON struct {
	Cohort    string `json:"cohort"`
	Owner     string `json:"owner"`
	Orphaned  bool   `json:"orphaned,omitempty"`
	Streams   uint32 `json:"streams"`
	Trusted   uint32 `json:"trusted"`
	Suspected uint32 `json:"suspected"`
	Offline   uint32 `json:"offline"`
	// Cumulative transition totals across every ownership epoch.
	Suspects  uint64 `json:"suspects_total"`
	Trusts    uint64 `json:"trusts_total"`
	Offlines  uint64 `json:"offlines_total"`
	Evictions uint64 `json:"evictions_total"`
	// QoS aggregates from the current owner's last digest.
	TDAvgSeconds float64            `json:"td_avg_seconds,omitempty"`
	MRAvg        float64            `json:"mr_avg,omitempty"`
	QAPMin       float64            `json:"qap_min"`
	Tuned        uint32             `json:"tuned_streams"`
	UpdatedNs    clock.Time         `json:"updated_ns"`
	Notable      []fleetNotableJSON `json:"notable,omitempty"`
}

// fleetJSON is the /fleet document.
type fleetJSON struct {
	Aggregator    string               `json:"aggregator"`
	Role          string               `json:"role"`
	LeaderID      string               `json:"leader_id,omitempty"`
	NowNs         clock.Time           `json:"now_ns"`
	AssignVersion uint64               `json:"assign_version"`
	Counters      AggCounters          `json:"counters"`
	Peers         []PeerInfo           `json:"peers,omitempty"`
	Leaves        []fleetLeafJSON      `json:"leaves"`
	Cohorts       []fleetCohortJSON    `json:"cohorts"`
	History       []RedelegationRecord `json:"redelegations,omitempty"`
}

// Fleet builds the merged fleet view at this instant.
func (a *Aggregator) Fleet() fleetJSON {
	now := a.clk.Now()
	counters := a.Counters()

	a.mu.Lock()
	cohortsByOwner := make(map[string]int, len(a.leaves))
	for _, c := range a.cohorts {
		cohortsByOwner[c.owner]++
	}
	leaves := make([]fleetLeafJSON, 0, len(a.leaves))
	for id, ls := range a.leaves {
		leaves = append(leaves, fleetLeafJSON{
			Leaf:          id,
			Region:        ls.region,
			Addr:          ls.addr,
			State:         ls.live.String(),
			Weight:        ls.weight,
			Incarnation:   ls.inc,
			LastSeq:       ls.lastSeq,
			LastDigestNs:  ls.lastAt,
			AssignVersion: ls.echoedAV,
			Cohorts:       cohortsByOwner[id],
		})
	}
	cohorts := make([]fleetCohortJSON, 0, len(a.cohorts))
	for f, c := range a.cohorts {
		susp, tr, off, ev := c.totals()
		row := fleetCohortJSON{
			Cohort:    f,
			Owner:     c.owner,
			Orphaned:  c.orphaned,
			Streams:   c.last.Streams,
			Trusted:   c.last.Trusted,
			Suspected: c.last.Suspected,
			Offline:   c.last.Offline,
			Suspects:  susp,
			Trusts:    tr,
			Offlines:  off,
			Evictions: ev,
			QAPMin:    c.last.QAPMin,
			Tuned:     c.last.Tuned,
			UpdatedNs: c.updatedAt,
		}
		if c.last.Tuned > 0 {
			row.TDAvgSeconds = c.last.TDSum / float64(c.last.Tuned)
			row.MRAvg = c.last.MRSum / float64(c.last.Tuned)
		}
		for _, n := range c.notable {
			row.Notable = append(row.Notable, fleetNotableJSON{
				Peer:        n.Peer,
				Event:       eventName(n.Type),
				At:          n.At,
				Incarnation: n.Inc,
				Leaf:        n.leaf,
			})
		}
		cohorts = append(cohorts, row)
	}
	history := append([]RedelegationRecord(nil), a.history...)
	av := a.assignVersion
	a.mu.Unlock()

	sort.Slice(leaves, func(i, j int) bool { return leaves[i].Leaf < leaves[j].Leaf })
	sort.Slice(cohorts, func(i, j int) bool { return cohorts[i].Cohort < cohorts[j].Cohort })
	return fleetJSON{
		Aggregator:    a.opts.ID,
		Role:          a.Role(),
		LeaderID:      a.LeaderID(),
		NowNs:         now,
		AssignVersion: av,
		Counters:      counters,
		Peers:         a.Peers(),
		Leaves:        leaves,
		Cohorts:       cohorts,
		History:       history,
	}
}

// eventName renders a wire notable type via the registry's enum; unknown
// values (version skew) degrade to the enum's numeric fallback.
func eventName(t uint8) string {
	return registry.EventType(t).String()
}

// Handler returns the aggregator's HTTP surface: GET /fleet (the merged
// view). Embedders mount it beside the liveness registry's Handler so
// one mux serves /fleet, /status, /watch, and /metrics.
func (a *Aggregator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(a.Fleet())
	})
	return mux
}
