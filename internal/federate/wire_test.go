package federate

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/clock"
)

// randDigest builds a random but wire-legal digest (no NaNs, bounded
// names and counts) for the round-trip property test.
func randDigest(rng *rand.Rand) Digest {
	d := Digest{
		Leaf:          randName(rng),
		Region:        randRegion(rng),
		Inc:           rng.Uint64(),
		Seq:           rng.Uint64(),
		SentAt:        clock.Time(rng.Int63()),
		Weight:        rng.Float64(),
		AssignVersion: rng.Uint64(),
	}
	for i, n := 0, rng.Intn(5); i < n; i++ {
		c := CohortDigest{
			Filter:    randName(rng) + "/#",
			Streams:   rng.Uint32(),
			Trusted:   rng.Uint32(),
			Suspected: rng.Uint32(),
			Offline:   rng.Uint32(),
			Suspects:  rng.Uint64(),
			Trusts:    rng.Uint64(),
			Offlines:  rng.Uint64(),
			Evictions: rng.Uint64(),
			TDSum:     rng.Float64() * 100,
			MRSum:     rng.Float64(),
			QAPMin:    rng.Float64(),
			Tuned:     rng.Uint32(),
			Omitted:   rng.Uint32(),
		}
		for j, m := 0, rng.Intn(4); j < m; j++ {
			c.Notable = append(c.Notable, Notable{
				Peer: randName(rng),
				Type: uint8(rng.Intn(9)),
				At:   clock.Time(rng.Int63()),
				Inc:  rng.Uint64(),
			})
		}
		d.Cohorts = append(d.Cohorts, c)
	}
	return d
}

func randName(rng *rand.Rand) string {
	segs := make([]string, 1+rng.Intn(3))
	for i := range segs {
		segs[i] = string(rune('a' + rng.Intn(26)))
	}
	return strings.Join(segs, "/")
}

func randRegion(rng *rand.Rand) string {
	return []string{"", "eu", "us", "apac"}[rng.Intn(4)]
}

func randAssignment(rng *rand.Rand) Assignment {
	a := Assignment{Agg: randName(rng), Version: rng.Uint64()}
	for i, n := 0, rng.Intn(8); i < n; i++ {
		a.Entries = append(a.Entries, AssignEntry{Cohort: randName(rng) + "/#", Owner: randName(rng)})
	}
	return a
}

// TestDigestRoundTrip is the codec property test: Marshal∘Unmarshal is
// the identity for legal digests and assignments, and re-encoding the
// decoded value reproduces the exact bytes (canonical encoding).
func TestDigestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		d := randDigest(rng)
		b := d.Marshal()
		got, aMsg, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("iter %d: unmarshal: %v", i, err)
		}
		if aMsg != nil {
			t.Fatalf("iter %d: digest decoded as assignment", i)
		}
		if !reflect.DeepEqual(*got, d) {
			t.Fatalf("iter %d: lossy round trip:\n have %+v\n want %+v", i, *got, d)
		}
		if !bytes.Equal(got.Marshal(), b) {
			t.Fatalf("iter %d: re-encode is not canonical", i)
		}
	}
	for i := 0; i < 500; i++ {
		a := randAssignment(rng)
		b := a.Marshal()
		dMsg, got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("iter %d: unmarshal: %v", i, err)
		}
		if dMsg != nil {
			t.Fatalf("iter %d: assignment decoded as digest", i)
		}
		if !reflect.DeepEqual(*got, a) {
			t.Fatalf("iter %d: lossy round trip:\n have %+v\n want %+v", i, *got, a)
		}
		if !bytes.Equal(got.Marshal(), b) {
			t.Fatalf("iter %d: re-encode is not canonical", i)
		}
	}
}

// TestUnmarshalRejects covers the explicit failure modes: wrong magic,
// version skew, bad kind, truncation at every length, trailing bytes,
// and over-bound counts.
func TestUnmarshalRejects(t *testing.T) {
	d := Digest{Leaf: "l1", Region: "eu", Inc: 1, Seq: 9, SentAt: 1000, Weight: 0.5,
		Cohorts: []CohortDigest{{Filter: "eu/#", Streams: 3, QAPMin: 1,
			Notable: []Notable{{Peer: "eu/a", Type: 1, At: 7, Inc: 2}}}}}
	good := d.Marshal()

	if _, _, err := Unmarshal(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, _, err := Unmarshal(bad); err == nil {
		t.Fatal("wrong magic accepted")
	}
	bad = append([]byte(nil), good...)
	bad[2] = 99 // future version
	if _, _, err := Unmarshal(bad); err == nil {
		t.Fatal("version skew accepted")
	}
	bad = append([]byte(nil), good...)
	bad[3] = 77 // unknown kind
	if _, _, err := Unmarshal(bad); err == nil {
		t.Fatal("unknown kind accepted")
	}
	for n := 0; n < len(good); n++ {
		if _, _, err := Unmarshal(good[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	if _, _, err := Unmarshal(append(append([]byte(nil), good...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestMarshalBoundsPanic pins the programming-error contract: encoding
// over-bound values panics rather than emitting an illegal datagram.
func TestMarshalBoundsPanic(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	long := strings.Repeat("x", maxNameLen+1)
	mustPanic("long leaf", func() { Digest{Leaf: long}.Marshal() })
	mustPanic("too many cohorts", func() {
		Digest{Leaf: "l", Cohorts: make([]CohortDigest, MaxDigestCohorts+1)}.Marshal()
	})
	mustPanic("too many notables", func() {
		Digest{Leaf: "l", Cohorts: []CohortDigest{{Filter: "a/#",
			Notable: make([]Notable, MaxNotablePerCohort+1)}}}.Marshal()
	})
	mustPanic("too many entries", func() {
		Assignment{Agg: "a", Entries: make([]AssignEntry, MaxAssignEntries+1)}.Marshal()
	})
}

// TestDigestBytesGrowWithCohortsNotStreams pins the bandwidth contract:
// the encoded digest size is a function of the cohort count, independent
// of how many streams each cohort summarizes.
func TestDigestBytesGrowWithCohortsNotStreams(t *testing.T) {
	mk := func(cohorts int, streamsPer uint32) int {
		d := Digest{Leaf: "leaf/1", Region: "eu", Inc: 1, Seq: 1, Weight: 1}
		for i := 0; i < cohorts; i++ {
			d.Cohorts = append(d.Cohorts, CohortDigest{
				Filter:  "eu/cl-" + string(rune('a'+i%26)) + "/#",
				Streams: streamsPer, Trusted: streamsPer,
				Suspects: uint64(streamsPer) * 3, QAPMin: 1,
			})
		}
		return len(d.Marshal())
	}
	small := mk(8, 10)
	big := mk(8, 1_000_000)
	if small != big {
		t.Fatalf("digest size depends on stream count: %d bytes at 10 streams vs %d at 1M", small, big)
	}
	if b64 := mk(64, 10); b64 <= small {
		t.Fatalf("digest size did not grow with cohort count: %d (8 cohorts) vs %d (64)", small, b64)
	}
}
