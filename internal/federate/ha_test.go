package federate

import (
	"fmt"
	"net"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/detector"
	"repro/internal/registry"
	"repro/internal/transport"
)

// haSeedDigest builds a one-cohort digest for a fake leaf.
func haSeedDigest(leaf, filter string, seq uint64, now clock.Time) []byte {
	return Digest{
		Leaf: leaf, Region: "r", Inc: 1, Seq: seq, SentAt: now, Weight: 1,
		Cohorts: []CohortDigest{{Filter: filter, Streams: 5, Trusted: 5, QAPMin: 1}},
	}.Marshal()
}

// drainEP empties a hub endpoint's receive buffer, returning how many
// datagrams were queued.
func drainEP(ep *transport.MemEndpoint) int {
	n := 0
	for {
		select {
		case <-ep.Recv():
			n++
		default:
			return n
		}
	}
}

// TestSplitBrainEqualVersionResolution is the assignment-table
// version-conflict regression: two aggregators that were briefly both
// leader during a partition each issued a re-delegation at the same
// version with different owners. On heal the conflict must resolve
// deterministically — the lower-id aggregator's table wins, the loser
// adopts it and never bumps the version itself, and the winner
// re-issues at a fresh version so ratcheted leaves converge too.
func TestSplitBrainEqualVersionResolution(t *testing.T) {
	sim := clock.NewSim(0)
	hub := transport.NewHub(0, 0, 1)
	epA := hub.Endpoint("agg-a")
	epB := hub.Endpoint("agg-b")
	epL1 := hub.Endpoint("l1")
	epL2 := hub.Endpoint("l2")
	defer epA.Close()
	defer epB.Close()
	defer epL1.Close()
	defer epL2.Close()

	aggA := NewAggregator(epA, sim, AggregatorOptions{
		ID: "agg-a", Region: "r", Peers: []string{"agg-b"}, DigestInterval: clock.Second})
	aggB := NewAggregator(epB, sim, AggregatorOptions{
		ID: "agg-b", Region: "r", Peers: []string{"agg-a"}, DigestInterval: clock.Second})

	// Identical pre-partition state: l1 owns r/c1/#, l2 owns r/c2/#.
	now := sim.Now()
	for _, agg := range []*Aggregator{aggA, aggB} {
		agg.HandleDatagram("l1", haSeedDigest("l1", "r/c1/#", 1, now))
		agg.HandleDatagram("l2", haSeedDigest("l2", "r/c2/#", 1, now))
	}

	// Partition: both sides claim leadership and each re-delegates a
	// different "dead" leaf, landing on the same table version with
	// divergent owners.
	aggA.joining.Store(false)
	aggA.setLeader("agg-a", now)
	aggB.joining.Store(false)
	aggB.setLeader("agg-b", now)

	aggA.mu.Lock()
	aggA.leaves["l1"].live = leafDead
	aggA.redelegateLocked("l1", now)
	aggA.mu.Unlock()
	aggB.mu.Lock()
	aggB.leaves["l2"].live = leafDead
	aggB.redelegateLocked("l2", now)
	aggB.mu.Unlock()

	if va, vb := aggA.AssignVersion(), aggB.AssignVersion(); va != 1 || vb != 1 {
		t.Fatalf("diverged versions = %d/%d, want 1/1", va, vb)
	}
	if oa, ob := aggA.OwnerOf("r/c1/#"), aggB.OwnerOf("r/c1/#"); oa == ob {
		t.Fatalf("setup failed to diverge owners: both say %q", oa)
	}

	// Heal: mirrors built before either side has heard the other (the
	// simultaneous-exchange worst case), then cross-delivered.
	aggA.mu.Lock()
	chunksA := aggA.buildMirrorChunksLocked(now)
	aggA.mu.Unlock()
	aggB.mu.Lock()
	chunksB := aggB.buildMirrorChunksLocked(now)
	aggB.mu.Unlock()
	for _, c := range chunksA {
		aggB.HandleDatagram("agg-a", c)
	}
	for _, c := range chunksB {
		aggA.HandleDatagram("agg-b", c)
	}

	// Both detected the conflict. B (higher id) adopted A's owners at the
	// contested version without issuing anything; A (lower id, leader)
	// kept its owners and re-issued at version 2.
	if got := aggA.Counters().MirrorConflicts; got != 1 {
		t.Fatalf("aggA mirror conflicts = %d, want 1", got)
	}
	if got := aggB.Counters().MirrorConflicts; got != 1 {
		t.Fatalf("aggB mirror conflicts = %d, want 1", got)
	}
	if v := aggA.AssignVersion(); v != 2 {
		t.Fatalf("winner's re-issued version = %d, want 2", v)
	}
	if v := aggB.AssignVersion(); v != 1 {
		t.Fatalf("loser's version = %d, want 1 (must not self-bump)", v)
	}
	for _, f := range []string{"r/c1/#", "r/c2/#"} {
		if oa, ob := aggA.OwnerOf(f), aggB.OwnerOf(f); oa != ob {
			t.Fatalf("owners of %s still diverge after heal: %q vs %q", f, oa, ob)
		}
	}
	if rb := aggB.Counters().Redelegations; rb != 1 {
		t.Fatalf("loser issued %d re-delegations, want its original 1 only", rb)
	}

	// Next round's mirror from A carries the re-issued version; B ratchets
	// onto it and the pair is fully converged.
	aggA.mu.Lock()
	chunksA = aggA.buildMirrorChunksLocked(now.Add(clock.Second))
	aggA.mu.Unlock()
	for _, c := range chunksA {
		aggB.HandleDatagram("agg-a", c)
	}
	if va, vb := aggA.AssignVersion(), aggB.AssignVersion(); va != 2 || vb != 2 {
		t.Fatalf("post-heal versions = %d/%d, want 2/2", va, vb)
	}
	for _, f := range []string{"r/c1/#", "r/c2/#"} {
		if oa, ob := aggA.OwnerOf(f), aggB.OwnerOf(f); oa != ob {
			t.Fatalf("owners of %s diverge after ratchet: %q vs %q", f, oa, ob)
		}
	}
}

// TestStandbyDefersRedelegationUntilPromotion drives a standby through
// the full deferral arc: follow the active's leadership claim, record a
// leaf death WITHOUT re-delegating, then — when the active's beats go
// silent — get elected, promote, and sweep the deferred re-delegation.
func TestStandbyDefersRedelegationUntilPromotion(t *testing.T) {
	const interval = 200 * clock.Millisecond
	sim := clock.NewSim(0)
	hub := transport.NewHub(0, 0, 1)
	epB := hub.Endpoint("agg-b")
	epA := hub.Endpoint("agg-a") // absorbs aggB's beats and mirrors
	epL1 := hub.Endpoint("l1")
	epL2 := hub.Endpoint("l2")
	defer epB.Close()
	defer epA.Close()
	defer epL1.Close()
	defer epL2.Close()

	aggB := NewAggregator(epB, sim, AggregatorOptions{
		ID: "agg-b", Region: "r", Peers: []string{"agg-a"}, DigestInterval: interval})
	aggB.Start()
	defer aggB.Stop()

	// Scripted drivers: fake active "agg-a" beats twice per interval;
	// fake leaves l1 and l2 digest every interval. Flags flip phases.
	beatsOn, l1On := true, true
	var beatSeq, l1Seq, l2Seq uint64
	var pump func(clock.Time)
	pump = func(now clock.Time) {
		if beatsOn {
			beatSeq++
			aggB.HandleDatagram("agg-a", PeerBeat{
				Agg: "agg-a", Region: "r", Inc: 1, Seq: beatSeq, SentAt: now,
				AssignVersion: 0, Leader: true, Ready: true,
			}.Marshal())
		}
		// Digest cadence: every other pump tick (one per interval).
		if beatSeq%2 == 0 {
			if l1On {
				l1Seq++
				aggB.HandleDatagram("l1", haSeedDigest("l1", "r/c1/#", l1Seq, now))
			}
			l2Seq++
			aggB.HandleDatagram("l2", haSeedDigest("l2", "r/c2/#", l2Seq, now))
		}
		drainEP(epA)
		drainEP(epL1)
		drainEP(epL2)
		sim.AfterFunc(interval/2, pump)
	}
	sim.AfterFunc(interval/2, pump)

	// Phase 1: with the active beating, aggB follows it. One mirror from
	// the active ends the joining phase (catch-up complete).
	sim.Advance(3 * interval)
	aggB.HandleDatagram("agg-a", Mirror{Agg: "agg-a", Inc: 1, Seq: 1, SentAt: sim.Now()}.Marshal())
	sim.Advance(2 * interval)
	if role := aggB.Role(); role != "standby" {
		t.Fatalf("role with live active = %q, want standby", role)
	}
	if id := aggB.LeaderID(); id != "agg-a" {
		t.Fatalf("leader id = %q, want agg-a", id)
	}
	if aggB.Leader() {
		t.Fatal("standby claims leadership")
	}

	// Phase 2: l1 dies. The standby must record the death but defer the
	// re-delegation to the (hypothetical) active.
	l1On = false
	sim.Advance(6 * interval)
	c := aggB.Counters()
	if c.LeafOfflines != 1 {
		t.Fatalf("leaf offlines = %d, want 1", c.LeafOfflines)
	}
	if c.Redelegations != 0 || c.AssignVersion != 0 {
		t.Fatalf("standby re-delegated: redelegations=%d version=%d, want 0/0",
			c.Redelegations, c.AssignVersion)
	}
	if owner := aggB.OwnerOf("r/c1/#"); owner != "l1" {
		t.Fatalf("owner of r/c1/# = %q, want l1 (deferred)", owner)
	}

	// Phase 3: the active's beats stop. The elector promotes aggB, and
	// the promotion sweep re-delegates the deferred death to l2.
	beatsOn = false
	sim.Advance(12 * interval)
	if !aggB.Leader() || aggB.Role() != "leader" {
		t.Fatalf("no promotion after active silence: role=%q", aggB.Role())
	}
	c = aggB.Counters()
	if c.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", c.Promotions)
	}
	if c.Redelegations != 1 || c.AssignVersion != 1 {
		t.Fatalf("promotion sweep: redelegations=%d version=%d, want 1/1",
			c.Redelegations, c.AssignVersion)
	}
	if owner := aggB.OwnerOf("r/c1/#"); owner != "l2" {
		t.Fatalf("owner of r/c1/# after promotion = %q, want l2", owner)
	}
	hist := aggB.History()
	if len(hist) != 1 || hist[0].Dead != "l1" || hist[0].Version != 1 {
		t.Fatalf("history = %+v, want one version-1 record for l1", hist)
	}
}

// TestLeafAggregatorFailover walks a leaf's per-aggregator reachability
// machine: dual-send while both ack, flip one unreachable after ack
// silence, probe it with capped exponential backoff instead of every
// round, revive it on the next ack — and keep sending to everyone when
// no aggregator is reachable (the digest is the leaf's heartbeat).
func TestLeafAggregatorFailover(t *testing.T) {
	const interval = clock.Second // UnreachableAfter defaults to 3s
	sim := clock.NewSim(0)
	hub := transport.NewHub(0, 0, 1)
	epL := hub.Endpoint("leaf-1")
	epA := hub.Endpoint("agg-a")
	epB := hub.Endpoint("agg-b")
	defer epL.Close()
	defer epA.Close()
	defer epB.Close()

	reg := registry.New(sim,
		func(string) detector.Detector { return detector.NewChen(8, clock.Millisecond, clock.Millisecond) },
		registry.Options{EvictAfter: -1})
	leaf, err := NewLeaf(epL, sim, reg, "", LeafOptions{
		ID: "leaf-1", Region: "r", Cohorts: []string{"r/c1/#"},
		Interval: interval, Aggs: []string{"agg-a", "agg-b"},
	})
	if err != nil {
		t.Fatal(err)
	}

	ack := func(agg string, now clock.Time) {
		leaf.HandleDatagramFrom(agg, Ack{Agg: agg, Leader: agg == "agg-a", EchoSeq: 1, SentAt: now}.Marshal())
	}

	// tick advances one interval, rolls up, drains both aggregator
	// inboxes, and returns how many digests each received this round.
	tick := func() (toA, toB int) {
		sim.Advance(interval)
		leaf.Rollup(sim.Now())
		return drainEP(epA), drainEP(epB)
	}

	type round struct {
		ackA, ackB   bool
		wantA, wantB int
	}
	script := []round{
		1:  {ackA: true, ackB: true, wantA: 1, wantB: 1},
		2:  {ackA: true, ackB: true, wantA: 1, wantB: 1},
		3:  {ackB: true, wantA: 1, wantB: 1},             // agg-a dies: silence 1s
		4:  {ackB: true, wantA: 1, wantB: 1},             // silence 2s
		5:  {ackB: true, wantA: 1, wantB: 1},             // silence 3s — at the bound, not past it
		6:  {ackB: true, wantA: 1, wantB: 1},             // flips unreachable, immediate probe
		7:  {ackB: true, wantA: 0, wantB: 1},             // backing off (next probe t=8s)
		8:  {ackB: true, wantA: 1, wantB: 1},             // probe (backoff doubles, next t=12s)
		9:  {ackA: true, ackB: true, wantA: 0, wantB: 1}, // probe answered after the round
		10: {ackA: true, ackB: true, wantA: 1, wantB: 1}, // reachable again: full dual-send
		11: {ackA: true, ackB: true, wantA: 1, wantB: 1},
		12: {ackA: true, ackB: true, wantA: 1, wantB: 1},
		13: {wantA: 1, wantB: 1}, // both die
		14: {wantA: 1, wantB: 1},
		15: {wantA: 1, wantB: 1},
		16: {wantA: 1, wantB: 1}, // both flip; nothing reachable → mandatory sends
		17: {wantA: 1, wantB: 1}, // heartbeat path: every round despite backoff
		18: {wantA: 1, wantB: 1},
	}
	for k := 1; k < len(script); k++ {
		r := script[k]
		gotA, gotB := tick()
		if gotA != r.wantA || gotB != r.wantB {
			t.Fatalf("round %d: digests a=%d b=%d, want a=%d b=%d", k, gotA, gotB, r.wantA, r.wantB)
		}
		now := sim.Now()
		if r.ackA {
			ack("agg-a", now)
		}
		if r.ackB {
			ack("agg-b", now)
		}
		switch k {
		case 5:
			if !leaf.AggReachable("agg-a") {
				t.Fatal("agg-a unreachable before the silence bound")
			}
		case 6:
			if leaf.AggReachable("agg-a") {
				t.Fatal("agg-a still reachable past the silence bound")
			}
			if c := leaf.Counters(); c.AggUnreachable != 1 || c.AggsReachable != 1 {
				t.Fatalf("after flip: unreachable=%d reachable=%d, want 1/1", c.AggUnreachable, c.AggsReachable)
			}
		case 9:
			if !leaf.AggReachable("agg-a") {
				t.Fatal("ack did not revive agg-a")
			}
		case 16:
			if c := leaf.Counters(); c.AggsReachable != 0 {
				t.Fatalf("both silent: aggs reachable = %d, want 0", c.AggsReachable)
			}
		}
	}
	c := leaf.Counters()
	if c.AggUnreachable != 3 { // agg-a once, then both on the double outage
		t.Fatalf("unreachable transitions = %d, want 3", c.AggUnreachable)
	}
	if c.AcksReceived == 0 || c.SendErrors != 0 {
		t.Fatalf("acks=%d sendErrors=%d", c.AcksReceived, c.SendErrors)
	}
}

// TestRedelegationRecordCapped is the mirror-crash regression: a dead
// leaf owning more than MaxAssignEntries cohorts used to produce a
// history record whose Moved list Mirror.Marshal refuses, crash-looping
// every HA round. The record must cap at the wire bound with the
// overflow counted in MovedOmitted, while the cohort table itself moves
// every cohort.
func TestRedelegationRecordCapped(t *testing.T) {
	const extra = 7
	sim := clock.NewSim(0)
	hub := transport.NewHub(0, 0, 1)
	ep := hub.Endpoint("agg-a")
	defer ep.Close()
	agg := NewAggregator(ep, sim, AggregatorOptions{
		ID: "agg-a", Region: "r", Peers: []string{"agg-b"}, DigestInterval: clock.Second})

	now := sim.Now()
	agg.mu.Lock()
	agg.leaves["l-dead"] = &leafState{id: "l-dead", region: "r", weight: 1, live: leafDead}
	agg.leaves["l-live"] = &leafState{id: "l-live", region: "r", weight: 1, live: leafAlive}
	for i := 0; i < MaxAssignEntries+extra; i++ {
		f := fmt.Sprintf("r/c%04d/#", i)
		agg.cohorts[f] = &cohortMerge{filter: f, owner: "l-dead", last: CohortDigest{Filter: f, QAPMin: 1}}
	}
	agg.redelegateLocked("l-dead", now)
	chunks := agg.buildMirrorChunksLocked(now) // must not panic
	agg.mu.Unlock()

	hist := agg.History()
	if len(hist) != 1 {
		t.Fatalf("history records = %d, want 1", len(hist))
	}
	if got := len(hist[0].Moved); got != MaxAssignEntries {
		t.Fatalf("record Moved entries = %d, want the %d cap", got, MaxAssignEntries)
	}
	if hist[0].MovedOmitted != extra {
		t.Fatalf("MovedOmitted = %d, want %d", hist[0].MovedOmitted, extra)
	}
	// The cap bounds only the observability record — every cohort moved.
	if got := agg.Counters().CohortsMoved; got != MaxAssignEntries+extra {
		t.Fatalf("cohorts moved = %d, want %d", got, MaxAssignEntries+extra)
	}
	for i := 0; i < MaxAssignEntries+extra; i++ {
		if owner := agg.OwnerOf(fmt.Sprintf("r/c%04d/#", i)); owner != "l-live" {
			t.Fatalf("cohort %d owner = %q, want l-live", i, owner)
		}
	}
	// Every chunk decodes, fits the MTU, and the record survives intact.
	var gotHist, gotCohorts int
	for i, c := range chunks {
		if len(c) > MirrorMTU {
			t.Fatalf("chunk %d is %d bytes, exceeds MirrorMTU %d", i, len(c), MirrorMTU)
		}
		msg, err := Decode(c)
		if err != nil || msg.Mirror == nil {
			t.Fatalf("chunk %d: decode: %v", i, err)
		}
		gotCohorts += len(msg.Mirror.Cohorts)
		for _, h := range msg.Mirror.History {
			gotHist++
			if len(h.Moved) != MaxAssignEntries || h.MovedOmitted != extra {
				t.Fatalf("mirrored record: moved=%d omitted=%d, want %d/%d",
					len(h.Moved), h.MovedOmitted, MaxAssignEntries, extra)
			}
		}
	}
	if gotHist != 1 || gotCohorts != MaxAssignEntries+extra {
		t.Fatalf("mirrored history=%d cohorts=%d, want 1/%d", gotHist, gotCohorts, MaxAssignEntries+extra)
	}
}

// TestMirrorChunksByteBounded is the oversized-datagram regression:
// chunking by record count alone let long names push a chunk past UDP's
// payload ceiling, where real sockets drop it silently and netsim never
// notices. Chunks must respect MirrorMTU, and a single history record
// wider than a whole datagram must be truncated on the wire (head kept,
// cut counted in MovedOmitted) rather than encoded oversize.
func TestMirrorChunksByteBounded(t *testing.T) {
	sim := clock.NewSim(0)
	hub := transport.NewHub(0, 0, 1)
	ep := hub.Endpoint("agg-a")
	defer ep.Close()
	agg := NewAggregator(ep, sim, AggregatorOptions{
		ID: "agg-a", Region: "r", Peers: []string{"agg-b"}, DigestInterval: clock.Second})

	const nLeaves, nMoved = 80, 100
	wide := strings.Repeat("n", maxNameLen-12)
	rec := RedelegationRecord{Version: 1, At: 1, Dead: "l-dead"}
	for i := 0; i < nMoved; i++ {
		rec.Moved = append(rec.Moved, AssignEntry{
			Cohort: fmt.Sprintf("%s-%04d/#", wide, i), Owner: wide})
	}
	if rec.wireSize() <= MirrorMTU {
		t.Fatalf("setup: record is %d bytes, want > MirrorMTU", rec.wireSize())
	}
	agg.mu.Lock()
	for i := 0; i < nLeaves; i++ {
		id := fmt.Sprintf("%s-%04d", wide, i)
		agg.leaves[id] = &leafState{id: id, addr: id, region: "r", weight: 1, live: leafAlive}
	}
	agg.history = append(agg.history, rec)
	chunks := agg.buildMirrorChunksLocked(sim.Now())
	agg.mu.Unlock()

	// 80 leaves at ~1KiB each cannot fit one 60000-byte chunk even though
	// the 128-record count cap alone would allow it.
	if len(chunks) < 2 {
		t.Fatalf("chunks = %d, want >= 2 (byte budget must split before the count cap)", len(chunks))
	}
	gotLeaves, gotHist := 0, 0
	for i, c := range chunks {
		if len(c) > MirrorMTU {
			t.Fatalf("chunk %d is %d bytes, exceeds MirrorMTU %d", i, len(c), MirrorMTU)
		}
		msg, err := Decode(c)
		if err != nil || msg.Mirror == nil {
			t.Fatalf("chunk %d: decode: %v", i, err)
		}
		gotLeaves += len(msg.Mirror.Leaves)
		for _, h := range msg.Mirror.History {
			gotHist++
			if len(h.Moved) == 0 || len(h.Moved) >= nMoved {
				t.Fatalf("truncated record kept %d moves, want 0 < n < %d", len(h.Moved), nMoved)
			}
			if int(h.MovedOmitted)+len(h.Moved) != nMoved {
				t.Fatalf("moved %d + omitted %d != %d", len(h.Moved), h.MovedOmitted, nMoved)
			}
			// Head kept in order.
			for j, e := range h.Moved {
				if want := fmt.Sprintf("%s-%04d/#", wide, j); e.Cohort != want {
					t.Fatalf("moved[%d] is not the head of the record", j)
				}
			}
		}
	}
	if gotLeaves != nLeaves || gotHist != 1 {
		t.Fatalf("mirrored leaves=%d history=%d, want %d/1", gotLeaves, gotHist, nLeaves)
	}
	// The local record was not mutated by the wire truncation.
	if hist := agg.History(); len(hist[0].Moved) != nMoved || hist[0].MovedOmitted != 0 {
		t.Fatalf("local record mutated: moved=%d omitted=%d", len(hist[0].Moved), hist[0].MovedOmitted)
	}
}

// TestMirrorDoesNotStarveDirectHeartbeats is the liveness-starvation
// regression: a peer's mirror raising the merge watermark used to make
// ingestDigest drop the leaf's own digests before liveness.Observe,
// manufacturing heartbeat gaps. A direct digest at or below the
// mirrored seq must still reach the detector (first-hand watermark),
// while true first-hand duplicates must not.
func TestMirrorDoesNotStarveDirectHeartbeats(t *testing.T) {
	sim := clock.NewSim(0)
	hub := transport.NewHub(0, 0, 1)
	epA := hub.Endpoint("agg-a")
	epL := hub.Endpoint("l1")
	defer epA.Close()
	defer epL.Close()
	agg := NewAggregator(epA, sim, AggregatorOptions{
		ID: "agg-a", Region: "r", Peers: []string{"agg-b"}, DigestInterval: clock.Second})

	now := sim.Now()
	// The peer has already heard l1 up to seq 10; its mirror arrives first.
	agg.HandleDatagram("agg-b", Mirror{Agg: "agg-b", Inc: 1, Seq: 1, SentAt: now,
		Leaves: []MirrorLeaf{{ID: "l1", Addr: "l1", Region: "r", Weight: 1,
			Inc: 1, LastSeq: 10, LastAt: now, Live: uint8(leafAlive)}}}.Marshal())
	if _, heard := agg.liveness.StatusOf("l1", now); heard {
		t.Fatal("mirror fed the liveness detector; only direct digests may")
	}

	// l1's own digest, delayed behind the mirror: stale for the merge but
	// a real arrival for the detector.
	agg.HandleDatagram("l1", haSeedDigest("l1", "r/c1/#", 7, now))
	if _, heard := agg.liveness.StatusOf("l1", now); !heard {
		t.Fatal("direct digest below the mirrored seq never reached the detector")
	}
	c := agg.Counters()
	if c.DigestsStale != 1 || c.RowsMerged != 0 {
		t.Fatalf("after mirrored-then-direct: stale=%d merged=%d, want 1/0", c.DigestsStale, c.RowsMerged)
	}
	if drainEP(epL) != 1 {
		t.Fatal("merge-stale digest was not acked")
	}

	// A true first-hand duplicate is dropped without another observation.
	agg.HandleDatagram("l1", haSeedDigest("l1", "r/c1/#", 7, now))
	if got := agg.Counters().DigestsStale; got != 2 {
		t.Fatalf("duplicate digest: stale=%d, want 2", got)
	}

	// Fresh digests past both watermarks merge rows again.
	agg.HandleDatagram("l1", haSeedDigest("l1", "r/c1/#", 11, now))
	c = agg.Counters()
	if c.RowsMerged != 1 || c.DigestsStale != 2 {
		t.Fatalf("after fresh digest: merged=%d stale=%d, want 1/2", c.RowsMerged, c.DigestsStale)
	}
}

// TestAckAttributionBootstrap covers the hostname-attribution
// regression: acks whose socket source address matches no configured
// string used to be unattributable forever, flipping every aggregator
// unreachable. Attribution must fall through: canonical resolved form
// of the configured address, then the learned id, then — for a new id
// with exactly one id-less aggregator left — elimination. An ambiguous
// ack (two unlearned candidates) must bind to neither.
func TestAckAttributionBootstrap(t *testing.T) {
	sim := clock.NewSim(0)
	hub := transport.NewHub(0, 0, 1)
	epL := hub.Endpoint("leaf-1")
	defer epL.Close()
	reg := registry.New(sim,
		func(string) detector.Detector { return detector.NewChen(8, clock.Millisecond, clock.Millisecond) },
		registry.Options{EvictAfter: -1})
	leaf, err := NewLeaf(epL, sim, reg, "", LeafOptions{
		ID: "leaf-1", Region: "r", Cohorts: []string{"r/c1/#"},
		Interval: clock.Second, Aggs: []string{"agg-one", "agg-two"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// agg-one behaves like a hostname that resolved at construction; the
	// netsim hub has no resolver, so inject the canonical form directly.
	leaf.mu.Lock()
	leaf.aggs[0].canonical = "10.0.0.1:9090"
	leaf.mu.Unlock()

	now := sim.Now()
	ackFrom := func(from, id string) {
		leaf.HandleDatagramFrom(from, Ack{Agg: id, EchoSeq: 1, SentAt: now}.Marshal())
	}
	ids := func() (a, b string) {
		leaf.mu.Lock()
		defer leaf.mu.Unlock()
		return leaf.aggs[0].id, leaf.aggs[1].id
	}

	// Ambiguous: unknown source, unknown id, two id-less candidates.
	ackFrom("172.16.0.9:1", "agg-x")
	if a, b := ids(); a != "" || b != "" {
		t.Fatalf("ambiguous ack was attributed: ids %q/%q", a, b)
	}

	// Canonical source address binds agg-one and learns its id.
	ackFrom("10.0.0.1:9090", "A1")
	if a, b := ids(); a != "A1" || b != "" {
		t.Fatalf("canonical-addr ack: ids %q/%q, want A1/\"\"", a, b)
	}

	// New id from an unknown source: exactly one id-less aggregator left,
	// so elimination binds it to agg-two.
	ackFrom("172.16.0.9:1", "A2")
	if a, b := ids(); a != "A1" || b != "A2" {
		t.Fatalf("elimination ack: ids %q/%q, want A1/A2", a, b)
	}

	// Learned-id attribution now works from any source, reviving an
	// unreachable aggregator.
	leaf.mu.Lock()
	leaf.aggs[1].unreachable = true
	leaf.mu.Unlock()
	ackFrom("192.168.3.3:7", "A2")
	if !leaf.AggReachable("agg-two") {
		t.Fatal("learned-id ack did not revive agg-two")
	}

	// NewLeaf resolves hostname-form addresses when the system can.
	if ua, err := net.ResolveUDPAddr("udp", "localhost:19001"); err == nil && ua.String() != "localhost:19001" {
		reg2 := registry.New(sim,
			func(string) detector.Detector { return detector.NewChen(8, clock.Millisecond, clock.Millisecond) },
			registry.Options{EvictAfter: -1})
		leaf2, err := NewLeaf(epL, sim, reg2, "", LeafOptions{
			ID: "leaf-2", Region: "r", Cohorts: []string{"r/c2/#"},
			Interval: clock.Second, Aggs: []string{"localhost:19001"},
		})
		if err != nil {
			t.Fatal(err)
		}
		leaf2.mu.Lock()
		canon := leaf2.aggs[0].canonical
		leaf2.mu.Unlock()
		if canon != ua.String() {
			t.Fatalf("canonical = %q, want %q", canon, ua.String())
		}
	}
}
