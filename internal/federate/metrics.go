package federate

import (
	"repro/internal/clock"
	"repro/internal/metrics"
)

// InstrumentMetrics registers the leaf's sfd_fed_leaf_* series into set.
// Like the receiver and gossip instruments, the views read the atomics
// the leaf already maintains — zero cost off the scrape path.
func (l *Leaf) InstrumentMetrics(set *metrics.Set) {
	set.CounterFunc("sfd_fed_leaf_rollups_total",
		"Roll-up rounds executed by the federation leaf.", l.rollups.Load)
	set.CounterFunc("sfd_fed_leaf_digests_sent_total",
		"Cohort digests sent to the regional aggregator.", l.digestsSent.Load)
	set.CounterFunc("sfd_fed_leaf_send_errors_total",
		"Digest sends that failed at the endpoint.", l.sendErrors.Load)
	set.CounterFunc("sfd_fed_leaf_assigns_applied_total",
		"Assignment tables adopted (version ratcheted forward).", l.assignsApplied.Load)
	set.CounterFunc("sfd_fed_leaf_assigns_stale_total",
		"Assignment pushes ignored as stale or duplicate.", l.assignsStale.Load)
	set.CounterFunc("sfd_fed_leaf_bad_datagrams_total",
		"Malformed federation datagrams received.", l.badDatagrams.Load)
	set.CounterFunc("sfd_fed_leaf_notable_omitted_total",
		"Notable transitions dropped by the per-cohort digest bound.", l.notableOmitted.Load)
	set.CounterFunc("sfd_fed_leaf_acks_received_total",
		"Digest acks received from aggregators.", l.acksReceived.Load)
	set.CounterFunc("sfd_fed_leaf_agg_unreachable_total",
		"Aggregator reachable→unreachable transitions (ack silence past the bound).", l.aggUnreachable.Load)
	set.GaugeFunc("sfd_fed_leaf_aggs_reachable",
		"Configured aggregators currently considered reachable.",
		func() float64 { return float64(l.Counters().AggsReachable) })
	set.GaugeFunc("sfd_fed_leaf_cohorts",
		"Cohorts this leaf currently owns.",
		func() float64 { return float64(l.Counters().CohortsOwned) })
	set.GaugeFunc("sfd_fed_leaf_assign_version",
		"Newest assignment-table version applied.",
		func() float64 { return float64(l.AssignVersion()) })
}

// InstrumentMetrics registers the aggregator's sfd_fed_* series into
// set. The liveness registry's own sfd_registry_* series live on its
// Metrics() set; embedders merge both onto one page.
func (a *Aggregator) InstrumentMetrics(set *metrics.Set) {
	set.CounterFunc("sfd_fed_digests_received_total",
		"Leaf digests received and accepted.", a.digestsReceived.Load)
	set.CounterFunc("sfd_fed_digests_bad_total",
		"Malformed federation datagrams received.", a.digestsBad.Load)
	set.CounterFunc("sfd_fed_digests_stale_total",
		"Digests whose rows were dropped as duplicate, reordered, from a dead incarnation, or already merged from a peer's mirror.", a.digestsStale.Load)
	set.CounterFunc("sfd_fed_rows_merged_total",
		"Cohort rows folded into the merged fleet view.", a.rowsMerged.Load)
	set.CounterFunc("sfd_fed_rows_conflicted_total",
		"Cohort rows dropped because the sender does not own the cohort.", a.rowsConflicted.Load)
	set.CounterFunc("sfd_fed_redelegations_total",
		"Re-delegation rounds triggered by leaf deaths.", a.redelegations.Load)
	set.CounterFunc("sfd_fed_cohorts_moved_total",
		"Cohorts moved to a new owner by re-delegation.", a.cohortsMoved.Load)
	set.CounterFunc("sfd_fed_assigns_sent_total",
		"Assignment-table pushes sent to leaves.", a.assignsSent.Load)
	set.CounterFunc("sfd_fed_send_errors_total",
		"Outbound federation sends (acks, assignment pushes, peer beats, mirrors) that failed at the endpoint.", a.sendErrors.Load)
	set.CounterFunc("sfd_fed_leaf_offlines_total",
		"Leaves declared offline by the liveness detector.", a.leafOfflines.Load)
	set.CounterFunc("sfd_fed_leaf_recoveries_total",
		"Dead leaves that resumed digesting and were re-trusted.", a.leafRecoveries.Load)
	set.GaugeFunc("sfd_fed_leaves",
		"Leaves known to the aggregator.",
		func() float64 { return float64(a.Counters().Leaves) })
	set.GaugeFunc("sfd_fed_live_leaves",
		"Leaves currently considered live.",
		func() float64 { return float64(a.Counters().LiveLeaves) })
	set.GaugeFunc("sfd_fed_cohorts",
		"Cohorts in the merged fleet view.",
		func() float64 { return float64(a.Counters().Cohorts) })
	set.GaugeFunc("sfd_fed_orphan_cohorts",
		"Cohorts whose owner is dead with no survivor assigned yet.",
		func() float64 { return float64(a.Counters().OrphanedCohorts) })
	set.GaugeFunc("sfd_fed_assign_version",
		"Current assignment-table version.",
		func() float64 { return float64(a.AssignVersion()) })
	set.GaugeFunc("sfd_fed_fleet_streams",
		"Sum of stream counts across every cohort's newest digest.",
		func() float64 { return float64(a.Counters().FleetStreams) })

	// HA series (flat at zero outside HA mode).
	set.GaugeFunc("sfd_fed_ha_is_leader",
		"1 while this aggregator holds HA leadership, else 0.",
		func() float64 {
			if a.Leader() {
				return 1
			}
			return 0
		})
	set.CounterFunc("sfd_fed_ha_leadership_changes_total",
		"Leadership transitions observed by this aggregator.", a.leadershipChanges.Load)
	set.CounterFunc("sfd_fed_ha_promotions_total",
		"Times this aggregator was promoted to leader.", a.promotions.Load)
	set.CounterFunc("sfd_fed_ha_demotions_total",
		"Times this aggregator was demoted to standby.", a.demotions.Load)
	set.CounterFunc("sfd_fed_ha_peer_beats_sent_total",
		"Peer state heartbeats sent to HA peers.", a.peerBeatsSent.Load)
	set.CounterFunc("sfd_fed_ha_peer_beats_received_total",
		"Peer state heartbeats received and accepted.", a.peerBeatsReceived.Load)
	set.CounterFunc("sfd_fed_ha_peer_beats_stale_total",
		"Peer beats dropped as duplicate, reordered, or from a dead incarnation.", a.peerBeatsStale.Load)
	set.CounterFunc("sfd_fed_ha_mirrors_sent_total",
		"Anti-entropy state mirrors sent to HA peers.", a.mirrorsSent.Load)
	set.CounterFunc("sfd_fed_ha_mirrors_received_total",
		"Anti-entropy state mirrors received and merged.", a.mirrorsReceived.Load)
	set.CounterFunc("sfd_fed_ha_mirror_conflicts_total",
		"Equal-version assignment-table divergences resolved by the id tiebreak.", a.mirrorConflicts.Load)
	set.CounterFunc("sfd_fed_ha_acks_sent_total",
		"Digest acks sent back to leaves.", a.acksSent.Load)
	set.GaugeFunc("sfd_fed_ha_mirror_lag_seconds",
		"Seconds since the last mirror was received from any peer (0 before the first).",
		func() float64 {
			last := a.lastMirrorRecv.Load()
			if last == 0 {
				return 0
			}
			return a.clk.Now().Sub(clock.Time(last)).Seconds()
		})
}
