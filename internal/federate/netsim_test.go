package federate

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/clock"
	"repro/internal/detector"
	"repro/internal/heartbeat"
	"repro/internal/netsim"
	"repro/internal/registry"
)

// The acceptance scenario from the issue: 2 regions × 3 leaves × 10k
// streams under one regional aggregator. Killing a leaf must re-delegate
// its cohorts to survivors within ≤ 3 digest intervals, with zero lost
// failure transitions at the aggregator across the handoff, and /fleet
// must reflect the post-handoff ownership. Heartbeats feed the leaf
// registries directly (the netsim fabric carries only federation
// traffic — digests up, assignment tables down), and everything runs on
// one clock.Sim, so the run is deterministic.

const (
	fedRegions        = 2
	fedLeavesPer      = 3
	fedCohortsPerLeaf = 4
	fedStreams        = 10_000
	fedBeat           = 200 * clock.Millisecond
	fedInterval       = 500 * clock.Millisecond // digest interval
	fedHandoffBound   = 3 * fedInterval
)

// fedStream is one monitored process, fed straight into whichever leaf
// currently owns its cohort (the test driver is the routing tier).
type fedStream struct {
	name  string
	seq   uint64
	alive bool
}

// fedLeaf is one leaf host: a registry plus a Leaf on a netsim node.
type fedLeaf struct {
	id    string
	node  *netsim.Node
	reg   *registry.Registry
	leaf  *Leaf
	dead  bool
	wired bool
}

// pump drains the leaf node's inbox every 25 ms — assignment pushes.
func (fl *fedLeaf) pump(sim *clock.Sim) {
	sim.AfterFunc(25*clock.Millisecond, func(clock.Time) {
		if fl.dead {
			return
		}
		for _, in := range fl.node.Drain() {
			fl.leaf.HandleDatagram(in.Payload)
		}
		fl.pump(sim)
	})
}

func TestNetsimLeafKillRedelegation(t *testing.T) {
	sim := clock.NewSim(0)
	net := netsim.New(sim, netsim.LinkParams{
		DelayBase:  5 * clock.Millisecond,
		JitterMean: 1 * clock.Millisecond,
		JitterStd:  1 * clock.Millisecond,
	}, 42)

	// Aggregator host.
	aggNode := net.AddNode("agg-0", 8192)
	agg := NewAggregator(aggNode, sim, AggregatorOptions{
		ID:               "agg-0",
		DigestInterval:   fedInterval,
		LeafMaxSilence:   fedInterval + fedInterval/5, // 1.2 × interval
		LeafOfflineAfter: 2 * fedInterval / 5,         // 0.4 × interval
	})
	agg.Start()
	var aggPump func()
	aggPump = func() {
		sim.AfterFunc(25*clock.Millisecond, func(clock.Time) {
			for _, in := range aggNode.Drain() {
				agg.HandleDatagram(in.From, in.Payload)
			}
			aggPump()
		})
	}
	aggPump()

	// Leaves: 2 regions × 3, each seeded with 4 cohorts, all weight 1.
	regions := []string{"eu", "us"}
	var leaves []*fedLeaf
	leafByID := make(map[string]*fedLeaf)
	cohortOwner := make(map[string]string) // test's routing table
	var cohorts []string
	for _, region := range regions {
		for i := 0; i < fedLeavesPer; i++ {
			id := fmt.Sprintf("%s/leaf-%d", region, i)
			var owned []string
			for c := 0; c < fedCohortsPerLeaf; c++ {
				f := fmt.Sprintf("%s/cl-%d-%d/#", region, i, c)
				owned = append(owned, f)
				cohorts = append(cohorts, f)
				cohortOwner[f] = id
			}
			reg := registry.New(sim,
				func(string) detector.Detector {
					return detector.NewChen(16, fedBeat, 200*clock.Millisecond)
				},
				registry.Options{
					WheelTick:    50 * clock.Millisecond,
					OfflineAfter: 300 * clock.Millisecond,
					MaxSilence:   600 * clock.Millisecond,
					EvictAfter:   -1,
				})
			reg.Start()
			node := net.AddNode(id, 4096)
			leaf, err := NewLeaf(node, sim, reg, "agg-0", LeafOptions{
				ID:       id,
				Region:   region,
				Cohorts:  owned,
				Interval: fedInterval,
			})
			if err != nil {
				t.Fatalf("NewLeaf(%s): %v", id, err)
			}
			leaf.Start()
			fl := &fedLeaf{id: id, node: node, reg: reg, leaf: leaf}
			fl.pump(sim)
			leaves = append(leaves, fl)
			leafByID[id] = fl
		}
	}

	// Streams, spread round-robin over the cohorts: 10k total. The
	// cohort prefix is the filter minus its trailing "/#".
	streamsByCohort := make(map[string][]*fedStream, len(cohorts))
	for i := 0; i < fedStreams; i++ {
		f := cohorts[i%len(cohorts)]
		name := fmt.Sprintf("%s/s%05d", f[:len(f)-2], i)
		streamsByCohort[f] = append(streamsByCohort[f], &fedStream{name: name, alive: true})
	}

	// The heartbeat driver: every beat, each live stream's arrival goes
	// to the registry of the leaf currently routed for its cohort. A
	// cohort routed to a dead leaf is a black hole (heartbeats to a dead
	// machine are lost) until the test re-routes it post-handoff.
	var beat func()
	beat = func() {
		sim.AfterFunc(fedBeat, func(now clock.Time) {
			for _, f := range cohorts {
				fl := leafByID[cohortOwner[f]]
				if fl == nil || fl.dead {
					continue
				}
				for _, s := range streamsByCohort[f] {
					if !s.alive {
						continue
					}
					s.seq++
					fl.reg.Observe(arrival(s.name, s.seq, now))
				}
			}
			beat()
		})
	}
	beat()

	// Phase 1 — warmup: aggregator converges on the full fleet.
	sim.Advance(3 * clock.Second)
	c := agg.Counters()
	if c.Leaves != fedRegions*fedLeavesPer || c.LiveLeaves != fedRegions*fedLeavesPer {
		t.Fatalf("warmup: leaves %d live %d, want %d", c.Leaves, c.LiveLeaves, fedRegions*fedLeavesPer)
	}
	if c.Cohorts != len(cohorts) {
		t.Fatalf("warmup: cohorts %d, want %d", c.Cohorts, len(cohorts))
	}
	if c.FleetStreams != fedStreams {
		t.Fatalf("warmup: fleet streams %d, want %d", c.FleetStreams, fedStreams)
	}
	for _, f := range cohorts {
		if got := agg.OwnerOf(f); got != cohortOwner[f] {
			t.Fatalf("warmup: owner of %s = %q, want %q", f, got, cohortOwner[f])
		}
	}
	for _, f := range cohorts {
		if _, _, off, _, _ := cohortTotals(t, agg, f); off != 0 {
			t.Fatalf("warmup: cohort %s already has %d offlines", f, off)
		}
	}

	// Phase 2 — kill eu/leaf-1: no more digests, no more assignment
	// processing, its streams' heartbeats go nowhere.
	victim := leafByID["eu/leaf-1"]
	victimCohorts := victim.leaf.Cohorts()
	victim.dead = true
	victim.leaf.Stop()
	killAt := sim.Now()

	// Advance in 50 ms steps until every victim cohort has a live new
	// owner at the aggregator AND that owner has adopted it.
	handedOver := func() bool {
		for _, f := range victimCohorts {
			owner := agg.OwnerOf(f)
			if owner == victim.id || owner == "" {
				return false
			}
			adopted := false
			for _, of := range leafByID[owner].leaf.Cohorts() {
				if of == f {
					adopted = true
					break
				}
			}
			if !adopted {
				return false
			}
		}
		return true
	}
	for !handedOver() {
		if sim.Now().Sub(killAt) > fedHandoffBound {
			t.Fatalf("handoff incomplete after %v (bound %v): owners now %v",
				sim.Now().Sub(killAt), fedHandoffBound, ownersOf(agg, victimCohorts))
		}
		sim.Advance(50 * clock.Millisecond)
	}
	handoff := sim.Now().Sub(killAt)
	t.Logf("re-delegation completed in %v (bound %v); new owners %v",
		handoff, fedHandoffBound, ownersOf(agg, victimCohorts))

	if agg.AssignVersion() == 0 {
		t.Fatal("handoff: assignment version never bumped")
	}
	hist := agg.History()
	if len(hist) == 0 || hist[len(hist)-1].Dead != victim.id {
		t.Fatalf("handoff: history %+v does not record the dead leaf", hist)
	}
	// Deterministic assignment: candidates are same-region-first, then
	// id order; the victim's 4 cohorts round-robin over them.
	wantOwners := []string{"eu/leaf-0", "eu/leaf-2", "us/leaf-0", "us/leaf-1"}
	for i, f := range victimCohorts {
		if got := agg.OwnerOf(f); got != wantOwners[i] {
			t.Fatalf("handoff: owner of %s = %q, want %q", f, got, wantOwners[i])
		}
	}

	// Phase 3 — re-route the victim's streams to their new owners (the
	// routing tier reading the assignment table) and let the new owners'
	// detectors warm up on the resumed heartbeats.
	for _, f := range victimCohorts {
		cohortOwner[f] = agg.OwnerOf(f)
	}
	sim.Advance(2 * clock.Second)
	if got := agg.Counters().FleetStreams; got != fedStreams {
		t.Fatalf("post-handoff: fleet streams %d, want %d (victim's streams not re-absorbed)", got, fedStreams)
	}

	// Phase 4 — crash 50 streams in a re-delegated cohort. Their offline
	// transitions are detected by the NEW owner and must all reach the
	// aggregator's merged totals: the carried-epoch accounting may lose
	// nothing across the handoff.
	crashCohort := victimCohorts[0]
	crashed := streamsByCohort[crashCohort][:50]
	for _, s := range crashed {
		s.alive = false
	}
	sim.Advance(3 * clock.Second)

	_, _, off, _, ok := cohortTotals(t, agg, crashCohort)
	if !ok || off != 50 {
		t.Fatalf("crash: cohort %s merged offline total = %d (ok=%v), want exactly 50 "+
			"(fewer = transitions lost in handoff, more = spurious)", crashCohort, off, ok)
	}
	// And no other cohort saw any offline transition — the handoff
	// itself caused zero spurious failures fleet-wide.
	for _, f := range cohorts {
		if f == crashCohort {
			continue
		}
		if _, _, o, _, _ := cohortTotals(t, agg, f); o != 0 {
			t.Fatalf("crash: innocent cohort %s has %d offline transitions", f, o)
		}
	}

	// Phase 5 — /fleet reflects the post-handoff world.
	srv := httptest.NewServer(agg.Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/fleet")
	if err != nil {
		t.Fatalf("GET /fleet: %v", err)
	}
	defer res.Body.Close()
	var fleet struct {
		AssignVersion uint64 `json:"assign_version"`
		Leaves        []struct {
			Leaf  string `json:"leaf"`
			State string `json:"state"`
		} `json:"leaves"`
		Cohorts []struct {
			Cohort   string `json:"cohort"`
			Owner    string `json:"owner"`
			Streams  uint32 `json:"streams"`
			Offline  uint32 `json:"offline"`
			Offlines uint64 `json:"offlines_total"`
		} `json:"cohorts"`
		Redelegations []RedelegationRecord `json:"redelegations"`
	}
	if err := json.NewDecoder(res.Body).Decode(&fleet); err != nil {
		t.Fatalf("decode /fleet: %v", err)
	}
	if fleet.AssignVersion != agg.AssignVersion() {
		t.Fatalf("/fleet assign_version %d, want %d", fleet.AssignVersion, agg.AssignVersion())
	}
	states := make(map[string]string)
	for _, l := range fleet.Leaves {
		states[l.Leaf] = l.State
	}
	if states[victim.id] != "offline" {
		t.Fatalf("/fleet: victim leaf state %q, want offline", states[victim.id])
	}
	seen := make(map[string]string)
	var crashRow *struct {
		Cohort   string `json:"cohort"`
		Owner    string `json:"owner"`
		Streams  uint32 `json:"streams"`
		Offline  uint32 `json:"offline"`
		Offlines uint64 `json:"offlines_total"`
	}
	for i := range fleet.Cohorts {
		row := &fleet.Cohorts[i]
		seen[row.Cohort] = row.Owner
		if row.Cohort == crashCohort {
			crashRow = row
		}
	}
	for i, f := range victimCohorts {
		if seen[f] != wantOwners[i] {
			t.Fatalf("/fleet: cohort %s owner %q, want %q", f, seen[f], wantOwners[i])
		}
	}
	if crashRow == nil || crashRow.Offline != 50 || crashRow.Offlines != 50 {
		t.Fatalf("/fleet: crash cohort row %+v, want 50 offline / 50 offlines_total", crashRow)
	}
	if len(fleet.Redelegations) == 0 {
		t.Fatal("/fleet: no redelegation history")
	}
}

func arrival(name string, seq uint64, now clock.Time) heartbeat.Arrival {
	return heartbeat.Arrival{From: name, Seq: seq, Send: now, Recv: now, Inc: 1}
}

func cohortTotals(t *testing.T, agg *Aggregator, f string) (susp, tr, off, ev uint64, ok bool) {
	t.Helper()
	return agg.CohortTotals(f)
}

func ownersOf(agg *Aggregator, fs []string) map[string]string {
	out := make(map[string]string, len(fs))
	for _, f := range fs {
		out[f] = agg.OwnerOf(f)
	}
	return out
}
