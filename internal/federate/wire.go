// Package federate is the hierarchical federation tier above the flat
// monitor consortium: leaf monitors own stream *cohorts* (topic-filter
// subtrees such as "eu/cluster-3/#") and periodically roll each cohort
// up into a compact digest — stream counts by state, transition
// counters, a QoS summary — sent to a regional aggregator. The
// aggregator merges digests from many leaves into a fleet-wide view,
// monitors each leaf's digest stream with the same SFD detector
// machinery the leaves use on their streams (eating our own dogfood),
// and, when a leaf is declared offline, re-delegates its cohorts to
// surviving leaves through a deterministic assignment table.
//
// The design follows Dobre et al.'s multi-layer detection architecture
// ("Robust Failure Detection Architecture for Large Scale Distributed
// Systems"): per-node detection stays at the leaves, inter-node traffic
// carries aggregates, and the tier above reasons about cohorts. Roll-up
// bandwidth is O(cohorts), never O(streams): a digest row summarizes a
// subtree, and per-stream detail is available on demand from the leaf's
// /watch endpoint (or its bus, in-process).
package federate

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/clock"
)

// Wire format. Federation messages share the heartbeat/gossip socket
// and are discriminated by magic bytes ('F','D'), exactly as gossip
// digests ('S','G') ride beside heartbeats ('H','B'):
//
//	magic 'F','D'  version(1)  kind(1)  body...
//
// kindDigest (leaf → aggregator) body:
//
//	leafLen(u16) leaf  regionLen(u16) region  inc(u64) seq(u64)
//	sentAt(u64) weight(f64) assignVersion(u64) cohortCount(u16)
//	then per cohort:
//	  filterLen(u16) filter
//	  streams(u32) trusted(u32) suspected(u32) offline(u32)
//	  suspects(u64) trusts(u64) offlines(u64) evictions(u64)
//	  tdSum(f64) mrSum(f64) qapMin(f64) tuned(u32)
//	  notableCount(u16) omitted(u32)
//	  then per notable: peerLen(u16) peer type(u8) at(u64) inc(u64)
//
// kindAssign (aggregator → leaf) body:
//
//	aggLen(u16) agg  version(u64)  entryCount(u16)
//	then per entry: cohortLen(u16) cohort ownerLen(u16) owner
//
// The aggregator-HA records (kindPeerBeat, kindMirror, kindAck) are
// documented in wire_ha.go.
//
// All integers big-endian; floats are IEEE-754 bit patterns. Bounded:
// names ≤ maxNameLen bytes, cohorts ≤ MaxDigestCohorts per datagram
// (larger cohort sets are chunked by the leaf), notables ≤
// MaxNotablePerCohort per cohort, assignment entries ≤ MaxAssignEntries.
// Transition counters are CUMULATIVE per (leaf incarnation, cohort
// ownership epoch), not deltas: a lost or reordered datagram can delay
// the fleet view but can never lose a transition.
const (
	wireVersion = 1

	kindDigest uint8 = 1
	kindAssign uint8 = 2

	maxNameLen = 512
	// MaxDigestCohorts bounds one datagram's cohort rows; a leaf owning
	// more chunks its roll-up across several digests (same seq semantics
	// as gossip chunking).
	MaxDigestCohorts = 256
	// MaxNotablePerCohort bounds the per-cohort notable-transition list;
	// overflow is counted in Omitted, and consumers that need every
	// transition tap the leaf's /watch stream instead.
	MaxNotablePerCohort = 32
	// MaxAssignEntries bounds one assignment datagram's table size.
	MaxAssignEntries = 1024
)

var wireMagic = [2]byte{'F', 'D'}

// ErrBadMessage reports an undecodable federation datagram.
var ErrBadMessage = errors.New("federate: bad message")

// IsFederation reports whether a payload carries the federation magic —
// the shared-socket dispatch test (cheap, no full decode).
func IsFederation(payload []byte) bool {
	return len(payload) >= 2 && payload[0] == wireMagic[0] && payload[1] == wireMagic[1]
}

// Notable is one noteworthy transition carried in a digest for
// fleet-level visibility: suspect/offline/trust events with the stream
// name, bounded per cohort (see MaxNotablePerCohort).
type Notable struct {
	Peer string
	Type uint8 // registry.EventType value
	At   clock.Time
	Inc  uint64
}

// CohortDigest is one cohort's roll-up row: O(1) bytes per cohort
// regardless of how many streams the cohort holds.
type CohortDigest struct {
	// Filter is the cohort's topic filter (e.g. "eu/cluster-3/#").
	Filter string
	// Stream counts by state at roll-up time.
	Streams   uint32
	Trusted   uint32
	Suspected uint32
	Offline   uint32
	// Cumulative transition counters for this (incarnation, ownership
	// epoch): monotone, so the aggregator merges by keeping the maximum
	// and no datagram loss can lose a transition.
	Suspects  uint64
	Trusts    uint64
	Offlines  uint64
	Evictions uint64
	// QoS aggregates over the cohort's self-tuning detectors: sums of
	// the last slot's measured TD (seconds) and MR across the Tuned
	// streams that had a sample, and the minimum QAP among them (1.0
	// when none). Sums, not means, so the aggregator can merge cohorts.
	TDSum  float64
	MRSum  float64
	QAPMin float64
	Tuned  uint32
	// Notable transitions since the previous digest (bounded; overflow
	// counted in Omitted).
	Notable []Notable
	Omitted uint32
}

// Digest is one leaf → aggregator roll-up message. Its (Inc, Seq) pair
// doubles as the leaf's liveness heartbeat: the aggregator feeds it to a
// registry.Registry, so leaf failure detection uses the exact SFD
// machinery the leaves apply to their own streams.
type Digest struct {
	// Leaf is the sending leaf's identity — a valid hierarchical stream
	// name (it becomes a monitored stream on the aggregator).
	Leaf string
	// Region groups leaves for re-delegation locality.
	Region string
	// Inc is the leaf's incarnation (bumped on restart, SWIM-style).
	Inc uint64
	// Seq increases with every digest within one incarnation.
	Seq uint64
	// SentAt is the leaf's clock at send (the heartbeat timestamp).
	SentAt clock.Time
	// Weight is the leaf's self-assessed accuracy in [0,1], fed from its
	// gossip mistake-rate EWMA when gossip runs (1 otherwise). The
	// aggregator prefers heavier leaves when re-delegating cohorts.
	Weight float64
	// AssignVersion is the newest assignment-table version this leaf has
	// applied — the aggregator re-pushes the table until digests echo
	// the current version (anti-entropy, loss-tolerant).
	AssignVersion uint64
	// Cohorts are the roll-up rows for every cohort this leaf owns.
	Cohorts []CohortDigest
}

// AssignEntry is one row of the assignment table: the cohort and the
// leaf that owns (monitors and rolls up) it.
type AssignEntry struct {
	Cohort string
	Owner  string
}

// Assignment is one aggregator → leaf table push. Leaves adopt the
// cohorts assigned to them and drop the rest; Version ratchets so a
// reordered datagram cannot roll a leaf back to a stale table.
type Assignment struct {
	Agg     string
	Version uint64
	Entries []AssignEntry
}

// Marshal encodes the digest. It panics when a name or count exceeds the
// wire bounds — a programming error, since the leaf chunks before
// encoding (same contract as the gossip codec).
func (d Digest) Marshal() []byte {
	checkName("leaf id", d.Leaf)
	checkName("region", d.Region)
	if len(d.Cohorts) > MaxDigestCohorts {
		panic(fmt.Sprintf("federate: %d cohorts exceeds %d", len(d.Cohorts), MaxDigestCohorts))
	}
	size := 4 + 2 + len(d.Leaf) + 2 + len(d.Region) + 8 + 8 + 8 + 8 + 8 + 2
	for _, c := range d.Cohorts {
		checkName("cohort filter", c.Filter)
		if len(c.Notable) > MaxNotablePerCohort {
			panic(fmt.Sprintf("federate: %d notables exceeds %d", len(c.Notable), MaxNotablePerCohort))
		}
		size += 2 + len(c.Filter) + 4*4 + 4*8 + 3*8 + 4 + 2 + 4
		for _, n := range c.Notable {
			checkName("notable peer", n.Peer)
			size += 2 + len(n.Peer) + 1 + 8 + 8
		}
	}
	buf := make([]byte, 0, size)
	buf = append(buf, wireMagic[0], wireMagic[1], wireVersion, kindDigest)
	buf = appendStr(buf, d.Leaf)
	buf = appendStr(buf, d.Region)
	buf = binary.BigEndian.AppendUint64(buf, d.Inc)
	buf = binary.BigEndian.AppendUint64(buf, d.Seq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(d.SentAt))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(d.Weight))
	buf = binary.BigEndian.AppendUint64(buf, d.AssignVersion)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(d.Cohorts)))
	for _, c := range d.Cohorts {
		buf = appendStr(buf, c.Filter)
		buf = binary.BigEndian.AppendUint32(buf, c.Streams)
		buf = binary.BigEndian.AppendUint32(buf, c.Trusted)
		buf = binary.BigEndian.AppendUint32(buf, c.Suspected)
		buf = binary.BigEndian.AppendUint32(buf, c.Offline)
		buf = binary.BigEndian.AppendUint64(buf, c.Suspects)
		buf = binary.BigEndian.AppendUint64(buf, c.Trusts)
		buf = binary.BigEndian.AppendUint64(buf, c.Offlines)
		buf = binary.BigEndian.AppendUint64(buf, c.Evictions)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(c.TDSum))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(c.MRSum))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(c.QAPMin))
		buf = binary.BigEndian.AppendUint32(buf, c.Tuned)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(c.Notable)))
		buf = binary.BigEndian.AppendUint32(buf, c.Omitted)
		for _, n := range c.Notable {
			buf = appendStr(buf, n.Peer)
			buf = append(buf, n.Type)
			buf = binary.BigEndian.AppendUint64(buf, uint64(n.At))
			buf = binary.BigEndian.AppendUint64(buf, n.Inc)
		}
	}
	return buf
}

// Marshal encodes the assignment table push.
func (a Assignment) Marshal() []byte {
	checkName("aggregator id", a.Agg)
	if len(a.Entries) > MaxAssignEntries {
		panic(fmt.Sprintf("federate: %d assignment entries exceeds %d", len(a.Entries), MaxAssignEntries))
	}
	size := 4 + 2 + len(a.Agg) + 8 + 2
	for _, e := range a.Entries {
		checkName("cohort", e.Cohort)
		checkName("owner", e.Owner)
		size += 2 + len(e.Cohort) + 2 + len(e.Owner)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, wireMagic[0], wireMagic[1], wireVersion, kindAssign)
	buf = appendStr(buf, a.Agg)
	buf = binary.BigEndian.AppendUint64(buf, a.Version)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(a.Entries)))
	for _, e := range a.Entries {
		buf = appendStr(buf, e.Cohort)
		buf = appendStr(buf, e.Owner)
	}
	return buf
}

// Unmarshal decodes a federation datagram into exactly one of digest or
// assignment — the two original kinds. The HA kinds added in wire_ha.go
// (peer beats, mirrors, acks) return ErrBadMessage here; use Decode for
// the full message set. Any malformed input returns ErrBadMessage; no
// input may panic — the port is open to the world, the same contract as
// the heartbeat and gossip codecs (see the fuzz target).
func Unmarshal(b []byte) (*Digest, *Assignment, error) {
	r := reader{buf: b}
	m0, _ := r.u8()
	m1, _ := r.u8()
	ver, ok := r.u8()
	if !ok || m0 != wireMagic[0] || m1 != wireMagic[1] {
		return nil, nil, fmt.Errorf("%w: bad magic", ErrBadMessage)
	}
	if ver != wireVersion {
		return nil, nil, fmt.Errorf("%w: version %d", ErrBadMessage, ver)
	}
	kind, ok := r.u8()
	if !ok {
		return nil, nil, fmt.Errorf("%w: truncated kind", ErrBadMessage)
	}
	switch kind {
	case kindDigest:
		d, err := unmarshalDigest(&r)
		if err != nil {
			return nil, nil, err
		}
		return d, nil, nil
	case kindAssign:
		a, err := unmarshalAssign(&r)
		if err != nil {
			return nil, nil, err
		}
		return nil, a, nil
	default:
		return nil, nil, fmt.Errorf("%w: kind %d", ErrBadMessage, kind)
	}
}

func unmarshalDigest(r *reader) (*Digest, error) {
	leaf, ok1 := r.str()
	region, ok2 := r.str()
	inc, ok3 := r.u64()
	seq, ok4 := r.u64()
	sentAt, ok5 := r.u64()
	wbits, ok6 := r.u64()
	av, ok7 := r.u64()
	count, ok8 := r.u16()
	if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 || !ok6 || !ok7 || !ok8 {
		return nil, fmt.Errorf("%w: truncated digest header", ErrBadMessage)
	}
	if leaf == "" {
		return nil, fmt.Errorf("%w: empty leaf id", ErrBadMessage)
	}
	if int(count) > MaxDigestCohorts {
		return nil, fmt.Errorf("%w: %d cohorts", ErrBadMessage, count)
	}
	d := &Digest{
		Leaf: leaf, Region: region, Inc: inc, Seq: seq,
		SentAt: clock.Time(sentAt), Weight: math.Float64frombits(wbits),
		AssignVersion: av,
	}
	if count > 0 {
		d.Cohorts = make([]CohortDigest, 0, count)
	}
	for i := 0; i < int(count); i++ {
		var c CohortDigest
		var ok bool
		if c.Filter, ok = r.str(); !ok || c.Filter == "" {
			return nil, fmt.Errorf("%w: truncated cohort %d", ErrBadMessage, i)
		}
		u32s := [4]*uint32{&c.Streams, &c.Trusted, &c.Suspected, &c.Offline}
		for _, p := range u32s {
			if *p, ok = r.u32(); !ok {
				return nil, fmt.Errorf("%w: truncated cohort %d counts", ErrBadMessage, i)
			}
		}
		u64s := [4]*uint64{&c.Suspects, &c.Trusts, &c.Offlines, &c.Evictions}
		for _, p := range u64s {
			if *p, ok = r.u64(); !ok {
				return nil, fmt.Errorf("%w: truncated cohort %d transitions", ErrBadMessage, i)
			}
		}
		td, okA := r.u64()
		mr, okB := r.u64()
		qap, okC := r.u64()
		tuned, okD := r.u32()
		nNotable, okE := r.u16()
		omitted, okF := r.u32()
		if !okA || !okB || !okC || !okD || !okE || !okF {
			return nil, fmt.Errorf("%w: truncated cohort %d qos", ErrBadMessage, i)
		}
		c.TDSum = math.Float64frombits(td)
		c.MRSum = math.Float64frombits(mr)
		c.QAPMin = math.Float64frombits(qap)
		c.Tuned = tuned
		c.Omitted = omitted
		if int(nNotable) > MaxNotablePerCohort {
			return nil, fmt.Errorf("%w: cohort %d has %d notables", ErrBadMessage, i, nNotable)
		}
		for j := 0; j < int(nNotable); j++ {
			var n Notable
			if n.Peer, ok = r.str(); !ok {
				return nil, fmt.Errorf("%w: truncated notable %d/%d", ErrBadMessage, i, j)
			}
			typ, okT := r.u8()
			at, okAt := r.u64()
			ninc, okI := r.u64()
			if !okT || !okAt || !okI {
				return nil, fmt.Errorf("%w: truncated notable %d/%d", ErrBadMessage, i, j)
			}
			n.Type, n.At, n.Inc = typ, clock.Time(at), ninc
			c.Notable = append(c.Notable, n)
		}
		d.Cohorts = append(d.Cohorts, c)
	}
	if len(r.buf) != r.off {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(r.buf)-r.off)
	}
	return d, nil
}

func unmarshalAssign(r *reader) (*Assignment, error) {
	agg, ok1 := r.str()
	version, ok2 := r.u64()
	count, ok3 := r.u16()
	if !ok1 || !ok2 || !ok3 {
		return nil, fmt.Errorf("%w: truncated assignment header", ErrBadMessage)
	}
	if int(count) > MaxAssignEntries {
		return nil, fmt.Errorf("%w: %d assignment entries", ErrBadMessage, count)
	}
	a := &Assignment{Agg: agg, Version: version}
	if count > 0 {
		a.Entries = make([]AssignEntry, 0, count)
	}
	for i := 0; i < int(count); i++ {
		cohort, okC := r.str()
		owner, okO := r.str()
		if !okC || !okO || cohort == "" || owner == "" {
			return nil, fmt.Errorf("%w: truncated assignment entry %d", ErrBadMessage, i)
		}
		a.Entries = append(a.Entries, AssignEntry{Cohort: cohort, Owner: owner})
	}
	if len(r.buf) != r.off {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(r.buf)-r.off)
	}
	return a, nil
}

func checkName(what, s string) {
	if len(s) > maxNameLen {
		panic(fmt.Sprintf("federate: %s %d bytes exceeds %d", what, len(s), maxNameLen))
	}
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// reader is a bounds-checked cursor over a datagram.
type reader struct {
	buf []byte
	off int
}

func (r *reader) u8() (byte, bool) {
	if r.off+1 > len(r.buf) {
		return 0, false
	}
	v := r.buf[r.off]
	r.off++
	return v, true
}

func (r *reader) u16() (uint16, bool) {
	if r.off+2 > len(r.buf) {
		return 0, false
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, true
}

func (r *reader) u32() (uint32, bool) {
	if r.off+4 > len(r.buf) {
		return 0, false
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, true
}

func (r *reader) u64() (uint64, bool) {
	if r.off+8 > len(r.buf) {
		return 0, false
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, true
}

func (r *reader) str() (string, bool) {
	n, ok := r.u16()
	if !ok || int(n) > maxNameLen || r.off+int(n) > len(r.buf) {
		return "", false
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, true
}
